// Package gogreen is the public surface of the Go Green frequent-pattern
// recycling library — a from-scratch implementation of "Go Green: Recycle
// and Reuse Frequent Patterns" (Cong, Ooi, Tan, Tung; ICDE 2004).
//
// The library mines frequent patterns with classical algorithms (Apriori,
// H-Mine, FP-growth, Tree Projection, Eclat) and, between iterations of an
// interactive session, recycles previously discovered patterns: the database
// is compressed using the old patterns (groups share one stored pattern and
// a count) and subsequent mining runs over the compressed form, typically an
// order of magnitude faster on re-mining workloads.
//
// Most applications need only this package:
//
//	db, _ := gogreen.ReadBasketIDsFile("data.basket")
//	round1, _ := gogreen.Mine(db, gogreen.HMine, gogreen.MinCount(db.Len(), 0.05))
//	round2, _ := gogreen.MineRecycling(db, round1, gogreen.MCP,
//		gogreen.RecycleHMine, gogreen.MinCount(db.Len(), 0.01))
//
// The sub-systems (constraint framework, memory-limited mining, pattern
// persistence, interactive sessions, synthetic dataset generators) are
// exposed through the same module; see README.md for the map.
package gogreen

import (
	"fmt"

	"gogreen/internal/apriori"
	"gogreen/internal/core"
	"gogreen/internal/dataset"
	"gogreen/internal/eclat"
	"gogreen/internal/fptree"
	"gogreen/internal/hmine"
	"gogreen/internal/mining"
	"gogreen/internal/postmine"
	"gogreen/internal/rpfptree"
	"gogreen/internal/rphmine"
	"gogreen/internal/rptreeproj"
	"gogreen/internal/treeproj"
)

// Core data types.
type (
	// Item is a dictionary-encoded item identifier.
	Item = dataset.Item
	// DB is an immutable horizontal transaction database.
	DB = dataset.DB
	// Pattern is a frequent itemset with its support.
	Pattern = mining.Pattern
	// PatternSet indexes patterns by canonical key.
	PatternSet = mining.PatternSet
	// Sink consumes mined patterns as a stream.
	Sink = mining.Sink
	// Collector is a Sink that accumulates patterns.
	Collector = mining.Collector
	// CDB is a pattern-compressed database (phase one of recycling).
	CDB = core.CDB
	// Strategy selects the compression utility function.
	Strategy = core.Strategy
	// Miner is a frequent-pattern mining algorithm.
	Miner = mining.Miner
	// CDBMiner mines compressed databases.
	CDBMiner = core.CDBMiner
)

// Compression strategies (Section 3.2 of the paper).
const (
	// MCP is the Minimize Cost Principle — the paper's preferred strategy.
	MCP = core.MCP
	// MLP is the Maximal Length Principle.
	MLP = core.MLP
)

// Algorithm names a mining algorithm for Mine and MineRecycling.
type Algorithm string

// Baseline (non-recycling) algorithms.
const (
	Apriori  Algorithm = "apriori"
	HMine    Algorithm = "hmine"
	FPGrowth Algorithm = "fptree"
	TreeProj Algorithm = "treeproj"
	Eclat    Algorithm = "eclat"
)

// Recycling engines (adapted to compressed databases).
const (
	RecycleNaive    Algorithm = "rp-naive"
	RecycleHMine    Algorithm = "rp-hmine"
	RecycleFPGrowth Algorithm = "rp-fptree"
	RecycleTreeProj Algorithm = "rp-treeproj"
)

// NewMiner returns the named baseline miner, or an error for unknown or
// recycling-only names.
func NewMiner(a Algorithm) (Miner, error) {
	switch a {
	case Apriori:
		return apriori.New(), nil
	case HMine:
		return hmine.New(), nil
	case FPGrowth:
		return fptree.New(), nil
	case TreeProj:
		return treeproj.New(), nil
	case Eclat:
		return eclat.New(), nil
	}
	return nil, fmt.Errorf("gogreen: unknown baseline algorithm %q", a)
}

// NewEngine returns the named compressed-database miner.
func NewEngine(a Algorithm) (CDBMiner, error) {
	switch a {
	case RecycleNaive:
		return core.Naive{}, nil
	case RecycleHMine:
		return rphmine.New(), nil
	case RecycleFPGrowth:
		return rpfptree.New(), nil
	case RecycleTreeProj:
		return rptreeproj.New(), nil
	}
	return nil, fmt.Errorf("gogreen: unknown recycling engine %q", a)
}

// Algorithms lists every algorithm name, baselines first.
func Algorithms() []Algorithm {
	return []Algorithm{Apriori, HMine, FPGrowth, TreeProj, Eclat,
		RecycleNaive, RecycleHMine, RecycleFPGrowth, RecycleTreeProj}
}

// MinCount converts a relative minimum support (fraction of |DB|) into an
// absolute tuple count (>= 1).
func MinCount(numTx int, frac float64) int { return mining.MinCount(numTx, frac) }

// Mine runs a baseline algorithm and returns the collected patterns.
func Mine(db *DB, algo Algorithm, minCount int) ([]Pattern, error) {
	m, err := NewMiner(algo)
	if err != nil {
		return nil, err
	}
	var c Collector
	if err := m.Mine(db, minCount, &c); err != nil {
		return nil, err
	}
	return c.Patterns, nil
}

// Compress runs phase one of recycling: cover db's tuples with the
// highest-utility recycled patterns.
func Compress(db *DB, recycled []Pattern, strat Strategy) *CDB {
	return core.Compress(db, recycled, strat)
}

// MineRecycling runs the full two-phase scheme: compress db with the
// recycled patterns, then mine the compressed database at minCount.
func MineRecycling(db *DB, recycled []Pattern, strat Strategy, engine Algorithm, minCount int) ([]Pattern, error) {
	eng, err := NewEngine(engine)
	if err != nil {
		return nil, err
	}
	var c Collector
	rec := &core.Recycler{FP: recycled, Strategy: strat, Engine: eng}
	if err := rec.Mine(db, minCount, &c); err != nil {
		return nil, err
	}
	return c.Patterns, nil
}

// FilterTightened implements the cheap direction of iteration: when the
// minimum support is raised, the new result is a filter of the old.
func FilterTightened(fp []Pattern, minCount int) []Pattern {
	return core.FilterTightened(fp, minCount)
}

// Pattern post-processing re-exports (internal/postmine).
var (
	// Closed keeps only patterns with no equal-support superset; recycling
	// covers built from the closed set are provably identical to covers
	// built from the full set.
	Closed = postmine.Closed
	// Maximal keeps only patterns with no frequent superset.
	Maximal = postmine.Maximal
	// DeriveRules generates association rules above a confidence threshold.
	DeriveRules = postmine.Rules
)

// Rule is an association rule with support, confidence and lift.
type Rule = postmine.Rule

// Database construction and IO re-exports.
var (
	// NewDB builds a database from raw transactions.
	NewDB = dataset.New
	// FromNames builds a database from named-item transactions.
	FromNames = dataset.FromNames
	// ReadBasketFile reads a named-token basket file.
	ReadBasketFile = dataset.ReadBasketFile
	// ReadBasketIDsFile reads a numeric-id basket file.
	ReadBasketIDsFile = dataset.ReadBasketIDsFile
	// WriteBasketFile writes a database in basket format.
	WriteBasketFile = dataset.WriteBasketFile
)
