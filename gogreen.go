// Package gogreen is the public surface of the Go Green frequent-pattern
// recycling library — a from-scratch implementation of "Go Green: Recycle
// and Reuse Frequent Patterns" (Cong, Ooi, Tan, Tung; ICDE 2004).
//
// The library mines frequent patterns with classical algorithms (Apriori,
// H-Mine, FP-growth, Tree Projection, Eclat) and, between iterations of an
// interactive session, recycles previously discovered patterns: the database
// is compressed using the old patterns (groups share one stored pattern and
// a count) and subsequent mining runs over the compressed form, typically an
// order of magnitude faster on re-mining workloads.
//
// Most applications need only this package:
//
//	db, _ := gogreen.ReadBasketIDsFile("data.basket")
//	round1, _ := gogreen.Mine(ctx, db, gogreen.HMine, gogreen.WithMinSupport(0.05))
//	round2, _ := gogreen.MineRecycling(ctx, db, round1.Patterns,
//		gogreen.WithMinSupport(0.01), gogreen.WithEngine(gogreen.RecycleHMine))
//
// Both entry points honor context cancellation and deadlines cooperatively
// mid-recursion, so a long mine can be aborted from another goroutine.
//
// The sub-systems (constraint framework, memory-limited mining, pattern
// persistence, interactive sessions, synthetic dataset generators) are
// exposed through the same module; see README.md for the map.
package gogreen

import (
	"context"

	"gogreen/internal/core"
	"gogreen/internal/dataset"
	"gogreen/internal/engine"
	"gogreen/internal/mining"
	"gogreen/internal/postmine"
)

// Core data types.
type (
	// Item is a dictionary-encoded item identifier.
	Item = dataset.Item
	// DB is an immutable horizontal transaction database.
	DB = dataset.DB
	// Pattern is a frequent itemset with its support.
	Pattern = mining.Pattern
	// PatternSet indexes patterns by canonical key.
	PatternSet = mining.PatternSet
	// Sink consumes mined patterns as a stream.
	Sink = mining.Sink
	// Collector is a Sink that accumulates patterns.
	Collector = mining.Collector
	// CDB is a pattern-compressed database (phase one of recycling).
	CDB = core.CDB
	// Strategy selects the compression utility function.
	Strategy = core.Strategy
	// Miner is a frequent-pattern mining algorithm.
	Miner = mining.Miner
	// CDBMiner mines compressed databases.
	CDBMiner = core.CDBMiner
	// Result is one mining round's outcome — the shape shared with the
	// session layer and the HTTP server.
	Result = mining.Result
	// Source says how a result was produced (fresh, filtered, recycled).
	Source = mining.Source
)

// Compression strategies (Section 3.2 of the paper).
const (
	// MCP is the Minimize Cost Principle — the paper's preferred strategy.
	MCP = core.MCP
	// MLP is the Maximal Length Principle.
	MLP = core.MLP
)

// Algorithm names a mining algorithm for Mine and MineRecycling. Any
// canonical name from the engine registry is valid, including the par-*
// parallel variants; the constants below cover the serial algorithms.
type Algorithm string

// Baseline (non-recycling) algorithms.
const (
	Apriori  Algorithm = "apriori"
	HMine    Algorithm = "hmine"
	FPGrowth Algorithm = "fptree"
	TreeProj Algorithm = "treeproj"
	Eclat    Algorithm = "eclat"
)

// Recycling engines (adapted to compressed databases).
const (
	RecycleNaive    Algorithm = "rp-naive"
	RecycleHMine    Algorithm = "rp-hmine"
	RecycleFPGrowth Algorithm = "rp-fptree"
	RecycleTreeProj Algorithm = "rp-treeproj"
)

// NewMiner returns the named baseline miner, or an error for unknown or
// recycling-only names.
func NewMiner(a Algorithm) (Miner, error) {
	return engine.NewMiner(string(a), 0)
}

// NewEngine returns the named compressed-database miner.
func NewEngine(a Algorithm) (CDBMiner, error) {
	return engine.NewEngine(string(a), 0)
}

// Algorithms lists every canonical algorithm name from the engine
// registry: baselines, then recycling engines, then the derived par-*
// parallel variants.
func Algorithms() []Algorithm {
	names := engine.Names()
	out := make([]Algorithm, len(names))
	for i, n := range names {
		out[i] = Algorithm(n)
	}
	return out
}

// MinCount converts a relative minimum support (fraction of |DB|) into an
// absolute tuple count (>= 1).
func MinCount(numTx int, frac float64) int { return mining.MinCount(numTx, frac) }

// ErrNoThreshold is returned by Mine and MineRecycling when neither
// WithMinCount nor WithMinSupport was given.
var ErrNoThreshold = engine.ErrNoThreshold

// ErrBadMinSupport is returned by Mine and MineRecycling when WithMinSupport
// was given a value outside (0, 1); a relative threshold of 1 or more would
// exceed |DB| and silently yield no patterns.
var ErrBadMinSupport = engine.ErrBadMinSupport

// MineOptions collects the tunables of Mine and MineRecycling. Construct it
// through the With... functional options.
type MineOptions struct {
	// MinCount is the absolute support threshold; it wins over MinSupport.
	MinCount int
	// MinSupport is the relative threshold as a fraction of |DB|, used when
	// MinCount is zero.
	MinSupport float64
	// Strategy picks the compression utility for recycling (default MCP).
	Strategy Strategy
	// Engine names the compressed-database miner for recycling (default
	// RecycleHMine).
	Engine Algorithm
	// Sink, when set, streams patterns instead of collecting them: the sink
	// receives every pattern and Result.Patterns stays nil.
	Sink Sink
	// CompressWorkers shards the compression phase of MineRecycling across
	// worker goroutines; <= 0 means GOMAXPROCS. Output is byte-identical at
	// any worker count.
	CompressWorkers int
	// MineWorkers parallelizes the mining phase: 0 (the default) mines
	// serially, n > 0 uses n worker goroutines, and n < 0 uses GOMAXPROCS.
	// It applies to the HMine baseline and to every recycling engine except
	// RecycleNaive (which falls back to serial mining). The emitted pattern
	// set and supports are identical to serial mining; only the emission
	// order differs.
	MineWorkers int
	// Cache configures the materialized threshold lattice (off by default at
	// this surface). It is the one cache option struct shared with the
	// session and server layers; set it through WithLattice,
	// WithLatticeRungs and WithCacheBudget.
	Cache engine.CacheConfig
}

// MineOption configures one call of Mine or MineRecycling.
type MineOption func(*MineOptions)

// WithMinCount sets the absolute support threshold.
func WithMinCount(n int) MineOption { return func(o *MineOptions) { o.MinCount = n } }

// WithMinSupport sets the relative support threshold as a fraction of |DB|,
// which must be in (0, 1); Mine and MineRecycling reject values >= 1 with
// ErrBadMinSupport.
func WithMinSupport(frac float64) MineOption { return func(o *MineOptions) { o.MinSupport = frac } }

// WithStrategy selects the compression strategy for MineRecycling.
func WithStrategy(s Strategy) MineOption { return func(o *MineOptions) { o.Strategy = s } }

// WithEngine selects the compressed-database miner for MineRecycling.
func WithEngine(a Algorithm) MineOption { return func(o *MineOptions) { o.Engine = a } }

// WithSink streams patterns to sink instead of collecting them in the
// Result.
func WithSink(s Sink) MineOption { return func(o *MineOptions) { o.Sink = s } }

// WithCompressWorkers shards the compression phase of MineRecycling over n
// workers (default GOMAXPROCS). Compression output — and therefore the mined
// result — is byte-identical at any worker count.
func WithCompressWorkers(n int) MineOption { return func(o *MineOptions) { o.CompressWorkers = n } }

// WithMineWorkers parallelizes the mining phase over n worker goroutines
// (n < 0 means GOMAXPROCS; 0, the default, mines serially). Applies to the
// HMine baseline and to the RecycleHMine, RecycleFPGrowth and
// RecycleTreeProj engines; other algorithms mine serially. The emitted
// pattern set and supports are identical to serial mining at any worker
// count; only the emission order differs.
func WithMineWorkers(n int) MineOption { return func(o *MineOptions) { o.MineWorkers = n } }

// WithLattice enables (or disables) the materialized threshold lattice for
// the call. When enabled, Mine consults the process-wide shared pattern
// cache keyed by database identity: a threshold at or above a cached rung is
// answered by pure filtering (no mining), one below the ladder relax-mines
// from the nearest rung via the recycling pipeline, and every mined result
// is installed as a new rung (evicted globally least-recently-used under the
// cache's byte budget). Result.Cache reports "hit", "relax" or "miss". Off
// by default at this surface; the HTTP server enables it by default.
func WithLattice(on bool) MineOption {
	return func(o *MineOptions) { engine.WithLattice(on)(&o.Cache) }
}

// WithLatticeRungs sets the lattice install grid as relative support
// thresholds (fractions of |DB|): a mining round triggered by threshold ξ
// mines and caches at the largest grid rung ≤ ξ and filters the answer down
// to ξ, so nearby thresholds share one materialized rung. It does not itself
// enable the lattice.
func WithLatticeRungs(rungs []float64) MineOption {
	return func(o *MineOptions) { engine.WithLatticeRungs(rungs)(&o.Cache) }
}

// WithCacheBudget caps the resident bytes of the lattice store (default 64
// MiB), metered with the same cost model as memory-limited mining. At this
// surface the store is process-wide, so the budget applies to every cached
// database in the process. It does not itself enable the lattice.
func WithCacheBudget(bytes int64) MineOption {
	return func(o *MineOptions) { engine.WithCacheBudget(bytes)(&o.Cache) }
}

// resolve applies the options and computes the absolute threshold.
func resolve(db *DB, opts []MineOption) (MineOptions, int, error) {
	o := MineOptions{Strategy: MCP, Engine: RecycleHMine}
	for _, opt := range opts {
		opt(&o)
	}
	min, err := engine.Threshold{Count: o.MinCount, Support: o.MinSupport}.Resolve(db.Len())
	if err != nil {
		return o, 0, err
	}
	return o, min, nil
}

// pipeline assembles the engine pipeline one facade call runs through. With
// the lattice enabled, the pipeline carries db's ladder from the shared
// process-wide store (identity-keyed, so equal content in a different *DB
// is a different ladder).
func (o MineOptions) pipeline(db *DB, algo Algorithm) engine.Pipeline {
	p := engine.Pipeline{
		Fresh:           string(algo),
		Recycled:        string(o.Engine),
		Strategy:        o.Strategy,
		CompressWorkers: o.CompressWorkers,
		MineWorkers:     o.MineWorkers,
	}
	o.Cache.Attach(&p, db)
	return p
}

// Mine runs a baseline algorithm under ctx and returns the round's Result.
// Cancellation and deadlines abort the recursion cooperatively within
// microseconds. With WithLattice the round is served through the threshold
// lattice and may not mine at all.
func Mine(ctx context.Context, db *DB, algo Algorithm, opts ...MineOption) (Result, error) {
	o, min, err := resolve(db, opts)
	if err != nil {
		return Result{}, err
	}
	p := o.pipeline(db, algo)
	run, err := p.Serve(ctx, db, nil, min, o.Sink)
	if err != nil {
		return Result{}, err
	}
	return run.Result, nil
}

// InvalidateLattice drops db's ladder from the process-wide shared pattern
// cache. Call it when the underlying data a *DB was built from has changed
// meaning and a same-identity database will be re-mined.
func InvalidateLattice(db *DB) { engine.SharedStore().Invalidate(db) }

// Compress runs phase one of recycling: cover db's tuples with the
// highest-utility recycled patterns.
func Compress(db *DB, recycled []Pattern, strat Strategy) *CDB {
	return core.Compress(db, recycled, strat)
}

// CompressParallel is Compress sharded over worker goroutines (<= 0 means
// GOMAXPROCS) with cooperative cancellation; its output is byte-identical to
// Compress at any worker count.
func CompressParallel(ctx context.Context, db *DB, recycled []Pattern, strat Strategy, workers int) (*CDB, error) {
	return core.CompressParallel(ctx, db, recycled, strat, workers)
}

// MineRecycling runs the full two-phase scheme under ctx: compress db with
// the recycled patterns, then mine the compressed database. Strategy and
// engine default to MCP and RecycleHMine; override with WithStrategy and
// WithEngine.
func MineRecycling(ctx context.Context, db *DB, recycled []Pattern, opts ...MineOption) (Result, error) {
	o, min, err := resolve(db, opts)
	if err != nil {
		return Result{}, err
	}
	p := o.pipeline(db, "")
	run, err := p.MineRecycling(ctx, db, recycled, min, o.Sink)
	if err != nil {
		return Result{}, err
	}
	// The caller chose the seed explicitly, so the lattice is not consulted
	// here — but a complete collected result is still worth materializing
	// for later Mine calls.
	if p.Cache != nil && o.Sink == nil {
		p.Cache.Install(min, run.Patterns)
	}
	return run.Result, nil
}

// FilterTightened implements the cheap direction of iteration: when the
// minimum support is raised, the new result is a filter of the old.
func FilterTightened(fp []Pattern, minCount int) []Pattern {
	return core.FilterTightened(fp, minCount)
}

// Pattern post-processing re-exports (internal/postmine).
var (
	// Closed keeps only patterns with no equal-support superset; recycling
	// covers built from the closed set are provably identical to covers
	// built from the full set.
	Closed = postmine.Closed
	// Maximal keeps only patterns with no frequent superset.
	Maximal = postmine.Maximal
	// DeriveRules generates association rules above a confidence threshold.
	DeriveRules = postmine.Rules
)

// Rule is an association rule with support, confidence and lift.
type Rule = postmine.Rule

// Database construction and IO re-exports.
var (
	// NewDB builds a database from raw transactions.
	NewDB = dataset.New
	// FromNames builds a database from named-item transactions.
	FromNames = dataset.FromNames
	// ReadBasketFile reads a named-token basket file.
	ReadBasketFile = dataset.ReadBasketFile
	// ReadBasketIDsFile reads a numeric-id basket file.
	ReadBasketIDsFile = dataset.ReadBasketIDsFile
	// WriteBasketFile writes a database in basket format.
	WriteBasketFile = dataset.WriteBasketFile
)
