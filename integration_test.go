// Integration tests: all miners — four baselines and four recycling engines
// under both strategies, plus the memory-limited drivers — must produce
// identical pattern sets on every preset dataset, at thresholds from the
// figures' sweeps.
package gogreen

import (
	"testing"

	"gogreen/internal/apriori"
	"gogreen/internal/bench"
	"gogreen/internal/core"
	"gogreen/internal/eclat"
	"gogreen/internal/fptree"
	"gogreen/internal/hmine"
	"gogreen/internal/memlimit"
	"gogreen/internal/mining"
	"gogreen/internal/rpfptree"
	"gogreen/internal/rphmine"
	"gogreen/internal/rptreeproj"
	"gogreen/internal/treeproj"
)

const integScale = 0.0001 // minimum-size presets (~200 tuples each)

func mineSet(t *testing.T, name string, mine func(sink mining.Sink) error) mining.PatternSet {
	t.Helper()
	var c mining.Collector
	if err := mine(&c); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	s, err := c.Set()
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return s
}

func TestAllMinersAgreeOnPresets(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test; skipped with -short")
	}
	for _, spec := range bench.Specs {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			db := bench.Dataset(&spec, integScale)
			cdbMCP := bench.CompressedDB(&spec, integScale, core.MCP)
			cdbMLP := bench.CompressedDB(&spec, integScale, core.MLP)

			// The two shallowest sweep points keep result sets small.
			for _, xi := range spec.Sweep[:2] {
				min := mining.MinCount(db.Len(), xi)

				ref := mineSet(t, "hmine", func(s mining.Sink) error {
					return hmine.New().Mine(db, min, s)
				})

				baselines := map[string]mining.Miner{
					"apriori":  apriori.New(),
					"fptree":   fptree.New(),
					"treeproj": treeproj.New(),
					"eclat":    eclat.New(),
				}
				for name, m := range baselines {
					got := mineSet(t, name, func(s mining.Sink) error { return m.Mine(db, min, s) })
					if !got.Equal(ref) {
						t.Fatalf("%s@%g: %s disagrees with hmine: %v",
							spec.Name, xi, name, got.Diff(ref, 8))
					}
				}

				engines := map[string]core.CDBMiner{
					"rp-naive":    core.Naive{},
					"rp-hmine":    rphmine.New(),
					"rp-fptree":   rpfptree.New(),
					"rp-treeproj": rptreeproj.New(),
				}
				for name, eng := range engines {
					for label, cdb := range map[string]*core.CDB{"MCP": cdbMCP, "MLP": cdbMLP} {
						got := mineSet(t, name, func(s mining.Sink) error { return eng.MineCDB(cdb, min, s) })
						if !got.Equal(ref) {
							t.Fatalf("%s@%g: %s/%s disagrees with hmine: %v",
								spec.Name, xi, name, label, got.Diff(ref, 8))
						}
					}
				}

				// Memory-limited drivers with a budget forcing disk spills.
				lim := memlimit.Config{Budget: 2048, TempDir: t.TempDir()}
				got := mineSet(t, "memlimit-db", func(s mining.Sink) error {
					return memlimit.MineDB(db, min, lim, s)
				})
				if !got.Equal(ref) {
					t.Fatalf("%s@%g: memlimit.MineDB disagrees: %v", spec.Name, xi, got.Diff(ref, 8))
				}
				got = mineSet(t, "memlimit-cdb", func(s mining.Sink) error {
					return memlimit.MineCDB(cdbMCP, min, lim, s)
				})
				if !got.Equal(ref) {
					t.Fatalf("%s@%g: memlimit.MineCDB disagrees: %v", spec.Name, xi, got.Diff(ref, 8))
				}
			}
		})
	}
}

// TestRecycledPatternsMatchXiOldMining: the cached recycled sets are exactly
// what re-mining at ξ_old yields.
func TestRecycledPatternsMatchXiOldMining(t *testing.T) {
	for _, spec := range bench.Specs {
		spec := spec
		db := bench.Dataset(&spec, integScale)
		fp := bench.RecycledPatterns(&spec, integScale)
		min := mining.MinCount(db.Len(), spec.XiOld)
		ref := mineSet(t, "fptree", func(s mining.Sink) error { return fptree.New().Mine(db, min, s) })
		got := mining.PatternSet{}
		for _, p := range fp {
			got[p.Key()] = p
		}
		if !got.Equal(ref) {
			t.Fatalf("%s: recycled set differs from ξ_old mining: %v", spec.Name, got.Diff(ref, 8))
		}
	}
}
