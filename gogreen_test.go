package gogreen

import (
	"path/filepath"
	"testing"

	"gogreen/internal/testutil"
)

func TestFacadeRoundTrip(t *testing.T) {
	db := testutil.PaperDB()

	round1, err := Mine(db, HMine, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(round1) != 11 { // complete set incl. the paper's omitted fc:3
		t.Fatalf("round 1: %d patterns, want 11", len(round1))
	}

	for _, engine := range []Algorithm{RecycleNaive, RecycleHMine, RecycleFPGrowth, RecycleTreeProj} {
		round2, err := MineRecycling(db, round1, MCP, engine, 2)
		if err != nil {
			t.Fatalf("%s: %v", engine, err)
		}
		direct, err := Mine(db, Apriori, 2)
		if err != nil {
			t.Fatal(err)
		}
		if len(round2) != len(direct) {
			t.Fatalf("%s: recycled %d patterns, direct %d", engine, len(round2), len(direct))
		}
	}

	filtered := FilterTightened(round1, 4)
	direct4, _ := Mine(db, HMine, 4)
	if len(filtered) != len(direct4) {
		t.Fatalf("filter: %d vs %d", len(filtered), len(direct4))
	}
}

func TestFacadeAllAlgorithms(t *testing.T) {
	db := testutil.PaperDB()
	want, _ := Mine(db, Apriori, 2)
	for _, a := range Algorithms() {
		var got []Pattern
		var err error
		if _, e := NewMiner(a); e == nil {
			got, err = Mine(db, a, 2)
		} else {
			got, err = MineRecycling(db, nil, MCP, a, 2)
		}
		if err != nil {
			t.Fatalf("%s: %v", a, err)
		}
		if len(got) != len(want) {
			t.Errorf("%s: %d patterns, want %d", a, len(got), len(want))
		}
	}
}

func TestFacadeErrors(t *testing.T) {
	if _, err := NewMiner("bogus"); err == nil {
		t.Error("NewMiner should reject unknown names")
	}
	if _, err := NewMiner(RecycleHMine); err == nil {
		t.Error("NewMiner should reject engine names")
	}
	if _, err := NewEngine("bogus"); err == nil {
		t.Error("NewEngine should reject unknown names")
	}
	if _, err := NewEngine(HMine); err == nil {
		t.Error("NewEngine should reject baseline names")
	}
	db := testutil.PaperDB()
	if _, err := Mine(db, "bogus", 2); err == nil {
		t.Error("Mine should propagate algorithm errors")
	}
	if _, err := MineRecycling(db, nil, MCP, "bogus", 2); err == nil {
		t.Error("MineRecycling should propagate engine errors")
	}
}

func TestFacadeIO(t *testing.T) {
	db := NewDB([][]Item{{1, 2}, {2, 3}})
	path := filepath.Join(t.TempDir(), "db.basket")
	if err := WriteBasketFile(path, db); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBasketIDsFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 {
		t.Fatalf("round trip lost tuples")
	}
	if MinCount(back.Len(), 0.6) != 2 {
		t.Error("MinCount")
	}
	cdb := Compress(db, nil, MLP)
	if cdb.NumTx != 2 {
		t.Error("Compress facade")
	}
}
