package gogreen

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"gogreen/internal/engine"
	"gogreen/internal/server"
	"gogreen/internal/testutil"
)

func TestFacadeRoundTrip(t *testing.T) {
	db := testutil.PaperDB()
	ctx := context.Background()

	round1, err := Mine(ctx, db, HMine, WithMinCount(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(round1.Patterns) != 11 { // complete set incl. the paper's omitted fc:3
		t.Fatalf("round 1: %d patterns, want 11", len(round1.Patterns))
	}

	for _, engine := range []Algorithm{RecycleNaive, RecycleHMine, RecycleFPGrowth, RecycleTreeProj} {
		round2, err := MineRecycling(ctx, db, round1.Patterns, WithMinCount(2), WithEngine(engine))
		if err != nil {
			t.Fatalf("%s: %v", engine, err)
		}
		direct, err := Mine(ctx, db, Apriori, WithMinCount(2))
		if err != nil {
			t.Fatal(err)
		}
		if len(round2.Patterns) != len(direct.Patterns) {
			t.Fatalf("%s: recycled %d patterns, direct %d", engine, len(round2.Patterns), len(direct.Patterns))
		}
	}

	filtered := FilterTightened(round1.Patterns, 4)
	direct4, _ := Mine(ctx, db, HMine, WithMinCount(4))
	if len(filtered) != len(direct4.Patterns) {
		t.Fatalf("filter: %d vs %d", len(filtered), len(direct4.Patterns))
	}
}

func TestFacadeAllAlgorithms(t *testing.T) {
	db := testutil.PaperDB()
	ctx := context.Background()
	want, _ := Mine(ctx, db, Apriori, WithMinCount(2))
	for _, a := range Algorithms() {
		var got Result
		var err error
		if _, e := NewMiner(a); e == nil {
			got, err = Mine(ctx, db, a, WithMinCount(2))
		} else {
			got, err = MineRecycling(ctx, db, nil, WithMinCount(2), WithEngine(a))
		}
		if err != nil {
			t.Fatalf("%s: %v", a, err)
		}
		if len(got.Patterns) != len(want.Patterns) {
			t.Errorf("%s: %d patterns, want %d", a, len(got.Patterns), len(want.Patterns))
		}
	}
}

func TestFacadeErrors(t *testing.T) {
	if _, err := NewMiner("bogus"); err == nil {
		t.Error("NewMiner should reject unknown names")
	}
	if _, err := NewMiner(RecycleHMine); err == nil {
		t.Error("NewMiner should reject engine names")
	}
	if _, err := NewEngine("bogus"); err == nil {
		t.Error("NewEngine should reject unknown names")
	}
	if _, err := NewEngine(HMine); err == nil {
		t.Error("NewEngine should reject baseline names")
	}
	db := testutil.PaperDB()
	ctx := context.Background()
	if _, err := Mine(ctx, db, "bogus", WithMinCount(2)); err == nil {
		t.Error("Mine should propagate algorithm errors")
	}
	if _, err := MineRecycling(ctx, db, nil, WithMinCount(2), WithEngine("bogus")); err == nil {
		t.Error("MineRecycling should propagate engine errors")
	}
}

func TestFacadeIO(t *testing.T) {
	db := NewDB([][]Item{{1, 2}, {2, 3}})
	path := filepath.Join(t.TempDir(), "db.basket")
	if err := WriteBasketFile(path, db); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBasketIDsFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 {
		t.Fatalf("round trip lost tuples")
	}
	if MinCount(back.Len(), 0.6) != 2 {
		t.Error("MinCount")
	}
	cdb := Compress(db, nil, MLP)
	if cdb.NumTx != 2 {
		t.Error("Compress facade")
	}
}

// TestFacadeOptions covers the redesigned entry points: functional options,
// relative thresholds, streaming sinks, and provenance metadata.
func TestFacadeOptions(t *testing.T) {
	db := testutil.PaperDB()
	ctx := context.Background()

	res, err := Mine(ctx, db, HMine, WithMinCount(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Patterns) != 11 || res.Source != "fresh" || res.MinCount != 3 {
		t.Fatalf("result = %+v", res)
	}

	// MinSupport 0.6 on 5 tuples resolves to count 3.
	bySup, err := Mine(ctx, db, HMine, WithMinSupport(0.6))
	if err != nil {
		t.Fatal(err)
	}
	if bySup.MinCount != 3 || len(bySup.Patterns) != 11 {
		t.Fatalf("min-support result = %+v", bySup)
	}

	// A sink streams; the result carries no patterns.
	var c Collector
	streamed, err := Mine(ctx, db, HMine, WithMinCount(3), WithSink(&c))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Patterns) != 11 || streamed.Patterns != nil {
		t.Fatalf("streamed %d, result %+v", len(c.Patterns), streamed)
	}

	rec, err := MineRecycling(ctx, db, res.Patterns, WithMinCount(2), WithStrategy(MLP))
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Patterns) != 27 || rec.Source != "recycled" {
		t.Fatalf("recycled = %+v", rec)
	}

	if _, err := Mine(ctx, db, HMine); err != ErrNoThreshold {
		t.Errorf("missing threshold: %v", err)
	}
	if _, err := MineRecycling(ctx, db, nil); err != ErrNoThreshold {
		t.Errorf("recycling missing threshold: %v", err)
	}
	// A relative threshold of 1 or more is rejected rather than silently
	// resolving to a count above |DB| (which would mine zero patterns).
	if _, err := Mine(ctx, db, HMine, WithMinSupport(1.5)); err != ErrBadMinSupport {
		t.Errorf("min support 1.5: %v", err)
	}
	if _, err := MineRecycling(ctx, db, nil, WithMinSupport(1)); err != ErrBadMinSupport {
		t.Errorf("recycling min support 1: %v", err)
	}
	// An explicit MinCount still wins over an out-of-range fraction.
	if _, err := Mine(ctx, db, HMine, WithMinCount(3), WithMinSupport(1.5)); err != nil {
		t.Errorf("min count with stray fraction: %v", err)
	}
}

// TestReadmeAlgorithmTable keeps the README's algorithm table in lockstep
// with the engine registry: every registered name appears exactly once with
// its kind, and the table carries no stale rows.
func TestReadmeAlgorithmTable(t *testing.T) {
	data, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	re := regexp.MustCompile("(?m)^\\| `([a-z0-9-]+)` \\| (fresh|recycled) \\|")
	rows := map[string]string{}
	for _, m := range re.FindAllStringSubmatch(string(data), -1) {
		if _, dup := rows[m[1]]; dup {
			t.Errorf("README lists %q twice", m[1])
		}
		rows[m[1]] = m[2]
	}
	for _, d := range engine.Descriptors() {
		kind, ok := rows[d.Name]
		if !ok {
			t.Errorf("registry name %q missing from the README table", d.Name)
			continue
		}
		if kind != d.Kind.String() {
			t.Errorf("README lists %q as %s, registry says %s", d.Name, kind, d.Kind)
		}
		delete(rows, d.Name)
	}
	for name := range rows {
		t.Errorf("README lists %q, which the registry does not register", name)
	}
}

// TestReadmeRouteTable keeps the README's endpoint table in lockstep with
// the routes the server actually registers on its mux: every registered
// "METHOD /pattern" appears verbatim exactly once in the table, and the
// table carries no route the server does not serve.
func TestReadmeRouteTable(t *testing.T) {
	data, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	section := string(data)
	start := strings.Index(section, "Endpoints:")
	if start < 0 {
		t.Fatal("README has no \"Endpoints:\" section")
	}
	section = section[start:]
	if end := strings.Index(section, "\n## "); end >= 0 {
		section = section[:end]
	}

	re := regexp.MustCompile("`((?:GET|PUT|POST|DELETE) /[^`]*)`")
	documented := map[string]bool{}
	for _, m := range re.FindAllStringSubmatch(section, -1) {
		// "POST /db/{id}/mine?async=1"-style variants document the same route.
		pattern := m[1]
		if q := strings.Index(pattern, "?"); q >= 0 {
			pattern = pattern[:q]
		}
		if documented[pattern] {
			t.Errorf("README endpoint table lists %q twice", pattern)
		}
		documented[pattern] = true
	}

	srv := server.New()
	defer srv.Shutdown(context.Background())
	for _, r := range srv.Routes() {
		if !documented[r] {
			t.Errorf("served route %q missing from the README endpoint table", r)
			continue
		}
		delete(documented, r)
	}
	for pattern := range documented {
		t.Errorf("README endpoint table lists %q, which the server does not serve", pattern)
	}
}

// TestFacadeCancellation proves both entry points honor a cancelled context.
func TestFacadeCancellation(t *testing.T) {
	db := testutil.PaperDB()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Mine(ctx, db, HMine, WithMinCount(2)); !errors.Is(err, context.Canceled) {
		t.Errorf("Mine with cancelled ctx: %v", err)
	}
	if _, err := MineRecycling(ctx, db, nil, WithMinCount(2)); !errors.Is(err, context.Canceled) {
		t.Errorf("MineRecycling with cancelled ctx: %v", err)
	}
}
