package gogreen

import (
	"context"
	"errors"
	"path/filepath"
	"testing"

	"gogreen/internal/testutil"
)

func TestFacadeRoundTrip(t *testing.T) {
	db := testutil.PaperDB()

	round1, err := MineCount(db, HMine, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(round1) != 11 { // complete set incl. the paper's omitted fc:3
		t.Fatalf("round 1: %d patterns, want 11", len(round1))
	}

	for _, engine := range []Algorithm{RecycleNaive, RecycleHMine, RecycleFPGrowth, RecycleTreeProj} {
		round2, err := MineRecyclingCount(db, round1, MCP, engine, 2)
		if err != nil {
			t.Fatalf("%s: %v", engine, err)
		}
		direct, err := MineCount(db, Apriori, 2)
		if err != nil {
			t.Fatal(err)
		}
		if len(round2) != len(direct) {
			t.Fatalf("%s: recycled %d patterns, direct %d", engine, len(round2), len(direct))
		}
	}

	filtered := FilterTightened(round1, 4)
	direct4, _ := MineCount(db, HMine, 4)
	if len(filtered) != len(direct4) {
		t.Fatalf("filter: %d vs %d", len(filtered), len(direct4))
	}
}

func TestFacadeAllAlgorithms(t *testing.T) {
	db := testutil.PaperDB()
	want, _ := MineCount(db, Apriori, 2)
	for _, a := range Algorithms() {
		var got []Pattern
		var err error
		if _, e := NewMiner(a); e == nil {
			got, err = MineCount(db, a, 2)
		} else {
			got, err = MineRecyclingCount(db, nil, MCP, a, 2)
		}
		if err != nil {
			t.Fatalf("%s: %v", a, err)
		}
		if len(got) != len(want) {
			t.Errorf("%s: %d patterns, want %d", a, len(got), len(want))
		}
	}
}

func TestFacadeErrors(t *testing.T) {
	if _, err := NewMiner("bogus"); err == nil {
		t.Error("NewMiner should reject unknown names")
	}
	if _, err := NewMiner(RecycleHMine); err == nil {
		t.Error("NewMiner should reject engine names")
	}
	if _, err := NewEngine("bogus"); err == nil {
		t.Error("NewEngine should reject unknown names")
	}
	if _, err := NewEngine(HMine); err == nil {
		t.Error("NewEngine should reject baseline names")
	}
	db := testutil.PaperDB()
	if _, err := MineCount(db, "bogus", 2); err == nil {
		t.Error("Mine should propagate algorithm errors")
	}
	if _, err := MineRecyclingCount(db, nil, MCP, "bogus", 2); err == nil {
		t.Error("MineRecycling should propagate engine errors")
	}
}

func TestFacadeIO(t *testing.T) {
	db := NewDB([][]Item{{1, 2}, {2, 3}})
	path := filepath.Join(t.TempDir(), "db.basket")
	if err := WriteBasketFile(path, db); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBasketIDsFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 {
		t.Fatalf("round trip lost tuples")
	}
	if MinCount(back.Len(), 0.6) != 2 {
		t.Error("MinCount")
	}
	cdb := Compress(db, nil, MLP)
	if cdb.NumTx != 2 {
		t.Error("Compress facade")
	}
}

// TestFacadeOptions covers the redesigned entry points: functional options,
// relative thresholds, streaming sinks, and provenance metadata.
func TestFacadeOptions(t *testing.T) {
	db := testutil.PaperDB()
	ctx := context.Background()

	res, err := Mine(ctx, db, HMine, WithMinCount(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Patterns) != 11 || res.Source != "fresh" || res.MinCount != 3 {
		t.Fatalf("result = %+v", res)
	}

	// MinSupport 0.6 on 5 tuples resolves to count 3.
	bySup, err := Mine(ctx, db, HMine, WithMinSupport(0.6))
	if err != nil {
		t.Fatal(err)
	}
	if bySup.MinCount != 3 || len(bySup.Patterns) != 11 {
		t.Fatalf("min-support result = %+v", bySup)
	}

	// A sink streams; the result carries no patterns.
	var c Collector
	streamed, err := Mine(ctx, db, HMine, WithMinCount(3), WithSink(&c))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Patterns) != 11 || streamed.Patterns != nil {
		t.Fatalf("streamed %d, result %+v", len(c.Patterns), streamed)
	}

	rec, err := MineRecycling(ctx, db, res.Patterns, WithMinCount(2), WithStrategy(MLP))
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Patterns) != 27 || rec.Source != "recycled" {
		t.Fatalf("recycled = %+v", rec)
	}

	if _, err := Mine(ctx, db, HMine); err != ErrNoThreshold {
		t.Errorf("missing threshold: %v", err)
	}
	if _, err := MineRecycling(ctx, db, nil); err != ErrNoThreshold {
		t.Errorf("recycling missing threshold: %v", err)
	}
	// A relative threshold of 1 or more is rejected rather than silently
	// resolving to a count above |DB| (which would mine zero patterns).
	if _, err := Mine(ctx, db, HMine, WithMinSupport(1.5)); err != ErrBadMinSupport {
		t.Errorf("min support 1.5: %v", err)
	}
	if _, err := MineRecycling(ctx, db, nil, WithMinSupport(1)); err != ErrBadMinSupport {
		t.Errorf("recycling min support 1: %v", err)
	}
	// An explicit MinCount still wins over an out-of-range fraction.
	if _, err := Mine(ctx, db, HMine, WithMinCount(3), WithMinSupport(1.5)); err != nil {
		t.Errorf("min count with stray fraction: %v", err)
	}
}

// TestFacadeCancellation proves both entry points honor a cancelled context.
func TestFacadeCancellation(t *testing.T) {
	db := testutil.PaperDB()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Mine(ctx, db, HMine, WithMinCount(2)); !errors.Is(err, context.Canceled) {
		t.Errorf("Mine with cancelled ctx: %v", err)
	}
	if _, err := MineRecycling(ctx, db, nil, WithMinCount(2)); !errors.Is(err, context.Canceled) {
		t.Errorf("MineRecycling with cancelled ctx: %v", err)
	}
}
