package gen_test

import (
	"testing"

	"gogreen/internal/gen"
	"gogreen/internal/hmine"
	"gogreen/internal/mining"
)

// testScale keeps calibration tests fast while large enough for the
// statistical assertions below.
const testScale = 0.02

func TestWeatherCalibration(t *testing.T) {
	db := gen.Weather(testScale)
	st := db.Stats()
	// Paper: 1,015,367 tuples, avg len 15, 7,959 items (scaled).
	if st.AvgLen < 13 || st.AvgLen > 19 {
		t.Errorf("weather avg len = %.1f, want ~15", st.AvgLen)
	}
	if st.NumTx != 20307 {
		t.Errorf("weather tuples = %d, want 20307 at scale 0.02", st.NumTx)
	}
	var c mining.Count
	if err := hmine.New().Mine(db, mining.MinCount(db.Len(), 0.05), &c); err != nil {
		t.Fatal(err)
	}
	// Paper: 1227 patterns, max length 9 at ξ_old = 5%.
	if c.N < 800 || c.N > 3500 {
		t.Errorf("weather patterns at 5%% = %d, want ~1200-2000", c.N)
	}
	if c.MaxLen != 9 {
		t.Errorf("weather max pattern length = %d, want 9", c.MaxLen)
	}
}

func TestForestCalibration(t *testing.T) {
	db := gen.Forest(testScale)
	st := db.Stats()
	if st.AvgLen < 11 || st.AvgLen > 16 {
		t.Errorf("forest avg len = %.1f, want ~13", st.AvgLen)
	}
	var c mining.Count
	if err := hmine.New().Mine(db, mining.MinCount(db.Len(), 0.01), &c); err != nil {
		t.Fatal(err)
	}
	// Paper: 523 patterns, max length 4 at ξ_old = 1%.
	if c.N < 250 || c.N > 1500 {
		t.Errorf("forest patterns at 1%% = %d, want ~300-1000", c.N)
	}
	if c.MaxLen != 4 {
		t.Errorf("forest max pattern length = %d, want 4", c.MaxLen)
	}
}

func TestConnect4Calibration(t *testing.T) {
	db := gen.Connect4(testScale)
	st := db.Stats()
	// Paper: 67,557 tuples, length 43, 130 items.
	if st.AvgLen != 43 || st.MaxLen != 43 {
		t.Errorf("connect4 tuple length = %.1f/%d, want 43", st.AvgLen, st.MaxLen)
	}
	if st.NumItems > 130 {
		t.Errorf("connect4 items = %d, want <= 130", st.NumItems)
	}
	var c mining.Count
	if err := hmine.New().Mine(db, mining.MinCount(db.Len(), 0.95), &c); err != nil {
		t.Fatal(err)
	}
	// Predicted exactly by the hierarchy calculator.
	want := gen.PatternCountAt(gen.Connect4Config(testScale), 0.95)
	if float64(c.N) < want*0.8 || float64(c.N) > want*1.3 {
		t.Errorf("connect4 patterns at 95%% = %d, calculator predicts %.0f", c.N, want)
	}
	if c.MaxLen != 10 {
		t.Errorf("connect4 max pattern length = %d, want 10", c.MaxLen)
	}
}

func TestPumsbCalibration(t *testing.T) {
	db := gen.Pumsb(testScale)
	st := db.Stats()
	if st.AvgLen != 74 {
		t.Errorf("pumsb tuple length = %.1f, want 74", st.AvgLen)
	}
	var c mining.Count
	if err := hmine.New().Mine(db, mining.MinCount(db.Len(), 0.90), &c); err != nil {
		t.Fatal(err)
	}
	want := gen.PatternCountAt(gen.PumsbConfig(testScale), 0.90)
	if float64(c.N) < want*0.7 || float64(c.N) > want*1.4 {
		t.Errorf("pumsb patterns at 90%% = %d, calculator predicts %.0f", c.N, want)
	}
	if c.MaxLen != 10 {
		t.Errorf("pumsb max pattern length = %d, want 10", c.MaxLen)
	}
}

func TestDeterminism(t *testing.T) {
	a := gen.Weather(0.002)
	b := gen.Weather(0.002)
	if a.Len() != b.Len() {
		t.Fatal("nondeterministic length")
	}
	for i := 0; i < a.Len(); i++ {
		ta, tb := a.Tx(i), b.Tx(i)
		if len(ta) != len(tb) {
			t.Fatalf("tuple %d lengths differ", i)
		}
		for j := range ta {
			if ta[j] != tb[j] {
				t.Fatalf("tuple %d differs", i)
			}
		}
	}
}

func TestByName(t *testing.T) {
	for _, n := range gen.PresetNames() {
		if gen.ByName(n) == nil {
			t.Errorf("ByName(%q) = nil", n)
		}
	}
	if gen.ByName("connect-4") == nil {
		t.Error("alias connect-4")
	}
	if gen.ByName("bogus") != nil {
		t.Error("bogus name")
	}
}

func TestSparseValidate(t *testing.T) {
	valid := gen.SparseConfig{NumTx: 10, NumItems: 100, AvgLen: 5}
	if err := valid.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := []gen.SparseConfig{
		{NumTx: 0, NumItems: 100, AvgLen: 5},
		{NumTx: 10, NumItems: 0, AvgLen: 5},
		{NumTx: 10, NumItems: 100, AvgLen: 0},
		{NumTx: 10, NumItems: 100, AvgLen: 5, Hot: []gen.HotPattern{{0, 0.5}}},
		{NumTx: 10, NumItems: 100, AvgLen: 5, Hot: []gen.HotPattern{{3, 1.5}}},
		{NumTx: 10, NumItems: 100, AvgLen: 5, Hot: []gen.HotPattern{{3, 0.6}, {3, 0.6}}}, // probs > 1
		{NumTx: 10, NumItems: 4, AvgLen: 5, Hot: []gen.HotPattern{{5, 0.5}}},             // pool too big
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestDenseValidate(t *testing.T) {
	valid := gen.DenseConfig{NumTx: 10, NumAttrs: 5, ValuesPerAttr: 3}
	if err := valid.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	h := func(hs ...gen.Hierarchy) []gen.Hierarchy { return hs }
	bad := []gen.DenseConfig{
		{NumTx: 0, NumAttrs: 5, ValuesPerAttr: 3},
		{NumTx: 10, NumAttrs: 0, ValuesPerAttr: 3},
		{NumTx: 10, NumAttrs: 5, ValuesPerAttr: 1},
		{NumTx: 10, NumAttrs: 5, ValuesPerAttr: 3, TopProbLo: 0.9, TopProbHi: 0.1},
		{NumTx: 10, NumAttrs: 5, ValuesPerAttr: 3, NoiseTop: 2},
		{NumTx: 10, NumAttrs: 5, ValuesPerAttr: 3,
			Hierarchies: h(gen.Hierarchy{Start: 0, Sizes: []int{3}, Probs: []float64{0.9, 0.8}})}, // mismatch
		{NumTx: 10, NumAttrs: 5, ValuesPerAttr: 3,
			Hierarchies: h(gen.Hierarchy{Start: 0, Sizes: []int{3, 2}, Probs: []float64{0.9, 0.8}})}, // not increasing
		{NumTx: 10, NumAttrs: 5, ValuesPerAttr: 3,
			Hierarchies: h(gen.Hierarchy{Start: 0, Sizes: []int{2, 3}, Probs: []float64{0.8, 0.9}})}, // not decreasing
		{NumTx: 10, NumAttrs: 5, ValuesPerAttr: 3,
			Hierarchies: h(gen.Hierarchy{Start: 3, Sizes: []int{4}, Probs: []float64{0.9}})}, // out of range
		{NumTx: 10, NumAttrs: 8, ValuesPerAttr: 3,
			Hierarchies: h(
				gen.Hierarchy{Start: 0, Sizes: []int{4}, Probs: []float64{0.9}},
				gen.Hierarchy{Start: 2, Sizes: []int{3}, Probs: []float64{0.9}})}, // overlap
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

// TestPatternCountCalculator checks the closed-form count against actual
// mining on a tiny dense configuration.
func TestPatternCountCalculator(t *testing.T) {
	cfg := gen.DenseConfig{
		NumTx:         6000,
		NumAttrs:      10,
		ValuesPerAttr: 3,
		TopProbLo:     0.1,
		TopProbHi:     0.3,
		NoiseTop:      0.05,
		Hierarchies: []gen.Hierarchy{
			{Start: 0, Sizes: []int{3, 5}, Probs: []float64{0.9, 0.7}},
			{Start: 5, Sizes: []int{2, 4}, Probs: []float64{0.85, 0.65}},
		},
		Seed: 7,
	}
	db := gen.Dense(cfg)
	for _, xi := range []float64{0.8, 0.75, 0.6} {
		want := gen.PatternCountAt(cfg, xi)
		var c mining.Count
		if err := hmine.New().Mine(db, mining.MinCount(db.Len(), xi), &c); err != nil {
			t.Fatal(err)
		}
		if float64(c.N) < want*0.7 || float64(c.N) > want*1.4 {
			t.Errorf("xi=%.2f: mined %d patterns, calculator predicts %.0f", xi, c.N, want)
		}
	}
}

// TestSparseCountCalculator checks the hot-pattern count estimate.
func TestSparseCountCalculator(t *testing.T) {
	cfg := gen.SparseConfig{
		NumTx:    8000,
		NumItems: 500,
		AvgLen:   8,
		Hot: []gen.HotPattern{
			{4, 0.3}, {3, 0.2}, {5, 0.1},
		},
		Seed: 7,
	}
	db := gen.Sparse(cfg)
	// At xi=0.15 only the first two hot lattices are active: 15+7 = 22
	// patterns (background contributes nothing at 15%).
	want := gen.SparsePatternCountAt(cfg, 0.15)
	if want != 22 {
		t.Fatalf("calculator = %.0f, want 22", want)
	}
	var c mining.Count
	if err := hmine.New().Mine(db, mining.MinCount(db.Len(), 0.15), &c); err != nil {
		t.Fatal(err)
	}
	if float64(c.N) < want*0.9 || float64(c.N) > want*1.2 {
		t.Errorf("mined %d patterns, calculator predicts %.0f", c.N, want)
	}
}
