package gen

import (
	"fmt"
	"math/rand"

	"gogreen/internal/dataset"
)

// Hierarchy is a family of nested attribute sets whose top values co-occur:
// level k covers the first Sizes[k] attributes of the hierarchy and is
// "clean" (all top values) with probability Probs[k]. Levels are nested
// (Sizes increasing, Probs decreasing), so the joint support of any subset
// of level-k attributes' top values is Probs[k'] for the smallest covering
// level k' — which makes the frequent-pattern population of the generated
// data exactly computable (see PatternCountAt). Hierarchies are drawn
// independently of one another, so cross-hierarchy joints are products.
type Hierarchy struct {
	Start int       // first attribute of the hierarchy
	Sizes []int     // nested level sizes, strictly increasing
	Probs []float64 // per-level clean probabilities, strictly decreasing
}

// DenseConfig parameterizes the relational-style dense generator. Each tuple
// has exactly NumAttrs items, one per attribute; attribute a contributes
// items with ids in [a*ValuesPerAttr, (a+1)*ValuesPerAttr).
type DenseConfig struct {
	NumTx         int
	NumAttrs      int
	ValuesPerAttr int
	// TopProbLo/Hi bound the top-value probability of attributes outside
	// every hierarchy (drawn uniformly per attribute). Keep TopProbHi below
	// the support thresholds of interest so these attributes stay noise.
	TopProbLo, TopProbHi float64
	// NoiseTop is the top-value probability of a hierarchy attribute whose
	// covering level is not clean in a tuple. Small values keep level joint
	// supports close to the configured Probs.
	NoiseTop    float64
	Hierarchies []Hierarchy
	Seed        int64
}

// Validate reports the first configuration error.
func (c DenseConfig) Validate() error {
	switch {
	case c.NumTx <= 0:
		return fmt.Errorf("gen: NumTx must be positive, got %d", c.NumTx)
	case c.NumAttrs <= 0:
		return fmt.Errorf("gen: NumAttrs must be positive, got %d", c.NumAttrs)
	case c.ValuesPerAttr < 2:
		return fmt.Errorf("gen: ValuesPerAttr must be >= 2, got %d", c.ValuesPerAttr)
	case c.TopProbLo < 0 || c.TopProbHi > 1 || c.TopProbLo > c.TopProbHi:
		return fmt.Errorf("gen: bad top-prob range [%g, %g]", c.TopProbLo, c.TopProbHi)
	case c.NoiseTop < 0 || c.NoiseTop > 1:
		return fmt.Errorf("gen: bad NoiseTop %g", c.NoiseTop)
	}
	used := make([]bool, c.NumAttrs)
	for hi, h := range c.Hierarchies {
		if len(h.Sizes) == 0 || len(h.Sizes) != len(h.Probs) {
			return fmt.Errorf("gen: hierarchy %d: sizes/probs mismatch", hi)
		}
		for k := range h.Sizes {
			if h.Sizes[k] <= 0 || (k > 0 && h.Sizes[k] <= h.Sizes[k-1]) {
				return fmt.Errorf("gen: hierarchy %d: sizes must be increasing", hi)
			}
			if h.Probs[k] < 0 || h.Probs[k] > 1 || (k > 0 && h.Probs[k] >= h.Probs[k-1]) {
				return fmt.Errorf("gen: hierarchy %d: probs must be decreasing in [0,1]", hi)
			}
		}
		span := h.Sizes[len(h.Sizes)-1]
		if h.Start < 0 || h.Start+span > c.NumAttrs {
			return fmt.Errorf("gen: hierarchy %d out of range (attrs=%d)", hi, c.NumAttrs)
		}
		for a := h.Start; a < h.Start+span; a++ {
			if used[a] {
				return fmt.Errorf("gen: hierarchies overlap at attribute %d", a)
			}
			used[a] = true
		}
	}
	return nil
}

// Dense generates a dense fixed-length database. Panics on invalid
// configuration (presets are compile-time constants; call Validate for
// dynamic configurations).
func Dense(cfg DenseConfig) *dataset.DB {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	r := rand.New(rand.NewSource(cfg.Seed))

	inHier := make([]int, cfg.NumAttrs) // attr -> hierarchy index, -1 if none
	for a := range inHier {
		inHier[a] = -1
	}
	for hi, h := range cfg.Hierarchies {
		for a := h.Start; a < h.Start+h.Sizes[len(h.Sizes)-1]; a++ {
			inHier[a] = hi
		}
	}
	topProb := make([]float64, cfg.NumAttrs)
	for a := range topProb {
		topProb[a] = cfg.TopProbLo + r.Float64()*(cfg.TopProbHi-cfg.TopProbLo)
	}

	item := func(attr, val int) dataset.Item {
		return dataset.Item(attr*cfg.ValuesPerAttr + val)
	}

	tx := make([][]dataset.Item, 0, cfg.NumTx)
	cleanUpTo := make([]int, len(cfg.Hierarchies)) // clean attr count per hierarchy
	for i := 0; i < cfg.NumTx; i++ {
		for hi, h := range cfg.Hierarchies {
			u := r.Float64()
			depth := 0
			for k := range h.Probs {
				if u < h.Probs[k] {
					depth = h.Sizes[k]
				} else {
					break
				}
			}
			cleanUpTo[hi] = h.Start + depth
		}
		t := make([]dataset.Item, cfg.NumAttrs)
		for a := 0; a < cfg.NumAttrs; a++ {
			switch hi := inHier[a]; {
			case hi >= 0 && a < cleanUpTo[hi]:
				t[a] = item(a, 0)
			case hi >= 0:
				if r.Float64() < cfg.NoiseTop {
					t[a] = item(a, 0)
				} else {
					t[a] = item(a, 1+r.Intn(cfg.ValuesPerAttr-1))
				}
			default:
				if r.Float64() < topProb[a] {
					t[a] = item(a, 0)
				} else {
					t[a] = item(a, 1+r.Intn(cfg.ValuesPerAttr-1))
				}
			}
		}
		// Attribute encodings are already sorted and duplicate-free.
		tx = append(tx, t)
	}
	return dataset.New(tx)
}

// PatternCountAt estimates the number of frequent patterns the configured
// dense data has at relative support xi, counting only the hierarchy
// structure (noise attributes contribute nothing when TopProbHi is kept
// below xi, and NoiseTop corrections are ignored). It enumerates, for every
// combination of one level (or none) per hierarchy, the subsets whose
// minimal covering levels are exactly that combination:
//
//	count = Σ_{L: Π probs(L) >= xi} Π_h (2^{s_k} − 2^{s_{k−1}})  − 1.
//
// Used by preset calibration tests and to size benchmark sweeps; returns a
// float64 because counts can exceed int ranges in misconfigured setups.
func PatternCountAt(cfg DenseConfig, xi float64) float64 {
	var rec func(h int, prob, acc float64) float64
	rec = func(h int, prob, acc float64) float64 {
		if h == len(cfg.Hierarchies) {
			return acc
		}
		// Option: skip this hierarchy.
		sum := rec(h+1, prob, acc)
		hier := cfg.Hierarchies[h]
		prev := 0
		for k := range hier.Sizes {
			p := prob * hier.Probs[k]
			if p >= xi {
				ways := pow2(hier.Sizes[k]) - pow2(prev)
				sum += rec(h+1, p, acc*ways)
			}
			prev = hier.Sizes[k]
		}
		return sum
	}
	return rec(0, 1.0, 1.0) - 1 // minus the empty choice
}

func pow2(n int) float64 {
	v := 1.0
	for i := 0; i < n; i++ {
		v *= 2
	}
	return v
}
