package gen

import (
	"fmt"
	"math/rand"

	"gogreen/internal/dataset"
)

// HotPattern describes an itemset injected into sparse data. Per
// transaction at most one hot pattern is chosen (probabilities across the
// list must sum to <= 1), so hot-pattern lattices never overlap: a hot
// pattern of length L and probability p contributes exactly 2^L−1 frequent
// patterns at any threshold below p and nothing else, which keeps the
// frequent-pattern population of a preset exactly computable (see
// SparsePatternCountAt).
type HotPattern struct {
	Len  int     // number of items
	Prob float64 // probability this pattern is the transaction's hot pattern
}

// SparseConfig parameterizes the Quest-style sparse generator.
type SparseConfig struct {
	NumTx    int // transactions to generate
	NumItems int // item-universe size
	AvgLen   int // average transaction length (Poisson)

	// Background source patterns (classic Quest machinery).
	NumSources   int     // number of background source patterns
	AvgSourceLen float64 // mean source-pattern length (Poisson, min 1)
	Correlation  float64 // fraction of items shared with the previous source
	CorruptMean  float64 // mean corruption level (items dropped from a source)

	// Hot patterns drawn over a reserved pool of low item ids.
	Hot     []HotPattern
	HotPool int // size of the reserved pool; 0 means ids [0, sum of hot lens)

	Seed int64
}

// Validate reports the first configuration error.
func (c SparseConfig) Validate() error {
	switch {
	case c.NumTx <= 0:
		return fmt.Errorf("gen: NumTx must be positive, got %d", c.NumTx)
	case c.NumItems <= 0:
		return fmt.Errorf("gen: NumItems must be positive, got %d", c.NumItems)
	case c.AvgLen <= 0:
		return fmt.Errorf("gen: AvgLen must be positive, got %d", c.AvgLen)
	}
	need := 0
	totalProb := 0.0
	for _, h := range c.Hot {
		if h.Len <= 0 || h.Prob < 0 || h.Prob > 1 {
			return fmt.Errorf("gen: bad hot pattern %+v", h)
		}
		need += h.Len
		totalProb += h.Prob
	}
	if totalProb > 1+1e-9 {
		return fmt.Errorf("gen: hot pattern probabilities sum to %g > 1", totalProb)
	}
	pool := c.HotPool
	if pool == 0 {
		pool = need
	}
	if pool > c.NumItems {
		return fmt.Errorf("gen: hot pool %d exceeds item universe %d", pool, c.NumItems)
	}
	return nil
}

// Sparse generates a Quest-style sparse database. It panics on an invalid
// configuration (configurations are compile-time constants in this repo;
// use Validate first for dynamic ones).
func Sparse(cfg SparseConfig) *dataset.DB {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	r := rand.New(rand.NewSource(cfg.Seed))

	// Materialize hot patterns over disjoint slices of the reserved pool so
	// their subset lattices do not overlap and pattern counts stay
	// predictable.
	next := 0
	hot := make([][]dataset.Item, len(cfg.Hot))
	for i, h := range cfg.Hot {
		p := make([]dataset.Item, h.Len)
		for j := range p {
			p[j] = dataset.Item(next)
			next++
		}
		hot[i] = p
	}
	poolEnd := next
	if cfg.HotPool > poolEnd {
		poolEnd = cfg.HotPool
	}

	// Background source patterns over the non-reserved universe, generated
	// with Quest-style correlation to the previous source.
	sources := make([][]dataset.Item, 0, cfg.NumSources)
	weights := make([]float64, 0, cfg.NumSources)
	var prev []dataset.Item
	totalW := 0.0
	for i := 0; i < cfg.NumSources; i++ {
		n := poisson(r, cfg.AvgSourceLen)
		if n < 1 {
			n = 1
		}
		if n > cfg.NumItems-poolEnd {
			n = cfg.NumItems - poolEnd
		}
		src := make([]dataset.Item, 0, n)
		if prev != nil && cfg.Correlation > 0 {
			take := int(cfg.Correlation * float64(n))
			for j := 0; j < take && j < len(prev); j++ {
				src = append(src, prev[r.Intn(len(prev))])
			}
		}
		for len(src) < n {
			src = append(src, dataset.Item(poolEnd+r.Intn(cfg.NumItems-poolEnd)))
		}
		src = dataset.Canonical(src)
		sources = append(sources, src)
		prev = src
		w := r.ExpFloat64()
		weights = append(weights, w)
		totalW += w
	}
	// Cumulative weights for source selection.
	cum := make([]float64, len(weights))
	acc := 0.0
	for i, w := range weights {
		acc += w / totalW
		cum[i] = acc
	}
	pickSource := func() []dataset.Item {
		if len(sources) == 0 {
			return nil
		}
		x := r.Float64()
		lo, hi := 0, len(cum)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return sources[lo]
	}

	tx := make([][]dataset.Item, 0, cfg.NumTx)
	buf := make([]dataset.Item, 0, cfg.AvgLen*2)
	for i := 0; i < cfg.NumTx; i++ {
		buf = buf[:0]
		// Hot pattern first: exclusive choice (at most one per transaction).
		u := r.Float64()
		for h, p := range hot {
			if u < cfg.Hot[h].Prob {
				buf = append(buf, p...)
				break
			}
			u -= cfg.Hot[h].Prob
		}
		// Fill to the target size with corrupted background sources.
		size := poisson(r, float64(cfg.AvgLen))
		if size < 1 {
			size = 1
		}
		guard := 0
		for len(buf) < size && guard < 50 {
			guard++
			src := pickSource()
			if src == nil {
				break
			}
			corrupt := cfg.CorruptMean + 0.1*r.NormFloat64()
			for _, it := range src {
				if r.Float64() >= corrupt {
					buf = append(buf, it)
				}
				if len(buf) >= size+len(src) { // allow mild overflow, Quest-style
					break
				}
			}
		}
		if len(buf) == 0 {
			buf = append(buf, dataset.Item(poolEnd+r.Intn(cfg.NumItems-poolEnd)))
		}
		tx = append(tx, dataset.Canonical(buf))
	}
	return dataset.New(tx)
}

// SparsePatternCountAt estimates the number of frequent patterns the
// configured sparse data has at relative support xi from the hot-pattern
// structure alone (background sources and singletons add a threshold-
// dependent remainder). Because hot patterns are exclusive and drawn over
// disjoint item pools, the estimate is simply Σ 2^len−1 over hot patterns
// with Prob >= xi.
func SparsePatternCountAt(cfg SparseConfig, xi float64) float64 {
	total := 0.0
	for _, h := range cfg.Hot {
		if h.Prob >= xi {
			total += pow2(h.Len) - 1
		}
	}
	return total
}
