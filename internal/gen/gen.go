// Package gen produces synthetic transaction databases that stand in for the
// paper's four evaluation datasets. The real files (Weather [1], Forest [3],
// Connect-4 [3], Pumsb [2]) are not shipped with this repository, so we build
// generators whose output matches the properties the experiments depend on:
// tuple counts, tuple lengths, item-universe sizes, and — most importantly —
// the size and shape of the frequent-pattern population at the paper's ξ_old
// thresholds (Table 3). See DESIGN.md §4 for the substitution rationale.
//
// Two generator families are provided:
//
//   - Sparse: an IBM Quest-style market-basket generator (the same family the
//     frequent-itemset literature uses for synthetic data) extended with
//     explicitly injected "hot" patterns so that the frequent-pattern count at
//     a given support threshold is controllable.
//   - Dense: a relational-style generator (attributes × skewed categorical
//     values with correlated clean blocks) mimicking game/census data such as
//     Connect-4 and Pumsb, where tuples have fixed length and a few items
//     appear in almost every tuple.
//
// All generators are deterministic given their Seed.
package gen

import (
	"math"
	"math/rand"

	"gogreen/internal/dataset"
)

// poisson draws from a Poisson distribution with the given mean using
// Knuth's method; adequate for the small means used here.
func poisson(r *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	l := 1.0
	limit := math.Exp(-mean)
	k := 0
	for {
		l *= r.Float64()
		if l <= limit {
			return k
		}
		k++
		if k > int(mean*20)+50 { // numerical safety net
			return k
		}
	}
}

// sampleDistinct fills dst with k distinct items drawn uniformly from
// [lo, hi) and returns it. k must be <= hi-lo.
func sampleDistinct(r *rand.Rand, k int, lo, hi int) []dataset.Item {
	out := make([]dataset.Item, 0, k)
	seen := make(map[int]struct{}, k)
	for len(out) < k {
		v := lo + r.Intn(hi-lo)
		if _, dup := seen[v]; dup {
			continue
		}
		seen[v] = struct{}{}
		out = append(out, dataset.Item(v))
	}
	return out
}
