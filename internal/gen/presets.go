package gen

import "gogreen/internal/dataset"

// The four presets below stand in for the paper's evaluation datasets
// (Table 3). Tuple counts scale linearly with the scale argument (1.0 =
// paper size); support thresholds are fractions, so the frequent-pattern
// population is scale-invariant up to sampling noise. Shapes targeted:
//
//	Weather   1,015,367 tx, avg len 15, ~8k items; sparse; ξ_old=5%  → ~1.2k patterns, max len 9
//	Forest      581,012 tx, avg len 13, ~16k items; sparse; ξ_old=1% → ~0.5k patterns, max len 4
//	Connect-4    67,557 tx, len 43, 130 items; dense;  ξ_old=95% → thousands of patterns, max len 10
//	Pumsb        49,446 tx, len 74, ~7.1k items; dense; ξ_old=90% → ~1-2k patterns, max len 8

// scaled returns n scaled, with a floor to keep tiny test scales meaningful.
func scaled(n int, scale float64) int {
	v := int(float64(n) * scale)
	if v < 200 {
		v = 200
	}
	return v
}

// Weather generates the sparse Weather stand-in at the given scale.
func Weather(scale float64) *dataset.DB {
	return Sparse(SparseConfig{
		NumTx:        scaled(1_015_367, scale),
		NumItems:     7_959,
		AvgLen:       15,
		NumSources:   400,
		AvgSourceLen: 4,
		Correlation:  0.5,
		CorruptMean:  0.5,
		// Exclusive hot patterns covering ~40% of the average tuple, so the
		// ξ_old=5% pattern set compresses the database substantially
		// (recycling wins across the sweep, as in Figure 9).
		// The last four sit below ξ_old, so relaxing the threshold uncovers
		// genuinely new structured patterns, not just background noise.
		Hot: []HotPattern{
			{9, 0.100}, {9, 0.095}, {8, 0.100}, {8, 0.095}, {7, 0.100},
			{7, 0.095}, {6, 0.100}, {6, 0.095}, {5, 0.100},
			{4, 0.040}, {6, 0.030}, {5, 0.020}, {4, 0.010},
		},
		Seed: 20040301,
	})
}

// Forest generates the sparse Forest (covertype) stand-in.
func Forest(scale float64) *dataset.DB {
	// Many short, individually rare patterns: max length 4 at ξ_old=1% and
	// weak compression (ratio near 0.8) — the regime where Figure 12 shows
	// MLP recycling can even lose to the baseline.
	hot := make([]HotPattern, 0, 45)
	for i := 0; i < 10; i++ {
		hot = append(hot, HotPattern{4, 0.025})
	}
	for i := 0; i < 15; i++ {
		hot = append(hot, HotPattern{3, 0.020})
	}
	for i := 0; i < 20; i++ {
		hot = append(hot, HotPattern{2, 0.015})
	}
	return Sparse(SparseConfig{
		NumTx:        scaled(581_012, scale),
		NumItems:     15_970,
		AvgLen:       13,
		NumSources:   700,
		AvgSourceLen: 3,
		Correlation:  0.4,
		CorruptMean:  0.6,
		Hot:          hot,
		Seed:         20040302,
	})
}

// Connect4Config is the dense Connect-4 stand-in configuration: 43
// attributes over a ~130-item universe with three independent hierarchies
// of correlated top values, calibrated so ξ_old = 95% yields thousands of
// patterns (max length ~10) and pattern counts grow by decade-scale lumps
// as the threshold drops toward 90% (the paper's log-scale regime).
func Connect4Config(scale float64) DenseConfig {
	return DenseConfig{
		NumTx:         scaled(67_557, scale),
		NumAttrs:      43,
		ValuesPerAttr: 3,
		TopProbLo:     0.40,
		TopProbHi:     0.80,
		NoiseTop:      0.10,
		Hierarchies: []Hierarchy{
			{Start: 0, Sizes: []int{10, 13, 16}, Probs: []float64{0.970, 0.910, 0.845}},
			{Start: 16, Sizes: []int{9, 12, 15}, Probs: []float64{0.960, 0.905, 0.840}},
			{Start: 31, Sizes: []int{8, 10, 12}, Probs: []float64{0.955, 0.900, 0.835}},
		},
		Seed: 20040303,
	}
}

// Connect4 generates the dense Connect-4 stand-in at the given scale.
func Connect4(scale float64) *dataset.DB { return Dense(Connect4Config(scale)) }

// PumsbConfig is the dense Pumsb (census) stand-in configuration: 74
// attributes with large per-attribute cardinality (universe ~7.1k items),
// calibrated for ξ_old = 90%.
func PumsbConfig(scale float64) DenseConfig {
	return DenseConfig{
		NumTx:         scaled(49_446, scale),
		NumAttrs:      74,
		ValuesPerAttr: 96,
		TopProbLo:     0.30,
		TopProbHi:     0.70,
		NoiseTop:      0.10,
		Hierarchies: []Hierarchy{
			{Start: 0, Sizes: []int{10, 14, 18}, Probs: []float64{0.940, 0.860, 0.790}},
			{Start: 18, Sizes: []int{8, 12, 16}, Probs: []float64{0.925, 0.850, 0.785}},
			{Start: 34, Sizes: []int{7, 10, 13}, Probs: []float64{0.915, 0.845, 0.780}},
			{Start: 47, Sizes: []int{6, 9, 12}, Probs: []float64{0.905, 0.840, 0.775}},
		},
		Seed: 20040304,
	}
}

// Pumsb generates the dense Pumsb stand-in at the given scale.
func Pumsb(scale float64) *dataset.DB { return Dense(PumsbConfig(scale)) }

// ByName returns a preset dataset generator by its lowercase name, or nil.
func ByName(name string) func(scale float64) *dataset.DB {
	switch name {
	case "weather":
		return Weather
	case "forest":
		return Forest
	case "connect4", "connect-4":
		return Connect4
	case "pumsb":
		return Pumsb
	}
	return nil
}

// PresetNames lists the available preset dataset names.
func PresetNames() []string { return []string{"weather", "forest", "connect4", "pumsb"} }
