// White-box allocation regression tests for the allocation-lean dispatch
// path: the batched emission sink and the per-worker scratch mining entry
// points must stop allocating once their buffers have warmed up — the
// steady-state property the par-* 1-worker speedup guardrail rests on.
package parallel

import (
	"context"
	"testing"

	"gogreen/internal/core"
	"gogreen/internal/dataset"
	"gogreen/internal/mining"
	"gogreen/internal/rpfptree"
	"gogreen/internal/rphmine"
	"gogreen/internal/rptreeproj"
)

// TestBatchSinkAllocs proves a warmed batch sink emits and flushes without
// allocating: pattern items, offsets, and supports all land in recycled
// slabs, and flushing drains them under one lock without copies.
func TestBatchSinkAllocs(t *testing.T) {
	var count mining.Count
	b := batchSink{dst: &lockedSink{sink: &count}}
	pats := [][]dataset.Item{{1}, {1, 2}, {1, 2, 3}, {4, 5}, {6}}
	emitAll := func() {
		for i, p := range pats {
			b.Emit(p, i+2)
		}
		b.flush()
	}
	emitAll() // warm the slabs
	if avg := testing.AllocsPerRun(100, emitAll); avg != 0 {
		t.Errorf("warmed batchSink emit+flush allocates %.1f per cycle, want 0", avg)
	}
	if count.N == 0 {
		t.Fatal("destination sink saw no emissions")
	}
}

// TestBatchSinkEarlyFlush proves the slab bound: a batch holding more than
// batchFlushItems pattern items drains mid-task rather than hoarding.
func TestBatchSinkEarlyFlush(t *testing.T) {
	var count mining.Count
	b := batchSink{dst: &lockedSink{sink: &count}}
	wide := make([]dataset.Item, 128)
	for i := 0; i < batchFlushItems/len(wide)+2; i++ {
		b.Emit(wide, 1)
		if len(b.items) > batchFlushItems {
			t.Fatalf("batch grew to %d items, bound is %d", len(b.items), batchFlushItems)
		}
	}
	if count.N == 0 {
		t.Fatal("batch never flushed early despite exceeding the bound")
	}
}

// allocDB is a branchy workload: enough distinct shapes that every miner
// recurses several levels deep and exercises its pooled buffers.
func allocDB() *dataset.DB {
	return dataset.New([][]dataset.Item{
		{0, 1, 2, 3, 4, 5},
		{0, 1, 2, 3, 4, 5},
		{0, 1, 2},
		{3, 4, 5},
		{0, 3}, {1, 4}, {2, 5},
		{0, 1, 2, 3},
		{2, 3, 4, 5},
	})
}

// TestScratchMiningAllocs gates the scratch entry points of all three
// recycled miners: mining the same encoded database repeatedly through one
// scratch must settle to (near) zero allocations per run. The bound is a
// handful, not strictly zero, to absorb map-internal churn; the pre-scratch
// baseline was thousands per mine.
func TestScratchMiningAllocs(t *testing.T) {
	db := allocDB()
	cdb := core.Compress(db, nil, core.MCP)
	const min = 2
	flist := cdb.FList(min)
	blocks, loose := core.EncodeCDB(cdb, flist)
	ctx := context.Background()

	for _, eng := range []PooledEncodedMiner{rphmine.New(), rpfptree.New(), rptreeproj.New()} {
		t.Run(eng.Name(), func(t *testing.T) {
			sc := eng.NewScratch()
			var count mining.Count
			run := func() {
				if err := eng.MineEncodedScratch(ctx, sc, blocks, loose, flist, nil, min, &count); err != nil {
					t.Fatal(err)
				}
			}
			run() // warm the scratch pools
			want := count.N
			count.N = 0
			avg := testing.AllocsPerRun(50, run)
			if avg > 4 {
				t.Errorf("warmed %s scratch mine allocates %.1f per run, want <= 4", eng.Name(), avg)
			}
			if count.N == 0 || count.N%want != 0 {
				t.Errorf("reruns emitted %d patterns, not a multiple of the first run's %d", count.N, want)
			}
		})
	}
}

// TestOneWorkerDispatchAllocs compares the whole 1-worker parallel wrapper
// against its serial engine on the same encoded database: pooled projection
// plus batched emission must keep the wrapper's per-mine allocations within
// a small constant factor of serial (the allocation half of the ≥0.9x
// speedup guardrail). The bound is deliberately loose — the wrapper
// legitimately builds per-call worker state — but it fails the build if
// per-task allocation churn ever returns.
func TestOneWorkerDispatchAllocs(t *testing.T) {
	db := allocDB()
	cdb := core.Compress(db, nil, core.MCP)
	const min = 2

	for _, eng := range []EncodedCDBMiner{rphmine.New(), rpfptree.New(), rptreeproj.New()} {
		t.Run(eng.Name(), func(t *testing.T) {
			var count mining.Count
			serial := testing.AllocsPerRun(20, func() {
				if err := eng.MineCDB(cdb, min, &count); err != nil {
					t.Fatal(err)
				}
			})
			wrapped := CDBMiner{Workers: 1, Engine: eng}
			par := testing.AllocsPerRun(20, func() {
				if err := wrapped.MineCDB(cdb, min, &count); err != nil {
					t.Fatal(err)
				}
			})
			// Fixed per-call overhead (goroutine, worker state, scratch) is
			// ~dozens of allocations; per-task or per-pattern churn would be
			// hundreds on this workload.
			if par > 2*serial+100 {
				t.Errorf("1-worker wrapper allocates %.0f per mine vs %.0f serial; dispatch churn is back", par, serial)
			}
		})
	}
}
