package parallel_test

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"gogreen/internal/core"
	"gogreen/internal/dataset"
	"gogreen/internal/engine"
	"gogreen/internal/gen"
	"gogreen/internal/hmine"
	"gogreen/internal/mining"
	"gogreen/internal/parallel"
	"gogreen/internal/rpfptree"
	"gogreen/internal/rphmine"
	"gogreen/internal/rptreeproj"
	"gogreen/internal/testutil"
)

// workerGrid is the differential suite's worker-count grid: serial-equivalent,
// minimal parallelism, the machine's width, and a count high enough to force
// the depth-2 task split on short F-lists. Deduplicated (GOMAXPROCS is often
// 1 or 2 on CI machines).
func workerGrid() []int {
	grid := []int{1, 2, runtime.GOMAXPROCS(0), 16}
	seen := map[int]bool{}
	out := grid[:0]
	for _, w := range grid {
		if !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	return out
}

// engines lists the three recycled miners the parallel wrapper covers.
func engines() []parallel.EncodedCDBMiner {
	return []parallel.EncodedCDBMiner{rphmine.New(), rpfptree.New(), rptreeproj.New()}
}

// TestParallelDifferentialPresets proves every parallel wrapper emits the
// exact pattern set and supports of its serial miner, on a dense and a
// sparse generator preset, across the worker grid. Run under -race in CI.
func TestParallelDifferentialPresets(t *testing.T) {
	cases := []struct {
		name             string
		db               *dataset.DB
		fpFrac, mineFrac float64 // recycled-round and mining thresholds
	}{
		{"dense-connect4", gen.Connect4(0.002), 0.95, 0.94},
		{"sparse-weather", gen.Weather(0.005), 0.05, 0.04},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			n := tc.db.Len()
			fpMin := mining.MinCount(n, tc.fpFrac)
			mineMin := mining.MinCount(n, tc.mineFrac)

			// Serial truth, and the earlier round's patterns to recycle.
			truth := testutil.MineSet(t, hmine.New(), tc.db, mineMin)
			var fpCol mining.Collector
			if err := hmine.New().Mine(tc.db, fpMin, &fpCol); err != nil {
				t.Fatal(err)
			}
			fp := fpCol.Patterns

			for _, w := range workerGrid() {
				got := testutil.MineSet(t, parallel.Miner{Workers: w}, tc.db, mineMin)
				if !got.Equal(truth) {
					t.Errorf("par-hmine workers=%d disagrees with serial: %v",
						w, got.Diff(truth, 8))
				}
			}

			for _, eng := range engines() {
				serial := testutil.MineSet(t,
					engine.NewRecycler(fp, core.MCP, eng), tc.db, mineMin)
				if !serial.Equal(truth) {
					t.Fatalf("serial %s disagrees with hmine: %v", eng.Name(), serial.Diff(truth, 8))
				}
				for _, w := range workerGrid() {
					wrapped := parallel.CDBMiner{Workers: w, Engine: eng}
					got := testutil.MineSet(t,
						engine.NewRecycler(fp, core.MCP, wrapped), tc.db, mineMin)
					if !got.Equal(serial) {
						t.Errorf("%s workers=%d disagrees with serial %s: %v",
							wrapped.Name(), w, eng.Name(), got.Diff(serial, 8))
					}
				}
			}
		})
	}
}

// TestParallelWrapperNames pins the wrapper naming scheme and Wrap's
// pass-through for engines without encoded entry points.
func TestParallelWrapperNames(t *testing.T) {
	want := map[string]bool{"par-rp-hmine": true, "par-rp-fptree": true, "par-rp-treeproj": true}
	for _, eng := range engines() {
		wrapped := parallel.Wrap(eng, 2)
		if !want[wrapped.Name()] {
			t.Errorf("Wrap(%s).Name() = %q", eng.Name(), wrapped.Name())
		}
	}
	if got := (parallel.CDBMiner{}).Name(); got != "par-rp-hmine" {
		t.Errorf("default CDBMiner name = %q, want par-rp-hmine", got)
	}
	naive := core.Naive{}
	if wrapped := parallel.Wrap(naive, 2); wrapped != core.CDBMiner(naive) {
		t.Errorf("Wrap(rp-naive) = %T, want pass-through", wrapped)
	}
}

// hugeDB builds nTx identical transactions over nItems items: every one of
// the 2^nItems itemsets is frequent at minCount 1, so an uncancelled mine
// is combinatorially infeasible — the vehicle for the cancellation tests.
func hugeDB(nItems, nTx int) *dataset.DB {
	row := make([]dataset.Item, nItems)
	for i := range row {
		row[i] = dataset.Item(i)
	}
	tx := make([][]dataset.Item, nTx)
	for i := range tx {
		tx[i] = row
	}
	return dataset.New(tx)
}

// TestParallelCancelMidMine proves every parallel wrapper honors mid-mine
// cancellation: the call returns the context's error within a bound, and no
// patterns are emitted after it returns.
func TestParallelCancelMidMine(t *testing.T) {
	db := hugeDB(28, 40)
	cdb := core.Compress(db, nil, core.MCP)

	type wrapper struct {
		name string
		mine func(ctx context.Context, sink mining.Sink) error
	}
	wrappers := []wrapper{{
		name: "par-hmine",
		mine: func(ctx context.Context, sink mining.Sink) error {
			return parallel.Miner{Workers: 2}.MineContext(ctx, db, 1, sink)
		},
	}}
	for _, eng := range engines() {
		w := parallel.CDBMiner{Workers: 2, Engine: eng}
		wrappers = append(wrappers, wrapper{
			name: w.Name(),
			mine: func(ctx context.Context, sink mining.Sink) error {
				return w.MineCDBContext(ctx, cdb, 1, sink)
			},
		})
	}

	for _, wr := range wrappers {
		t.Run(wr.name, func(t *testing.T) {
			var emitted atomic.Int64
			sink := mining.SinkFunc(func([]dataset.Item, int) { emitted.Add(1) })
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			done := make(chan error, 1)
			go func() { done <- wr.mine(ctx, sink) }()

			// Let the mine get going, then pull the plug.
			deadline := time.Now().Add(10 * time.Second)
			for emitted.Load() == 0 {
				if time.Now().After(deadline) {
					t.Fatal("mine emitted nothing within 10s")
				}
				time.Sleep(100 * time.Microsecond)
			}
			cancel()

			select {
			case err := <-done:
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("cancelled mine returned %v, want context.Canceled", err)
				}
			case <-time.After(5 * time.Second):
				t.Fatal("cancelled mine did not return within 5s")
			}

			// Nothing may be emitted after the call returned.
			after := emitted.Load()
			time.Sleep(20 * time.Millisecond)
			if got := emitted.Load(); got != after {
				t.Errorf("%d patterns emitted after the cancelled mine returned", got-after)
			}
		})
	}
}

// retainSink violates the mining.Sink copy contract on purpose: it retains
// the emitted slice alongside a proper copy.
type retainSink struct {
	raw    [][]dataset.Item
	copies []mining.Pattern
}

func (s *retainSink) Emit(items []dataset.Item, support int) {
	s.raw = append(s.raw, items)
	s.copies = append(s.copies, mining.Pattern{
		Items:   append([]dataset.Item(nil), items...),
		Support: support,
	})
}

// branchDB builds a small database with several distinct branch shapes so
// every wrapper fans out multiple tasks (no whole-tree shortcut applies)
// and worker batches and scratch buffers are reused across tasks.
func branchDB() *dataset.DB {
	return dataset.New([][]dataset.Item{
		{0, 1, 2, 3, 4, 5},
		{0, 1, 2, 3, 4, 5},
		{0, 1, 2},
		{3, 4, 5},
		{0, 3},
		{1, 4},
		{2, 5},
		{0, 1, 2, 3},
		{2, 3, 4, 5},
	})
}

// TestParallelSinkCopyContract documents and enforces the mining.Sink copy
// contract for every parallel wrapper: the emitted slice is only valid for
// the duration of Emit (workers reuse their batch slabs and projection
// scratch across consecutive tasks), so a sink that copies reconstructs the
// exact serial pattern set, while retained slices are overwritten by later
// emissions. The workers=1 case is the strongest reuse regime — one scratch
// state and one batch slab carry every task of the mine, so a pooled buffer
// mutated after emission corrupting an earlier result would surface here as
// a copied-set mismatch.
func TestParallelSinkCopyContract(t *testing.T) {
	db := branchDB()
	cdb := core.Compress(db, nil, core.MCP)
	truth := testutil.Oracle(t, db, 1)

	type wrapper struct {
		name string
		mine func(sink mining.Sink) error
	}
	var wrappers []wrapper
	for _, w := range []int{1, 4} {
		w := w
		wrappers = append(wrappers, wrapper{
			name: fmt.Sprintf("par-hmine-%dw", w),
			mine: func(sink mining.Sink) error {
				return parallel.Miner{Workers: w}.Mine(db, 1, sink)
			},
		})
		for _, eng := range engines() {
			pw := parallel.CDBMiner{Workers: w, Engine: eng}
			wrappers = append(wrappers, wrapper{
				name: fmt.Sprintf("%s-%dw", pw.Name(), w),
				mine: func(sink mining.Sink) error { return pw.MineCDB(cdb, 1, sink) },
			})
		}
	}

	for _, wr := range wrappers {
		t.Run(wr.name, func(t *testing.T) {
			var sink retainSink
			if err := wr.mine(&sink); err != nil {
				t.Fatal(err)
			}
			var col mining.Collector
			for _, p := range sink.copies {
				col.Emit(p.Items, p.Support)
			}
			set, err := col.Set()
			if err != nil {
				t.Fatal(err)
			}
			if !set.Equal(truth) {
				t.Errorf("copied emissions disagree with oracle: %v", set.Diff(truth, 8))
			}
			// The aliasing hazard is real: at least one retained slice was
			// overwritten by a later emission reusing the same buffer.
			stale := 0
			for i, raw := range sink.raw {
				want := sink.copies[i].Items
				if len(raw) != len(want) {
					stale++
					continue
				}
				for j := range raw {
					if raw[j] != want[j] {
						stale++
						break
					}
				}
			}
			if stale == 0 {
				t.Error("every retained slice still matches its copy; aliasing test lost its teeth (buffers no longer reused?)")
			}
		})
	}
}
