package parallel_test

import (
	"math/rand"
	"testing"

	"gogreen/internal/core"
	"gogreen/internal/dataset"
	"gogreen/internal/engine"
	"gogreen/internal/mining"
	"gogreen/internal/parallel"
	"gogreen/internal/testutil"
)

func TestParallelMatchesOracle(t *testing.T) {
	r := rand.New(rand.NewSource(91))
	for _, workers := range []int{0, 1, 2, 7} {
		for rep := 0; rep < 6; rep++ {
			db := testutil.RandomDB(r, 40+r.Intn(100), 6+r.Intn(12), 2+r.Intn(9))
			for _, min := range []int{2, 5} {
				testutil.CheckAgainstOracle(t, parallel.Miner{Workers: workers}, db, min)
			}
		}
	}
}

func TestParallelCDBMatchesOracle(t *testing.T) {
	r := rand.New(rand.NewSource(92))
	for rep := 0; rep < 6; rep++ {
		db := testutil.RandomDB(r, 40+r.Intn(100), 6+r.Intn(12), 2+r.Intn(9))
		fp := testutil.Oracle(t, db, 5).Slice()
		for _, workers := range []int{0, 1, 3} {
			rec := engine.NewRecycler(fp, core.MCP, parallel.CDBMiner{Workers: workers})
			testutil.CheckAgainstOracle(t, rec, db, 2)
		}
	}
}

func TestParallelPaperExample(t *testing.T) {
	db := testutil.PaperDB()
	testutil.CheckAgainstOracle(t, parallel.Miner{}, db, 2)
	testutil.CheckAgainstOracle(t, parallel.Miner{Workers: 3}, db, 1)
}

func TestParallelEdgeCases(t *testing.T) {
	sink := mining.SinkFunc(func([]dataset.Item, int) {})
	if err := (parallel.Miner{}).Mine(dataset.New(nil), 0, sink); err != mining.ErrBadMinSupport {
		t.Errorf("got %v", err)
	}
	if err := (parallel.Miner{}).Mine(dataset.New(nil), 1, sink); err != nil {
		t.Errorf("empty db: %v", err)
	}
	cdb := core.Compress(dataset.New(nil), nil, core.MCP)
	if err := (parallel.CDBMiner{}).MineCDB(cdb, 0, sink); err != mining.ErrBadMinSupport {
		t.Errorf("got %v", err)
	}
	if err := (parallel.CDBMiner{}).MineCDB(cdb, 1, sink); err != nil {
		t.Errorf("empty cdb: %v", err)
	}
}

// TestParallelRace runs with many workers on a shared collector to give the
// race detector something to chew on (go test -race).
func TestParallelRace(t *testing.T) {
	r := rand.New(rand.NewSource(93))
	db := testutil.RandomDB(r, 300, 12, 10)
	var c mining.Collector
	if err := (parallel.Miner{Workers: 16}).Mine(db, 3, &c); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Set(); err != nil {
		t.Fatal(err) // duplicates would indicate overlapping subtrees
	}
}
