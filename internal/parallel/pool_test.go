package parallel

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// TestPoolStopsAfterError is the regression test for the shared done signal:
// the old runWorkers only set a per-goroutine failed flag, so after one task
// errored the producer still fed all n tasks and every other worker ran them
// to completion. Now the first error marks the pool stopped and cancels the
// task context, so at most the already-running tasks execute — the queued
// remainder is abandoned.
func TestPoolStopsAfterError(t *testing.T) {
	const tasks, workers = 100, 4
	boom := errors.New("boom")
	var started atomic.Int64
	err := runPool(context.Background(), workers, func(p *pool) {
		for i := 0; i < tasks; i++ {
			p.submit(func(c context.Context, _ int) error {
				if started.Add(1) == 1 {
					return boom // first executed task fails
				}
				// Siblings already popped park until the pool reacts; a task
				// can only pass this point once the error cancelled c.
				<-c.Done()
				return nil
			})
		}
	})
	if !errors.Is(err, boom) {
		t.Fatalf("runPool = %v, want the injected error (first error wins over cancellations)", err)
	}
	if got := started.Load(); got > workers {
		t.Errorf("%d tasks executed after the injected error, want <= %d (the in-flight ones)",
			got-1, workers-1)
	}
}

// TestPoolOuterCancel proves outer-context cancellation drains the pool with
// the context's error even when tasks themselves return nil.
func TestPoolOuterCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	errc := make(chan error, 1)
	go func() {
		errc <- runPool(ctx, 2, func(p *pool) {
			for i := 0; i < 50; i++ {
				p.submit(func(c context.Context, _ int) error {
					started.Add(1)
					<-c.Done()
					return c.Err()
				})
			}
		})
	}()
	for started.Load() == 0 {
		time.Sleep(50 * time.Microsecond)
	}
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("runPool = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pool did not drain within 5s of outer cancellation")
	}
	if got := started.Load(); got > 2 {
		t.Errorf("%d tasks started, want <= worker count 2", got)
	}
}

// TestPoolSubtaskSpawning proves tasks can submit subtasks (the depth-2
// split path) and the pool drains only when all of them finished.
func TestPoolSubtaskSpawning(t *testing.T) {
	var ran atomic.Int64
	err := runPool(context.Background(), 3, func(p *pool) {
		for i := 0; i < 5; i++ {
			p.submit(func(context.Context, int) error {
				ran.Add(1)
				for j := 0; j < 4; j++ {
					p.submit(func(context.Context, int) error {
						ran.Add(1)
						return nil
					})
				}
				return nil
			})
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := ran.Load(); got != 5+5*4 {
		t.Errorf("ran %d tasks, want %d", got, 5+5*4)
	}
}
