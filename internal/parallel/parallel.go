// Package parallel mines frequent patterns with worker goroutines, one
// top-level projected database per task — the divide-and-conquer structure
// of the projected-database framework makes the subtrees of distinct
// F-list items independent, so they parallelize without coordination.
//
// This is an extension beyond the paper (2004 hardware was single-core);
// it exists to show the recycling scheme composes with parallelism: the
// plain H-Mine baseline and all three compressed-database engines
// (Recycle-HM, Recycle-FP, Recycle-TP) can be wrapped, and the recycling
// advantage carries over per worker.
//
// When the F-list is short relative to the worker count (dense datasets
// have few top-level items), tasks split one level deeper: the wrapper
// emits the two-item patterns itself and hands each {r, r2} subtree to the
// pool, so skewed top-level subtrees no longer serialize on one worker.
//
// Task dispatch is allocation-lean: every worker owns a scratch state — the
// engine's recycled working memory (PooledEncodedMiner), a pooled projection
// buffer, and a local emission batch flushed to the shared sink under one
// lock acquisition per task — so the steady path costs (near) zero
// allocations per task and no per-pattern mutex traffic. Engines that
// implement SharedTaskMiner (Recycle-FP) skip per-task re-projection
// entirely: the wrapper builds one read-only structure and fans out
// top-level items against it, preserving the prefix sharing that per-task
// tree rebuilds destroyed.
//
// Mining honors context cancellation: the pool stops handing out tasks on
// the first task error or context cancellation, and in-flight subtrees
// abort through their engines' cooperative cancellers.
//
// Pattern ordering differs run to run (workers race); the emitted set and
// supports are deterministic.
package parallel

import (
	"context"
	"runtime"
	"sync"

	"gogreen/internal/core"
	"gogreen/internal/dataset"
	"gogreen/internal/hmine"
	"gogreen/internal/mining"
	"gogreen/internal/rphmine"
)

// splitFactor decides when per-item tasks are too coarse: with fewer than
// splitFactor tasks per worker, top-level subtrees split one level deeper.
const splitFactor = 4

// Miner mines uncompressed databases with parallel H-Mine workers.
type Miner struct {
	// Workers is the goroutine count; 0 means GOMAXPROCS.
	Workers int
}

// Name implements mining.Miner.
func (Miner) Name() string { return "par-hmine" }

// Mine implements mining.Miner.
func (m Miner) Mine(db *dataset.DB, minCount int, sink mining.Sink) error {
	return m.mine(context.Background(), db, minCount, sink)
}

// MineContext implements mining.ContextMiner: like Mine, but the pool stops
// dispatching and in-flight workers abort promptly when ctx is cancelled or
// times out, returning the context's error.
func (m Miner) MineContext(ctx context.Context, db *dataset.DB, minCount int, sink mining.Sink) error {
	return m.mine(ctx, db, minCount, sink)
}

// hWorkerState is one par-hmine worker's reusable memory: the H-Mine
// scratch, the projection pointer buffer, a prefix buffer, and the local
// emission batch. Owned by exactly one worker goroutine.
type hWorkerState struct {
	scratch *hmine.Scratch
	proj    [][]dataset.Item
	prefix  []dataset.Item
	batch   batchSink
}

func (m Miner) mine(ctx context.Context, db *dataset.DB, minCount int, sink mining.Sink) error {
	if minCount < 1 {
		return mining.ErrBadMinSupport
	}
	flist := mining.BuildFList(db, minCount)
	if flist.Len() == 0 {
		return nil
	}
	tx := flist.EncodeDB(db)
	safe := &lockedSink{sink: sink}

	// Build the projection offsets once: sites[starts[r]:starts[r+1]] locates
	// every tuple whose r-projection is non-empty, so workers share the table
	// read-only instead of each rescanning the whole encoded database per
	// task (which cost O(tasks·|DB|·len) duplicated probes).
	starts, sites := projSites(tx, flist.Len())

	n := flist.Len()
	workers := resolveWorkers(m.Workers, n)
	split := n < splitFactor*workers

	states := make([]*hWorkerState, workers)
	for i := range states {
		states[i] = &hWorkerState{scratch: hmine.NewScratch(), batch: batchSink{dst: safe}}
	}

	return runPool(ctx, workers, func(p *pool) {
		for r := 0; r < n; r++ {
			r := r
			p.submit(func(c context.Context, wid int) error {
				ws := states[wid]
				defer ws.batch.flush()
				// Emit the item itself, then its subtree.
				buf := [1]dataset.Item{flist.Items[r]}
				ws.batch.Emit(buf[:], flist.Support[r])
				span := sites[starts[r]:starts[r+1]]
				if len(span) == 0 {
					return nil
				}
				// The r-projected database, built into the worker's pooled
				// pointer buffer: suffixes after r of tuples containing r.
				// The suffix slices alias the shared encoded database; the
				// engine is done with the buffer when the call returns, so
				// the next task on this worker may reuse it.
				proj := ws.proj[:0]
				for _, s := range span {
					proj = append(proj, tx[s.tx][s.pos+1:])
				}
				ws.proj = proj
				ws.prefix = append(ws.prefix[:0], dataset.Item(r))
				if !split {
					return hmine.MineProjectedScratch(c, ws.scratch, proj, flist, ws.prefix, minCount, &ws.batch)
				}
				return splitProjected(c, p, states, proj, flist, ws.prefix, minCount, &ws.batch)
			})
		}
	})
}

// splitProjected splits one top-level H-Mine task a level deeper: it emits
// every frequent two-item extension of prefix itself and submits each
// {prefix, r2} subtree to the pool as an independent task. Subtask
// projections outlive this call (they run on other workers), so they are
// freshly allocated here — only their tuple data aliases the shared encoded
// database.
func splitProjected(c context.Context, p *pool, states []*hWorkerState, proj [][]dataset.Item, flist *mining.FList, prefix []dataset.Item, minCount int, sink mining.Sink) error {
	counts := make([]int, flist.Len())
	for _, t := range proj {
		for _, it := range t {
			counts[it]++
		}
	}
	buf := append(append([]dataset.Item(nil), prefix...), 0)
	decoded := make([]dataset.Item, len(buf))
	for r2 := range counts {
		if counts[r2] < minCount {
			continue
		}
		if err := c.Err(); err != nil {
			return err
		}
		buf[len(buf)-1] = dataset.Item(r2)
		sink.Emit(flist.DecodeInto(decoded, buf), counts[r2])
		sub := make([][]dataset.Item, 0, counts[r2])
		for _, t := range proj {
			if i := rankIndex(t, dataset.Item(r2)); i >= 0 && i+1 < len(t) {
				sub = append(sub, t[i+1:])
			}
		}
		if len(sub) == 0 {
			continue
		}
		subPrefix := append([]dataset.Item(nil), buf...)
		p.submit(func(c context.Context, wid int) error {
			ws := states[wid]
			defer ws.batch.flush()
			return hmine.MineProjectedScratch(c, ws.scratch, sub, flist, subPrefix, minCount, &ws.batch)
		})
	}
	return nil
}

// site locates one occurrence of a ranked item inside the encoded database:
// tuple index and position within the tuple.
type site struct {
	tx, pos int32
}

// projSites indexes the encoded database for projection: for each ranked
// item r, sites[starts[r]:starts[r+1]] holds the (tuple, position) pairs
// whose suffix after r is non-empty, in tuple order. Built in one counting
// pass plus one fill pass; the result is immutable and safe to share across
// worker goroutines.
func projSites(tx [][]dataset.Item, n int) (starts []int32, sites []site) {
	starts = make([]int32, n+1)
	for _, t := range tx {
		for i := 0; i+1 < len(t); i++ {
			starts[t[i]+1]++
		}
	}
	for r := 0; r < n; r++ {
		starts[r+1] += starts[r]
	}
	sites = make([]site, starts[n])
	next := make([]int32, n)
	copy(next, starts[:n])
	for ti, t := range tx {
		for i := 0; i+1 < len(t); i++ {
			r := t[i]
			sites[next[r]] = site{tx: int32(ti), pos: int32(i)}
			next[r]++
		}
	}
	return starts, sites
}

// rankIndex returns the index of r in the ascending rank-encoded tuple t,
// or -1.
func rankIndex(t []dataset.Item, r dataset.Item) int {
	lo, hi := 0, len(t)
	for lo < hi {
		mid := (lo + hi) / 2
		if t[mid] < r {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(t) && t[lo] == r {
		return lo
	}
	return -1
}

// EncodedCDBMiner is the engine contract the parallel CDB wrapper drives:
// a compressed-database miner that can also mine an already rank-encoded
// projection under a prefix, with and without a context. Satisfied by the
// Recycle-HM, Recycle-FP and Recycle-TP engines.
type EncodedCDBMiner interface {
	core.CDBMiner
	MineEncoded(blocks []core.Block, loose [][]dataset.Item, flist *mining.FList, prefix []dataset.Item, minCount int, sink mining.Sink) error
	MineEncodedContext(ctx context.Context, blocks []core.Block, loose [][]dataset.Item, flist *mining.FList, prefix []dataset.Item, minCount int, sink mining.Sink) error
}

// PooledEncodedMiner is an EncodedCDBMiner whose working memory survives
// across calls: NewScratch allocates it once per worker, and
// MineEncodedScratch mines through it. A scratch is owned by one goroutine
// at a time; the engine must be done with the caller's projection when the
// call returns (so the wrapper may reuse its projection buffers), and all
// calls reusing one scratch should pass the same F-list. All three rp-*
// engines satisfy this.
type PooledEncodedMiner interface {
	EncodedCDBMiner
	NewScratch() any
	MineEncodedScratch(ctx context.Context, scratch any, blocks []core.Block, loose [][]dataset.Item, flist *mining.FList, prefix []dataset.Item, minCount int, sink mining.Sink) error
}

// SharedTaskMiner is a PooledEncodedMiner that can decompose a mine into
// per-item tasks against one shared read-only structure instead of per-task
// re-projection. PrepareShared builds the structure and returns the task
// items (a nil shared value means a whole-projection shortcut applies and
// the caller should mine serially via MineEncodedScratch); MineSharedTask
// mines one task, emitting the task item's own pattern too, and is safe to
// call concurrently with distinct scratches against one shared value.
// Recycle-FP satisfies this: rebuilding a prefix tree per task destroyed
// the prefix sharing that makes FP-growth fast, so its parallel mode builds
// the tree once.
type SharedTaskMiner interface {
	PooledEncodedMiner
	PrepareShared(blocks []core.Block, loose [][]dataset.Item, flist *mining.FList, minCount int) (shared any, tasks []dataset.Item)
	MineSharedTask(ctx context.Context, scratch, shared any, task dataset.Item, prefix []dataset.Item, sink mining.Sink) error
}

// workerState is one CDB worker's reusable memory: the engine scratch, the
// pooled projection buffers, a prefix buffer, and the local emission batch.
// Owned by exactly one worker goroutine.
type workerState struct {
	scratch any // non-nil iff the engine is a PooledEncodedMiner
	proj    core.ProjScratch
	prefix  []dataset.Item
	batch   batchSink
}

// CDBMiner mines compressed databases by fanning independent top-level
// subtrees out to worker goroutines, each mined by Engine.
type CDBMiner struct {
	// Workers is the goroutine count; 0 means GOMAXPROCS.
	Workers int
	// Engine mines the per-task projections; nil means Recycle-HM.
	Engine EncodedCDBMiner
}

// Wrap returns a parallel wrapper around engine when it supports encoded
// projections, or engine unchanged otherwise (e.g. rp-naive). Workers
// follows CDBMiner semantics: 0 means GOMAXPROCS.
func Wrap(engine core.CDBMiner, workers int) core.CDBMiner {
	if e, ok := engine.(EncodedCDBMiner); ok {
		return CDBMiner{Workers: workers, Engine: e}
	}
	return engine
}

func (m CDBMiner) engine() EncodedCDBMiner {
	if m.Engine == nil {
		return rphmine.New()
	}
	return m.Engine
}

// Name implements core.CDBMiner.
func (m CDBMiner) Name() string { return "par-" + m.engine().Name() }

// MineCDB implements core.CDBMiner.
func (m CDBMiner) MineCDB(cdb *core.CDB, minCount int, sink mining.Sink) error {
	return m.mineCDB(context.Background(), cdb, minCount, sink)
}

// MineCDBContext implements core.ContextCDBMiner: like MineCDB, but the
// pool stops dispatching and in-flight workers abort promptly when ctx is
// cancelled or times out, returning the context's error.
func (m CDBMiner) MineCDBContext(ctx context.Context, cdb *core.CDB, minCount int, sink mining.Sink) error {
	return m.mineCDB(ctx, cdb, minCount, sink)
}

func (m CDBMiner) mineCDB(ctx context.Context, cdb *core.CDB, minCount int, sink mining.Sink) error {
	if minCount < 1 {
		return mining.ErrBadMinSupport
	}
	eng := m.engine()
	flist := cdb.FList(minCount)
	if flist.Len() == 0 {
		return nil
	}
	blocks, loose := core.EncodeCDB(cdb, flist)
	safe := &lockedSink{sink: sink}

	n := flist.Len()
	workers := resolveWorkers(m.Workers, n)
	split := n < splitFactor*workers

	pooled, _ := eng.(PooledEncodedMiner)
	states := make([]*workerState, workers)
	for i := range states {
		ws := &workerState{batch: batchSink{dst: safe}}
		if pooled != nil {
			ws.scratch = pooled.NewScratch()
		}
		states[i] = ws
	}

	// Shared-task mode: one read-only structure, one task per top-level
	// frequent item, no per-task re-projection. The tasks emit their own
	// top-level patterns (supports come from the shared structure, matching
	// the serial walk exactly).
	if stm, ok := eng.(SharedTaskMiner); ok {
		shared, tasks := stm.PrepareShared(blocks, loose, flist, minCount)
		if shared == nil {
			// A whole-projection shortcut applies: mine as one serial task.
			return runPool(ctx, workers, func(p *pool) {
				p.submit(func(c context.Context, wid int) error {
					ws := states[wid]
					defer ws.batch.flush()
					return stm.MineEncodedScratch(c, ws.scratch, blocks, loose, flist, nil, minCount, &ws.batch)
				})
			})
		}
		return runPool(ctx, workers, func(p *pool) {
			for _, r := range tasks {
				r := r
				p.submit(func(c context.Context, wid int) error {
					ws := states[wid]
					defer ws.batch.flush()
					return stm.MineSharedTask(c, ws.scratch, shared, r, nil, &ws.batch)
				})
			}
		})
	}

	return runPool(ctx, workers, func(p *pool) {
		for r := 0; r < n; r++ {
			r := r
			p.submit(func(c context.Context, wid int) error {
				ws := states[wid]
				defer ws.batch.flush()
				buf := [1]dataset.Item{flist.Items[r]}
				ws.batch.Emit(buf[:], flist.Support[r])
				var subBlocks []core.Block
				var subLoose [][]dataset.Item
				if !split && pooled != nil {
					// The engine is done with the projection when the call
					// returns, so it may live in the worker's scratch slab.
					subBlocks, subLoose = ws.proj.Project(blocks, loose, dataset.Item(r))
				} else {
					// Split subtasks outlive this task (they run on other
					// workers) and alias this projection's tail slices, so
					// it must be freshly allocated.
					subBlocks, subLoose = core.Project(blocks, loose, dataset.Item(r))
				}
				if len(subBlocks) == 0 && len(subLoose) == 0 {
					return nil
				}
				ws.prefix = append(ws.prefix[:0], dataset.Item(r))
				if !split {
					if pooled != nil {
						return pooled.MineEncodedScratch(c, ws.scratch, subBlocks, subLoose, flist, ws.prefix, minCount, &ws.batch)
					}
					return eng.MineEncodedContext(c, subBlocks, subLoose, flist, ws.prefix, minCount, &ws.batch)
				}
				return splitEncoded(c, p, eng, states, subBlocks, subLoose, flist, ws.prefix, minCount, &ws.batch)
			})
		}
	})
}

// splitEncoded splits one top-level compressed task a level deeper,
// mirroring splitProjected over blocks: suffix occurrences count at block
// weight, tail and loose occurrences at one. Subtask projections outlive
// this call, so core.Project allocates them fresh — their item data aliases
// only the immortal root encoding.
func splitEncoded(c context.Context, p *pool, eng EncodedCDBMiner, states []*workerState, blocks []core.Block, loose [][]dataset.Item, flist *mining.FList, prefix []dataset.Item, minCount int, sink mining.Sink) error {
	counts := make([]int, flist.Len())
	for i := range blocks {
		b := &blocks[i]
		for _, it := range b.Suffix {
			counts[it] += b.Count
		}
		for _, tail := range b.Tails {
			for _, it := range tail {
				counts[it]++
			}
		}
	}
	for _, t := range loose {
		for _, it := range t {
			counts[it]++
		}
	}
	pooled, _ := eng.(PooledEncodedMiner)
	buf := append(append([]dataset.Item(nil), prefix...), 0)
	decoded := make([]dataset.Item, len(buf))
	for r2 := range counts {
		if counts[r2] < minCount {
			continue
		}
		if err := c.Err(); err != nil {
			return err
		}
		buf[len(buf)-1] = dataset.Item(r2)
		sink.Emit(flist.DecodeInto(decoded, buf), counts[r2])
		subBlocks, subLoose := core.Project(blocks, loose, dataset.Item(r2))
		if len(subBlocks) == 0 && len(subLoose) == 0 {
			continue
		}
		subPrefix := append([]dataset.Item(nil), buf...)
		p.submit(func(c context.Context, wid int) error {
			ws := states[wid]
			defer ws.batch.flush()
			if pooled != nil {
				return pooled.MineEncodedScratch(c, ws.scratch, subBlocks, subLoose, flist, subPrefix, minCount, &ws.batch)
			}
			return eng.MineEncodedContext(c, subBlocks, subLoose, flist, subPrefix, minCount, &ws.batch)
		})
	}
	return nil
}

// resolveWorkers maps the Workers knob to an effective goroutine count:
// non-positive means GOMAXPROCS, capped by the top-level task count.
func resolveWorkers(w, n int) int {
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// pool is a dynamic work queue shared by the mining workers. Tasks may
// submit further tasks (the depth-2 split); the pool drains when every
// submitted task has finished, and stops early — abandoning the queue and
// cancelling the tasks' context so in-flight subtrees unwind — on the
// first task error or outer-context cancellation.
type pool struct {
	mu      sync.Mutex
	cond    *sync.Cond
	queue   []func(context.Context, int) error
	pending int // queued + running tasks
	stopped bool
	err     error
	inner   context.Context
	cancel  context.CancelFunc
}

// submit enqueues a task; the task receives the inner context and the index
// of the worker running it (its key into per-worker scratch state). Safe to
// call from the seeding function and from running tasks; after the pool
// stops, submissions are dropped.
func (p *pool) submit(task func(context.Context, int) error) {
	p.mu.Lock()
	if p.stopped {
		p.mu.Unlock()
		return
	}
	p.queue = append(p.queue, task)
	p.pending++
	p.cond.Signal()
	p.mu.Unlock()
}

// runPool runs the tasks seeded by seed (plus any they submit) on workers
// goroutines, returning the first task error, or the context's error when
// ctx was cancelled.
func runPool(ctx context.Context, workers int, seed func(*pool)) error {
	inner, cancel := context.WithCancel(ctx)
	defer cancel()
	p := &pool{inner: inner, cancel: cancel}
	p.cond = sync.NewCond(&p.mu)
	seed(p)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(wid int) {
			defer wg.Done()
			p.work(wid)
		}(w)
	}
	wg.Wait()

	if p.err != nil {
		return p.err
	}
	return ctx.Err()
}

// work is one worker's loop: pop newest-first (LIFO keeps the queue small
// under splitting), run, account. The first failure marks the pool stopped
// and cancels the shared inner context so running siblings abort too.
func (p *pool) work(wid int) {
	for {
		p.mu.Lock()
		for !p.stopped && len(p.queue) == 0 && p.pending > 0 {
			p.cond.Wait()
		}
		if p.stopped || len(p.queue) == 0 {
			p.mu.Unlock()
			return
		}
		task := p.queue[len(p.queue)-1]
		p.queue = p.queue[:len(p.queue)-1]
		p.mu.Unlock()

		err := task(p.inner, wid)

		p.mu.Lock()
		if err != nil && !p.stopped {
			p.stopped = true
			p.err = err
			p.cancel()
		}
		p.pending--
		if p.pending == 0 || p.stopped {
			p.cond.Broadcast()
		}
		p.mu.Unlock()
	}
}

// lockedSink serializes emissions from concurrent workers. The wrapped sink
// keeps the mining.Sink contract obligations: the emitted slice is only
// valid for the duration of the call, so sinks that retain patterns must
// copy (workers reuse their prefix buffers immediately after Emit returns).
type lockedSink struct {
	mu   sync.Mutex
	sink mining.Sink
}

// Emit implements mining.Sink.
func (s *lockedSink) Emit(items []dataset.Item, support int) {
	s.mu.Lock()
	s.sink.Emit(items, support)
	s.mu.Unlock()
}

// batchFlushItems bounds a worker's local batch: past this many buffered
// pattern items the batch flushes early, so giant tasks cannot hoard
// unbounded memory before their completion flush.
const batchFlushItems = 1 << 14

// batchSink buffers one worker's emissions locally and hands them to the
// shared sink under a single lock acquisition — per-pattern mutex traffic
// was the other half of the parallel dispatch cost. Each task flushes its
// batch on completion, so emissions reach the destination sink before the
// wrapper returns. The buffers are recycled across flushes; the slices
// passed to the destination obey the mining.Sink contract (valid only for
// the duration of Emit).
type batchSink struct {
	dst   *lockedSink
	items []dataset.Item // concatenated pattern items
	ends  []int32        // end offset of each pattern in items
	sups  []int          // support of each pattern
}

// Emit implements mining.Sink.
func (b *batchSink) Emit(items []dataset.Item, support int) {
	b.items = append(b.items, items...)
	b.ends = append(b.ends, int32(len(b.items)))
	b.sups = append(b.sups, support)
	if len(b.items) >= batchFlushItems {
		b.flush()
	}
}

// flush drains the batch to the destination sink under one lock
// acquisition and resets the buffers for reuse.
func (b *batchSink) flush() {
	if len(b.sups) == 0 {
		return
	}
	b.dst.mu.Lock()
	start := int32(0)
	for i, end := range b.ends {
		b.dst.sink.Emit(b.items[start:end], b.sups[i])
		start = end
	}
	b.dst.mu.Unlock()
	b.items, b.ends, b.sups = b.items[:0], b.ends[:0], b.sups[:0]
}
