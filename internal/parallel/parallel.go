// Package parallel mines frequent patterns with worker goroutines, one
// top-level projected database per task — the divide-and-conquer structure
// of the projected-database framework makes the subtrees of distinct
// F-list items independent, so they parallelize without coordination.
//
// This is an extension beyond the paper (2004 hardware was single-core);
// it exists to show the recycling scheme composes with parallelism: both
// the plain H-Mine baseline and the compressed-database Recycle-HM engine
// are wrapped, and the recycling advantage carries over per worker.
//
// Pattern ordering differs run to run (workers race); the emitted set and
// supports are deterministic.
package parallel

import (
	"runtime"
	"sync"

	"gogreen/internal/core"
	"gogreen/internal/dataset"
	"gogreen/internal/hmine"
	"gogreen/internal/mining"
	"gogreen/internal/rphmine"
)

// Miner mines uncompressed databases with parallel H-Mine workers.
type Miner struct {
	// Workers is the goroutine count; 0 means GOMAXPROCS.
	Workers int
}

// Name implements mining.Miner.
func (Miner) Name() string { return "par-hmine" }

// Mine implements mining.Miner.
func (m Miner) Mine(db *dataset.DB, minCount int, sink mining.Sink) error {
	if minCount < 1 {
		return mining.ErrBadMinSupport
	}
	flist := mining.BuildFList(db, minCount)
	if flist.Len() == 0 {
		return nil
	}
	tx := flist.EncodeDB(db)
	safe := &lockedSink{sink: sink}

	return runWorkers(m.Workers, flist.Len(), func(r int) error {
		// The r-projected database: suffixes after r of tuples containing r.
		var proj [][]dataset.Item
		for _, t := range tx {
			for i, it := range t {
				if it == dataset.Item(r) {
					if i+1 < len(t) {
						proj = append(proj, t[i+1:])
					}
					break
				}
				if it > dataset.Item(r) {
					break
				}
			}
		}
		// Emit the item itself, then its subtree.
		buf := [1]dataset.Item{flist.Items[r]}
		safe.Emit(buf[:], flist.Support[r])
		if len(proj) == 0 {
			return nil
		}
		return hmine.MineProjected(proj, flist, []dataset.Item{dataset.Item(r)}, minCount, safe)
	})
}

// CDBMiner mines compressed databases with parallel Recycle-HM workers.
type CDBMiner struct {
	// Workers is the goroutine count; 0 means GOMAXPROCS.
	Workers int
}

// Name implements core.CDBMiner.
func (CDBMiner) Name() string { return "par-rp-hmine" }

// MineCDB implements core.CDBMiner.
func (m CDBMiner) MineCDB(cdb *core.CDB, minCount int, sink mining.Sink) error {
	if minCount < 1 {
		return mining.ErrBadMinSupport
	}
	flist := cdb.FList(minCount)
	if flist.Len() == 0 {
		return nil
	}
	blocks, loose := core.EncodeCDB(cdb, flist)
	safe := &lockedSink{sink: sink}

	return runWorkers(m.Workers, flist.Len(), func(r int) error {
		buf := [1]dataset.Item{flist.Items[r]}
		safe.Emit(buf[:], flist.Support[r])
		subBlocks, subLoose := core.Project(blocks, loose, dataset.Item(r))
		if len(subBlocks) == 0 && len(subLoose) == 0 {
			return nil
		}
		return rphmine.Miner{}.MineEncoded(subBlocks, subLoose, flist,
			[]dataset.Item{dataset.Item(r)}, minCount, safe)
	})
}

// runWorkers distributes tasks 0..n-1 over a worker pool, returning the
// first error.
func runWorkers(workers, n int, task func(int) error) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	jobs := make(chan int)
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			failed := false
			for r := range jobs {
				if failed {
					continue // drain so the producer never blocks
				}
				if err := task(r); err != nil {
					failed = true
					select {
					case errs <- err:
					default:
					}
				}
			}
		}()
	}
	for r := 0; r < n; r++ {
		jobs <- r
	}
	close(jobs)
	wg.Wait()
	select {
	case err := <-errs:
		return err
	default:
		return nil
	}
}

// lockedSink serializes emissions from concurrent workers.
type lockedSink struct {
	mu   sync.Mutex
	sink mining.Sink
}

// Emit implements mining.Sink.
func (s *lockedSink) Emit(items []dataset.Item, support int) {
	s.mu.Lock()
	s.sink.Emit(items, support)
	s.mu.Unlock()
}
