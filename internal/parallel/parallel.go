// Package parallel mines frequent patterns with worker goroutines, one
// top-level projected database per task — the divide-and-conquer structure
// of the projected-database framework makes the subtrees of distinct
// F-list items independent, so they parallelize without coordination.
//
// This is an extension beyond the paper (2004 hardware was single-core);
// it exists to show the recycling scheme composes with parallelism: both
// the plain H-Mine baseline and the compressed-database Recycle-HM engine
// are wrapped, and the recycling advantage carries over per worker.
//
// Pattern ordering differs run to run (workers race); the emitted set and
// supports are deterministic.
package parallel

import (
	"runtime"
	"sync"

	"gogreen/internal/core"
	"gogreen/internal/dataset"
	"gogreen/internal/hmine"
	"gogreen/internal/mining"
	"gogreen/internal/rphmine"
)

// Miner mines uncompressed databases with parallel H-Mine workers.
type Miner struct {
	// Workers is the goroutine count; 0 means GOMAXPROCS.
	Workers int
}

// Name implements mining.Miner.
func (Miner) Name() string { return "par-hmine" }

// Mine implements mining.Miner.
func (m Miner) Mine(db *dataset.DB, minCount int, sink mining.Sink) error {
	if minCount < 1 {
		return mining.ErrBadMinSupport
	}
	flist := mining.BuildFList(db, minCount)
	if flist.Len() == 0 {
		return nil
	}
	tx := flist.EncodeDB(db)
	safe := &lockedSink{sink: sink}

	// Build the projection offsets once: sites[starts[r]:starts[r+1]] locates
	// every tuple whose r-projection is non-empty, so workers share the table
	// read-only instead of each rescanning the whole encoded database per
	// task (which cost O(tasks·|DB|·len) duplicated probes).
	starts, sites := projSites(tx, flist.Len())

	return runWorkers(m.Workers, flist.Len(), func(r int) error {
		// Emit the item itself, then its subtree.
		buf := [1]dataset.Item{flist.Items[r]}
		safe.Emit(buf[:], flist.Support[r])
		span := sites[starts[r]:starts[r+1]]
		if len(span) == 0 {
			return nil
		}
		// The r-projected database: suffixes after r of tuples containing r.
		proj := make([][]dataset.Item, len(span))
		for i, s := range span {
			proj[i] = tx[s.tx][s.pos+1:]
		}
		return hmine.MineProjected(proj, flist, []dataset.Item{dataset.Item(r)}, minCount, safe)
	})
}

// site locates one occurrence of a ranked item inside the encoded database:
// tuple index and position within the tuple.
type site struct {
	tx, pos int32
}

// projSites indexes the encoded database for projection: for each ranked
// item r, sites[starts[r]:starts[r+1]] holds the (tuple, position) pairs
// whose suffix after r is non-empty, in tuple order. Built in one counting
// pass plus one fill pass; the result is immutable and safe to share across
// worker goroutines.
func projSites(tx [][]dataset.Item, n int) (starts []int32, sites []site) {
	starts = make([]int32, n+1)
	for _, t := range tx {
		for i := 0; i+1 < len(t); i++ {
			starts[t[i]+1]++
		}
	}
	for r := 0; r < n; r++ {
		starts[r+1] += starts[r]
	}
	sites = make([]site, starts[n])
	next := make([]int32, n)
	copy(next, starts[:n])
	for ti, t := range tx {
		for i := 0; i+1 < len(t); i++ {
			r := t[i]
			sites[next[r]] = site{tx: int32(ti), pos: int32(i)}
			next[r]++
		}
	}
	return starts, sites
}

// CDBMiner mines compressed databases with parallel Recycle-HM workers.
type CDBMiner struct {
	// Workers is the goroutine count; 0 means GOMAXPROCS.
	Workers int
}

// Name implements core.CDBMiner.
func (CDBMiner) Name() string { return "par-rp-hmine" }

// MineCDB implements core.CDBMiner.
func (m CDBMiner) MineCDB(cdb *core.CDB, minCount int, sink mining.Sink) error {
	if minCount < 1 {
		return mining.ErrBadMinSupport
	}
	flist := cdb.FList(minCount)
	if flist.Len() == 0 {
		return nil
	}
	blocks, loose := core.EncodeCDB(cdb, flist)
	safe := &lockedSink{sink: sink}

	return runWorkers(m.Workers, flist.Len(), func(r int) error {
		buf := [1]dataset.Item{flist.Items[r]}
		safe.Emit(buf[:], flist.Support[r])
		subBlocks, subLoose := core.Project(blocks, loose, dataset.Item(r))
		if len(subBlocks) == 0 && len(subLoose) == 0 {
			return nil
		}
		return rphmine.Miner{}.MineEncoded(subBlocks, subLoose, flist,
			[]dataset.Item{dataset.Item(r)}, minCount, safe)
	})
}

// runWorkers distributes tasks 0..n-1 over a worker pool, returning the
// first error.
func runWorkers(workers, n int, task func(int) error) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	jobs := make(chan int)
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			failed := false
			for r := range jobs {
				if failed {
					continue // drain so the producer never blocks
				}
				if err := task(r); err != nil {
					failed = true
					select {
					case errs <- err:
					default:
					}
				}
			}
		}()
	}
	for r := 0; r < n; r++ {
		jobs <- r
	}
	close(jobs)
	wg.Wait()
	select {
	case err := <-errs:
		return err
	default:
		return nil
	}
}

// lockedSink serializes emissions from concurrent workers.
type lockedSink struct {
	mu   sync.Mutex
	sink mining.Sink
}

// Emit implements mining.Sink.
func (s *lockedSink) Emit(items []dataset.Item, support int) {
	s.mu.Lock()
	s.sink.Emit(items, support)
	s.mu.Unlock()
}
