package postmine_test

import (
	"math"
	"math/rand"
	"testing"

	"gogreen/internal/core"
	"gogreen/internal/dataset"
	"gogreen/internal/mining"
	"gogreen/internal/postmine"
	"gogreen/internal/testutil"
)

// bruteClosed is the O(n²) oracle for Closed.
func bruteClosed(fp []mining.Pattern) mining.PatternSet {
	out := mining.PatternSet{}
	for _, p := range fp {
		closed := true
		for _, q := range fp {
			if len(q.Items) > len(p.Items) && q.Support == p.Support &&
				dataset.Contains(q.Items, p.Items) {
				closed = false
				break
			}
		}
		if closed {
			out[p.Key()] = p
		}
	}
	return out
}

// bruteMaximal is the O(n²) oracle for Maximal.
func bruteMaximal(fp []mining.Pattern) mining.PatternSet {
	out := mining.PatternSet{}
	for _, p := range fp {
		maximal := true
		for _, q := range fp {
			if len(q.Items) > len(p.Items) && dataset.Contains(q.Items, p.Items) {
				maximal = false
				break
			}
		}
		if maximal {
			out[p.Key()] = p
		}
	}
	return out
}

func toSet(ps []mining.Pattern) mining.PatternSet {
	s := mining.PatternSet{}
	for _, p := range ps {
		s[p.Key()] = p
	}
	return s
}

func TestClosedMaximalAgainstBrute(t *testing.T) {
	r := rand.New(rand.NewSource(81))
	for rep := 0; rep < 15; rep++ {
		db := testutil.RandomDB(r, 30+r.Intn(60), 5+r.Intn(10), 1+r.Intn(8))
		fp := testutil.Oracle(t, db, 2+r.Intn(4)).Slice()
		if got, want := toSet(postmine.Closed(fp)), bruteClosed(fp); !got.Equal(want) {
			t.Fatalf("closed mismatch:\n%v", got.Diff(want, 10))
		}
		if got, want := toSet(postmine.Maximal(fp)), bruteMaximal(fp); !got.Equal(want) {
			t.Fatalf("maximal mismatch:\n%v", got.Diff(want, 10))
		}
	}
}

// TestCondensedProperties: maximal ⊆ closed ⊆ fp; every frequent pattern is
// a subset of some maximal pattern; closure preserves the support function
// (support of any pattern = max support of a closed superset).
func TestCondensedProperties(t *testing.T) {
	db := testutil.PaperDB()
	fp := testutil.Oracle(t, db, 2).Slice()
	closed := postmine.Closed(fp)
	maximal := postmine.Maximal(fp)
	cs, ms := toSet(closed), toSet(maximal)

	if len(maximal) > len(closed) || len(closed) > len(fp) {
		t.Fatalf("sizes: %d maximal, %d closed, %d all", len(maximal), len(closed), len(fp))
	}
	for k := range ms {
		if _, ok := cs[k]; !ok {
			t.Fatalf("maximal pattern %s not closed", k)
		}
	}
	for _, p := range fp {
		covered := false
		for _, q := range maximal {
			if dataset.Contains(q.Items, p.Items) {
				covered = true
				break
			}
		}
		if !covered {
			t.Fatalf("pattern %v not under any maximal pattern", p.Items)
		}
		best := 0
		for _, q := range closed {
			if dataset.Contains(q.Items, p.Items) && q.Support > best {
				best = q.Support
			}
		}
		if best != p.Support {
			t.Fatalf("closure support of %v = %d, want %d", p.Items, best, p.Support)
		}
	}
}

// TestClosedCoverEquivalence: compressing with only the closed patterns
// yields exactly the same groups as compressing with the full set, for both
// strategies (the package-doc theorem).
func TestClosedCoverEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(83))
	for rep := 0; rep < 12; rep++ {
		db := testutil.RandomDB(r, 30+r.Intn(80), 5+r.Intn(10), 1+r.Intn(9))
		fp := testutil.Oracle(t, db, 2+r.Intn(4)).Slice()
		closed := postmine.Closed(fp)
		for _, strat := range []core.Strategy{core.MCP, core.MLP} {
			a := core.Compress(db, fp, strat)
			b := core.Compress(db, closed, strat)
			if len(a.Groups) != len(b.Groups) || len(a.Loose) != len(b.Loose) {
				t.Fatalf("%v: %d/%d groups, %d/%d loose", strat,
					len(a.Groups), len(b.Groups), len(a.Loose), len(b.Loose))
			}
			for i := range a.Groups {
				if mining.Key(a.Groups[i].Pattern) != mining.Key(b.Groups[i].Pattern) ||
					a.Groups[i].Count() != b.Groups[i].Count() {
					t.Fatalf("%v: group %d differs", strat, i)
				}
			}
		}
	}
}

func TestRulesPaperExample(t *testing.T) {
	db := testutil.PaperDB()
	fp := testutil.Oracle(t, db, 3).Slice()
	rules := postmine.Rules(fp, 0.9, db.Len())

	// fg ⇒ c holds with confidence 1.0 (all three fg tuples contain c).
	found := false
	for _, r := range rules {
		if mining.Key(r.Antecedent) == mining.Key(testutil.Items(t, db, "f", "g")) &&
			mining.Key(r.Consequent) == mining.Key(testutil.Items(t, db, "c")) {
			found = true
			if r.Confidence != 1.0 {
				t.Errorf("fg=>c confidence %v", r.Confidence)
			}
			// lift = conf / (sup(c)/N) = 1 / (4/5) = 1.25
			if math.Abs(r.Lift-1.25) > 1e-9 {
				t.Errorf("fg=>c lift %v, want 1.25", r.Lift)
			}
			if r.Support != 3 {
				t.Errorf("fg=>c support %d", r.Support)
			}
		}
		if r.Confidence < 0.9 {
			t.Errorf("rule below minconf: %+v", r)
		}
	}
	if !found {
		t.Fatal("missing rule fg=>c")
	}
	// Sorted by confidence descending.
	for i := 1; i < len(rules); i++ {
		if rules[i].Confidence > rules[i-1].Confidence {
			t.Fatal("rules not sorted")
		}
	}
}

// TestRulesExhaustive checks counts and confidences against a brute-force
// enumeration on a random database.
func TestRulesExhaustive(t *testing.T) {
	r := rand.New(rand.NewSource(85))
	db := testutil.RandomDB(r, 50, 8, 6)
	fp := testutil.Oracle(t, db, 3).Slice()
	sup := map[string]int{}
	for _, p := range fp {
		sup[p.Key()] = p.Support
	}
	const minConf = 0.7
	want := 0
	for _, p := range fp {
		n := len(p.Items)
		if n < 2 {
			continue
		}
		for mask := 1; mask < 1<<n-1; mask++ {
			var ant []dataset.Item
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					ant = append(ant, p.Items[i])
				}
			}
			if float64(p.Support)/float64(sup[mining.Key(ant)]) >= minConf {
				want++
			}
		}
	}
	got := postmine.Rules(fp, minConf, db.Len())
	if len(got) != want {
		t.Fatalf("got %d rules, want %d", len(got), want)
	}
	for _, r := range got {
		joint := append(append([]dataset.Item(nil), r.Antecedent...), r.Consequent...)
		if sup[mining.Key(joint)] != r.Support {
			t.Fatalf("rule support wrong: %+v", r)
		}
	}
}

func TestRulesSingletonsOnly(t *testing.T) {
	fp := []mining.Pattern{{Items: []dataset.Item{1}, Support: 5}}
	if rules := postmine.Rules(fp, 0.5, 10); len(rules) != 0 {
		t.Fatalf("singleton set produced rules: %v", rules)
	}
}
