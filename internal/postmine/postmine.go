// Package postmine post-processes mined frequent-pattern sets: condensed
// representations (closed and maximal patterns) and association-rule
// generation.
//
// Condensed representations matter to recycling beyond their usual uses: a
// pattern store can keep only the closed patterns without changing any
// compression result. Both utility functions rank a closed pattern strictly
// above every non-closed pattern it subsumes (equal support, greater
// length), and the two match exactly the same tuples (equal support with
// Y ⊇ X forces equal tuple sets), so the greedy cover of Figure 1 never
// picks a non-closed pattern. core's property tests verify this
// cover-equivalence; SessionStore-style components can rely on it to ship
// smaller pattern files between users.
package postmine

import (
	"sort"

	"gogreen/internal/dataset"
	"gogreen/internal/mining"
)

// Closed returns the closed patterns of fp: those with no proper superset
// of equal support in fp. fp must be a complete frequent-pattern set (every
// subset present), as produced by the miners in this module.
func Closed(fp []mining.Pattern) []mining.Pattern {
	idx := newSuperIndex(fp)
	out := make([]mining.Pattern, 0, len(fp))
	for _, p := range fp {
		if !idx.hasSuperset(p, func(q mining.Pattern) bool { return q.Support == p.Support }) {
			out = append(out, p)
		}
	}
	return out
}

// Maximal returns the maximal patterns of fp: those with no proper frequent
// superset at all.
func Maximal(fp []mining.Pattern) []mining.Pattern {
	idx := newSuperIndex(fp)
	out := make([]mining.Pattern, 0, len(fp))
	for _, p := range fp {
		if !idx.hasSuperset(p, func(mining.Pattern) bool { return true }) {
			out = append(out, p)
		}
	}
	return out
}

// superIndex accelerates "does a proper superset exist" checks: every
// pattern is listed under each of its items, and a query scans only the
// bucket of its rarest item (a superset of p necessarily contains that
// item).
type superIndex struct {
	byItem map[dataset.Item][]int
	fp     []mining.Pattern
}

func newSuperIndex(fp []mining.Pattern) *superIndex {
	idx := &superIndex{byItem: map[dataset.Item][]int{}, fp: fp}
	for i, p := range fp {
		for _, it := range p.Items {
			idx.byItem[it] = append(idx.byItem[it], i)
		}
	}
	return idx
}

// anchor picks the query item with the smallest bucket.
func (idx *superIndex) anchor(p mining.Pattern) dataset.Item {
	best := p.Items[0]
	for _, it := range p.Items[1:] {
		if len(idx.byItem[it]) < len(idx.byItem[best]) {
			best = it
		}
	}
	return best
}

// hasSuperset reports whether some pattern strictly containing p satisfies
// keep.
func (idx *superIndex) hasSuperset(p mining.Pattern, keep func(mining.Pattern) bool) bool {
	if len(p.Items) == 0 {
		return false
	}
	for _, qi := range idx.byItem[idx.anchor(p)] {
		q := idx.fp[qi]
		if len(q.Items) <= len(p.Items) || !keep(q) {
			continue
		}
		if dataset.Contains(q.Items, p.Items) {
			return true
		}
	}
	return false
}

// Rule is an association rule X ⇒ Y with its quality measures over the
// database the patterns were mined from.
type Rule struct {
	Antecedent []dataset.Item
	Consequent []dataset.Item
	// Support is the absolute support of X ∪ Y.
	Support int
	// Confidence is sup(X∪Y)/sup(X).
	Confidence float64
	// Lift is confidence / (sup(Y)/|DB|); requires NumTx when generating.
	Lift float64
}

// Rules derives association rules from a complete frequent-pattern set:
// every partition of each pattern into non-empty antecedent and consequent
// whose confidence reaches minConf. numTx (the database size) is used for
// lift; pass 0 to skip lift computation.
//
// The standard Agrawal-Srikant observation prunes the enumeration: if
// X ⇒ Y fails minConf, so does every rule with a smaller antecedent (and
// hence larger consequent) from the same pattern.
func Rules(fp []mining.Pattern, minConf float64, numTx int) []Rule {
	bySet := make(map[string]int, len(fp))
	for _, p := range fp {
		bySet[p.Key()] = p.Support
	}
	var out []Rule
	buf := make([]dataset.Item, 0, 16)
	for _, p := range fp {
		n := len(p.Items)
		if n < 2 {
			continue
		}
		if n > 30 {
			// 2^30 partitions is never useful; skip absurd inputs.
			continue
		}
		full := p.Support
		// Enumerate antecedents by bitmask (non-empty proper subsets).
		for mask := 1; mask < 1<<n-1; mask++ {
			buf = buf[:0]
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					buf = append(buf, p.Items[i])
				}
			}
			antSup, ok := bySet[mining.Key(buf)]
			if !ok {
				continue // incomplete input set; skip quietly
			}
			conf := float64(full) / float64(antSup)
			if conf < minConf {
				continue
			}
			ant := append([]dataset.Item(nil), buf...)
			cons := make([]dataset.Item, 0, n-len(ant))
			for i := 0; i < n; i++ {
				if mask&(1<<i) == 0 {
					cons = append(cons, p.Items[i])
				}
			}
			r := Rule{Antecedent: ant, Consequent: cons, Support: full, Confidence: conf}
			if numTx > 0 {
				if consSup, ok := bySet[mining.Key(cons)]; ok && consSup > 0 {
					r.Lift = conf / (float64(consSup) / float64(numTx))
				}
			}
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Confidence != out[j].Confidence {
			return out[i].Confidence > out[j].Confidence
		}
		return out[i].Support > out[j].Support
	})
	return out
}
