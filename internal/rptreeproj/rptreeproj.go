// Package rptreeproj adapts the depth-first Tree Projection algorithm to
// compressed databases — the paper's Recycle-TP (Section 4.2).
//
// As in the uncompressed version (internal/treeproj), the lexicographic tree
// is walked depth-first with a triangular matrix counting all two-item
// extensions of a node in one scan. The projected sets kept at each node are
// compressed: group blocks carry their pattern once with a member count, so
// both the extension counting and the matrix counting touch a block's
// pattern once per node — pattern-pattern pairs are counted at block count
// in O(|pattern|²) instead of per member tuple.
package rptreeproj

import (
	"context"

	"gogreen/internal/core"
	"gogreen/internal/dataset"
	"gogreen/internal/mining"
)

// Miner mines compressed databases with the Recycle-TP algorithm.
type Miner struct{}

// New returns a Recycle-TP engine.
func New() Miner { return Miner{} }

// Name implements core.CDBMiner.
func (Miner) Name() string { return "rp-treeproj" }

// MineCDB implements core.CDBMiner.
func (Miner) MineCDB(cdb *core.CDB, minCount int, sink mining.Sink) error {
	return mineCDB(cdb, minCount, sink, nil)
}

// MineCDBContext implements core.ContextCDBMiner: like MineCDB, but aborts
// promptly when ctx is cancelled or times out, returning the context's error.
func (Miner) MineCDBContext(c context.Context, cdb *core.CDB, minCount int, sink mining.Sink) error {
	cancel := mining.NewCanceller(c, 0)
	if err := cancel.Err(); err != nil {
		return err
	}
	if err := mineCDB(cdb, minCount, sink, cancel); err != nil {
		return err
	}
	return cancel.Err()
}

func mineCDB(cdb *core.CDB, minCount int, sink mining.Sink, cancel *mining.Canceller) error {
	if minCount < 1 {
		return mining.ErrBadMinSupport
	}
	flist := cdb.FList(minCount)
	if flist.Len() == 0 {
		return nil
	}
	blocks, loose := core.EncodeCDB(cdb, flist)
	return mineEncoded(blocks, loose, flist, nil, minCount, sink, cancel)
}

// MineEncoded mines an already rank-encoded compressed projection whose
// patterns all extend prefix (in rank space). Used by the parallel miner to
// hand each worker one independent subtree.
func (Miner) MineEncoded(blocks []core.Block, loose [][]dataset.Item, flist *mining.FList, prefix []dataset.Item, minCount int, sink mining.Sink) error {
	return mineEncoded(blocks, loose, flist, prefix, minCount, sink, nil)
}

// MineEncodedContext is MineEncoded with cooperative cancellation. A fresh
// Canceller is created per call because Cancellers are not goroutine-safe:
// every parallel subtree must poll its own.
func (Miner) MineEncodedContext(c context.Context, blocks []core.Block, loose [][]dataset.Item, flist *mining.FList, prefix []dataset.Item, minCount int, sink mining.Sink) error {
	cancel := mining.NewCanceller(c, 0)
	if err := cancel.Err(); err != nil {
		return err
	}
	if err := mineEncoded(blocks, loose, flist, prefix, minCount, sink, cancel); err != nil {
		return err
	}
	return cancel.Err()
}

// NewScratch implements the parallel wrapper's pooled-miner contract: the
// returned value holds the engine's reusable working memory (per-depth
// counting tables, projection slabs, decode and prefix buffers) and may be
// threaded through consecutive MineEncodedScratch calls by one goroutine.
func (Miner) NewScratch() any { return &ctx{} }

// MineEncodedScratch is MineEncodedContext mining through sc's recycled
// buffers (sc must come from NewScratch). All calls reusing one scratch
// should pass the same F-list; a width change resets the pooled tables.
func (Miner) MineEncodedScratch(c context.Context, sc any, blocks []core.Block, loose [][]dataset.Item, flist *mining.FList, prefix []dataset.Item, minCount int, sink mining.Sink) error {
	cancel := mining.NewCanceller(c, 0)
	if err := cancel.Err(); err != nil {
		return err
	}
	if err := mineEncodedInto(sc.(*ctx), blocks, loose, flist, prefix, minCount, sink, cancel); err != nil {
		return err
	}
	return cancel.Err()
}

func mineEncoded(blocks []core.Block, loose [][]dataset.Item, flist *mining.FList, prefix []dataset.Item, minCount int, sink mining.Sink, cancel *mining.Canceller) error {
	return mineEncodedInto(&ctx{}, blocks, loose, flist, prefix, minCount, sink, cancel)
}

func mineEncodedInto(m *ctx, blocks []core.Block, loose [][]dataset.Item, flist *mining.FList, prefix []dataset.Item, minCount int, sink mining.Sink, cancel *mining.Canceller) error {
	if minCount < 1 {
		return mining.ErrBadMinSupport
	}
	m.reset(flist, minCount, sink, cancel)
	m.node(blocks, loose, append(m.prefix[:0], prefix...))
	m.sink, m.cancel = nil, nil
	return nil
}

type ctx struct {
	flist   *mining.FList
	min     int
	sink    mining.Sink
	decoded []dataset.Item
	width   int
	cancel  *mining.Canceller // nil when mining without a context
	pool    []*tpLevel        // free per-depth counting tables
	prefix  []dataset.Item    // prefix scratch, reused across calls
	enumBuf []dataset.Item    // single-group enumeration scratch
}

// tpLevel is one tree depth's working set: extension counts, the local item
// index, the triangular matrix, and the projection slab children are built
// into. Levels are strictly nested (the walk is depth-first), so a small
// free list recycles them without any lifetime bookkeeping.
type tpLevel struct {
	counts []int
	pos    []int32
	matrix []int
	exts   []dataset.Item
	sBuf   []int32
	tBuf   []int32
	proj   core.ProjScratch
}

// reset rebinds the per-call fields, keeping the pooled buffers when the
// F-list width is unchanged (the parallel steady path) and rebuilding them
// otherwise.
func (m *ctx) reset(flist *mining.FList, minCount int, sink mining.Sink, cancel *mining.Canceller) {
	n := flist.Len()
	if cap(m.decoded) < n {
		m.decoded = make([]dataset.Item, n)
		m.pool = nil // pooled levels are width-sized
	} else {
		m.decoded = m.decoded[:n]
		for _, lv := range m.pool {
			if len(lv.counts) < n {
				m.pool = nil
				break
			}
		}
	}
	if cap(m.prefix) < n+1 {
		m.prefix = make([]dataset.Item, 0, n+1)
	}
	m.width = n
	m.flist, m.min, m.sink, m.cancel = flist, minCount, sink, cancel
}

func (m *ctx) getLevel() *tpLevel {
	if n := len(m.pool); n > 0 {
		lv := m.pool[n-1]
		m.pool = m.pool[:n-1]
		clear(lv.counts) // pos is fully re-filled per node; counts must start zero
		return lv
	}
	return &tpLevel{counts: make([]int, m.width), pos: make([]int32, m.width)}
}

func (m *ctx) putLevel(lv *tpLevel) { m.pool = append(m.pool, lv) }

func (m *ctx) emit(prefix []dataset.Item, support int) {
	m.sink.Emit(m.flist.DecodeInto(m.decoded, prefix), support)
}

// node processes one lexicographic-tree node over a compressed projected
// set.
func (m *ctx) node(blocks []core.Block, loose [][]dataset.Item, prefix []dataset.Item) {
	// Cooperative cancellation, one cheap check per tree node.
	if m.cancel.Check() != nil {
		return
	}
	lv := m.getLevel()
	defer m.putLevel(lv)
	// One-item extension counts: block patterns once at block count.
	counts := lv.counts
	for i := range blocks {
		b := &blocks[i]
		for _, it := range b.Suffix {
			counts[it] += b.Count
		}
		for _, tail := range b.Tails {
			for _, it := range tail {
				counts[it]++
			}
		}
	}
	for _, t := range loose {
		for _, it := range t {
			counts[it]++
		}
	}
	exts := lv.exts[:0]
	for r := 0; r < m.width; r++ {
		if counts[r] >= m.min {
			exts = append(exts, dataset.Item(r))
		}
	}
	lv.exts = exts
	if len(exts) == 0 {
		return
	}

	// Lemma 3.1: all frequent occurrences inside one block's pattern.
	if b := singleGroup(blocks, exts, counts); b != nil {
		m.enumerate(exts, b.Count, prefix)
		return
	}

	k := len(exts)
	pos := lv.pos
	for i := range pos {
		pos[i] = -1
	}
	for i, e := range exts {
		pos[e] = int32(i)
	}

	// Matrix counting over the compressed set: pattern×pattern pairs at
	// block count, pattern×tail and tail×tail pairs per tail, loose pairs
	// per tuple.
	matrix := lv.matrix // upper triangle (i < j)
	if cap(matrix) < k*k {
		matrix = make([]int, k*k)
		lv.matrix = matrix
	} else {
		matrix = matrix[:k*k]
		clear(matrix)
	}
	sBuf, tBuf := lv.sBuf[:0], lv.tBuf[:0]
	addPairs := func(a, b []int32, sameSet bool, w int) {
		for i := 0; i < len(a); i++ {
			row := int(a[i]) * k
			start := 0
			if sameSet {
				start = i + 1
			}
			for j := start; j < len(b); j++ {
				x, y := a[i], b[j]
				if x == y {
					continue
				}
				if x < y {
					matrix[row+int(y)] += w
				} else {
					matrix[int(y)*k+int(x)] += w
				}
			}
		}
	}
	mapLocal := func(t []dataset.Item, buf []int32) []int32 {
		buf = buf[:0]
		for _, it := range t {
			if p := pos[it]; p >= 0 {
				buf = append(buf, p)
			}
		}
		return buf
	}
	for i := range blocks {
		b := &blocks[i]
		sBuf = mapLocal(b.Suffix, sBuf)
		addPairs(sBuf, sBuf, true, b.Count)
		for _, tail := range b.Tails {
			tBuf = mapLocal(tail, tBuf)
			addPairs(sBuf, tBuf, false, 1)
			addPairs(tBuf, tBuf, true, 1)
		}
	}
	for _, t := range loose {
		tBuf = mapLocal(t, tBuf)
		addPairs(tBuf, tBuf, true, 1)
	}
	lv.sBuf, lv.tBuf = sBuf, tBuf

	prefix = append(prefix, 0)
	for i, e := range exts {
		if m.cancel.Check() != nil {
			return
		}
		prefix[len(prefix)-1] = e
		m.emit(prefix, counts[e])

		// Child extensions known from the matrix before projecting.
		nChild := 0
		for j := i + 1; j < k; j++ {
			if matrix[i*k+j] >= m.min {
				nChild++
			}
		}
		if nChild == 0 {
			continue
		}
		// Project into this depth's slab: the child subtree is fully mined
		// before the next sibling reuses the buffers, so the projection is
		// live exactly as long as it is referenced.
		childBlocks, childLoose := lv.proj.Project(blocks, loose, e)
		if len(childBlocks) > 0 || len(childLoose) > 0 {
			m.node(childBlocks, childLoose, prefix)
		}
	}
}

// singleGroup mirrors the check in core: the unique block holding every
// frequent occurrence, or nil.
func singleGroup(blocks []core.Block, frequent []dataset.Item, counts []int) *core.Block {
	f0 := frequent[0]
	for i := range blocks {
		b := &blocks[i]
		if idxOf(b.Suffix, f0) < 0 {
			continue
		}
		for _, f := range frequent {
			if counts[f] != b.Count || idxOf(b.Suffix, f) < 0 {
				return nil
			}
		}
		return b
	}
	return nil
}

// enumerate emits every non-empty combination of items at the given support.
func (m *ctx) enumerate(items []dataset.Item, support int, prefix []dataset.Item) {
	n := len(items)
	if n > 62 {
		panic("rptreeproj: single-group enumeration over more than 62 items")
	}
	base := len(prefix)
	buf := append(m.enumBuf[:0], prefix...)
	defer func() { m.enumBuf = buf }()
	for mask := uint64(1); mask < 1<<uint(n); mask++ {
		// The enumeration can cover up to 2^62 patterns, so it must honor
		// cancellation like the tree walk proper.
		if m.cancel.Check() != nil {
			return
		}
		buf = buf[:base]
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				buf = append(buf, items[i])
			}
		}
		m.emit(buf, support)
	}
}

// idxOf returns the index of r in sorted s, or -1.
func idxOf(s []dataset.Item, r dataset.Item) int {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := (lo + hi) / 2
		if s[mid] < r {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(s) && s[lo] == r {
		return lo
	}
	return -1
}
