// Package rptreeproj adapts the depth-first Tree Projection algorithm to
// compressed databases — the paper's Recycle-TP (Section 4.2).
//
// As in the uncompressed version (internal/treeproj), the lexicographic tree
// is walked depth-first with a triangular matrix counting all two-item
// extensions of a node in one scan. The projected sets kept at each node are
// compressed: group blocks carry their pattern once with a member count, so
// both the extension counting and the matrix counting touch a block's
// pattern once per node — pattern-pattern pairs are counted at block count
// in O(|pattern|²) instead of per member tuple.
package rptreeproj

import (
	"context"

	"gogreen/internal/core"
	"gogreen/internal/dataset"
	"gogreen/internal/mining"
)

// Miner mines compressed databases with the Recycle-TP algorithm.
type Miner struct{}

// New returns a Recycle-TP engine.
func New() Miner { return Miner{} }

// Name implements core.CDBMiner.
func (Miner) Name() string { return "rp-treeproj" }

// MineCDB implements core.CDBMiner.
func (Miner) MineCDB(cdb *core.CDB, minCount int, sink mining.Sink) error {
	return mineCDB(cdb, minCount, sink, nil)
}

// MineCDBContext implements core.ContextCDBMiner: like MineCDB, but aborts
// promptly when ctx is cancelled or times out, returning the context's error.
func (Miner) MineCDBContext(c context.Context, cdb *core.CDB, minCount int, sink mining.Sink) error {
	cancel := mining.NewCanceller(c, 0)
	if err := cancel.Err(); err != nil {
		return err
	}
	if err := mineCDB(cdb, minCount, sink, cancel); err != nil {
		return err
	}
	return cancel.Err()
}

func mineCDB(cdb *core.CDB, minCount int, sink mining.Sink, cancel *mining.Canceller) error {
	if minCount < 1 {
		return mining.ErrBadMinSupport
	}
	flist := cdb.FList(minCount)
	if flist.Len() == 0 {
		return nil
	}
	blocks, loose := core.EncodeCDB(cdb, flist)
	return mineEncoded(blocks, loose, flist, nil, minCount, sink, cancel)
}

// MineEncoded mines an already rank-encoded compressed projection whose
// patterns all extend prefix (in rank space). Used by the parallel miner to
// hand each worker one independent subtree.
func (Miner) MineEncoded(blocks []core.Block, loose [][]dataset.Item, flist *mining.FList, prefix []dataset.Item, minCount int, sink mining.Sink) error {
	return mineEncoded(blocks, loose, flist, prefix, minCount, sink, nil)
}

// MineEncodedContext is MineEncoded with cooperative cancellation. A fresh
// Canceller is created per call because Cancellers are not goroutine-safe:
// every parallel subtree must poll its own.
func (Miner) MineEncodedContext(c context.Context, blocks []core.Block, loose [][]dataset.Item, flist *mining.FList, prefix []dataset.Item, minCount int, sink mining.Sink) error {
	cancel := mining.NewCanceller(c, 0)
	if err := cancel.Err(); err != nil {
		return err
	}
	if err := mineEncoded(blocks, loose, flist, prefix, minCount, sink, cancel); err != nil {
		return err
	}
	return cancel.Err()
}

func mineEncoded(blocks []core.Block, loose [][]dataset.Item, flist *mining.FList, prefix []dataset.Item, minCount int, sink mining.Sink, cancel *mining.Canceller) error {
	if minCount < 1 {
		return mining.ErrBadMinSupport
	}
	m := &ctx{
		flist:   flist,
		min:     minCount,
		sink:    sink,
		decoded: make([]dataset.Item, flist.Len()),
		width:   flist.Len(),
		cancel:  cancel,
	}
	m.node(blocks, loose, append([]dataset.Item(nil), prefix...))
	return nil
}

type ctx struct {
	flist   *mining.FList
	min     int
	sink    mining.Sink
	decoded []dataset.Item
	width   int
	cancel  *mining.Canceller // nil when mining without a context
}

func (m *ctx) emit(prefix []dataset.Item, support int) {
	m.sink.Emit(m.flist.DecodeInto(m.decoded, prefix), support)
}

// node processes one lexicographic-tree node over a compressed projected
// set.
func (m *ctx) node(blocks []core.Block, loose [][]dataset.Item, prefix []dataset.Item) {
	// Cooperative cancellation, one cheap check per tree node.
	if m.cancel.Check() != nil {
		return
	}
	// One-item extension counts: block patterns once at block count.
	counts := make([]int, m.width)
	for i := range blocks {
		b := &blocks[i]
		for _, it := range b.Suffix {
			counts[it] += b.Count
		}
		for _, tail := range b.Tails {
			for _, it := range tail {
				counts[it]++
			}
		}
	}
	for _, t := range loose {
		for _, it := range t {
			counts[it]++
		}
	}
	exts := make([]dataset.Item, 0, 32)
	for r := 0; r < m.width; r++ {
		if counts[r] >= m.min {
			exts = append(exts, dataset.Item(r))
		}
	}
	if len(exts) == 0 {
		return
	}

	// Lemma 3.1: all frequent occurrences inside one block's pattern.
	if b := singleGroup(blocks, exts, counts); b != nil {
		m.enumerate(exts, b.Count, prefix)
		return
	}

	k := len(exts)
	pos := make([]int32, m.width)
	for i := range pos {
		pos[i] = -1
	}
	for i, e := range exts {
		pos[e] = int32(i)
	}

	// Matrix counting over the compressed set: pattern×pattern pairs at
	// block count, pattern×tail and tail×tail pairs per tail, loose pairs
	// per tuple.
	matrix := make([]int, k*k) // upper triangle (i < j)
	var sBuf, tBuf []int32
	addPairs := func(a, b []int32, sameSet bool, w int) {
		for i := 0; i < len(a); i++ {
			row := int(a[i]) * k
			start := 0
			if sameSet {
				start = i + 1
			}
			for j := start; j < len(b); j++ {
				x, y := a[i], b[j]
				if x == y {
					continue
				}
				if x < y {
					matrix[row+int(y)] += w
				} else {
					matrix[int(y)*k+int(x)] += w
				}
			}
		}
	}
	mapLocal := func(t []dataset.Item, buf []int32) []int32 {
		buf = buf[:0]
		for _, it := range t {
			if p := pos[it]; p >= 0 {
				buf = append(buf, p)
			}
		}
		return buf
	}
	for i := range blocks {
		b := &blocks[i]
		sBuf = mapLocal(b.Suffix, sBuf)
		addPairs(sBuf, sBuf, true, b.Count)
		for _, tail := range b.Tails {
			tBuf = mapLocal(tail, tBuf)
			addPairs(sBuf, tBuf, false, 1)
			addPairs(tBuf, tBuf, true, 1)
		}
	}
	for _, t := range loose {
		tBuf = mapLocal(t, tBuf)
		addPairs(tBuf, tBuf, true, 1)
	}

	prefix = append(prefix, 0)
	for i, e := range exts {
		if m.cancel.Check() != nil {
			return
		}
		prefix[len(prefix)-1] = e
		m.emit(prefix, counts[e])

		// Child extensions known from the matrix before projecting.
		nChild := 0
		for j := i + 1; j < k; j++ {
			if matrix[i*k+j] >= m.min {
				nChild++
			}
		}
		if nChild == 0 {
			continue
		}
		childBlocks, childLoose := core.Project(blocks, loose, e)
		if len(childBlocks) > 0 || len(childLoose) > 0 {
			m.node(childBlocks, childLoose, prefix)
		}
	}
}

// singleGroup mirrors the check in core: the unique block holding every
// frequent occurrence, or nil.
func singleGroup(blocks []core.Block, frequent []dataset.Item, counts []int) *core.Block {
	f0 := frequent[0]
	for i := range blocks {
		b := &blocks[i]
		if idxOf(b.Suffix, f0) < 0 {
			continue
		}
		for _, f := range frequent {
			if counts[f] != b.Count || idxOf(b.Suffix, f) < 0 {
				return nil
			}
		}
		return b
	}
	return nil
}

// enumerate emits every non-empty combination of items at the given support.
func (m *ctx) enumerate(items []dataset.Item, support int, prefix []dataset.Item) {
	n := len(items)
	if n > 62 {
		panic("rptreeproj: single-group enumeration over more than 62 items")
	}
	base := len(prefix)
	buf := append([]dataset.Item(nil), prefix...)
	for mask := uint64(1); mask < 1<<uint(n); mask++ {
		// The enumeration can cover up to 2^62 patterns, so it must honor
		// cancellation like the tree walk proper.
		if m.cancel.Check() != nil {
			return
		}
		buf = buf[:base]
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				buf = append(buf, items[i])
			}
		}
		m.emit(buf, support)
	}
}

// idxOf returns the index of r in sorted s, or -1.
func idxOf(s []dataset.Item, r dataset.Item) int {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := (lo + hi) / 2
		if s[mid] < r {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(s) && s[lo] == r {
		return lo
	}
	return -1
}
