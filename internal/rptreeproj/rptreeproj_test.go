package rptreeproj_test

import (
	"math/rand"
	"testing"

	"gogreen/internal/core"
	"gogreen/internal/dataset"
	"gogreen/internal/engine"
	"gogreen/internal/mining"
	"gogreen/internal/rptreeproj"
	"gogreen/internal/testutil"
)

func newEngine() core.CDBMiner { return rptreeproj.New() }

func TestPaperExample(t *testing.T) {
	db := testutil.PaperDB()
	fp := testutil.Oracle(t, db, 3).Slice()
	for _, strat := range []core.Strategy{core.MCP, core.MLP} {
		rec := engine.NewRecycler(fp, strat, newEngine())
		for min := 1; min <= 5; min++ {
			testutil.CheckAgainstOracle(t, rec, db, min)
		}
	}
}

// TestRandomized compresses at a random ξ_old and mines at assorted ξ_new,
// always matching the Apriori oracle.
func TestRandomized(t *testing.T) {
	r := rand.New(rand.NewSource(97))
	for rep := 0; rep < 25; rep++ {
		db := testutil.RandomDB(r, 20+r.Intn(120), 4+r.Intn(18), 1+r.Intn(11))
		oldMin := 2 + r.Intn(9)
		fp := testutil.Oracle(t, db, oldMin).Slice()
		for _, strat := range []core.Strategy{core.MCP, core.MLP} {
			rec := engine.NewRecycler(fp, strat, newEngine())
			for _, newMin := range []int{1, 2, oldMin - 1, oldMin + 2} {
				if newMin < 1 {
					continue
				}
				testutil.CheckAgainstOracle(t, rec, db, newMin)
			}
		}
	}
}

// TestNoRecycledPatterns: mining a CDB of only loose tuples degenerates to
// plain pseudo-projection mining and stays exact.
func TestNoRecycledPatterns(t *testing.T) {
	db := testutil.PaperDB()
	rec := engine.NewRecycler(nil, core.MCP, newEngine())
	testutil.CheckAgainstOracle(t, rec, db, 2)
}

// TestDenseSingleGroup exercises the Lemma 3.1 path hard: a database where
// one long pattern dominates every tuple.
func TestDenseSingleGroup(t *testing.T) {
	var tx [][]dataset.Item
	long := []dataset.Item{0, 1, 2, 3, 4, 5, 6, 7}
	for i := 0; i < 40; i++ {
		tx = append(tx, long)
	}
	tx = append(tx, []dataset.Item{0, 9}, []dataset.Item{1, 9})
	db := dataset.New(tx)
	fp := testutil.Oracle(t, db, 40).Slice()
	rec := engine.NewRecycler(fp, core.MCP, newEngine())
	testutil.CheckAgainstOracle(t, rec, db, 40)
	testutil.CheckAgainstOracle(t, rec, db, 2)
	testutil.CheckAgainstOracle(t, rec, db, 1)
}

func TestBadMinSupport(t *testing.T) {
	cdb := core.Compress(dataset.New(nil), nil, core.MCP)
	err := newEngine().MineCDB(cdb, 0, mining.SinkFunc(func([]dataset.Item, int) {}))
	if err != mining.ErrBadMinSupport {
		t.Errorf("got %v, want ErrBadMinSupport", err)
	}
}

func TestEmptyCDB(t *testing.T) {
	cdb := core.Compress(dataset.New(nil), nil, core.MCP)
	var c mining.Collector
	if err := newEngine().MineCDB(cdb, 1, &c); err != nil {
		t.Fatal(err)
	}
	if len(c.Patterns) != 0 {
		t.Errorf("empty CDB yielded %d patterns", len(c.Patterns))
	}
}
