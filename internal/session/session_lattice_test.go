package session_test

import (
	"context"
	"testing"

	"gogreen/internal/constraints"
	"gogreen/internal/session"
	"gogreen/internal/testutil"
)

// TestSessionLatticeSharing covers the multi-user scenario the lattice
// exists for: sessions over the same database share one ladder through the
// process-wide store, so a pattern set mined in one session answers another
// session's rounds without re-mining — no pattern-store shipping required.
func TestSessionLatticeSharing(t *testing.T) {
	db := testutil.PaperDB()

	a := session.New(db, session.WithLattice(true))
	res, err := a.Mine(context.Background(), constraints.Set{constraints.MinSupport{Count: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != session.SourceFresh || res.Cache != "miss" {
		t.Fatalf("cold round = %s/%q, want fresh/miss", res.Source, res.Cache)
	}

	// A brand-new session with no history tightens to 4: pure-filter hit on
	// the rung session A installed.
	b := session.New(db, session.WithLattice(true))
	res, err = b.Mine(context.Background(), constraints.Set{constraints.MinSupport{Count: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != session.SourceFiltered || res.Cache != "hit" || res.BasedOn != "lattice-3" || res.Round != -1 {
		t.Fatalf("tighten round = %+v, want filtered hit on lattice-3", res.Result)
	}
	if !toSet(t, res.Patterns).Equal(testutil.Oracle(t, db, 4)) {
		t.Error("lattice hit patterns wrong")
	}

	// Another fresh session relaxes to 2: the rung seeds a recycled round
	// and the answer lands as a new rung.
	c := session.New(db, session.WithLattice(true))
	res, err = c.Mine(context.Background(), constraints.Set{constraints.MinSupport{Count: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != session.SourceRecycled || res.Cache != "relax" || res.BasedOn != "lattice-3" {
		t.Fatalf("relax round = %+v, want recycled relax seeded by lattice-3", res.Result)
	}
	if !toSet(t, res.Patterns).Equal(testutil.Oracle(t, db, 2)) {
		t.Error("lattice relax patterns wrong")
	}

	// The relax round installed rung 2, so yet another session hits it.
	d := session.New(db, session.WithLattice(true))
	res, err = d.Mine(context.Background(), constraints.Set{constraints.MinSupport{Count: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cache != "hit" || res.BasedOn != "lattice-2" {
		t.Fatalf("repeat relax = %+v, want hit on lattice-2", res.Result)
	}
}

// TestSessionLatticeConstrainedRounds pins the install policy: rounds with
// non-support constraints are answered from the lattice (FilterSet applies
// the full predicate, so filtering a complete rung is exact) but their
// incomplete results must never be installed as rungs.
func TestSessionLatticeConstrainedRounds(t *testing.T) {
	db := testutil.PaperDB()

	// A constrained fresh round must not materialize a rung.
	a := session.New(db, session.WithLattice(true))
	cs := constraints.Set{constraints.MinSupport{Count: 2}, constraints.MaxLength{N: 1}}
	if _, err := a.Mine(context.Background(), cs); err != nil {
		t.Fatal(err)
	}
	b := session.New(db, session.WithLattice(true))
	res, err := b.Mine(context.Background(), constraints.Set{constraints.MinSupport{Count: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cache != "miss" {
		t.Fatalf("round after constrained mine = %q, want miss (constrained results must not install)", res.Cache)
	}

	// But a complete rung serves constrained rounds exactly.
	c := session.New(db, session.WithLattice(true))
	res, err = c.Mine(context.Background(), cs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cache != "hit" || res.BasedOn != "lattice-2" {
		t.Fatalf("constrained round = %+v, want hit on lattice-2", res.Result)
	}
	want := toSet(t, res.Patterns)
	for _, p := range testutil.Oracle(t, db, 2) {
		if len(p.Items) <= 1 {
			if _, ok := want[p.Key()]; !ok {
				t.Fatalf("constrained hit missing %v", p.Items)
			}
			delete(want, p.Key())
		}
	}
	if len(want) != 0 {
		t.Fatalf("constrained hit has extra patterns: %v", want)
	}
}

// TestSessionLatticeDefaultOff checks the facade-style default: without
// WithLattice the session never consults the cache and Cache stays empty.
func TestSessionLatticeDefaultOff(t *testing.T) {
	db := testutil.PaperDB()
	s := session.New(db)
	res, err := s.Mine(context.Background(), constraints.Set{constraints.MinSupport{Count: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cache != "" {
		t.Fatalf("lattice-off round reports cache %q", res.Cache)
	}
	res, err = s.Mine(context.Background(), constraints.Set{constraints.MinSupport{Count: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cache != "" || res.BasedOn != "round-0" {
		t.Fatalf("lattice-off repeat = %+v, want history filter", res.Result)
	}
}
