package session_test

import (
	"context"
	"math/rand"
	"testing"

	"gogreen/internal/constraints"
	"gogreen/internal/core"
	"gogreen/internal/mining"
	"gogreen/internal/session"
	"gogreen/internal/testutil"
)

func toSet(t *testing.T, ps []mining.Pattern) mining.PatternSet {
	t.Helper()
	out := mining.PatternSet{}
	for _, p := range ps {
		k := p.Key()
		if _, dup := out[k]; dup {
			t.Fatalf("duplicate pattern %v", p.Items)
		}
		out[k] = p
	}
	return out
}

// TestIterativeRefinement walks the paper's motivating scenario: mine at 5,
// relax to 3, relax to 2, tighten back to 4 — checking sources and results.
func TestIterativeRefinement(t *testing.T) {
	db := testutil.PaperDB()
	s := session.New(db, session.WithEngine("rp-hmine"))

	res1, err := s.Mine(context.Background(), constraints.Set{constraints.MinSupport{Count: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if res1.Source != session.SourceFresh {
		t.Errorf("round 1 source = %s, want fresh", res1.Source)
	}
	if !toSet(t, res1.Patterns).Equal(testutil.Oracle(t, db, 4)) {
		t.Error("round 1 patterns wrong")
	}

	// Relax: must recycle round 1.
	res2, err := s.Mine(context.Background(), constraints.Set{constraints.MinSupport{Count: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Source != session.SourceRecycled || res2.Round != 0 {
		t.Errorf("round 2 = %s based on %d, want recycled/0", res2.Source, res2.Round)
	}
	if !toSet(t, res2.Patterns).Equal(testutil.Oracle(t, db, 2)) {
		t.Error("round 2 patterns wrong")
	}

	// Tighten: must filter round 2, exactly reproducing a fresh mine at 3.
	res3, err := s.Mine(context.Background(), constraints.Set{constraints.MinSupport{Count: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if res3.Source != session.SourceFiltered || res3.Round != 1 {
		t.Errorf("round 3 = %s based on %d, want filtered/1", res3.Source, res3.Round)
	}
	if !toSet(t, res3.Patterns).Equal(testutil.Oracle(t, db, 3)) {
		t.Error("round 3 patterns wrong")
	}

	if n := len(s.Rounds()); n != 3 {
		t.Errorf("history length = %d, want 3", n)
	}
}

// TestConstraintChange mixes support and length constraints across rounds.
func TestConstraintChange(t *testing.T) {
	db := testutil.PaperDB()
	s := session.New(db)

	cs1 := constraints.Set{constraints.MinSupport{Count: 2}, constraints.MaxLength{N: 4}}
	r1, err := s.Mine(context.Background(), cs1)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range r1.Patterns {
		if len(p.Items) > 4 {
			t.Fatalf("maxlength violated: %v", p.Items)
		}
	}

	// Tighten the length bound: filter path.
	cs2 := constraints.Set{constraints.MinSupport{Count: 2}, constraints.MaxLength{N: 2}}
	r2, err := s.Mine(context.Background(), cs2)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Source != session.SourceFiltered {
		t.Errorf("tightened length: source = %s, want filtered", r2.Source)
	}
	want := mining.PatternSet{}
	for k, p := range testutil.Oracle(t, db, 2) {
		if len(p.Items) <= 2 {
			want[k] = p
		}
	}
	if !toSet(t, r2.Patterns).Equal(want) {
		t.Error("tightened length patterns wrong")
	}

	// Relax the length bound: recycle path, but results must still be exact.
	cs3 := constraints.Set{constraints.MinSupport{Count: 2}, constraints.MaxLength{N: 3}}
	r3, err := s.Mine(context.Background(), cs3)
	if err != nil {
		t.Fatal(err)
	}
	want3 := mining.PatternSet{}
	for k, p := range testutil.Oracle(t, db, 2) {
		if len(p.Items) <= 3 {
			want3[k] = p
		}
	}
	if !toSet(t, r3.Patterns).Equal(want3) {
		t.Error("relaxed length patterns wrong")
	}
}

// TestMultiUserRecycling: patterns from one session recycle into another.
func TestMultiUserRecycling(t *testing.T) {
	db := testutil.PaperDB()
	alice := session.New(db)
	resA, err := alice.Mine(context.Background(), constraints.Set{constraints.MinSupport{Count: 3}})
	if err != nil {
		t.Fatal(err)
	}

	bob := session.New(db, session.WithStrategy(core.MLP))
	resB, err := bob.MineRecycling(context.Background(), constraints.Set{constraints.MinSupport{Count: 2}}, resA.Patterns)
	if err != nil {
		t.Fatal(err)
	}
	if resB.Source != session.SourceRecycled {
		t.Errorf("source = %s, want recycled", resB.Source)
	}
	if !toSet(t, resB.Patterns).Equal(testutil.Oracle(t, db, 2)) {
		t.Error("multi-user recycling produced wrong patterns")
	}
}

// TestRandomizedSessions drives random constraint walks and checks every
// round against the oracle.
func TestRandomizedSessions(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	for rep := 0; rep < 10; rep++ {
		db := testutil.RandomDB(r, 30+r.Intn(60), 5+r.Intn(10), 1+r.Intn(8))
		s := session.New(db, session.WithEngine("rp-hmine"))
		min := 6
		for round := 0; round < 6; round++ {
			min += r.Intn(5) - 2 // wander up and down
			if min < 1 {
				min = 1
			}
			res, err := s.Mine(context.Background(), constraints.Set{constraints.MinSupport{Count: min}})
			if err != nil {
				t.Fatal(err)
			}
			if !toSet(t, res.Patterns).Equal(testutil.Oracle(t, db, min)) {
				t.Fatalf("rep %d round %d (min=%d, source=%s): wrong patterns",
					rep, round, min, res.Source)
			}
		}
	}
}

func TestNoMinSupport(t *testing.T) {
	s := session.New(testutil.PaperDB())
	if _, err := s.Mine(context.Background(), constraints.Set{constraints.MaxLength{N: 3}}); err != session.ErrNoMinSupport {
		t.Errorf("got %v, want ErrNoMinSupport", err)
	}
}

// TestMineCancelled proves a cancelled context aborts a round and leaves the
// history untouched.
func TestMineCancelled(t *testing.T) {
	s := session.New(testutil.PaperDB())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Mine(ctx, constraints.Set{constraints.MinSupport{Count: 2}}); err == nil {
		t.Fatal("mine with cancelled context succeeded")
	}
	if len(s.Rounds()) != 0 {
		t.Fatalf("cancelled round was recorded: %d rounds", len(s.Rounds()))
	}
}
