// Package session implements the interactive, iterative mining loop that
// motivates the paper: a user (or several users sharing a store) runs
// constrained frequent-pattern mining repeatedly, refining constraints
// between rounds. The session keeps each round's result and picks the
// cheapest correct strategy for the next round:
//
//   - constraints tightened (or unchanged) → filter a previous result, no
//     mining at all (Section 2's easy direction);
//   - constraints relaxed or incomparable → compress the database with the
//     best previous pattern set and mine the compressed database (the
//     paper's recycling scheme);
//   - no usable history → mine from scratch with the baseline algorithm.
package session

import (
	"context"
	"errors"
	"fmt"
	"time"

	"gogreen/internal/constraints"
	"gogreen/internal/core"
	"gogreen/internal/dataset"
	"gogreen/internal/engine"
	"gogreen/internal/lattice"
	"gogreen/internal/mining"
)

// Source says how a round's result was produced. It is the shared
// mining.Source type, so session results and server responses report
// provenance identically.
type Source = mining.Source

// Sources of a result.
const (
	SourceFresh    = mining.SourceFresh    // mined from scratch
	SourceFiltered = mining.SourceFiltered // filtered from a previous round
	SourceRecycled = mining.SourceRecycled // mined over a compressed database
)

// Result is one round's outcome. It embeds the unified mining.Result (whose
// BasedOn is a "round-N" label here, empty for fresh rounds) and adds the
// numeric history index.
type Result struct {
	mining.Result
	// Round is the index of the history round that was filtered or
	// recycled, or -1 for fresh rounds and explicit MineRecycling calls.
	Round int
}

// roundLabel renders the BasedOn label for history index i.
func roundLabel(i int) string { return fmt.Sprintf("round-%d", i) }

// Round is one history entry.
type Round struct {
	Constraints constraints.Set
	Result      Result
}

// Session is an interactive mining session over one database. Not safe for
// concurrent use.
type Session struct {
	db     *dataset.DB
	pipe   engine.Pipeline
	cache  engine.CacheConfig
	rounds []Round
}

// Option configures a session.
type Option func(*Session)

// WithStrategy selects the compression strategy (default MCP).
func WithStrategy(s core.Strategy) Option { return func(se *Session) { se.pipe.Strategy = s } }

// WithEngine selects the compressed-database miner by canonical registry
// name, e.g. "rp-hmine" (default "rp-naive"). Unknown names surface when a
// round recycles.
func WithEngine(name string) Option { return func(se *Session) { se.pipe.Recycled = name } }

// WithBaseline selects the from-scratch miner by canonical registry name
// (default "hmine"). Unknown names surface when a round mines fresh.
func WithBaseline(name string) Option { return func(se *Session) { se.pipe.Fresh = name } }

// WithCompressWorkers shards the compression phase of recycled rounds over n
// workers (default GOMAXPROCS; output is byte-identical at any count).
func WithCompressWorkers(n int) Option { return func(se *Session) { se.pipe.CompressWorkers = n } }

// WithMineWorkers parallelizes the mining phase of fresh and recycled
// rounds over n worker goroutines (n < 0 means GOMAXPROCS; 0, the default,
// mines serially). The emitted pattern set and supports are identical to
// serial mining; algorithms without a par-* registry variant stay serial.
func WithMineWorkers(n int) Option { return func(se *Session) { se.pipe.MineWorkers = n } }

// WithLattice enables the materialized threshold lattice (off by default at
// this surface): support-only rounds are answered from and installed into
// the process-wide shared pattern cache keyed by the session's database, so
// concurrent sessions over the same *dataset.DB share one ladder — the
// paper's multi-user scenario without shipping pattern sets by hand.
func WithLattice(on bool) Option { return func(se *Session) { engine.WithLattice(on)(&se.cache) } }

// WithLatticeRungs sets the lattice install grid of relative thresholds
// (see engine.CacheConfig.Rungs). It does not itself enable the lattice.
func WithLatticeRungs(rungs []float64) Option {
	return func(se *Session) { engine.WithLatticeRungs(rungs)(&se.cache) }
}

// WithCacheBudget caps the shared lattice store's resident bytes. It does
// not itself enable the lattice.
func WithCacheBudget(bytes int64) Option {
	return func(se *Session) { engine.WithCacheBudget(bytes)(&se.cache) }
}

// New starts a session over db.
func New(db *dataset.DB, opts ...Option) *Session {
	s := &Session{db: db, pipe: engine.Pipeline{Recycled: "rp-naive"}}
	for _, o := range opts {
		o(s)
	}
	s.cache.Attach(&s.pipe, db)
	return s
}

// Rounds returns the history.
func (s *Session) Rounds() []Round { return s.rounds }

// ErrNoMinSupport mirrors constraints.ErrNoMinSupport for session rounds.
var ErrNoMinSupport = errors.New("session: constraint set has no minsupport")

// Mine runs one round under the given constraints, choosing filter, recycle
// or fresh mining automatically, and records the round. The context cancels
// mining cooperatively mid-recursion; a cancelled round is not recorded.
func (s *Session) Mine(ctx context.Context, cs constraints.Set) (Result, error) {
	min := constraints.MinSupportOf(cs)
	if min < 1 {
		return Result{}, ErrNoMinSupport
	}
	start := time.Now()

	// Filter path: a previous round whose constraints were equal or looser
	// contains every pattern of the new round.
	if i := s.filterSource(cs); i >= 0 {
		patterns := constraints.FilterSet(s.rounds[i].Result.Patterns, cs)
		res := Result{
			Result: mining.Result{Patterns: patterns, Source: SourceFiltered,
				BasedOn: roundLabel(i), MinCount: min, Elapsed: time.Since(start)},
			Round: i,
		}
		s.rounds = append(s.rounds, Round{Constraints: cs, Result: res})
		return res, nil
	}

	// Lattice probe: a shared rung at or below the threshold is a complete
	// superset of the answer, so filtering it with the whole constraint set
	// is exact — a pure-filter hit even with no usable history round.
	rungFP, rungMin, rungOut := s.peekLattice(min)
	if rungOut == lattice.Hit {
		rungFP, rungMin, _ = s.pipe.Cache.Best(min) // bump LRU + hit counter
		patterns := constraints.FilterSet(rungFP, cs)
		res := Result{
			Result: mining.Result{Patterns: patterns, Source: SourceFiltered,
				BasedOn: latticeLabel(rungMin), MinCount: min,
				Cache: string(lattice.Hit), Elapsed: time.Since(start)},
			Round: -1,
		}
		s.rounds = append(s.rounds, Round{Constraints: cs, Result: res})
		return res, nil
	}

	// Recycle path: compress with the biggest previous pattern set; a
	// lattice rung above the threshold competes as the seed.
	seed, basedOn, round := []mining.Pattern(nil), "", -1
	if i := s.recycleSource(); i >= 0 {
		seed, basedOn, round = s.rounds[i].Result.Patterns, roundLabel(i), i
	}
	if rungOut == lattice.Relax && len(rungFP) > len(seed) {
		s.pipe.Cache.Best(min) // bump LRU + seed counter
		seed, basedOn, round = rungFP, latticeLabel(rungMin), -1
	}
	if len(seed) > 0 {
		res, err := s.MineRecycling(ctx, cs, seed)
		if err != nil {
			return Result{}, err
		}
		res.Round, res.BasedOn = round, basedOn
		res.Cache = cacheOutcome(s.pipe.Cache, rungOut)
		s.installRound(cs, min, res.Patterns)
		s.rounds = append(s.rounds, Round{Constraints: cs, Result: res})
		return res, nil
	}

	// Fresh path.
	miner, _, err := s.pipe.FreshMiner()
	if err != nil {
		return Result{}, fmt.Errorf("session: %w", err)
	}
	var col mining.Collector
	if err := constraints.MineContext(ctx, s.db, cs, miner, &col); err != nil {
		return Result{}, fmt.Errorf("session: fresh mining: %w", err)
	}
	res := Result{
		Result: mining.Result{Patterns: col.Patterns, Source: SourceFresh,
			MinCount: min, Cache: cacheOutcome(s.pipe.Cache, rungOut),
			Elapsed: time.Since(start)},
		Round: -1,
	}
	s.installRound(cs, min, res.Patterns)
	s.rounds = append(s.rounds, Round{Constraints: cs, Result: res})
	return res, nil
}

// latticeLabel renders the BasedOn label for a served lattice rung.
func latticeLabel(minCount int) string { return fmt.Sprintf("lattice-%d", minCount) }

// peekLattice probes the session's ladder without touching LRU state; Miss
// when the lattice is disabled.
func (s *Session) peekLattice(min int) ([]mining.Pattern, int, lattice.Outcome) {
	if s.pipe.Cache == nil {
		return nil, 0, lattice.Miss
	}
	return s.pipe.Cache.Peek(min)
}

// cacheOutcome renders a Result.Cache value: empty without a lattice.
func cacheOutcome(c *lattice.Cache, out lattice.Outcome) string {
	if c == nil {
		return ""
	}
	return string(out)
}

// installRound materializes a round's result as a lattice rung. Only
// support-only constraint sets qualify: any other constraint makes the
// result an incomplete frequent-pattern set, which must never be served as
// a rung.
func (s *Session) installRound(cs constraints.Set, min int, fp []mining.Pattern) {
	if s.pipe.Cache == nil {
		return
	}
	for _, c := range cs {
		if _, ok := c.(constraints.MinSupport); !ok {
			return
		}
	}
	s.pipe.Cache.Install(min, fp)
}

// MineRecycling runs one round recycling an explicit pattern set — the
// multi-user scenario, where fp was discovered by another session and
// shipped over a pattern store. The round is not recorded in this session's
// history (the caller gets the result and decides); Mine records rounds.
func (s *Session) MineRecycling(ctx context.Context, cs constraints.Set, fp []mining.Pattern) (Result, error) {
	min := constraints.MinSupportOf(cs)
	if min < 1 {
		return Result{}, ErrNoMinSupport
	}
	start := time.Now()
	rec, _, err := s.pipe.Recycler(fp)
	if err != nil {
		return Result{}, fmt.Errorf("session: %w", err)
	}
	var col mining.Collector
	if err := constraints.MineContext(ctx, s.db, cs, rec, &col); err != nil {
		return Result{}, fmt.Errorf("session: recycling: %w", err)
	}
	return Result{
		Result: mining.Result{Patterns: col.Patterns, Source: SourceRecycled,
			MinCount: min, Elapsed: time.Since(start)},
		Round: -1,
	}, nil
}

// filterSource returns the most recent history round whose constraints are
// equal to or looser than cs (so filtering it is exact), or -1.
func (s *Session) filterSource(cs constraints.Set) int {
	for i := len(s.rounds) - 1; i >= 0; i-- {
		switch constraints.Compare(s.rounds[i].Constraints, cs) {
		case constraints.Equal, constraints.Tighter:
			// New set equal or tighter than round i's: round i's result is
			// a superset.
			return i
		}
	}
	return -1
}

// recycleSource returns the history round with the most patterns (the most
// recyclable knowledge), or -1 when history is empty or useless.
func (s *Session) recycleSource() int {
	best, bestLen := -1, 0
	for i := range s.rounds {
		if n := len(s.rounds[i].Result.Patterns); n > bestLen {
			best, bestLen = i, n
		}
	}
	return best
}
