// Package rpfptree adapts FP-growth to compressed databases — the paper's
// Recycle-FP (Section 4.2).
//
// Each compressed group head is treated as a special item placed at the top
// of its prefix-tree branch: a member tuple is inserted as the group's
// special node followed by the member's outlying items (descending support
// order), so the group pattern is stored once per branch and never expanded
// in the tree. Loose tuples are inserted as ordinary paths.
//
// Mining is FP-growth with two extensions:
//
//   - An item's support and conditional pattern base draw from two sources:
//     its physical nodes (reached via item-links) and the group-head nodes
//     whose pattern contains the item (reached via per-group links). For the
//     latter, every tuple in the group-head's subtree is in the projection;
//     the subtree is decomposed into residual-count paths.
//   - Conditional trees are again compressed trees: the restriction of a
//     group pattern to the items after the conditioning item becomes a group
//     of the conditional tree (instances with equal restricted patterns
//     merge), so compression survives the recursion.
//
// A conditional tree that consists of one special node with no children is
// finished by combination enumeration (Lemma 3.1); a pure-real single path
// uses the classic FP-growth single-path shortcut.
package rpfptree

import (
	"context"

	"gogreen/internal/core"
	"gogreen/internal/dataset"
	"gogreen/internal/mining"
)

// Miner mines compressed databases with the Recycle-FP algorithm.
type Miner struct{}

// New returns a Recycle-FP engine.
func New() Miner { return Miner{} }

// Name implements core.CDBMiner.
func (Miner) Name() string { return "rp-fptree" }

// node is one tree node. group >= 0 marks a special group-head node (item
// is then unused); parents of real nodes carry strictly higher rank or are
// special/root.
type node struct {
	item     dataset.Item // real item (rank space), valid when group < 0
	group    int32        // group index within the owning tree, or -1
	count    int
	parent   *node
	children map[int64]*node // key: child key (special or real)
	next     *node           // chain of same-item or same-group nodes
}

// childKey distinguishes special children from real ones in one map.
func childKey(group int32, item dataset.Item) int64 {
	if group >= 0 {
		return -int64(group) - 1
	}
	return int64(item)
}

// nodeArena is a chunked bump allocator for tree nodes. Chunks never move,
// so node pointers stay valid for the arena's lifetime; recycled nodes keep
// their children maps (cleared on reuse), which is where most of the old
// per-node allocation cost lived. Conditional trees are strictly nested in
// the growth recursion, so a mark/release pair around each conditional
// tree's lifetime reclaims its nodes LIFO-style with no bookkeeping.
type nodeArena struct {
	chunks [][]node
	n      int // nodes currently in use
}

const arenaChunk = 256

func (a *nodeArena) get(item dataset.Item, group int32, parent *node) *node {
	ci, off := a.n/arenaChunk, a.n%arenaChunk
	if ci == len(a.chunks) {
		a.chunks = append(a.chunks, make([]node, arenaChunk))
	}
	a.n++
	nd := &a.chunks[ci][off]
	nd.item, nd.group, nd.parent = item, group, parent
	nd.count = 0
	nd.next = nil
	if nd.children == nil {
		nd.children = make(map[int64]*node)
	} else {
		clear(nd.children)
	}
	return nd
}

func (a *nodeArena) mark() int     { return a.n }
func (a *nodeArena) release(m int) { a.n = m }

// tree is a compressed FP-tree: real-item header chains plus per-group
// patterns and head chains. Nodes come from the owning arena; the tree's
// own slices are recycled through ctx's tree pool.
type tree struct {
	root       *node
	heads      []*node // per real item (rank space)
	counts     []int   // per real item: physical + via group patterns
	groups     [][]dataset.Item
	groupHeads []*node
	nItems     int
	arena      *nodeArena

	// byItem lazily indexes groups by pattern item; pathCache lazily holds
	// each group's subtree decomposition (member tails with residual
	// counts), so projecting a group onto its k pattern items walks the
	// subtree once instead of k times.
	byItem    [][]int32 // per real item, group indices
	byBuilt   bool
	pathCache [][]pathEntry // per group, nil until computed
	pathDone  []bool
	pathBuf   []dataset.Item // root-to-node scratch for subtree walks
	patSlab   []dataset.Item // backing for conditional group patterns
}

// pathEntry is one set of member tuples below a group head: their common
// remaining tail (ascending rank) and how many of them end exactly there.
type pathEntry struct {
	items []dataset.Item
	count int
}

// buildByItem materializes the group-by-item index. PrepareShared calls it
// eagerly so concurrent task mining never mutates the shared tree.
func (tr *tree) buildByItem() {
	if tr.byBuilt {
		return
	}
	if len(tr.byItem) < tr.nItems {
		tr.byItem = make([][]int32, tr.nItems)
	}
	for i := range tr.byItem[:tr.nItems] {
		tr.byItem[i] = tr.byItem[i][:0]
	}
	for gi, pat := range tr.groups {
		for _, p := range pat {
			tr.byItem[p] = append(tr.byItem[p], int32(gi))
		}
	}
	tr.byBuilt = true
}

// groupsWith returns the indices of groups whose pattern contains it.
func (tr *tree) groupsWith(it dataset.Item) []int32 {
	tr.buildByItem()
	return tr.byItem[it]
}

// paths returns the cached subtree decomposition of every head node of
// group gi. Cache slots (and their entry buffers) are recycled across the
// owning tree's reuses.
func (tr *tree) paths(gi int32) []pathEntry {
	for len(tr.pathDone) < len(tr.groups) {
		tr.pathDone = append(tr.pathDone, false)
	}
	for len(tr.pathCache) < len(tr.groups) {
		if len(tr.pathCache) < cap(tr.pathCache) {
			// Re-expose a recycled slot: its entry buffer is scratch for
			// the next decomposition.
			tr.pathCache = tr.pathCache[:len(tr.pathCache)+1]
		} else {
			tr.pathCache = append(tr.pathCache, nil)
		}
	}
	if tr.pathDone[gi] {
		return tr.pathCache[gi]
	}
	ps := tr.pathCache[gi][:0]
	for g := tr.groupHeads[gi]; g != nil; g = g.next {
		ps = tr.collect(g, 0, ps)
	}
	tr.pathCache[gi] = ps
	tr.pathDone[gi] = true
	return ps
}

// collect walks the subtree below g, appending a pathEntry for every node
// with a positive residual count (node count minus its children's counts):
// the tuples that end at that node. tr.pathBuf[:depth] holds the root-to-g
// real items (descending rank); entries store them ascending. Recycled
// entry slots keep their items buffers.
func (tr *tree) collect(g *node, depth int, ps []pathEntry) []pathEntry {
	residual := g.count
	for _, child := range g.children {
		residual -= child.count
	}
	if residual > 0 {
		var e pathEntry
		if len(ps) < cap(ps) {
			e = ps[:len(ps)+1][len(ps)]
		}
		e.items = e.items[:0]
		for i := depth - 1; i >= 0; i-- {
			e.items = append(e.items, tr.pathBuf[i])
		}
		e.count = residual
		ps = append(ps, e)
	}
	for _, child := range g.children {
		if depth < len(tr.pathBuf) {
			tr.pathBuf[depth] = child.item
		} else {
			tr.pathBuf = append(tr.pathBuf[:depth], child.item)
		}
		ps = tr.collect(child, depth+1, ps)
	}
	return ps
}

// addGroup registers a group pattern and returns its tree-local index.
// Equal patterns from different sources may get distinct indices; that only
// costs a little compression, never correctness.
func (tr *tree) addGroup(pattern []dataset.Item) int32 {
	gi := int32(len(tr.groups))
	tr.groups = append(tr.groups, pattern)
	tr.groupHeads = append(tr.groupHeads, nil)
	return gi
}

// addGroupCopy is addGroup for a caller-owned scratch pattern: the items are
// copied into the tree's pattern slab (a slab regrow leaves earlier groups
// on the old backing array, which still holds their final patterns).
func (tr *tree) addGroupCopy(pattern []dataset.Item) int32 {
	off := len(tr.patSlab)
	tr.patSlab = append(tr.patSlab, pattern...)
	return tr.addGroup(tr.patSlab[off:len(tr.patSlab):len(tr.patSlab)])
}

// insert adds one tuple: an optional group (by tree-local index, -1 for
// none) followed by real outlying items (ascending rank; walked descending
// so frequent items sit near the root).
func (tr *tree) insert(group int32, tail []dataset.Item, count int) {
	cur := tr.root
	if group >= 0 {
		key := childKey(group, 0)
		child := cur.children[key]
		if child == nil {
			child = tr.arena.get(-1, group, cur)
			child.next = tr.groupHeads[group]
			tr.groupHeads[group] = child
			cur.children[key] = child
		}
		child.count += count
		for _, it := range tr.groups[group] {
			tr.counts[it] += count
		}
		cur = child
	}
	for i := len(tail) - 1; i >= 0; i-- {
		it := tail[i]
		tr.counts[it] += count
		key := childKey(-1, it)
		child := cur.children[key]
		if child == nil {
			child = tr.arena.get(it, -1, cur)
			child.next = tr.heads[it]
			tr.heads[it] = child
			cur.children[key] = child
		}
		child.count += count
		cur = child
	}
}

// MineCDB implements core.CDBMiner.
func (Miner) MineCDB(cdb *core.CDB, minCount int, sink mining.Sink) error {
	return mineCDB(cdb, minCount, sink, nil)
}

// MineCDBContext implements core.ContextCDBMiner: like MineCDB, but aborts
// promptly (checked at every conditional tree and every header item) when
// ctx is cancelled or times out.
func (Miner) MineCDBContext(c context.Context, cdb *core.CDB, minCount int, sink mining.Sink) error {
	cancel := mining.NewCanceller(c, 0)
	if err := cancel.Err(); err != nil {
		return err
	}
	if err := mineCDB(cdb, minCount, sink, cancel); err != nil {
		return err
	}
	return cancel.Err()
}

func mineCDB(cdb *core.CDB, minCount int, sink mining.Sink, cancel *mining.Canceller) error {
	if minCount < 1 {
		return mining.ErrBadMinSupport
	}
	flist := cdb.FList(minCount)
	if flist.Len() == 0 {
		return nil
	}
	blocks, loose := core.EncodeCDB(cdb, flist)
	return mineEncoded(blocks, loose, flist, nil, minCount, sink, cancel)
}

// MineEncoded mines an already rank-encoded (projected) compressed database
// whose patterns all extend prefix (in rank space) with the Recycle-FP
// engine: the projected blocks become a compressed conditional tree.
func (Miner) MineEncoded(blocks []core.Block, loose [][]dataset.Item, flist *mining.FList, prefix []dataset.Item, minCount int, sink mining.Sink) error {
	return mineEncoded(blocks, loose, flist, prefix, minCount, sink, nil)
}

// MineEncodedContext is MineEncoded with cooperative cancellation: the
// FP-growth recursion aborts promptly when ctx is cancelled or times out,
// returning the context's error. Used by the parallel CDB wrapper, whose
// workers each mine one independent projected subtree under the caller's
// context (a Canceller is not goroutine-safe, so every subtree gets its own).
func (Miner) MineEncodedContext(c context.Context, blocks []core.Block, loose [][]dataset.Item, flist *mining.FList, prefix []dataset.Item, minCount int, sink mining.Sink) error {
	cancel := mining.NewCanceller(c, 0)
	if err := cancel.Err(); err != nil {
		return err
	}
	if err := mineEncoded(blocks, loose, flist, prefix, minCount, sink, cancel); err != nil {
		return err
	}
	return cancel.Err()
}

// NewScratch implements the parallel wrapper's pooled-miner contract: the
// returned value holds the engine's reusable working memory (node arena,
// tree pool, counting and prefix buffers) and may be threaded through
// consecutive MineEncodedScratch / MineSharedTask calls by one goroutine.
func (Miner) NewScratch() any { return &ctx{} }

// MineEncodedScratch is MineEncodedContext mining through sc's recycled
// buffers (sc must come from NewScratch). All calls reusing one scratch
// should pass the same F-list; a width change resets the pooled tables.
func (Miner) MineEncodedScratch(c context.Context, sc any, blocks []core.Block, loose [][]dataset.Item, flist *mining.FList, prefix []dataset.Item, minCount int, sink mining.Sink) error {
	cancel := mining.NewCanceller(c, 0)
	if err := cancel.Err(); err != nil {
		return err
	}
	if err := mineEncodedInto(sc.(*ctx), blocks, loose, flist, prefix, minCount, sink, cancel); err != nil {
		return err
	}
	return cancel.Err()
}

// buildTree inserts a rank-encoded compressed projection into tr.
func buildTree(tr *tree, blocks []core.Block, loose [][]dataset.Item) {
	for _, b := range blocks {
		gi := tr.addGroup(b.Suffix)
		nTails := 0
		for _, tail := range b.Tails {
			tr.insert(gi, tail, 1)
			nTails++
		}
		if rest := b.Count - nTails; rest > 0 {
			tr.insert(gi, nil, rest) // members whose tail emptied entirely
		}
	}
	for _, t := range loose {
		tr.insert(-1, t, 1)
	}
}

func mineEncoded(blocks []core.Block, loose [][]dataset.Item, flist *mining.FList, prefix []dataset.Item, minCount int, sink mining.Sink, cancel *mining.Canceller) error {
	return mineEncodedInto(&ctx{}, blocks, loose, flist, prefix, minCount, sink, cancel)
}

func mineEncodedInto(m *ctx, blocks []core.Block, loose [][]dataset.Item, flist *mining.FList, prefix []dataset.Item, minCount int, sink mining.Sink, cancel *mining.Canceller) error {
	if minCount < 1 {
		return mining.ErrBadMinSupport
	}
	m.reset(flist, minCount, sink, cancel)
	mk := m.arena.mark()
	tr := m.getTree()
	buildTree(tr, blocks, loose)
	m.growth(tr, append(m.prefix[:0], prefix...))
	m.putTree(tr)
	m.arena.release(mk)
	m.sink, m.cancel = nil, nil
	return nil
}

// sharedTree is the fan-out state PrepareShared hands to concurrent
// MineSharedTask calls: one fully built compressed tree with its lazy
// indexes materialized, so task mining is strictly read-only on it.
type sharedTree struct {
	tr    *tree
	arena nodeArena
	flist *mining.FList
	min   int
}

// PrepareShared builds the root compressed tree ONCE and returns the
// top-level frequent items as independent tasks: MineSharedTask(task) mines
// exactly the subtree growth would mine for that item, against the shared
// tree. This is what makes parallel Recycle-FP worthwhile — per-task
// re-projection and tree rebuilding destroyed the prefix sharing the serial
// miner gets for free. A nil shared value means a whole-tree shortcut
// (lone group / single path) applies and the caller should mine the
// projection as one serial task instead.
func (Miner) PrepareShared(blocks []core.Block, loose [][]dataset.Item, flist *mining.FList, minCount int) (any, []dataset.Item) {
	if minCount < 1 || flist.Len() == 0 {
		return nil, nil
	}
	st := &sharedTree{flist: flist, min: minCount}
	n := flist.Len()
	tr := &tree{heads: make([]*node, n), counts: make([]int, n), nItems: n, arena: &st.arena}
	tr.root = st.arena.get(-1, -1, nil)
	buildTree(tr, blocks, loose)
	st.tr = tr
	if g, _ := tr.loneGroup(); g >= 0 {
		return nil, nil
	}
	if _, _, ok := tr.singleRealPath(nil, nil); ok {
		return nil, nil
	}
	// Materialize the lazy indexes: concurrent tasks must never write the
	// shared tree.
	tr.buildByItem()
	for gi := range tr.groups {
		tr.paths(int32(gi))
	}
	var tasks []dataset.Item
	for r := 0; r < n; r++ {
		if tr.counts[r] >= minCount {
			tasks = append(tasks, dataset.Item(r))
		}
	}
	return st, tasks
}

// MineSharedTask mines one PrepareShared task (a top-level frequent item)
// against the shared tree, through sc's recycled buffers. prefix is the
// rank-space pattern the whole shared projection extends (nil at the root).
// Safe to call concurrently with other scratches against one shared tree.
func (Miner) MineSharedTask(c context.Context, sc, shared any, task dataset.Item, prefix []dataset.Item, sink mining.Sink) error {
	st := shared.(*sharedTree)
	m := sc.(*ctx)
	cancel := mining.NewCanceller(c, 0)
	if err := cancel.Err(); err != nil {
		return err
	}
	m.reset(st.flist, st.min, sink, cancel)
	mk := m.arena.mark()
	m.mineItem(st.tr, task, append(append(m.prefix[:0], prefix...), 0))
	m.arena.release(mk)
	m.sink, m.cancel = nil, nil
	return cancel.Err()
}

type ctx struct {
	flist   *mining.FList
	min     int
	sink    mining.Sink
	decoded []dataset.Item
	width   int
	cancel  *mining.Canceller // nil when mining without a context

	arena nodeArena
	trees []*tree // free list; conditional trees are strictly nested

	// Per-item scratch, shared across recursion depths: each loop iteration
	// in growth fully re-initializes these before use and is done with them
	// before it recurses, so one buffer of each suffices for the whole walk.
	condCounts []int
	pbuf       []dataset.Item
	tbuf       []dataset.Item
	walkTail   []dataset.Item
	giMap      []int32
	spItems    []dataset.Item // singleRealPath scratch
	spCounts   []int
	prefix     []dataset.Item // prefix scratch, reused across calls
	enumBuf    []dataset.Item // combination-enumeration scratch
}

// reset rebinds the per-call fields, keeping the pooled buffers when the
// F-list width is unchanged (the parallel steady path) and rebuilding them
// otherwise.
func (m *ctx) reset(flist *mining.FList, minCount int, sink mining.Sink, cancel *mining.Canceller) {
	n := flist.Len()
	if cap(m.decoded) < n {
		m.decoded = make([]dataset.Item, n)
		m.condCounts = make([]int, n)
		m.trees = nil // pooled trees are width-sized
	} else {
		m.decoded = m.decoded[:n]
		if cap(m.condCounts) < n {
			m.condCounts = make([]int, n)
		} else {
			m.condCounts = m.condCounts[:n]
		}
		for _, tr := range m.trees {
			if len(tr.heads) < n {
				m.trees = nil
				break
			}
		}
	}
	if cap(m.prefix) < n+1 {
		m.prefix = make([]dataset.Item, 0, n+1)
	}
	m.width = n
	m.flist, m.min, m.sink, m.cancel = flist, minCount, sink, cancel
}

// getTree returns a cleared tree whose nodes draw from the ctx arena. The
// caller must putTree it (and release the arena to its mark) once the
// subtree is fully mined.
func (m *ctx) getTree() *tree {
	var tr *tree
	if n := len(m.trees); n > 0 {
		tr = m.trees[n-1]
		m.trees = m.trees[:n-1]
		clear(tr.heads)
		clear(tr.counts)
		tr.groups = tr.groups[:0]
		tr.groupHeads = tr.groupHeads[:0]
		tr.byBuilt = false
		tr.pathDone = tr.pathDone[:0]
		tr.pathCache = tr.pathCache[:0]
		tr.patSlab = tr.patSlab[:0]
	} else {
		tr = &tree{heads: make([]*node, m.width), counts: make([]int, m.width)}
	}
	tr.nItems = m.width
	tr.arena = &m.arena
	tr.root = m.arena.get(-1, -1, nil)
	return tr
}

func (m *ctx) putTree(tr *tree) {
	tr.root = nil // nodes go back with the arena release
	m.trees = append(m.trees, tr)
}

func (m *ctx) emit(prefix []dataset.Item, support int) {
	m.sink.Emit(m.flist.DecodeInto(m.decoded, prefix), support)
}

// growth mines one compressed (conditional) tree.
func (m *ctx) growth(tr *tree, prefix []dataset.Item) {
	// Cooperative cancellation, one cheap check per conditional tree.
	if m.cancel.Check() != nil {
		return
	}
	// Lemma 3.1 shortcut: the whole tree is one group-head node with no
	// outlying subtree — enumerate combinations of the group pattern.
	if g, count := tr.loneGroup(); g >= 0 {
		m.enumerate(tr.groups[g], count, prefix)
		return
	}
	// Classic single-path shortcut when no specials are involved.
	if items, counts, ok := tr.singleRealPath(m.spItems[:0], m.spCounts[:0]); ok {
		m.spItems, m.spCounts = items[:0], counts[:0]
		m.enumeratePath(items, counts, prefix)
		return
	}

	prefix = append(prefix, 0)
	for r := 0; r < tr.nItems; r++ {
		if tr.counts[r] < m.min {
			continue
		}
		if m.cancel.Check() != nil {
			return
		}
		m.mineItem(tr, dataset.Item(r), prefix)
	}
}

// mineItem emits prefix[...last]=it at it's support in tr and mines it's
// conditional tree. prefix's last slot is scratch for it; the slots before
// it are the pattern tr itself extends. The per-item buffers (condCounts,
// pbuf, tbuf, walkTail, giMap) are shared across recursion depths: each
// invocation fully re-initializes them before use and is done with them
// before recursing into the conditional tree.
func (m *ctx) mineItem(tr *tree, it dataset.Item, prefix []dataset.Item) {
	prefix[len(prefix)-1] = it
	m.emit(prefix, tr.counts[it])

	// Pass A: support counts over the conditional pattern base, drawn
	// from the item's physical nodes and from the groups whose pattern
	// contains it.
	condCounts := m.condCounts
	for i := range condCounts {
		condCounts[i] = 0
	}
	for n := tr.heads[it]; n != nil; n = n.next {
		for p := n.parent; p != nil; p = p.parent {
			if p.group >= 0 {
				for _, bi := range restrict(tr.groups[p.group], it) {
					condCounts[bi] += n.count
				}
				break // group heads sit directly below the root
			}
			if p.item >= 0 {
				condCounts[p.item] += n.count
			}
		}
	}
	for _, gi := range tr.groupsWith(it) {
		rest := restrict(tr.groups[gi], it)
		for _, pe := range tr.paths(gi) {
			for _, bi := range rest {
				condCounts[bi] += pe.count
			}
			for _, bi := range restrict(pe.items, it) {
				condCounts[bi] += pe.count
			}
		}
	}
	any := false
	for _, c := range condCounts {
		if c >= m.min {
			any = true
			break
		}
	}
	if !any {
		return
	}

	// Pass B: build the conditional compressed tree from the same two
	// sources, keeping only locally frequent items. The restriction of
	// a group pattern becomes a group of the conditional tree. The tree
	// and its nodes come from the scratch pools; conditional trees are
	// strictly nested, so the arena mark/release reclaims the nodes as
	// soon as the subtree is fully mined.
	mk := m.arena.mark()
	cond := m.getTree()
	// All inserts sharing a source group yield the same restricted,
	// filtered pattern, so the conditional group index is memoized per
	// source group — no pattern hashing on the hot path.
	if cap(m.giMap) < len(tr.groups) {
		m.giMap = make([]int32, len(tr.groups))
	}
	giMap := m.giMap[:len(tr.groups)]
	for i := range giMap {
		giMap[i] = -2 // not computed
	}
	condGroup := func(srcGi int32) int32 {
		if g := giMap[srcGi]; g != -2 {
			return g
		}
		pbuf := m.pbuf[:0]
		for _, bi := range restrict(tr.groups[srcGi], it) {
			if condCounts[bi] >= m.min {
				pbuf = append(pbuf, bi)
			}
		}
		m.pbuf = pbuf
		g := int32(-1)
		if len(pbuf) > 0 {
			g = cond.addGroupCopy(pbuf)
		}
		giMap[srcGi] = g
		return g
	}
	insert := func(srcGi int32, tail []dataset.Item, count int) {
		gi := int32(-1)
		if srcGi >= 0 {
			gi = condGroup(srcGi)
		}
		tbuf := m.tbuf[:0]
		for _, bi := range tail {
			if condCounts[bi] >= m.min {
				tbuf = append(tbuf, bi)
			}
		}
		m.tbuf = tbuf
		if gi >= 0 || len(tbuf) > 0 {
			cond.insert(gi, tbuf, count)
		}
	}
	for n := tr.heads[it]; n != nil; n = n.next {
		walkTail := m.walkTail[:0]
		srcGi := int32(-1)
		for p := n.parent; p != nil; p = p.parent {
			if p.group >= 0 {
				srcGi = p.group
				break
			}
			if p.item >= 0 {
				walkTail = append(walkTail, p.item)
			}
		}
		m.walkTail = walkTail
		if len(walkTail) > 0 || srcGi >= 0 {
			// Climbing yields ascending rank, as insert expects.
			insert(srcGi, walkTail, n.count)
		}
	}
	for _, gi := range tr.groupsWith(it) {
		for _, pe := range tr.paths(gi) {
			tail := restrict(pe.items, it)
			if len(tail) > 0 || len(tr.groups[gi]) > 0 {
				insert(gi, tail, pe.count)
			}
		}
	}
	if len(cond.root.children) > 0 {
		m.growth(cond, prefix)
	}
	m.putTree(cond)
	m.arena.release(mk)
}

// restrict returns the items of sorted pattern strictly greater than it.
func restrict(pattern []dataset.Item, it dataset.Item) []dataset.Item {
	lo, hi := 0, len(pattern)
	for lo < hi {
		mid := (lo + hi) / 2
		if pattern[mid] <= it {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return pattern[lo:]
}

// loneGroup reports whether the tree is exactly one group-head node with no
// children, returning its group index and count (else -1, 0).
func (tr *tree) loneGroup() (int32, int) {
	if len(tr.root.children) != 1 {
		return -1, 0
	}
	for _, child := range tr.root.children {
		if child.group >= 0 && len(child.children) == 0 {
			return child.group, child.count
		}
	}
	return -1, 0
}

// singleRealPath reports whether the tree is one branch of real nodes only,
// returning the root-to-leaf path (root-first, descending rank) built into
// the caller's buffers. The buffers are scribbled on even when ok is false.
func (tr *tree) singleRealPath(items []dataset.Item, counts []int) ([]dataset.Item, []int, bool) {
	cur := tr.root
	for {
		if len(cur.children) == 0 {
			return items, counts, true
		}
		if len(cur.children) > 1 {
			return items, counts, false
		}
		for _, child := range cur.children {
			cur = child
		}
		if cur.group >= 0 {
			return items, counts, false
		}
		items = append(items, cur.item)
		counts = append(counts, cur.count)
	}
}

// enumerate emits every non-empty combination of items at the given support.
func (m *ctx) enumerate(items []dataset.Item, support int, prefix []dataset.Item) {
	n := len(items)
	if n > 62 {
		panic("rpfptree: group enumeration over more than 62 items")
	}
	base := len(prefix)
	buf := append(m.enumBuf[:0], prefix...)
	defer func() { m.enumBuf = buf }()
	for mask := uint64(1); mask < 1<<uint(n); mask++ {
		// The enumeration can cover up to 2^62 patterns, so it must honor
		// cancellation like the recursion proper.
		if m.cancel.Check() != nil {
			return
		}
		buf = buf[:base]
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				buf = append(buf, items[i])
			}
		}
		m.emit(buf, support)
	}
}

// enumeratePath is the classic single-path shortcut: combinations of path
// items, supported by the deepest selected node's count.
func (m *ctx) enumeratePath(items []dataset.Item, counts []int, prefix []dataset.Item) {
	n := len(items)
	if n == 0 {
		return
	}
	if n > 62 {
		panic("rpfptree: single path longer than 62 items")
	}
	base := len(prefix)
	buf := append(m.enumBuf[:0], prefix...)
	defer func() { m.enumBuf = buf }()
	for mask := uint64(1); mask < 1<<uint(n); mask++ {
		if m.cancel.Check() != nil {
			return
		}
		buf = buf[:base]
		sup := 0
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				buf = append(buf, items[i])
				sup = counts[i]
			}
		}
		if sup >= m.min {
			m.emit(buf, sup)
		}
	}
}
