// Package rpfptree adapts FP-growth to compressed databases — the paper's
// Recycle-FP (Section 4.2).
//
// Each compressed group head is treated as a special item placed at the top
// of its prefix-tree branch: a member tuple is inserted as the group's
// special node followed by the member's outlying items (descending support
// order), so the group pattern is stored once per branch and never expanded
// in the tree. Loose tuples are inserted as ordinary paths.
//
// Mining is FP-growth with two extensions:
//
//   - An item's support and conditional pattern base draw from two sources:
//     its physical nodes (reached via item-links) and the group-head nodes
//     whose pattern contains the item (reached via per-group links). For the
//     latter, every tuple in the group-head's subtree is in the projection;
//     the subtree is decomposed into residual-count paths.
//   - Conditional trees are again compressed trees: the restriction of a
//     group pattern to the items after the conditioning item becomes a group
//     of the conditional tree (instances with equal restricted patterns
//     merge), so compression survives the recursion.
//
// A conditional tree that consists of one special node with no children is
// finished by combination enumeration (Lemma 3.1); a pure-real single path
// uses the classic FP-growth single-path shortcut.
package rpfptree

import (
	"context"

	"gogreen/internal/core"
	"gogreen/internal/dataset"
	"gogreen/internal/mining"
)

// Miner mines compressed databases with the Recycle-FP algorithm.
type Miner struct{}

// New returns a Recycle-FP engine.
func New() Miner { return Miner{} }

// Name implements core.CDBMiner.
func (Miner) Name() string { return "rp-fptree" }

// node is one tree node. group >= 0 marks a special group-head node (item
// is then unused); parents of real nodes carry strictly higher rank or are
// special/root.
type node struct {
	item     dataset.Item // real item (rank space), valid when group < 0
	group    int32        // group index within the owning tree, or -1
	count    int
	parent   *node
	children map[int64]*node // key: child key (special or real)
	next     *node           // chain of same-item or same-group nodes
}

// childKey distinguishes special children from real ones in one map.
func childKey(group int32, item dataset.Item) int64 {
	if group >= 0 {
		return -int64(group) - 1
	}
	return int64(item)
}

// tree is a compressed FP-tree: real-item header chains plus per-group
// patterns and head chains.
type tree struct {
	root       *node
	heads      []*node // per real item (rank space)
	counts     []int   // per real item: physical + via group patterns
	groups     [][]dataset.Item
	groupHeads []*node
	nItems     int

	// byItem lazily indexes groups by pattern item; pathCache lazily holds
	// each group's subtree decomposition (member tails with residual
	// counts), so projecting a group onto its k pattern items walks the
	// subtree once instead of k times.
	byItem    map[dataset.Item][]int32
	pathCache map[int32][]pathEntry
}

// pathEntry is one set of member tuples below a group head: their common
// remaining tail (ascending rank) and how many of them end exactly there.
type pathEntry struct {
	items []dataset.Item
	count int
}

// groupsWith returns the indices of groups whose pattern contains it.
func (tr *tree) groupsWith(it dataset.Item) []int32 {
	if tr.byItem == nil {
		tr.byItem = map[dataset.Item][]int32{}
		for gi, pat := range tr.groups {
			for _, p := range pat {
				tr.byItem[p] = append(tr.byItem[p], int32(gi))
			}
		}
	}
	return tr.byItem[it]
}

// paths returns the cached subtree decomposition of every head node of
// group gi.
func (tr *tree) paths(gi int32) []pathEntry {
	if ps, ok := tr.pathCache[gi]; ok {
		return ps
	}
	if tr.pathCache == nil {
		tr.pathCache = map[int32][]pathEntry{}
	}
	var ps []pathEntry
	for g := tr.groupHeads[gi]; g != nil; g = g.next {
		collectSubtree(g, nil, func(path []dataset.Item, count int) {
			// path is root-to-node (descending rank); store ascending.
			items := make([]dataset.Item, len(path))
			for i, p := range path {
				items[len(path)-1-i] = p
			}
			ps = append(ps, pathEntry{items: items, count: count})
		})
	}
	tr.pathCache[gi] = ps
	return ps
}

func newTree(nItems int) *tree {
	return &tree{
		root:   &node{item: -1, group: -1, children: map[int64]*node{}},
		heads:  make([]*node, nItems),
		counts: make([]int, nItems),
		nItems: nItems,
	}
}

// addGroup registers a group pattern and returns its tree-local index.
// Equal patterns from different sources may get distinct indices; that only
// costs a little compression, never correctness.
func (tr *tree) addGroup(pattern []dataset.Item) int32 {
	gi := int32(len(tr.groups))
	tr.groups = append(tr.groups, pattern)
	tr.groupHeads = append(tr.groupHeads, nil)
	return gi
}

// insert adds one tuple: an optional group (by tree-local index, -1 for
// none) followed by real outlying items (ascending rank; walked descending
// so frequent items sit near the root).
func (tr *tree) insert(group int32, tail []dataset.Item, count int) {
	cur := tr.root
	if group >= 0 {
		key := childKey(group, 0)
		child := cur.children[key]
		if child == nil {
			child = &node{item: -1, group: group, children: map[int64]*node{}, parent: cur}
			child.next = tr.groupHeads[group]
			tr.groupHeads[group] = child
			cur.children[key] = child
		}
		child.count += count
		for _, it := range tr.groups[group] {
			tr.counts[it] += count
		}
		cur = child
	}
	for i := len(tail) - 1; i >= 0; i-- {
		it := tail[i]
		tr.counts[it] += count
		key := childKey(-1, it)
		child := cur.children[key]
		if child == nil {
			child = &node{item: it, group: -1, children: map[int64]*node{}, parent: cur}
			child.next = tr.heads[it]
			tr.heads[it] = child
			cur.children[key] = child
		}
		child.count += count
		cur = child
	}
}

// MineCDB implements core.CDBMiner.
func (Miner) MineCDB(cdb *core.CDB, minCount int, sink mining.Sink) error {
	return mineCDB(cdb, minCount, sink, nil)
}

// MineCDBContext implements core.ContextCDBMiner: like MineCDB, but aborts
// promptly (checked at every conditional tree and every header item) when
// ctx is cancelled or times out.
func (Miner) MineCDBContext(c context.Context, cdb *core.CDB, minCount int, sink mining.Sink) error {
	cancel := mining.NewCanceller(c, 0)
	if err := cancel.Err(); err != nil {
		return err
	}
	if err := mineCDB(cdb, minCount, sink, cancel); err != nil {
		return err
	}
	return cancel.Err()
}

func mineCDB(cdb *core.CDB, minCount int, sink mining.Sink, cancel *mining.Canceller) error {
	if minCount < 1 {
		return mining.ErrBadMinSupport
	}
	flist := cdb.FList(minCount)
	if flist.Len() == 0 {
		return nil
	}
	blocks, loose := core.EncodeCDB(cdb, flist)
	return mineEncoded(blocks, loose, flist, nil, minCount, sink, cancel)
}

// MineEncoded mines an already rank-encoded (projected) compressed database
// whose patterns all extend prefix (in rank space) with the Recycle-FP
// engine: the projected blocks become a compressed conditional tree.
func (Miner) MineEncoded(blocks []core.Block, loose [][]dataset.Item, flist *mining.FList, prefix []dataset.Item, minCount int, sink mining.Sink) error {
	return mineEncoded(blocks, loose, flist, prefix, minCount, sink, nil)
}

// MineEncodedContext is MineEncoded with cooperative cancellation: the
// FP-growth recursion aborts promptly when ctx is cancelled or times out,
// returning the context's error. Used by the parallel CDB wrapper, whose
// workers each mine one independent projected subtree under the caller's
// context (a Canceller is not goroutine-safe, so every subtree gets its own).
func (Miner) MineEncodedContext(c context.Context, blocks []core.Block, loose [][]dataset.Item, flist *mining.FList, prefix []dataset.Item, minCount int, sink mining.Sink) error {
	cancel := mining.NewCanceller(c, 0)
	if err := cancel.Err(); err != nil {
		return err
	}
	if err := mineEncoded(blocks, loose, flist, prefix, minCount, sink, cancel); err != nil {
		return err
	}
	return cancel.Err()
}

func mineEncoded(blocks []core.Block, loose [][]dataset.Item, flist *mining.FList, prefix []dataset.Item, minCount int, sink mining.Sink, cancel *mining.Canceller) error {
	if minCount < 1 {
		return mining.ErrBadMinSupport
	}
	tr := newTree(flist.Len())
	for _, b := range blocks {
		gi := tr.addGroup(b.Suffix)
		nTails := 0
		for _, tail := range b.Tails {
			tr.insert(gi, tail, 1)
			nTails++
		}
		if rest := b.Count - nTails; rest > 0 {
			tr.insert(gi, nil, rest) // members whose tail emptied entirely
		}
	}
	for _, t := range loose {
		tr.insert(-1, t, 1)
	}
	m := &ctx{flist: flist, min: minCount, sink: sink, decoded: make([]dataset.Item, flist.Len()), cancel: cancel}
	m.growth(tr, append([]dataset.Item(nil), prefix...))
	return nil
}

type ctx struct {
	flist   *mining.FList
	min     int
	sink    mining.Sink
	decoded []dataset.Item
	cancel  *mining.Canceller // nil when mining without a context
}

func (m *ctx) emit(prefix []dataset.Item, support int) {
	m.sink.Emit(m.flist.DecodeInto(m.decoded, prefix), support)
}

// growth mines one compressed (conditional) tree.
func (m *ctx) growth(tr *tree, prefix []dataset.Item) {
	// Cooperative cancellation, one cheap check per conditional tree.
	if m.cancel.Check() != nil {
		return
	}
	// Lemma 3.1 shortcut: the whole tree is one group-head node with no
	// outlying subtree — enumerate combinations of the group pattern.
	if g, count := tr.loneGroup(); g >= 0 {
		m.enumerate(tr.groups[g], count, prefix)
		return
	}
	// Classic single-path shortcut when no specials are involved.
	if items, counts := tr.singleRealPath(); items != nil {
		m.enumeratePath(items, counts, prefix)
		return
	}

	prefix = append(prefix, 0)
	condCounts := make([]int, tr.nItems)
	var pbuf, tbuf []dataset.Item
	var giMap []int32
	for r := 0; r < tr.nItems; r++ {
		if tr.counts[r] < m.min {
			continue
		}
		if m.cancel.Check() != nil {
			return
		}
		it := dataset.Item(r)
		prefix[len(prefix)-1] = it
		m.emit(prefix, tr.counts[r])

		// Pass A: support counts over the conditional pattern base, drawn
		// from the item's physical nodes and from the groups whose pattern
		// contains it.
		for i := range condCounts {
			condCounts[i] = 0
		}
		for n := tr.heads[it]; n != nil; n = n.next {
			for p := n.parent; p != nil; p = p.parent {
				if p.group >= 0 {
					for _, bi := range restrict(tr.groups[p.group], it) {
						condCounts[bi] += n.count
					}
					break // group heads sit directly below the root
				}
				if p.item >= 0 {
					condCounts[p.item] += n.count
				}
			}
		}
		for _, gi := range tr.groupsWith(it) {
			rest := restrict(tr.groups[gi], it)
			for _, pe := range tr.paths(gi) {
				for _, bi := range rest {
					condCounts[bi] += pe.count
				}
				for _, bi := range restrict(pe.items, it) {
					condCounts[bi] += pe.count
				}
			}
		}
		any := false
		for _, c := range condCounts {
			if c >= m.min {
				any = true
				break
			}
		}
		if !any {
			continue
		}

		// Pass B: build the conditional compressed tree from the same two
		// sources, keeping only locally frequent items. The restriction of
		// a group pattern becomes a group of the conditional tree.
		cond := newTree(tr.nItems)
		// All inserts sharing a source group yield the same restricted,
		// filtered pattern, so the conditional group index is memoized per
		// source group — no pattern hashing on the hot path.
		if cap(giMap) < len(tr.groups) {
			giMap = make([]int32, len(tr.groups))
		}
		giMap = giMap[:len(tr.groups)]
		for i := range giMap {
			giMap[i] = -2 // not computed
		}
		condGroup := func(srcGi int32) int32 {
			if g := giMap[srcGi]; g != -2 {
				return g
			}
			pbuf = pbuf[:0]
			for _, bi := range restrict(tr.groups[srcGi], it) {
				if condCounts[bi] >= m.min {
					pbuf = append(pbuf, bi)
				}
			}
			g := int32(-1)
			if len(pbuf) > 0 {
				g = cond.addGroup(append([]dataset.Item(nil), pbuf...))
			}
			giMap[srcGi] = g
			return g
		}
		insert := func(srcGi int32, tail []dataset.Item, count int) {
			gi := int32(-1)
			if srcGi >= 0 {
				gi = condGroup(srcGi)
			}
			tbuf = tbuf[:0]
			for _, bi := range tail {
				if condCounts[bi] >= m.min {
					tbuf = append(tbuf, bi)
				}
			}
			if gi >= 0 || len(tbuf) > 0 {
				cond.insert(gi, tbuf, count)
			}
		}
		var walkTail []dataset.Item
		for n := tr.heads[it]; n != nil; n = n.next {
			walkTail = walkTail[:0]
			srcGi := int32(-1)
			for p := n.parent; p != nil; p = p.parent {
				if p.group >= 0 {
					srcGi = p.group
					break
				}
				if p.item >= 0 {
					walkTail = append(walkTail, p.item)
				}
			}
			if len(walkTail) > 0 || srcGi >= 0 {
				// Climbing yields ascending rank, as insert expects.
				insert(srcGi, walkTail, n.count)
			}
		}
		for _, gi := range tr.groupsWith(it) {
			for _, pe := range tr.paths(gi) {
				tail := restrict(pe.items, it)
				if len(tail) > 0 || len(tr.groups[gi]) > 0 {
					insert(gi, tail, pe.count)
				}
			}
		}
		if len(cond.root.children) > 0 {
			m.growth(cond, prefix)
		}
	}
}

// collectSubtree walks the subtree below g, invoking fn for every node with
// a positive residual count (node count minus its children's counts): the
// tuples that end at that node. path accumulates real items from g downward
// and is ascending by construction? No — descending rank going down; fn
// receives it unsorted and callers sort/filter as needed.
func collectSubtree(g *node, path []dataset.Item, fn func(path []dataset.Item, count int)) {
	residual := g.count
	for _, child := range g.children {
		residual -= child.count
	}
	if residual > 0 {
		fn(path, residual)
	}
	for _, child := range g.children {
		collectSubtree(child, append(path, child.item), fn)
	}
}

// restrict returns the items of sorted pattern strictly greater than it.
func restrict(pattern []dataset.Item, it dataset.Item) []dataset.Item {
	lo, hi := 0, len(pattern)
	for lo < hi {
		mid := (lo + hi) / 2
		if pattern[mid] <= it {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return pattern[lo:]
}

// loneGroup reports whether the tree is exactly one group-head node with no
// children, returning its group index and count (else -1, 0).
func (tr *tree) loneGroup() (int32, int) {
	if len(tr.root.children) != 1 {
		return -1, 0
	}
	for _, child := range tr.root.children {
		if child.group >= 0 && len(child.children) == 0 {
			return child.group, child.count
		}
	}
	return -1, 0
}

// singleRealPath returns the unique root-to-leaf path when the tree is one
// branch of real nodes only (root-first, descending rank), else nil.
func (tr *tree) singleRealPath() ([]dataset.Item, []int) {
	var items []dataset.Item
	var counts []int
	cur := tr.root
	for {
		if len(cur.children) == 0 {
			return items, counts
		}
		if len(cur.children) > 1 {
			return nil, nil
		}
		for _, child := range cur.children {
			cur = child
		}
		if cur.group >= 0 {
			return nil, nil
		}
		items = append(items, cur.item)
		counts = append(counts, cur.count)
	}
}

// enumerate emits every non-empty combination of items at the given support.
func (m *ctx) enumerate(items []dataset.Item, support int, prefix []dataset.Item) {
	n := len(items)
	if n > 62 {
		panic("rpfptree: group enumeration over more than 62 items")
	}
	base := len(prefix)
	buf := append([]dataset.Item(nil), prefix...)
	for mask := uint64(1); mask < 1<<uint(n); mask++ {
		// The enumeration can cover up to 2^62 patterns, so it must honor
		// cancellation like the recursion proper.
		if m.cancel.Check() != nil {
			return
		}
		buf = buf[:base]
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				buf = append(buf, items[i])
			}
		}
		m.emit(buf, support)
	}
}

// enumeratePath is the classic single-path shortcut: combinations of path
// items, supported by the deepest selected node's count.
func (m *ctx) enumeratePath(items []dataset.Item, counts []int, prefix []dataset.Item) {
	n := len(items)
	if n == 0 {
		return
	}
	if n > 62 {
		panic("rpfptree: single path longer than 62 items")
	}
	base := len(prefix)
	buf := append([]dataset.Item(nil), prefix...)
	for mask := uint64(1); mask < 1<<uint(n); mask++ {
		if m.cancel.Check() != nil {
			return
		}
		buf = buf[:base]
		sup := 0
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				buf = append(buf, items[i])
				sup = counts[i]
			}
		}
		if sup >= m.min {
			m.emit(buf, sup)
		}
	}
}
