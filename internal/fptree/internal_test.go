package fptree

import (
	"testing"

	"gogreen/internal/dataset"
)

// TestTreeInsertSharing: identical prefixes share nodes, counts accumulate.
func TestTreeInsertSharing(t *testing.T) {
	tr := NewTree(5)
	// Insert expects ascending rank; paths are walked most-frequent-first
	// (descending), so {1,3} and {2,3} share the node for rank 3.
	tr.Insert([]dataset.Item{1, 3}, 1)
	tr.Insert([]dataset.Item{2, 3}, 1)
	tr.Insert([]dataset.Item{1, 3}, 2)

	if tr.counts[3] != 4 {
		t.Errorf("counts[3] = %d, want 4", tr.counts[3])
	}
	if tr.counts[1] != 3 || tr.counts[2] != 1 {
		t.Errorf("counts[1]=%d counts[2]=%d", tr.counts[1], tr.counts[2])
	}
	// Root has a single child (rank 3), which has two children (1 and 2).
	if len(tr.root.children) != 1 {
		t.Fatalf("root children = %d, want 1", len(tr.root.children))
	}
	for _, top := range tr.root.children {
		if top.item != 3 || top.count != 4 {
			t.Errorf("top node = item %d count %d", top.item, top.count)
		}
		if len(top.children) != 2 {
			t.Errorf("top children = %d, want 2", len(top.children))
		}
	}
}

// TestSinglePathDetection: one branch is a single path, a fork is not.
func TestSinglePathDetection(t *testing.T) {
	tr := NewTree(4)
	tr.Insert([]dataset.Item{0, 1, 2}, 3)
	items, counts := tr.singlePath()
	if len(items) != 3 || len(counts) != 3 {
		t.Fatalf("singlePath = %v %v", items, counts)
	}
	// Root-first means descending rank: 2, 1, 0.
	if items[0] != 2 || items[2] != 0 {
		t.Errorf("path order = %v", items)
	}

	tr.Insert([]dataset.Item{0, 3}, 1)
	if items, _ := tr.singlePath(); items != nil {
		t.Errorf("fork still detected as single path: %v", items)
	}
}

// TestHeaderChains: same-item nodes are linked through next.
func TestHeaderChains(t *testing.T) {
	tr := NewTree(4)
	tr.Insert([]dataset.Item{0, 2}, 1)
	tr.Insert([]dataset.Item{1, 2}, 1)
	tr.Insert([]dataset.Item{0, 3}, 1)

	n := 0
	for node := tr.heads[0]; node != nil; node = node.next {
		n++
	}
	if n != 2 {
		t.Errorf("item 0 chain length = %d, want 2 (two distinct parents)", n)
	}
	if tr.heads[2] == nil || tr.heads[2].next != nil {
		t.Error("item 2 should have exactly one node")
	}
}
