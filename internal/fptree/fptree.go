// Package fptree implements FP-growth (Han, Pei, Yin, SIGMOD'00 — reference
// [10] of the paper): frequent-pattern mining without candidate generation
// over a compact prefix tree (the FP-tree), mined by recursive construction
// of conditional FP-trees, with the single-path shortcut.
//
// This is the non-recycling baseline for figures 10, 13, 16, 19, and the base
// algorithm adapted to compressed databases in internal/rpfptree.
package fptree

import (
	"gogreen/internal/dataset"
	"gogreen/internal/mining"
)

// Miner is the FP-growth frequent-pattern miner.
type Miner struct{}

// New returns an FP-growth miner.
func New() *Miner { return &Miner{} }

// Name implements mining.Miner.
func (*Miner) Name() string { return "fptree" }

// node is one FP-tree node. Items are stored in rank space; within a branch,
// parents have strictly higher rank (higher support) than children, i.e.
// transactions are inserted most-frequent-first as in the original paper.
type node struct {
	item     dataset.Item
	count    int
	parent   *node
	children map[dataset.Item]*node
	next     *node // header chain of nodes carrying the same item
}

// Tree is an FP-tree plus its header table, exported for reuse by the
// recycling adaptation.
type Tree struct {
	root   *node
	heads  []*node // header chains indexed by rank-space item
	counts []int   // per-item support within this (conditional) tree
	nItems int
}

// NewTree returns an empty tree over a rank space of n items.
func NewTree(n int) *Tree {
	return &Tree{
		root:   &node{item: -1, children: map[dataset.Item]*node{}},
		heads:  make([]*node, n),
		counts: make([]int, n),
		nItems: n,
	}
}

// Insert adds a transaction (rank-encoded, ascending) with the given count.
// Items are walked in descending rank order so the most frequent items sit
// near the root, maximizing prefix sharing.
func (tr *Tree) Insert(t []dataset.Item, count int) {
	cur := tr.root
	for i := len(t) - 1; i >= 0; i-- {
		it := t[i]
		tr.counts[it] += count
		child := cur.children[it]
		if child == nil {
			child = &node{item: it, children: map[dataset.Item]*node{}, parent: cur}
			child.next = tr.heads[it]
			tr.heads[it] = child
			cur.children[it] = child
		}
		child.count += count
		cur = child
	}
}

// singlePath returns the unique root-to-leaf path when the tree has exactly
// one branch, else nil. The returned items are ordered descending rank
// (root-first) with their node counts.
func (tr *Tree) singlePath() ([]dataset.Item, []int) {
	var items []dataset.Item
	var counts []int
	cur := tr.root
	for {
		if len(cur.children) == 0 {
			return items, counts
		}
		if len(cur.children) > 1 {
			return nil, nil
		}
		for _, child := range cur.children {
			cur = child
		}
		items = append(items, cur.item)
		counts = append(counts, cur.count)
	}
}

// Mine implements mining.Miner.
func (*Miner) Mine(db *dataset.DB, minCount int, sink mining.Sink) error {
	if minCount < 1 {
		return mining.ErrBadMinSupport
	}
	flist := mining.BuildFList(db, minCount)
	if flist.Len() == 0 {
		return nil
	}
	tree := NewTree(flist.Len())
	for _, t := range db.All() {
		enc := flist.Encode(t)
		if len(enc) > 0 {
			tree.Insert(enc, 1)
		}
	}
	m := &ctx{flist: flist, min: minCount, sink: sink, decoded: make([]dataset.Item, flist.Len())}
	m.growth(tree, nil)
	return nil
}

type ctx struct {
	flist   *mining.FList
	min     int
	sink    mining.Sink
	decoded []dataset.Item
}

func (m *ctx) emit(prefix []dataset.Item, support int) {
	m.sink.Emit(m.flist.DecodeInto(m.decoded, prefix), support)
}

// growth mines one (conditional) FP-tree.
func (m *ctx) growth(tr *Tree, prefix []dataset.Item) {
	// Single-path shortcut: all combinations of path items, each supported
	// by the count of its deepest member.
	if items, counts := tr.singlePath(); items != nil {
		m.enumeratePath(items, counts, prefix)
		return
	}
	prefix = append(prefix, 0)
	// Walk header items in ascending rank (= ascending support): leaf-most
	// items first, as in the original algorithm.
	for r := 0; r < tr.nItems; r++ {
		if tr.counts[r] < m.min || tr.heads[r] == nil {
			continue
		}
		it := dataset.Item(r)
		prefix[len(prefix)-1] = it
		m.emit(prefix, tr.counts[r])

		// Conditional pattern base: for each node carrying it, its path to
		// the root with the node's count. Two passes: first count item
		// supports within the base, then insert paths filtered to the
		// locally frequent items.
		condCounts := make([]int, tr.nItems)
		for n := tr.heads[r]; n != nil; n = n.next {
			for p := n.parent; p != nil && p.item >= 0; p = p.parent {
				condCounts[p.item] += n.count
			}
		}
		any := false
		for _, c := range condCounts {
			if c >= m.min {
				any = true
				break
			}
		}
		if !any {
			continue
		}
		cond := NewTree(tr.nItems)
		var path []dataset.Item
		for n := tr.heads[r]; n != nil; n = n.next {
			path = path[:0]
			// Walking parent pointers yields ascending rank order, which is
			// what Insert expects.
			for p := n.parent; p != nil && p.item >= 0; p = p.parent {
				if condCounts[p.item] >= m.min {
					path = append(path, p.item)
				}
			}
			if len(path) > 0 {
				cond.Insert(path, n.count)
			}
		}
		m.growth(cond, prefix)
	}
}

// enumeratePath emits every non-empty combination of the single path's
// items appended to prefix. items are root-first (descending rank), counts
// are the node counts; a combination's support is the count of its
// deepest-selected node.
func (m *ctx) enumeratePath(items []dataset.Item, counts []int, prefix []dataset.Item) {
	n := len(items)
	if n == 0 {
		return
	}
	if n > 62 {
		// Combinatorially impossible to enumerate; also cannot occur with
		// realistic minimum supports. Guard against shift overflow.
		panic("fptree: single path longer than 62 items")
	}
	base := len(prefix)
	buf := append([]dataset.Item(nil), prefix...)
	for mask := 1; mask < 1<<n; mask++ {
		buf = buf[:base]
		sup := 0
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				buf = append(buf, items[i])
				sup = counts[i] // deepest selected node's count
			}
		}
		if sup >= m.min {
			m.emit(buf, sup)
		}
	}
}
