package convertible_test

import (
	"math/rand"
	"testing"

	"gogreen/internal/constraints"
	"gogreen/internal/convertible"
	"gogreen/internal/dataset"
	"gogreen/internal/mining"
	"gogreen/internal/testutil"
)

// TestMatchesPostFilter: pushing the constraint must produce exactly the
// post-filtered complete set, across random databases, values and bounds.
func TestMatchesPostFilter(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for rep := 0; rep < 20; rep++ {
		db := testutil.RandomDB(r, 30+r.Intn(80), 5+r.Intn(12), 1+r.Intn(9))
		values := make([]float64, 40)
		for i := range values {
			values[i] = float64(r.Intn(12))
		}
		for _, bound := range []float64{0, 2, 4.5, 7, 100} {
			for _, min := range []int{2, 4} {
				cons := constraints.AvgGeq{Values: values, Bound: bound}
				var col mining.Collector
				if err := (convertible.Miner{Constraint: cons}).Mine(db, min, &col); err != nil {
					t.Fatal(err)
				}
				got, err := col.Set()
				if err != nil {
					t.Fatal(err)
				}
				want := mining.PatternSet{}
				for k, p := range testutil.Oracle(t, db, min) {
					if cons.Satisfied(p.Items, p.Support) {
						want[k] = p
					}
				}
				if !got.Equal(want) {
					t.Fatalf("rep %d bound=%g min=%d:\n%v", rep, bound, min, got.Diff(want, 10))
				}
			}
		}
	}
}

// TestPruningActuallyPrunes: with an unreachable bound nothing is emitted
// and nothing breaks.
func TestPruningActuallyPrunes(t *testing.T) {
	db := testutil.PaperDB()
	values := make([]float64, 10)
	cons := constraints.AvgGeq{Values: values, Bound: 1} // all values 0
	var col mining.Collector
	if err := (convertible.Miner{Constraint: cons}).Mine(db, 1, &col); err != nil {
		t.Fatal(err)
	}
	if len(col.Patterns) != 0 {
		t.Fatalf("emitted %d patterns under an unsatisfiable bound", len(col.Patterns))
	}
}

// TestZeroBoundEqualsPlainMining: bound 0 admits everything.
func TestZeroBoundEqualsPlainMining(t *testing.T) {
	db := testutil.PaperDB()
	values := make([]float64, 10)
	for i := range values {
		values[i] = float64(i)
	}
	cons := constraints.AvgGeq{Values: values, Bound: 0}
	var col mining.Collector
	if err := (convertible.Miner{Constraint: cons}).Mine(db, 2, &col); err != nil {
		t.Fatal(err)
	}
	got, err := col.Set()
	if err != nil {
		t.Fatal(err)
	}
	if want := testutil.Oracle(t, db, 2); !got.Equal(want) {
		t.Fatalf("bound 0:\n%v", got.Diff(want, 10))
	}
}

func TestBadMinSupport(t *testing.T) {
	m := convertible.Miner{Constraint: constraints.AvgGeq{Bound: 1}}
	err := m.Mine(dataset.New(nil), 0, mining.SinkFunc(func([]dataset.Item, int) {}))
	if err != mining.ErrBadMinSupport {
		t.Errorf("got %v", err)
	}
}

// TestMissingValuesTreatedAsZero: items beyond the values slice value 0.
func TestMissingValuesTreatedAsZero(t *testing.T) {
	db := dataset.New([][]dataset.Item{{0, 50}, {0, 50}, {0}})
	cons := constraints.AvgGeq{Values: []float64{4}, Bound: 3}
	var col mining.Collector
	if err := (convertible.Miner{Constraint: cons}).Mine(db, 2, &col); err != nil {
		t.Fatal(err)
	}
	got, _ := col.Set()
	// {0} has avg 4 >= 3; {50} has avg 0; {0,50} has avg 2.
	if len(got) != 1 {
		t.Fatalf("got %v", got.Slice())
	}
	if _, ok := got[mining.Key([]dataset.Item{0})]; !ok {
		t.Fatalf("missing {0}: %v", got.Slice())
	}
}
