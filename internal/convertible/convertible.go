// Package convertible pushes convertible constraints into frequent-pattern
// mining (Pei, Han, Lakshmanan: "Mining frequent itemsets with convertible
// constraints", ICDE'01 — reference [14] of the paper).
//
// A convertible constraint like avg(value(X)) >= v is neither monotone nor
// anti-monotone, so the generic wrapper in internal/constraints can only
// post-filter it. Under the right *item order*, however, it becomes
// anti-monotone with respect to prefix extension: enumerate items by
// descending value and every extension of a prefix appends values no larger
// than any already present, so the running average never increases. When a
// prefix's average drops below the bound, its entire subtree is pruned.
//
// The miner here is a depth-first projected-database miner (the same family
// as the rest of the module) whose item order is the constraint's value
// order instead of the F-list; it prunes with both the support threshold
// and the converted constraint. Output equals post-filtering the complete
// frequent set — the point is to do less work getting there — and the
// package's tests verify exactly that equivalence.
package convertible

import (
	"sort"

	"gogreen/internal/constraints"
	"gogreen/internal/dataset"
	"gogreen/internal/mining"
)

// Miner mines all frequent patterns satisfying an AvgGeq constraint, with
// the constraint pushed into the search.
type Miner struct {
	// Constraint is the convertible constraint to push.
	Constraint constraints.AvgGeq
}

// Name implements mining.Miner.
func (Miner) Name() string { return "convertible-avg" }

// Mine implements mining.Miner: emits exactly the frequent patterns with
// avg value >= the bound.
func (m Miner) Mine(db *dataset.DB, minCount int, sink mining.Sink) error {
	if minCount < 1 {
		return mining.ErrBadMinSupport
	}
	counts := db.ItemCounts()

	// Candidate items: frequent AND individually able to start a
	// satisfying prefix. Because the enumeration appends non-increasing
	// values, a prefix can only satisfy avg >= bound if its FIRST item has
	// value >= bound.
	value := func(it dataset.Item) float64 {
		if int(it) < len(m.Constraint.Values) {
			return m.Constraint.Values[it]
		}
		return 0
	}
	var items []dataset.Item
	for id, c := range counts {
		if c >= minCount {
			items = append(items, dataset.Item(id))
		}
	}
	// Value-descending order (ties by id for determinism) — the conversion
	// order that makes AvgGeq anti-monotone over prefixes.
	sort.Slice(items, func(i, j int) bool {
		vi, vj := value(items[i]), value(items[j])
		if vi != vj {
			return vi > vj
		}
		return items[i] < items[j]
	})

	// Re-encode transactions in rank space of this order.
	rank := make(map[dataset.Item]int, len(items))
	for r, it := range items {
		rank[it] = r
	}
	tx := make([][]dataset.Item, 0, db.Len())
	for _, t := range db.All() {
		enc := make([]dataset.Item, 0, len(t))
		for _, it := range t {
			if r, ok := rank[it]; ok {
				enc = append(enc, dataset.Item(r))
			}
		}
		if len(enc) > 0 {
			sort.Slice(enc, func(i, j int) bool { return enc[i] < enc[j] })
			tx = append(tx, enc)
		}
	}

	c := &ctx{
		items: items,
		vals:  make([]float64, len(items)),
		min:   minCount,
		bound: m.Constraint.Bound,
		sink:  sink,
		dec:   make([]dataset.Item, len(items)),
	}
	for r, it := range items {
		c.vals[r] = value(it)
	}
	c.mine(tx, nil, 0)
	return nil
}

type ctx struct {
	items []dataset.Item
	vals  []float64 // value per rank
	min   int
	bound float64
	sink  mining.Sink
	dec   []dataset.Item
}

// mine explores extensions of prefix (ranks, ascending = descending value)
// over the projected transactions, carrying the prefix's value sum.
func (c *ctx) mine(tx [][]dataset.Item, prefix []dataset.Item, sum float64) {
	counts := map[dataset.Item]int{}
	for _, t := range tx {
		for _, r := range t {
			counts[r]++
		}
	}
	var exts []dataset.Item
	for r, n := range counts {
		if n >= c.min {
			exts = append(exts, r)
		}
	}
	sort.Slice(exts, func(i, j int) bool { return exts[i] < exts[j] })

	prefix = append(prefix, 0)
	for _, r := range exts {
		// Converted anti-monotonicity: extending with r (and anything after
		// r) keeps values <= vals[r], so if the average including r is
		// below the bound, so is every deeper pattern — prune the subtree.
		newSum := sum + c.vals[r]
		newLen := len(prefix)
		if newSum/float64(newLen) < c.bound {
			// All later exts have still smaller values: their averages are
			// no better. The whole remaining loop is prunable.
			break
		}
		prefix[newLen-1] = r
		c.emit(prefix, counts[r])

		var proj [][]dataset.Item
		for _, t := range tx {
			for i, it := range t {
				if it == r {
					if i+1 < len(t) {
						proj = append(proj, t[i+1:])
					}
					break
				}
				if it > r {
					break
				}
			}
		}
		if len(proj) > 0 {
			c.mine(proj, prefix, newSum)
		}
	}
}

func (c *ctx) emit(prefix []dataset.Item, support int) {
	out := c.dec[:len(prefix)]
	for i, r := range prefix {
		out[i] = c.items[r]
	}
	c.sink.Emit(out, support)
}
