package shard

import (
	"fmt"
	"sync"
	"time"
)

// Quotas bounds what one tenant may hold across the whole service (quotas
// are per tenant, not per shard: a tenant's databases hash onto many shards,
// but its budget is one number). A zero field means unlimited; the zero
// Quotas admits everything, which keeps single-user deployments
// byte-compatible with the pre-quota service.
type Quotas struct {
	// MaxDBs caps the databases a tenant may have resident at once.
	MaxDBs int
	// MaxQueuedJobs caps a tenant's async mining jobs that are queued or
	// running at once — the per-tenant slice of the shared worker pools, so
	// one tenant's backlog cannot occupy every queue slot.
	MaxQueuedJobs int
	// MaxPatternBytes caps the metered bytes of a tenant's saved pattern
	// sets (memlimit.EstimatePatternBytes — the same cost model as the
	// lattice budget and memory-limited mining).
	MaxPatternBytes int64
}

// Quota resources, used in QuotaError.Resource and rejection metric names.
const (
	ResourceDBs          = "dbs"
	ResourceJobs         = "jobs"
	ResourcePatternBytes = "pattern_bytes"
)

// QuotaError reports an admission rejection. Surfaces map it to HTTP 429
// with a Retry-After header: quota headroom is a resource that frees over
// time (jobs finish, databases get deleted), so a 429 here is "come back",
// not "goodbye".
type QuotaError struct {
	// Tenant is the rejected tenant id.
	Tenant string
	// Resource names the exhausted quota: ResourceDBs, ResourceJobs, or
	// ResourcePatternBytes.
	Resource string
	// Limit and Used are the configured bound and the tenant's usage at
	// rejection time.
	Limit, Used int64
	// RetryAfter is the suggested client backoff. Job slots turn over in
	// seconds; databases and saved bytes free only when the tenant deletes
	// something, so those hint a longer pause.
	RetryAfter time.Duration
}

// Error implements error.
func (e *QuotaError) Error() string {
	return fmt.Sprintf("tenant %q over %s quota (%d of %d used)", e.Tenant, e.Resource, e.Used, e.Limit)
}

// Usage is a tenant's current accounted consumption.
type Usage struct {
	DBs          int   `json:"dbs"`
	QueuedJobs   int   `json:"queued_jobs"`
	PatternBytes int64 `json:"pattern_bytes"`
}

// zero reports whether the tenant holds nothing — its record can be dropped.
func (u Usage) zero() bool { return u.DBs == 0 && u.QueuedJobs == 0 && u.PatternBytes <= 0 }

// Governor is the per-tenant admission controller: it accounts usage and
// rejects acquisitions that would exceed the configured Quotas. It is pure
// bookkeeping under one small mutex — acquisitions are O(1) map operations,
// never held across mining or IO — and tenants whose usage returns to zero
// are forgotten, so the table tracks active tenants, not historical ones.
//
// A nil *Governor admits everything, so surfaces can thread it through
// unconditionally.
type Governor struct {
	quotas Quotas

	mu      sync.Mutex
	tenants map[string]*Usage
}

// NewGovernor returns a governor enforcing q.
func NewGovernor(q Quotas) *Governor {
	return &Governor{quotas: q, tenants: map[string]*Usage{}}
}

// Quotas returns the configured limits.
func (g *Governor) Quotas() Quotas {
	if g == nil {
		return Quotas{}
	}
	return g.quotas
}

// usageLocked returns tenant's record, creating it on first touch.
func (g *Governor) usageLocked(tenant string) *Usage {
	u, ok := g.tenants[tenant]
	if !ok {
		u = &Usage{}
		g.tenants[tenant] = u
	}
	return u
}

// pruneLocked drops tenant's record when it holds nothing.
func (g *Governor) pruneLocked(tenant string) {
	if u, ok := g.tenants[tenant]; ok && u.zero() {
		delete(g.tenants, tenant)
	}
}

// AcquireDB admits one new database for tenant, or returns a *QuotaError.
func (g *Governor) AcquireDB(tenant string) error {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	u := g.usageLocked(tenant)
	if max := g.quotas.MaxDBs; max > 0 && u.DBs >= max {
		g.pruneLocked(tenant)
		return &QuotaError{Tenant: tenant, Resource: ResourceDBs,
			Limit: int64(max), Used: int64(u.DBs), RetryAfter: 30 * time.Second}
	}
	u.DBs++
	return nil
}

// ReleaseDB returns one database slot.
func (g *Governor) ReleaseDB(tenant string) {
	if g == nil {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if u, ok := g.tenants[tenant]; ok && u.DBs > 0 {
		u.DBs--
		g.pruneLocked(tenant)
	}
}

// AcquireJob admits one queued-or-running async job for tenant, or returns
// a *QuotaError.
func (g *Governor) AcquireJob(tenant string) error {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	u := g.usageLocked(tenant)
	if max := g.quotas.MaxQueuedJobs; max > 0 && u.QueuedJobs >= max {
		g.pruneLocked(tenant)
		return &QuotaError{Tenant: tenant, Resource: ResourceJobs,
			Limit: int64(max), Used: int64(u.QueuedJobs), RetryAfter: time.Second}
	}
	u.QueuedJobs++
	return nil
}

// ReleaseJob returns one job slot (the job reached a terminal state).
func (g *Governor) ReleaseJob(tenant string) {
	if g == nil {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if u, ok := g.tenants[tenant]; ok && u.QueuedJobs > 0 {
		u.QueuedJobs--
		g.pruneLocked(tenant)
	}
}

// CheckPatternBytes is the admission gate for requests that will save
// patterns: it rejects when tenant's accounted bytes already meet the quota.
// Admission is at the door, accounting at the save — a request admitted
// under the limit may still finish above it (its set's size is unknown until
// mined), which is the standard high-water-mark discipline: the next save
// request is then rejected until the tenant frees something.
func (g *Governor) CheckPatternBytes(tenant string) error {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	max := g.quotas.MaxPatternBytes
	if max <= 0 {
		return nil
	}
	u := g.usageLocked(tenant)
	defer g.pruneLocked(tenant)
	if u.PatternBytes >= max {
		return &QuotaError{Tenant: tenant, Resource: ResourcePatternBytes,
			Limit: max, Used: u.PatternBytes, RetryAfter: 30 * time.Second}
	}
	return nil
}

// AddPatternBytes moves tenant's accounted saved-pattern bytes by n (negative
// when sets are deleted or replaced).
func (g *Governor) AddPatternBytes(tenant string, n int64) {
	if g == nil || n == 0 {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	u := g.usageLocked(tenant)
	u.PatternBytes += n
	if u.PatternBytes < 0 {
		u.PatternBytes = 0
	}
	g.pruneLocked(tenant)
}

// Restore credits tenant with usage recovered from durable storage at boot,
// bypassing admission: state that already exists on disk is never rejected,
// even when a quota was lowered between restarts (the tenant is simply over
// quota until they free something — the same high-water-mark discipline as
// AddPatternBytes).
func (g *Governor) Restore(tenant string, dbs int, patternBytes int64) {
	if g == nil || (dbs == 0 && patternBytes == 0) {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	u := g.usageLocked(tenant)
	u.DBs += dbs
	u.PatternBytes += patternBytes
	if u.PatternBytes < 0 {
		u.PatternBytes = 0
	}
	g.pruneLocked(tenant)
}

// Usage returns tenant's current accounted consumption.
func (g *Governor) Usage(tenant string) Usage {
	if g == nil {
		return Usage{}
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if u, ok := g.tenants[tenant]; ok {
		return *u
	}
	return Usage{}
}

// Tenants returns the number of tenants with non-zero usage.
func (g *Governor) Tenants() int {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.tenants)
}
