package shard

import (
	"fmt"
	"testing"
)

// keys returns n synthetic database ids shaped like the service's.
func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("t%05d", i)
	}
	return out
}

// TestOwnerDeterministic proves routing is a pure function of (N, id): two
// independently built rings agree on every key, which is what "same db id
// routes to the same shard across restarts" means — there is no state to
// lose.
func TestOwnerDeterministic(t *testing.T) {
	a, b := New(8), New(8)
	for _, k := range keys(2000) {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("rings disagree on %q: %d vs %d", k, a.Owner(k), b.Owner(k))
		}
	}
}

// TestOwnerGolden pins concrete assignments. The ring hash is FNV-1a over
// stable labels, so these values must never change: a silent change would
// re-home every tenant's databases on the next deploy. If this test fails,
// the hash or label scheme changed — that is a breaking migration, not a
// refactor.
func TestOwnerGolden(t *testing.T) {
	r := New(4)
	want := map[string]int{
		"weather":  r.Owner("weather"),
		"connect4": r.Owner("connect4"),
	}
	// Self-consistency now; cross-restart stability is the real assertion:
	// rebuilt rings and repeated calls return identical owners.
	for i := 0; i < 3; i++ {
		fresh := New(4)
		for k, w := range want {
			if got := fresh.Owner(k); got != w {
				t.Fatalf("Owner(%q) drifted: %d then %d", k, w, got)
			}
		}
	}
	// And the golden values themselves, computed once and frozen here.
	golden := map[string]struct{ n, owner int }{
		"weather":  {4, 3},
		"connect4": {4, 1},
		"t00000":   {4, 2},
		"t00001":   {4, 0},
		"weather2": {8, 7},
	}
	for k, g := range golden {
		if got := New(g.n).Owner(k); got != g.owner {
			t.Errorf("golden Owner(%q) with %d shards = %d, want %d (hash scheme changed!)", k, g.n, got, g.owner)
		}
	}
}

// TestOwnerBalance proves virtual nodes spread keys acceptably: with 8
// shards and 20k Zipf-free uniform ids, every shard holds between half and
// twice its fair share.
func TestOwnerBalance(t *testing.T) {
	const n, nkeys = 8, 20000
	r := New(n)
	counts := make([]int, n)
	for _, k := range keys(nkeys) {
		counts[r.Owner(k)]++
	}
	fair := nkeys / n
	for s, c := range counts {
		if c < fair/2 || c > fair*2 {
			t.Errorf("shard %d owns %d keys, want within [%d, %d] of fair share %d",
				s, c, fair/2, fair*2, fair)
		}
	}
}

// TestRebalanceMinimal proves the consistent-hashing contract when the shard
// count grows from N to N+1: only a ≈1/(N+1) fraction of keys moves, and
// every moved key moves to the new shard — surviving shards never trade keys
// among themselves.
func TestRebalanceMinimal(t *testing.T) {
	const nkeys = 20000
	old, grown := New(4), New(5)
	moved := 0
	for _, k := range keys(nkeys) {
		a, b := old.Owner(k), grown.Owner(k)
		if a == b {
			continue
		}
		moved++
		if b != 4 {
			t.Fatalf("key %q moved %d -> %d; moves must target only the new shard 4", k, a, b)
		}
	}
	// Expect ≈ nkeys/5 = 4000; allow generous slack for hash variance but
	// fail hard on mod-N-style reshuffles (which move ~4/5 of keys).
	if moved < nkeys/10 || moved > nkeys/2 {
		t.Errorf("grow 4->5 moved %d of %d keys, want ≈ %d (consistent-hashing bound)",
			moved, nkeys, nkeys/5)
	}
}

// TestSingleShardFastPath proves N=1 routes everything to shard 0.
func TestSingleShardFastPath(t *testing.T) {
	r := New(1)
	for _, k := range keys(100) {
		if r.Owner(k) != 0 {
			t.Fatalf("Owner(%q) = %d with one shard", k, r.Owner(k))
		}
	}
	if New(0).Shards() != 1 {
		t.Error("NewRing clamps n < 1 to 1")
	}
}
