package shard

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
)

// Remote is the Backend of a shard process reached over HTTP: it forwards
// routed requests verbatim (method, path, query, headers — X-Tenant
// included — and body) and copies the shard's response back unchanged, so
// the forwarding contract holds byte-for-byte: a remote quota 429 carries
// the same status, JSON error body and Retry-After header a local one would.
//
// Remote is safe for concurrent use; its http.Client keeps per-host
// connections pooled across requests.
type Remote struct {
	base   *url.URL
	client *http.Client
}

// NewRemote builds the backend for a shard process at addr ("host:port" or
// a full http:// URL).
func NewRemote(addr string) (*Remote, error) {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	u, err := url.Parse(addr)
	if err != nil {
		return nil, fmt.Errorf("shard address %q: %w", addr, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, fmt.Errorf("shard address %q: unsupported scheme %q", addr, u.Scheme)
	}
	if u.Host == "" {
		return nil, fmt.Errorf("shard address %q: missing host", addr)
	}
	u.Path = strings.TrimSuffix(u.Path, "/")
	tr := http.DefaultTransport
	if dt, ok := tr.(*http.Transport); ok {
		c := dt.Clone()
		c.MaxIdleConnsPerHost = 32
		tr = c
	}
	// No client timeout: mining requests are legitimately long-running and
	// bounded by their own contexts (the shard's -mine-timeout, the client
	// disconnecting). Probes pass their own deadline through ctx.
	return &Remote{base: u, client: &http.Client{Transport: tr}}, nil
}

// hopHeaders are connection-level headers that must not be copied between
// the shard's response and the router's (RFC 7230 §6.1).
var hopHeaders = []string{
	"Connection", "Keep-Alive", "Proxy-Authenticate", "Proxy-Authorization",
	"Te", "Trailer", "Transfer-Encoding", "Upgrade",
}

// Serve implements Backend: forward r to the shard process and copy the
// response back byte-for-byte. A transport failure before any response
// arrived returns the error with nothing written; once the shard's status
// has been committed to w, a mid-body failure can only truncate.
func (b *Remote) Serve(w http.ResponseWriter, r *http.Request) error {
	out := r.Clone(r.Context())
	out.URL.Scheme = b.base.Scheme
	out.URL.Host = b.base.Host
	out.URL.Path = b.base.Path + r.URL.Path
	out.RequestURI = "" // client requests must not set it
	out.Host = ""       // let the transport derive Host from the target URL
	for _, h := range hopHeaders {
		out.Header.Del(h)
	}
	resp, err := b.client.Do(out)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	dst := w.Header()
	for k, vv := range resp.Header {
		if isHopHeader(k) {
			continue
		}
		dst[k] = vv
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
	return nil
}

func isHopHeader(k string) bool {
	for _, h := range hopHeaders {
		if http.CanonicalHeaderKey(k) == h {
			return true
		}
	}
	return false
}

// Fetch implements Backend: GET path on the shard and decode the JSON body
// into v (nil drains and discards it). Any non-2xx status is an error.
func (b *Remote) Fetch(ctx context.Context, path string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.base.String()+path, nil)
	if err != nil {
		return err
	}
	resp, err := b.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		io.Copy(io.Discard, resp.Body)
		return fmt.Errorf("%s%s: status %d", b.Addr(), path, resp.StatusCode)
	}
	if v == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// Addr implements Backend.
func (b *Remote) Addr() string { return b.base.String() }

// Close implements Backend: drop pooled connections.
func (b *Remote) Close() error {
	b.client.CloseIdleConnections()
	return nil
}
