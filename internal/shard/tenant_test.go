package shard

import (
	"errors"
	"sync"
	"testing"
)

// TestGovernorDBQuota exercises acquire/release around the MaxDBs bound.
func TestGovernorDBQuota(t *testing.T) {
	g := NewGovernor(Quotas{MaxDBs: 2})
	if err := g.AcquireDB("a"); err != nil {
		t.Fatal(err)
	}
	if err := g.AcquireDB("a"); err != nil {
		t.Fatal(err)
	}
	err := g.AcquireDB("a")
	var qe *QuotaError
	if !errors.As(err, &qe) {
		t.Fatalf("third AcquireDB = %v, want *QuotaError", err)
	}
	if qe.Tenant != "a" || qe.Resource != ResourceDBs || qe.Limit != 2 || qe.Used != 2 {
		t.Fatalf("quota error = %+v", qe)
	}
	if qe.RetryAfter <= 0 {
		t.Fatal("quota error carries no Retry-After hint")
	}
	// Quotas are per tenant: b is unaffected by a's exhaustion.
	if err := g.AcquireDB("b"); err != nil {
		t.Fatalf("tenant b rejected by a's quota: %v", err)
	}
	// Releasing frees the slot.
	g.ReleaseDB("a")
	if err := g.AcquireDB("a"); err != nil {
		t.Fatalf("after release: %v", err)
	}
}

// TestGovernorJobQuota exercises the queued-job slice.
func TestGovernorJobQuota(t *testing.T) {
	g := NewGovernor(Quotas{MaxQueuedJobs: 1})
	if err := g.AcquireJob("a"); err != nil {
		t.Fatal(err)
	}
	var qe *QuotaError
	if err := g.AcquireJob("a"); !errors.As(err, &qe) || qe.Resource != ResourceJobs {
		t.Fatalf("second AcquireJob = %v, want jobs QuotaError", err)
	}
	g.ReleaseJob("a")
	if err := g.AcquireJob("a"); err != nil {
		t.Fatalf("after release: %v", err)
	}
}

// TestGovernorPatternBytes proves the high-water-mark discipline: admission
// rejects only once accounted bytes meet the quota, and deletions restore
// headroom.
func TestGovernorPatternBytes(t *testing.T) {
	g := NewGovernor(Quotas{MaxPatternBytes: 1000})
	if err := g.CheckPatternBytes("a"); err != nil {
		t.Fatal(err)
	}
	g.AddPatternBytes("a", 600)
	if err := g.CheckPatternBytes("a"); err != nil {
		t.Fatalf("under quota: %v", err)
	}
	g.AddPatternBytes("a", 600) // overshoot past the admission check
	var qe *QuotaError
	if err := g.CheckPatternBytes("a"); !errors.As(err, &qe) || qe.Resource != ResourcePatternBytes {
		t.Fatalf("over quota: %v, want pattern_bytes QuotaError", err)
	}
	g.AddPatternBytes("a", -1200)
	if err := g.CheckPatternBytes("a"); err != nil {
		t.Fatalf("after freeing: %v", err)
	}
}

// TestGovernorUnlimited proves zero quotas (and a nil governor) admit
// everything — the pre-quota service's behavior.
func TestGovernorUnlimited(t *testing.T) {
	g := NewGovernor(Quotas{})
	for i := 0; i < 100; i++ {
		if g.AcquireDB("a") != nil || g.AcquireJob("a") != nil || g.CheckPatternBytes("a") != nil {
			t.Fatal("zero quotas rejected an acquisition")
		}
	}
	var nilGov *Governor
	if nilGov.AcquireDB("a") != nil || nilGov.AcquireJob("a") != nil || nilGov.CheckPatternBytes("a") != nil {
		t.Fatal("nil governor rejected an acquisition")
	}
	nilGov.ReleaseDB("a")
	nilGov.ReleaseJob("a")
	nilGov.AddPatternBytes("a", 1)
}

// TestGovernorPrunesIdleTenants proves the table holds active tenants only:
// usage returning to zero drops the record, so a 10k-tenant load test does
// not leave 10k dead entries behind.
func TestGovernorPrunesIdleTenants(t *testing.T) {
	g := NewGovernor(Quotas{MaxDBs: 10})
	for i := 0; i < 50; i++ {
		tenant := string(rune('a' + i%26))
		if err := g.AcquireDB(tenant); err != nil {
			t.Fatal(err)
		}
		g.ReleaseDB(tenant)
	}
	if n := g.Tenants(); n != 0 {
		t.Fatalf("governor retains %d idle tenants, want 0", n)
	}
	g.AcquireDB("live")
	if n := g.Tenants(); n != 1 {
		t.Fatalf("governor tracks %d tenants, want 1", n)
	}
	if u := g.Usage("live"); u.DBs != 1 {
		t.Fatalf("usage = %+v", u)
	}
}

// TestGovernorConcurrent hammers one tenant from many goroutines under
// -race: the admitted count never exceeds the quota.
func TestGovernorConcurrent(t *testing.T) {
	const quota = 8
	g := NewGovernor(Quotas{MaxQueuedJobs: quota})
	var wg sync.WaitGroup
	admitted := make(chan struct{}, 1000)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				if g.AcquireJob("t") == nil {
					admitted <- struct{}{}
				}
			}
		}()
	}
	wg.Wait()
	close(admitted)
	n := 0
	for range admitted {
		n++
	}
	if n != quota {
		t.Fatalf("admitted %d jobs against quota %d", n, quota)
	}
	if u := g.Usage("t"); u.QueuedJobs != quota {
		t.Fatalf("usage = %+v", u)
	}
}
