package shard

import (
	"context"
	"net/http"
)

// Backend is the transport seam between the request router and one engine
// shard. The router owns *where* a request goes (the consistent-hash Ring)
// and *whether* the shard is reachable (health probes, drain barriers); a
// Backend owns carrying the request there. Everything behind the seam — db
// CRUD, mining, jobs, lattice inspection, metrics — is expressed as the
// shard's own HTTP surface, which is what makes the two implementations
// interchangeable: an in-process engine shard served through a direct
// handler call, and a separate shard process reached over real HTTP. The
// deployment shape is configuration, not code.
//
// Implementations must preserve the shard's response byte-for-byte: status
// code, headers (Retry-After on quota 429s in particular), and body. The
// router never rewrites a shard response — a remote 429 is indistinguishable
// from a local one.
type Backend interface {
	// Serve carries one already-routed request to the shard and writes the
	// shard's response — status, headers, body — unchanged to w. A non-nil
	// error means the shard could not be reached and nothing was written,
	// so the caller still owns the response (and typically answers 503).
	Serve(w http.ResponseWriter, r *http.Request) error

	// Fetch GETs path on the shard and JSON-decodes the response body into
	// v (nil discards the body — used by health probes). A non-2xx status
	// is an error: Fetch is the router's structured side channel for
	// aggregation (GET /db, /jobs, /shards) and /healthz probing, where
	// anything but success means "leave this shard out".
	Fetch(ctx context.Context, path string, v any) error

	// Addr identifies the backend for logs, errors and introspection —
	// "local[2]" for an in-process shard, the base URL for a remote one.
	Addr() string

	// Close releases client resources. The router closes a backend only
	// after its in-flight requests drained.
	Close() error
}
