// Package shard is the horizontal-scale substrate of the mining service: a
// consistent-hashing router that assigns every database id to one of N
// engine shards, plus per-tenant admission control (quotas on databases,
// queued jobs, and saved-pattern bytes) enforced before any shard does work.
//
// The package is deliberately free of HTTP and mining concerns — it decides
// *where* a request goes and *whether* it is admitted; internal/server owns
// what happens next. Keeping the routing function pure (shard = f(N, id),
// no state) is what makes a later multi-process deployment a configuration
// change: any process holding the same (N, id) pair computes the same owner,
// so a fronting proxy can apply the identical ring.
package shard

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultReplicas is the virtual-node count per shard on the ring. More
// replicas smooth the key distribution (each shard's arcs interleave finer);
// 128 keeps every shard within a few tens of percent of its fair share while
// the ring stays small enough to build at startup in microseconds.
const DefaultReplicas = 128

// Ring maps string keys (database ids) onto shard indices [0, N) by
// consistent hashing: each shard owns DefaultReplicas points on a 64-bit
// hash circle, and a key belongs to the shard owning the first point at or
// after the key's own hash. The mapping is a pure function of (N, key) —
// no state, no randomness — so the same key routes to the same shard across
// restarts, processes, and machines.
//
// Changing N rebalances: growing from N to N+1 shards moves only the keys
// whose nearest point now belongs to the new shard (≈ 1/(N+1) of all keys),
// and every moved key moves *to* the new shard — keys never shuffle between
// surviving shards. This is documented, tested behavior: in-process shards
// hold only derived state (caches, job queues), so a rebalance costs warm-up,
// not correctness.
//
// Ring is immutable after New and safe for concurrent use.
type Ring struct {
	n      int
	points []ringPoint // sorted ascending by hash
}

// ringPoint is one virtual node: a position on the hash circle and the shard
// owning it.
type ringPoint struct {
	hash  uint64
	shard int
}

// NewRing builds the ring for n shards (n < 1 is clamped to 1) with the
// given virtual-node count per shard (<= 0 means DefaultReplicas).
func NewRing(n, replicas int) *Ring {
	if n < 1 {
		n = 1
	}
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	r := &Ring{n: n, points: make([]ringPoint, 0, n*replicas)}
	for s := 0; s < n; s++ {
		for v := 0; v < replicas; v++ {
			r.points = append(r.points, ringPoint{hash: hashKey(fmt.Sprintf("shard-%d/%d", s, v)), shard: s})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Ties (vanishingly rare with 64-bit FNV) resolve by shard index so
		// the ring order stays deterministic.
		return r.points[i].shard < r.points[j].shard
	})
	return r
}

// New builds the ring for n shards with DefaultReplicas virtual nodes.
func New(n int) *Ring { return NewRing(n, 0) }

// Shards returns the shard count the ring routes over.
func (r *Ring) Shards() int { return r.n }

// Owner returns the shard index owning key: the shard of the first ring
// point at or clockwise-after the key's hash, wrapping at the top.
func (r *Ring) Owner(key string) int {
	if r.n == 1 {
		return 0
	}
	h := hashKey(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}

// hashKey is 64-bit FNV-1a pushed through a fixed avalanche finalizer
// (SplitMix64's). Both stages are stable across Go versions and platforms
// (unlike maphash), which is what makes ring assignments restart-stable; the
// finalizer matters because raw FNV over the ring's near-identical vnode
// labels ("shard-3/17", "shard-3/18", ...) leaves correlated low bits and
// skews shard arcs to 0.3x-2x of fair share — mixed, every shard lands
// within a few percent.
func hashKey(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return mix64(h.Sum64())
}

// mix64 is the SplitMix64 finalizer: a fixed bijection on uint64 with full
// avalanche (every input bit flips ~half the output bits).
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
