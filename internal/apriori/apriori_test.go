package apriori_test

import (
	"math/rand"
	"testing"

	"gogreen/internal/apriori"
	"gogreen/internal/dataset"
	"gogreen/internal/mining"
	"gogreen/internal/testutil"
)

// TestPaperExample checks the complete frequent-pattern set of the paper's
// Table 1 database at ξ_old = 3 (Example 1). Note: the paper's listing of
// FP omits fc:3, but fc is frequent (tuples 100, 200, 300) and is implied by
// the listed fgc:3 — the omission is a typo in the paper; the complete set
// below includes it.
func TestPaperExample(t *testing.T) {
	db := testutil.PaperDB()
	got := testutil.MineSet(t, apriori.New(), db, 3)

	want := mining.PatternSet{}
	add := func(sup int, names ...string) {
		items := testutil.Items(t, db, names...)
		want[mining.Key(items)] = mining.Pattern{Items: items, Support: sup}
	}
	add(3, "f")
	add(3, "f", "g")
	add(3, "f", "c")
	add(3, "f", "g", "c")
	add(3, "g")
	add(3, "g", "c")
	add(3, "a")
	add(3, "a", "e")
	add(4, "e")
	add(3, "e", "c")
	add(4, "c")

	if !got.Equal(want) {
		t.Fatalf("paper example mismatch:\n%v", got.Diff(want, 20))
	}
}

// TestPaperExampleXiNew2 checks the F-list and a few supports at ξ_new = 2,
// matching Section 3.1's worked values.
func TestPaperExampleXiNew2(t *testing.T) {
	db := testutil.PaperDB()
	flist := mining.BuildFList(db, 2)
	// Paper: <d:2, f:3, g:3, a:3, e:4, c:4>. Tie-breaking among equal
	// supports is implementation-defined (the paper's order differs from
	// ours), so check the support sequence and the item->support mapping
	// rather than exact positions.
	wantSupports := map[string]int{"d": 2, "f": 3, "g": 3, "a": 3, "e": 4, "c": 4}
	if flist.Len() != len(wantSupports) {
		t.Fatalf("F-list length = %d, want %d", flist.Len(), len(wantSupports))
	}
	for i := 1; i < flist.Len(); i++ {
		if flist.Support[i] < flist.Support[i-1] {
			t.Errorf("F-list not support-ascending at %d: %v", i, flist.Support)
		}
	}
	for i, it := range flist.Items {
		name := db.Dict().Name(it)
		if want, ok := wantSupports[name]; !ok || flist.Support[i] != want {
			t.Errorf("F-list[%d] = %q sup %d, want sup %d", i, name, flist.Support[i], wantSupports[name])
		}
	}

	got := testutil.MineSet(t, apriori.New(), db, 2)
	// Spot-check supports from Example 3.
	checks := []struct {
		names []string
		sup   int
	}{
		{[]string{"d", "c"}, 2},
		{[]string{"d", "f", "g", "c"}, 2},
		{[]string{"f", "g"}, 3},
		{[]string{"f", "g", "e"}, 2},
		{[]string{"f", "g", "e", "c"}, 2},
		{[]string{"a", "e"}, 3},
		{[]string{"a", "e", "c"}, 2},
	}
	for _, c := range checks {
		items := testutil.Items(t, db, c.names...)
		p, ok := got[mining.Key(items)]
		if !ok {
			t.Errorf("missing pattern %v", c.names)
			continue
		}
		if p.Support != c.sup {
			t.Errorf("pattern %v support = %d, want %d", c.names, p.Support, c.sup)
		}
	}
}

// TestAgainstBruteForce validates Apriori itself (the oracle for all other
// miners) against exhaustive subset enumeration.
func TestAgainstBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for rep := 0; rep < 20; rep++ {
		db := testutil.RandomDB(r, 5+r.Intn(40), 3+r.Intn(12), 1+r.Intn(8))
		for _, min := range []int{1, 2, 3, 5} {
			got := testutil.MineSet(t, apriori.New(), db, min)
			want := testutil.BruteForce(t, db, min)
			if !got.Equal(want) {
				t.Fatalf("apriori vs brute force (min=%d, db=%s):\n%v",
					min, db, got.Diff(want, 12))
			}
		}
	}
}

func TestEmptyAndEdgeCases(t *testing.T) {
	m := apriori.New()

	if err := m.Mine(dataset.New(nil), 0, mining.SinkFunc(func([]dataset.Item, int) {})); err != mining.ErrBadMinSupport {
		t.Errorf("minCount=0: got %v, want ErrBadMinSupport", err)
	}

	var c mining.Collector
	if err := m.Mine(dataset.New(nil), 1, &c); err != nil {
		t.Fatalf("empty db: %v", err)
	}
	if len(c.Patterns) != 0 {
		t.Errorf("empty db yielded %d patterns", len(c.Patterns))
	}

	// Threshold above every support: nothing is frequent.
	db := testutil.PaperDB()
	c = mining.Collector{}
	if err := m.Mine(db, 6, &c); err != nil {
		t.Fatalf("high threshold: %v", err)
	}
	if len(c.Patterns) != 0 {
		t.Errorf("threshold 6 yielded %d patterns, want 0", len(c.Patterns))
	}

	// Single transaction, minCount 1: the full subset lattice.
	db = dataset.New([][]dataset.Item{{1, 2, 3}})
	c = mining.Collector{}
	if err := m.Mine(db, 1, &c); err != nil {
		t.Fatal(err)
	}
	if len(c.Patterns) != 7 {
		t.Errorf("single tuple lattice: got %d patterns, want 7", len(c.Patterns))
	}

	// Duplicate items within an input transaction collapse.
	db = dataset.New([][]dataset.Item{{2, 2, 2}, {2, 2}})
	c = mining.Collector{}
	if err := m.Mine(db, 2, &c); err != nil {
		t.Fatal(err)
	}
	if len(c.Patterns) != 1 || c.Patterns[0].Support != 2 {
		t.Errorf("duplicate collapse: got %v", c.Patterns)
	}
}
