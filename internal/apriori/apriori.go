// Package apriori implements the classic Apriori algorithm (Agrawal &
// Srikant, VLDB'94 — reference [5] of the paper). It is the slowest miner in
// this repository but also the simplest, so it doubles as the correctness
// oracle for every other algorithm in the test suite.
package apriori

import (
	"sort"

	"gogreen/internal/dataset"
	"gogreen/internal/mining"
)

// Miner is the Apriori frequent-pattern miner.
type Miner struct{}

// New returns an Apriori miner.
func New() *Miner { return &Miner{} }

// Name implements mining.Miner.
func (*Miner) Name() string { return "apriori" }

// Mine implements mining.Miner with level-wise candidate generation.
func (*Miner) Mine(db *dataset.DB, minCount int, sink mining.Sink) error {
	if minCount < 1 {
		return mining.ErrBadMinSupport
	}
	flist := mining.BuildFList(db, minCount)
	if flist.Len() == 0 {
		return nil
	}
	// Work in rank space so that candidate items are dense. Transactions
	// keep only frequent items; rank order within a transaction is
	// ascending, which the join below relies on.
	tx := flist.EncodeDB(db)

	// Level 1: frequent items straight from the F-list.
	scratch := make([]dataset.Item, 0, 32)
	level := make([][]dataset.Item, 0, flist.Len())
	for r := 0; r < flist.Len(); r++ {
		scratch = append(scratch[:0], dataset.Item(r))
		sink.Emit(flist.DecodeInto(make([]dataset.Item, 1), scratch), flist.Support[r])
		level = append(level, []dataset.Item{dataset.Item(r)})
	}

	for k := 2; len(level) > 0; k++ {
		cands := generate(level)
		if len(cands) == 0 {
			return nil
		}
		counts := countCandidates(tx, cands, k)
		next := level[:0:0]
		for i, c := range cands {
			if counts[i] >= minCount {
				out := make([]dataset.Item, len(c))
				sink.Emit(flist.DecodeInto(out, c), counts[i])
				next = append(next, c)
			}
		}
		level = next
	}
	return nil
}

// generate joins frequent k-itemsets sharing a (k-1)-prefix into (k+1)
// candidates and prunes those with an infrequent k-subset. level must be in
// lexicographic order, which generate preserves.
func generate(level [][]dataset.Item) [][]dataset.Item {
	k := len(level[0])
	have := make(map[string]struct{}, len(level))
	for _, s := range level {
		have[mining.Key(s)] = struct{}{}
	}
	var out [][]dataset.Item
	for i := 0; i < len(level); i++ {
		for j := i + 1; j < len(level); j++ {
			a, b := level[i], level[j]
			if !samePrefix(a, b, k-1) {
				break // level is sorted; later j cannot share the prefix
			}
			c := make([]dataset.Item, k+1)
			copy(c, a)
			c[k] = b[k-1]
			if c[k] < c[k-1] {
				c[k-1], c[k] = c[k], c[k-1]
			}
			if prunable(c, have) {
				continue
			}
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return lexLess(out[i], out[j]) })
	return out
}

// prunable reports whether candidate c has any k-subset missing from have.
func prunable(c []dataset.Item, have map[string]struct{}) bool {
	sub := make([]dataset.Item, 0, len(c)-1)
	for drop := range c {
		sub = sub[:0]
		for i, it := range c {
			if i != drop {
				sub = append(sub, it)
			}
		}
		if _, ok := have[mining.Key(sub)]; !ok {
			return true
		}
	}
	return false
}

// countCandidates counts candidate occurrences with one database scan per
// level, using a prefix-sorted candidate list and per-transaction subset
// checks.
func countCandidates(tx [][]dataset.Item, cands [][]dataset.Item, k int) []int {
	counts := make([]int, len(cands))
	for _, t := range tx {
		if len(t) < k {
			continue
		}
		for i, c := range cands {
			if dataset.Contains(t, c) {
				counts[i]++
			}
		}
	}
	return counts
}

func samePrefix(a, b []dataset.Item, n int) bool {
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func lexLess(a, b []dataset.Item) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}
