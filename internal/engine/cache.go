package engine

import (
	"sync"

	"gogreen/internal/lattice"
)

// DefaultCacheBudget is the byte budget of a lattice store when no explicit
// budget is configured (WithCacheBudget). 64 MiB holds on the order of a
// million cached patterns under memlimit's cost model.
const DefaultCacheBudget int64 = 64 << 20

// CacheConfig is the single cache-aware option surface shared by every
// public layer: gogreen.MineOptions, session.Options and the server all
// embed this struct and adapt their typed With* options onto the CacheOption
// functions below, so the knobs exist exactly once.
type CacheConfig struct {
	// Enabled turns the materialized threshold lattice on. Surfaces choose
	// their own default: the HTTP server serves many requests over shared
	// databases and enables it, the one-shot facade and session default off.
	Enabled bool
	// Rungs is an optional install grid of relative support thresholds
	// (fractions of |DB|). When set, a mining round triggered by threshold ξ
	// mines and installs at the largest grid rung ≤ ξ and filters the answer
	// down to ξ, so nearby future thresholds share one materialized rung.
	// Empty means install exactly at the requested threshold.
	Rungs []float64
	// Budget caps the resident bytes of the lattice store, metered through
	// memlimit's cost model; <= 0 means DefaultCacheBudget.
	Budget int64
}

// CacheOption mutates the shared CacheConfig. Surfaces wrap these in their
// own option types (gogreen.WithLattice, session.WithLattice, ...) with
// one-line adapters — the semantics live here only.
type CacheOption func(*CacheConfig)

// WithLattice enables or disables the materialized threshold lattice.
func WithLattice(on bool) CacheOption {
	return func(c *CacheConfig) { c.Enabled = on }
}

// WithLatticeRungs sets the install grid of relative support thresholds.
// It does not itself enable the lattice.
func WithLatticeRungs(rungs []float64) CacheOption {
	return func(c *CacheConfig) { c.Rungs = append([]float64(nil), rungs...) }
}

// WithCacheBudget caps the lattice store's resident bytes. It does not
// itself enable the lattice.
func WithCacheBudget(bytes int64) CacheOption {
	return func(c *CacheConfig) { c.Budget = bytes }
}

// ResolveBudget returns the effective byte budget.
func (c CacheConfig) ResolveBudget() int64 {
	if c.Budget > 0 {
		return c.Budget
	}
	return DefaultCacheBudget
}

// NewStore builds the private lattice store the config describes — nil when
// the lattice is disabled. Long-lived owners call this (the sharded server
// slices ResolveBudget across one store per shard) and key caches per
// database; one-shot surfaces use SharedStore instead so rungs survive
// across calls.
func (c CacheConfig) NewStore() *lattice.Store {
	if !c.Enabled {
		return nil
	}
	return lattice.NewStore(c.ResolveBudget())
}

var (
	sharedStoreOnce sync.Once
	sharedStore     *lattice.Store
)

// SharedStore returns the process-wide lattice store, created on first use
// with DefaultCacheBudget. The facade keys it by *dataset.DB identity so
// repeated gogreen.Mine calls against the same database share a ladder;
// WithCacheBudget at that surface re-budgets this store for the process.
func SharedStore() *lattice.Store {
	sharedStoreOnce.Do(func() { sharedStore = lattice.NewStore(DefaultCacheBudget) })
	return sharedStore
}

// Attach wires the configured lattice onto p, with key's ladder taken from
// the process-wide shared store (a configured budget re-budgets that store).
// No-op when the lattice is disabled, leaving p.Cache nil so Serve degrades
// to Execute. Surfaces that own their store (the server) wire p.Cache
// directly instead.
func (c CacheConfig) Attach(p *Pipeline, key any) {
	if !c.Enabled {
		return
	}
	store := SharedStore()
	if c.Budget > 0 {
		store.SetBudget(c.Budget)
	}
	p.Cache = store.Cache(key)
	p.CacheRungs = c.Rungs
}

// CacheEvent labels lattice events for observers. The names are the metric
// counter names verbatim.
type CacheEvent string

// Lattice cache events.
const (
	// CacheHit: a request was answered by pure-filtering a resident rung.
	CacheHit CacheEvent = "cache_hit"
	// CacheRelax: a request relax-mined with a resident rung as its seed.
	CacheRelax CacheEvent = "cache_relax"
	// CacheMiss: no resident rung could serve the request.
	CacheMiss CacheEvent = "cache_miss"
	// CacheInstall: a mined result was materialized as a new or replaced rung.
	CacheInstall CacheEvent = "cache_install"
	// CacheEvict: rungs were evicted to fit the byte budget (n = count).
	CacheEvict CacheEvent = "cache_evict"
)

// CacheObserver is the optional extension of PhaseObserver that also
// receives lattice events. Pipeline.Serve type-asserts its Observer; a plain
// PhaseObserver simply sees no cache traffic.
type CacheObserver interface {
	PhaseObserver
	OnCacheEvent(event CacheEvent, n int)
}

func (p *Pipeline) observeCache(event CacheEvent, n int) {
	if co, ok := p.Observer.(CacheObserver); ok && n > 0 {
		co.OnCacheEvent(event, n)
	}
}
