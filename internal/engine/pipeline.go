package engine

import (
	"context"
	"errors"
	"fmt"
	"time"

	"gogreen/internal/core"
	"gogreen/internal/dataset"
	"gogreen/internal/lattice"
	"gogreen/internal/mining"
)

// ErrNoThreshold is returned when a run is requested with neither an
// absolute count nor a relative support threshold.
var ErrNoThreshold = errors.New("gogreen: no support threshold (use WithMinCount or WithMinSupport)")

// ErrBadMinSupport is returned for a relative threshold outside (0, 1); a
// fraction of 1 or more would exceed |DB| and silently yield no patterns.
var ErrBadMinSupport = errors.New("gogreen: min support must be a fraction in (0, 1)")

// Threshold is a support threshold in either absolute (Count) or relative
// (Support, fraction of |DB|) form. Count wins when both are set.
type Threshold struct {
	Count   int
	Support float64
}

// Resolve converts the threshold into an absolute tuple count for a
// database of numTx tuples, returning ErrNoThreshold / ErrBadMinSupport
// when neither form is usable.
func (t Threshold) Resolve(numTx int) (int, error) {
	min := t.Count
	if min < 1 && t.Support > 0 {
		if t.Support >= 1 {
			return 0, ErrBadMinSupport
		}
		min = mining.MinCount(numTx, t.Support)
	}
	if min < 1 {
		return 0, ErrNoThreshold
	}
	return min, nil
}

// PoolWorkers maps the public mine-workers knob (n < 0 = GOMAXPROCS,
// n > 0 = exactly n; 0 = serial, which callers decide before construction)
// onto the parallel package's pool convention (0 = GOMAXPROCS). It is the
// single mapping between the two conventions — surfaces must not reimplement
// it.
func PoolWorkers(n int) int {
	if n < 0 {
		return 0
	}
	return n
}

// FilterAlgo is the canonical algorithm label of the tighten-filter path,
// which reuses an old result without running any miner.
const FilterAlgo = "filter"

// Phase labels the stages of a pipeline run.
type Phase string

// Pipeline phases.
const (
	// PhaseCompress is phase one of recycling: covering the database with
	// the recycled patterns.
	PhaseCompress Phase = "compress"
	// PhaseMine is a mining pass (fresh, or over the compressed database).
	PhaseMine Phase = "mine"
	// PhaseFilter is the tighten direction: filtering an old result.
	PhaseFilter Phase = "filter"
)

// PhaseObserver watches pipeline phases. The server binds it to its metrics
// histograms, rpbench to its measurement records, and tests to assertions.
// OnPhaseEnd fires only for phases that complete without error; algo is the
// canonical registry name of the algorithm driving the run (FilterAlgo for
// the filter path). Implementations must be safe for concurrent use when
// the pipeline is shared across goroutines.
type PhaseObserver interface {
	OnPhaseStart(phase Phase, algo string)
	OnPhaseEnd(phase Phase, algo string, elapsed time.Duration)
}

// ObserverFunc adapts a function to PhaseObserver; it fires on phase end
// only.
type ObserverFunc func(phase Phase, algo string, elapsed time.Duration)

// OnPhaseStart implements PhaseObserver as a no-op.
func (ObserverFunc) OnPhaseStart(Phase, string) {}

// OnPhaseEnd implements PhaseObserver.
func (f ObserverFunc) OnPhaseEnd(phase Phase, algo string, elapsed time.Duration) {
	f(phase, algo, elapsed)
}

// Run is the outcome of one pipeline run: the shared mining.Result plus the
// canonical name of the algorithm that actually ran (after any par-*
// promotion) and, for recycled runs, the compression statistics.
type Run struct {
	mining.Result
	// Algo is the canonical registry name that produced the result —
	// "par-rp-hmine" when the worker knob promoted "rp-hmine", FilterAlgo
	// for the filter path. Metrics and logs must use it verbatim.
	Algo string
	// CompressStats summarizes phase one of a recycled run; nil otherwise.
	CompressStats *core.Stats
	// Installed describes the lattice rung Serve materialized this round
	// (the complete pattern set at the grid-snapped threshold, possibly
	// below the answer's); nil when nothing was installed. Callers that
	// persist the lattice write this rung through to disk.
	Installed *InstalledRung
}

// InstalledRung is the rung a Serve round added to the threshold ladder.
type InstalledRung struct {
	// MinCount is the absolute threshold the rung was installed at.
	MinCount int
	// Patterns is the complete frequent-pattern set at MinCount. It aliases
	// the cached slice: treat as immutable.
	Patterns []mining.Pattern
}

// Prior is the reusable knowledge an earlier round left behind, driving the
// tighten-vs-relax decision of Pipeline.Execute.
type Prior struct {
	// Patterns is the earlier round's complete frequent-pattern set.
	Patterns []mining.Pattern
	// MinCount is the absolute threshold Patterns were mined at.
	MinCount int
	// Label names the reused knowledge for Result.BasedOn.
	Label string
}

// Pipeline owns a mining run end to end. The zero value is usable: fresh
// H-Mine, the Recycle-HM engine, MCP compression, serial mining,
// GOMAXPROCS compression workers, no observer.
type Pipeline struct {
	// Fresh names the baseline algorithm for fresh runs ("" = "hmine").
	Fresh string
	// Recycled names the compressed-database engine ("" = "rp-hmine").
	Recycled string
	// Strategy picks the compression utility function (default MCP).
	Strategy core.Strategy
	// CompressWorkers shards the compression phase; <= 0 means GOMAXPROCS.
	// Output is byte-identical at any worker count.
	CompressWorkers int
	// MineWorkers parallelizes the mining phase: 0 (default) mines
	// serially, n > 0 uses n workers, n < 0 uses GOMAXPROCS. A non-zero
	// value promotes the named algorithm to its par-* registry variant when
	// one exists; algorithms without one (apriori, rp-naive, ...) mine
	// serially.
	MineWorkers int
	// Observer, when set, watches every phase of every run. An observer
	// that also implements CacheObserver additionally receives the lattice
	// events of Serve.
	Observer PhaseObserver
	// Cache, when set, is this database's threshold ladder in a lattice
	// store; Serve consults and maintains it. Nil means Serve degrades to
	// Execute.
	Cache *lattice.Cache
	// CacheRungs is the optional install grid of relative thresholds
	// (CacheConfig.Rungs); Serve snaps install thresholds onto it.
	CacheRungs []float64
}

// resolveFresh returns the descriptor a fresh run will use, after worker
// promotion.
func (p *Pipeline) resolveFresh() (Descriptor, error) {
	name := p.Fresh
	if name == "" {
		name = "hmine"
	}
	d, ok := Lookup(name)
	if !ok {
		return Descriptor{}, fmt.Errorf("engine: unknown algorithm %q", name)
	}
	if d.Kind != Fresh {
		return Descriptor{}, fmt.Errorf("engine: %q is a recycling engine, not a baseline miner", name)
	}
	if p.MineWorkers != 0 && d.Par != "" {
		d, _ = Lookup(d.Par)
	}
	return d, nil
}

// resolveRecycled returns the descriptor a recycled run will use, after
// worker promotion.
func (p *Pipeline) resolveRecycled() (Descriptor, error) {
	name := p.Recycled
	if name == "" {
		name = "rp-hmine"
	}
	d, ok := Lookup(name)
	if !ok {
		return Descriptor{}, fmt.Errorf("engine: unknown recycling engine %q", name)
	}
	if d.Kind != Recycled {
		return Descriptor{}, fmt.Errorf("engine: %q is a baseline miner, not a recycling engine", name)
	}
	if p.MineWorkers != 0 && d.Par != "" {
		d, _ = Lookup(d.Par)
	}
	return d, nil
}

// FreshMiner constructs the miner a fresh run will use and returns it with
// its canonical name. The worker knob is already applied: with MineWorkers
// set and a registered par-* variant, the returned miner is the pool-backed
// form and the name is the variant's.
func (p *Pipeline) FreshMiner() (mining.Miner, string, error) {
	d, err := p.resolveFresh()
	if err != nil {
		return nil, "", err
	}
	return d.Miner(PoolWorkers(p.MineWorkers)), d.Name, nil
}

// RecycledEngine constructs the compressed-database engine a recycled run
// will use and returns it with its canonical name, worker knob applied as
// in FreshMiner.
func (p *Pipeline) RecycledEngine() (core.CDBMiner, string, error) {
	d, err := p.resolveRecycled()
	if err != nil {
		return nil, "", err
	}
	return d.Engine(PoolWorkers(p.MineWorkers)), d.Name, nil
}

// Recycler packages the pipeline's recycled engine, strategy and
// compression workers behind the mining.Miner interface (via
// core.Recycler), for callers that compose with constraint pushing. The
// returned name is the engine's canonical registry name.
func (p *Pipeline) Recycler(fp []mining.Pattern) (mining.Miner, string, error) {
	eng, name, err := p.RecycledEngine()
	if err != nil {
		return nil, "", err
	}
	return &core.Recycler{FP: fp, Strategy: p.Strategy, Engine: eng, CompressWorkers: p.CompressWorkers}, name, nil
}

// NewRecycler assembles a two-phase recycling miner around an explicit
// engine instance. It exists for tests and ablations that drive configured
// engine values (e.g. a Naive miner with the Lemma 3.1 shortcut disabled);
// production surfaces use Pipeline instead.
func NewRecycler(fp []mining.Pattern, strat core.Strategy, eng core.CDBMiner) *core.Recycler {
	return &core.Recycler{FP: fp, Strategy: strat, Engine: eng}
}

// collect returns sink unchanged when non-nil, and otherwise a fresh
// Collector whose patterns the caller copies into the Run.
func collect(sink mining.Sink) (mining.Sink, *mining.Collector) {
	if sink != nil {
		return sink, nil
	}
	c := &mining.Collector{}
	return c, c
}

func (p *Pipeline) observeStart(phase Phase, algo string) {
	if p.Observer != nil {
		p.Observer.OnPhaseStart(phase, algo)
	}
}

func (p *Pipeline) observeEnd(phase Phase, algo string, elapsed time.Duration) {
	if p.Observer != nil {
		p.Observer.OnPhaseEnd(phase, algo, elapsed)
	}
}

// Mine runs the pipeline's fresh algorithm under ctx. When sink is nil the
// patterns are collected into the Run; otherwise they stream into sink and
// Run.Patterns stays nil. Cancellation aborts the recursion cooperatively.
func (p *Pipeline) Mine(ctx context.Context, db *dataset.DB, minCount int, sink mining.Sink) (Run, error) {
	if minCount < 1 {
		return Run{}, mining.ErrBadMinSupport
	}
	d, err := p.resolveFresh()
	if err != nil {
		return Run{}, err
	}
	m := d.Miner(PoolWorkers(p.MineWorkers))
	out, col := collect(sink)
	start := time.Now()
	p.observeStart(PhaseMine, d.Name)
	if err := mining.MineContext(ctx, m, db, minCount, out); err != nil {
		return Run{}, err
	}
	elapsed := time.Since(start)
	p.observeEnd(PhaseMine, d.Name, elapsed)
	run := Run{Algo: d.Name, Result: mining.Result{
		Source: mining.SourceFresh, MinCount: minCount, Elapsed: elapsed}}
	if col != nil {
		run.Patterns = col.Patterns
	}
	return run, nil
}

// MineRecycling runs the paper's two-phase scheme under ctx: compress db
// with the recycled patterns fp (observed as PhaseCompress), then mine the
// compressed database with the pipeline's engine (observed as PhaseMine).
// Run.CompressStats reports the compression; Run.Elapsed covers both
// phases.
func (p *Pipeline) MineRecycling(ctx context.Context, db *dataset.DB, fp []mining.Pattern, minCount int, sink mining.Sink) (Run, error) {
	if minCount < 1 {
		return Run{}, mining.ErrBadMinSupport
	}
	d, err := p.resolveRecycled()
	if err != nil {
		return Run{}, err
	}
	eng := d.Engine(PoolWorkers(p.MineWorkers))
	out, col := collect(sink)

	start := time.Now()
	p.observeStart(PhaseCompress, d.Name)
	cdb, err := core.CompressParallel(ctx, db, fp, p.Strategy, p.CompressWorkers)
	if err != nil {
		return Run{}, err
	}
	p.observeEnd(PhaseCompress, d.Name, time.Since(start))
	stats := cdb.Stats()

	mineStart := time.Now()
	p.observeStart(PhaseMine, d.Name)
	if err := core.MineCDBContext(ctx, eng, cdb, minCount, out); err != nil {
		return Run{}, err
	}
	p.observeEnd(PhaseMine, d.Name, time.Since(mineStart))

	run := Run{Algo: d.Name, CompressStats: &stats, Result: mining.Result{
		Source: mining.SourceRecycled, MinCount: minCount, Elapsed: time.Since(start)}}
	if col != nil {
		run.Patterns = col.Patterns
	}
	return run, nil
}

// Filter runs the tighten direction: the new result is the old patterns
// that still meet minCount, supports unchanged, no mining at all.
func (p *Pipeline) Filter(fp []mining.Pattern, minCount int) Run {
	start := time.Now()
	p.observeStart(PhaseFilter, FilterAlgo)
	out := core.FilterTightened(fp, minCount)
	elapsed := time.Since(start)
	p.observeEnd(PhaseFilter, FilterAlgo, elapsed)
	return Run{Algo: FilterAlgo, Result: mining.Result{
		Patterns: out, Source: mining.SourceFiltered, MinCount: minCount, Elapsed: elapsed}}
}

// Execute implements the paper's decision tree for one round given the
// prior round's knowledge: no prior → mine fresh; threshold tightened
// (prior.MinCount <= minCount) → filter the old result; relaxed → recycle.
// Run.BasedOn carries prior.Label on the reuse paths.
func (p *Pipeline) Execute(ctx context.Context, db *dataset.DB, prior *Prior, minCount int, sink mining.Sink) (Run, error) {
	if prior == nil {
		return p.Mine(ctx, db, minCount, sink)
	}
	if prior.MinCount >= 1 && prior.MinCount <= minCount {
		run := p.Filter(prior.Patterns, minCount)
		run.BasedOn = prior.Label
		if sink != nil {
			for _, pat := range run.Patterns {
				sink.Emit(pat.Items, pat.Support)
			}
			run.Patterns = nil
		}
		return run, nil
	}
	run, err := p.MineRecycling(ctx, db, prior.Patterns, minCount, sink)
	if err != nil {
		return Run{}, err
	}
	run.BasedOn = prior.Label
	return run, nil
}

// latticeLabel names a rung for Result.BasedOn.
func latticeLabel(minCount int) string { return fmt.Sprintf("lattice-%d", minCount) }

// installCount snaps a requested threshold onto the CacheRungs install grid:
// the largest grid count at or below minCount (i.e. the nearest equal-or-
// relaxed grid threshold, whose pattern set is a superset of the answer), or
// minCount itself when the grid is empty or entirely above it.
func (p *Pipeline) installCount(db *dataset.DB, minCount int) int {
	snapped := 0
	for _, s := range p.CacheRungs {
		if s <= 0 || s >= 1 {
			continue
		}
		if c := mining.MinCount(db.Len(), s); c >= 1 && c <= minCount && c > snapped {
			snapped = c
		}
	}
	if snapped >= 1 {
		return snapped
	}
	return minCount
}

// emitFiltered streams run.Patterns into sink and clears them, matching the
// streaming contract of Mine/MineRecycling.
func emitFiltered(run *Run, sink mining.Sink) {
	if sink == nil {
		return
	}
	for _, pat := range run.Patterns {
		sink.Emit(pat.Items, pat.Support)
	}
	run.Patterns = nil
}

// Serve is the cache-aware entry point: Execute, but consulting and
// maintaining the threshold lattice. With no Cache configured it is exactly
// Execute. Otherwise the ladder decides the round:
//
//   - hit: a rung at ≤ minCount is pure-filtered down — no mining, and
//     nothing new to install.
//   - relax: the nearest rung above minCount seeds the recycling pipeline
//     (unless the caller's prior is a strictly better seed).
//   - miss: the empty ladder falls back to the prior-driven Execute
//     decision tree.
//
// On the relax and miss paths the mined threshold snaps down onto the
// CacheRungs grid, the complete result is installed as a new rung, and the
// response is filtered back up to minCount. Run.Cache reports the outcome;
// cache_* events go to a CacheObserver when the pipeline has one.
func (p *Pipeline) Serve(ctx context.Context, db *dataset.DB, prior *Prior, minCount int, sink mining.Sink) (Run, error) {
	if p.Cache == nil {
		return p.Execute(ctx, db, prior, minCount, sink)
	}
	if minCount < 1 {
		return Run{}, mining.ErrBadMinSupport
	}
	seed, rungMin, outcome := p.Cache.Best(minCount)
	switch outcome {
	case lattice.Hit:
		p.observeCache(CacheHit, 1)
		run := p.Filter(seed, minCount)
		run.BasedOn = latticeLabel(rungMin)
		run.Cache = string(outcome)
		emitFiltered(&run, sink)
		return run, nil
	case lattice.Relax:
		p.observeCache(CacheRelax, 1)
		// The rung is the seed unless the caller's prior was mined at a
		// lower (more informative) threshold.
		if prior == nil || prior.MinCount < 1 || rungMin < prior.MinCount {
			prior = &Prior{Patterns: seed, MinCount: rungMin, Label: latticeLabel(rungMin)}
		}
	default:
		p.observeCache(CacheMiss, 1)
	}

	// Mining is required. Mine (or prior-filter) at the grid-snapped
	// threshold, materialize that complete set as a rung, and answer at
	// minCount.
	installMin := p.installCount(db, minCount)
	var run Run
	var err error
	switch {
	case prior == nil || prior.MinCount < 1:
		run, err = p.Mine(ctx, db, installMin, nil)
	case prior.MinCount <= installMin:
		run = p.Filter(prior.Patterns, installMin)
		run.BasedOn = prior.Label
	case prior.MinCount <= minCount:
		// The prior tightens to the query but not to the grid rung: serve
		// and install at the query threshold instead of mining.
		installMin = minCount
		run = p.Filter(prior.Patterns, minCount)
		run.BasedOn = prior.Label
	default:
		run, err = p.MineRecycling(ctx, db, prior.Patterns, installMin, nil)
		run.BasedOn = prior.Label
	}
	if err != nil {
		return Run{}, err
	}
	if installed, evicted := p.Cache.Install(installMin, run.Patterns); installed {
		p.observeCache(CacheInstall, 1)
		p.observeCache(CacheEvict, evicted)
		// The complete pre-filter set is the rung; capture it before the
		// answer is filtered up so callers can persist what was installed.
		run.Installed = &InstalledRung{MinCount: installMin, Patterns: run.Patterns}
	}
	if installMin < minCount {
		run.Patterns = core.FilterTightened(run.Patterns, minCount)
	}
	run.MinCount = minCount
	run.Cache = string(outcome)
	emitFiltered(&run, sink)
	return run, nil
}
