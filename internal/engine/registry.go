// Package engine is the unified algorithm layer behind every mining
// surface in this repository: one canonical registry of algorithm names
// (baselines, recycled engines, and their derived par-* parallel variants)
// and one Pipeline that owns a whole mining run — threshold resolution,
// the tighten-vs-relax decision, compression, worker mapping, cooperative
// cancellation, and phase observation.
//
// The facade (package gogreen), the HTTP server, the interactive session
// layer, the incremental maintainer, the two-step miner, the bench harness
// and both CLIs all construct runs through this package instead of
// assembling core.Recycler/parallel.Wrap/worker-count mappings by hand, so
// a new algorithm or knob lands here once and appears everywhere.
package engine

import (
	"fmt"

	"gogreen/internal/apriori"
	"gogreen/internal/core"
	"gogreen/internal/eclat"
	"gogreen/internal/fptree"
	"gogreen/internal/hmine"
	"gogreen/internal/mining"
	"gogreen/internal/parallel"
	"gogreen/internal/rpfptree"
	"gogreen/internal/rphmine"
	"gogreen/internal/rptreeproj"
	"gogreen/internal/treeproj"
)

// Kind says which database shape an algorithm mines.
type Kind int

// Algorithm kinds.
const (
	// Fresh algorithms mine an uncompressed database from scratch.
	Fresh Kind = iota
	// Recycled algorithms mine a pattern-compressed database (phase two of
	// the paper's recycling scheme).
	Recycled
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	if k == Recycled {
		return "recycled"
	}
	return "fresh"
}

// Descriptor describes one registered algorithm. Exactly one of Miner and
// Engine is non-nil, matching Kind.
//
// Name is the canonical algorithm name: the string the CLIs accept, the
// server's per-algorithm metrics use, and the docs tables print. Every
// surface must take it from here rather than calling Name() on ad-hoc
// miner values.
type Descriptor struct {
	// Name is the canonical registry name (e.g. "hmine", "rp-fptree",
	// "par-rp-fptree").
	Name string
	// Kind says whether the algorithm mines fresh or compressed databases.
	Kind Kind
	// Summary is a one-line description for -list output and docs tables.
	Summary string
	// Base is the serial algorithm a par-* variant derives from; empty for
	// serial entries.
	Base string
	// Par names the derived parallel variant, empty when the algorithm
	// cannot run on the worker pool (e.g. apriori, rp-naive).
	Par string
	// Context reports native cooperative cancellation (a MineContext /
	// MineCDBContext entry point); miners without it still honor deadlines
	// through boundary checks.
	Context bool
	// Encoded reports that a recycled engine implements the rank-encoded
	// entry points (parallel.EncodedCDBMiner) the worker pool drives.
	Encoded bool
	// Pooled reports that the engine (or, for par-* variants, the wrapped
	// serial engine) carries reusable working memory across calls
	// (parallel.PooledEncodedMiner): the worker pool threads one scratch
	// per worker through its tasks, so steady-state dispatch allocates
	// (near) nothing.
	Pooled bool

	// Miner constructs the fresh miner (Kind == Fresh). The workers
	// argument follows the parallel package's convention (0 = GOMAXPROCS)
	// and is ignored by serial entries.
	Miner func(workers int) mining.Miner
	// Engine constructs the recycled engine (Kind == Recycled); workers as
	// for Miner.
	Engine func(workers int) core.CDBMiner
}

// registry holds every descriptor in presentation order: fresh baselines,
// recycled engines, then the derived par-* variants.
var registry []Descriptor

// byName indexes registry by canonical name.
var byName = map[string]*Descriptor{}

func init() {
	serial := []Descriptor{
		{Name: "apriori", Kind: Fresh, Summary: "level-wise candidate generation; the test oracle",
			Miner: func(int) mining.Miner { return apriori.New() }},
		{Name: "hmine", Kind: Fresh, Context: true, Summary: "H-Mine: hyper-structure, pseudo-projection",
			Miner: func(int) mining.Miner { return hmine.New() }},
		{Name: "fptree", Kind: Fresh, Summary: "FP-growth: prefix-tree projection",
			Miner: func(int) mining.Miner { return fptree.New() }},
		{Name: "treeproj", Kind: Fresh, Summary: "Tree Projection: depth-first, matrix counting",
			Miner: func(int) mining.Miner { return treeproj.New() }},
		{Name: "eclat", Kind: Fresh, Summary: "Eclat: vertical tid-list intersection",
			Miner: func(int) mining.Miner { return eclat.New() }},
		{Name: "rp-naive", Kind: Recycled, Context: true, Summary: "naive RP-Mine over the compressed DB (Figure 3)",
			Engine: func(int) core.CDBMiner { return core.Naive{} }},
		{Name: "rp-hmine", Kind: Recycled, Context: true, Encoded: true, Summary: "Recycle-HM: H-Mine over the RP-Struct (§4.1)",
			Engine: func(int) core.CDBMiner { return rphmine.New() }},
		{Name: "rp-fptree", Kind: Recycled, Context: true, Encoded: true, Summary: "Recycle-FP: FP-growth with group-head items",
			Engine: func(int) core.CDBMiner { return rpfptree.New() }},
		{Name: "rp-treeproj", Kind: Recycled, Context: true, Encoded: true, Summary: "Recycle-TP: Tree Projection over compressed sets",
			Engine: func(int) core.CDBMiner { return rptreeproj.New() }},
	}

	// Pooled is detected, not declared: an engine advertises scratch reuse
	// by implementing parallel.PooledEncodedMiner, and the flag must never
	// drift from what the worker pool actually sees.
	for i := range serial {
		if serial[i].Kind == Recycled && serial[i].Encoded {
			_, pooled := serial[i].Engine(0).(parallel.PooledEncodedMiner)
			serial[i].Pooled = pooled
		}
	}

	var derived []Descriptor
	for i := range serial {
		if par, ok := derive(serial[i]); ok {
			serial[i].Par = par.Name
			derived = append(derived, par)
		}
	}
	registry = append(serial, derived...)
	for i := range registry {
		byName[registry[i].Name] = &registry[i]
	}
}

// derive builds the par-* variant of a serial descriptor when the worker
// pool can drive it: the fresh H-Mine baseline (parallel.Miner is its
// pool-shaped form) and every recycled engine with the encoded entry
// points. The variant's constructors take a pool worker count
// (0 = GOMAXPROCS).
func derive(d Descriptor) (Descriptor, bool) {
	switch {
	case d.Kind == Fresh && d.Name == "hmine":
		return Descriptor{
			Name: "par-hmine", Kind: Fresh, Base: d.Name, Context: true, Pooled: true,
			Summary: "H-Mine on a worker pool, one top-level subtree per task",
			Miner:   func(w int) mining.Miner { return parallel.Miner{Workers: w} },
		}, true
	case d.Kind == Recycled && d.Encoded:
		serial := d.Engine
		return Descriptor{
			Name: "par-" + d.Name, Kind: Recycled, Base: d.Name, Context: true, Encoded: true, Pooled: d.Pooled,
			Summary: d.Name + " subtrees fanned out to a worker pool",
			Engine:  func(w int) core.CDBMiner { return parallel.Wrap(serial(0), w) },
		}, true
	}
	return Descriptor{}, false
}

// Names returns every canonical algorithm name in presentation order:
// fresh baselines, recycled engines, then the derived par-* variants. It
// is the single source of truth for CLI -list output, docs tables and
// metric names.
func Names() []string {
	out := make([]string, len(registry))
	for i := range registry {
		out[i] = registry[i].Name
	}
	return out
}

// Descriptors returns a copy of every descriptor in Names() order.
func Descriptors() []Descriptor {
	return append([]Descriptor(nil), registry...)
}

// Lookup returns the descriptor registered under name.
func Lookup(name string) (Descriptor, bool) {
	d, ok := byName[name]
	if !ok {
		return Descriptor{}, false
	}
	return *d, true
}

// NewMiner constructs the named fresh miner with the given pool worker
// count (ignored by serial algorithms). It errors for unknown or
// recycled-only names.
func NewMiner(name string, workers int) (mining.Miner, error) {
	d, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("engine: unknown algorithm %q", name)
	}
	if d.Kind != Fresh {
		return nil, fmt.Errorf("engine: %q is a recycling engine, not a baseline miner", name)
	}
	return d.Miner(workers), nil
}

// NewEngine constructs the named recycled engine with the given pool
// worker count (ignored by serial engines). It errors for unknown or
// fresh-only names.
func NewEngine(name string, workers int) (core.CDBMiner, error) {
	d, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("engine: unknown recycling engine %q", name)
	}
	if d.Kind != Recycled {
		return nil, fmt.Errorf("engine: %q is a baseline miner, not a recycling engine", name)
	}
	return d.Engine(workers), nil
}
