// Registry completeness tests: every name the registry exports — fresh,
// recycled, and derived par-* variants — must mine the exact pattern set the
// Apriori oracle finds, on randomized databases. A registration typo, a
// broken constructor, or a derived variant that drops patterns fails here by
// name.
package engine_test

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"gogreen/internal/apriori"
	"gogreen/internal/dataset"
	"gogreen/internal/engine"
	"gogreen/internal/mining"
	"gogreen/internal/parallel"
)

// randomDB builds a seeded random basket database: numTx transactions over
// numItems items, lengths uniform in [1, maxLen], with a mild popularity
// skew so low items recur often enough to form multi-item patterns.
func randomDB(seed int64, numTx, numItems, maxLen int) *dataset.DB {
	rng := rand.New(rand.NewSource(seed))
	tx := make([][]dataset.Item, numTx)
	for i := range tx {
		n := 1 + rng.Intn(maxLen)
		t := make([]dataset.Item, 0, n)
		for len(t) < n {
			// Squaring the uniform draw skews toward low item ids.
			f := rng.Float64()
			t = append(t, dataset.Item(f*f*float64(numItems)))
		}
		tx[i] = t // dataset.New canonicalizes (sorts, de-duplicates)
	}
	return dataset.New(tx)
}

// canon renders a pattern set in a canonical comparable form.
func canon(ps []mining.Pattern) []string {
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = fmt.Sprintf("%v:%d", p.Items, p.Support)
	}
	sort.Strings(out)
	return out
}

func diff(t *testing.T, label string, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d patterns, oracle found %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: pattern %d = %s, oracle has %s", label, i, got[i], want[i])
		}
	}
}

// TestRegistryCompleteness mines every registered algorithm over randomized
// seeded databases and demands exact equality with the Apriori oracle.
// Fresh miners (and par-* fresh variants) run on the raw database; recycled
// engines (and par-rp-* variants) run through engine.Pipeline, recycling a
// pattern set the oracle mined at a tighter threshold — the paper's
// relax-and-recycle direction.
func TestRegistryCompleteness(t *testing.T) {
	for _, cfg := range []struct {
		seed                    int64
		numTx, numItems, maxLen int
		min                     int
	}{
		{seed: 1, numTx: 80, numItems: 25, maxLen: 8, min: 3},
		{seed: 2, numTx: 60, numItems: 10, maxLen: 9, min: 5},
	} {
		db := randomDB(cfg.seed, cfg.numTx, cfg.numItems, cfg.maxLen)

		var oracle mining.Collector
		if err := apriori.New().Mine(db, cfg.min, &oracle); err != nil {
			t.Fatalf("oracle: %v", err)
		}
		want := canon(oracle.Patterns)
		if len(want) < 10 {
			t.Fatalf("seed %d: oracle found only %d patterns; workload too thin to differentiate", cfg.seed, len(want))
		}

		// The recycled seed set: the oracle's result at a tighter threshold.
		var seedCol mining.Collector
		if err := apriori.New().Mine(db, 2*cfg.min, &seedCol); err != nil {
			t.Fatalf("oracle seed: %v", err)
		}

		for _, name := range engine.Names() {
			label := fmt.Sprintf("seed %d: %s", cfg.seed, name)
			d, ok := engine.Lookup(name)
			if !ok {
				t.Fatalf("%s: Names() entry missing from Lookup", label)
			}
			switch d.Kind {
			case engine.Fresh:
				m, err := engine.NewMiner(name, 2)
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				var col mining.Collector
				if err := m.Mine(db, cfg.min, &col); err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				diff(t, label, canon(col.Patterns), want)
			case engine.Recycled:
				p := engine.Pipeline{Recycled: name}
				run, err := p.MineRecycling(context.Background(), db, seedCol.Patterns, cfg.min, nil)
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				diff(t, label, canon(run.Patterns), want)
				if run.Algo != name {
					t.Errorf("%s: run.Algo = %q", label, run.Algo)
				}
			default:
				t.Fatalf("%s: unknown kind %v", label, d.Kind)
			}
		}
	}
}

// TestRegistryInvariants pins the structural contract of the registry: names
// are unique and resolvable, derived par-* variants point back at their
// serial base, and the typed constructors reject names of the wrong kind.
func TestRegistryInvariants(t *testing.T) {
	names := engine.Names()
	seen := make(map[string]bool, len(names))
	for _, name := range names {
		if seen[name] {
			t.Errorf("duplicate registry name %q", name)
		}
		seen[name] = true
		d, ok := engine.Lookup(name)
		if !ok || d.Name != name {
			t.Fatalf("Lookup(%q) = %+v, %v", name, d, ok)
		}
		if d.Par != "" {
			p, ok := engine.Lookup(d.Par)
			if !ok || p.Base != d.Name {
				t.Errorf("%s: Par %q does not resolve back (base %q)", name, d.Par, p.Base)
			}
		}
		if d.Base != "" {
			b, ok := engine.Lookup(d.Base)
			if !ok || b.Par != d.Name {
				t.Errorf("%s: Base %q does not point forward (par %q)", name, d.Base, b.Par)
			}
		}
		// Kind-mismatched construction must fail; matched must succeed.
		_, minerErr := engine.NewMiner(name, 0)
		_, engineErr := engine.NewEngine(name, 0)
		if d.Kind == engine.Fresh && (minerErr != nil || engineErr == nil) {
			t.Errorf("%s: fresh constructor errs = (%v, %v)", name, minerErr, engineErr)
		}
		if d.Kind == engine.Recycled && (minerErr == nil || engineErr != nil) {
			t.Errorf("%s: recycled constructor errs = (%v, %v)", name, minerErr, engineErr)
		}
	}
	// Capability flags must not drift from what the constructors return:
	// Encoded ⇔ the engine implements the rank-encoded entry points,
	// Pooled ⇔ it additionally carries reusable scratch (for par-* variants,
	// the flag describes the wrapped serial engine). rp-fptree further
	// supports shared-tree task mining, which the wrapper detects by
	// interface — pin that too so a refactor can't silently lose it.
	for _, name := range names {
		d, _ := engine.Lookup(name)
		if d.Kind != engine.Recycled {
			continue
		}
		eng := d.Engine(0)
		if d.Base != "" {
			b, _ := engine.Lookup(d.Base)
			eng = b.Engine(0) // flags describe the serial engine under the wrapper
		}
		_, encoded := eng.(parallel.EncodedCDBMiner)
		if encoded != d.Encoded {
			t.Errorf("%s: Encoded=%v but engine implements EncodedCDBMiner=%v", name, d.Encoded, encoded)
		}
		_, pooled := eng.(parallel.PooledEncodedMiner)
		if pooled != d.Pooled {
			t.Errorf("%s: Pooled=%v but engine implements PooledEncodedMiner=%v", name, d.Pooled, pooled)
		}
		if d.Encoded && !d.Pooled {
			t.Errorf("%s: encoded engine without scratch reuse; pool dispatch would allocate per task", name)
		}
	}
	for _, name := range []string{"rp-fptree", "par-rp-fptree"} {
		d, _ := engine.Lookup(name)
		base := d
		if d.Base != "" {
			base, _ = engine.Lookup(d.Base)
		}
		if _, ok := base.Engine(0).(parallel.SharedTaskMiner); !ok {
			t.Errorf("%s: engine lost parallel.SharedTaskMiner; par-rp-fptree falls back to per-task re-projection", name)
		}
	}
	if _, ok := engine.Lookup("no-such-algorithm"); ok {
		t.Error("Lookup accepted an unknown name")
	}
	if _, err := engine.NewMiner("no-such-algorithm", 0); err == nil {
		t.Error("NewMiner accepted an unknown name")
	}
	if _, err := engine.NewEngine("no-such-algorithm", 0); err == nil {
		t.Error("NewEngine accepted an unknown name")
	}
}
