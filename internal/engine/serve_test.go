package engine_test

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"gogreen/internal/dataset"
	"gogreen/internal/engine"
	"gogreen/internal/lattice"
	"gogreen/internal/mining"
	"gogreen/internal/testutil"
)

func toSet(t *testing.T, ps []mining.Pattern) mining.PatternSet {
	t.Helper()
	s := mining.PatternSet{}
	for _, p := range ps {
		k := p.Key()
		if _, dup := s[k]; dup {
			t.Fatalf("duplicate pattern %v", p.Items)
		}
		s[k] = p
	}
	return s
}

// TestServeDifferential is the lattice correctness oracle: randomized
// threshold sequences served through a shared, deliberately tiny cache must
// be indistinguishable from cold Apriori at every step. The small budget
// forces evictions mid-sequence (so hits, relaxes, misses, installs,
// rejections and evictions all interleave), and random priors exercise the
// rung-vs-prior seed competition.
func TestServeDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(20040401))
	for rep := 0; rep < 8; rep++ {
		db := testutil.RandomDB(r, 40+r.Intn(80), 6+r.Intn(8), 1+r.Intn(7))
		// ~2KB: room for a couple of small rungs, so bigger pattern sets
		// evict them or are rejected outright.
		store := lattice.NewStore(2048)
		p := engine.Pipeline{Cache: store.Cache(db)}

		var prior *engine.Prior
		for step := 0; step < 15; step++ {
			min := 1 + r.Intn(db.Len()/2+1)
			run, err := p.Serve(context.Background(), db, prior, min, nil)
			if err != nil {
				t.Fatal(err)
			}
			switch run.Cache {
			case "hit", "relax", "miss":
			default:
				t.Fatalf("rep %d step %d: cache outcome %q", rep, step, run.Cache)
			}
			if want := testutil.Oracle(t, db, min); !toSet(t, run.Patterns).Equal(want) {
				t.Fatalf("rep %d step %d (min=%d, cache=%s, basedOn=%s):\n%v",
					rep, step, min, run.Cache, run.BasedOn, toSet(t, run.Patterns).Diff(want, 10))
			}
			if store.Bytes() > store.Budget() {
				t.Fatalf("rep %d step %d: store %d bytes over budget %d",
					rep, step, store.Bytes(), store.Budget())
			}
			// Sometimes hand the next round this result as its prior, so the
			// rung-vs-prior competition runs in both directions.
			if r.Intn(3) == 0 {
				prior = &engine.Prior{Patterns: run.Patterns, MinCount: min, Label: "prev"}
			} else {
				prior = nil
			}
		}
	}
}

// TestServeConcurrent hammers one shared store from concurrent pipelines
// over two databases (run under -race in CI): every answer must still match
// the oracle, and the store must respect its budget throughout.
func TestServeConcurrent(t *testing.T) {
	r := rand.New(rand.NewSource(20040402))
	dbs := []*testingDB{
		{db: testutil.RandomDB(r, 60, 8, 6)},
		{db: testutil.RandomDB(r, 50, 10, 5)},
	}
	for _, d := range dbs {
		d.want = make(map[int]mining.PatternSet)
		for min := 1; min <= 12; min++ {
			d.want[min] = testutil.Oracle(t, d.db, min)
		}
	}
	store := lattice.NewStore(16 << 10)

	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 6; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(g)))
			d := dbs[g%len(dbs)]
			p := engine.Pipeline{Cache: store.Cache(d.db)}
			for step := 0; step < 10; step++ {
				min := 1 + r.Intn(12)
				run, err := p.Serve(context.Background(), d.db, nil, min, nil)
				if err != nil {
					errs <- err.Error()
					return
				}
				got := mining.PatternSet{}
				for _, pat := range run.Patterns {
					got[pat.Key()] = pat
				}
				if !got.Equal(d.want[min]) {
					errs <- "concurrent serve diverged from oracle"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	if store.Bytes() > store.Budget() {
		t.Fatalf("store %d bytes over budget %d", store.Bytes(), store.Budget())
	}
}

type testingDB struct {
	db   *dataset.DB
	want map[int]mining.PatternSet
}
