package rphmine

import (
	"testing"

	"gogreen/internal/dataset"
	"gogreen/internal/mining"
)

// newTestCtx builds a ctx over an explicit arena for span-helper tests.
func newTestCtx(arena []dataset.Item, min int) *ctx {
	return &ctx{arena: arena, min: min, flist: mining.NewFList([]int{5, 5, 5, 5, 5, 5, 5, 5}, 1)}
}

func TestSpanHelpers(t *testing.T) {
	arena := []dataset.Item{1, 3, 5, 7, 9}
	m := newTestCtx(arena, 1)
	s := span{0, 5}

	if got := m.spanIdx(s, 5); got != 2 {
		t.Errorf("spanIdx(5) = %d, want 2", got)
	}
	if got := m.spanIdx(s, 4); got != -1 {
		t.Errorf("spanIdx(4) = %d, want -1", got)
	}
	if got := m.spanIdx(span{1, 3}, 1); got != -1 {
		t.Errorf("spanIdx out of window = %d, want -1", got)
	}

	after := m.spanAfter(s, 5)
	if after.off != 3 || after.end != 5 {
		t.Errorf("spanAfter(5) = %+v", after)
	}
	if a := m.spanAfter(s, 9); !a.empty() {
		t.Errorf("spanAfter(max) should be empty, got %+v", a)
	}
	if a := m.spanAfter(s, 0); a.off != 0 {
		t.Errorf("spanAfter(below min) = %+v", a)
	}
}

func TestNextAt(t *testing.T) {
	arena := []dataset.Item{0, 1, 2, 3}
	m := newTestCtx(arena, 2)
	counts := []int{0, 5, 1, 5, 0, 0, 0, 0}
	// Items 1 and 3 are frequent (counts >= 2).
	if got := m.nextAt(0, 4, counts); got != 1 {
		t.Errorf("nextAt from 0 = %d, want 1 (item 1)", got)
	}
	if got := m.nextAt(2, 4, counts); got != 3 {
		t.Errorf("nextAt from 2 = %d, want 3 (item 3)", got)
	}
	if got := m.nextAt(4, 4, counts); got != 4 {
		t.Errorf("nextAt at end = %d, want 4", got)
	}
}

// TestLevelPoolReuse: pooled levels come back clean.
func TestLevelPoolReuse(t *testing.T) {
	m := newTestCtx(nil, 1)
	lv := m.getLevel()
	lv.counts[3] = 7
	lv.touched = append(lv.touched, 3)
	lv.gq[3] = append(lv.gq[3], 9)
	lv.tq[3] = append(lv.tq[3], tailRef{wgIdx: 1})
	m.putLevel(lv)

	again := m.getLevel()
	if again != lv {
		t.Fatal("pool did not reuse the level")
	}
	if again.counts[3] != 0 || len(again.touched) != 0 || len(again.gq[3]) != 0 || len(again.tq[3]) != 0 {
		t.Fatal("recycled level not reset")
	}
}

// TestSingleGroupDetection drives the Lemma 3.1 detector directly.
func TestSingleGroupDetection(t *testing.T) {
	// Arena: one suffix {0,1,2}; one tail {3}.
	arena := []dataset.Item{0, 1, 2, 3}
	m := newTestCtx(arena, 2)
	lv := m.getLevel()
	defer m.putLevel(lv)

	g := &wg{suffix: span{0, 3}, count: 4, mark: -1}
	lv.wgs = append(lv.wgs, *g)
	for _, it := range []dataset.Item{0, 1, 2} {
		lv.counts[it] = 4
		lv.touched = append(lv.touched, it)
	}
	if got := m.singleGroup(lv); got == nil {
		t.Fatal("single group not detected")
	}

	// A tail occurrence of a frequent item breaks the condition (counts no
	// longer equal the group count).
	lv.counts[1] = 5
	if got := m.singleGroup(lv); got != nil {
		t.Fatal("detector ignored an out-of-group occurrence")
	}
	lv.counts[1] = 4

	// A frequent item outside the suffix breaks it too.
	lv.counts[3] = 4
	lv.touched = append(lv.touched, 3)
	if got := m.singleGroup(lv); got != nil {
		t.Fatal("detector ignored a frequent item outside the group")
	}
}

// TestEnumerateEmitsAllCombinations checks the Lemma 3.1 enumeration
// against 2^n - 1.
func TestEnumerateEmitsAllCombinations(t *testing.T) {
	m := newTestCtx(nil, 1)
	m.sink = &mining.Collector{}
	m.decoded = make([]dataset.Item, 8)
	lv := m.getLevel()
	defer m.putLevel(lv)
	for _, it := range []dataset.Item{0, 2, 5} {
		lv.counts[it] = 3
		lv.touched = append(lv.touched, it)
	}
	m.enumerate(lv, 3, nil)
	col := m.sink.(*mining.Collector)
	if len(col.Patterns) != 7 {
		t.Fatalf("enumerated %d patterns, want 7", len(col.Patterns))
	}
	set, err := col.Set()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range set {
		if p.Support != 3 {
			t.Fatalf("support %d, want 3", p.Support)
		}
	}
}
