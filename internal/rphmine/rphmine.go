// Package rphmine adapts H-Mine to compressed databases — the paper's
// Recycle-HM (Section 4.1, Figures 4-8).
//
// The compressed database is held in an RP-Struct: one flat item arena
// containing every group pattern, group tail, and loose tuple exactly once.
// Projected databases are never materialized as fresh tuple storage; all
// views are (offset, end) spans into the arena, and each recursion level is
// an RP-header table whose entries carry the paper's two kinds of chains:
//
//   - group-links: a whole group sits in the queue of the first unprocessed
//     item of its pattern. When that item is mined, one queue entry stands
//     for every member tuple (the group count supplies their support).
//   - item-links: a group tail (or loose tuple) sits in the queue of its own
//     first unprocessed item, so members reach projections of items that
//     precede — or interleave with — the group pattern's items.
//
// Walking items in F-list order and relinking entries to their next item
// after each step maintains the H-Mine invariant: when item i is processed,
// its queues hold exactly the i-projected compressed database. Members that
// qualify through their tails are re-grouped under a per-group counter
// (Example 1's "associate group fgc with a counter"), so counting in deeper
// projections still touches each group pattern once.
package rphmine

import (
	"context"
	"slices"

	"gogreen/internal/core"
	"gogreen/internal/dataset"
	"gogreen/internal/mining"
)

// Miner mines compressed databases with the Recycle-HM algorithm.
type Miner struct{}

// New returns a Recycle-HM engine.
func New() Miner { return Miner{} }

// Name implements core.CDBMiner.
func (Miner) Name() string { return "rp-hmine" }

// span is a view into the item arena.
type span struct{ off, end int32 }

func (s span) empty() bool { return s.off >= s.end }

// wg is a group instance within one projected database: the remaining
// pattern items, the member count, and the members' remaining tails (a
// region of the owning level's span list). All fields are indices — levels
// are pointer-free, which keeps the garbage collector out of the hot path.
type wg struct {
	suffix span
	head   int32 // arena index of the current group-link queue item
	count  int32
	tOff   int32 // first tail span in level.spans
	tNum   int32 // number of tail spans
	// Projection scratch: generation tag, child-wg slot, and member/tail
	// counters for re-grouping members reached through item-links.
	mark   int32
	slot   int32
	cCount int32
	cTails int32
}

// tailRef is an item-link queue entry: one member tuple reached through its
// tail, carrying the remaining tail span and its owning group (-1 for a
// loose tuple).
type tailRef struct {
	wgIdx int32
	s     span
}

// level is one RP-header table: the projected database's group instances,
// loose tuples, support counts, and the group-link/item-link queues.
type level struct {
	wgs     []wg
	spans   []span // tail spans referenced by wgs
	loose   []span
	counts  []int
	touched []dataset.Item
	gq      [][]int32   // group-links per item
	tq      [][]tailRef // item-links per item
}

// MineCDB implements core.CDBMiner.
func (Miner) MineCDB(cdb *core.CDB, minCount int, sink mining.Sink) error {
	return mineCDB(cdb, minCount, sink, nil)
}

// MineCDBContext implements core.ContextCDBMiner: like MineCDB, but aborts
// promptly (checked at every node of the RP-header recursion) when ctx is
// cancelled or times out.
func (Miner) MineCDBContext(c context.Context, cdb *core.CDB, minCount int, sink mining.Sink) error {
	cancel := mining.NewCanceller(c, 0)
	if err := cancel.Err(); err != nil {
		return err
	}
	if err := mineCDB(cdb, minCount, sink, cancel); err != nil {
		return err
	}
	return cancel.Err()
}

func mineCDB(cdb *core.CDB, minCount int, sink mining.Sink, cancel *mining.Canceller) error {
	if minCount < 1 {
		return mining.ErrBadMinSupport
	}
	flist := cdb.FList(minCount)
	if flist.Len() == 0 {
		return nil
	}
	blocks, loose := core.EncodeCDB(cdb, flist)
	return mineEncoded(blocks, loose, flist, nil, minCount, sink, cancel)
}

// MineEncoded mines an already rank-encoded (projected) compressed database
// whose patterns all extend prefix (in rank space). Used by the
// memory-limited driver to mine disk partitions with the Recycle-HM engine.
func (Miner) MineEncoded(blocks []core.Block, loose [][]dataset.Item, flist *mining.FList, prefix []dataset.Item, minCount int, sink mining.Sink) error {
	return mineEncoded(blocks, loose, flist, prefix, minCount, sink, nil)
}

// MineEncodedContext is MineEncoded with cooperative cancellation: the
// RP-header recursion aborts promptly when ctx is cancelled or times out,
// returning the context's error. Used by the parallel CDB wrapper, whose
// workers each mine one independent projected subtree under the caller's
// context (a Canceller is not goroutine-safe, so every subtree gets its own).
func (Miner) MineEncodedContext(c context.Context, blocks []core.Block, loose [][]dataset.Item, flist *mining.FList, prefix []dataset.Item, minCount int, sink mining.Sink) error {
	cancel := mining.NewCanceller(c, 0)
	if err := cancel.Err(); err != nil {
		return err
	}
	if err := mineEncoded(blocks, loose, flist, prefix, minCount, sink, cancel); err != nil {
		return err
	}
	return cancel.Err()
}

// NewScratch implements the parallel wrapper's pooled-miner contract: the
// returned value holds the engine's reusable working memory (arena, level
// pool, decode and prefix buffers) and may be threaded through consecutive
// MineEncodedScratch calls by a single goroutine.
func (Miner) NewScratch() any { return &ctx{} }

// MineEncodedScratch is MineEncodedContext mining through sc's recycled
// buffers (sc must come from NewScratch). All calls reusing one scratch
// should pass the same F-list; a width change resets the pooled tables.
func (Miner) MineEncodedScratch(c context.Context, sc any, blocks []core.Block, loose [][]dataset.Item, flist *mining.FList, prefix []dataset.Item, minCount int, sink mining.Sink) error {
	cancel := mining.NewCanceller(c, 0)
	if err := cancel.Err(); err != nil {
		return err
	}
	if err := mineEncodedInto(sc.(*ctx), blocks, loose, flist, prefix, minCount, sink, cancel); err != nil {
		return err
	}
	return cancel.Err()
}

func mineEncoded(blocks []core.Block, loose [][]dataset.Item, flist *mining.FList, prefix []dataset.Item, minCount int, sink mining.Sink, cancel *mining.Canceller) error {
	return mineEncodedInto(&ctx{}, blocks, loose, flist, prefix, minCount, sink, cancel)
}

func mineEncodedInto(m *ctx, blocks []core.Block, loose [][]dataset.Item, flist *mining.FList, prefix []dataset.Item, minCount int, sink mining.Sink, cancel *mining.Canceller) error {
	if minCount < 1 {
		return mining.ErrBadMinSupport
	}
	m.reset(flist, minCount, sink, cancel)
	// Build the RP-Struct arena: one copy of every suffix, tail, and loose
	// tuple.
	root := m.getLevel()
	put := func(items []dataset.Item) span {
		off := int32(len(m.arena))
		m.arena = append(m.arena, items...)
		return span{off, int32(len(m.arena))}
	}
	for _, b := range blocks {
		g := wg{suffix: put(b.Suffix), count: int32(b.Count), tOff: int32(len(root.spans)), mark: -1}
		for _, tail := range b.Tails {
			root.spans = append(root.spans, put(tail))
		}
		g.tNum = int32(len(root.spans)) - g.tOff
		root.wgs = append(root.wgs, g)
	}
	for _, t := range loose {
		root.loose = append(root.loose, put(t))
	}
	m.mine(root, append(m.prefix[:0], prefix...))
	m.putLevel(root)
	m.sink, m.cancel = nil, nil // do not retain per-call state past the call
	return nil
}

type ctx struct {
	arena   []dataset.Item
	flist   *mining.FList
	min     int
	sink    mining.Sink
	decoded []dataset.Item
	pool    []*level
	prefix  []dataset.Item // prefix scratch, reused across calls
	enumBuf []dataset.Item // enumeration scratch, reused across calls
	enumIts []dataset.Item
	cancel  *mining.Canceller // nil when mining without a context
}

// reset rebinds the per-call fields, keeping the pooled buffers when the
// F-list width is unchanged (the parallel steady path) and rebuilding them
// otherwise.
func (m *ctx) reset(flist *mining.FList, minCount int, sink mining.Sink, cancel *mining.Canceller) {
	n := flist.Len()
	if cap(m.decoded) < n {
		m.decoded = make([]dataset.Item, n)
		m.pool = nil // pooled levels are width-sized
	} else {
		m.decoded = m.decoded[:n]
		for _, l := range m.pool {
			if len(l.counts) < n {
				m.pool = nil
				break
			}
		}
	}
	if cap(m.prefix) < n+1 {
		m.prefix = make([]dataset.Item, 0, n+1)
	}
	if cap(m.enumBuf) < n+1 {
		m.enumBuf = make([]dataset.Item, 0, n+1)
	}
	m.arena = m.arena[:0]
	m.flist, m.min, m.sink, m.cancel = flist, minCount, sink, cancel
}

func (m *ctx) getLevel() *level {
	if n := len(m.pool); n > 0 {
		l := m.pool[n-1]
		m.pool = m.pool[:n-1]
		return l
	}
	n := m.flist.Len()
	return &level{counts: make([]int, n), gq: make([][]int32, n), tq: make([][]tailRef, n)}
}

func (m *ctx) putLevel(l *level) {
	for _, it := range l.touched {
		l.counts[it] = 0
		l.gq[it] = l.gq[it][:0]
		l.tq[it] = l.tq[it][:0]
	}
	l.touched = l.touched[:0]
	l.wgs = l.wgs[:0]
	l.spans = l.spans[:0]
	l.loose = l.loose[:0]
	m.pool = append(m.pool, l)
}

func (m *ctx) emit(prefix []dataset.Item, support int) {
	m.sink.Emit(m.flist.DecodeInto(m.decoded, prefix), support)
}

// mine processes one projected compressed database held in lv.
func (m *ctx) mine(lv *level, prefix []dataset.Item) {
	// Cooperative cancellation, one cheap check per recursion node.
	if m.cancel.Check() != nil {
		return
	}
	// Fill the RP-header table: one pass over the structure. Group patterns
	// are touched once, contributing their count to each item — the first
	// saving of Section 3.1.
	arena := m.arena
	bump := func(it dataset.Item, by int) {
		if lv.counts[it] == 0 {
			lv.touched = append(lv.touched, it)
		}
		lv.counts[it] += by
	}
	for i := range lv.wgs {
		g := &lv.wgs[i]
		for _, it := range arena[g.suffix.off:g.suffix.end] {
			bump(it, int(g.count))
		}
		for _, ts := range lv.spans[g.tOff : g.tOff+g.tNum] {
			for _, it := range arena[ts.off:ts.end] {
				bump(it, 1)
			}
		}
	}
	for _, ls := range lv.loose {
		for _, it := range arena[ls.off:ls.end] {
			bump(it, 1)
		}
	}
	slices.Sort(lv.touched)

	nFreq := 0
	for _, it := range lv.touched {
		if lv.counts[it] >= m.min {
			nFreq++
		}
	}
	if nFreq == 0 {
		return
	}

	// Lemma 3.1: every frequent item inside a single group's pattern, with
	// no occurrences elsewhere — finish by enumeration.
	if g := m.singleGroup(lv); g != nil {
		m.enumerate(lv, int(g.count), prefix)
		return
	}

	// Build the chains: group-links under the first frequent pattern item,
	// item-links under each tail's or loose tuple's first frequent item
	// (Figure 7).
	for i := range lv.wgs {
		g := &lv.wgs[i]
		g.head = m.nextAt(g.suffix.off, g.suffix.end, lv.counts)
		if g.head < g.suffix.end {
			it := arena[g.head]
			lv.gq[it] = append(lv.gq[it], int32(i))
		}
		for _, ts := range lv.spans[g.tOff : g.tOff+g.tNum] {
			if p := m.nextAt(ts.off, ts.end, lv.counts); p < ts.end {
				it := arena[p]
				lv.tq[it] = append(lv.tq[it], tailRef{wgIdx: int32(i), s: span{p, ts.end}})
			}
		}
	}
	for _, ls := range lv.loose {
		if p := m.nextAt(ls.off, ls.end, lv.counts); p < ls.end {
			it := arena[p]
			lv.tq[it] = append(lv.tq[it], tailRef{wgIdx: -1, s: span{p, ls.end}})
		}
	}

	// Walk frequent items in F-list order; each queue state is exactly the
	// item's projected compressed database (Figure 8).
	prefix = append(prefix, 0)
	for ti := 0; ti < len(lv.touched); ti++ {
		if m.cancel.Check() != nil {
			return
		}
		r := lv.touched[ti]
		if lv.counts[r] < m.min {
			continue
		}
		prefix[len(prefix)-1] = r
		m.emit(prefix, lv.counts[r])

		child := m.getLevel()

		// Whole groups whose next pattern item is r: every member is in the
		// r-projection; one check classifies the group (second saving).
		for _, gi := range lv.gq[r] {
			g := &lv.wgs[gi]
			sub := wg{
				suffix: span{g.head + 1, g.suffix.end},
				count:  g.count,
				tOff:   int32(len(child.spans)),
				mark:   -1,
			}
			for _, ts := range lv.spans[g.tOff : g.tOff+g.tNum] {
				if nt := m.spanAfter(ts, r); !nt.empty() {
					if sub.suffix.empty() {
						child.loose = append(child.loose, nt)
					} else {
						child.spans = append(child.spans, nt)
					}
				}
			}
			if !sub.suffix.empty() {
				sub.tNum = int32(len(child.spans)) - sub.tOff
				child.wgs = append(child.wgs, sub)
			}
		}

		// Members reached through item-links: re-group per parent under a
		// counter, so the group pattern is still stored and counted once.
		// Pass 1 sizes each re-group; pass 2 fills its tail region.
		markGen := int32(r) + 1
		for _, tr := range lv.tq[r] {
			if tr.wgIdx < 0 {
				continue
			}
			p := &lv.wgs[tr.wgIdx]
			if p.mark != markGen {
				p.mark = markGen
				p.slot = -1
				p.cCount, p.cTails = 0, 0
			}
			p.cCount++
			if !(span{tr.s.off + 1, tr.s.end}).empty() {
				p.cTails++
			}
		}
		for _, tr := range lv.tq[r] {
			nt := span{tr.s.off + 1, tr.s.end}
			if tr.wgIdx < 0 {
				if !nt.empty() {
					child.loose = append(child.loose, nt)
				}
				continue
			}
			p := &lv.wgs[tr.wgIdx]
			if p.slot == -1 {
				// First member of this parent: materialize the re-group.
				suf := m.spanAfter(p.suffix, r)
				if suf.empty() {
					p.slot = -2 // members degrade to loose tuples
				} else {
					p.slot = int32(len(child.wgs))
					sub := wg{
						suffix: suf,
						count:  p.cCount,
						tOff:   int32(len(child.spans)),
						tNum:   0,
						mark:   -1,
					}
					// Reserve the tail region now; fill below.
					for k := int32(0); k < p.cTails; k++ {
						child.spans = append(child.spans, span{})
					}
					child.wgs = append(child.wgs, sub)
				}
			}
			if p.slot == -2 {
				if !nt.empty() {
					child.loose = append(child.loose, nt)
				}
				continue
			}
			if !nt.empty() {
				sub := &child.wgs[p.slot]
				child.spans[sub.tOff+sub.tNum] = nt
				sub.tNum++
			}
		}

		if len(child.wgs) > 0 || len(child.loose) > 0 {
			m.mine(child, prefix)
		}
		m.putLevel(child)

		// Relink every entry of r's queues to its next frequent item
		// (Figure 8 lines 9-12 / Figure 7).
		for _, gi := range lv.gq[r] {
			g := &lv.wgs[gi]
			g.head = m.nextAt(g.head+1, g.suffix.end, lv.counts)
			if g.head < g.suffix.end {
				it := arena[g.head]
				lv.gq[it] = append(lv.gq[it], gi)
			}
		}
		lv.gq[r] = lv.gq[r][:0]
		for _, tr := range lv.tq[r] {
			if p := m.nextAt(tr.s.off+1, tr.s.end, lv.counts); p < tr.s.end {
				it := arena[p]
				lv.tq[it] = append(lv.tq[it], tailRef{wgIdx: tr.wgIdx, s: span{p, tr.s.end}})
			}
		}
		lv.tq[r] = lv.tq[r][:0]
	}
}

// singleGroup returns the unique group holding every frequent occurrence
// (counts[f] == g.count and f in g.suffix for all frequent f), or nil.
func (m *ctx) singleGroup(lv *level) *wg {
	var f0 dataset.Item = -1
	for _, it := range lv.touched {
		if lv.counts[it] >= m.min {
			f0 = it
			break
		}
	}
	for i := range lv.wgs {
		g := &lv.wgs[i]
		if m.spanIdx(g.suffix, f0) < 0 {
			continue
		}
		for _, f := range lv.touched {
			if lv.counts[f] < m.min {
				continue
			}
			if lv.counts[f] != int(g.count) || m.spanIdx(g.suffix, f) < 0 {
				return nil
			}
		}
		return g
	}
	return nil
}

// enumerate emits every combination of the frequent items at the given
// support (Lemma 3.1).
func (m *ctx) enumerate(lv *level, support int, prefix []dataset.Item) {
	items := m.enumIts[:0]
	for _, it := range lv.touched {
		if lv.counts[it] >= m.min {
			items = append(items, it)
		}
	}
	m.enumIts = items
	n := len(items)
	if n > 62 {
		panic("rphmine: single-group enumeration over more than 62 items")
	}
	base := len(prefix)
	buf := append(m.enumBuf[:0], prefix...)
	for mask := uint64(1); mask < 1<<uint(n); mask++ {
		// The enumeration can cover up to 2^62 patterns, so it must honor
		// cancellation like the recursion proper.
		if m.cancel.Check() != nil {
			return
		}
		buf = buf[:base]
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				buf = append(buf, items[i])
			}
		}
		m.emit(buf, support)
	}
}

// nextAt returns the first arena index in [from, end) holding a frequent
// item, or end.
func (m *ctx) nextAt(from, end int32, counts []int) int32 {
	for ; from < end; from++ {
		if counts[m.arena[from]] >= m.min {
			return from
		}
	}
	return from
}

// spanIdx returns the arena index of r within the sorted span, or -1.
func (m *ctx) spanIdx(s span, r dataset.Item) int32 {
	lo, hi := s.off, s.end
	for lo < hi {
		mid := (lo + hi) / 2
		if m.arena[mid] < r {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < s.end && m.arena[lo] == r {
		return lo
	}
	return -1
}

// spanAfter returns the sub-span of sorted s with items strictly greater
// than r.
func (m *ctx) spanAfter(s span, r dataset.Item) span {
	lo, hi := s.off, s.end
	for lo < hi {
		mid := (lo + hi) / 2
		if m.arena[mid] <= r {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return span{lo, s.end}
}
