package memlimit

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"

	"gogreen/internal/core"
	"gogreen/internal/dataset"
)

// Partition spill format: a sequence of varint-encoded records.
//
//	tuple record:  tag 0, item count, items
//	block record:  tag 1, suffix length, suffix items, member count,
//	               tail count, then per tail: length, items
//
// Items are written as deltas within a record (they are sorted), keeping
// files small. The format is internal to one run; no cross-version
// stability is promised.

const (
	tagTuple = 0
	tagBlock = 1
)

// ErrCorruptPartition reports a malformed spill file.
var ErrCorruptPartition = errors.New("memlimit: corrupt partition file")

type partWriter struct {
	f *os.File
	w *bufio.Writer
	// err is sticky: the first failed write poisons the writer, later
	// writes are dropped, and every record method reports it — so a
	// disk-full surfaces at the record that hit it, not at closeFlush
	// after a run of silently truncated records.
	err error
	buf [binary.MaxVarintLen64]byte
}

func newPartWriter(path string) (*partWriter, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("memlimit: %w", err)
	}
	// Small buffers: many partitions may be open at once and the buffers
	// must not blow the memory budget themselves.
	return &partWriter{f: f, w: bufio.NewWriterSize(f, 4096)}, nil
}

func (p *partWriter) uvarint(v uint64) {
	if p.err != nil {
		return
	}
	n := binary.PutUvarint(p.buf[:], v)
	if _, err := p.w.Write(p.buf[:n]); err != nil {
		p.err = fmt.Errorf("memlimit: spill write: %w", err)
	}
}

func (p *partWriter) items(items []dataset.Item) {
	p.uvarint(uint64(len(items)))
	prev := dataset.Item(0)
	for _, it := range items {
		p.uvarint(uint64(it - prev))
		prev = it
	}
}

// writeTuple appends one plain tuple record and reports the writer's
// sticky error.
func (p *partWriter) writeTuple(t []dataset.Item) error {
	p.uvarint(tagTuple)
	p.items(t)
	return p.err
}

// writeProjectedBlock streams the r-projection of one block where r is a
// pattern item (Definition 3.2 lifted to blocks: every member qualifies),
// without materializing intermediate slices. A block whose remaining pattern
// empties degrades into tuple records. Tail-item projections go through
// writeBucketedBlock instead.
func (p *partWriter) writeProjectedBlock(b *core.Block, r dataset.Item) error {
	newSuffix := itemsAfter(b.Suffix, r)
	if b.Count == 0 {
		return p.err
	}
	if len(newSuffix) == 0 {
		// Degenerate: members reduce to their tails.
		for _, t := range b.Tails {
			if nt := itemsAfter(t, r); len(nt) > 0 {
				p.writeTuple(nt)
			}
		}
		return p.err
	}

	// Pass 1: non-empty-tail count; pass 2: the block record.
	nTails := 0
	for _, t := range b.Tails {
		if len(itemsAfter(t, r)) > 0 {
			nTails++
		}
	}
	p.uvarint(tagBlock)
	p.items(newSuffix)
	p.uvarint(uint64(b.Count))
	p.uvarint(uint64(nTails))
	for _, t := range b.Tails {
		if nt := itemsAfter(t, r); len(nt) > 0 {
			p.items(nt)
		}
	}
	return p.err
}

// writeBucketedBlock streams the r-projection of a block whose qualifying
// members are already known (tail indexes in members; r is a tail item, not
// a pattern item). Mirrors writeProjectedBlock's degenerate handling.
func (p *partWriter) writeBucketedBlock(b *core.Block, r dataset.Item, members []int32) error {
	if len(members) == 0 {
		return p.err
	}
	newSuffix := itemsAfter(b.Suffix, r)
	if len(newSuffix) == 0 {
		for _, ti := range members {
			if nt := itemsAfter(b.Tails[ti], r); len(nt) > 0 {
				p.writeTuple(nt)
			}
		}
		return p.err
	}
	nTails := 0
	for _, ti := range members {
		if len(itemsAfter(b.Tails[ti], r)) > 0 {
			nTails++
		}
	}
	p.uvarint(tagBlock)
	p.items(newSuffix)
	p.uvarint(uint64(len(members)))
	p.uvarint(uint64(nTails))
	for _, ti := range members {
		if nt := itemsAfter(b.Tails[ti], r); len(nt) > 0 {
			p.items(nt)
		}
	}
	return p.err
}

// itemsAfter returns the subslice of sorted s strictly greater than r
// (shared backing array, no allocation).
func itemsAfter(s []dataset.Item, r dataset.Item) []dataset.Item {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := (lo + hi) / 2
		if s[mid] <= r {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return s[lo:]
}

func (p *partWriter) closeFlush() error {
	if p.err != nil {
		p.f.Close()
		return p.err
	}
	if err := p.w.Flush(); err != nil {
		p.f.Close()
		return fmt.Errorf("memlimit: flush: %w", err)
	}
	if err := p.f.Close(); err != nil {
		return fmt.Errorf("memlimit: close: %w", err)
	}
	return nil
}

// abortParts closes and deletes every partition of a failed spill pass and
// returns err — a failing disk must not leave half-written partitions (or
// open file handles) behind.
func abortParts(writers map[dataset.Item]*partWriter, paths map[dataset.Item]string, err error) error {
	for _, w := range writers {
		w.f.Close()
	}
	for _, p := range paths {
		os.Remove(p)
	}
	return err
}

type partReader struct {
	r io.ByteReader
}

// asByteReader adapts any reader for the varint decoder without double
// buffering the common *bufio.Reader case.
func asByteReader(r io.Reader) io.ByteReader {
	if br, ok := r.(io.ByteReader); ok {
		return br
	}
	return bufio.NewReader(r)
}

func (p *partReader) uvarint() (uint64, error) {
	return binary.ReadUvarint(p.r)
}

func (p *partReader) items() ([]dataset.Item, error) {
	n, err := p.uvarint()
	if err != nil {
		return nil, err
	}
	if n > 1<<24 {
		return nil, ErrCorruptPartition
	}
	out := make([]dataset.Item, n)
	prev := uint64(0)
	for i := range out {
		d, err := p.uvarint()
		if err != nil {
			return nil, errTruncated(err)
		}
		prev += d
		if prev >= 1<<31 { // must fit a positive int32 dataset.Item
			return nil, ErrCorruptPartition
		}
		out[i] = dataset.Item(prev)
	}
	return out, nil
}

func errTruncated(err error) error {
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return ErrCorruptPartition
	}
	return err
}

// readTxPart loads a plain-tuple partition.
func readTxPart(path string) ([][]dataset.Item, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("memlimit: %w", err)
	}
	defer f.Close()
	return readTxRecords(bufio.NewReaderSize(f, 1<<16))
}

// readTxRecords decodes a plain-tuple record stream. Split from the path
// wrapper so the decoder can be fuzzed on raw bytes.
func readTxRecords(r io.Reader) ([][]dataset.Item, error) {
	p := &partReader{r: asByteReader(r)}
	var out [][]dataset.Item
	for {
		tag, err := p.uvarint()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, errTruncated(err)
		}
		if tag != tagTuple {
			return nil, ErrCorruptPartition
		}
		t, err := p.items()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
}

// readCDBPart loads a compressed partition.
func readCDBPart(path string) ([]core.Block, [][]dataset.Item, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, fmt.Errorf("memlimit: %w", err)
	}
	defer f.Close()
	return readCDBRecords(bufio.NewReaderSize(f, 1<<16))
}

// readCDBRecords decodes a compressed-partition record stream. Split from
// the path wrapper so the decoder can be fuzzed on raw bytes.
func readCDBRecords(r io.Reader) ([]core.Block, [][]dataset.Item, error) {
	p := &partReader{r: asByteReader(r)}
	var blocks []core.Block
	var loose [][]dataset.Item
	for {
		tag, err := p.uvarint()
		if err == io.EOF {
			return blocks, loose, nil
		}
		if err != nil {
			return nil, nil, errTruncated(err)
		}
		switch tag {
		case tagTuple:
			t, err := p.items()
			if err != nil {
				return nil, nil, err
			}
			loose = append(loose, t)
		case tagBlock:
			suffix, err := p.items()
			if err != nil {
				return nil, nil, err
			}
			count, err := p.uvarint()
			if err != nil {
				return nil, nil, errTruncated(err)
			}
			nTails, err := p.uvarint()
			if err != nil {
				return nil, nil, errTruncated(err)
			}
			if nTails > count || count > 1<<40 {
				return nil, nil, ErrCorruptPartition
			}
			b := core.Block{Suffix: suffix, Count: int(count)}
			for i := uint64(0); i < nTails; i++ {
				t, err := p.items()
				if err != nil {
					return nil, nil, err
				}
				b.Tails = append(b.Tails, t)
			}
			blocks = append(blocks, b)
		default:
			return nil, nil, ErrCorruptPartition
		}
	}
}
