package memlimit

import (
	"bufio"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"gogreen/internal/core"
	"gogreen/internal/dataset"
)

// TestSpillRoundTrip writes blocks and tuples and reads them back.
func TestSpillRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "part.bin")
	w, err := newPartWriter(path)
	if err != nil {
		t.Fatal(err)
	}
	b := core.Block{
		Suffix: []dataset.Item{2, 5, 9},
		Count:  4,
		Tails:  [][]dataset.Item{{1, 3}, {4}, {6, 7, 8}},
	}
	// Projection on suffix item 2: suffix {5,9}, all four members.
	w.writeProjectedBlock(&b, 2)
	// Projection on tail item 3: one member ({1,3} -> tail {} after 3).
	w.writeBucketedBlock(&b, 3, []int32{0})
	w.writeTuple([]dataset.Item{10, 20})
	if err := w.closeFlush(); err != nil {
		t.Fatal(err)
	}

	blocks, loose, err := readCDBPart(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 2 || len(loose) != 1 {
		t.Fatalf("got %d blocks, %d loose", len(blocks), len(loose))
	}
	if blocks[0].Count != 4 || len(blocks[0].Suffix) != 2 || len(blocks[0].Tails) != 3 {
		t.Errorf("block 0 = %+v", blocks[0])
	}
	if blocks[1].Count != 1 || len(blocks[1].Tails) != 0 {
		t.Errorf("block 1 = %+v", blocks[1])
	}
	if loose[0][0] != 10 || loose[0][1] != 20 {
		t.Errorf("loose = %v", loose)
	}
}

// TestSpillDegenerateBlock: projecting past the last pattern item writes
// tuple records instead of a block.
func TestSpillDegenerateBlock(t *testing.T) {
	path := filepath.Join(t.TempDir(), "part.bin")
	w, err := newPartWriter(path)
	if err != nil {
		t.Fatal(err)
	}
	b := core.Block{Suffix: []dataset.Item{2}, Count: 2, Tails: [][]dataset.Item{{5, 6}, {1}}}
	w.writeProjectedBlock(&b, 2) // suffix empties
	if err := w.closeFlush(); err != nil {
		t.Fatal(err)
	}
	blocks, loose, err := readCDBPart(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tail {1} empties after item 2; only {5,6} survives.
	if len(blocks) != 0 || len(loose) != 1 || len(loose[0]) != 2 {
		t.Fatalf("blocks=%v loose=%v", blocks, loose)
	}
}

// failAfter fails every Write once n bytes have been accepted.
type failAfter struct {
	n   int
	err error
}

func (f *failAfter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, f.err
	}
	if len(p) > f.n {
		n := f.n
		f.n = 0
		return n, f.err
	}
	f.n -= len(p)
	return len(p), nil
}

// TestSpillWriteErrorSticky: a failing disk mid-spill poisons the writer —
// the record that hits the failure reports it, every later record reports
// it too (instead of silently truncating the partition), and closeFlush
// returns the original error.
func TestSpillWriteErrorSticky(t *testing.T) {
	path := filepath.Join(t.TempDir(), "part.bin")
	w, err := newPartWriter(path)
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("disk full")
	// Tiny buffer over the failing device so errors surface per record, the
	// same shape newPartWriter builds over the real file.
	w.w = bufio.NewWriterSize(&failAfter{n: 8, err: boom}, 4)

	long := make([]dataset.Item, 64)
	for i := range long {
		long[i] = dataset.Item(i + 1)
	}
	if err := w.writeTuple(long); !errors.Is(err, boom) {
		t.Fatalf("writeTuple over full disk = %v, want %v", err, boom)
	}
	// Sticky: subsequent records fail fast without touching the device.
	b := core.Block{Suffix: []dataset.Item{2, 5}, Count: 1, Tails: [][]dataset.Item{{3}}}
	if err := w.writeProjectedBlock(&b, 2); !errors.Is(err, boom) {
		t.Fatalf("writeProjectedBlock after poison = %v, want %v", err, boom)
	}
	if err := w.writeBucketedBlock(&b, 3, []int32{0}); !errors.Is(err, boom) {
		t.Fatalf("writeBucketedBlock after poison = %v, want %v", err, boom)
	}
	if err := w.closeFlush(); !errors.Is(err, boom) {
		t.Fatalf("closeFlush after poison = %v, want %v", err, boom)
	}
}

// TestSpillCorruption: truncated and garbage files surface
// ErrCorruptPartition rather than bad data or panics.
func TestSpillCorruption(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		name string
		data []byte
	}{
		{"bad tag", []byte{7}},
		{"truncated tuple", []byte{0, 3, 1}},
		{"truncated block", []byte{1, 2, 1, 1}},
		{"huge count", []byte{0, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			path := filepath.Join(dir, c.name)
			if err := os.WriteFile(path, c.data, 0o644); err != nil {
				t.Fatal(err)
			}
			if _, _, err := readCDBPart(path); !errors.Is(err, ErrCorruptPartition) {
				t.Errorf("readCDBPart: err = %v, want ErrCorruptPartition", err)
			}
			if _, err := readTxPart(path); !errors.Is(err, ErrCorruptPartition) {
				t.Errorf("readTxPart: err = %v, want ErrCorruptPartition", err)
			}
		})
	}
	if _, _, err := readCDBPart(filepath.Join(dir, "missing")); err == nil {
		t.Error("missing file should error")
	}
}
