package memlimit

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"gogreen/internal/core"
	"gogreen/internal/dataset"
)

// TestSpillRoundTrip writes blocks and tuples and reads them back.
func TestSpillRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "part.bin")
	w, err := newPartWriter(path)
	if err != nil {
		t.Fatal(err)
	}
	b := core.Block{
		Suffix: []dataset.Item{2, 5, 9},
		Count:  4,
		Tails:  [][]dataset.Item{{1, 3}, {4}, {6, 7, 8}},
	}
	// Projection on suffix item 2: suffix {5,9}, all four members.
	w.writeProjectedBlock(&b, 2)
	// Projection on tail item 3: one member ({1,3} -> tail {} after 3).
	w.writeBucketedBlock(&b, 3, []int32{0})
	w.writeTuple([]dataset.Item{10, 20})
	if err := w.closeFlush(); err != nil {
		t.Fatal(err)
	}

	blocks, loose, err := readCDBPart(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 2 || len(loose) != 1 {
		t.Fatalf("got %d blocks, %d loose", len(blocks), len(loose))
	}
	if blocks[0].Count != 4 || len(blocks[0].Suffix) != 2 || len(blocks[0].Tails) != 3 {
		t.Errorf("block 0 = %+v", blocks[0])
	}
	if blocks[1].Count != 1 || len(blocks[1].Tails) != 0 {
		t.Errorf("block 1 = %+v", blocks[1])
	}
	if loose[0][0] != 10 || loose[0][1] != 20 {
		t.Errorf("loose = %v", loose)
	}
}

// TestSpillDegenerateBlock: projecting past the last pattern item writes
// tuple records instead of a block.
func TestSpillDegenerateBlock(t *testing.T) {
	path := filepath.Join(t.TempDir(), "part.bin")
	w, err := newPartWriter(path)
	if err != nil {
		t.Fatal(err)
	}
	b := core.Block{Suffix: []dataset.Item{2}, Count: 2, Tails: [][]dataset.Item{{5, 6}, {1}}}
	w.writeProjectedBlock(&b, 2) // suffix empties
	if err := w.closeFlush(); err != nil {
		t.Fatal(err)
	}
	blocks, loose, err := readCDBPart(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tail {1} empties after item 2; only {5,6} survives.
	if len(blocks) != 0 || len(loose) != 1 || len(loose[0]) != 2 {
		t.Fatalf("blocks=%v loose=%v", blocks, loose)
	}
}

// TestSpillCorruption: truncated and garbage files surface
// ErrCorruptPartition rather than bad data or panics.
func TestSpillCorruption(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		name string
		data []byte
	}{
		{"bad tag", []byte{7}},
		{"truncated tuple", []byte{0, 3, 1}},
		{"truncated block", []byte{1, 2, 1, 1}},
		{"huge count", []byte{0, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			path := filepath.Join(dir, c.name)
			if err := os.WriteFile(path, c.data, 0o644); err != nil {
				t.Fatal(err)
			}
			if _, _, err := readCDBPart(path); !errors.Is(err, ErrCorruptPartition) {
				t.Errorf("readCDBPart: err = %v, want ErrCorruptPartition", err)
			}
			if _, err := readTxPart(path); !errors.Is(err, ErrCorruptPartition) {
				t.Errorf("readTxPart: err = %v, want ErrCorruptPartition", err)
			}
		})
	}
	if _, _, err := readCDBPart(filepath.Join(dir, "missing")); err == nil {
		t.Error("missing file should error")
	}
}
