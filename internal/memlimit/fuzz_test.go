package memlimit

import (
	"bufio"
	"bytes"
	"io"
	"testing"

	"gogreen/internal/core"
	"gogreen/internal/dataset"
)

func newTestBufio(w io.Writer) *bufio.Writer { return bufio.NewWriterSize(w, 4096) }

// spillSeed serializes a representative record mix through the real writer,
// giving the fuzzers a structurally valid corpus to mutate from.
func spillSeed(t interface{ Fatal(...any) }) []byte {
	var buf bytes.Buffer
	w := &partWriter{w: newTestBufio(&buf)}
	b := core.Block{
		Suffix: []dataset.Item{2, 5, 9},
		Count:  4,
		Tails:  [][]dataset.Item{{1, 3}, {4}, {6, 7, 8}},
	}
	w.writeProjectedBlock(&b, 2)
	w.writeBucketedBlock(&b, 3, []int32{0})
	w.writeTuple([]dataset.Item{10, 20})
	deg := core.Block{Suffix: []dataset.Item{2}, Count: 2, Tails: [][]dataset.Item{{5, 6}, {1}}}
	w.writeProjectedBlock(&deg, 2)
	if err := w.w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzReadCDBRecords hammers the compressed-partition decoder with mutated
// byte streams: it must never panic or over-allocate, and whatever it
// accepts must survive a write/read round trip (the writer and reader agree
// on the format).
func FuzzReadCDBRecords(f *testing.F) {
	f.Add(spillSeed(f))
	f.Add([]byte{})
	f.Add([]byte{tagTuple, 2, 1, 1})
	f.Add([]byte{tagBlock, 1, 5, 2, 1, 1, 7})
	f.Add([]byte{7})                                      // bad tag
	f.Add([]byte{tagTuple, 3, 1})                         // truncated items
	f.Add([]byte{tagBlock, 2, 1, 1})                      // truncated block
	f.Add([]byte{tagBlock, 1, 1, 1, 0})                   // nTails > count guard boundary
	f.Add([]byte{tagTuple, 0xff, 0xff, 0xff, 0xff, 0x7f}) // huge item count
	f.Fuzz(func(t *testing.T, data []byte) {
		blocks, loose, err := readCDBRecords(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted input: re-encode what was decoded and decode again — the
		// reader's view must be a fixed point of the format.
		var buf bytes.Buffer
		w := &partWriter{w: newTestBufio(&buf)}
		for i := range blocks {
			w.uvarint(tagBlock)
			w.items(blocks[i].Suffix)
			w.uvarint(uint64(blocks[i].Count))
			w.uvarint(uint64(len(blocks[i].Tails)))
			for _, tail := range blocks[i].Tails {
				w.items(tail)
			}
		}
		for _, tuple := range loose {
			w.writeTuple(tuple)
		}
		if err := w.w.Flush(); err != nil {
			t.Fatal(err)
		}
		blocks2, loose2, err := readCDBRecords(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-read of re-encoded accepted input failed: %v", err)
		}
		if len(blocks2) != len(blocks) || len(loose2) != len(loose) {
			t.Fatalf("round trip changed shape: %d/%d blocks, %d/%d loose",
				len(blocks), len(blocks2), len(loose), len(loose2))
		}
	})
}

// FuzzReadTxRecords hammers the plain-tuple decoder the same way.
func FuzzReadTxRecords(f *testing.F) {
	var buf bytes.Buffer
	w := &partWriter{w: newTestBufio(&buf)}
	w.writeTuple([]dataset.Item{1, 2, 3})
	w.writeTuple([]dataset.Item{10})
	w.w.Flush()
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte{tagTuple, 1, 1})
	f.Add([]byte{tagBlock}) // block tag is corrupt in a tx partition
	f.Add([]byte{tagTuple, 0xff, 0xff, 0xff, 0xff, 0x7f})
	f.Fuzz(func(t *testing.T, data []byte) {
		tx, err := readTxRecords(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		w := &partWriter{w: newTestBufio(&out)}
		for _, tuple := range tx {
			w.writeTuple(tuple)
		}
		if err := w.w.Flush(); err != nil {
			t.Fatal(err)
		}
		tx2, err := readTxRecords(bytes.NewReader(out.Bytes()))
		if err != nil || len(tx2) != len(tx) {
			t.Fatalf("round trip: %v (%d vs %d tuples)", err, len(tx), len(tx2))
		}
	})
}
