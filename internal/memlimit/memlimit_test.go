package memlimit_test

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"gogreen/internal/core"
	"gogreen/internal/dataset"
	"gogreen/internal/memlimit"
	"gogreen/internal/mining"
	"gogreen/internal/testutil"
)

// mineLimited runs the memory-limited compressed miner and returns the set.
func mineLimited(t *testing.T, cdb *core.CDB, min int, budget int64, engine string) mining.PatternSet {
	t.Helper()
	var c mining.Collector
	if err := memlimit.MineCDB(cdb, min, memlimit.Config{Budget: budget, TempDir: t.TempDir(), Engine: engine}, &c); err != nil {
		t.Fatalf("MineCDB(budget=%d): %v", budget, err)
	}
	s, err := c.Set()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestTinyBudgetMatchesOracle forces deep disk partitioning by using budgets
// far below the data size; results must still match Apriori exactly.
func TestTinyBudgetMatchesOracle(t *testing.T) {
	r := rand.New(rand.NewSource(51))
	for rep := 0; rep < 8; rep++ {
		db := testutil.RandomDB(r, 30+r.Intn(80), 5+r.Intn(12), 2+r.Intn(8))
		fp := testutil.Oracle(t, db, 4).Slice()
		cdb := core.Compress(db, fp, core.MCP)
		for _, min := range []int{2, 3} {
			want := testutil.Oracle(t, db, min)
			for _, budget := range []int64{1 << 30, 4096, 512} {
				for _, engine := range []string{"rp-hmine", "rp-naive"} {
					got := mineLimited(t, cdb, min, budget, engine)
					if !got.Equal(want) {
						t.Fatalf("budget=%d engine=%s min=%d: %v",
							budget, engine, min, got.Diff(want, 10))
					}
				}
			}
		}
	}
}

// TestBaselineTinyBudget does the same for the uncompressed driver.
func TestBaselineTinyBudget(t *testing.T) {
	r := rand.New(rand.NewSource(52))
	for rep := 0; rep < 8; rep++ {
		db := testutil.RandomDB(r, 30+r.Intn(80), 5+r.Intn(12), 2+r.Intn(8))
		for _, min := range []int{2, 4} {
			want := testutil.Oracle(t, db, min)
			for _, budget := range []int64{1 << 30, 4096, 512} {
				var c mining.Collector
				err := memlimit.MineDB(db, min, memlimit.Config{Budget: budget, TempDir: t.TempDir()}, &c)
				if err != nil {
					t.Fatalf("MineDB(budget=%d): %v", budget, err)
				}
				got, err := c.Set()
				if err != nil {
					t.Fatal(err)
				}
				if !got.Equal(want) {
					t.Fatalf("budget=%d min=%d: %v", budget, min, got.Diff(want, 10))
				}
			}
		}
	}
}

// TestPaperExampleUnderLimit mines the worked example with a budget so small
// that everything spills.
func TestPaperExampleUnderLimit(t *testing.T) {
	db := testutil.PaperDB()
	fp := testutil.Oracle(t, db, 3).Slice()
	cdb := core.Compress(db, fp, core.MCP)
	want := testutil.Oracle(t, db, 2)
	got := mineLimited(t, cdb, 2, 64, "rp-hmine")
	if !got.Equal(want) {
		t.Fatalf("paper example under 64B budget: %v", got.Diff(want, 20))
	}
}

// TestBudgetTooSmall: a single unsplittable tuple cannot fit, and the error
// says so instead of looping forever.
func TestBudgetTooSmall(t *testing.T) {
	tx := make([][]dataset.Item, 10)
	for i := range tx {
		tx[i] = []dataset.Item{7}
	}
	db := dataset.New(tx)
	err := memlimit.MineDB(db, 2, memlimit.Config{Budget: 1, TempDir: t.TempDir()},
		mining.SinkFunc(func([]dataset.Item, int) {}))
	// A single-item database projects to nothing, so it either finishes
	// (items emitted at partition level) or reports the budget error; it
	// must not hang. Both outcomes are acceptable here, but an unexpected
	// error is not.
	if err != nil && err != memlimit.ErrBudgetTooSmall {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestBadMinSupport(t *testing.T) {
	db := testutil.PaperDB()
	sink := mining.SinkFunc(func([]dataset.Item, int) {})
	if err := memlimit.MineDB(db, 0, memlimit.Config{Budget: 1 << 20}, sink); err != mining.ErrBadMinSupport {
		t.Errorf("MineDB: got %v", err)
	}
	cdb := core.Compress(db, nil, core.MCP)
	if err := memlimit.MineCDB(cdb, 0, memlimit.Config{Budget: 1 << 20}, sink); err != mining.ErrBadMinSupport {
		t.Errorf("MineCDB: got %v", err)
	}
}

// TestBadTempDir surfaces spill-directory failures as errors.
func TestBadTempDir(t *testing.T) {
	db := testutil.PaperDB()
	err := memlimit.MineDB(db, 1, memlimit.Config{Budget: 1, TempDir: filepath.Join(t.TempDir(), "missing", "nested")},
		mining.SinkFunc(func([]dataset.Item, int) {}))
	if err == nil {
		t.Fatal("expected error for unusable temp dir")
	}
}

// TestTempDirCleanup: no partition files survive a run.
func TestTempDirCleanup(t *testing.T) {
	dir := t.TempDir()
	db := testutil.PaperDB()
	fp := testutil.Oracle(t, db, 3).Slice()
	cdb := core.Compress(db, fp, core.MCP)
	var c mining.Collector
	if err := memlimit.MineCDB(cdb, 1, memlimit.Config{Budget: 64, TempDir: dir}, &c); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Errorf("temp dir not cleaned: %d entries left", len(entries))
	}
}
