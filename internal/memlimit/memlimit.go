// Package memlimit implements mining under a memory budget (Section 5.3 and
// Figure 3 lines 1-6 of the paper): when the (compressed) database does not
// fit in the available memory, it is parallel-projected onto its frequent
// items — every tuple written to the partition of every frequent item it
// contains — and each partition is mined recursively, going back to disk
// again if a partition itself exceeds the budget.
//
// Two drivers are provided, matching the paper's figures 21-24: MineCDB for
// the recycling algorithms (partitions hold projected compressed databases)
// and MineDB for the H-Mine baseline (partitions hold plain projected
// databases). Both estimate memory from the same cost model, so the budget
// comparison is apples-to-apples.
package memlimit

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"gogreen/internal/core"
	"gogreen/internal/dataset"
	"gogreen/internal/hmine"
	"gogreen/internal/mining"
	"gogreen/internal/rphmine"
)

// ErrBudgetTooSmall is returned when even a single partition cannot be made
// to fit the budget (the projection stopped shrinking).
var ErrBudgetTooSmall = errors.New("memlimit: memory budget too small to mine any partition")

// Config drives a memory-limited mining run.
type Config struct {
	// Budget is the in-memory structure budget in bytes (the paper uses
	// 4 MB and 8 MB).
	Budget int64
	// TempDir is the directory for partition spill files; "" means the
	// system temp dir.
	TempDir string
	// Engine selects the leaf miner for compressed partitions: "rp-hmine"
	// (default) or "rp-naive".
	Engine string
}

// bytesPerItem is the in-memory cost of one stored item cell (the item
// itself plus its share of slice and suffix bookkeeping).
const bytesPerItem = 8

// tupleOverhead is the per-tuple structure overhead (slice header + suffix
// pointer entry).
const tupleOverhead = 32

// EstimateTxBytes models the in-memory footprint of a plain projected
// database (H-Mine structures over the given suffixes).
func EstimateTxBytes(tx [][]dataset.Item) int64 {
	var items int64
	for _, t := range tx {
		items += int64(len(t))
	}
	return items*bytesPerItem + int64(len(tx))*tupleOverhead
}

// EstimatePatternBytes models the in-memory footprint of a materialized
// frequent-pattern set (item slices plus per-pattern bookkeeping) with the
// same cost model as the database estimators, so the lattice cache's byte
// budget and the mining budget are denominated identically.
func EstimatePatternBytes(fp []mining.Pattern) int64 {
	var items int64
	for i := range fp {
		items += int64(len(fp[i].Items))
	}
	return EstimatePatternBytesFromCounts(len(fp), items)
}

// EstimatePatternBytesFromCounts is EstimatePatternBytes from the two counts
// alone — for callers restoring quota accounting from stored metadata (the
// durable pattern store indexes pattern and item counts without loading the
// patterns themselves).
func EstimatePatternBytesFromCounts(patterns int, items int64) int64 {
	return items*bytesPerItem + int64(patterns)*tupleOverhead
}

// EstimateCDBBytes models the in-memory footprint of an encoded compressed
// database (RP-Struct arena, spans, and per-block bookkeeping).
func EstimateCDBBytes(blocks []core.Block, loose [][]dataset.Item) int64 {
	var items, tuples int64
	for i := range blocks {
		b := &blocks[i]
		items += int64(len(b.Suffix))
		tuples++ // block head
		for _, t := range b.Tails {
			items += int64(len(t))
			tuples++
		}
	}
	for _, t := range loose {
		items += int64(len(t))
		tuples++
	}
	return items*bytesPerItem + tuples*tupleOverhead
}

// MineCDB mines a compressed database under the memory budget: in memory
// when it fits, via recursive disk partitioning otherwise.
func MineCDB(cdb *core.CDB, minCount int, cfg Config, sink mining.Sink) error {
	if minCount < 1 {
		return mining.ErrBadMinSupport
	}
	flist := cdb.FList(minCount)
	if flist.Len() == 0 {
		return nil
	}
	blocks, loose := core.EncodeCDB(cdb, flist)
	d, err := newDriver(cfg)
	if err != nil {
		return err
	}
	defer d.close()
	return d.mineCDB(blocks, loose, flist, nil, minCount, sink)
}

// MineDB mines an uncompressed database under the memory budget with the
// H-Mine engine — the paper's memory-limited baseline.
func MineDB(db *dataset.DB, minCount int, cfg Config, sink mining.Sink) error {
	if minCount < 1 {
		return mining.ErrBadMinSupport
	}
	flist := mining.BuildFList(db, minCount)
	if flist.Len() == 0 {
		return nil
	}
	tx := flist.EncodeDB(db)
	d, err := newDriver(cfg)
	if err != nil {
		return err
	}
	defer d.close()
	return d.mineDB(tx, flist, nil, minCount, sink)
}

// driver owns the temp directory and partition numbering of one run.
type driver struct {
	cfg  Config
	dir  string
	next int
}

func newDriver(cfg Config) (*driver, error) {
	dir, err := os.MkdirTemp(cfg.TempDir, "gogreen-memlimit-")
	if err != nil {
		return nil, fmt.Errorf("memlimit: %w", err)
	}
	return &driver{cfg: cfg, dir: dir}, nil
}

func (d *driver) close() { os.RemoveAll(d.dir) }

func (d *driver) partPath() string {
	d.next++
	return filepath.Join(d.dir, fmt.Sprintf("part-%06d.bin", d.next))
}

// mineCDB handles one (projected) compressed database.
func (d *driver) mineCDB(blocks []core.Block, loose [][]dataset.Item, flist *mining.FList, prefix []dataset.Item, minCount int, sink mining.Sink) error {
	if EstimateCDBBytes(blocks, loose) <= d.cfg.Budget {
		if d.cfg.Engine == "rp-naive" {
			return core.Naive{}.MineEncoded(blocks, loose, flist, prefix, minCount, sink)
		}
		return rphmine.Miner{}.MineEncoded(blocks, loose, flist, prefix, minCount, sink)
	}

	// Over budget: parallel-project to disk, one partition per frequent
	// item, then recurse into each partition.
	counts := make(map[dataset.Item]int)
	for i := range blocks {
		b := &blocks[i]
		for _, it := range b.Suffix {
			counts[it] += b.Count
		}
		for _, t := range b.Tails {
			for _, it := range t {
				counts[it]++
			}
		}
	}
	for _, t := range loose {
		for _, it := range t {
			counts[it]++
		}
	}
	frequent := frequentItems(counts, minCount)
	if len(frequent) == 0 {
		return nil
	}

	// Each projection strictly shrinks tuples (items <= r drop). If the
	// whole database is one unsplittable unit the budget cannot be met.
	if len(frequent) == 1 && EstimateCDBBytes(blocks, loose) > d.cfg.Budget {
		sub, subLoose := core.Project(blocks, loose, frequent[0])
		if EstimateCDBBytes(sub, subLoose) >= EstimateCDBBytes(blocks, loose) {
			return ErrBudgetTooSmall
		}
	}

	paths := make(map[dataset.Item]string, len(frequent))
	writers := make(map[dataset.Item]*partWriter, len(frequent))
	for _, r := range frequent {
		p := d.partPath()
		w, err := newPartWriter(p)
		if err != nil {
			return err
		}
		paths[r] = p
		writers[r] = w
	}
	// Parallel projection: stream each block and loose tuple into every
	// partition whose item it contains, projecting straight into the spill
	// writers (no intermediate slices). Writers are sticky-error, checked
	// per record: a failing disk stops the spill at the record that hit it.
	for i := range blocks {
		b := &blocks[i]
		for _, r := range b.Suffix {
			if w := writers[r]; w != nil {
				if err := w.writeProjectedBlock(b, r); err != nil {
					return abortParts(writers, paths, err)
				}
			}
		}
		// Tail-only memberships: bucket member tails by item once, so the
		// work stays proportional to the spill volume instead of scanning
		// every tail once per distinct tail item.
		buckets := map[dataset.Item][]int32{}
		for ti, t := range b.Tails {
			for _, r := range t {
				if writers[r] != nil {
					buckets[r] = append(buckets[r], int32(ti))
				}
			}
		}
		for r, members := range buckets {
			if err := writers[r].writeBucketedBlock(b, r, members); err != nil {
				return abortParts(writers, paths, err)
			}
		}
	}
	for _, t := range loose {
		for _, r := range t {
			if w := writers[r]; w != nil {
				if nt := itemsAfter(t, r); len(nt) > 0 {
					if err := w.writeTuple(nt); err != nil {
						return abortParts(writers, paths, err)
					}
				}
			}
		}
	}
	for _, w := range writers {
		if err := w.closeFlush(); err != nil {
			return abortParts(writers, paths, err)
		}
	}

	// Emit the partitioning level's own patterns, then recurse per
	// partition in F-list order.
	dec := make([]dataset.Item, len(prefix)+1)
	prefix = append(append([]dataset.Item(nil), prefix...), 0)
	for _, r := range frequent {
		prefix[len(prefix)-1] = r
		sink.Emit(flist.DecodeInto(dec, prefix), counts[r])
		sub, subLoose, err := readCDBPart(paths[r])
		if err != nil {
			return err
		}
		os.Remove(paths[r])
		if len(sub) == 0 && len(subLoose) == 0 {
			continue
		}
		if err := d.mineCDB(sub, subLoose, flist, prefix, minCount, sink); err != nil {
			return err
		}
	}
	return nil
}

// mineDB handles one (projected) uncompressed database.
func (d *driver) mineDB(tx [][]dataset.Item, flist *mining.FList, prefix []dataset.Item, minCount int, sink mining.Sink) error {
	if EstimateTxBytes(tx) <= d.cfg.Budget {
		return hmine.MineProjected(tx, flist, prefix, minCount, sink)
	}
	counts := make(map[dataset.Item]int)
	for _, t := range tx {
		for _, it := range t {
			counts[it]++
		}
	}
	frequent := frequentItems(counts, minCount)
	if len(frequent) == 0 {
		return nil
	}
	if len(frequent) == 1 {
		sub := projectTx(tx, frequent[0])
		if EstimateTxBytes(sub) >= EstimateTxBytes(tx) {
			return ErrBudgetTooSmall
		}
	}

	paths := make(map[dataset.Item]string, len(frequent))
	writers := make(map[dataset.Item]*partWriter, len(frequent))
	for _, r := range frequent {
		p := d.partPath()
		w, err := newPartWriter(p)
		if err != nil {
			return err
		}
		paths[r] = p
		writers[r] = w
	}
	for _, t := range tx {
		for i, r := range t {
			if w := writers[r]; w != nil && i+1 < len(t) {
				if err := w.writeTuple(t[i+1:]); err != nil {
					return abortParts(writers, paths, err)
				}
			}
		}
	}
	for _, w := range writers {
		if err := w.closeFlush(); err != nil {
			return abortParts(writers, paths, err)
		}
	}

	dec := make([]dataset.Item, len(prefix)+1)
	prefix = append(append([]dataset.Item(nil), prefix...), 0)
	for _, r := range frequent {
		prefix[len(prefix)-1] = r
		sink.Emit(flist.DecodeInto(dec, prefix), counts[r])
		sub, err := readTxPart(paths[r])
		if err != nil {
			return err
		}
		os.Remove(paths[r])
		if len(sub) == 0 {
			continue
		}
		if err := d.mineDB(sub, flist, prefix, minCount, sink); err != nil {
			return err
		}
	}
	return nil
}

// projectTx builds the r-projected plain database.
func projectTx(tx [][]dataset.Item, r dataset.Item) [][]dataset.Item {
	var out [][]dataset.Item
	for _, t := range tx {
		for i, it := range t {
			if it == r {
				if i+1 < len(t) {
					out = append(out, t[i+1:])
				}
				break
			}
			if it > r {
				break
			}
		}
	}
	return out
}

// frequentItems returns the items with count >= minCount in ascending rank
// order.
func frequentItems(counts map[dataset.Item]int, minCount int) []dataset.Item {
	out := make([]dataset.Item, 0, len(counts))
	for it, c := range counts {
		if c >= minCount {
			out = append(out, it)
		}
	}
	sortItems(out)
	return out
}

func sortItems(s []dataset.Item) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
