package fup_test

import (
	"errors"
	"math/rand"
	"testing"

	"gogreen/internal/dataset"
	"gogreen/internal/fup"
	"gogreen/internal/mining"
	"gogreen/internal/testutil"
)

// combined concatenates two databases.
func combined(a, b *dataset.DB) *dataset.DB {
	tx := make([][]dataset.Item, 0, a.Len()+b.Len())
	tx = append(tx, a.All()...)
	tx = append(tx, b.All()...)
	return dataset.New(tx)
}

func toSet(t *testing.T, ps []mining.Pattern) mining.PatternSet {
	t.Helper()
	s := mining.PatternSet{}
	for _, p := range ps {
		k := p.Key()
		if _, dup := s[k]; dup {
			t.Fatalf("duplicate pattern %v", p.Items)
		}
		s[k] = p
	}
	return s
}

// TestUpdateMatchesOracle: FUP's incremental result equals re-mining the
// combined database, across random originals, increments and thresholds.
func TestUpdateMatchesOracle(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	for rep := 0; rep < 20; rep++ {
		orig := testutil.RandomDB(r, 30+r.Intn(80), 5+r.Intn(10), 1+r.Intn(8))
		delta := testutil.RandomDB(r, 1+r.Intn(60), 5+r.Intn(10), 1+r.Intn(8))
		oldMin := 2 + r.Intn(6)
		oldFP := testutil.Oracle(t, orig, oldMin).Slice()

		// Same or tighter thresholds only (FUP's domain).
		for _, newMin := range []int{oldMin, oldMin + 1, oldMin + 3} {
			got, err := fup.Update(orig, oldFP, oldMin, delta, newMin)
			if err != nil {
				t.Fatal(err)
			}
			want := testutil.Oracle(t, combined(orig, delta), newMin)
			if !toSet(t, got).Equal(want) {
				t.Fatalf("rep %d oldMin=%d newMin=%d:\n%v",
					rep, oldMin, newMin, toSet(t, got).Diff(want, 10))
			}
		}
	}
}

// TestEmptyDelta: no increment means a pure re-threshold of the old set.
func TestEmptyDelta(t *testing.T) {
	db := testutil.PaperDB()
	oldFP := testutil.Oracle(t, db, 2).Slice()
	got, err := fup.Update(db, oldFP, 2, dataset.New(nil), 3)
	if err != nil {
		t.Fatal(err)
	}
	want := testutil.Oracle(t, db, 3)
	if !toSet(t, got).Equal(want) {
		t.Fatalf("empty delta: %v", toSet(t, got).Diff(want, 10))
	}
}

// TestNewItemsInDelta: items unseen in the original database become
// frequent through the increment.
func TestNewItemsInDelta(t *testing.T) {
	orig := dataset.New([][]dataset.Item{{1, 2}, {1, 2}, {1}})
	delta := dataset.New([][]dataset.Item{{7, 8}, {7, 8}, {7, 8}})
	oldFP := testutil.Oracle(t, orig, 2).Slice()
	got, err := fup.Update(orig, oldFP, 2, delta, 3)
	if err != nil {
		t.Fatal(err)
	}
	set := toSet(t, got)
	if _, ok := set[mining.Key([]dataset.Item{7, 8})]; !ok {
		t.Errorf("missing new pattern {7,8}: %v", got)
	}
	want := testutil.Oracle(t, combined(orig, delta), 3)
	if !set.Equal(want) {
		t.Fatalf("%v", set.Diff(want, 10))
	}
}

func TestRelaxedThresholdRejected(t *testing.T) {
	db := testutil.PaperDB()
	oldFP := testutil.Oracle(t, db, 3).Slice()
	_, err := fup.Update(db, oldFP, 3, dataset.New(nil), 2)
	if !errors.Is(err, fup.ErrThresholdRelaxed) {
		t.Errorf("got %v, want ErrThresholdRelaxed", err)
	}
	if _, err := fup.Update(db, oldFP, 0, dataset.New(nil), 2); err != mining.ErrBadMinSupport {
		t.Errorf("got %v, want ErrBadMinSupport", err)
	}
}
