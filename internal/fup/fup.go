// Package fup implements an FUP-style incremental frequent-pattern
// maintenance algorithm (Cheung, Han, Ng, Wong: "Maintenance of Discovered
// Association Rules in Large Databases", ICDE'96 — the classical line of
// incremental techniques the paper's Section 6 compares recycling against).
//
// Given the frequent patterns of an original database DB (with their exact
// supports) and an increment Δ of inserted tuples, FUP computes the frequent
// patterns of DB ∪ Δ level-wise:
//
//   - A pattern that was frequent in DB needs only its Δ count: its new
//     support is old + Δ, no scan of DB required.
//   - A pattern that was not frequent in DB can only become frequent if it
//     is frequent in Δ (otherwise its combined support provably stays below
//     threshold); only those "winners" are counted against the original DB.
//
// This reproduces FUP's characteristic trade-off, which the paper's
// Section 6 criticizes and the incremental experiment measures: excellent
// for small increments, degrading toward a full re-mine — with extra
// candidate-management overhead — as the increment grows. Only insertions
// are supported (FUP1); the recycling approach in internal/incremental
// handles arbitrary change.
package fup

import (
	"errors"
	"sort"

	"gogreen/internal/dataset"
	"gogreen/internal/mining"
)

// ErrThresholdRelaxed is returned when the new absolute threshold is below
// the old one: FUP's pruning is then unsound (a pattern absent from oldFP
// could be frequent without ever appearing in Δ). This is precisely the
// regime where the paper's recycling approach applies and FUP does not
// (Section 6, criticism (2)).
var ErrThresholdRelaxed = errors.New("fup: new threshold below the old one; FUP cannot relax thresholds")

// Update computes the complete frequent-pattern set of orig ∪ delta at the
// absolute support minCount, reusing the old pattern set oldFP that was
// mined over orig with exact supports at absolute threshold oldMinCount
// (needed for sound pruning: any pattern absent from oldFP has original
// support at most oldMinCount−1).
func Update(orig *dataset.DB, oldFP []mining.Pattern, oldMinCount int, delta *dataset.DB, minCount int) ([]mining.Pattern, error) {
	if minCount < 1 || oldMinCount < 1 {
		return nil, mining.ErrBadMinSupport
	}
	if minCount < oldMinCount {
		return nil, ErrThresholdRelaxed
	}
	old := make(map[string]int, len(oldFP))
	for _, p := range oldFP {
		old[p.Key()] = p.Support
	}

	var result []mining.Pattern
	// Level-wise over the combined database.
	level := initialLevel(orig, delta, old, oldMinCount, minCount, &result)
	for k := 2; len(level) > 0; k++ {
		level = nextLevel(orig, delta, old, level, oldMinCount, minCount, &result)
	}
	return result, nil
}

// initialLevel resolves all 1-item patterns.
func initialLevel(orig, delta *dataset.DB, old map[string]int, oldMinCount, minCount int, result *[]mining.Pattern) [][]dataset.Item {
	deltaCounts := map[dataset.Item]int{}
	for _, t := range delta.All() {
		for _, it := range t {
			deltaCounts[it]++
		}
	}
	// Old frequent items: new support = old + Δ, no scan.
	var level [][]dataset.Item
	emit := func(items []dataset.Item, sup int) {
		*result = append(*result, mining.Pattern{Items: items, Support: sup})
		level = append(level, items)
	}
	seen := map[dataset.Item]bool{}
	for key, oldSup := range old {
		items := parseKeyOne(key)
		if items == nil {
			continue
		}
		it := items[0]
		seen[it] = true
		if sup := oldSup + deltaCounts[it]; sup >= minCount {
			emit([]dataset.Item{it}, sup)
		}
	}
	// Winners: items frequent in Δ alone that were not old-frequent; their
	// original-DB counts need one scan.
	var winners []dataset.Item
	for it, dc := range deltaCounts {
		if !seen[it] && dc >= minDelta(minCount, oldMinCount) {
			winners = append(winners, it)
		}
	}
	if len(winners) > 0 {
		counts := map[dataset.Item]int{}
		for _, t := range orig.All() {
			for _, it := range t {
				if _, ok := deltaCounts[it]; ok {
					counts[it]++
				}
			}
		}
		for _, it := range winners {
			if sup := counts[it] + deltaCounts[it]; sup >= minCount {
				emit([]dataset.Item{it}, sup)
			}
		}
	}
	sortLevel(level)
	return level
}

// nextLevel generates k-item candidates from the previous level and
// resolves them, scanning orig only for candidates outside oldFP.
func nextLevel(orig, delta *dataset.DB, old map[string]int, prev [][]dataset.Item, oldMinCount, minCount int, result *[]mining.Pattern) [][]dataset.Item {
	cands := generate(prev)
	if len(cands) == 0 {
		return nil
	}
	// Δ counts for every candidate.
	deltaCounts := countIn(delta, cands)

	var next [][]dataset.Item
	var needScan [][]dataset.Item
	var needScanIdx []int
	for i, c := range cands {
		if oldSup, ok := old[mining.Key(c)]; ok {
			if sup := oldSup + deltaCounts[i]; sup >= minCount {
				*result = append(*result, mining.Pattern{Items: c, Support: sup})
				next = append(next, c)
			}
			continue
		}
		// Not old-frequent: winners in Δ only.
		if deltaCounts[i] >= minDelta(minCount, oldMinCount) {
			needScan = append(needScan, c)
			needScanIdx = append(needScanIdx, i)
		}
	}
	if len(needScan) > 0 {
		origCounts := countIn(orig, needScan)
		for j, c := range needScan {
			if sup := origCounts[j] + deltaCounts[needScanIdx[j]]; sup >= minCount {
				*result = append(*result, mining.Pattern{Items: c, Support: sup})
				next = append(next, c)
			}
		}
	}
	sortLevel(next)
	return next
}

// minDelta is the pruning threshold for patterns not in oldFP: such a
// pattern has original support at most oldMinCount−1, so it can reach
// minCount over the union only with at least minCount−oldMinCount+1
// occurrences in Δ.
func minDelta(minCount, oldMinCount int) int {
	d := minCount - oldMinCount + 1
	if d < 1 {
		d = 1
	}
	return d
}

// generate joins sorted k-itemsets sharing a (k-1)-prefix (Apriori join,
// without the subset prune — FUP prunes via the old/new frequency logic).
func generate(level [][]dataset.Item) [][]dataset.Item {
	var out [][]dataset.Item
	k := 0
	if len(level) > 0 {
		k = len(level[0])
	}
	for i := 0; i < len(level); i++ {
		for j := i + 1; j < len(level); j++ {
			a, b := level[i], level[j]
			if !samePrefix(a, b, k-1) {
				break
			}
			c := make([]dataset.Item, k+1)
			copy(c, a)
			c[k] = b[k-1]
			if c[k] < c[k-1] {
				c[k-1], c[k] = c[k], c[k-1]
			}
			out = append(out, c)
		}
	}
	return out
}

// countIn counts candidate occurrences with one scan of db.
func countIn(db *dataset.DB, cands [][]dataset.Item) []int {
	counts := make([]int, len(cands))
	for _, t := range db.All() {
		for i, c := range cands {
			if dataset.Contains(t, c) {
				counts[i]++
			}
		}
	}
	return counts
}

func samePrefix(a, b []dataset.Item, n int) bool {
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sortLevel(level [][]dataset.Item) {
	sort.Slice(level, func(i, j int) bool {
		a, b := level[i], level[j]
		for k := range a {
			if k >= len(b) {
				return false
			}
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
}

// parseKeyOne returns the single item of a length-1 pattern key, or nil.
func parseKeyOne(key string) []dataset.Item {
	v := dataset.Item(0)
	for i := 0; i < len(key); i++ {
		ch := key[i]
		if ch == ',' {
			return nil // multi-item pattern
		}
		if ch < '0' || ch > '9' {
			return nil
		}
		v = v*10 + dataset.Item(ch-'0')
	}
	if len(key) == 0 {
		return nil
	}
	return []dataset.Item{v}
}
