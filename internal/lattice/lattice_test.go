package lattice

import (
	"fmt"
	"sync"
	"testing"

	"gogreen/internal/dataset"
	"gogreen/internal/memlimit"
	"gogreen/internal/mining"
)

// fpAt builds a small deterministic pattern set "mined at" minCount: one
// pattern per support value from minCount up to 10.
func fpAt(minCount int) []mining.Pattern {
	var out []mining.Pattern
	for s := 10; s >= minCount; s-- {
		out = append(out, mining.Pattern{Items: []dataset.Item{dataset.Item(s)}, Support: s})
	}
	return out
}

func TestBestEmptyIsMiss(t *testing.T) {
	c := NewStore(1 << 20).Cache("db")
	if _, _, out := c.Best(3); out != Miss {
		t.Fatalf("empty ladder Best = %v, want miss", out)
	}
}

func TestBestPicksNearestRung(t *testing.T) {
	c := NewStore(1 << 20).Cache("db")
	for _, m := range []int{2, 5, 8} {
		if ok, _ := c.Install(m, fpAt(m)); !ok {
			t.Fatalf("install at %d refused", m)
		}
	}

	// Exact threshold and thresholds above a rung filter from the nearest
	// rung at or below.
	for _, tc := range []struct{ q, rung int }{{5, 5}, {6, 5}, {7, 5}, {8, 8}, {9, 8}, {2, 2}, {4, 2}, {100, 8}} {
		fp, rung, out := c.Best(tc.q)
		if out != Hit || rung != tc.rung {
			t.Fatalf("Best(%d) = rung %d %v, want hit from %d", tc.q, rung, out, tc.rung)
		}
		if len(fp) != 10-tc.rung+1 {
			t.Fatalf("Best(%d) returned %d patterns", tc.q, len(fp))
		}
	}

	// A threshold below every rung relaxes from the lowest rung.
	fp, rung, out := c.Best(1)
	if out != Relax || rung != 2 || len(fp) != len(fpAt(2)) {
		t.Fatalf("Best(1) = rung %d %v (%d patterns), want relax from 2", rung, out, len(fp))
	}
}

// TestTwoHandlesShareLadder is the stale-handle regression: a Cache handle
// obtained before any install (or orphaned by a full eviction) is not the
// registered handle for its key, and before the redirect fix Best/Peek read
// the stale handle's empty rungs and reported Miss against a resident
// ladder — a silent full re-mine. Install and Rungs already redirected;
// Best and Peek must too.
func TestTwoHandlesShareLadder(t *testing.T) {
	s := NewStore(1 << 20)
	h1 := s.Cache("db") // obtained before any install: never registered
	h2 := s.Cache("db")
	if ok, _ := h2.Install(3, fpAt(3)); !ok {
		t.Fatal("install refused")
	}
	for name, h := range map[string]*Cache{"stale": h1, "registered": h2} {
		if fp, rung, out := h.Best(5); out != Hit || rung != 3 || len(fp) != len(fpAt(3)) {
			t.Fatalf("%s handle Best(5) = rung %d %v (%d patterns), want hit from 3",
				name, rung, out, len(fp))
		}
		if fp, rung, out := h.Peek(2); out != Relax || rung != 3 || len(fp) != len(fpAt(3)) {
			t.Fatalf("%s handle Peek(2) = rung %d %v, want relax from 3", name, rung, out)
		}
		if infos := h.Rungs(); len(infos) != 1 || infos[0].MinCount != 3 {
			t.Fatalf("%s handle Rungs = %+v", name, infos)
		}
	}
	// Best through the stale handle must also have touched the real rung's
	// counters (one hit per handle above).
	if infos := h2.Rungs(); infos[0].Hits != 2 {
		t.Fatalf("hits = %d, want 2 (one per handle)", infos[0].Hits)
	}

	// Same scenario via eviction: h3 installs, budget squeeze drops the
	// ladder and the registration, h4 reinstalls; h3 must follow.
	s2 := NewStore(1 << 20)
	h3 := s2.Cache("db")
	h3.Install(3, fpAt(3))
	s2.SetBudget(0) // evict everything; "db" dropped from the key map
	s2.SetBudget(1 << 20)
	h4 := s2.Cache("db")
	if h4 == h3 {
		t.Fatal("expected a fresh handle after full eviction")
	}
	h4.Install(2, fpAt(2))
	if _, rung, out := h3.Best(4); out != Hit || rung != 2 {
		t.Fatalf("evicted-era handle Best = rung %d %v, want hit from 2", rung, out)
	}
}

func TestInstallReplacesRung(t *testing.T) {
	s := NewStore(1 << 20)
	c := s.Cache("db")
	c.Install(3, fpAt(3))
	c.Install(3, fpAt(3)[:2])
	if got := s.Rungs(); got != 1 {
		t.Fatalf("rungs = %d after reinstall, want 1", got)
	}
	fp, _, out := c.Best(3)
	if out != Hit || len(fp) != 2 {
		t.Fatalf("Best after reinstall = %v (%d patterns)", out, len(fp))
	}
}

func TestLRUEviction(t *testing.T) {
	// Budget fits exactly two of the three equal-size rungs.
	one := fpAt(1)
	size := memlimit.EstimatePatternBytes(one)
	s := NewStore(2 * size)
	c := s.Cache("db")

	c.Install(2, one)
	c.Install(4, one)
	// Touch rung 2 so rung 4 is the LRU victim.
	if _, rung, out := c.Best(3); out != Hit || rung != 2 {
		t.Fatalf("warm touch = rung %d %v", rung, out)
	}
	installed, evicted := c.Install(6, one)
	if !installed || evicted != 1 {
		t.Fatalf("install = %v, evicted %d; want installed, 1 evicted", installed, evicted)
	}
	if _, rung, out := c.Best(5); out != Hit || rung != 2 {
		t.Fatalf("after eviction Best(5) = rung %d %v, want hit from surviving rung 2", rung, out)
	}
	if s.Rungs() != 2 || s.Bytes() != 2*size {
		t.Fatalf("store = %d rungs / %d bytes, want 2 / %d", s.Rungs(), s.Bytes(), 2*size)
	}
}

func TestEvictionIsGlobalAcrossDatabases(t *testing.T) {
	one := fpAt(1)
	size := memlimit.EstimatePatternBytes(one)
	s := NewStore(2 * size)
	cold := s.Cache("cold")
	hot := s.Cache("hot")

	cold.Install(2, one)
	hot.Install(2, one)
	hot.Best(2) // hot's rung is most recently used
	if _, evicted := hot.Install(4, one); evicted != 1 {
		t.Fatalf("evicted %d, want the cold database's rung", evicted)
	}
	if _, _, out := cold.Best(2); out != Miss {
		t.Fatalf("cold ladder = %v after global eviction, want miss", out)
	}
	if _, _, out := hot.Best(2); out != Hit {
		t.Fatalf("hot ladder lost its rung")
	}
}

func TestOversizedSetNotInstalled(t *testing.T) {
	fp := fpAt(1)
	s := NewStore(memlimit.EstimatePatternBytes(fp) - 1)
	c := s.Cache("db")
	if installed, _ := c.Install(1, fp); installed {
		t.Fatal("a set larger than the whole budget was installed")
	}
	if s.Rungs() != 0 || s.Bytes() != 0 {
		t.Fatalf("store not empty: %d rungs, %d bytes", s.Rungs(), s.Bytes())
	}
}

func TestInvalidate(t *testing.T) {
	s := NewStore(1 << 20)
	c := s.Cache("db")
	c.Install(2, fpAt(2))
	c.Install(5, fpAt(5))
	c.Invalidate()
	if s.Rungs() != 0 || s.Bytes() != 0 {
		t.Fatalf("store after invalidate: %d rungs, %d bytes", s.Rungs(), s.Bytes())
	}
	if _, _, out := c.Best(5); out != Miss {
		t.Fatalf("invalidated ladder Best = %v", out)
	}
	// The ladder is usable again after invalidation.
	if ok, _ := c.Install(3, fpAt(3)); !ok {
		t.Fatal("install after invalidate refused")
	}
	if _, _, out := s.Cache("db").Best(3); out != Hit {
		t.Fatal("fresh handle does not see the reinstalled rung")
	}
}

func TestRungInfos(t *testing.T) {
	c := NewStore(1 << 20).Cache("db")
	c.Install(5, fpAt(5))
	c.Install(2, fpAt(2))
	c.Best(6) // hit on rung 5
	c.Best(6) // hit on rung 5
	c.Best(1) // relax seeded by rung 2

	infos := c.Rungs()
	if len(infos) != 2 || infos[0].MinCount != 2 || infos[1].MinCount != 5 {
		t.Fatalf("rungs = %+v", infos)
	}
	if infos[1].Hits != 2 || infos[1].Seeds != 0 {
		t.Fatalf("rung 5 counters = %+v", infos[1])
	}
	if infos[0].Hits != 0 || infos[0].Seeds != 1 {
		t.Fatalf("rung 2 counters = %+v", infos[0])
	}
	if infos[0].Patterns != len(fpAt(2)) || infos[0].Bytes != memlimit.EstimatePatternBytes(fpAt(2)) {
		t.Fatalf("rung 2 stats = %+v", infos[0])
	}
}

func TestPeekDoesNotTouch(t *testing.T) {
	c := NewStore(1 << 20).Cache("db")
	c.Install(3, fpAt(3))
	c.Peek(4)
	c.Peek(1)
	infos := c.Rungs()
	if infos[0].Hits != 0 || infos[0].Seeds != 0 {
		t.Fatalf("Peek moved counters: %+v", infos[0])
	}
}

func TestIdentityKeyDroppedWhenEmpty(t *testing.T) {
	one := fpAt(1)
	size := memlimit.EstimatePatternBytes(one)
	s := NewStore(2 * size)
	db := dataset.New([][]dataset.Item{{1}})
	s.Cache(db).Install(2, one)

	// Two fresh installs under other keys evict the identity-keyed rung;
	// the store must no longer reference the *DB key.
	s.Cache("a").Install(2, one)
	s.Cache("a").Best(2)
	s.Cache("b").Install(2, one)
	s.mu.Lock()
	_, pinned := s.caches[db]
	s.mu.Unlock()
	if pinned {
		t.Fatal("emptied identity-keyed cache still pinned in the store")
	}
}

func TestSetBudgetEvicts(t *testing.T) {
	one := fpAt(1)
	size := memlimit.EstimatePatternBytes(one)
	s := NewStore(3 * size)
	c := s.Cache("db")
	for _, m := range []int{2, 4, 6} {
		c.Install(m, one)
	}
	s.SetBudget(size)
	if s.Rungs() != 1 || s.Bytes() != size {
		t.Fatalf("after budget cut: %d rungs, %d bytes", s.Rungs(), s.Bytes())
	}
}

func TestConcurrentUse(t *testing.T) {
	s := NewStore(1 << 16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			key := fmt.Sprintf("db-%d", g%3)
			c := s.Cache(key)
			for i := 0; i < 200; i++ {
				m := 1 + (g+i)%9
				if _, _, out := c.Best(m); out != Hit {
					c.Install(m, fpAt(m))
				}
				if i%50 == 0 {
					c.Invalidate()
					c = s.Cache(key)
				}
			}
		}(g)
	}
	wg.Wait()
	if s.Bytes() > s.Budget() {
		t.Fatalf("store over budget after concurrent use: %d > %d", s.Bytes(), s.Budget())
	}
}
