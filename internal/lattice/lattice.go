// Package lattice implements the materialized threshold lattice: a shared,
// evictable cache of mined pattern sets ("rungs"), one ladder per database,
// that turns the paper's recycling asymmetry into a serving primitive.
//
// The paper's core observation (Section 2) is that the two directions of an
// interactive threshold change cost wildly different amounts: *tightening*
// the minimum support is a pure filter over an already-mined pattern set
// (microseconds), while *relaxing* requires compress-then-re-mine. A lattice
// materializes that asymmetry across requests: every mined threshold is
// installed as a rung, and any later request is answered by
//
//   - filtering down from the nearest rung at or below the request's
//     threshold (a hit — no mining at all),
//   - relax-mining from the nearest rung above it (the recycling pipeline,
//     seeded with the rung's patterns), or
//   - mining fresh when no rung exists (a miss).
//
// Rungs from many databases share one Store with a single byte budget
// (metered through memlimit's cost model) and one global LRU clock, so hot
// databases keep their ladders while cold ones age out — the "millions of
// users re-mining the same shared datasets" scenario pays mining cost once
// per (database, threshold) instead of once per request.
//
// The package is pure bookkeeping: it never mines. engine.Pipeline.Serve
// drives the hit/relax/miss decision returned by Cache.Best and installs
// results via Cache.Install.
package lattice

import (
	"sort"
	"sync"

	"gogreen/internal/memlimit"
	"gogreen/internal/mining"
)

// Outcome classifies how a lookup can be served. It is the value surfaces
// report — the server's "cache" response field and mining.Result.Cache use
// these strings verbatim.
type Outcome string

// Lookup outcomes.
const (
	// Hit: a rung at or below the requested threshold exists; the answer is
	// a pure filter of its patterns. No mining.
	Hit Outcome = "hit"
	// Relax: only rungs above the requested threshold exist; the nearest one
	// seeds the recycling pipeline (compress + re-mine).
	Relax Outcome = "relax"
	// Miss: the ladder is empty; the request mines from scratch (or from
	// whatever non-lattice prior the caller has).
	Miss Outcome = "miss"
)

// RungInfo describes one rung for stats surfaces (GET /db/{id}/lattice).
type RungInfo struct {
	// MinCount is the absolute support threshold the rung was mined at.
	MinCount int `json:"min_count"`
	// Patterns is the number of patterns materialized on the rung.
	Patterns int `json:"patterns"`
	// Bytes is the rung's metered in-memory footprint.
	Bytes int64 `json:"bytes"`
	// Hits counts pure-filter answers served from this rung.
	Hits int64 `json:"hits"`
	// Seeds counts relax-mines that used this rung as their recycled input.
	Seeds int64 `json:"seeds"`
}

// rung is one materialized threshold of one database's ladder.
type rung struct {
	minCount int
	patterns []mining.Pattern // immutable once installed
	bytes    int64
	hits     int64
	seeds    int64
	seq      uint64 // global LRU clock value of the last touch
	cache    *Cache
}

// Store is the shared pattern cache: every database's ladder lives in one
// store under one byte budget, evicted globally least-recently-used. Safe
// for concurrent use.
type Store struct {
	mu     sync.Mutex
	budget int64
	bytes  int64
	rungs  int
	seq    uint64
	caches map[any]*Cache
}

// NewStore returns an empty store with the given byte budget. A non-positive
// budget means "no caching": installs are dropped immediately.
func NewStore(budget int64) *Store {
	return &Store{budget: budget, caches: map[any]*Cache{}}
}

// SetBudget replaces the byte budget and evicts down to it.
func (s *Store) SetBudget(n int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.budget = n
	s.evictOverLocked(nil)
}

// Budget returns the configured byte budget.
func (s *Store) Budget() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.budget
}

// Bytes returns the metered footprint of every resident rung — the
// lattice_bytes gauge.
func (s *Store) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// Rungs returns the resident rung count across all databases — the
// lattice_rungs gauge.
func (s *Store) Rungs() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rungs
}

// Cache returns the ladder registered under key, or an empty unregistered
// handle when none exists. Keys are opaque: the server and facade key by
// *dataset.DB identity. A handle is only registered in the store when a
// rung is installed through it, and is dropped again when its last rung is
// evicted, so identity keys never pin dead databases.
func (s *Store) Cache(key any) *Cache {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok := s.caches[key]; ok {
		return c
	}
	return &Cache{store: s, key: key}
}

// Invalidate drops every rung of the ladder registered under key.
func (s *Store) Invalidate(key any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok := s.caches[key]; ok {
		s.dropCacheLocked(c)
	}
}

// Reset drops every ladder in the store.
func (s *Store) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range s.caches {
		c.rungs = nil
	}
	s.caches = map[any]*Cache{}
	s.bytes, s.rungs = 0, 0
}

// dropCacheLocked removes c's rungs from the store accounting and the cache
// itself from the key map; caller holds s.mu.
func (s *Store) dropCacheLocked(c *Cache) {
	for _, r := range c.rungs {
		s.bytes -= r.bytes
		s.rungs--
	}
	c.rungs = nil
	delete(s.caches, c.key)
}

// evictOverLocked evicts globally-LRU rungs until the store fits its
// budget, never evicting keep (the rung just installed). Returns the number
// of rungs evicted; caller holds s.mu.
func (s *Store) evictOverLocked(keep *rung) int {
	evicted := 0
	for s.bytes > s.budget {
		var victim *rung
		for _, c := range s.caches {
			for _, r := range c.rungs {
				if r == keep {
					continue
				}
				if victim == nil || r.seq < victim.seq {
					victim = r
				}
			}
		}
		if victim == nil {
			break // only keep remains; Install pre-checked it fits
		}
		victim.cache.removeLocked(victim)
		evicted++
	}
	return evicted
}

// Cache is one database's threshold ladder — a view into its Store. All
// methods are safe for concurrent use (they lock the store).
type Cache struct {
	store *Store
	key   any
	// rungs is kept sorted by ascending minCount; at most one rung per
	// threshold.
	rungs []*rung
}

// Store returns the shared store this ladder lives in.
func (c *Cache) Store() *Store { return c.store }

// removeLocked unlinks r from c and the store accounting; caller holds
// store.mu. An emptied cache is dropped from the store's key map so
// identity-keyed caches do not leak.
func (c *Cache) removeLocked(r *rung) {
	for i, x := range c.rungs {
		if x == r {
			c.rungs = append(c.rungs[:i], c.rungs[i+1:]...)
			break
		}
	}
	c.store.bytes -= r.bytes
	c.store.rungs--
	if len(c.rungs) == 0 {
		delete(c.store.caches, c.key)
	}
}

// redirectLocked returns the cache currently registered for c's key —
// c itself when it is still the live handle, the fresh handle otherwise.
// Install re-registers keys whose handle was dropped by eviction, so a
// stale handle must read through the registered one or it reports Miss
// against a resident ladder (and triggers a full re-mine). Caller holds
// store.mu.
func (c *Cache) redirectLocked() *Cache {
	if cur, ok := c.store.caches[c.key]; ok && cur != c {
		return cur
	}
	return c
}

// Best returns the serving decision for an absolute threshold: the chosen
// rung's patterns and threshold plus the outcome. On Hit the patterns are a
// superset of the answer (filter them with core.FilterTightened); on Relax
// they are the recycling seed; on Miss both are zero. The chosen rung's LRU
// position and hit/seed counters are updated.
//
// The returned slice is shared and immutable: callers must not modify it.
func (c *Cache) Best(minCount int) ([]mining.Pattern, int, Outcome) {
	c.store.mu.Lock()
	defer c.store.mu.Unlock()
	c = c.redirectLocked()
	if len(c.rungs) == 0 {
		return nil, 0, Miss
	}
	// Rungs are sorted ascending; i is the first rung above minCount.
	i := sort.Search(len(c.rungs), func(i int) bool { return c.rungs[i].minCount > minCount })
	if i > 0 {
		// Nearest rung at or below: its pattern set contains every answer
		// pattern — the pure-filter path.
		r := c.rungs[i-1]
		c.store.seq++
		r.seq = c.store.seq
		r.hits++
		return r.patterns, r.minCount, Hit
	}
	// All rungs are above: the lowest one is the closest, i.e. the largest
	// recyclable pattern set.
	r := c.rungs[0]
	c.store.seq++
	r.seq = c.store.seq
	r.seeds++
	return r.patterns, r.minCount, Relax
}

// Peek is Best without touching LRU positions or counters — for surfaces
// that probe the ladder but may not use the answer.
func (c *Cache) Peek(minCount int) ([]mining.Pattern, int, Outcome) {
	c.store.mu.Lock()
	defer c.store.mu.Unlock()
	c = c.redirectLocked()
	if len(c.rungs) == 0 {
		return nil, 0, Miss
	}
	i := sort.Search(len(c.rungs), func(i int) bool { return c.rungs[i].minCount > minCount })
	if i > 0 {
		r := c.rungs[i-1]
		return r.patterns, r.minCount, Hit
	}
	r := c.rungs[0]
	return r.patterns, r.minCount, Relax
}

// Install materializes fp as the rung at minCount, replacing any existing
// rung there, and evicts globally-LRU rungs (never the new one) until the
// store fits its budget again. A set whose metered footprint alone exceeds
// the budget is not installed — caching it could only thrash.
//
// fp must be the complete frequent-pattern set of the cache's database at
// minCount, and must not be mutated after the call (the cache aliases it).
// Install reports whether the rung was installed and how many rungs were
// evicted.
func (c *Cache) Install(minCount int, fp []mining.Pattern) (installed bool, evicted int) {
	if minCount < 1 {
		return false, 0
	}
	bytes := memlimit.EstimatePatternBytes(fp)
	s := c.store
	s.mu.Lock()
	defer s.mu.Unlock()
	if bytes > s.budget {
		return false, 0
	}
	// The cache may have been dropped from the store's key map (all rungs
	// evicted) since this handle was obtained; re-register it.
	if cur, ok := s.caches[c.key]; !ok {
		s.caches[c.key] = c
	} else if cur != c {
		// A fresh handle for the same key exists; install through it so both
		// views stay coherent.
		c = cur
	}
	s.seq++
	i := sort.Search(len(c.rungs), func(i int) bool { return c.rungs[i].minCount >= minCount })
	if i < len(c.rungs) && c.rungs[i].minCount == minCount {
		old := c.rungs[i]
		s.bytes += bytes - old.bytes
		old.patterns, old.bytes, old.seq = fp, bytes, s.seq
		return true, s.evictOverLocked(old)
	}
	r := &rung{minCount: minCount, patterns: fp, bytes: bytes, seq: s.seq, cache: c}
	c.rungs = append(c.rungs, nil)
	copy(c.rungs[i+1:], c.rungs[i:])
	c.rungs[i] = r
	s.bytes += bytes
	s.rungs++
	return true, s.evictOverLocked(r)
}

// Invalidate drops every rung of this ladder.
func (c *Cache) Invalidate() {
	c.store.mu.Lock()
	defer c.store.mu.Unlock()
	if cur, ok := c.store.caches[c.key]; ok && cur != c {
		c.store.dropCacheLocked(cur)
	}
	for _, r := range c.rungs {
		c.store.bytes -= r.bytes
		c.store.rungs--
	}
	c.rungs = nil
	delete(c.store.caches, c.key)
}

// Rungs describes the resident ladder, ascending by threshold.
func (c *Cache) Rungs() []RungInfo {
	c.store.mu.Lock()
	defer c.store.mu.Unlock()
	src := c.redirectLocked().rungs
	out := make([]RungInfo, len(src))
	for i, r := range src {
		out[i] = RungInfo{MinCount: r.minCount, Patterns: len(r.patterns),
			Bytes: r.bytes, Hits: r.hits, Seeds: r.seeds}
	}
	return out
}
