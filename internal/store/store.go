// Package store is the disk-backed pattern store: it makes the service's
// three kinds of mined-knowledge state — uploaded databases, saved pattern
// sets, and installed lattice rungs — survive process restarts. The paper's
// premise is that mined pattern sets are assets worth keeping and reusing
// across requests; persisting them extends the same recycling economics
// across process lifetimes (and, with cold-tenant spill, beyond what fits in
// memory).
//
// # On-disk layout
//
// A store owns one directory:
//
//	MANIFEST          which segments are live, in replay order
//	seg-00000001.log  append-only record log (sealed)
//	seg-00000002.log  append-only record log (active — appends go here)
//
// Every mutation appends one checksummed record to the active segment and
// fsyncs before the caller acknowledges, so an acknowledged write survives a
// crash at any instant. Records are never rewritten in place; logically
// replaced or deleted state becomes garbage that the background snapshot
// (Compact, or the StartSnapshots ticker) rewrites away: compaction streams
// the live records into a fresh segment, atomically swaps the manifest, and
// deletes the old segments.
//
// # Recovery
//
// Open replays the manifest's segments in order, rebuilding the in-memory
// index (which maps each database id to the file offsets of its latest
// records — patterns themselves stay on disk until loaded). A crash can tear
// the tail of the *last* (active) segment only; Open detects the torn tail
// by length/checksum and truncates it, recovering exactly the records whose
// fsync was acknowledged. A checksum failure anywhere before the tail is
// real corruption and fails Open with ErrCorrupt.
package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"time"

	"gogreen/internal/dataset"
	"gogreen/internal/mining"
	"gogreen/internal/patternio"
)

// ErrCorrupt reports a segment whose body (not its torn tail) fails
// validation: a bad magic, a record checksum mismatch before the final
// record, or an undecodable payload.
var ErrCorrupt = errors.New("store: corrupt segment")

// ErrClosed reports use of a closed store.
var ErrClosed = errors.New("store: closed")

// ErrNotFound reports a load of a database the store does not hold.
var ErrNotFound = errors.New("store: no such database")

// segMagic opens every segment file; the trailing byte versions the record
// format.
const segMagic = "GGSEG\x00\x00\x01"

// manifestMagic is the first line of the MANIFEST file.
const manifestMagic = "# gogreen store manifest v1"

// maxRecordBytes bounds one record's payload — a guard against reading a
// corrupt length as an allocation size.
const maxRecordBytes = 1 << 30

// DefaultMaxSegmentBytes is the rotation threshold for the active segment.
const DefaultMaxSegmentBytes = 64 << 20

// Record kinds. A putDB record resets the database's sets and rungs (the
// upload semantics of the service: replacing a database drops its derived
// state); dropRungs clears the lattice ladder only.
const (
	kindPutDB     = 1
	kindDeleteDB  = 2
	kindPutSet    = 3
	kindPutRung   = 4
	kindDropRungs = 5
)

// crcTable is Castagnoli, the polynomial with hardware support on amd64 and
// arm64.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// recordRef locates one record's payload inside a segment file.
type recordRef struct {
	seg int64 // segment sequence number
	off int64 // payload offset within the file
	n   int   // payload length
}

// setState is the index entry of one saved pattern set.
type setState struct {
	ref      recordRef
	minCount int
	patterns int
	items    int64
	saved    int64 // unix nanos
}

// rungState is the index entry of one installed lattice rung.
type rungState struct {
	ref      recordRef
	patterns int
	items    int64
}

// dbState is the index entry of one database: stub metadata resident in
// memory, pattern payloads on disk.
type dbState struct {
	tenant   string
	numTx    int
	numItems int
	avgLen   float64
	db       recordRef
	sets     map[string]*setState
	rungs    map[int]*rungState
}

// Store is a disk-backed pattern store over one directory. All methods are
// safe for concurrent use.
type Store struct {
	dir    string
	maxSeg int64

	mu        sync.Mutex
	closed    bool
	segs      []int64            // live segments in replay order; last is active
	files     map[int64]*os.File // open handles (reads via ReadAt, appends on active)
	sizes     map[int64]int64    // current byte size per live segment
	index     map[string]*dbState
	garbage   int64 // bytes of dead records, reset by compaction
	compacted int64 // compactions run (stats)

	tick chan struct{} // non-nil while the snapshot ticker runs
	done chan struct{}
}

// Options configures Open.
type Options struct {
	// MaxSegmentBytes rotates the active segment past this size;
	// <= 0 means DefaultMaxSegmentBytes.
	MaxSegmentBytes int64
}

// Open opens (creating if needed) the store directory and recovers its
// state: the manifest is replayed segment by segment, a torn tail on the
// active segment is truncated, and segments the manifest does not list
// (orphans of a crashed rotation or compaction) are deleted.
func Open(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{
		dir:    dir,
		maxSeg: opts.MaxSegmentBytes,
		files:  map[int64]*os.File{},
		sizes:  map[int64]int64{},
		index:  map[string]*dbState{},
	}
	if s.maxSeg <= 0 {
		s.maxSeg = DefaultMaxSegmentBytes
	}
	if err := s.recover(); err != nil {
		s.closeFiles()
		return nil, err
	}
	return s, nil
}

// segPath names a segment file.
func (s *Store) segPath(seq int64) string {
	return filepath.Join(s.dir, fmt.Sprintf("seg-%08d.log", seq))
}

// recover loads the manifest, replays the live segments, deletes orphans,
// and ensures an active segment exists; caller is Open (no lock needed yet).
func (s *Store) recover() error {
	segs, err := readManifest(filepath.Join(s.dir, "MANIFEST"))
	if err != nil {
		return err
	}
	s.segs = segs
	for i, seq := range s.segs {
		if err := s.replaySegment(seq, i == len(s.segs)-1); err != nil {
			return err
		}
	}
	// Orphans: segment files a crashed rotation/compaction left behind but
	// the manifest never adopted. They hold no acknowledged state.
	listed := map[int64]bool{}
	for _, seq := range s.segs {
		listed[seq] = true
	}
	names, err := filepath.Glob(filepath.Join(s.dir, "seg-*.log"))
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	for _, name := range names {
		var seq int64
		if _, err := fmt.Sscanf(filepath.Base(name), "seg-%d.log", &seq); err != nil {
			continue
		}
		if !listed[seq] {
			os.Remove(name)
		}
	}
	if len(s.segs) == 0 {
		if err := s.rotateLocked(); err != nil {
			return err
		}
	}
	return nil
}

// replaySegment loads one segment into the index. last marks the active
// segment, whose torn tail (if any) is truncated rather than rejected.
func (s *Store) replaySegment(seq int64, last bool) error {
	path := s.segPath(seq)
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	size, err := replayRecords(f, func(ref recordRef, payload []byte) error {
		return s.applyLocked(seq, ref, payload)
	}, seq)
	if err != nil {
		if !errors.Is(err, errTornTail) {
			f.Close()
			return err
		}
		if !last {
			f.Close()
			return fmt.Errorf("%w: segment %d has a torn tail but is not the active segment", ErrCorrupt, seq)
		}
		// Crash mid-append: drop the unacknowledged tail.
		if err := f.Truncate(size); err != nil {
			f.Close()
			return fmt.Errorf("store: truncate torn tail: %w", err)
		}
		if size == 0 {
			// Even the magic header was torn — restore it so the segment
			// stays appendable.
			if _, err := f.Seek(0, io.SeekStart); err != nil {
				f.Close()
				return fmt.Errorf("store: %w", err)
			}
			if _, err := f.WriteString(segMagic); err != nil {
				f.Close()
				return fmt.Errorf("store: %w", err)
			}
			size = int64(len(segMagic))
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("store: %w", err)
		}
	}
	if _, err := f.Seek(size, io.SeekStart); err != nil {
		f.Close()
		return fmt.Errorf("store: %w", err)
	}
	s.files[seq] = f
	s.sizes[seq] = size
	return nil
}

// errTornTail distinguishes an incomplete final record (a crash mid-append,
// recoverable by truncation) from body corruption.
var errTornTail = errors.New("store: torn tail")

// replayRecords streams every valid record of one segment into apply and
// returns the byte offset of the end of the last valid record. A record cut
// short or failing its checksum yields errTornTail with the good prefix
// length; corruption *behind* a valid record cannot be distinguished from a
// torn tail by format alone, so the caller decides by position (only the
// active segment may have one).
func replayRecords(f *os.File, apply func(ref recordRef, payload []byte) error, seq int64) (int64, error) {
	magic := make([]byte, len(segMagic))
	if _, err := io.ReadFull(f, magic); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return 0, errTornTail // zero-length or partial header: treat as empty
		}
		return 0, fmt.Errorf("store: %w", err)
	}
	if string(magic) != segMagic {
		return 0, fmt.Errorf("%w: bad segment magic", ErrCorrupt)
	}
	off := int64(len(segMagic))
	var hdr [8]byte
	for {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			if err == io.EOF {
				return off, nil
			}
			if err == io.ErrUnexpectedEOF {
				return off, errTornTail
			}
			return off, fmt.Errorf("store: %w", err)
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if n == 0 || n > maxRecordBytes {
			return off, errTornTail
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(f, payload); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return off, errTornTail
			}
			return off, fmt.Errorf("store: %w", err)
		}
		if crc32.Checksum(payload, crcTable) != sum {
			return off, errTornTail
		}
		if err := apply(recordRef{seg: seq, off: off + 8, n: int(n)}, payload); err != nil {
			return off, err
		}
		off += 8 + int64(n)
	}
}

// applyLocked folds one record into the index (Open holds no lock; runtime
// callers hold s.mu).
func (s *Store) applyLocked(seq int64, ref recordRef, payload []byte) error {
	d := &decoder{buf: payload}
	kind := d.byte()
	id := d.string()
	switch kind {
	case kindPutDB:
		tenant := d.string()
		numTx := int(d.uvarint())
		numItems := int(d.uvarint())
		avgLen := d.float()
		if d.err != nil {
			return fmt.Errorf("%w: bad putDB record", ErrCorrupt)
		}
		if old, ok := s.index[id]; ok {
			s.garbage += stateBytes(old)
		}
		s.index[id] = &dbState{
			tenant: tenant, numTx: numTx, numItems: numItems, avgLen: avgLen,
			db:   recordRef{seg: seq, off: ref.off + int64(d.pos), n: ref.n - d.pos},
			sets: map[string]*setState{}, rungs: map[int]*rungState{},
		}
	case kindDeleteDB:
		if d.err != nil {
			return fmt.Errorf("%w: bad deleteDB record", ErrCorrupt)
		}
		if old, ok := s.index[id]; ok {
			s.garbage += stateBytes(old) + int64(ref.n)
			delete(s.index, id)
		}
	case kindPutSet:
		name := d.string()
		minCount := int(d.uvarint())
		saved := int64(d.uvarint())
		patterns := int(d.uvarint())
		items := int64(d.uvarint())
		if d.err != nil {
			return fmt.Errorf("%w: bad putSet record", ErrCorrupt)
		}
		db, ok := s.index[id]
		if !ok {
			return nil // set for a dropped database: dead record
		}
		if old, ok := db.sets[name]; ok {
			s.garbage += int64(old.ref.n)
		}
		db.sets[name] = &setState{
			ref:      recordRef{seg: seq, off: ref.off + int64(d.pos), n: ref.n - d.pos},
			minCount: minCount, patterns: patterns, items: items, saved: saved,
		}
	case kindPutRung:
		minCount := int(d.uvarint())
		patterns := int(d.uvarint())
		items := int64(d.uvarint())
		if d.err != nil {
			return fmt.Errorf("%w: bad putRung record", ErrCorrupt)
		}
		db, ok := s.index[id]
		if !ok {
			return nil
		}
		if old, ok := db.rungs[minCount]; ok {
			s.garbage += int64(old.ref.n)
		}
		db.rungs[minCount] = &rungState{
			ref:      recordRef{seg: seq, off: ref.off + int64(d.pos), n: ref.n - d.pos},
			patterns: patterns, items: items,
		}
	case kindDropRungs:
		if d.err != nil {
			return fmt.Errorf("%w: bad dropRungs record", ErrCorrupt)
		}
		if db, ok := s.index[id]; ok {
			for _, r := range db.rungs {
				s.garbage += int64(r.ref.n)
			}
			db.rungs = map[int]*rungState{}
		}
	default:
		return fmt.Errorf("%w: unknown record kind %d", ErrCorrupt, kind)
	}
	return nil
}

// stateBytes sums the payload bytes a database's records occupy on disk —
// the garbage created when the database is replaced or deleted.
func stateBytes(d *dbState) int64 {
	n := int64(d.db.n)
	for _, set := range d.sets {
		n += int64(set.ref.n)
	}
	for _, r := range d.rungs {
		n += int64(r.ref.n)
	}
	return n
}

// readManifest parses the MANIFEST file into the live segment list; a
// missing file is an empty store.
func readManifest(path string) ([]int64, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	lines := bytes.Split(data, []byte("\n"))
	if len(lines) == 0 || string(lines[0]) != manifestMagic {
		return nil, fmt.Errorf("%w: bad manifest header", ErrCorrupt)
	}
	var segs []int64
	for _, line := range lines[1:] {
		text := string(bytes.TrimSpace(line))
		if text == "" {
			continue
		}
		seq, err := strconv.ParseInt(text, 10, 64)
		if err != nil || seq < 1 {
			return nil, fmt.Errorf("%w: bad manifest entry %q", ErrCorrupt, text)
		}
		segs = append(segs, seq)
	}
	return segs, nil
}

// writeManifestLocked atomically replaces the MANIFEST with the given
// segment list (temp file, fsync, rename, fsync directory).
func (s *Store) writeManifestLocked(segs []int64) error {
	var buf bytes.Buffer
	buf.WriteString(manifestMagic)
	buf.WriteByte('\n')
	for _, seq := range segs {
		fmt.Fprintf(&buf, "%d\n", seq)
	}
	tmp := filepath.Join(s.dir, "MANIFEST.tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := f.Write(buf.Bytes()); err != nil {
		f.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, "MANIFEST")); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return syncDir(s.dir)
}

// syncDir fsyncs a directory so renames and creations inside it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("store: sync dir: %w", err)
	}
	return nil
}

// rotateLocked seals the active segment (if any) and starts the next one,
// adopting it into the manifest before any record lands in it.
func (s *Store) rotateLocked() error {
	next := int64(1)
	if n := len(s.segs); n > 0 {
		next = s.segs[n-1] + 1
	}
	f, err := os.OpenFile(s.segPath(next), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := f.WriteString(segMagic); err != nil {
		f.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: %w", err)
	}
	segs := append(append([]int64{}, s.segs...), next)
	if err := s.writeManifestLocked(segs); err != nil {
		f.Close()
		os.Remove(s.segPath(next))
		return err
	}
	s.segs = segs
	s.files[next] = f
	s.sizes[next] = int64(len(segMagic))
	return nil
}

// appendLocked writes one record to the active segment and fsyncs it,
// rotating first when the active segment is full.
func (s *Store) appendLocked(payload []byte) (recordRef, error) {
	if s.closed {
		return recordRef{}, ErrClosed
	}
	active := s.segs[len(s.segs)-1]
	if s.sizes[active] >= s.maxSeg {
		if err := s.rotateLocked(); err != nil {
			return recordRef{}, err
		}
		active = s.segs[len(s.segs)-1]
	}
	f := s.files[active]
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	off := s.sizes[active]
	if _, err := f.Write(hdr[:]); err != nil {
		return recordRef{}, fmt.Errorf("store: %w", err)
	}
	if _, err := f.Write(payload); err != nil {
		return recordRef{}, fmt.Errorf("store: %w", err)
	}
	if err := f.Sync(); err != nil {
		return recordRef{}, fmt.Errorf("store: %w", err)
	}
	s.sizes[active] = off + 8 + int64(len(payload))
	return recordRef{seg: active, off: off + 8, n: len(payload)}, nil
}

// readPayload reads one record payload back from its segment.
func (s *Store) readPayload(ref recordRef) ([]byte, error) {
	s.mu.Lock()
	f := s.files[ref.seg]
	s.mu.Unlock()
	if f == nil {
		return nil, fmt.Errorf("store: segment %d is gone", ref.seg)
	}
	out := make([]byte, ref.n)
	if _, err := f.ReadAt(out, ref.off); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return out, nil
}

// PutDB makes an uploaded database durable, resetting its saved sets and
// rungs (upload semantics: replacing a database drops derived state). The
// call returns only after the record is fsync'd.
func (s *Store) PutDB(id, tenant string, db *dataset.DB) error {
	st := db.Stats()
	e := newEncoder(kindPutDB, id)
	e.string(tenant)
	e.uvarint(uint64(st.NumTx))
	e.uvarint(uint64(st.NumItems))
	e.float(st.AvgLen)
	bodyAt := len(e.buf)
	writeBasketIDs(&e.buf, db)

	s.mu.Lock()
	defer s.mu.Unlock()
	ref, err := s.appendLocked(e.buf)
	if err != nil {
		return err
	}
	if old, ok := s.index[id]; ok {
		s.garbage += stateBytes(old)
	}
	s.index[id] = &dbState{
		tenant: tenant, numTx: st.NumTx, numItems: st.NumItems, avgLen: st.AvgLen,
		db:   recordRef{seg: ref.seg, off: ref.off + int64(bodyAt), n: ref.n - bodyAt},
		sets: map[string]*setState{}, rungs: map[int]*rungState{},
	}
	return nil
}

// DeleteDB makes a database drop durable (tombstone record).
func (s *Store) DeleteDB(id string) error {
	e := newEncoder(kindDeleteDB, id)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.index[id]; !ok {
		return nil // nothing durable to drop
	}
	ref, err := s.appendLocked(e.buf)
	if err != nil {
		return err
	}
	s.garbage += stateBytes(s.index[id]) + int64(ref.n)
	delete(s.index, id)
	return nil
}

// PutSet makes one saved pattern set durable under (db id, name).
func (s *Store) PutSet(dbID, name string, minCount int, saved time.Time, fp []mining.Pattern) error {
	var items int64
	for i := range fp {
		items += int64(len(fp[i].Items))
	}
	e := newEncoder(kindPutSet, dbID)
	e.string(name)
	e.uvarint(uint64(minCount))
	e.uvarint(uint64(saved.UnixNano()))
	e.uvarint(uint64(len(fp)))
	e.uvarint(uint64(items))
	bodyAt := len(e.buf)
	e.patterns(fp, minCount)

	s.mu.Lock()
	defer s.mu.Unlock()
	db, ok := s.index[dbID]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, dbID)
	}
	ref, err := s.appendLocked(e.buf)
	if err != nil {
		return err
	}
	if old, ok := db.sets[name]; ok {
		s.garbage += int64(old.ref.n)
	}
	db.sets[name] = &setState{
		ref:      recordRef{seg: ref.seg, off: ref.off + int64(bodyAt), n: ref.n - bodyAt},
		minCount: minCount, patterns: len(fp), items: items, saved: saved.UnixNano(),
	}
	return nil
}

// PutRung makes one installed lattice rung durable under (db id, minCount).
func (s *Store) PutRung(dbID string, minCount int, fp []mining.Pattern) error {
	var items int64
	for i := range fp {
		items += int64(len(fp[i].Items))
	}
	e := newEncoder(kindPutRung, dbID)
	e.uvarint(uint64(minCount))
	e.uvarint(uint64(len(fp)))
	e.uvarint(uint64(items))
	bodyAt := len(e.buf)
	e.patterns(fp, minCount)

	s.mu.Lock()
	defer s.mu.Unlock()
	db, ok := s.index[dbID]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, dbID)
	}
	ref, err := s.appendLocked(e.buf)
	if err != nil {
		return err
	}
	if old, ok := db.rungs[minCount]; ok {
		s.garbage += int64(old.ref.n)
	}
	db.rungs[minCount] = &rungState{
		ref:      recordRef{seg: ref.seg, off: ref.off + int64(bodyAt), n: ref.n - bodyAt},
		patterns: len(fp), items: items,
	}
	return nil
}

// DropRungs makes a lattice invalidation durable: the database's persisted
// ladder is cleared.
func (s *Store) DropRungs(dbID string) error {
	e := newEncoder(kindDropRungs, dbID)
	s.mu.Lock()
	defer s.mu.Unlock()
	db, ok := s.index[dbID]
	if !ok || len(db.rungs) == 0 {
		return nil
	}
	if _, err := s.appendLocked(e.buf); err != nil {
		return err
	}
	for _, r := range db.rungs {
		s.garbage += int64(r.ref.n)
	}
	db.rungs = map[int]*rungState{}
	return nil
}

// SetMeta describes one saved pattern set without loading its patterns.
type SetMeta struct {
	Name     string
	MinCount int
	Patterns int
	Items    int64 // total item cells across the set (cost-model input)
	Saved    time.Time
}

// DBMeta describes one stored database without loading its content — the
// boot-time stub the server registers before any rehydration.
type DBMeta struct {
	ID       string
	Tenant   string
	NumTx    int
	NumItems int
	AvgLen   float64
	Sets     []SetMeta
	Rungs    int
}

// List enumerates the stored databases (sorted by id) as stub metadata.
func (s *Store) List() []DBMeta {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]DBMeta, 0, len(s.index))
	for id, d := range s.index {
		m := DBMeta{ID: id, Tenant: d.tenant, NumTx: d.numTx,
			NumItems: d.numItems, AvgLen: d.avgLen, Rungs: len(d.rungs)}
		for name, set := range d.sets {
			m.Sets = append(m.Sets, SetMeta{Name: name, MinCount: set.minCount,
				Patterns: set.patterns, Items: set.items, Saved: time.Unix(0, set.saved)})
		}
		sort.Slice(m.Sets, func(i, j int) bool { return m.Sets[i].Name < m.Sets[j].Name })
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Set is one rehydrated saved pattern set.
type Set struct {
	Name     string
	MinCount int
	Saved    time.Time
	Patterns []mining.Pattern
}

// Rung is one rehydrated lattice rung.
type Rung struct {
	MinCount int
	Patterns []mining.Pattern
}

// LoadDB rehydrates a stored database.
func (s *Store) LoadDB(id string) (*dataset.DB, error) {
	s.mu.Lock()
	d, ok := s.index[id]
	if !ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	ref := d.db
	s.mu.Unlock()
	payload, err := s.readPayload(ref)
	if err != nil {
		return nil, err
	}
	db, err := dataset.ReadBasketIDs(bytes.NewReader(payload))
	if err != nil {
		return nil, fmt.Errorf("store: db %q: %w", id, err)
	}
	return db, nil
}

// LoadSets rehydrates every saved pattern set of a database.
func (s *Store) LoadSets(id string) ([]Set, error) {
	s.mu.Lock()
	d, ok := s.index[id]
	if !ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	type pending struct {
		name     string
		minCount int
		saved    int64
		ref      recordRef
	}
	refs := make([]pending, 0, len(d.sets))
	for name, set := range d.sets {
		refs = append(refs, pending{name, set.minCount, set.saved, set.ref})
	}
	s.mu.Unlock()
	sort.Slice(refs, func(i, j int) bool { return refs[i].name < refs[j].name })
	out := make([]Set, 0, len(refs))
	for _, p := range refs {
		fp, err := s.loadPatterns(p.ref)
		if err != nil {
			return nil, fmt.Errorf("store: set %q/%q: %w", id, p.name, err)
		}
		out = append(out, Set{Name: p.name, MinCount: p.minCount,
			Saved: time.Unix(0, p.saved), Patterns: fp})
	}
	return out, nil
}

// LoadRungs rehydrates a database's persisted lattice ladder, ascending by
// threshold.
func (s *Store) LoadRungs(id string) ([]Rung, error) {
	s.mu.Lock()
	d, ok := s.index[id]
	if !ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	type pending struct {
		minCount int
		ref      recordRef
	}
	refs := make([]pending, 0, len(d.rungs))
	for minCount, r := range d.rungs {
		refs = append(refs, pending{minCount, r.ref})
	}
	s.mu.Unlock()
	sort.Slice(refs, func(i, j int) bool { return refs[i].minCount < refs[j].minCount })
	out := make([]Rung, 0, len(refs))
	for _, p := range refs {
		fp, err := s.loadPatterns(p.ref)
		if err != nil {
			return nil, fmt.Errorf("store: rung %q@%d: %w", id, p.minCount, err)
		}
		out = append(out, Rung{MinCount: p.minCount, Patterns: fp})
	}
	return out, nil
}

// loadPatterns reads and parses one pattern-set payload body.
func (s *Store) loadPatterns(ref recordRef) ([]mining.Pattern, error) {
	payload, err := s.readPayload(ref)
	if err != nil {
		return nil, err
	}
	set, err := patternio.Read(bytes.NewReader(payload))
	if err != nil {
		return nil, err
	}
	return set.Patterns, nil
}

// Compact rewrites the live records into a fresh segment and drops the old
// ones — the snapshot step of the snapshot/compaction ticker. The manifest
// swap is atomic; a crash at any point leaves either the old or the new
// segment list fully live.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	old := append([]int64{}, s.segs...)
	next := old[len(old)-1] + 1

	// Stream the live records into the compacted segment. Payload bytes are
	// copied verbatim (they are position-independent), so compaction never
	// re-encodes.
	f, err := os.OpenFile(s.segPath(next), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	abort := func(err error) error {
		f.Close()
		os.Remove(s.segPath(next))
		return err
	}
	if _, err := f.WriteString(segMagic); err != nil {
		return abort(fmt.Errorf("store: %w", err))
	}
	ids := make([]string, 0, len(s.index))
	for id := range s.index {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	off := int64(len(segMagic))
	newIndex := make(map[string]*dbState, len(s.index))
	copyRecord := func(ref recordRef, rebuild func(body []byte) []byte) (recordRef, error) {
		body := make([]byte, ref.n)
		if _, err := s.files[ref.seg].ReadAt(body, ref.off); err != nil {
			return recordRef{}, fmt.Errorf("store: compact read: %w", err)
		}
		payload := rebuild(body)
		var hdr [8]byte
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
		if _, err := f.Write(hdr[:]); err != nil {
			return recordRef{}, fmt.Errorf("store: %w", err)
		}
		if _, err := f.Write(payload); err != nil {
			return recordRef{}, fmt.Errorf("store: %w", err)
		}
		ref = recordRef{seg: next, off: off + 8, n: len(payload)}
		off += 8 + int64(len(payload))
		return ref, nil
	}
	for _, id := range ids {
		d := s.index[id]
		nd := &dbState{tenant: d.tenant, numTx: d.numTx, numItems: d.numItems,
			avgLen: d.avgLen, sets: map[string]*setState{}, rungs: map[int]*rungState{}}
		// The stored ref points at the payload *body*; re-encoding the header
		// around it reproduces the full record.
		headBytes := 0
		ref, err := copyRecord(d.db, func(body []byte) []byte {
			e := newEncoder(kindPutDB, id)
			e.string(d.tenant)
			e.uvarint(uint64(d.numTx))
			e.uvarint(uint64(d.numItems))
			e.float(d.avgLen)
			headBytes = len(e.buf)
			return append(e.buf, body...)
		})
		if err != nil {
			return abort(err)
		}
		nd.db = recordRef{seg: ref.seg, off: ref.off + int64(headBytes), n: ref.n - headBytes}
		for name, set := range d.sets {
			set := set
			ref, err := copyRecord(set.ref, func(body []byte) []byte {
				e := newEncoder(kindPutSet, id)
				e.string(name)
				e.uvarint(uint64(set.minCount))
				e.uvarint(uint64(set.saved))
				e.uvarint(uint64(set.patterns))
				e.uvarint(uint64(set.items))
				headBytes = len(e.buf)
				return append(e.buf, body...)
			})
			if err != nil {
				return abort(err)
			}
			nd.sets[name] = &setState{
				ref:      recordRef{seg: ref.seg, off: ref.off + int64(headBytes), n: ref.n - headBytes},
				minCount: set.minCount, patterns: set.patterns, items: set.items, saved: set.saved,
			}
		}
		for minCount, r := range d.rungs {
			r := r
			ref, err := copyRecord(r.ref, func(body []byte) []byte {
				e := newEncoder(kindPutRung, id)
				e.uvarint(uint64(minCount))
				e.uvarint(uint64(r.patterns))
				e.uvarint(uint64(r.items))
				headBytes = len(e.buf)
				return append(e.buf, body...)
			})
			if err != nil {
				return abort(err)
			}
			nd.rungs[minCount] = &rungState{
				ref:      recordRef{seg: ref.seg, off: ref.off + int64(headBytes), n: ref.n - headBytes},
				patterns: r.patterns, items: r.items,
			}
		}
		newIndex[id] = nd
	}
	if err := f.Sync(); err != nil {
		return abort(fmt.Errorf("store: %w", err))
	}

	// Fresh active segment after the snapshot, then the atomic manifest swap
	// makes [snapshot, active] the live list.
	activeSeq := next + 1
	af, err := os.OpenFile(s.segPath(activeSeq), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return abort(fmt.Errorf("store: %w", err))
	}
	abortBoth := func(err error) error {
		af.Close()
		os.Remove(s.segPath(activeSeq))
		return abort(err)
	}
	if _, err := af.WriteString(segMagic); err != nil {
		return abortBoth(fmt.Errorf("store: %w", err))
	}
	if err := af.Sync(); err != nil {
		return abortBoth(fmt.Errorf("store: %w", err))
	}
	if err := s.writeManifestLocked([]int64{next, activeSeq}); err != nil {
		return abortBoth(err)
	}

	// Swap in the new world and reclaim the old segments.
	for _, seq := range old {
		s.files[seq].Close()
		delete(s.files, seq)
		delete(s.sizes, seq)
		os.Remove(s.segPath(seq))
	}
	s.segs = []int64{next, activeSeq}
	s.files[next], s.sizes[next] = f, off
	s.files[activeSeq], s.sizes[activeSeq] = af, int64(len(segMagic))
	s.index = newIndex
	s.garbage = 0
	s.compacted++
	return nil
}

// StartSnapshots compacts the store every interval until Close. Compaction
// is skipped while the log holds no garbage, so an idle store does not churn
// its segment files.
func (s *Store) StartSnapshots(interval time.Duration) {
	if interval <= 0 {
		return
	}
	s.mu.Lock()
	if s.tick != nil || s.closed {
		s.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	s.tick, s.done = stop, done
	s.mu.Unlock()
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				s.mu.Lock()
				dirty := s.garbage > 0
				s.mu.Unlock()
				if dirty {
					s.Compact() // best-effort; next tick retries
				}
			}
		}
	}()
}

// Stats reports the store's occupancy for gauges and operator surfaces.
type Stats struct {
	Segments    int   `json:"segments"`
	DiskBytes   int64 `json:"disk_bytes"`
	Databases   int   `json:"databases"`
	Garbage     int64 `json:"garbage_bytes"`
	Compactions int64 `json:"compactions"`
}

// Stats returns current occupancy.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{Segments: len(s.segs), Databases: len(s.index),
		Garbage: s.garbage, Compactions: s.compacted}
	for _, n := range s.sizes {
		st.DiskBytes += n
	}
	return st
}

// Close stops the snapshot ticker and closes every segment file. Appends
// after Close return ErrClosed.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	stop, done := s.tick, s.done
	s.tick, s.done = nil, nil
	s.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closeFiles()
	return nil
}

func (s *Store) closeFiles() {
	for seq, f := range s.files {
		f.Close()
		delete(s.files, seq)
	}
}

// writeBasketIDs serializes a database in numeric-id basket format (one
// transaction per line), ignoring any dictionary so the round trip through
// ReadBasketIDs is exact.
func writeBasketIDs(buf *[]byte, db *dataset.DB) {
	for _, t := range db.All() {
		for j, it := range t {
			if j > 0 {
				*buf = append(*buf, ' ')
			}
			*buf = strconv.AppendInt(*buf, int64(it), 10)
		}
		*buf = append(*buf, '\n')
	}
}
