package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"gogreen/internal/dataset"
	"gogreen/internal/mining"
	"gogreen/internal/patternio"
)

func testDB() *dataset.DB {
	return dataset.New([][]dataset.Item{
		{1, 2, 3},
		{2, 3, 4},
		{1, 3},
		{3, 4, 5, 6},
	})
}

func testPatterns() []mining.Pattern {
	return []mining.Pattern{
		{Items: []dataset.Item{3}, Support: 4},
		{Items: []dataset.Item{2, 3}, Support: 2},
		{Items: []dataset.Item{1, 3}, Support: 2},
	}
}

func mustOpen(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

func samePatterns(a, b []mining.Pattern) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Support != b[i].Support || !reflect.DeepEqual(a[i].Items, b[i].Items) {
			return false
		}
	}
	return true
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	db := testDB()
	saved := time.Unix(0, 1700000000123456789)
	if err := s.PutDB("d1", "alice", db); err != nil {
		t.Fatalf("PutDB: %v", err)
	}
	if err := s.PutSet("d1", "hot", 2, saved, testPatterns()); err != nil {
		t.Fatalf("PutSet: %v", err)
	}
	if err := s.PutRung("d1", 2, testPatterns()); err != nil {
		t.Fatalf("PutRung: %v", err)
	}
	if err := s.PutRung("d1", 4, testPatterns()[:1]); err != nil {
		t.Fatalf("PutRung: %v", err)
	}
	s.Close()

	s = mustOpen(t, dir, Options{})
	defer s.Close()
	metas := s.List()
	if len(metas) != 1 {
		t.Fatalf("List = %d dbs, want 1", len(metas))
	}
	m := metas[0]
	if m.ID != "d1" || m.Tenant != "alice" || m.NumTx != 4 || m.Rungs != 2 {
		t.Fatalf("meta = %+v", m)
	}
	if len(m.Sets) != 1 || m.Sets[0].Name != "hot" || m.Sets[0].MinCount != 2 ||
		m.Sets[0].Patterns != 3 || m.Sets[0].Items != 5 || !m.Sets[0].Saved.Equal(saved) {
		t.Fatalf("set meta = %+v", m.Sets)
	}
	got, err := s.LoadDB("d1")
	if err != nil {
		t.Fatalf("LoadDB: %v", err)
	}
	if !reflect.DeepEqual(got.All(), db.All()) {
		t.Fatalf("LoadDB mismatch: %v vs %v", got.All(), db.All())
	}
	sets, err := s.LoadSets("d1")
	if err != nil {
		t.Fatalf("LoadSets: %v", err)
	}
	if len(sets) != 1 || sets[0].Name != "hot" || sets[0].MinCount != 2 ||
		!samePatterns(sets[0].Patterns, testPatterns()) {
		t.Fatalf("LoadSets = %+v", sets)
	}
	rungs, err := s.LoadRungs("d1")
	if err != nil {
		t.Fatalf("LoadRungs: %v", err)
	}
	if len(rungs) != 2 || rungs[0].MinCount != 2 || rungs[1].MinCount != 4 ||
		!samePatterns(rungs[0].Patterns, testPatterns()) ||
		!samePatterns(rungs[1].Patterns, testPatterns()[:1]) {
		t.Fatalf("LoadRungs = %+v", rungs)
	}
}

func TestReplaceAndDelete(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	defer s.Close()
	if err := s.PutDB("d1", "alice", testDB()); err != nil {
		t.Fatal(err)
	}
	if err := s.PutSet("d1", "hot", 2, time.Unix(1, 0), testPatterns()); err != nil {
		t.Fatal(err)
	}
	// Replacing the database drops its derived state.
	if err := s.PutDB("d1", "bob", testDB()); err != nil {
		t.Fatal(err)
	}
	m := s.List()[0]
	if m.Tenant != "bob" || len(m.Sets) != 0 || m.Rungs != 0 {
		t.Fatalf("after replace: %+v", m)
	}
	// Overwriting a set keeps exactly one.
	if err := s.PutSet("d1", "hot", 2, time.Unix(1, 0), testPatterns()); err != nil {
		t.Fatal(err)
	}
	if err := s.PutSet("d1", "hot", 4, time.Unix(2, 0), testPatterns()[:1]); err != nil {
		t.Fatal(err)
	}
	sets, err := s.LoadSets("d1")
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) != 1 || sets[0].MinCount != 4 || len(sets[0].Patterns) != 1 {
		t.Fatalf("after overwrite: %+v", sets)
	}
	// Rung drop.
	if err := s.PutRung("d1", 2, testPatterns()); err != nil {
		t.Fatal(err)
	}
	if err := s.DropRungs("d1"); err != nil {
		t.Fatal(err)
	}
	if rungs, _ := s.LoadRungs("d1"); len(rungs) != 0 {
		t.Fatalf("rungs after drop: %+v", rungs)
	}
	// Delete.
	if err := s.DeleteDB("d1"); err != nil {
		t.Fatal(err)
	}
	if len(s.List()) != 0 {
		t.Fatal("db survived delete")
	}
	if _, err := s.LoadDB("d1"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("LoadDB after delete: %v", err)
	}
	// Ops against a missing db.
	if err := s.PutSet("nope", "x", 1, time.Unix(1, 0), nil); !errors.Is(err, ErrNotFound) {
		t.Fatalf("PutSet on missing db: %v", err)
	}
	if err := s.DeleteDB("nope"); err != nil {
		t.Fatalf("DeleteDB on missing db: %v", err)
	}
}

// TestTornTailRecovery is the crash-recovery sweep the issue demands:
// truncate the active segment at every byte offset, reopen, and assert the
// store recovers exactly the acknowledged prefix — every record whose append
// completed before the cut survives byte-identically, the torn tail is
// discarded, and appends work afterwards.
func TestTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	db := testDB()
	type step struct {
		apply func(*Store) error
		check func(*Store) error
	}
	// Each step appends one record; offsets[i] is the segment size after
	// step i, so a cut at c recovers exactly the steps with offsets <= c.
	steps := []step{
		{
			apply: func(s *Store) error { return s.PutDB("d1", "alice", db) },
			check: func(s *Store) error {
				got, err := s.LoadDB("d1")
				if err != nil {
					return err
				}
				if !reflect.DeepEqual(got.All(), db.All()) {
					t.Fatal("db content mismatch after recovery")
				}
				return nil
			},
		},
		{
			apply: func(s *Store) error {
				return s.PutSet("d1", "hot", 2, time.Unix(0, 42), testPatterns())
			},
			check: func(s *Store) error {
				sets, err := s.LoadSets("d1")
				if err != nil {
					return err
				}
				if len(sets) != 1 || !samePatterns(sets[0].Patterns, testPatterns()) {
					t.Fatal("set mismatch after recovery")
				}
				return nil
			},
		},
		{
			apply: func(s *Store) error { return s.PutRung("d1", 2, testPatterns()) },
			check: func(s *Store) error {
				rungs, err := s.LoadRungs("d1")
				if err != nil {
					return err
				}
				if len(rungs) != 1 || !samePatterns(rungs[0].Patterns, testPatterns()) {
					t.Fatal("rung mismatch after recovery")
				}
				return nil
			},
		},
	}
	var offsets []int64
	for _, st := range steps {
		if err := st.apply(s); err != nil {
			t.Fatal(err)
		}
		offsets = append(offsets, s.sizes[s.segs[0]])
	}
	s.Close()
	seg := filepath.Join(dir, "seg-00000001.log")
	whole, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	manifest, err := os.ReadFile(filepath.Join(dir, "MANIFEST"))
	if err != nil {
		t.Fatal(err)
	}

	for cut := int64(0); cut <= int64(len(whole)); cut++ {
		cdir := t.TempDir()
		if err := os.WriteFile(filepath.Join(cdir, "MANIFEST"), manifest, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(cdir, "seg-00000001.log"), whole[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		rs, err := Open(cdir, Options{})
		if err != nil {
			t.Fatalf("cut %d: Open: %v", cut, err)
		}
		want := 0
		for _, off := range offsets {
			if off <= cut {
				want++
			}
		}
		for i := 0; i < want; i++ {
			if err := steps[i].check(rs); err != nil {
				t.Fatalf("cut %d: step %d lost: %v", cut, i, err)
			}
		}
		if want == 0 {
			if n := len(rs.List()); n != 0 {
				t.Fatalf("cut %d: %d dbs from nothing", cut, n)
			}
		}
		if want < len(steps) {
			// The torn record must be gone, not half-applied.
			m := rs.List()
			if want == 0 && len(m) != 0 {
				t.Fatalf("cut %d: torn putDB half-applied", cut)
			}
			if want >= 1 {
				if len(m) != 1 {
					t.Fatalf("cut %d: want d1 only, got %+v", cut, m)
				}
				if len(m[0].Sets) != min(want-1, 1) {
					t.Fatalf("cut %d: sets = %+v", cut, m[0].Sets)
				}
			}
		}
		// The store must accept appends after recovery.
		if err := rs.PutDB("post", "t", db); err != nil {
			t.Fatalf("cut %d: append after recovery: %v", cut, err)
		}
		rs.Close()
		// And the post-recovery append must itself be durable.
		rs2, err := Open(cdir, Options{})
		if err != nil {
			t.Fatalf("cut %d: reopen: %v", cut, err)
		}
		if _, err := rs2.LoadDB("post"); err != nil {
			t.Fatalf("cut %d: post-recovery db lost: %v", cut, err)
		}
		rs2.Close()
	}
}

// TestCorruptionMidSegment flips a byte inside the first of two records: a
// checksum failure ahead of valid data must not be silently truncated away.
func TestCorruptionMidSegment(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	if err := s.PutDB("d1", "a", testDB()); err != nil {
		t.Fatal(err)
	}
	first := s.sizes[s.segs[0]]
	if err := s.PutDB("d2", "a", testDB()); err != nil {
		t.Fatal(err)
	}
	s.Close()
	seg := filepath.Join(dir, "seg-00000001.log")
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[first-1] ^= 0xff // body of record 1, behind record 2
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	// The flipped record reads as a torn tail at offset len(magic), but a
	// valid record follows it — still, by the format alone this is
	// indistinguishable from a tail, so recovery truncates to the last
	// valid prefix. The acknowledged-state guarantee is about crashes (tails
	// only); what we assert here is that Open never surfaces half-valid data
	// as if nothing happened: d2 must be gone along with d1.
	rs, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer rs.Close()
	if n := len(rs.List()); n != 0 {
		t.Fatalf("recovered %d dbs past corruption", n)
	}
}

func TestRotationAndOrphans(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{MaxSegmentBytes: 256})
	for _, id := range []string{"a", "b", "c", "d"} {
		if err := s.PutDB(id, "t", testDB()); err != nil {
			t.Fatal(err)
		}
		if err := s.PutRung(id, 2, testPatterns()); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Stats(); st.Segments < 2 {
		t.Fatalf("expected rotation, stats = %+v", st)
	}
	s.Close()

	// Drop an orphan (crashed rotation leaves an unlisted file) and reopen.
	orphan := filepath.Join(dir, "seg-00009999.log")
	if err := os.WriteFile(orphan, []byte(segMagic+"junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	s = mustOpen(t, dir, Options{MaxSegmentBytes: 256})
	defer s.Close()
	if _, err := os.Stat(orphan); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("orphan segment survived Open")
	}
	if got := len(s.List()); got != 4 {
		t.Fatalf("recovered %d dbs across segments, want 4", got)
	}
	for _, id := range []string{"a", "b", "c", "d"} {
		if rungs, err := s.LoadRungs(id); err != nil || len(rungs) != 1 {
			t.Fatalf("db %s rungs after multi-segment recovery: %v %v", id, rungs, err)
		}
	}
}

func TestCompact(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	db := testDB()
	for _, id := range []string{"a", "b"} {
		if err := s.PutDB(id, "t", db); err != nil {
			t.Fatal(err)
		}
	}
	// Generate garbage: overwrite sets, drop rungs, delete a db.
	for i := 0; i < 5; i++ {
		if err := s.PutSet("a", "s", 2, time.Unix(int64(i), 0), testPatterns()); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.PutRung("a", 2, testPatterns()); err != nil {
		t.Fatal(err)
	}
	if err := s.PutDB("gone", "t", db); err != nil {
		t.Fatal(err)
	}
	if err := s.DeleteDB("gone"); err != nil {
		t.Fatal(err)
	}
	before := s.Stats()
	if before.Garbage == 0 {
		t.Fatal("expected garbage before compaction")
	}
	wantSets, err := s.LoadSets("a")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	after := s.Stats()
	if after.Garbage != 0 || after.Compactions != 1 || after.Segments != 2 {
		t.Fatalf("after compact: %+v", after)
	}
	if after.DiskBytes >= before.DiskBytes {
		t.Fatalf("compaction grew the store: %d -> %d", before.DiskBytes, after.DiskBytes)
	}
	// Live state identical through the rewrite...
	gotSets, err := s.LoadSets("a")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotSets, wantSets) {
		t.Fatalf("sets changed through compaction: %+v vs %+v", gotSets, wantSets)
	}
	if gotDB, err := s.LoadDB("b"); err != nil || !reflect.DeepEqual(gotDB.All(), db.All()) {
		t.Fatalf("db b through compaction: %v %v", gotDB, err)
	}
	// ...and writable + recoverable afterwards.
	if err := s.PutRung("b", 3, testPatterns()[:1]); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s = mustOpen(t, dir, Options{})
	defer s.Close()
	if !reflectDeepEqualSets(t, s, "a", wantSets) {
		t.Fatal("sets lost after compact+reopen")
	}
	if rungs, err := s.LoadRungs("b"); err != nil || len(rungs) != 1 || rungs[0].MinCount != 3 {
		t.Fatalf("post-compact rung after reopen: %v %v", rungs, err)
	}
	if old := filepath.Join(dir, "seg-00000001.log"); fileExists(old) {
		t.Fatal("compaction left the old segment behind")
	}
}

func reflectDeepEqualSets(t *testing.T, s *Store, id string, want []Set) bool {
	t.Helper()
	got, err := s.LoadSets(id)
	if err != nil {
		t.Fatal(err)
	}
	return reflect.DeepEqual(got, want)
}

func fileExists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}

func TestSnapshotTicker(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	if err := s.PutDB("d", "t", testDB()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.PutSet("d", "s", 2, time.Unix(int64(i), 0), testPatterns()); err != nil {
			t.Fatal(err)
		}
	}
	s.StartSnapshots(5 * time.Millisecond)
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Compactions == 0 {
		if time.Now().After(deadline) {
			t.Fatal("ticker never compacted")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st := s.Stats(); st.Garbage != 0 {
		t.Fatalf("garbage after ticker compaction: %+v", st)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Closed store rejects writes.
	if err := s.PutDB("x", "t", testDB()); !errors.Is(err, ErrClosed) {
		t.Fatalf("write after close: %v", err)
	}
}

func TestPatternBodyBytesMatchPatternio(t *testing.T) {
	// The persisted body must be byte-identical to patternio.Write's output
	// so exports and segments share one canonical form.
	e := newEncoder(kindPutSet, "x")
	at := len(e.buf)
	e.patterns(testPatterns(), 2)
	var want bytes.Buffer
	if err := writePatternioRef(&want, testPatterns(), 2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(e.buf[at:], want.Bytes()) {
		t.Fatalf("body:\n%q\nwant:\n%q", e.buf[at:], want.Bytes())
	}
}

func writePatternioRef(w *bytes.Buffer, fp []mining.Pattern, minCount int) error {
	return patternio.Write(w, patternio.Set{Patterns: fp, MinSupport: minCount})
}
