package store

import (
	"encoding/binary"
	"math"
	"strconv"

	"gogreen/internal/mining"
)

// encoder builds one record payload: a kind byte, the database id, then
// kind-specific header fields, then (for pattern records) a patternio text
// body. Header fields are uvarints and length-prefixed strings so payloads
// are position-independent — compaction copies bodies verbatim.
type encoder struct {
	buf []byte
}

func newEncoder(kind byte, id string) *encoder {
	e := &encoder{buf: make([]byte, 0, 64+len(id))}
	e.buf = append(e.buf, kind)
	e.string(id)
	return e
}

func (e *encoder) string(s string) {
	e.uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

func (e *encoder) uvarint(v uint64) {
	e.buf = binary.AppendUvarint(e.buf, v)
}

func (e *encoder) float(f float64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(f))
}

// patterns appends the patternio v1 text form of fp — the same bytes
// patternio.Write emits, so LoadSets/LoadRungs parse bodies with
// patternio.Read and a persisted set is byte-identical to its exported form.
func (e *encoder) patterns(fp []mining.Pattern, minCount int) {
	e.buf = append(e.buf, "# gogreen patterns v1\n"...)
	if minCount > 0 {
		e.buf = append(e.buf, "# minsupport "...)
		e.buf = strconv.AppendInt(e.buf, int64(minCount), 10)
		e.buf = append(e.buf, '\n')
	}
	for i := range fp {
		for j, it := range fp[i].Items {
			if j > 0 {
				e.buf = append(e.buf, ',')
			}
			e.buf = strconv.AppendInt(e.buf, int64(it), 10)
		}
		e.buf = append(e.buf, ':')
		e.buf = strconv.AppendInt(e.buf, int64(fp[i].Support), 10)
		e.buf = append(e.buf, '\n')
	}
}

// decoder walks a record payload's header fields; err is sticky and pos
// marks where the body (if any) begins once the header is consumed.
type decoder struct {
	buf []byte
	pos int
	err error
}

func (d *decoder) fail() {
	if d.err == nil {
		d.err = ErrCorrupt
	}
}

func (d *decoder) byte() byte {
	if d.err != nil || d.pos >= len(d.buf) {
		d.fail()
		return 0
	}
	b := d.buf[d.pos]
	d.pos++
	return b
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.pos:])
	if n <= 0 {
		d.fail()
		return 0
	}
	d.pos += n
	return v
}

func (d *decoder) string() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.buf)-d.pos) {
		d.fail()
		return ""
	}
	s := string(d.buf[d.pos : d.pos+int(n)])
	d.pos += int(n)
	return s
}

func (d *decoder) float() float64 {
	if d.err != nil {
		return 0
	}
	if d.pos+8 > len(d.buf) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf[d.pos:])
	d.pos += 8
	return math.Float64frombits(v)
}
