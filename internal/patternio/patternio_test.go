package patternio_test

import (
	"bytes"
	"errors"
	"path/filepath"
	"strings"
	"testing"

	"gogreen/internal/dataset"
	"gogreen/internal/mining"
	"gogreen/internal/patternio"
	"gogreen/internal/testutil"
)

func TestRoundTrip(t *testing.T) {
	db := testutil.PaperDB()
	fp := testutil.Oracle(t, db, 2).Slice()
	in := patternio.Set{Patterns: fp, MinSupport: 2}

	var buf bytes.Buffer
	if err := patternio.Write(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := patternio.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.MinSupport != 2 {
		t.Errorf("minsupport = %d, want 2", out.MinSupport)
	}
	if len(out.Patterns) != len(in.Patterns) {
		t.Fatalf("pattern count %d != %d", len(out.Patterns), len(in.Patterns))
	}
	want := mining.PatternSet{}
	for _, p := range in.Patterns {
		want[p.Key()] = p
	}
	for _, p := range out.Patterns {
		q, ok := want[p.Key()]
		if !ok || q.Support != p.Support {
			t.Errorf("pattern %v:%d not preserved", p.Items, p.Support)
		}
	}
}

func TestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "patterns.txt")
	in := patternio.Set{
		Patterns: []mining.Pattern{
			{Items: []dataset.Item{1, 5, 9}, Support: 7},
			{Items: []dataset.Item{2}, Support: 11},
		},
		MinSupport: 5,
	}
	if err := patternio.WriteFile(path, in); err != nil {
		t.Fatal(err)
	}
	out, err := patternio.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Patterns) != 2 || out.MinSupport != 5 {
		t.Fatalf("got %+v", out)
	}
}

func TestReadMissingFile(t *testing.T) {
	if _, err := patternio.ReadFile(filepath.Join(t.TempDir(), "nope.txt")); err == nil {
		t.Fatal("expected error")
	}
}

// TestCorruptInputs exercises every rejection path.
func TestCorruptInputs(t *testing.T) {
	cases := []struct {
		name string
		data string
	}{
		{"empty", ""},
		{"no header", "1,2:3\n"},
		{"wrong magic", "# other format\n1:2\n"},
		{"missing support", "# gogreen patterns v1\n1,2\n"},
		{"bad support", "# gogreen patterns v1\n1,2:x\n"},
		{"zero support", "# gogreen patterns v1\n1,2:0\n"},
		{"negative item", "# gogreen patterns v1\n-4:2\n"},
		{"bad item", "# gogreen patterns v1\n1,zap:2\n"},
		{"duplicate items", "# gogreen patterns v1\n3,3:2\n"},
		{"bad minsupport", "# gogreen patterns v1\n# minsupport nope\n"},
		{"huge item", "# gogreen patterns v1\n99999999999999:2\n"},
		// Signed tokens parse under strconv but are not canonical: "+3"
		// would round-trip to the different byte representation "3".
		{"plus-signed item", "# gogreen patterns v1\n+3:2\n"},
		{"plus-signed item in list", "# gogreen patterns v1\n1,+3:2\n"},
		{"plus-signed support", "# gogreen patterns v1\n1,3:+2\n"},
		{"minus-zero item", "# gogreen patterns v1\n-0:2\n"},
		{"plus-signed minsupport", "# gogreen patterns v1\n# minsupport +4\n1:5\n"},
		{"empty item token", "# gogreen patterns v1\n1,:2\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := patternio.Read(strings.NewReader(c.data))
			if !errors.Is(err, patternio.ErrBadFormat) {
				t.Errorf("Read(%q) err = %v, want ErrBadFormat", c.data, err)
			}
		})
	}
}

func TestWriteRejectsEmptyPattern(t *testing.T) {
	err := patternio.Write(&bytes.Buffer{}, patternio.Set{Patterns: []mining.Pattern{{Support: 3}}})
	if !errors.Is(err, patternio.ErrBadFormat) {
		t.Errorf("got %v, want ErrBadFormat", err)
	}
}

// TestItemsCanonicalized: unsorted input lines load canonically.
func TestItemsCanonicalized(t *testing.T) {
	s, err := patternio.Read(strings.NewReader("# gogreen patterns v1\n9,1,5:4\n"))
	if err != nil {
		t.Fatal(err)
	}
	want := []dataset.Item{1, 5, 9}
	if len(s.Patterns) != 1 || mining.Key(s.Patterns[0].Items) != mining.Key(want) {
		t.Fatalf("got %+v", s.Patterns)
	}
}

// TestBlankAndCommentLines are tolerated.
func TestBlankAndCommentLines(t *testing.T) {
	s, err := patternio.Read(strings.NewReader("# gogreen patterns v1\n\n# a comment\n1:2\n\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Patterns) != 1 {
		t.Fatalf("got %d patterns", len(s.Patterns))
	}
}
