package patternio_test

import (
	"bytes"
	"strings"
	"testing"

	"gogreen/internal/patternio"
)

// FuzzRead: arbitrary input never panics; accepted input survives a
// write/read round trip unchanged.
func FuzzRead(f *testing.F) {
	f.Add("# gogreen patterns v1\n1,2:3\n")
	f.Add("# gogreen patterns v1\n# minsupport 4\n9:4\n")
	f.Add("")
	f.Add("# gogreen patterns v1\n")
	f.Add("# gogreen patterns v1\n1,1:2\n")
	f.Add("# gogreen patterns v1\n-1:2\n")
	f.Add("# gogreen patterns v1\n+3:2\n")
	f.Add("# gogreen patterns v1\n1,+3:2\n")
	f.Add("# gogreen patterns v1\n3:+2\n")
	f.Add("# gogreen patterns v1\n-0:2\n")
	f.Add("# gogreen patterns v1\n# minsupport +4\n9:4\n")
	f.Fuzz(func(t *testing.T, input string) {
		set, err := patternio.Read(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := patternio.Write(&buf, set); err != nil {
			t.Fatalf("write of accepted set: %v", err)
		}
		back, err := patternio.Read(&buf)
		if err != nil {
			t.Fatalf("re-read of own output: %v", err)
		}
		if len(back.Patterns) != len(set.Patterns) || back.MinSupport != set.MinSupport {
			t.Fatalf("round trip changed set: %d/%d patterns, minsup %d/%d",
				len(back.Patterns), len(set.Patterns), back.MinSupport, set.MinSupport)
		}
	})
}
