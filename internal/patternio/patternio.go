// Package patternio persists frequent-pattern sets between mining
// iterations. In the paper's setting, the patterns discovered by one user
// (or one iteration) are the recyclable input of the next; this package is
// the storage layer that makes that hand-off durable.
//
// The format is line-oriented text:
//
//	# gogreen patterns v1
//	# minsupport 123
//	1,7,19:456
//
// — one pattern per line as comma-separated item ids, a colon, and the
// absolute support. Header lines start with '#'; the minsupport header is
// optional metadata recording the threshold the set was mined at.
package patternio

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"gogreen/internal/dataset"
	"gogreen/internal/mining"
)

const magic = "# gogreen patterns v1"

// ErrBadFormat reports a malformed pattern file.
var ErrBadFormat = errors.New("patternio: bad format")

// Set is a persisted pattern set plus its metadata.
type Set struct {
	Patterns []mining.Pattern
	// MinSupport is the absolute threshold the set was mined at; 0 when
	// unknown.
	MinSupport int
}

// Write serializes the set.
func Write(w io.Writer, s Set) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, magic)
	if s.MinSupport > 0 {
		fmt.Fprintf(bw, "# minsupport %d\n", s.MinSupport)
	}
	for _, p := range s.Patterns {
		if len(p.Items) == 0 {
			return fmt.Errorf("%w: empty pattern", ErrBadFormat)
		}
		for i, it := range p.Items {
			if i > 0 {
				bw.WriteByte(',')
			}
			bw.WriteString(strconv.Itoa(int(it)))
		}
		bw.WriteByte(':')
		bw.WriteString(strconv.Itoa(p.Support))
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// Read parses a pattern set, validating the header, item ids and supports.
func Read(r io.Reader) (Set, error) {
	var s Set
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return s, err
		}
		return s, fmt.Errorf("%w: empty file", ErrBadFormat)
	}
	if strings.TrimRight(sc.Text(), "\r") != magic {
		return s, fmt.Errorf("%w: missing %q header", ErrBadFormat, magic)
	}
	line := 1
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			if rest, ok := strings.CutPrefix(text, "# minsupport "); ok {
				v, err := parseCanonical(strings.TrimSpace(rest))
				if err != nil || v < 1 {
					return s, fmt.Errorf("%w: line %d: bad minsupport", ErrBadFormat, line)
				}
				s.MinSupport = v
			}
			continue
		}
		itemsStr, supStr, ok := strings.Cut(text, ":")
		if !ok {
			return s, fmt.Errorf("%w: line %d: missing support", ErrBadFormat, line)
		}
		sup, err := parseCanonical(supStr)
		if err != nil || sup < 1 {
			return s, fmt.Errorf("%w: line %d: bad support %q", ErrBadFormat, line, supStr)
		}
		var items []dataset.Item
		for _, tok := range strings.Split(itemsStr, ",") {
			v, err := parseCanonical(tok)
			if err != nil {
				return s, fmt.Errorf("%w: line %d: bad item %q", ErrBadFormat, line, tok)
			}
			items = append(items, dataset.Item(v))
		}
		canon := dataset.Canonical(items)
		if len(canon) != len(items) {
			return s, fmt.Errorf("%w: line %d: duplicate items", ErrBadFormat, line)
		}
		s.Patterns = append(s.Patterns, mining.Pattern{Items: canon, Support: sup})
	}
	if err := sc.Err(); err != nil {
		return s, err
	}
	return s, nil
}

// parseCanonical parses a non-negative integer in its canonical byte form:
// digits only. Signed tokens like "+3" or "-0" are rejected even though the
// strconv parsers accept them, because they would round-trip to a different
// byte representation than Write produces.
func parseCanonical(tok string) (int, error) {
	if tok == "" || tok[0] == '+' || tok[0] == '-' {
		return 0, fmt.Errorf("%w: signed or empty number %q", ErrBadFormat, tok)
	}
	v, err := strconv.ParseInt(tok, 10, 32)
	if err != nil {
		return 0, err
	}
	return int(v), nil
}

// WriteFile writes the set to path.
func WriteFile(path string, s Set) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, s); err != nil {
		f.Close()
		return fmt.Errorf("%s: %w", path, err)
	}
	return f.Close()
}

// ReadFile reads a pattern set from path.
func ReadFile(path string) (Set, error) {
	f, err := os.Open(path)
	if err != nil {
		return Set{}, err
	}
	defer f.Close()
	s, err := Read(f)
	if err != nil {
		return Set{}, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}
