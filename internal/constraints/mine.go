package constraints

import (
	"context"
	"errors"
	"fmt"

	"gogreen/internal/dataset"
	"gogreen/internal/mining"
)

// ErrNoMinSupport is returned by Mine when the constraint set lacks a
// MinSupport conjunct: without one the frequent-pattern semantics are
// undefined.
var ErrNoMinSupport = errors.New("constraints: set has no minsupport constraint")

// MinSupportOf extracts the MinSupport threshold from a set, or 0.
func MinSupportOf(s Set) int {
	for _, c := range s {
		if ms, ok := c.(MinSupport); ok {
			return ms.Count
		}
	}
	return 0
}

// Mine runs constrained frequent-pattern mining: it pushes what it can into
// the mining itself and post-filters the rest.
//
//   - MinSupport drives the miner natively (anti-monotone, pushed fully).
//   - ItemsFrom (succinct anti-monotone) is pushed by deleting excluded
//     items from the database before mining: no pattern over excluded items
//     is ever generated, and supports of allowed patterns are unchanged.
//   - All remaining constraints (monotone, convertible, other anti-monotone)
//     are applied as a filter on the stream of frequent patterns. This keeps
//     the wrapper algorithm-agnostic; pushing them deeper is a per-algorithm
//     optimization the paper's recycling scheme deliberately does not depend
//     on ("a non-intrusive method of reusing patterns ... no matter what
//     type of constraints", Section 6).
//
// The sink receives exactly the frequent patterns satisfying every
// constraint.
func Mine(db *dataset.DB, cs Set, miner mining.Miner, sink mining.Sink) error {
	return MineContext(context.Background(), db, cs, miner, sink)
}

// MineContext is Mine with cooperative cancellation: when miner implements
// mining.ContextMiner the context is threaded into the recursion, otherwise
// it is checked only at the call boundaries.
func MineContext(ctx context.Context, db *dataset.DB, cs Set, miner mining.Miner, sink mining.Sink) error {
	min := MinSupportOf(cs)
	if min < 1 {
		return ErrNoMinSupport
	}
	mineDB := db
	var rest Set
	for _, c := range cs {
		switch c := c.(type) {
		case MinSupport:
			// Handled natively.
		case ItemsFrom:
			mineDB = pushItemsFrom(mineDB, c)
		default:
			rest = append(rest, c)
		}
	}
	if len(rest) == 0 {
		return mining.MineContext(ctx, miner, mineDB, min, sink)
	}
	filter := mining.SinkFunc(func(items []dataset.Item, support int) {
		if rest.Satisfied(items, support) {
			sink.Emit(items, support)
		}
	})
	return mining.MineContext(ctx, miner, mineDB, min, filter)
}

// pushItemsFrom deletes excluded items from every tuple.
func pushItemsFrom(db *dataset.DB, c ItemsFrom) *dataset.DB {
	tx := make([][]dataset.Item, 0, db.Len())
	for _, t := range db.All() {
		nt := make([]dataset.Item, 0, len(t))
		for _, it := range t {
			if c.Allows(it) {
				nt = append(nt, it)
			}
		}
		if len(nt) > 0 {
			tx = append(tx, nt)
		}
	}
	return dataset.New(tx)
}

// FilterSet post-filters a mined pattern set by the non-support constraints
// of cs — the tighten path for constraint combinations (Section 2: when
// constraints tighten, the new answer is a filter of the old).
func FilterSet(fp []mining.Pattern, cs Set) []mining.Pattern {
	out := make([]mining.Pattern, 0, len(fp))
	for _, p := range fp {
		if cs.Satisfied(p.Items, p.Support) {
			out = append(out, p)
		}
	}
	return out
}

// Describe renders a one-line description of a set with thresholds, for
// logs and the interactive example.
func Describe(s Set) string {
	if len(s) == 0 {
		return "unconstrained"
	}
	out := ""
	for i, c := range s {
		if i > 0 {
			out += " ∧ "
		}
		switch c := c.(type) {
		case MinSupport:
			out += fmt.Sprintf("sup>=%d", c.Count)
		case MaxSupport:
			out += fmt.Sprintf("sup<=%d", c.Count)
		case MinLength:
			out += fmt.Sprintf("len>=%d", c.N)
		case MaxLength:
			out += fmt.Sprintf("len<=%d", c.N)
		default:
			out += c.Name()
		}
	}
	return out
}
