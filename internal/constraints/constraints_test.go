package constraints_test

import (
	"math/rand"
	"testing"

	"gogreen/internal/apriori"
	"gogreen/internal/constraints"
	"gogreen/internal/core"
	"gogreen/internal/dataset"
	"gogreen/internal/engine"
	"gogreen/internal/mining"
	"gogreen/internal/testutil"
)

func TestClasses(t *testing.T) {
	cases := []struct {
		c    constraints.Constraint
		want constraints.Class
	}{
		{constraints.MinSupport{Count: 2}, constraints.AntiMonotone},
		{constraints.MaxSupport{Count: 9}, constraints.Monotone},
		{constraints.MinLength{N: 2}, constraints.Monotone},
		{constraints.MaxLength{N: 4}, constraints.AntiMonotone},
		{constraints.NewItemsFrom(1, 2), constraints.Succinct},
		{constraints.NewContains(3), constraints.Succinct},
		{constraints.SumLeq{Bound: 5}, constraints.AntiMonotone},
		{constraints.SumGeq{Bound: 5}, constraints.Monotone},
		{constraints.AvgGeq{Bound: 5}, constraints.Convertible},
	}
	for _, c := range cases {
		if got := c.c.Class(); got != c.want {
			t.Errorf("%s class = %v, want %v", c.c.Name(), got, c.want)
		}
	}
}

// TestClassLaws property-checks the defining laws of anti-monotone and
// monotone constraints on random patterns and their supersets.
func TestClassLaws(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	values := make([]float64, 50)
	for i := range values {
		values[i] = r.Float64() * 10
	}
	cons := []constraints.Constraint{
		constraints.MaxLength{N: 4},
		constraints.MinLength{N: 3},
		constraints.SumLeq{Values: values, Bound: 12},
		constraints.SumGeq{Values: values, Bound: 12},
	}
	for rep := 0; rep < 200; rep++ {
		n := 1 + r.Intn(6)
		base := make([]dataset.Item, 0, n)
		for len(base) < n {
			base = append(base, dataset.Item(r.Intn(50)))
		}
		base = dataset.Canonical(base)
		super := dataset.Canonical(append(append([]dataset.Item(nil), base...), dataset.Item(r.Intn(50))))
		if len(super) == len(base) {
			continue
		}
		for _, c := range cons {
			bs, ss := c.Satisfied(base, 10), c.Satisfied(super, 5)
			switch c.Class() {
			case constraints.AntiMonotone:
				if !bs && ss {
					t.Fatalf("%s: superset satisfied while subset violated (%v ⊂ %v)", c.Name(), base, super)
				}
			case constraints.Monotone:
				if bs && !ss {
					t.Fatalf("%s: subset satisfied while superset violated (%v ⊂ %v)", c.Name(), base, super)
				}
			}
		}
	}
}

func TestCompareRelations(t *testing.T) {
	cases := []struct {
		old, new constraints.Set
		want     constraints.Relation
	}{
		{
			constraints.Set{constraints.MinSupport{Count: 3}},
			constraints.Set{constraints.MinSupport{Count: 3}},
			constraints.Equal,
		},
		{
			constraints.Set{constraints.MinSupport{Count: 3}},
			constraints.Set{constraints.MinSupport{Count: 5}},
			constraints.Tighter,
		},
		{
			constraints.Set{constraints.MinSupport{Count: 5}},
			constraints.Set{constraints.MinSupport{Count: 2}},
			constraints.Looser,
		},
		{
			// Added conjunct tightens.
			constraints.Set{constraints.MinSupport{Count: 3}},
			constraints.Set{constraints.MinSupport{Count: 3}, constraints.MaxLength{N: 3}},
			constraints.Tighter,
		},
		{
			// Dropped conjunct loosens.
			constraints.Set{constraints.MinSupport{Count: 3}, constraints.MaxLength{N: 3}},
			constraints.Set{constraints.MinSupport{Count: 3}},
			constraints.Looser,
		},
		{
			// Support up but length bound relaxed: mixed.
			constraints.Set{constraints.MinSupport{Count: 3}, constraints.MaxLength{N: 3}},
			constraints.Set{constraints.MinSupport{Count: 5}, constraints.MaxLength{N: 6}},
			constraints.Incomparable,
		},
		{
			constraints.Set{constraints.NewItemsFrom(1, 2, 3)},
			constraints.Set{constraints.NewItemsFrom(1, 2)},
			constraints.Tighter,
		},
		{
			constraints.Set{constraints.NewContains(1)},
			constraints.Set{constraints.NewContains(1, 2)},
			constraints.Looser,
		},
	}
	for i, c := range cases {
		if got := constraints.Compare(c.old, c.new); got != c.want {
			t.Errorf("case %d: Compare = %v, want %v", i, got, c.want)
		}
	}
}

// TestConstrainedMine checks Mine against brute-force filtering of the full
// frequent set, for every constraint kind, with both a baseline and a
// recycling miner.
func TestConstrainedMine(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	values := make([]float64, 40)
	for i := range values {
		values[i] = float64(i%7) + 0.5
	}
	for rep := 0; rep < 8; rep++ {
		db := testutil.RandomDB(r, 40+r.Intn(60), 6+r.Intn(12), 2+r.Intn(8))
		full := testutil.Oracle(t, db, 2)
		fp := testutil.Oracle(t, db, 4).Slice()

		sets := []constraints.Set{
			{constraints.MinSupport{Count: 2}, constraints.MaxLength{N: 3}},
			{constraints.MinSupport{Count: 2}, constraints.MinLength{N: 2}},
			{constraints.MinSupport{Count: 2}, constraints.MaxSupport{Count: 10}},
			{constraints.MinSupport{Count: 2}, constraints.NewItemsFrom(0, 1, 2, 3, 4, 5)},
			{constraints.MinSupport{Count: 2}, constraints.NewContains(0, 1)},
			{constraints.MinSupport{Count: 2}, constraints.SumLeq{Values: values, Bound: 8}},
			{constraints.MinSupport{Count: 2}, constraints.SumGeq{Values: values, Bound: 4}},
			{constraints.MinSupport{Count: 2}, constraints.AvgGeq{Values: values, Bound: 2}},
		}
		miners := []mining.Miner{
			apriori.New(),
			engine.NewRecycler(fp, core.MCP, nil),
		}
		for _, cs := range sets {
			want := mining.PatternSet{}
			for k, p := range full {
				if cs.Satisfied(p.Items, p.Support) {
					want[k] = p
				}
			}
			for _, m := range miners {
				var col mining.Collector
				if err := constraints.Mine(db, cs, m, &col); err != nil {
					t.Fatalf("%s / %s: %v", constraints.Describe(cs), m.Name(), err)
				}
				got, err := col.Set()
				if err != nil {
					t.Fatal(err)
				}
				if !got.Equal(want) {
					t.Fatalf("%s / %s:\n%v", constraints.Describe(cs), m.Name(), got.Diff(want, 10))
				}
			}
		}
	}
}

func TestMineNoMinSupport(t *testing.T) {
	db := testutil.PaperDB()
	err := constraints.Mine(db, constraints.Set{constraints.MaxLength{N: 3}}, apriori.New(),
		mining.SinkFunc(func([]dataset.Item, int) {}))
	if err != constraints.ErrNoMinSupport {
		t.Errorf("got %v, want ErrNoMinSupport", err)
	}
}

// TestCompareAllKinds drives every constraint kind's Compare through its
// equal/tighter/looser/mismatch branches.
func TestCompareAllKinds(t *testing.T) {
	v1 := []float64{1, 2, 3}
	v2 := []float64{1, 2, 4}
	cases := []struct {
		name     string
		old, new constraints.Constraint
		want     constraints.Relation
	}{
		{"minsup equal", constraints.MinSupport{Count: 3}, constraints.MinSupport{Count: 3}, constraints.Equal},
		{"minsup tighter", constraints.MinSupport{Count: 3}, constraints.MinSupport{Count: 5}, constraints.Tighter},
		{"minsup looser", constraints.MinSupport{Count: 5}, constraints.MinSupport{Count: 3}, constraints.Looser},
		{"maxsup equal", constraints.MaxSupport{Count: 9}, constraints.MaxSupport{Count: 9}, constraints.Equal},
		{"maxsup tighter", constraints.MaxSupport{Count: 9}, constraints.MaxSupport{Count: 5}, constraints.Tighter},
		{"maxsup looser", constraints.MaxSupport{Count: 5}, constraints.MaxSupport{Count: 9}, constraints.Looser},
		{"minlen tighter", constraints.MinLength{N: 2}, constraints.MinLength{N: 4}, constraints.Tighter},
		{"minlen looser", constraints.MinLength{N: 4}, constraints.MinLength{N: 2}, constraints.Looser},
		{"maxlen tighter", constraints.MaxLength{N: 4}, constraints.MaxLength{N: 2}, constraints.Tighter},
		{"maxlen looser", constraints.MaxLength{N: 2}, constraints.MaxLength{N: 4}, constraints.Looser},
		{"itemsfrom equal", constraints.NewItemsFrom(1, 2), constraints.NewItemsFrom(2, 1), constraints.Equal},
		{"itemsfrom incomparable", constraints.NewItemsFrom(1, 2), constraints.NewItemsFrom(2, 3), constraints.Incomparable},
		{"contains equal", constraints.NewContains(4), constraints.NewContains(4), constraints.Equal},
		{"contains tighter", constraints.NewContains(4, 5), constraints.NewContains(4), constraints.Tighter},
		{"contains incomparable", constraints.NewContains(4), constraints.NewContains(5), constraints.Incomparable},
		{"sumleq equal", constraints.SumLeq{Values: v1, Bound: 5}, constraints.SumLeq{Values: v1, Bound: 5}, constraints.Equal},
		{"sumleq tighter", constraints.SumLeq{Values: v1, Bound: 5}, constraints.SumLeq{Values: v1, Bound: 3}, constraints.Tighter},
		{"sumleq looser", constraints.SumLeq{Values: v1, Bound: 3}, constraints.SumLeq{Values: v1, Bound: 5}, constraints.Looser},
		{"sumleq values differ", constraints.SumLeq{Values: v1, Bound: 5}, constraints.SumLeq{Values: v2, Bound: 5}, constraints.Incomparable},
		{"sumgeq tighter", constraints.SumGeq{Values: v1, Bound: 3}, constraints.SumGeq{Values: v1, Bound: 5}, constraints.Tighter},
		{"sumgeq looser", constraints.SumGeq{Values: v1, Bound: 5}, constraints.SumGeq{Values: v1, Bound: 3}, constraints.Looser},
		{"sumgeq equal", constraints.SumGeq{Values: v1, Bound: 3}, constraints.SumGeq{Values: v1, Bound: 3}, constraints.Equal},
		{"avggeq tighter", constraints.AvgGeq{Values: v1, Bound: 1}, constraints.AvgGeq{Values: v1, Bound: 2}, constraints.Tighter},
		{"avggeq looser", constraints.AvgGeq{Values: v1, Bound: 2}, constraints.AvgGeq{Values: v1, Bound: 1}, constraints.Looser},
		{"avggeq equal", constraints.AvgGeq{Values: v1, Bound: 2}, constraints.AvgGeq{Values: v1, Bound: 2}, constraints.Equal},
		{"avggeq lengths differ", constraints.AvgGeq{Values: v1, Bound: 2}, constraints.AvgGeq{Values: v1[:2], Bound: 2}, constraints.Incomparable},
		{"cross-kind", constraints.MinSupport{Count: 3}, constraints.MaxLength{N: 3}, constraints.Incomparable},
		{"cross-kind sums", constraints.SumLeq{Values: v1, Bound: 5}, constraints.SumGeq{Values: v1, Bound: 5}, constraints.Incomparable},
	}
	for _, c := range cases {
		if got := c.new.Compare(c.old); got != c.want {
			t.Errorf("%s: Compare = %v, want %v", c.name, got, c.want)
		}
	}
}

// TestSatisfiedEdgeCases covers remaining predicate branches.
func TestSatisfiedEdgeCases(t *testing.T) {
	v := []float64{1, 2, 3}
	if (constraints.AvgGeq{Values: v, Bound: 0}).Satisfied(nil, 5) {
		t.Error("avg of empty pattern should not satisfy")
	}
	// Items beyond the values table count as zero.
	if !(constraints.SumLeq{Values: v, Bound: 0.5}).Satisfied([]dataset.Item{99}, 1) {
		t.Error("missing value should be 0")
	}
	if (constraints.SumGeq{Values: v, Bound: 0.5}).Satisfied([]dataset.Item{99}, 1) {
		t.Error("missing value should be 0 for sumgeq too")
	}
	if !(constraints.NewItemsFrom()).Satisfied(nil, 1) {
		t.Error("empty pattern is drawn from any allowed set")
	}
	if (constraints.NewContains(1)).Satisfied(nil, 1) {
		t.Error("empty pattern contains nothing")
	}
	// Labeled sum constraints get distinct names.
	a := constraints.SumLeq{Label: "A"}
	b := constraints.SumLeq{Label: "B"}
	if a.Name() == b.Name() {
		t.Error("labels should distinguish names")
	}
	if (constraints.SumGeq{Label: "x"}).Name() != "sumgeqx" || (constraints.AvgGeq{Label: "y"}).Name() != "avggeqy" {
		t.Error("labeled names")
	}
}

// TestSetSatisfiedAndString covers the Set helpers.
func TestSetSatisfiedAndString(t *testing.T) {
	s := constraints.Set{constraints.MinSupport{Count: 3}, constraints.MaxLength{N: 2}}
	if !s.Satisfied([]dataset.Item{1, 2}, 5) {
		t.Error("should satisfy")
	}
	if s.Satisfied([]dataset.Item{1, 2, 3}, 5) {
		t.Error("length bound violated")
	}
	if s.Satisfied([]dataset.Item{1}, 2) {
		t.Error("support bound violated")
	}
	if s.String() != "minsupport ∧ maxlength" {
		t.Errorf("String = %q", s.String())
	}
	if (constraints.Set{}).String() != "true" {
		t.Error("empty set string")
	}
	if constraints.MinSupportOf(constraints.Set{constraints.MaxLength{N: 2}}) != 0 {
		t.Error("MinSupportOf without minsupport")
	}
}

func TestDescribeAndStrings(t *testing.T) {
	s := constraints.Set{constraints.MinSupport{Count: 3}, constraints.MaxLength{N: 4}}
	if d := constraints.Describe(s); d != "sup>=3 ∧ len<=4" {
		t.Errorf("Describe = %q", d)
	}
	if constraints.Describe(nil) != "unconstrained" {
		t.Error("empty describe")
	}
	if constraints.AntiMonotone.String() != "anti-monotone" ||
		constraints.Monotone.String() != "monotone" ||
		constraints.Succinct.String() != "succinct" ||
		constraints.Convertible.String() != "convertible" {
		t.Error("Class strings")
	}
	if constraints.Tighter.String() != "tighter" || constraints.Looser.String() != "looser" ||
		constraints.Equal.String() != "equal" || constraints.Incomparable.String() != "incomparable" {
		t.Error("Relation strings")
	}
}
