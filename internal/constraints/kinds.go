package constraints

import "gogreen/internal/dataset"

// MinSupport requires sup(X) >= Count. The essential anti-monotone
// constraint of frequent-pattern mining.
type MinSupport struct{ Count int }

// Name implements Constraint.
func (MinSupport) Name() string { return "minsupport" }

// Class implements Constraint.
func (MinSupport) Class() Class { return AntiMonotone }

// Satisfied implements Constraint.
func (c MinSupport) Satisfied(_ []dataset.Item, support int) bool { return support >= c.Count }

// Compare implements Constraint.
func (c MinSupport) Compare(old Constraint) Relation {
	o, ok := old.(MinSupport)
	if !ok {
		return Incomparable
	}
	return cmpThreshold(c.Count, o.Count, true)
}

// MaxSupport requires sup(X) <= Count (rare-pattern constraints). Monotone:
// supersets only lose support.
type MaxSupport struct{ Count int }

// Name implements Constraint.
func (MaxSupport) Name() string { return "maxsupport" }

// Class implements Constraint.
func (MaxSupport) Class() Class { return Monotone }

// Satisfied implements Constraint.
func (c MaxSupport) Satisfied(_ []dataset.Item, support int) bool { return support <= c.Count }

// Compare implements Constraint.
func (c MaxSupport) Compare(old Constraint) Relation {
	o, ok := old.(MaxSupport)
	if !ok {
		return Incomparable
	}
	return cmpThreshold(c.Count, o.Count, false)
}

// MinLength requires |X| >= N (monotone).
type MinLength struct{ N int }

// Name implements Constraint.
func (MinLength) Name() string { return "minlength" }

// Class implements Constraint.
func (MinLength) Class() Class { return Monotone }

// Satisfied implements Constraint.
func (c MinLength) Satisfied(items []dataset.Item, _ int) bool { return len(items) >= c.N }

// Compare implements Constraint.
func (c MinLength) Compare(old Constraint) Relation {
	o, ok := old.(MinLength)
	if !ok {
		return Incomparable
	}
	return cmpThreshold(c.N, o.N, true)
}

// MaxLength requires |X| <= N (anti-monotone).
type MaxLength struct{ N int }

// Name implements Constraint.
func (MaxLength) Name() string { return "maxlength" }

// Class implements Constraint.
func (MaxLength) Class() Class { return AntiMonotone }

// Satisfied implements Constraint.
func (c MaxLength) Satisfied(items []dataset.Item, _ int) bool { return len(items) <= c.N }

// Compare implements Constraint.
func (c MaxLength) Compare(old Constraint) Relation {
	o, ok := old.(MaxLength)
	if !ok {
		return Incomparable
	}
	return cmpThreshold(c.N, o.N, false)
}

// ItemsFrom requires X ⊆ Allowed (succinct and anti-monotone): patterns draw
// items from an allowed set only. The zero value (nil Allowed) admits
// nothing; build with NewItemsFrom.
type ItemsFrom struct{ allowed map[dataset.Item]bool }

// NewItemsFrom builds an ItemsFrom constraint over the given items.
func NewItemsFrom(items ...dataset.Item) ItemsFrom {
	m := make(map[dataset.Item]bool, len(items))
	for _, it := range items {
		m[it] = true
	}
	return ItemsFrom{allowed: m}
}

// Name implements Constraint.
func (ItemsFrom) Name() string { return "itemsfrom" }

// Class implements Constraint.
func (ItemsFrom) Class() Class { return Succinct }

// Satisfied implements Constraint.
func (c ItemsFrom) Satisfied(items []dataset.Item, _ int) bool {
	for _, it := range items {
		if !c.allowed[it] {
			return false
		}
	}
	return true
}

// Allows reports whether a single item may appear (used to push the
// constraint into the database before mining).
func (c ItemsFrom) Allows(it dataset.Item) bool { return c.allowed[it] }

// Compare implements Constraint.
func (c ItemsFrom) Compare(old Constraint) Relation {
	o, ok := old.(ItemsFrom)
	if !ok {
		return Incomparable
	}
	sub, sup := true, true
	for it := range c.allowed {
		if !o.allowed[it] {
			sup = false
			break
		}
	}
	for it := range o.allowed {
		if !c.allowed[it] {
			sub = false
			break
		}
	}
	switch {
	case sub && sup:
		return Equal
	case sup: // new allowed ⊆ old allowed
		return Tighter
	case sub:
		return Looser
	default:
		return Incomparable
	}
}

// Contains requires X ∩ Required ≠ ∅ (succinct and monotone). Build with
// NewContains.
type Contains struct{ required map[dataset.Item]bool }

// NewContains builds a Contains constraint over the given items.
func NewContains(items ...dataset.Item) Contains {
	m := make(map[dataset.Item]bool, len(items))
	for _, it := range items {
		m[it] = true
	}
	return Contains{required: m}
}

// Name implements Constraint.
func (Contains) Name() string { return "contains" }

// Class implements Constraint.
func (Contains) Class() Class { return Succinct }

// Satisfied implements Constraint.
func (c Contains) Satisfied(items []dataset.Item, _ int) bool {
	for _, it := range items {
		if c.required[it] {
			return true
		}
	}
	return false
}

// Compare implements Constraint.
func (c Contains) Compare(old Constraint) Relation {
	o, ok := old.(Contains)
	if !ok {
		return Incomparable
	}
	sub, sup := true, true
	for it := range c.required {
		if !o.required[it] {
			sup = false
			break
		}
	}
	for it := range o.required {
		if !c.required[it] {
			sub = false
			break
		}
	}
	switch {
	case sub && sup:
		return Equal
	case sup: // fewer ways to hit the required set
		return Tighter
	case sub:
		return Looser
	default:
		return Incomparable
	}
}

// SumLeq requires Σ value(i) <= Bound for non-negative item values
// (anti-monotone), e.g. "total price at most v".
type SumLeq struct {
	Values []float64 // per item id; missing ids value 0
	Bound  float64
	Label  string // distinguishes multiple sum constraints; "" ok
}

// Name implements Constraint.
func (c SumLeq) Name() string { return "sumleq" + c.Label }

// Class implements Constraint.
func (SumLeq) Class() Class { return AntiMonotone }

// Satisfied implements Constraint.
func (c SumLeq) Satisfied(items []dataset.Item, _ int) bool {
	return sum(c.Values, items) <= c.Bound
}

// Compare implements Constraint.
func (c SumLeq) Compare(old Constraint) Relation {
	o, ok := old.(SumLeq)
	if !ok || !sameValues(c.Values, o.Values) {
		return Incomparable
	}
	if c.Bound == o.Bound {
		return Equal
	}
	if c.Bound < o.Bound {
		return Tighter
	}
	return Looser
}

// SumGeq requires Σ value(i) >= Bound for non-negative item values
// (monotone), e.g. "total price at least v".
type SumGeq struct {
	Values []float64
	Bound  float64
	Label  string
}

// Name implements Constraint.
func (c SumGeq) Name() string { return "sumgeq" + c.Label }

// Class implements Constraint.
func (SumGeq) Class() Class { return Monotone }

// Satisfied implements Constraint.
func (c SumGeq) Satisfied(items []dataset.Item, _ int) bool {
	return sum(c.Values, items) >= c.Bound
}

// Compare implements Constraint.
func (c SumGeq) Compare(old Constraint) Relation {
	o, ok := old.(SumGeq)
	if !ok || !sameValues(c.Values, o.Values) {
		return Incomparable
	}
	if c.Bound == o.Bound {
		return Equal
	}
	if c.Bound > o.Bound {
		return Tighter
	}
	return Looser
}

// AvgGeq requires avg value(i) >= Bound — the classic convertible
// constraint: neither monotone nor anti-monotone, but anti-monotone when
// items are explored in descending value order.
type AvgGeq struct {
	Values []float64
	Bound  float64
	Label  string
}

// Name implements Constraint.
func (c AvgGeq) Name() string { return "avggeq" + c.Label }

// Class implements Constraint.
func (AvgGeq) Class() Class { return Convertible }

// Satisfied implements Constraint.
func (c AvgGeq) Satisfied(items []dataset.Item, _ int) bool {
	if len(items) == 0 {
		return false
	}
	return sum(c.Values, items)/float64(len(items)) >= c.Bound
}

// Compare implements Constraint.
func (c AvgGeq) Compare(old Constraint) Relation {
	o, ok := old.(AvgGeq)
	if !ok || !sameValues(c.Values, o.Values) {
		return Incomparable
	}
	if c.Bound == o.Bound {
		return Equal
	}
	if c.Bound > o.Bound {
		return Tighter
	}
	return Looser
}

// cmpThreshold compares numeric thresholds; higherIsTighter selects the
// direction.
func cmpThreshold(new, old int, higherIsTighter bool) Relation {
	switch {
	case new == old:
		return Equal
	case (new > old) == higherIsTighter:
		return Tighter
	default:
		return Looser
	}
}

func sum(values []float64, items []dataset.Item) float64 {
	s := 0.0
	for _, it := range items {
		if int(it) < len(values) {
			s += values[it]
		}
	}
	return s
}

func sameValues(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
