// Package constraints models the constrained-mining setting of the paper's
// introduction: users restrict frequent-pattern mining with constraints of
// the four classes the literature integrates into mining algorithms —
// anti-monotone, monotone, succinct, and convertible (Section 2) — and then
// iterate, tightening or relaxing them between rounds.
//
// The package provides the constraint vocabulary, evaluation, the
// tighten/relax comparison that drives the recycling decision (tightened →
// filter the old patterns; relaxed → compress and re-mine), and a
// constrained-mining wrapper that pushes succinct item constraints into the
// database and post-filters the rest.
package constraints

import (
	"fmt"
	"strings"

	"gogreen/internal/dataset"
)

// Class is a constraint class, which determines how a constraint can be
// pushed into mining and how threshold changes relate old and new result
// sets.
type Class int

const (
	// AntiMonotone: if a pattern violates it, so do all supersets
	// (e.g. minimum support, maximum length, sum of non-negative prices <= v).
	AntiMonotone Class = iota
	// Monotone: if a pattern satisfies it, so do all supersets
	// (e.g. minimum length, sum of non-negative prices >= v).
	Monotone
	// Succinct: satisfaction is decided by item membership alone, so the
	// qualifying items can be selected before mining (e.g. "items drawn
	// from S only", "must contain an item of S").
	Succinct
	// Convertible: becomes anti-monotone or monotone under a suitable item
	// order (e.g. average price >= v under descending price order).
	Convertible
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case AntiMonotone:
		return "anti-monotone"
	case Monotone:
		return "monotone"
	case Succinct:
		return "succinct"
	case Convertible:
		return "convertible"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Constraint is one predicate over patterns.
type Constraint interface {
	// Name identifies the constraint kind for comparison and display.
	Name() string
	// Class returns the constraint's class.
	Class() Class
	// Satisfied reports whether a pattern with the given support meets the
	// constraint. Items are sorted ascending.
	Satisfied(items []dataset.Item, support int) bool
	// Compare relates this constraint to an earlier-version counterpart of
	// the same Name: Tighter means every pattern satisfying the receiver
	// also satisfied old (solution space shrank), Looser the reverse,
	// Equal identical, Incomparable unknown.
	Compare(old Constraint) Relation
}

// Relation is the outcome of comparing a new constraint against an old one.
type Relation int

const (
	// Equal: identical solution spaces.
	Equal Relation = iota
	// Tighter: the new constraint admits a subset of the old solutions.
	Tighter
	// Looser: the new constraint admits a superset of the old solutions.
	Looser
	// Incomparable: neither containment can be established.
	Incomparable
)

// String implements fmt.Stringer.
func (r Relation) String() string {
	switch r {
	case Equal:
		return "equal"
	case Tighter:
		return "tighter"
	case Looser:
		return "looser"
	default:
		return "incomparable"
	}
}

// Set is a conjunction of constraints.
type Set []Constraint

// Satisfied reports whether every constraint holds.
func (s Set) Satisfied(items []dataset.Item, support int) bool {
	for _, c := range s {
		if !c.Satisfied(items, support) {
			return false
		}
	}
	return true
}

// String renders the conjunction.
func (s Set) String() string {
	if len(s) == 0 {
		return "true"
	}
	parts := make([]string, len(s))
	for i, c := range s {
		parts[i] = c.Name()
	}
	return strings.Join(parts, " ∧ ")
}

// Compare relates a new constraint set to an old one, driving the recycling
// decision of Section 2. Constraints are matched by Name: matched pairs
// compare individually; a constraint only in the new set tightens; one only
// in the old set loosens. Mixed directions yield Incomparable (both filter
// and re-mine with recycling remain correct — recycling handles it).
func Compare(old, new Set) Relation {
	oldBy := map[string]Constraint{}
	for _, c := range old {
		oldBy[c.Name()] = c
	}
	rel := Equal
	merge := func(r Relation) {
		switch {
		case r == Equal:
		case rel == Equal:
			rel = r
		case rel != r:
			rel = Incomparable
		}
	}
	seen := map[string]bool{}
	for _, c := range new {
		seen[c.Name()] = true
		if o, ok := oldBy[c.Name()]; ok {
			merge(c.Compare(o))
		} else {
			merge(Tighter) // extra conjunct can only shrink solutions
		}
	}
	for name := range oldBy {
		if !seen[name] {
			merge(Looser) // dropped conjunct can only grow solutions
		}
	}
	return rel
}
