// Package testutil provides shared helpers for the test suites: the paper's
// worked example database, random database generation, and oracle-based
// miner equivalence checks.
package testutil

import (
	"math/rand"
	"testing"

	"gogreen/internal/apriori"
	"gogreen/internal/dataset"
	"gogreen/internal/mining"
)

// PaperDB returns the example database of Table 1 of the paper, with items
// named "a".."i". Tuple ids 100..500 map to indexes 0..4.
func PaperDB() *dataset.DB {
	return dataset.FromNames([][]string{
		{"a", "c", "d", "e", "f", "g"},
		{"b", "c", "d", "f", "g"},
		{"c", "e", "f", "g"},
		{"a", "c", "e", "i"},
		{"a", "e", "h"},
	})
}

// Items converts named items to ids through db's dictionary, failing the
// test on unknown names.
func Items(t *testing.T, db *dataset.DB, names ...string) []dataset.Item {
	t.Helper()
	out := make([]dataset.Item, len(names))
	for i, n := range names {
		id, ok := db.Dict().Lookup(n)
		if !ok {
			t.Fatalf("unknown item %q", n)
		}
		out[i] = id
	}
	return dataset.Canonical(out)
}

// RandomDB generates a random transaction database: numTx transactions of
// length 1..maxLen over items 0..numItems-1, with a mild bias that makes
// some items much more frequent than others (so F-lists are non-trivial).
func RandomDB(r *rand.Rand, numTx, numItems, maxLen int) *dataset.DB {
	tx := make([][]dataset.Item, numTx)
	for i := range tx {
		n := 1 + r.Intn(maxLen)
		t := make([]dataset.Item, 0, n)
		for j := 0; j < n; j++ {
			// Squaring biases toward low ids: low ids are hot items.
			v := int(float64(numItems) * r.Float64() * r.Float64())
			if v >= numItems {
				v = numItems - 1
			}
			t = append(t, dataset.Item(v))
		}
		tx[i] = t
	}
	return dataset.New(tx)
}

// BruteForce computes the exact frequent-pattern set by enumerating every
// subset of every transaction. Only usable on tiny databases (transaction
// length <= 16 or so).
func BruteForce(t *testing.T, db *dataset.DB, minCount int) mining.PatternSet {
	t.Helper()
	counts := map[string]mining.Pattern{}
	for _, tr := range db.All() {
		n := len(tr)
		if n > 20 {
			t.Fatalf("BruteForce: transaction too long (%d items)", n)
		}
		for mask := 1; mask < 1<<n; mask++ {
			var items []dataset.Item
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					items = append(items, tr[i])
				}
			}
			k := mining.Key(items)
			p := counts[k]
			p.Items = items
			p.Support++
			counts[k] = p
		}
	}
	out := mining.PatternSet{}
	for k, p := range counts {
		if p.Support >= minCount {
			out[k] = p
		}
	}
	return out
}

// Oracle mines db with Apriori and returns the full pattern set.
func Oracle(t *testing.T, db *dataset.DB, minCount int) mining.PatternSet {
	t.Helper()
	return MineSet(t, apriori.New(), db, minCount)
}

// MineSet runs a miner and returns its output as a PatternSet, failing the
// test on error or duplicate emissions.
func MineSet(t *testing.T, m mining.Miner, db *dataset.DB, minCount int) mining.PatternSet {
	t.Helper()
	var c mining.Collector
	if err := m.Mine(db, minCount, &c); err != nil {
		t.Fatalf("%s.Mine: %v", m.Name(), err)
	}
	s, err := c.Set()
	if err != nil {
		t.Fatalf("%s: %v", m.Name(), err)
	}
	return s
}

// CheckAgainstOracle mines db with m and with Apriori and fails the test on
// any discrepancy.
func CheckAgainstOracle(t *testing.T, m mining.Miner, db *dataset.DB, minCount int) {
	t.Helper()
	got := MineSet(t, m, db, minCount)
	want := Oracle(t, db, minCount)
	if !got.Equal(want) {
		diffs := got.Diff(want, 12)
		t.Fatalf("%s disagrees with apriori at minCount=%d on %s:\n  %v",
			m.Name(), minCount, db, diffs)
	}
}

// CrossCheck runs CheckAgainstOracle over a deterministic battery of random
// databases and support thresholds.
func CrossCheck(t *testing.T, m mining.Miner) {
	t.Helper()
	r := rand.New(rand.NewSource(42))
	cases := []struct {
		numTx, numItems, maxLen int
		mins                    []int
	}{
		{1, 5, 3, []int{1}},
		{10, 6, 5, []int{1, 2, 3}},
		{30, 10, 8, []int{2, 3, 8}},
		{60, 15, 10, []int{3, 5, 16}},
		{100, 8, 6, []int{2, 10, 26}},  // dense-ish: few items, many tx
		{80, 40, 12, []int{2, 4, 21}},  // sparse
		{50, 4, 4, []int{1, 2, 13}},    // tiny universe, long patterns
		{120, 25, 15, []int{4, 8, 31}}, // longer transactions
	}
	for _, c := range cases {
		for rep := 0; rep < 3; rep++ {
			db := RandomDB(r, c.numTx, c.numItems, c.maxLen)
			for _, min := range c.mins {
				CheckAgainstOracle(t, m, db, min)
			}
		}
	}
}
