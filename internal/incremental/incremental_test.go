package incremental_test

import (
	"math/rand"
	"testing"

	"gogreen/internal/dataset"
	"gogreen/internal/incremental"
	"gogreen/internal/mining"
	"gogreen/internal/testutil"
)

func toSet(t *testing.T, ps []mining.Pattern) mining.PatternSet {
	t.Helper()
	s := mining.PatternSet{}
	for _, p := range ps {
		k := p.Key()
		if _, dup := s[k]; dup {
			t.Fatalf("duplicate pattern %v", p.Items)
		}
		s[k] = p
	}
	return s
}

// TestInsertRefresh: grow the database and verify every refresh against the
// oracle on the materialized database.
func TestInsertRefresh(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	base := testutil.RandomDB(r, 60, 10, 8)
	m := incremental.New(base, incremental.WithEngine("rp-hmine"))

	res, err := m.Refresh(4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Recycled {
		t.Error("first refresh cannot recycle")
	}
	if !toSet(t, res.Patterns).Equal(testutil.Oracle(t, base, 4)) {
		t.Fatal("initial mine wrong")
	}

	for round := 0; round < 5; round++ {
		delta := testutil.RandomDB(r, 10+r.Intn(30), 10, 8)
		m.Insert(delta.All())
		min := 3 + r.Intn(4)
		res, err := m.Refresh(min)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Recycled {
			t.Errorf("round %d: expected recycling", round)
		}
		if !toSet(t, res.Patterns).Equal(testutil.Oracle(t, m.DB(), min)) {
			t.Fatalf("round %d: wrong patterns after insert", round)
		}
	}
}

// TestDeleteRefresh: shrink the database (the case Section 6 notes existing
// incremental techniques handle awkwardly) and verify exactness.
func TestDeleteRefresh(t *testing.T) {
	r := rand.New(rand.NewSource(62))
	base := testutil.RandomDB(r, 120, 8, 8)
	m := incremental.New(base, incremental.WithEngine("rp-hmine"))
	if _, err := m.Refresh(6); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 4; round++ {
		var kill []int
		for i := 0; i < 10; i++ {
			kill = append(kill, r.Intn(m.Len()-20)+i) // arbitrary-ish distinct
		}
		kill = dedupe(kill)
		if err := m.Delete(kill); err != nil {
			t.Fatal(err)
		}
		res, err := m.Refresh(5)
		if err != nil {
			t.Fatal(err)
		}
		if !toSet(t, res.Patterns).Equal(testutil.Oracle(t, m.DB(), 5)) {
			t.Fatalf("round %d: wrong patterns after delete", round)
		}
	}
}

// TestMixedChangeWithRelaxedThreshold: big simultaneous change plus a lower
// threshold — the regime FUP rejects and recycling handles.
func TestMixedChangeWithRelaxedThreshold(t *testing.T) {
	r := rand.New(rand.NewSource(63))
	base := testutil.RandomDB(r, 80, 10, 8)
	m := incremental.New(base)
	if _, err := m.Refresh(8); err != nil {
		t.Fatal(err)
	}
	if err := m.Delete([]int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}); err != nil {
		t.Fatal(err)
	}
	m.Insert(testutil.RandomDB(r, 90, 10, 8).All()) // more than doubles the data
	res, err := m.Refresh(3)                        // relaxed
	if err != nil {
		t.Fatal(err)
	}
	if !res.Recycled {
		t.Error("expected recycling")
	}
	if !toSet(t, res.Patterns).Equal(testutil.Oracle(t, m.DB(), 3)) {
		t.Fatal("wrong patterns after mixed change")
	}
}

func TestDeleteValidation(t *testing.T) {
	m := incremental.New(dataset.New([][]dataset.Item{{1}, {2}, {3}}))
	if err := m.Delete([]int{5}); err == nil {
		t.Error("out of range accepted")
	}
	if err := m.Delete([]int{-1}); err == nil {
		t.Error("negative accepted")
	}
	if err := m.Delete([]int{1, 1}); err == nil {
		t.Error("duplicate accepted")
	}
	if err := m.Delete(nil); err != nil {
		t.Errorf("empty delete: %v", err)
	}
	if err := m.Delete([]int{0, 2}); err != nil || m.Len() != 1 {
		t.Errorf("delete failed: %v len=%d", err, m.Len())
	}
}

func TestRefreshValidation(t *testing.T) {
	m := incremental.New(dataset.New([][]dataset.Item{{1}}))
	if _, err := m.Refresh(0); err != mining.ErrBadMinSupport {
		t.Errorf("got %v", err)
	}
	if _, ok := m.Patterns(); ok {
		t.Error("Patterns before any refresh")
	}
	if m.LastMinCount() != 0 {
		t.Error("LastMinCount before refresh")
	}
}

func dedupe(in []int) []int {
	seen := map[int]bool{}
	var out []int
	for _, v := range in {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}
