// Package incremental applies the paper's recycling scheme to the
// incremental-update problem (Section 2's extension case 1: same
// constraints, changed database; and case 2: both change).
//
// A Maintainer owns an evolving transaction database and the frequent
// patterns last mined over it. After any mix of insertions and deletions —
// and optionally a changed support threshold — Refresh re-mines by
// compressing the *current* database with the *previous* pattern set and
// mining the compressed form. Compression only uses pattern containment,
// never the stale supports, so the result is exact regardless of how much
// the database changed; this is what lets recycling handle "dramatic"
// changes (bulk loads, large deletes, threshold relaxation) that defeat
// classical incremental techniques like FUP (Section 6, criticisms 2-4).
package incremental

import (
	"context"
	"errors"
	"fmt"
	"time"

	"gogreen/internal/core"
	"gogreen/internal/dataset"
	"gogreen/internal/engine"
	"gogreen/internal/lattice"
	"gogreen/internal/mining"
)

// ErrBadIndex reports a Delete index out of range.
var ErrBadIndex = errors.New("incremental: tuple index out of range")

// Result is one Refresh outcome.
type Result struct {
	Patterns []mining.Pattern
	// Recycled reports whether the previous pattern set was used (false on
	// the first mine, when there is nothing to recycle).
	Recycled bool
	// Cache classifies how the threshold lattice served the round ("hit",
	// "relax" or "miss"); empty when the lattice is disabled.
	Cache   string
	Elapsed time.Duration
}

// Maintainer owns an evolving database and its last-mined pattern set. Not
// safe for concurrent use.
type Maintainer struct {
	tx      [][]dataset.Item
	pipe    engine.Pipeline
	cache   engine.CacheConfig
	fp      []mining.Pattern
	mined   bool
	dirty   bool
	lastMin int
}

// Option configures a Maintainer.
type Option func(*Maintainer)

// WithStrategy selects the compression strategy (default MCP).
func WithStrategy(s core.Strategy) Option { return func(m *Maintainer) { m.pipe.Strategy = s } }

// WithEngine selects the compressed-database miner by canonical registry
// name, e.g. "rp-hmine" (default "rp-naive"). Unknown names surface from
// Refresh.
func WithEngine(name string) Option { return func(m *Maintainer) { m.pipe.Recycled = name } }

// WithLattice enables the materialized threshold lattice (off by default at
// this surface). The ladder is keyed by the Maintainer itself — the database
// evolves, so sharing rungs with other surfaces would serve stale answers —
// and every Insert/Delete invalidates it; between updates, repeated or
// tightened Refresh thresholds are answered by pure filtering.
func WithLattice(on bool) Option { return func(m *Maintainer) { engine.WithLattice(on)(&m.cache) } }

// WithLatticeRungs sets the lattice install grid of relative thresholds
// (see engine.CacheConfig.Rungs). It does not itself enable the lattice.
func WithLatticeRungs(rungs []float64) Option {
	return func(m *Maintainer) { engine.WithLatticeRungs(rungs)(&m.cache) }
}

// WithCacheBudget caps the shared lattice store's resident bytes. It does
// not itself enable the lattice.
func WithCacheBudget(bytes int64) Option {
	return func(m *Maintainer) { engine.WithCacheBudget(bytes)(&m.cache) }
}

// New starts a maintainer over a copy of db's tuples.
func New(db *dataset.DB, opts ...Option) *Maintainer {
	m := &Maintainer{pipe: engine.Pipeline{Recycled: "rp-naive"}}
	m.tx = make([][]dataset.Item, db.Len())
	copy(m.tx, db.All())
	for _, o := range opts {
		o(m)
	}
	m.cache.Attach(&m.pipe, m)
	return m
}

// Len returns the current number of tuples.
func (m *Maintainer) Len() int { return len(m.tx) }

// DB materializes the current database.
func (m *Maintainer) DB() *dataset.DB { return dataset.New(m.tx) }

// Patterns returns the last Refresh's pattern set (possibly stale with
// respect to later Insert/Delete calls) and whether any mine has happened.
func (m *Maintainer) Patterns() ([]mining.Pattern, bool) { return m.fp, m.mined }

// Insert appends tuples (each canonicalized).
func (m *Maintainer) Insert(tuples [][]dataset.Item) {
	for _, t := range tuples {
		m.tx = append(m.tx, dataset.Canonical(t))
	}
	if len(tuples) > 0 {
		m.mutated()
	}
}

// mutated records that the database changed: the last pattern set's supports
// are now stale and every materialized rung is wrong, so the ladder is
// dropped eagerly (reclaiming shared budget) rather than aged out.
func (m *Maintainer) mutated() {
	m.dirty = true
	if m.pipe.Cache != nil {
		m.pipe.Cache.Invalidate()
	}
}

// Delete removes the tuples at the given indexes (positions in the current
// order). Indexes may come in any order; duplicates are an error.
func (m *Maintainer) Delete(indexes []int) error {
	if len(indexes) == 0 {
		return nil
	}
	kill := make(map[int]bool, len(indexes))
	for _, i := range indexes {
		if i < 0 || i >= len(m.tx) {
			return fmt.Errorf("%w: %d (have %d tuples)", ErrBadIndex, i, len(m.tx))
		}
		if kill[i] {
			return fmt.Errorf("incremental: duplicate delete index %d", i)
		}
		kill[i] = true
	}
	out := m.tx[:0]
	for i, t := range m.tx {
		if !kill[i] {
			out = append(out, t)
		}
	}
	m.tx = out
	m.mutated()
	return nil
}

// Refresh re-mines the current database at the given absolute support,
// recycling the previous pattern set when one exists. The threshold may
// differ from the previous round's in either direction.
func (m *Maintainer) Refresh(minCount int) (Result, error) {
	if minCount < 1 {
		return Result{}, mining.ErrBadMinSupport
	}
	start := time.Now()
	db := dataset.New(m.tx)
	var run engine.Run
	var err error
	recycled := m.mined && len(m.fp) > 0
	served := false
	switch {
	case m.pipe.Cache != nil && !m.dirty:
		served = true
		// Database unchanged since the ladder's rungs (and m.fp's supports)
		// were computed: the cache-aware path may filter or relax-mine, with
		// the last pattern set competing as the seed.
		var prior *engine.Prior
		if recycled {
			prior = &engine.Prior{Patterns: m.fp, MinCount: m.lastMin, Label: "previous"}
		}
		run, err = m.pipe.Serve(context.Background(), db, prior, minCount, nil)
	case recycled:
		// The database churned since fp was mined, so the old supports are
		// stale: always recycle (compression uses only pattern containment),
		// never the tighten-filter shortcut.
		run, err = m.pipe.MineRecycling(context.Background(), db, m.fp, minCount, nil)
	default:
		run, err = m.pipe.Mine(context.Background(), db, minCount, nil)
	}
	if err != nil {
		return Result{}, err
	}
	if m.pipe.Cache != nil && run.Cache == "" {
		// Dirty-path mine over the freshly-invalidated ladder: the result is
		// exact for the current database, so seed the ladder with it.
		m.pipe.Cache.Install(minCount, run.Patterns)
		run.Cache = string(lattice.Miss)
	}
	m.fp = run.Patterns
	m.mined = true
	m.dirty = false
	m.lastMin = minCount
	if served {
		// On the cache-aware path, "recycled" means any knowledge reuse:
		// filtered from a rung or the previous set, or relax-mined.
		recycled = run.Source != mining.SourceFresh
	}
	return Result{Patterns: run.Patterns, Recycled: recycled, Cache: run.Cache, Elapsed: time.Since(start)}, nil
}

// LastMinCount returns the threshold of the last Refresh (0 before any).
func (m *Maintainer) LastMinCount() int { return m.lastMin }
