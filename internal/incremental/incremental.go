// Package incremental applies the paper's recycling scheme to the
// incremental-update problem (Section 2's extension case 1: same
// constraints, changed database; and case 2: both change).
//
// A Maintainer owns an evolving transaction database and the frequent
// patterns last mined over it. After any mix of insertions and deletions —
// and optionally a changed support threshold — Refresh re-mines by
// compressing the *current* database with the *previous* pattern set and
// mining the compressed form. Compression only uses pattern containment,
// never the stale supports, so the result is exact regardless of how much
// the database changed; this is what lets recycling handle "dramatic"
// changes (bulk loads, large deletes, threshold relaxation) that defeat
// classical incremental techniques like FUP (Section 6, criticisms 2-4).
package incremental

import (
	"errors"
	"fmt"
	"time"

	"gogreen/internal/core"
	"gogreen/internal/dataset"
	"gogreen/internal/hmine"
	"gogreen/internal/mining"
)

// ErrBadIndex reports a Delete index out of range.
var ErrBadIndex = errors.New("incremental: tuple index out of range")

// Result is one Refresh outcome.
type Result struct {
	Patterns []mining.Pattern
	// Recycled reports whether the previous pattern set was used (false on
	// the first mine, when there is nothing to recycle).
	Recycled bool
	Elapsed  time.Duration
}

// Maintainer owns an evolving database and its last-mined pattern set. Not
// safe for concurrent use.
type Maintainer struct {
	tx       [][]dataset.Item
	strategy core.Strategy
	engine   core.CDBMiner
	fp       []mining.Pattern
	mined    bool
	lastMin  int
}

// Option configures a Maintainer.
type Option func(*Maintainer)

// WithStrategy selects the compression strategy (default MCP).
func WithStrategy(s core.Strategy) Option { return func(m *Maintainer) { m.strategy = s } }

// WithEngine selects the compressed-database miner (default Recycle-HM is
// supplied by the caller; nil means the naive miner).
func WithEngine(e core.CDBMiner) Option { return func(m *Maintainer) { m.engine = e } }

// New starts a maintainer over a copy of db's tuples.
func New(db *dataset.DB, opts ...Option) *Maintainer {
	m := &Maintainer{strategy: core.MCP}
	m.tx = make([][]dataset.Item, db.Len())
	copy(m.tx, db.All())
	for _, o := range opts {
		o(m)
	}
	return m
}

// Len returns the current number of tuples.
func (m *Maintainer) Len() int { return len(m.tx) }

// DB materializes the current database.
func (m *Maintainer) DB() *dataset.DB { return dataset.New(m.tx) }

// Patterns returns the last Refresh's pattern set (possibly stale with
// respect to later Insert/Delete calls) and whether any mine has happened.
func (m *Maintainer) Patterns() ([]mining.Pattern, bool) { return m.fp, m.mined }

// Insert appends tuples (each canonicalized).
func (m *Maintainer) Insert(tuples [][]dataset.Item) {
	for _, t := range tuples {
		m.tx = append(m.tx, dataset.Canonical(t))
	}
}

// Delete removes the tuples at the given indexes (positions in the current
// order). Indexes may come in any order; duplicates are an error.
func (m *Maintainer) Delete(indexes []int) error {
	if len(indexes) == 0 {
		return nil
	}
	kill := make(map[int]bool, len(indexes))
	for _, i := range indexes {
		if i < 0 || i >= len(m.tx) {
			return fmt.Errorf("%w: %d (have %d tuples)", ErrBadIndex, i, len(m.tx))
		}
		if kill[i] {
			return fmt.Errorf("incremental: duplicate delete index %d", i)
		}
		kill[i] = true
	}
	out := m.tx[:0]
	for i, t := range m.tx {
		if !kill[i] {
			out = append(out, t)
		}
	}
	m.tx = out
	return nil
}

// Refresh re-mines the current database at the given absolute support,
// recycling the previous pattern set when one exists. The threshold may
// differ from the previous round's in either direction.
func (m *Maintainer) Refresh(minCount int) (Result, error) {
	if minCount < 1 {
		return Result{}, mining.ErrBadMinSupport
	}
	start := time.Now()
	db := dataset.New(m.tx)
	var col mining.Collector
	recycled := false
	if m.mined && len(m.fp) > 0 {
		recycled = true
		rec := &core.Recycler{FP: m.fp, Strategy: m.strategy, Engine: m.engine}
		if err := rec.Mine(db, minCount, &col); err != nil {
			return Result{}, err
		}
	} else {
		if err := hmine.New().Mine(db, minCount, &col); err != nil {
			return Result{}, err
		}
	}
	m.fp = col.Patterns
	m.mined = true
	m.lastMin = minCount
	return Result{Patterns: col.Patterns, Recycled: recycled, Elapsed: time.Since(start)}, nil
}

// LastMinCount returns the threshold of the last Refresh (0 before any).
func (m *Maintainer) LastMinCount() int { return m.lastMin }
