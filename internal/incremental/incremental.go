// Package incremental applies the paper's recycling scheme to the
// incremental-update problem (Section 2's extension case 1: same
// constraints, changed database; and case 2: both change).
//
// A Maintainer owns an evolving transaction database and the frequent
// patterns last mined over it. After any mix of insertions and deletions —
// and optionally a changed support threshold — Refresh re-mines by
// compressing the *current* database with the *previous* pattern set and
// mining the compressed form. Compression only uses pattern containment,
// never the stale supports, so the result is exact regardless of how much
// the database changed; this is what lets recycling handle "dramatic"
// changes (bulk loads, large deletes, threshold relaxation) that defeat
// classical incremental techniques like FUP (Section 6, criticisms 2-4).
package incremental

import (
	"context"
	"errors"
	"fmt"
	"time"

	"gogreen/internal/core"
	"gogreen/internal/dataset"
	"gogreen/internal/engine"
	"gogreen/internal/mining"
)

// ErrBadIndex reports a Delete index out of range.
var ErrBadIndex = errors.New("incremental: tuple index out of range")

// Result is one Refresh outcome.
type Result struct {
	Patterns []mining.Pattern
	// Recycled reports whether the previous pattern set was used (false on
	// the first mine, when there is nothing to recycle).
	Recycled bool
	Elapsed  time.Duration
}

// Maintainer owns an evolving database and its last-mined pattern set. Not
// safe for concurrent use.
type Maintainer struct {
	tx      [][]dataset.Item
	pipe    engine.Pipeline
	fp      []mining.Pattern
	mined   bool
	lastMin int
}

// Option configures a Maintainer.
type Option func(*Maintainer)

// WithStrategy selects the compression strategy (default MCP).
func WithStrategy(s core.Strategy) Option { return func(m *Maintainer) { m.pipe.Strategy = s } }

// WithEngine selects the compressed-database miner by canonical registry
// name, e.g. "rp-hmine" (default "rp-naive"). Unknown names surface from
// Refresh.
func WithEngine(name string) Option { return func(m *Maintainer) { m.pipe.Recycled = name } }

// New starts a maintainer over a copy of db's tuples.
func New(db *dataset.DB, opts ...Option) *Maintainer {
	m := &Maintainer{pipe: engine.Pipeline{Recycled: "rp-naive"}}
	m.tx = make([][]dataset.Item, db.Len())
	copy(m.tx, db.All())
	for _, o := range opts {
		o(m)
	}
	return m
}

// Len returns the current number of tuples.
func (m *Maintainer) Len() int { return len(m.tx) }

// DB materializes the current database.
func (m *Maintainer) DB() *dataset.DB { return dataset.New(m.tx) }

// Patterns returns the last Refresh's pattern set (possibly stale with
// respect to later Insert/Delete calls) and whether any mine has happened.
func (m *Maintainer) Patterns() ([]mining.Pattern, bool) { return m.fp, m.mined }

// Insert appends tuples (each canonicalized).
func (m *Maintainer) Insert(tuples [][]dataset.Item) {
	for _, t := range tuples {
		m.tx = append(m.tx, dataset.Canonical(t))
	}
}

// Delete removes the tuples at the given indexes (positions in the current
// order). Indexes may come in any order; duplicates are an error.
func (m *Maintainer) Delete(indexes []int) error {
	if len(indexes) == 0 {
		return nil
	}
	kill := make(map[int]bool, len(indexes))
	for _, i := range indexes {
		if i < 0 || i >= len(m.tx) {
			return fmt.Errorf("%w: %d (have %d tuples)", ErrBadIndex, i, len(m.tx))
		}
		if kill[i] {
			return fmt.Errorf("incremental: duplicate delete index %d", i)
		}
		kill[i] = true
	}
	out := m.tx[:0]
	for i, t := range m.tx {
		if !kill[i] {
			out = append(out, t)
		}
	}
	m.tx = out
	return nil
}

// Refresh re-mines the current database at the given absolute support,
// recycling the previous pattern set when one exists. The threshold may
// differ from the previous round's in either direction.
func (m *Maintainer) Refresh(minCount int) (Result, error) {
	if minCount < 1 {
		return Result{}, mining.ErrBadMinSupport
	}
	start := time.Now()
	db := dataset.New(m.tx)
	var run engine.Run
	var err error
	recycled := m.mined && len(m.fp) > 0
	if recycled {
		// The database may have churned since fp was mined, so the old
		// supports are stale: always recycle (compression uses only pattern
		// containment), never the tighten-filter shortcut.
		run, err = m.pipe.MineRecycling(context.Background(), db, m.fp, minCount, nil)
	} else {
		run, err = m.pipe.Mine(context.Background(), db, minCount, nil)
	}
	if err != nil {
		return Result{}, err
	}
	m.fp = run.Patterns
	m.mined = true
	m.lastMin = minCount
	return Result{Patterns: run.Patterns, Recycled: recycled, Elapsed: time.Since(start)}, nil
}

// LastMinCount returns the threshold of the last Refresh (0 before any).
func (m *Maintainer) LastMinCount() int { return m.lastMin }
