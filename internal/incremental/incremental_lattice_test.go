package incremental_test

import (
	"testing"

	"gogreen/internal/incremental"
	"gogreen/internal/testutil"
)

// TestLatticeBetweenUpdates pins the maintainer's cache discipline: between
// database updates, repeated or tightened Refresh thresholds are served by
// pure filtering; any Insert/Delete drops the ladder so no stale rung can
// ever answer, and the next refresh re-seeds it.
func TestLatticeBetweenUpdates(t *testing.T) {
	base := testutil.PaperDB()
	m := incremental.New(base, incremental.WithLattice(true))

	res, err := m.Refresh(3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cache != "miss" || res.Recycled {
		t.Fatalf("first refresh = %+v, want cold miss", res)
	}
	if !toSet(t, res.Patterns).Equal(testutil.Oracle(t, m.DB(), 3)) {
		t.Fatal("first refresh wrong")
	}

	// Same threshold, no updates: pure-filter hit.
	res, err = m.Refresh(3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cache != "hit" || !res.Recycled {
		t.Fatalf("repeat refresh = %+v, want lattice hit", res)
	}
	if !toSet(t, res.Patterns).Equal(testutil.Oracle(t, m.DB(), 3)) {
		t.Fatal("repeat refresh wrong")
	}

	// Tighter threshold, still clean: hit again.
	res, err = m.Refresh(4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cache != "hit" {
		t.Fatalf("tightened refresh = %+v, want lattice hit", res)
	}
	if !toSet(t, res.Patterns).Equal(testutil.Oracle(t, m.DB(), 4)) {
		t.Fatal("tightened refresh wrong")
	}

	// An update invalidates the ladder; the next refresh recycles the stale
	// set (containment only) and must match the oracle on the new database.
	m.Insert(testutil.PaperDB().All())
	res, err = m.Refresh(3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cache != "miss" || !res.Recycled {
		t.Fatalf("post-insert refresh = %+v, want recycled miss", res)
	}
	if !toSet(t, res.Patterns).Equal(testutil.Oracle(t, m.DB(), 3)) {
		t.Fatal("post-insert refresh wrong")
	}

	// The dirty-path mine re-seeded the ladder: clean repeat hits again.
	res, err = m.Refresh(3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cache != "hit" {
		t.Fatalf("post-insert repeat = %+v, want lattice hit", res)
	}

	// Deletes invalidate too.
	if err := m.Delete([]int{0}); err != nil {
		t.Fatal(err)
	}
	res, err = m.Refresh(3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cache != "miss" {
		t.Fatalf("post-delete refresh = %+v, want miss", res)
	}
	if !toSet(t, res.Patterns).Equal(testutil.Oracle(t, m.DB(), 3)) {
		t.Fatal("post-delete refresh wrong")
	}
}

// TestLatticeOffByDefault: without WithLattice the maintainer behaves as
// before and reports no cache outcome.
func TestLatticeOffByDefault(t *testing.T) {
	m := incremental.New(testutil.PaperDB())
	res, err := m.Refresh(3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cache != "" {
		t.Fatalf("lattice-off refresh reports cache %q", res.Cache)
	}
	res, err = m.Refresh(3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cache != "" || !res.Recycled {
		t.Fatalf("lattice-off repeat = %+v, want recycled with no cache", res)
	}
}
