package twostep_test

import (
	"math/rand"
	"sort"
	"testing"

	"gogreen/internal/dataset"
	"gogreen/internal/mining"
	"gogreen/internal/testutil"
	"gogreen/internal/twostep"
)

func opts() twostep.Options {
	return twostep.Options{Engine: "rp-hmine"}
}

// TestMineMatchesOracle: the two-step split is exact.
func TestMineMatchesOracle(t *testing.T) {
	r := rand.New(rand.NewSource(101))
	for rep := 0; rep < 12; rep++ {
		db := testutil.RandomDB(r, 40+r.Intn(100), 5+r.Intn(12), 1+r.Intn(9))
		for _, min := range []int{1, 2, 4} {
			for _, factor := range []int{2, 4, 10} {
				o := opts()
				o.Factor = factor
				var col mining.Collector
				if err := twostep.Mine(db, min, o, &col); err != nil {
					t.Fatal(err)
				}
				got, err := col.Set()
				if err != nil {
					t.Fatal(err)
				}
				if want := testutil.Oracle(t, db, min); !got.Equal(want) {
					t.Fatalf("min=%d factor=%d:\n%v", min, factor, got.Diff(want, 10))
				}
			}
		}
	}
}

// TestProgressiveMatchesOracle: the cascade is exact.
func TestProgressiveMatchesOracle(t *testing.T) {
	r := rand.New(rand.NewSource(102))
	for rep := 0; rep < 10; rep++ {
		db := testutil.RandomDB(r, 50+r.Intn(100), 6+r.Intn(10), 2+r.Intn(8))
		for _, min := range []int{1, 3} {
			var col mining.Collector
			if err := twostep.Progressive(db, min, opts(), &col); err != nil {
				t.Fatal(err)
			}
			got, err := col.Set()
			if err != nil {
				t.Fatal(err)
			}
			if want := testutil.Oracle(t, db, min); !got.Equal(want) {
				t.Fatalf("min=%d:\n%v", min, got.Diff(want, 10))
			}
		}
	}
}

// TestTopK: the result is exactly the K best by support, validated against
// the sorted complete set.
func TestTopK(t *testing.T) {
	r := rand.New(rand.NewSource(103))
	for rep := 0; rep < 10; rep++ {
		db := testutil.RandomDB(r, 50+r.Intn(80), 5+r.Intn(8), 1+r.Intn(7))
		full := testutil.Oracle(t, db, 1).Slice()
		sort.Slice(full, func(i, j int) bool {
			if full[i].Support != full[j].Support {
				return full[i].Support > full[j].Support
			}
			return len(full[i].Items) < len(full[j].Items)
		})
		for _, k := range []int{1, 5, 20, len(full), len(full) + 100} {
			got, err := twostep.TopK(db, k, opts())
			if err != nil {
				t.Fatal(err)
			}
			wantLen := k
			if wantLen > len(full) {
				wantLen = len(full)
			}
			if len(got) != wantLen {
				t.Fatalf("k=%d: got %d patterns, want %d", k, len(got), wantLen)
			}
			// Support multiset must match the true top-K (ties may reorder
			// among equal supports and lengths).
			for i := range got {
				if got[i].Support != full[i].Support {
					t.Fatalf("k=%d rank %d: support %d, want %d",
						k, i, got[i].Support, full[i].Support)
				}
			}
			// Supports non-increasing.
			for i := 1; i < len(got); i++ {
				if got[i].Support > got[i-1].Support {
					t.Fatal("top-k not sorted by support")
				}
			}
		}
	}
}

func TestEdgeCases(t *testing.T) {
	sink := mining.SinkFunc(func([]dataset.Item, int) {})
	if err := twostep.Mine(dataset.New(nil), 0, opts(), sink); err != mining.ErrBadMinSupport {
		t.Errorf("Mine min=0: %v", err)
	}
	if err := twostep.Progressive(dataset.New(nil), 0, opts(), sink); err != mining.ErrBadMinSupport {
		t.Errorf("Progressive min=0: %v", err)
	}
	if _, err := twostep.TopK(dataset.New(nil), 0, opts()); err != mining.ErrBadMinSupport {
		t.Errorf("TopK k=0: %v", err)
	}
	got, err := twostep.TopK(dataset.New(nil), 5, opts())
	if err != nil || len(got) != 0 {
		t.Errorf("TopK on empty db: %v %v", got, err)
	}
	// Threshold above the database size yields the empty set.
	db := testutil.PaperDB()
	var col mining.Collector
	if err := twostep.Progressive(db, db.Len()+10, opts(), &col); err != nil {
		t.Fatal(err)
	}
	if len(col.Patterns) != 0 {
		t.Errorf("threshold above |DB| yielded %d patterns", len(col.Patterns))
	}
}
