package twostep_test

import (
	"testing"

	"gogreen/internal/engine"
	"gogreen/internal/mining"
	"gogreen/internal/testutil"
	"gogreen/internal/twostep"
)

// TestMineWithLattice: a lattice-enabled two-step task stays exact, installs
// its rounds as rungs, and a repeated task over the same database is served
// from the ladder (rung hit counters move) instead of re-mining.
func TestMineWithLattice(t *testing.T) {
	db := testutil.PaperDB()
	o := opts()
	o.Cache = engine.CacheConfig{Enabled: true}

	for rep := 0; rep < 2; rep++ {
		var col mining.Collector
		if err := twostep.Mine(db, 2, o, &col); err != nil {
			t.Fatal(err)
		}
		got, err := col.Set()
		if err != nil {
			t.Fatal(err)
		}
		if want := testutil.Oracle(t, db, 2); !got.Equal(want) {
			t.Fatalf("rep %d:\n%v", rep, got.Diff(want, 10))
		}
	}

	rungs := engine.SharedStore().Cache(db).Rungs()
	if len(rungs) == 0 {
		t.Fatal("two-step rounds did not materialize any rungs")
	}
	var hits int64
	for _, r := range rungs {
		hits += r.Hits
	}
	if hits < 2 {
		t.Fatalf("repeated task hit %d rungs, want >= 2 (ladder = %+v)", hits, rungs)
	}
}

// TestProgressiveAndTopKWithLattice: the cascade variants stay exact when
// every round flows through the cache-aware path.
func TestProgressiveAndTopKWithLattice(t *testing.T) {
	db := testutil.PaperDB()
	o := opts()
	o.Cache = engine.CacheConfig{Enabled: true}

	var col mining.Collector
	if err := twostep.Progressive(db, 2, o, &col); err != nil {
		t.Fatal(err)
	}
	got, err := col.Set()
	if err != nil {
		t.Fatal(err)
	}
	if want := testutil.Oracle(t, db, 2); !got.Equal(want) {
		t.Fatalf("progressive:\n%v", got.Diff(want, 10))
	}

	top, err := twostep.TopK(db, 5, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 5 {
		t.Fatalf("topk returned %d patterns", len(top))
	}
	for i := 1; i < len(top); i++ {
		if top[i].Support > top[i-1].Support {
			t.Fatalf("topk not sorted by support: %+v", top)
		}
	}
}
