// Package twostep implements the paper's stated future work (Section 5.2,
// observation 1): "we could split a new mining task with low minimum
// support into two steps: (a) we first run it with a high minimum support;
// (b) we then compress the database with the strategy MCP and mine the
// compressed database with the actual low minimum support." Here there is
// no previous iteration at all — recycling is used as an internal
// optimization of a single cold mining task.
//
// Three entry points:
//
//   - Mine: the literal two-step split with a configurable intermediate
//     threshold factor.
//   - Progressive: a geometric cascade of thresholds, each round recycling
//     the previous one's patterns, ending at the target.
//   - TopK: mine the K best patterns by support without choosing a
//     threshold — the cascade relaxes until K patterns exist, recycling as
//     it goes, then returns the top K.
//
// The ablation experiment "ablation-twostep" measures when the split beats
// direct mining (answering the paper's open question on our stand-ins).
package twostep

import (
	"context"
	"fmt"
	"sort"

	"gogreen/internal/core"
	"gogreen/internal/dataset"
	"gogreen/internal/engine"
	"gogreen/internal/mining"
)

// Options configures the two-step strategies.
type Options struct {
	// Engine names the compressed-database miner by canonical registry
	// name, e.g. "rp-hmine" (default "rp-naive").
	Engine string
	// Strategy ranks patterns for compression (default MCP, as the paper
	// proposes).
	Strategy core.Strategy
	// Factor is the ratio between the intermediate and target thresholds
	// for Mine, and between consecutive cascade steps for Progressive and
	// TopK (default 4, minimum 2).
	Factor int
	// Cache configures the materialized threshold lattice (shared engine
	// option struct; off by default). When enabled, cascade rounds are
	// served from and installed into the process-wide ladder keyed by the
	// database, so repeated two-step tasks over one database skip the rounds
	// a previous task already materialized.
	Cache engine.CacheConfig
}

func (o Options) factor() int {
	if o.Factor < 2 {
		return 4
	}
	return o.Factor
}

// pipeline assembles the engine pipeline the strategies run through: fresh
// H-Mine seeds, the configured engine mines the compressed cascade rounds,
// and the optional lattice is attached keyed by db.
func (o Options) pipeline(db *dataset.DB) engine.Pipeline {
	name := o.Engine
	if name == "" {
		name = "rp-naive"
	}
	p := engine.Pipeline{Recycled: name, Strategy: o.Strategy}
	o.Cache.Attach(&p, db)
	return p
}

// seedLabel names a cascade round's seed set for Result.BasedOn.
func seedLabel(minCount int) string { return fmt.Sprintf("seed-%d", minCount) }

// Mine runs the literal two-step split: a cheap pass at an intermediate
// threshold, then compression with those patterns and a full mine at
// minCount. The result is the complete frequent-pattern set at minCount.
//
// The intermediate threshold scales multiplicatively in the sparse regime
// (factor × minCount) and on the margin to |DB| in the dense regime —
// thresholds like 92% of a dense database leave no room above for a
// multiple, but 98% is still a much cheaper seed task.
func Mine(db *dataset.DB, minCount int, opts Options, sink mining.Sink) error {
	if minCount < 1 {
		return mining.ErrBadMinSupport
	}
	mid := intermediate(minCount, db.Len(), opts.factor())
	pipe := opts.pipeline(db)
	seed, err := pipe.Serve(context.Background(), db, nil, mid, nil)
	if err != nil {
		return err
	}
	prior := &engine.Prior{Patterns: seed.Patterns, MinCount: mid, Label: seedLabel(mid)}
	_, err = pipe.Serve(context.Background(), db, prior, minCount, sink)
	return err
}

// intermediate picks the seed threshold above target for one split step.
// In the dense regime the seed sits a fraction of the remaining margin
// above the target — close enough to keep the structure that makes
// compression useful (a seed near |DB| would find nothing recyclable),
// far enough to be much cheaper than the target task.
func intermediate(target, dbLen, f int) int {
	if target > dbLen/2 && dbLen > target {
		return target + (dbLen-target)/f
	}
	return target * f
}

// Progressive cascades from a high threshold down to minCount
// geometrically, recycling each round into the next. Intermediate rounds
// only produce seed patterns; only the final round streams into sink.
func Progressive(db *dataset.DB, minCount int, opts Options, sink mining.Sink) error {
	if minCount < 1 {
		return mining.ErrBadMinSupport
	}
	f := opts.factor()
	ladder := thresholdLadder(minCount, db.Len(), f)
	pipe := opts.pipeline(db)
	var prior *engine.Prior
	for i, t := range ladder {
		last := i == len(ladder)-1
		var dst mining.Sink
		if last {
			dst = sink
		}
		run, err := pipe.Serve(context.Background(), db, prior, t, dst)
		if err != nil {
			return err
		}
		if last {
			return nil
		}
		prior = &engine.Prior{Patterns: run.Patterns, MinCount: t, Label: seedLabel(t)}
	}
	return nil
}

// TopK returns the k patterns with the highest supports (ties broken by
// shorter length, then item order, so the result is deterministic). The
// threshold is discovered by cascading downward with recycling until at
// least k patterns are frequent.
func TopK(db *dataset.DB, k int, opts Options) ([]mining.Pattern, error) {
	if k < 1 {
		return nil, mining.ErrBadMinSupport
	}
	if db.Len() == 0 {
		return nil, nil
	}
	f := opts.factor()
	threshold := db.Len()
	pipe := opts.pipeline(db)
	var prior *engine.Prior
	var fp []mining.Pattern
	for {
		run, err := pipe.Serve(context.Background(), db, prior, threshold, nil)
		if err != nil {
			return nil, err
		}
		fp = run.Patterns
		if len(fp) >= k || threshold == 1 {
			break
		}
		prior = &engine.Prior{Patterns: fp, MinCount: threshold, Label: seedLabel(threshold)}
		threshold /= f
		if threshold < 1 {
			threshold = 1
		}
	}
	sort.Slice(fp, func(i, j int) bool {
		a, b := fp[i], fp[j]
		if a.Support != b.Support {
			return a.Support > b.Support
		}
		if len(a.Items) != len(b.Items) {
			return len(a.Items) < len(b.Items)
		}
		for x := range a.Items {
			if a.Items[x] != b.Items[x] {
				return a.Items[x] < b.Items[x]
			}
		}
		return false
	})
	if len(fp) > k {
		fp = fp[:k]
	}
	return fp, nil
}

// thresholdLadder builds the descending cascade of thresholds ending at
// target. Dense regime: rungs at target + margin/f^k, already descending
// in k (the cold first rung is the cheapest informative seed). Sparse
// regime: rungs at target·f^k, built ascending then reversed.
func thresholdLadder(target, dbLen, f int) []int {
	var mids []int
	if target > dbLen/2 && dbLen > target {
		for m := (dbLen - target) / f; m >= 1; m /= f {
			mids = append(mids, target+m) // descending thresholds
			if m == 1 {
				break
			}
		}
	} else {
		for t := target * f; t <= dbLen; t *= f {
			mids = append(mids, t) // ascending; reversed below
		}
		for i, j := 0, len(mids)-1; i < j; i, j = i+1, j-1 {
			mids[i], mids[j] = mids[j], mids[i]
		}
	}
	return append(mids, target)
}
