package server_test

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"gogreen/internal/server"
	"gogreen/internal/shard"
)

// newShardedServer builds a server and its HTTP front with the given options.
func newShardedServer(t *testing.T, opts ...server.Option) (*server.Server, *httptest.Server) {
	t.Helper()
	srv := server.New(opts...)
	t.Cleanup(func() { srv.Shutdown(context.Background()) })
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// doAs is do with a tenant header.
func doAs(t *testing.T, tenant, method, url string, body string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(server.TenantHeader, tenant)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// idsOnDistinctShards returns n database ids that srv routes to n distinct
// shards.
func idsOnDistinctShards(t *testing.T, srv *server.Server, n int) []string {
	t.Helper()
	seen := map[int]string{}
	for i := 0; len(seen) < n && i < 10000; i++ {
		id := fmt.Sprintf("db%04d", i)
		if sh := srv.ShardFor(id); seen[sh] == "" {
			seen[sh] = id
		}
	}
	if len(seen) < n {
		t.Fatalf("could not find ids on %d distinct shards", n)
	}
	out := make([]string, 0, n)
	for sh := 0; sh < n; sh++ {
		out = append(out, seen[sh])
	}
	return out
}

// quotaBody decodes the structured 429 body of an admission rejection.
type quotaBody struct {
	Error    string `json:"error"`
	Code     string `json:"code"`
	Tenant   string `json:"tenant"`
	Resource string `json:"resource"`
}

// requireQuota429 asserts resp is the documented quota-rejection contract:
// status 429, code "tenant_quota", the expected tenant and resource in the
// body, and a positive integer Retry-After header.
func requireQuota429(t *testing.T, resp *http.Response, body []byte, tenant, resource string) {
	t.Helper()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d (%s), want 429", resp.StatusCode, body)
	}
	var qb quotaBody
	if err := json.Unmarshal(body, &qb); err != nil {
		t.Fatalf("429 body is not JSON: %v (%s)", err, body)
	}
	if qb.Code != "tenant_quota" || qb.Tenant != tenant || qb.Resource != resource {
		t.Fatalf("429 body = %+v, want code=tenant_quota tenant=%s resource=%s", qb, tenant, resource)
	}
	ra := resp.Header.Get("Retry-After")
	secs, err := strconv.Atoi(ra)
	if err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q, want positive integer seconds", ra)
	}
}

// TestShardRoutingStable proves placement is a pure function of (shard
// count, database id): two independent servers agree, and the /db/{id}/lattice
// endpoint reports the same owner the router computes.
func TestShardRoutingStable(t *testing.T) {
	a := server.New(server.WithShards(4))
	defer a.Shutdown(context.Background())
	b := server.New(server.WithShards(4))
	defer b.Shutdown(context.Background())
	ring := shard.New(4)
	for i := 0; i < 500; i++ {
		id := fmt.Sprintf("db%04d", i)
		if a.ShardFor(id) != b.ShardFor(id) || a.ShardFor(id) != ring.Owner(id) {
			t.Fatalf("placement of %q unstable: %d / %d / ring %d",
				id, a.ShardFor(id), b.ShardFor(id), ring.Owner(id))
		}
	}

	srv, ts := newShardedServer(t, server.WithShards(4))
	id := "weather"
	if resp, body := do(t, "PUT", ts.URL+"/db/"+id, basket(t)); resp.StatusCode != http.StatusCreated {
		t.Fatalf("put: %d %s", resp.StatusCode, body)
	}
	_, body := do(t, "GET", ts.URL+"/db/"+id+"/lattice", "")
	var li struct {
		Shard int `json:"shard"`
	}
	if err := json.Unmarshal(body, &li); err != nil {
		t.Fatal(err)
	}
	if li.Shard != srv.ShardFor(id) {
		t.Fatalf("lattice endpoint reports shard %d, router says %d", li.Shard, srv.ShardFor(id))
	}
}

// TestMultiShardLifecycle drives the whole API surface at four shards: the
// HTTP contract is byte-compatible with the single-shard service, and
// GET /shards accounts every database exactly once.
func TestMultiShardLifecycle(t *testing.T) {
	srv, ts := newShardedServer(t, server.WithShards(4))

	const n = 8
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("life%d", i)
		if resp, body := do(t, "PUT", ts.URL+"/db/"+ids[i], basket(t)); resp.StatusCode != http.StatusCreated {
			t.Fatalf("put %s: %d %s", ids[i], resp.StatusCode, body)
		}
	}

	// List spans all shards, sorted.
	_, body := do(t, "GET", ts.URL+"/db", "")
	var infos []server.DBInfo
	if err := json.Unmarshal(body, &infos); err != nil {
		t.Fatal(err)
	}
	if len(infos) != n {
		t.Fatalf("list: %d databases, want %d", len(infos), n)
	}
	for i := 1; i < len(infos); i++ {
		if infos[i-1].ID >= infos[i].ID {
			t.Fatalf("list unsorted: %s before %s", infos[i-1].ID, infos[i].ID)
		}
	}

	// Mining, saved sets, and stats work wherever the id landed.
	for _, id := range ids {
		resp, body := do(t, "POST", ts.URL+"/db/"+id+"/mine",
			`{"min_count":2,"save_as":"s"}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("mine %s: %d %s", id, resp.StatusCode, body)
		}
		var mr server.MineResponse
		if err := json.Unmarshal(body, &mr); err != nil {
			t.Fatal(err)
		}
		if mr.Count == 0 || mr.SavedAs != "s" {
			t.Fatalf("mine %s: %+v", id, mr)
		}
	}

	// /shards accounts each database once and reports the lattice slices.
	_, body = do(t, "GET", ts.URL+"/shards", "")
	var shards []server.ShardInfo
	if err := json.Unmarshal(body, &shards); err != nil {
		t.Fatal(err)
	}
	if len(shards) != 4 {
		t.Fatalf("GET /shards: %d entries, want 4", len(shards))
	}
	total, rungs := 0, 0
	for i, si := range shards {
		if si.Shard != i {
			t.Fatalf("shard %d reports id %d", i, si.Shard)
		}
		total += si.DBs
		rungs += si.LatticeRungs
	}
	if total != n {
		t.Fatalf("shards account %d databases, want %d", total, n)
	}
	if rungs < n {
		t.Fatalf("shards hold %d lattice rungs after %d mines, want >= %d", rungs, n, n)
	}

	for _, id := range ids {
		if resp, _ := do(t, "DELETE", ts.URL+"/db/"+id, ""); resp.StatusCode != http.StatusNoContent {
			t.Fatalf("delete %s: %d", id, resp.StatusCode)
		}
	}
	if got := srv.Registry().Gauge("shard_count").Value(); got != 4 {
		t.Fatalf("shard_count metric = %d, want 4", got)
	}
}

// TestTenantQuotaDBs proves the database-count quota: the over-quota tenant
// gets the documented 429 contract, other tenants are unaffected, and
// deleting restores headroom.
func TestTenantQuotaDBs(t *testing.T) {
	srv, ts := newShardedServer(t,
		server.WithShards(2), server.WithQuotas(shard.Quotas{MaxDBs: 1}))

	if resp, body := doAs(t, "alice", "PUT", ts.URL+"/db/a1", basket(t)); resp.StatusCode != http.StatusCreated {
		t.Fatalf("first put: %d %s", resp.StatusCode, body)
	}
	resp, body := doAs(t, "alice", "PUT", ts.URL+"/db/a2", basket(t))
	requireQuota429(t, resp, body, "alice", shard.ResourceDBs)

	// Replacing the existing database is not a new acquisition.
	if resp, body := doAs(t, "alice", "PUT", ts.URL+"/db/a1", basket(t)); resp.StatusCode != http.StatusOK {
		t.Fatalf("replace: %d %s", resp.StatusCode, body)
	}

	// Another tenant is unaffected by alice's exhaustion.
	if resp, body := doAs(t, "bob", "PUT", ts.URL+"/db/b1", basket(t)); resp.StatusCode != http.StatusCreated {
		t.Fatalf("bob put: %d %s", resp.StatusCode, body)
	}

	if resp, _ := doAs(t, "alice", "DELETE", ts.URL+"/db/a1", ""); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: %d", resp.StatusCode)
	}
	if resp, body := doAs(t, "alice", "PUT", ts.URL+"/db/a2", basket(t)); resp.StatusCode != http.StatusCreated {
		t.Fatalf("put after delete: %d %s", resp.StatusCode, body)
	}

	if n := srv.Registry().Counter("tenant_rejected_total").Value(); n != 1 {
		t.Fatalf("tenant_rejected_total = %d, want 1", n)
	}
	if n := srv.Registry().Counter("tenant_rejected." + shard.ResourceDBs).Value(); n != 1 {
		t.Fatalf("tenant_rejected.dbs = %d, want 1", n)
	}
}

// TestTenantQuotaJobs proves the async-job quota: one tenant's saturated
// slice rejects only that tenant, the slot frees when the job terminates
// (here: cancelled while running), and job ids are namespaced per shard.
func TestTenantQuotaJobs(t *testing.T) {
	_, ts := newShardedServer(t,
		server.WithShards(2), server.WithWorkers(2), server.WithQueueDepth(8),
		server.WithQuotas(shard.Quotas{MaxQueuedJobs: 1}))

	do(t, "PUT", ts.URL+"/db/slow", slowBasket(30, 60))

	resp, body := doAs(t, "alice", "POST", ts.URL+"/db/slow/mine?async=1", `{"min_count":1}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first async: %d %s", resp.StatusCode, body)
	}
	var snap struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(snap.ID, "s") || !strings.Contains(snap.ID, "-j") {
		t.Fatalf("job id %q lacks the per-shard prefix (s<idx>-j<seq>)", snap.ID)
	}

	// Alice's slice is full; bob's is not.
	resp, body = doAs(t, "alice", "POST", ts.URL+"/db/slow/mine?async=1", `{"min_count":1}`)
	requireQuota429(t, resp, body, "alice", shard.ResourceJobs)
	resp, body = doAs(t, "bob", "POST", ts.URL+"/db/slow/mine?async=1", `{"min_count":1}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("bob async: %d %s", resp.StatusCode, body)
	}
	var bobSnap struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &bobSnap); err != nil {
		t.Fatal(err)
	}

	// Cancelling alice's job frees her slot (release rides the job's Done
	// channel, so poll briefly).
	if resp, body := do(t, "DELETE", ts.URL+"/jobs/"+snap.ID, ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: %d %s", resp.StatusCode, body)
	}
	waitUntil(t, 5*time.Second, "alice's job slot to free", func() bool {
		resp, body := doAs(t, "alice", "POST", ts.URL+"/db/slow/mine?async=1", `{"min_count":1}`)
		if resp.StatusCode == http.StatusAccepted {
			var s struct {
				ID string `json:"id"`
			}
			json.Unmarshal(body, &s)
			do(t, "DELETE", ts.URL+"/jobs/"+s.ID, "")
			return true
		}
		return false
	})
	do(t, "DELETE", ts.URL+"/jobs/"+bobSnap.ID, "")
}

// TestTenantQuotaPatternBytes proves the saved-bytes quota's high-water-mark
// discipline: the first save is admitted and accounted, the next is rejected
// at the door, non-saving mines are never affected, and deleting the
// database refunds the bytes.
func TestTenantQuotaPatternBytes(t *testing.T) {
	_, ts := newShardedServer(t,
		server.WithQuotas(shard.Quotas{MaxPatternBytes: 1}))

	if resp, body := doAs(t, "alice", "PUT", ts.URL+"/db/pb", basket(t)); resp.StatusCode != http.StatusCreated {
		t.Fatalf("put: %d %s", resp.StatusCode, body)
	}
	resp, body := doAs(t, "alice", "POST", ts.URL+"/db/pb/mine", `{"min_count":2,"save_as":"s1"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first save: %d %s", resp.StatusCode, body)
	}

	// Accounted bytes now exceed the 1-byte quota: saving is rejected...
	resp, body = doAs(t, "alice", "POST", ts.URL+"/db/pb/mine", `{"min_count":2,"save_as":"s2"}`)
	requireQuota429(t, resp, body, "alice", shard.ResourcePatternBytes)

	// ...but plain mining is not.
	if resp, body := doAs(t, "alice", "POST", ts.URL+"/db/pb/mine", `{"min_count":2}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("non-saving mine: %d %s", resp.StatusCode, body)
	}

	// The quota follows the database owner, not the requester: bob saving
	// onto alice's database charges alice (and is rejected under her quota).
	resp, body = doAs(t, "bob", "POST", ts.URL+"/db/pb/mine", `{"min_count":2,"save_as":"s3"}`)
	requireQuota429(t, resp, body, "alice", shard.ResourcePatternBytes)

	// Deleting the database refunds the bytes.
	if resp, _ := doAs(t, "alice", "DELETE", ts.URL+"/db/pb", ""); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: %d", resp.StatusCode)
	}
	if resp, body := doAs(t, "alice", "PUT", ts.URL+"/db/pb", basket(t)); resp.StatusCode != http.StatusCreated {
		t.Fatalf("re-put: %d %s", resp.StatusCode, body)
	}
	if resp, body := doAs(t, "alice", "POST", ts.URL+"/db/pb/mine", `{"min_count":2,"save_as":"s1"}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("save after refund: %d %s", resp.StatusCode, body)
	}
}

// TestTenantsOnDistinctShardsConcurrent hammers two tenants whose databases
// live on different shards from concurrent goroutines — under -race this
// proves the shards share no unsynchronized state.
func TestTenantsOnDistinctShardsConcurrent(t *testing.T) {
	srv, ts := newShardedServer(t, server.WithShards(2))
	ids := idsOnDistinctShards(t, srv, 2)
	tenants := []string{"alice", "bob"}
	for i, id := range ids {
		if resp, body := doAs(t, tenants[i], "PUT", ts.URL+"/db/"+id, basket(t)); resp.StatusCode != http.StatusCreated {
			t.Fatalf("put %s: %d %s", id, resp.StatusCode, body)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for i := range ids {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for k := 0; k < 15; k++ {
				req := fmt.Sprintf(`{"min_count":2,"save_as":"r%d"}`, k%3)
				resp, body := doAs(t, tenants[i], "POST", ts.URL+"/db/"+ids[i]+"/mine", req)
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Sprintf("mine %s: %d %s", ids[i], resp.StatusCode, body)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

// TestJobsAcrossShards proves the jobs surface spans shards: list merges
// every pool, and get/cancel resolve ids wherever they were minted.
func TestJobsAcrossShards(t *testing.T) {
	srv, ts := newShardedServer(t, server.WithShards(3), server.WithWorkers(3))
	ids := idsOnDistinctShards(t, srv, 3)
	jobIDs := make([]string, len(ids))
	for i, id := range ids {
		do(t, "PUT", ts.URL+"/db/"+id, slowBasket(30, 60))
		resp, body := do(t, "POST", ts.URL+"/db/"+id+"/mine?async=1", `{"min_count":1}`)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("async %s: %d %s", id, resp.StatusCode, body)
		}
		var s struct {
			ID string `json:"id"`
		}
		if err := json.Unmarshal(body, &s); err != nil {
			t.Fatal(err)
		}
		jobIDs[i] = s.ID
		want := fmt.Sprintf("s%d-", srv.ShardFor(id))
		if !strings.HasPrefix(s.ID, want) {
			t.Fatalf("job for %s got id %q, want prefix %q", id, s.ID, want)
		}
	}

	_, body := do(t, "GET", ts.URL+"/jobs", "")
	var list []struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != len(jobIDs) {
		t.Fatalf("job list has %d entries, want %d (%s)", len(list), len(jobIDs), body)
	}

	for _, id := range jobIDs {
		if resp, body := do(t, "GET", ts.URL+"/jobs/"+id, ""); resp.StatusCode != http.StatusOK {
			t.Fatalf("get %s: %d %s", id, resp.StatusCode, body)
		}
		if resp, body := do(t, "DELETE", ts.URL+"/jobs/"+id, ""); resp.StatusCode != http.StatusOK {
			t.Fatalf("cancel %s: %d %s", id, resp.StatusCode, body)
		}
	}
}
