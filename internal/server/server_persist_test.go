package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gogreen/internal/testutil"
)

// paperBasket renders the paper's example database in upload format.
func paperBasket() string {
	var sb strings.Builder
	for _, tx := range testutil.PaperDB().All() {
		for j, it := range tx {
			if j > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, "%d", it)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

func doReq(t *testing.T, h http.Handler, method, path, body string, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	resp := rec.Result()
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

// TestPersistCrashRecovery is the durability proof at the service level: a
// server with a data dir takes uploads, saved mines and lattice installs,
// then is abandoned without any orderly close — the crash. A second server
// opened on the same directory must serve every acknowledged write: database
// stats, tenant quota accounting, byte-identical saved patterns, and the
// mined rung (the restarted lattice answers the same threshold with a pure
// hit). Content comes back lazily: the db boots as a cold stub and the
// fetch that touches it bumps store_rehydrations.
func TestPersistCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	open := func() *Server {
		s, err := Open(WithDataDir(dir), WithShards(2))
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	s1 := open()
	h := s1.Handler()
	if resp, body := doReq(t, h, "PUT", "/db/paper", paperBasket(), nil); resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload: %d %s", resp.StatusCode, body)
	}
	if resp, body := doReq(t, h, "PUT", "/db/other", "1 2\n2 3\n1 2 3\n",
		map[string]string{TenantHeader: "acme"}); resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload other: %d %s", resp.StatusCode, body)
	}
	resp, body := doReq(t, h, "POST", "/db/paper/mine",
		`{"min_count":3,"save_as":"round1","limit":100}`, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mine: %d %s", resp.StatusCode, body)
	}
	var r1 MineResponse
	json.Unmarshal(body, &r1)
	if r1.SavedAs != "round1" || r1.Count == 0 {
		t.Fatalf("round1 = %+v", r1)
	}
	_, wantPatterns := doReq(t, h, "GET", "/db/paper/patterns/round1", "", nil)
	usageBefore := s1.gov.Usage(DefaultTenant)
	if usageBefore.DBs != 1 || usageBefore.PatternBytes <= 0 {
		t.Fatalf("usage before crash = %+v", usageBefore)
	}
	// Crash: no Shutdown, no Close. Every acknowledged response above was
	// fsync'd before it was written, so nothing in flight is lost.
	_ = s1

	s2 := open()
	defer func() {
		s2.Shutdown(context.Background())
		s2.Close()
	}()
	h2 := s2.Handler()

	// Stats and listings come straight from recovered stub metadata.
	resp, body = doReq(t, h2, "GET", "/db/paper", "", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats after restart: %d %s", resp.StatusCode, body)
	}
	var dbInfo DBInfo
	json.Unmarshal(body, &dbInfo)
	if dbInfo.Tuples != 5 || dbInfo.Sets != 1 {
		t.Fatalf("recovered stats = %+v", dbInfo)
	}
	resp, body = doReq(t, h2, "GET", "/db/paper/patterns", "", nil)
	var sets []SetInfo
	json.Unmarshal(body, &sets)
	if resp.StatusCode != http.StatusOK || len(sets) != 1 ||
		sets[0].Name != "round1" || sets[0].Count != r1.Count {
		t.Fatalf("recovered set listing: %d %s", resp.StatusCode, body)
	}
	// Listing is metadata-only: the database must still be a cold stub.
	sh := s2.shardFor("paper")
	e := sh.dbs["paper"]
	e.mu.Lock()
	resident := e.resident
	e.mu.Unlock()
	if resident {
		t.Fatal("listing hydrated the stub; metadata should have answered")
	}

	// Tenant accounting is restored at boot, before any hydration.
	if got := s2.gov.Usage(DefaultTenant); got.DBs != usageBefore.DBs ||
		got.PatternBytes != usageBefore.PatternBytes {
		t.Fatalf("restored usage = %+v, want %+v", got, usageBefore)
	}
	if got := s2.gov.Usage("acme"); got.DBs != 1 {
		t.Fatalf("acme usage = %+v", got)
	}

	// Content fetch hydrates and must be byte-identical to the pre-crash body.
	resp, gotPatterns := doReq(t, h2, "GET", "/db/paper/patterns/round1", "", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("patterns after restart: %d %s", resp.StatusCode, gotPatterns)
	}
	if !bytes.Equal(gotPatterns, wantPatterns) {
		t.Fatalf("recovered patterns differ:\n%s\nvs\n%s", gotPatterns, wantPatterns)
	}
	if n := s2.met.storeRehydrations.Value(); n < 1 {
		t.Fatalf("store_rehydrations = %d, want >= 1", n)
	}

	// The installed rung survived too: the same threshold is a pure lattice
	// hit on the restarted server.
	resp, body = doReq(t, h2, "POST", "/db/paper/mine", `{"min_count":3}`, nil)
	var r2 MineResponse
	json.Unmarshal(body, &r2)
	if resp.StatusCode != http.StatusOK || r2.Cache != "hit" || r2.Count != r1.Count {
		t.Fatalf("post-restart mine = %d %+v", resp.StatusCode, r2)
	}
}

// TestColdSpillAndRehydrate drives the cold sweeper end to end: an untouched
// database is spilled to its disk stub (store_evictions advances, the entry
// drops its memory), and the next content touch rehydrates it with identical
// bytes (store_rehydrations advances).
func TestColdSpillAndRehydrate(t *testing.T) {
	s, err := Open(WithDataDir(t.TempDir()), WithColdAfter(30*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		s.Shutdown(context.Background())
		s.Close()
	}()
	h := s.Handler()

	if resp, body := doReq(t, h, "PUT", "/db/paper", paperBasket(), nil); resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload: %d %s", resp.StatusCode, body)
	}
	resp, body := doReq(t, h, "POST", "/db/paper/mine",
		`{"min_count":3,"save_as":"round1","limit":100}`, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mine: %d %s", resp.StatusCode, body)
	}
	_, wantPatterns := doReq(t, h, "GET", "/db/paper/patterns/round1", "", nil)

	// Wait out the cold clock (the pattern fetch above was the last touch).
	e := s.shardFor("paper").dbs["paper"]
	deadline := time.Now().Add(5 * time.Second)
	for {
		e.mu.Lock()
		resident, db := e.resident, e.db
		e.mu.Unlock()
		if !resident {
			if db != nil {
				t.Fatal("spilled entry still holds its database")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("entry never went cold")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if n := s.met.storeEvictions.Value(); n < 1 {
		t.Fatalf("store_evictions = %d, want >= 1", n)
	}

	// First touch rehydrates; the bytes must match the pre-spill fetch.
	resp, gotPatterns := doReq(t, h, "GET", "/db/paper/patterns/round1", "", nil)
	if resp.StatusCode != http.StatusOK || !bytes.Equal(gotPatterns, wantPatterns) {
		t.Fatalf("rehydrated patterns: %d\n%s\nvs\n%s", resp.StatusCode, gotPatterns, wantPatterns)
	}
	if n := s.met.storeRehydrations.Value(); n < 1 {
		t.Fatalf("store_rehydrations = %d, want >= 1", n)
	}
	e.mu.Lock()
	resident := e.resident
	e.mu.Unlock()
	if !resident {
		t.Fatal("fetch did not rehydrate the entry")
	}

	// And mining still works on the round-tripped database.
	resp, body = doReq(t, h, "POST", "/db/paper/mine", `{"min_count":2}`, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mine after rehydration: %d %s", resp.StatusCode, body)
	}
}

// TestDeleteSurvivesRestart proves deletion is as durable as creation.
func TestDeleteSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(WithDataDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	h := s1.Handler()
	if resp, body := doReq(t, h, "PUT", "/db/gone", "1 2\n1 3\n", nil); resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload: %d %s", resp.StatusCode, body)
	}
	if resp, body := doReq(t, h, "PUT", "/db/kept", "1 2\n1 3\n", nil); resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload: %d %s", resp.StatusCode, body)
	}
	if resp, _ := doReq(t, h, "DELETE", "/db/gone", "", nil); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: %d", resp.StatusCode)
	}
	// Crash without close.

	s2, err := Open(WithDataDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		s2.Shutdown(context.Background())
		s2.Close()
	}()
	if resp, _ := doReq(t, s2.Handler(), "GET", "/db/gone", "", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("deleted db resurrected: %d", resp.StatusCode)
	}
	if resp, _ := doReq(t, s2.Handler(), "GET", "/db/kept", "", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("kept db lost: %d", resp.StatusCode)
	}
	if got := s2.gov.Usage(DefaultTenant).DBs; got != 1 {
		t.Fatalf("restored DBs = %d, want 1", got)
	}
}
