// Package server exposes the recycling miner as a multi-user HTTP service —
// the setting the paper motivates in Section 2: "when there are many users
// in a data mining system, the frequent patterns discovered by one user also
// provide opportunity for the others to recycle."
//
// Databases are uploaded in basket format; every mining request can save its
// result under a name, and later requests (from any user) reuse saved sets
// automatically: a saved set mined at a threshold at or below the request's
// is filtered, anything else is recycled through compression. JSON in and
// out, stdlib only.
//
// The service is built to be operated, not just demonstrated:
//
//   - every mining run honors the request context plus an optional
//     per-request deadline (WithMineTimeout); timeouts and client
//     disconnects abort the recursion within microseconds and map to 503;
//
//   - mining never holds a database's lock — inputs are snapshotted under
//     the lock, mined unlocked, and results saved under the lock again with
//     a last-writer-wins version check, so reads stay fast during long runs;
//
//   - long runs can be made asynchronous (POST .../mine?async=1): they
//     enqueue onto a bounded worker pool (full queue → 429) and are polled
//     and cancelled through /jobs;
//
//   - GET /metrics reports mine counts, latencies, the fresh/filtered/
//     recycled source mix, compression ratios, queue depth and in-flight
//     requests.
//
// The service is horizontally sharded in-process (WithShards): a
// consistent-hashing router (internal/shard.Ring, keyed on database id)
// fronts N engine shards, each exclusively owning its own database map and
// lock, async job pool, lattice store slice, and per-shard metrics — there
// is no global entry lock, so traffic on one shard never contends with
// another's. The router reaches its shards only through the shard.Backend
// seam: in this process as direct handler calls (localBackend), or across
// processes as forwarded HTTP (shard.Remote) — see Router, NewRouter and
// WithShardIndex for the multi-process deployment, where the same binary
// runs as router or as a single shard and the deployment shape is
// configuration, not code.
//
// Multi-tenant admission control (WithQuotas) bounds what one tenant — the
// X-Tenant request header, "default" when absent — may hold: resident
// databases, queued async jobs, and saved-pattern bytes (metered with
// memlimit's cost model). Over-quota requests are rejected at the door with
// 429, a machine-readable body (code "tenant_quota") and a Retry-After
// header, before any shard does work, so one tenant's excess cannot degrade
// another's latency.
//
// Mining requests are served through the materialized threshold lattice
// (internal/lattice, on by default, see WithLattice): every mined result is
// installed as a rung of the database's threshold ladder, and later requests
// at any threshold are answered by pure-filtering the nearest rung below or
// relax-mining from the nearest rung above. Each shard owns a private store
// covering its databases — one slice of the configured byte budget — so
// install-time LRU eviction scans only that shard's rungs. The lattice is
// inspectable and invalidatable over HTTP.
//
//	PUT    /db/{id}                 upload basket data (numeric ids)
//	GET    /db                      list databases (all shards)
//	GET    /db/{id}                 database stats
//	DELETE /db/{id}                 drop a database
//	POST   /db/{id}/mine            run one mining round (see MineRequest);
//	?async=1 enqueues a job instead
//	GET    /db/{id}/patterns        list saved pattern sets
//	GET    /db/{id}/patterns/{name} fetch one saved set
//	GET    /db/{id}/lattice         cached threshold ladder (rungs, hits)
//	DELETE /db/{id}/lattice         invalidate the cached ladder
//	GET    /jobs                    list async jobs (all shards)
//	GET    /jobs/{id}               poll one job
//	DELETE /jobs/{id}               cancel one job
//	GET    /shards                  per-shard occupancy and queue stats
//	GET    /healthz                 liveness (role, ring health census)
//	GET    /metrics                 metrics snapshot (JSON)
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"gogreen/internal/dataset"
	"gogreen/internal/engine"
	"gogreen/internal/jobs"
	"gogreen/internal/lattice"
	"gogreen/internal/memlimit"
	"gogreen/internal/metrics"
	"gogreen/internal/mining"
	"gogreen/internal/shard"
	"gogreen/internal/store"
)

// TenantHeader names the request header carrying the tenant id; requests
// without it belong to DefaultTenant.
const TenantHeader = "X-Tenant"

// DefaultTenant is the tenant id of requests that carry no TenantHeader.
const DefaultTenant = "default"

// Server is the service state: the shard router, the per-tenant admission
// governor, and N engine shards. Safe for concurrent use.
type Server struct {
	maxBody int64

	mineTimeout time.Duration
	workers     int
	queueCap    int

	compressWorkers int
	mineWorkers     int

	// cache configures the threshold lattice (enabled by default). Each
	// shard carves its own store out of the configured byte budget.
	cache engine.CacheConfig

	// nshards is the engine shard count; ring routes database ids onto
	// [0, nshards) by consistent hashing, so the same id always lands on the
	// same shard across restarts.
	nshards int
	ring    *shard.Ring
	shards  []*engineShard

	// shardIndex (-1 unless WithShardIndex) marks this process as one shard
	// of an external ring: ids it mints carry that ring position.
	shardIndex int

	// router fronts the shards through the Backend seam; Handler and Routes
	// delegate to it.
	router *Router

	// quotas/gov is the per-tenant admission controller; zero quotas admit
	// everything.
	quotas shard.Quotas
	gov    *shard.Governor

	// dataDir, when set, makes the server durable: each shard opens a
	// segment store under dataDir/shard-<i>, every acknowledged mutation is
	// written through before the response, boot replays what disk holds,
	// and cold databases spill to stubs that rehydrate on first touch.
	dataDir          string
	snapshotInterval time.Duration
	coldAfter        time.Duration

	sweepStop chan struct{}
	sweepDone chan struct{}
	closeOnce sync.Once

	reg *metrics.Registry
	met *serverMetrics

	// mineHook, when set, runs after a mine's input snapshot is taken and
	// before mining starts. Test-only: lets tests replace the database
	// deterministically mid-run to exercise the save version check.
	mineHook func()
}

// engineShard is one in-process engine shard. A shard exclusively owns its
// database map and lock, its async job pool, and its lattice store slice —
// no structure here is reachable from another shard, which is the invariant
// that makes cross-shard lock contention impossible: a request touches
// exactly the one shard its database id hashes to.
type engineShard struct {
	id  int
	srv *Server

	mu  sync.RWMutex
	dbs map[string]*entry

	jobs  *jobs.Manager
	store *lattice.Store
	// disk is the shard's durable segment store; nil without WithDataDir.
	disk *store.Store

	// pipe is the engine pipeline this shard's mining runs go through; its
	// observer is the server-wide metrics bundle (metrics objects are
	// concurrency-safe, so sharing them is not a contention point).
	pipe engine.Pipeline
}

// entry is one uploaded database and its saved pattern sets. version is
// bumped whenever the database content is replaced; mining results are only
// saved when the database they were mined from is still current. owner is
// the tenant whose quotas the database and its saved sets count against.
//
// With persistence on, an entry can be a cold stub: resident is false, db is
// nil and the sets hold metadata only — stats, versioning and quota
// accounting stay live, and first touch rehydrates content from the shard's
// segment store. pins counts in-flight mining runs; the cold sweeper never
// spills a pinned entry.
type entry struct {
	mu      sync.Mutex
	id      string
	db      *dataset.DB
	stats   dataset.Stats
	sets    map[string]*savedSet
	version int64
	owner   string

	resident  bool
	deleted   bool
	pins      int
	lastTouch time.Time
}

// savedSet is one saved mining result. The patterns slice is immutable once
// stored, so it can be snapshotted out of the lock and shared; bytes is its
// metered footprint (memlimit's cost model) for tenant accounting. count
// mirrors len(patterns) and stays valid when a spilled set's patterns are
// nil.
type savedSet struct {
	patterns []mining.Pattern
	count    int
	minCount int
	bytes    int64
	saved    time.Time
}

// Option configures a Server.
type Option func(*Server)

// WithMaxBodyBytes bounds upload sizes (default 64 MiB).
func WithMaxBodyBytes(n int64) Option { return func(s *Server) { s.maxBody = n } }

// WithMineTimeout bounds every mining run, synchronous or async (default: no
// limit). Expired runs abort cooperatively and report 503 / a failed job.
func WithMineTimeout(d time.Duration) Option { return func(s *Server) { s.mineTimeout = d } }

// WithWorkers sets the async worker pool size (default: NumCPU), divided
// across the shards' job pools (each shard gets at least one worker).
// Non-positive values keep the default.
func WithWorkers(n int) Option {
	return func(s *Server) {
		if n > 0 {
			s.workers = n
		}
	}
}

// WithQueueDepth bounds the async job queue (default 64), divided across the
// shards' pools (each shard gets at least one slot). A full shard queue
// rejects new jobs with 429 — the service's load-shedding point.
// Non-positive values keep the default.
func WithQueueDepth(n int) Option {
	return func(s *Server) {
		if n > 0 {
			s.queueCap = n
		}
	}
}

// WithShards sets the engine shard count (default 1). Database ids are
// routed by consistent hashing, so an id's shard is stable across restarts
// at a fixed count; changing the count re-homes ≈ 1/N of ids (see
// internal/shard.Ring). Shards hold only derived state — caches, queues,
// metrics — so re-homing costs warm-up, not correctness. Non-positive
// values keep the default.
func WithShards(n int) Option {
	return func(s *Server) {
		if n > 0 {
			s.nshards = n
		}
	}
}

// WithShardIndex declares this server to be shard i of an external ring
// (`rpserved -role shard -shard-index i`): job ids carry the "s<i>-"
// prefix, /shards and lattice responses report shard i, and the durable
// state lives under dataDir/shard-<i> — exactly what the in-process shard i
// of an N-shard server would mint, which is what lets a router aggregate
// shard processes indistinguishably from in-process shards. Requires a
// single engine shard (incompatible with WithShards > 1).
func WithShardIndex(i int) Option {
	return func(s *Server) {
		if i >= 0 {
			s.shardIndex = i
		}
	}
}

// WithQuotas bounds per-tenant consumption (see shard.Quotas); the zero
// value admits everything. Over-quota requests get 429 with a Retry-After
// header before any shard does work.
func WithQuotas(q shard.Quotas) Option { return func(s *Server) { s.quotas = q } }

// WithCompressWorkers sets the worker count of the sharded compression step
// on the recycled mine path (default: GOMAXPROCS). Output is byte-identical
// at any worker count. Non-positive values keep the default.
func WithCompressWorkers(n int) Option {
	return func(s *Server) {
		if n > 0 {
			s.compressWorkers = n
		}
	}
}

// WithMineWorkers parallelizes the mining phase of fresh and recycled runs
// over n worker goroutines (n < 0 means GOMAXPROCS; 0, the default, mines
// serially). The emitted pattern set and supports are identical to serial
// mining at any worker count; parallel runs still honor request contexts,
// deadlines and job cancellation.
func WithMineWorkers(n int) Option { return func(s *Server) { s.mineWorkers = n } }

// WithRegistry uses an external metrics registry (default: a fresh one).
func WithRegistry(reg *metrics.Registry) Option { return func(s *Server) { s.reg = reg } }

// WithLattice enables or disables the materialized threshold lattice
// (default: enabled — this surface exists for the many-users-shared-data
// scenario the lattice was built for). Disabled, every request falls back
// to the saved-set tighten-vs-relax decision alone.
func WithLattice(on bool) Option { return func(s *Server) { engine.WithLattice(on)(&s.cache) } }

// WithLatticeRungs sets the lattice install grid as relative support
// thresholds: a mine at ξ materializes its rung at the largest grid value
// ≤ ξ and filters down, so nearby thresholds share one rung.
func WithLatticeRungs(rungs []float64) Option {
	return func(s *Server) { engine.WithLatticeRungs(rungs)(&s.cache) }
}

// WithCacheBudget caps the lattice stores' total resident bytes across all
// databases (default 64 MiB), metered with memlimit's cost model and divided
// evenly across the shards' private stores.
func WithCacheBudget(bytes int64) Option {
	return func(s *Server) { engine.WithCacheBudget(bytes)(&s.cache) }
}

// WithDataDir makes the server durable: each shard persists its databases,
// saved pattern sets and installed lattice rungs to an append-only segment
// store under dir/shard-<i> (fsync'd before a mutation is acknowledged), and
// Open replays that state on boot — uploads, saves and mined rungs survive
// restarts and crashes. Empty (the default) keeps the service in-memory.
func WithDataDir(dir string) Option { return func(s *Server) { s.dataDir = dir } }

// WithSnapshotInterval sets the cadence of the background segment
// snapshot/compaction ticker (default 1m; <= 0 keeps the default). Only
// meaningful with WithDataDir.
func WithSnapshotInterval(d time.Duration) Option {
	return func(s *Server) {
		if d > 0 {
			s.snapshotInterval = d
		}
	}
}

// WithColdAfter spills databases untouched for d to their on-disk stubs,
// freeing the pattern memory of cold tenants; first touch rehydrates them
// lazily. 0 (the default) disables spilling. Only meaningful with
// WithDataDir.
func WithColdAfter(d time.Duration) Option {
	return func(s *Server) {
		if d > 0 {
			s.coldAfter = d
		}
	}
}

// New returns an empty server. With WithDataDir it panics when the data
// directory cannot be opened or recovered — use Open to handle that error.
func New(opts ...Option) *Server {
	s, err := Open(opts...)
	if err != nil {
		panic(fmt.Sprintf("server.New: %v", err))
	}
	return s
}

// Open builds the server and, when WithDataDir is configured, recovers every
// shard's durable state: databases come back as cold stubs (stats, saved-set
// metadata and tenant quota accounting restored immediately; content
// rehydrates from disk on first touch), and the snapshot and cold-spill
// tickers start. Callers owning a durable server should Close it.
func Open(opts ...Option) (*Server, error) {
	s := &Server{
		maxBody:          64 << 20,
		workers:          runtime.NumCPU(),
		queueCap:         64,
		nshards:          1,
		shardIndex:       -1,
		compressWorkers:  runtime.GOMAXPROCS(0),
		cache:            engine.CacheConfig{Enabled: true},
		snapshotInterval: time.Minute,
	}
	for _, o := range opts {
		o(s)
	}
	if s.shardIndex >= 0 && s.nshards > 1 {
		return nil, fmt.Errorf("WithShardIndex: a shard process runs one engine shard (got %d)", s.nshards)
	}
	if s.reg == nil {
		s.reg = metrics.NewRegistry()
	}
	s.ring = shard.New(s.nshards)
	s.gov = shard.NewGovernor(s.quotas)
	s.met = newServerMetrics(s.reg)
	s.met.compressWorkers.Set(int64(s.compressWorkers))
	s.met.mineWorkers.Set(int64(effectiveMineWorkers(s.mineWorkers)))
	s.met.shardCount.Set(int64(s.nshards))

	// The worker-pool and cache-budget envelopes are server-wide: each shard
	// gets an even slice (with a floor of one worker/slot), so raising the
	// shard count re-partitions resources instead of multiplying them.
	perWorkers := ceilDiv(s.workers, s.nshards)
	perQueue := ceilDiv(s.queueCap, s.nshards)
	var perBudget int64
	if s.cache.Enabled {
		perBudget = s.cache.ResolveBudget() / int64(s.nshards)
		if perBudget < 1 {
			perBudget = 1
		}
	}
	s.shards = make([]*engineShard, s.nshards)
	for i := range s.shards {
		// A shard process (WithShardIndex) mints ids for its external ring
		// position; in-process shards for their local index. Ids are
		// unprefixed only in the classic single-process, single-shard shape.
		id := i
		if s.shardIndex >= 0 {
			id = s.shardIndex
		}
		prefix := ""
		if s.nshards > 1 || s.shardIndex >= 0 {
			prefix = fmt.Sprintf("s%d-", id)
		}
		sh := &engineShard{
			id:   id,
			srv:  s,
			dbs:  map[string]*entry{},
			jobs: jobs.NewPrefixed(prefix, perWorkers, perQueue),
		}
		if s.cache.Enabled {
			sh.store = lattice.NewStore(perBudget)
		}
		sh.pipe = engine.Pipeline{
			CompressWorkers: s.compressWorkers,
			MineWorkers:     s.mineWorkers,
			Observer:        s.met,
			CacheRungs:      s.cache.Rungs,
		}
		s.shards[i] = sh
		i := i
		s.reg.GaugeFunc(fmt.Sprintf("shard.%d.dbs", id), func() int64 {
			return int64(s.shards[i].dbCount())
		})
		s.reg.GaugeFunc(fmt.Sprintf("shard.%d.queue_depth", id), func() int64 {
			return int64(s.shards[i].jobs.Depth())
		})
	}

	// The classic aggregate gauges sum over the shards, so dashboards built
	// against the single-shard service keep reading true totals.
	s.reg.GaugeFunc("jobs.queue_depth", func() int64 {
		var n int64
		for _, sh := range s.shards {
			n += int64(sh.jobs.Depth())
		}
		return n
	})
	s.reg.GaugeFunc("jobs.running", func() int64 {
		var n int64
		for _, sh := range s.shards {
			n += int64(sh.jobs.Running())
		}
		return n
	})
	if s.cache.Enabled {
		s.reg.GaugeFunc("lattice_rungs", func() int64 {
			var n int64
			for _, sh := range s.shards {
				n += int64(sh.store.Rungs())
			}
			return n
		})
		s.reg.GaugeFunc("lattice_bytes", func() int64 {
			var n int64
			for _, sh := range s.shards {
				n += sh.store.Bytes()
			}
			return n
		})
	}

	if s.dataDir != "" {
		for _, sh := range s.shards {
			disk, err := store.Open(filepath.Join(s.dataDir, fmt.Sprintf("shard-%d", sh.id)), store.Options{})
			if err != nil {
				s.closeStores()
				return nil, err
			}
			sh.disk = disk
		}
		if err := s.recoverFromDisk(); err != nil {
			s.closeStores()
			return nil, err
		}
		for _, sh := range s.shards {
			sh.disk.StartSnapshots(s.snapshotInterval)
		}
		s.reg.GaugeFunc("store_segments", func() int64 {
			var n int64
			for _, sh := range s.shards {
				n += int64(sh.disk.Stats().Segments)
			}
			return n
		})
		s.reg.GaugeFunc("store_bytes", func() int64 {
			var n int64
			for _, sh := range s.shards {
				n += sh.disk.Stats().DiskBytes
			}
			return n
		})
		if s.coldAfter > 0 {
			s.startSweeper()
		}
	}
	s.router = newLocalRouter(s)
	return s, nil
}

// recoverFromDisk rebuilds the in-memory shard maps from the segment
// stores: every stored database becomes a cold stub (stats, saved-set
// metadata and tenant accounting live; content loads lazily on first
// touch). A database whose ring owner changed — the shard count differs
// from the previous run — is migrated to its owning shard's store first, so
// routing and storage always agree.
func (s *Server) recoverFromDisk() error {
	for _, src := range s.shards {
		for _, m := range src.disk.List() {
			if own := s.shardFor(m.ID); own != src {
				if err := migrateDB(src.disk, own.disk, m); err != nil {
					return fmt.Errorf("re-homing %q: %w", m.ID, err)
				}
			}
		}
	}
	now := time.Now()
	for _, sh := range s.shards {
		for _, m := range sh.disk.List() {
			e := &entry{
				id:    m.ID,
				owner: m.Tenant,
				stats: dataset.Stats{NumTx: m.NumTx, NumItems: m.NumItems, AvgLen: m.AvgLen},
				sets:  map[string]*savedSet{},
				// A freshly recovered stub starts the cold clock now; it
				// only hydrates when something touches it.
				lastTouch: now,
			}
			var bytes int64
			for _, sm := range m.Sets {
				b := memlimit.EstimatePatternBytesFromCounts(sm.Patterns, sm.Items)
				e.sets[sm.Name] = &savedSet{count: sm.Patterns, minCount: sm.MinCount,
					bytes: b, saved: sm.Saved}
				bytes += b
			}
			sh.dbs[m.ID] = e
			s.gov.Restore(m.Tenant, 1, bytes)
		}
	}
	return nil
}

// migrateDB moves one database's durable state between shard stores when a
// shard-count change re-homed its id.
func migrateDB(src, dst *store.Store, m store.DBMeta) error {
	db, err := src.LoadDB(m.ID)
	if err != nil {
		return err
	}
	if err := dst.PutDB(m.ID, m.Tenant, db); err != nil {
		return err
	}
	sets, err := src.LoadSets(m.ID)
	if err != nil {
		return err
	}
	for _, set := range sets {
		if err := dst.PutSet(m.ID, set.Name, set.MinCount, set.Saved, set.Patterns); err != nil {
			return err
		}
	}
	rungs, err := src.LoadRungs(m.ID)
	if err != nil {
		return err
	}
	for _, r := range rungs {
		if err := dst.PutRung(m.ID, r.MinCount, r.Patterns); err != nil {
			return err
		}
	}
	return src.DeleteDB(m.ID)
}

func (s *Server) closeStores() {
	for _, sh := range s.shards {
		if sh.disk != nil {
			sh.disk.Close()
		}
	}
}

// Close stops the persistence tickers and closes the shard stores. Durable
// servers should be Closed after Shutdown; for in-memory servers it is a
// no-op.
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		if s.sweepStop != nil {
			close(s.sweepStop)
			<-s.sweepDone
		}
		s.closeStores()
	})
	return nil
}

// startSweeper runs the cold-tenant spill loop: databases untouched for
// coldAfter drop their resident content (the segment store already holds
// it — every mutation is written through) and rehydrate on first touch.
func (s *Server) startSweeper() {
	s.sweepStop, s.sweepDone = make(chan struct{}), make(chan struct{})
	interval := s.coldAfter / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	go func() {
		defer close(s.sweepDone)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-s.sweepStop:
				return
			case <-t.C:
				s.sweepCold()
			}
		}
	}()
}

func (s *Server) sweepCold() {
	cutoff := time.Now().Add(-s.coldAfter)
	for _, sh := range s.shards {
		sh.mu.RLock()
		entries := make([]*entry, 0, len(sh.dbs))
		for _, e := range sh.dbs {
			entries = append(entries, e)
		}
		sh.mu.RUnlock()
		for _, e := range entries {
			sh.spillIfCold(e, cutoff)
		}
	}
}

// spillIfCold demotes one entry to its on-disk stub when it has gone cold:
// the database and pattern memory are dropped and its memory-lattice ladder
// invalidated (disk keeps a superset — stats, sets and rungs all rehydrate
// on first touch). Pinned entries (a mine in flight) are never spilled.
func (sh *engineShard) spillIfCold(e *entry, cutoff time.Time) {
	e.mu.Lock()
	if !e.resident || e.deleted || e.pins > 0 || e.lastTouch.After(cutoff) {
		e.mu.Unlock()
		return
	}
	old := e.db
	e.db = nil
	e.resident = false
	for _, set := range e.sets {
		set.patterns = nil
	}
	e.mu.Unlock()
	if sh.store != nil && old != nil {
		sh.store.Invalidate(old)
	}
	sh.srv.met.storeEvictions.Inc()
}

// hydrate loads a cold stub's content back from the shard's segment store.
// Caller must not hold e.mu.
func (sh *engineShard) hydrate(e *entry) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return sh.hydrateLocked(e)
}

// hydrateLocked is hydrate under e.mu: a no-op for resident entries, an
// error for deleted ones. Saved sets keep their stub structs (and their
// already-accounted quota bytes — the stub estimate and the loaded estimate
// share one formula); the persisted lattice ladder is re-installed into the
// shard's memory store under the fresh *dataset.DB identity.
func (sh *engineShard) hydrateLocked(e *entry) error {
	if e.deleted {
		return fmt.Errorf("no database %q", e.id)
	}
	if e.resident || sh.disk == nil {
		// Without a disk there is nothing to hydrate from — and nothing can
		// have been spilled.
		return nil
	}
	db, err := sh.disk.LoadDB(e.id)
	if err != nil {
		return err
	}
	sets, err := sh.disk.LoadSets(e.id)
	if err != nil {
		return err
	}
	rungs, err := sh.disk.LoadRungs(e.id)
	if err != nil {
		return err
	}
	e.db = db
	e.stats = db.Stats()
	for _, set := range sets {
		if cur, ok := e.sets[set.Name]; ok {
			cur.patterns = set.Patterns
			cur.count = len(set.Patterns)
		} else {
			e.sets[set.Name] = &savedSet{patterns: set.Patterns, count: len(set.Patterns),
				minCount: set.MinCount, bytes: memlimit.EstimatePatternBytes(set.Patterns),
				saved: set.Saved}
		}
	}
	e.resident = true
	if sh.store != nil {
		cache := sh.store.Cache(db)
		for _, r := range rungs {
			cache.Install(r.MinCount, r.Patterns)
		}
	}
	sh.srv.met.storeRehydrations.Inc()
	return nil
}

// ceilDiv is ⌈a/b⌉ with a floor of 1.
func ceilDiv(a, b int) int {
	n := (a + b - 1) / b
	if n < 1 {
		n = 1
	}
	return n
}

// effectiveMineWorkers reports the goroutine count the mining phase will
// use: serial mining is one worker, n < 0 resolves to GOMAXPROCS.
func effectiveMineWorkers(n int) int {
	switch {
	case n == 0:
		return 1
	case n < 0:
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Registry returns the server's metrics registry.
func (s *Server) Registry() *metrics.Registry { return s.reg }

// ShardFor returns the shard index owning the database id — exposed so
// operators and tests can verify placement.
func (s *Server) ShardFor(id string) int { return s.ring.Owner(id) }

// Shutdown drains every shard's async job queue (bounded by ctx) and
// releases the worker pools. The HTTP listener is the caller's to stop.
func (s *Server) Shutdown(ctx context.Context) error {
	errs := make([]error, len(s.shards))
	var wg sync.WaitGroup
	for i, sh := range s.shards {
		wg.Add(1)
		go func(i int, sh *engineShard) {
			defer wg.Done()
			errs[i] = sh.jobs.Shutdown(ctx)
		}(i, sh)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// route is one registered endpoint. The table drives both Handler and
// Routes, so the documented surface cannot drift from the served one.
type route struct {
	pattern string
	handler http.HandlerFunc
}

// Routes lists every registered "METHOD /pattern" in registration order.
// README's endpoint table must match it verbatim — a drift test enforces
// this, like the algorithm table's.
func (s *Server) Routes() []string { return s.router.Routes() }

// Handler returns the HTTP handler: the router over this server's engine
// shards — or, for a shard process (WithShardIndex), the shard's own
// surface directly, with no routing layer to traverse: placement already
// happened in the router process that forwarded here.
func (s *Server) Handler() http.Handler {
	if s.shardIndex >= 0 {
		return s.shards[0].handler()
	}
	return s.router.Handler()
}

// serverMetrics bundles the service's named metrics.
type serverMetrics struct {
	reg       *metrics.Registry
	total     *metrics.Counter
	errored   *metrics.Counter
	cancelled *metrics.Counter
	latency   *metrics.Histogram
	ratio     *metrics.Histogram
	inFlight  *metrics.Gauge

	// compressSecs times phase one (compression) of recycled mines;
	// compressWorkers reports the configured shard count of that phase.
	compressSecs    *metrics.Histogram
	compressWorkers *metrics.Gauge
	// mineWorkers reports the effective mining-phase goroutine count
	// (1 when mining serially).
	mineWorkers *metrics.Gauge
	submitted   *metrics.Counter
	rejected    *metrics.Counter
	killed      *metrics.Counter

	// shardCount reports the engine shard count; tenantRejected counts
	// admission-control 429s (per-resource splits ride under
	// tenant_rejected.<resource>).
	shardCount     *metrics.Gauge
	tenantRejected *metrics.Counter

	// storeRehydrations counts cold stubs loaded back from the segment
	// stores; storeEvictions counts databases the cold sweeper spilled.
	// (store_segments/store_bytes are gauges registered only with a data
	// dir, since they read the live stores.)
	storeRehydrations *metrics.Counter
	storeEvictions    *metrics.Counter
}

func newServerMetrics(reg *metrics.Registry) *serverMetrics {
	return &serverMetrics{
		reg:       reg,
		total:     reg.Counter("mine.requests.total"),
		errored:   reg.Counter("mine.requests.errors"),
		cancelled: reg.Counter("mine.requests.cancelled"),
		latency:   reg.Histogram("mine.latency_ms", metrics.DefaultLatencyBounds),
		ratio:     reg.Histogram("mine.compression_ratio", metrics.DefaultRatioBounds),
		inFlight:  reg.Gauge("mine.in_flight"),

		compressSecs:    reg.Histogram("compress_duration_seconds", metrics.DefaultSecondsBounds),
		compressWorkers: reg.Gauge("compress_workers"),
		mineWorkers:     reg.Gauge("mine_workers"),
		submitted:       reg.Counter("jobs.submitted"),
		rejected:        reg.Counter("jobs.rejected"),
		killed:          reg.Counter("jobs.cancelled"),

		shardCount:     reg.Gauge("shard_count"),
		tenantRejected: reg.Counter("tenant_rejected_total"),

		storeRehydrations: reg.Counter("store_rehydrations"),
		storeEvictions:    reg.Counter("store_evictions"),
	}
}

// observe records one finished mining run. algo is the canonical registry
// name the pipeline reports (engine.Run.Algo), so the mine.algo.<algo>
// counter and the mine_duration_seconds.<algo> histogram fed by OnPhaseEnd
// always share a name.
func (m *serverMetrics) observe(source mining.Source, algo string, elapsed time.Duration) {
	m.total.Inc()
	m.reg.Counter("mine.source." + string(source)).Inc()
	m.reg.Counter("mine.algo." + algo).Inc()
	m.latency.Observe(float64(elapsed.Microseconds()) / 1000)
}

// observeQuotaRejection counts one admission-control rejection.
func (m *serverMetrics) observeQuotaRejection(resource string) {
	m.tenantRejected.Inc()
	m.reg.Counter("tenant_rejected." + resource).Inc()
}

// OnPhaseStart implements engine.PhaseObserver.
func (m *serverMetrics) OnPhaseStart(engine.Phase, string) {}

// OnPhaseEnd implements engine.PhaseObserver: the compression phase feeds
// the global compress histogram, the mining and filter phases the
// per-algorithm duration histogram under the canonical registry name.
func (m *serverMetrics) OnPhaseEnd(phase engine.Phase, algo string, elapsed time.Duration) {
	switch phase {
	case engine.PhaseCompress:
		m.compressSecs.Observe(elapsed.Seconds())
	case engine.PhaseMine, engine.PhaseFilter:
		m.reg.Histogram("mine_duration_seconds."+algo, metrics.DefaultSecondsBounds).
			Observe(elapsed.Seconds())
	}
}

// OnCacheEvent implements engine.CacheObserver: every lattice event counts
// under its own name (cache_hit, cache_relax, cache_miss, cache_install,
// cache_evict; the evict counter advances by the number of rungs evicted).
func (m *serverMetrics) OnCacheEvent(event engine.CacheEvent, n int) {
	if n > 0 {
		m.reg.Counter(string(event)).Add(int64(n))
	}
}

// DBInfo describes one database in list/stats responses.
type DBInfo struct {
	ID       string  `json:"id"`
	Tuples   int     `json:"tuples"`
	AvgLen   float64 `json:"avg_len"`
	NumItems int     `json:"num_items"`
	Sets     int     `json:"saved_sets"`
}

// ShardInfo describes one engine shard in GET /shards responses.
type ShardInfo struct {
	Shard        int   `json:"shard"`
	DBs          int   `json:"dbs"`
	QueueDepth   int   `json:"queue_depth"`
	Running      int   `json:"running"`
	LatticeRungs int   `json:"lattice_rungs,omitempty"`
	LatticeBytes int64 `json:"lattice_bytes,omitempty"`
	// StoreSegments/StoreBytes describe the shard's durable segment store;
	// present only when the server runs with a data dir.
	StoreSegments int   `json:"store_segments,omitempty"`
	StoreBytes    int64 `json:"store_bytes,omitempty"`
	// Unhealthy marks an ejected or unreachable shard in a multi-process
	// router's listing; its occupancy fields are unknown (zero). Omitted —
	// not false — for healthy shards, keeping single-process output
	// unchanged.
	Unhealthy bool `json:"unhealthy,omitempty"`
}

// MineRequest is the body of POST /db/{id}/mine.
type MineRequest struct {
	// MinSupport is a fraction of the database (exclusive with MinCount).
	MinSupport float64 `json:"min_support,omitempty"`
	// MinCount is an absolute support threshold.
	MinCount int `json:"min_count,omitempty"`
	// Use selects the input knowledge: "auto" (default — filter or recycle
	// the best saved set), "fresh" (ignore saved sets), or the name of a
	// specific saved set to recycle.
	Use string `json:"use,omitempty"`
	// SaveAs stores the result under this name for later requests.
	SaveAs string `json:"save_as,omitempty"`
	// Limit caps the patterns echoed in the response (0 = none echoed;
	// the count is always reported).
	Limit int `json:"limit,omitempty"`
}

// MinePattern is one echoed pattern.
type MinePattern struct {
	Items   []dataset.Item `json:"items"`
	Support int            `json:"support"`
}

// MineResponse is the result of one mining round — the wire projection of
// mining.Result, shared with the session layer's Result.
type MineResponse struct {
	Count    int           `json:"count"`
	MinCount int           `json:"min_count"`
	Source   mining.Source `json:"source"` // fresh | filtered | recycled
	BasedOn  string        `json:"based_on,omitempty"`
	// Cache reports how the threshold lattice served the round: "hit"
	// (pure filter of a rung), "relax" (rung-seeded recycling) or "miss".
	// Omitted only when the lattice is disabled.
	Cache     string  `json:"cache,omitempty"`
	ElapsedMS float64 `json:"elapsed_ms"`
	SavedAs   string  `json:"saved_as,omitempty"`
	// SaveSkipped is set when save_as was requested but the database was
	// replaced while mining ran, so the stale result was not saved.
	SaveSkipped bool          `json:"save_skipped,omitempty"`
	Patterns    []MinePattern `json:"patterns,omitempty"`
}

// apiError is the structured error body. Code is machine-readable:
// "deadline" and "cancelled" accompany 503, "queue_full" and "tenant_quota"
// 429 (quota rejections also name the exhausted Resource and the Tenant, and
// carry a Retry-After response header).
type apiError struct {
	Error    string `json:"error"`
	Code     string `json:"code,omitempty"`
	Tenant   string `json:"tenant,omitempty"`
	Resource string `json:"resource,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func fail(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, apiError{Error: fmt.Sprintf(format, args...)})
}

func failCode(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeJSON(w, status, apiError{Error: fmt.Sprintf(format, args...), Code: code})
}

// failQuota maps an admission rejection onto the 429 contract: code
// "tenant_quota", the exhausted resource in the body, and the governor's
// backoff hint as a Retry-After header (whole seconds, rounded up).
func (s *Server) failQuota(w http.ResponseWriter, qe *shard.QuotaError) {
	s.met.observeQuotaRejection(qe.Resource)
	secs := int64(qe.RetryAfter / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	writeJSON(w, http.StatusTooManyRequests, apiError{
		Error: qe.Error(), Code: "tenant_quota", Tenant: qe.Tenant, Resource: qe.Resource})
}

// tenantOf extracts the request's tenant id; the empty header is
// DefaultTenant, an invalid one is rejected like a bad database id.
func tenantOf(r *http.Request) (string, error) {
	t := r.Header.Get(TenantHeader)
	if t == "" {
		return DefaultTenant, nil
	}
	if !validName(t) {
		return "", fmt.Errorf("bad %s %q", TenantHeader, t)
	}
	return t, nil
}

// shardFor returns the engine shard owning the database id.
func (s *Server) shardFor(id string) *engineShard { return s.shards[s.ring.Owner(id)] }

func info(id string, e *entry) DBInfo {
	e.mu.Lock()
	defer e.mu.Unlock()
	return DBInfo{ID: id, Tuples: e.stats.NumTx, AvgLen: e.stats.AvgLen,
		NumItems: e.stats.NumItems, Sets: len(e.sets)}
}

// setBytes sums the metered footprint of every saved set; caller holds e.mu.
func setBytes(sets map[string]*savedSet) int64 {
	var n int64
	for _, set := range sets {
		n += set.bytes
	}
	return n
}

// LatticeInfo is the response of GET /db/{id}/lattice: the database's
// cached threshold ladder plus its shard's store budget accounting.
type LatticeInfo struct {
	ID      string `json:"id"`
	Enabled bool   `json:"enabled"`
	// Shard is the engine shard owning the database (and the store below).
	Shard int `json:"shard"`
	// BudgetBytes and StoreBytes describe the owning shard's store slice;
	// Rungs lists only this database's ladder.
	BudgetBytes int64              `json:"budget_bytes,omitempty"`
	StoreBytes  int64              `json:"store_bytes,omitempty"`
	Rungs       []lattice.RungInfo `json:"rungs"`
}

// failMine maps a mining error to its status: cancellations and deadline
// expiries are 503 (the service shed the request), anything else 400.
func (s *Server) failMine(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		failCode(w, http.StatusServiceUnavailable, "deadline", "mining aborted: %v", err)
	case errors.Is(err, context.Canceled):
		failCode(w, http.StatusServiceUnavailable, "cancelled", "mining aborted: %v", err)
	default:
		fail(w, http.StatusBadRequest, "%v", err)
	}
}

// minePlan is the input snapshot one mining run works from, taken under the
// entry lock so the run itself holds no locks.
type minePlan struct {
	db      *dataset.DB
	version int64
	owner   string
	// prior is the saved set the run reuses; nil mines fresh.
	prior *engine.Prior
	// forceRecycle skips the pipeline's tighten-vs-relax decision: an
	// explicitly named saved set is always recycled.
	forceRecycle bool
}

// plan snapshots everything the run needs under the entry lock. The
// fresh/filtered/recycled decision itself belongs to the engine pipeline;
// plan only selects which saved set (if any) to hand it. A successful plan
// pins the entry — the cold sweeper must not spill the database out from
// under the run — so callers must unpin when the run finishes.
func (sh *engineShard) plan(e *entry, req MineRequest) (minePlan, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := sh.hydrateLocked(e); err != nil {
		return minePlan{}, err
	}
	e.lastTouch = time.Now()
	p := minePlan{db: e.db, version: e.version, owner: e.owner}
	switch use := req.Use; {
	case use == "fresh":

	case use == "" || use == "auto":
		if name, set := bestSet(e.sets); set != nil {
			p.prior = &engine.Prior{Patterns: set.patterns, MinCount: set.minCount, Label: name}
		}

	default:
		set, ok := e.sets[use]
		if !ok {
			return p, fmt.Errorf("no saved pattern set %q", use)
		}
		p.prior = &engine.Prior{Patterns: set.patterns, MinCount: set.minCount, Label: use}
		p.forceRecycle = true
	}
	e.pins++
	return p, nil
}

// unpin releases one mining pin taken by plan.
func (e *entry) unpin() {
	e.mu.Lock()
	e.pins--
	e.mu.Unlock()
}

// mine runs one round on this shard: snapshot inputs under the entry lock,
// mine unlocked under ctx (plus the configured per-request deadline), then
// re-acquire the lock to save. Concurrent saves are last-writer-wins; a save
// against a database replaced mid-run is skipped (version check) so stale
// patterns never shadow fresh data.
func (sh *engineShard) mine(ctx context.Context, e *entry, req MineRequest, min int) (*MineResponse, error) {
	s := sh.srv
	if s.mineTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.mineTimeout)
		defer cancel()
	}
	p, err := sh.plan(e, req)
	if err != nil {
		return nil, err
	}
	defer e.unpin()
	if s.mineHook != nil {
		s.mineHook()
	}

	s.met.inFlight.Add(1)
	defer s.met.inFlight.Add(-1)
	var cache *lattice.Cache
	if sh.store != nil {
		cache = sh.store.Cache(p.db)
	}
	pipe := sh.pipe
	var run engine.Run
	switch {
	case req.Use == "fresh":
		// An explicit fresh mine bypasses every reuse path, lattice included.
		run, err = pipe.Mine(ctx, p.db, min, nil)
	case p.forceRecycle:
		run, err = pipe.MineRecycling(ctx, p.db, p.prior.Patterns, min, nil)
		run.BasedOn = p.prior.Label
	default:
		// The lattice serves the round; the best saved set rides along as
		// the fallback seed for a cold ladder.
		pipe.Cache = cache
		run, err = pipe.Serve(ctx, p.db, p.prior, min, nil)
	}
	if err != nil {
		return nil, s.mineFailed(err)
	}
	if cache != nil && run.Cache == "" {
		// Bypass paths did not consult the ladder, but their complete result
		// is still worth materializing for later requests.
		if installed, evicted := cache.Install(min, run.Patterns); installed {
			s.met.OnCacheEvent(engine.CacheInstall, 1)
			s.met.OnCacheEvent(engine.CacheEvict, evicted)
			run.Installed = &engine.InstalledRung{MinCount: min, Patterns: run.Patterns}
		}
		run.Cache = string(lattice.Miss)
	}
	if run.CompressStats != nil {
		s.met.ratio.Observe(run.CompressStats.Ratio)
	}
	s.met.observe(run.Source, run.Algo, run.Elapsed)

	patterns := run.Patterns
	res := run.Result
	resp := &MineResponse{
		Count:     len(res.Patterns),
		MinCount:  res.MinCount,
		Source:    res.Source,
		BasedOn:   res.BasedOn,
		Cache:     res.Cache,
		ElapsedMS: float64(res.Elapsed.Microseconds()) / 1000,
	}

	var persistErr error
	if req.SaveAs != "" || (sh.disk != nil && run.Installed != nil) {
		bytes := memlimit.EstimatePatternBytes(patterns)
		e.mu.Lock()
		// One freshness gate for everything the run wants to persist: the
		// database must be the exact one the run mined (version check) and
		// still alive (a concurrent DELETE already settled the owner's quota,
		// so charging after it would leak bytes forever — the exactly-once
		// rule is: quota moves happen under e.mu, gated on !deleted).
		current := e.version == p.version && !e.deleted
		if current && sh.disk != nil && run.Installed != nil {
			persistErr = sh.disk.PutRung(e.id, run.Installed.MinCount, run.Installed.Patterns)
		}
		if req.SaveAs != "" {
			if current {
				delta := bytes
				if old, ok := e.sets[req.SaveAs]; ok {
					delta -= old.bytes
				}
				now := time.Now()
				e.sets[req.SaveAs] = &savedSet{patterns: patterns, count: len(patterns),
					minCount: min, bytes: bytes, saved: now}
				resp.SavedAs = req.SaveAs
				s.gov.AddPatternBytes(e.owner, delta)
				if sh.disk != nil && persistErr == nil {
					persistErr = sh.disk.PutSet(e.id, req.SaveAs, min, now, patterns)
				}
			} else {
				resp.SaveSkipped = true
			}
		}
		e.mu.Unlock()
	}
	if persistErr != nil {
		// The save is in memory but not durably acknowledged; surface the
		// uncertainty rather than promising durability the disk refused.
		return nil, fmt.Errorf("persist: %w", persistErr)
	}

	if req.Limit > 0 {
		n := req.Limit
		if n > len(patterns) {
			n = len(patterns)
		}
		resp.Patterns = make([]MinePattern, n)
		for i := 0; i < n; i++ {
			resp.Patterns[i] = MinePattern{Items: patterns[i].Items, Support: patterns[i].Support}
		}
	}
	return resp, nil
}

// mineFailed records an aborted or failed run in the metrics.
func (s *Server) mineFailed(err error) error {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		s.met.cancelled.Inc()
	} else {
		s.met.errored.Inc()
	}
	return err
}

// bestSet picks the saved set with the most patterns (the most recyclable
// knowledge); caller holds e.mu.
func bestSet(sets map[string]*savedSet) (string, *savedSet) {
	bestName, best := "", (*savedSet)(nil)
	for name, s := range sets {
		if best == nil || len(s.patterns) > len(best.patterns) ||
			(len(s.patterns) == len(best.patterns) && name < bestName) {
			bestName, best = name, s
		}
	}
	return bestName, best
}

// SetInfo describes one saved pattern set.
type SetInfo struct {
	Name     string    `json:"name"`
	Count    int       `json:"count"`
	MinCount int       `json:"min_count"`
	Saved    time.Time `json:"saved"`
}

// validName restricts ids to path-safe tokens.
func validName(s string) bool {
	if s == "" || len(s) > 64 {
		return false
	}
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
		default:
			return false
		}
	}
	return !strings.HasPrefix(s, ".")
}
