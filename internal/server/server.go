// Package server exposes the recycling miner as a small multi-user HTTP
// service — the setting the paper motivates in Section 2: "when there are
// many users in a data mining system, the frequent patterns discovered by
// one user also provide opportunity for the others to recycle."
//
// Databases are uploaded in basket format; every mining request can save its
// result under a name, and later requests (from any user) reuse saved sets
// automatically: a saved set mined at a threshold at or below the request's
// is filtered, anything else is recycled through compression. JSON in and
// out, stdlib only.
//
//	PUT    /db/{id}                 upload basket data (numeric ids)
//	GET    /db                      list databases
//	GET    /db/{id}                 database stats
//	DELETE /db/{id}                 drop a database
//	POST   /db/{id}/mine            run one mining round (see MineRequest)
//	GET    /db/{id}/patterns        list saved pattern sets
//	GET    /db/{id}/patterns/{name} fetch one saved set
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"gogreen/internal/core"
	"gogreen/internal/dataset"
	"gogreen/internal/hmine"
	"gogreen/internal/mining"
	"gogreen/internal/rphmine"
)

// Server is the service state. Safe for concurrent use.
type Server struct {
	mu      sync.RWMutex
	dbs     map[string]*entry
	maxBody int64
}

// entry is one uploaded database and its saved pattern sets.
type entry struct {
	mu    sync.Mutex
	db    *dataset.DB
	stats dataset.Stats
	sets  map[string]*savedSet
}

type savedSet struct {
	patterns []mining.Pattern
	minCount int
	saved    time.Time
}

// Option configures a Server.
type Option func(*Server)

// WithMaxBodyBytes bounds upload sizes (default 64 MiB).
func WithMaxBodyBytes(n int64) Option { return func(s *Server) { s.maxBody = n } }

// New returns an empty server.
func New(opts ...Option) *Server {
	s := &Server{dbs: map[string]*entry{}, maxBody: 64 << 20}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Handler returns the HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /db", s.handleList)
	mux.HandleFunc("PUT /db/{id}", s.handlePut)
	mux.HandleFunc("GET /db/{id}", s.handleStats)
	mux.HandleFunc("DELETE /db/{id}", s.handleDelete)
	mux.HandleFunc("POST /db/{id}/mine", s.handleMine)
	mux.HandleFunc("GET /db/{id}/patterns", s.handlePatternList)
	mux.HandleFunc("GET /db/{id}/patterns/{name}", s.handlePatternGet)
	return mux
}

// DBInfo describes one database in list/stats responses.
type DBInfo struct {
	ID       string  `json:"id"`
	Tuples   int     `json:"tuples"`
	AvgLen   float64 `json:"avg_len"`
	NumItems int     `json:"num_items"`
	Sets     int     `json:"saved_sets"`
}

// MineRequest is the body of POST /db/{id}/mine.
type MineRequest struct {
	// MinSupport is a fraction of the database (exclusive with MinCount).
	MinSupport float64 `json:"min_support,omitempty"`
	// MinCount is an absolute support threshold.
	MinCount int `json:"min_count,omitempty"`
	// Use selects the input knowledge: "auto" (default — filter or recycle
	// the best saved set), "fresh" (ignore saved sets), or the name of a
	// specific saved set to recycle.
	Use string `json:"use,omitempty"`
	// SaveAs stores the result under this name for later requests.
	SaveAs string `json:"save_as,omitempty"`
	// Limit caps the patterns echoed in the response (0 = none echoed;
	// the count is always reported).
	Limit int `json:"limit,omitempty"`
}

// MinePattern is one echoed pattern.
type MinePattern struct {
	Items   []dataset.Item `json:"items"`
	Support int            `json:"support"`
}

// MineResponse is the result of one mining round.
type MineResponse struct {
	Count     int           `json:"count"`
	MinCount  int           `json:"min_count"`
	Source    string        `json:"source"` // fresh | filtered | recycled
	Based     string        `json:"based_on,omitempty"`
	ElapsedMS float64       `json:"elapsed_ms"`
	SavedAs   string        `json:"saved_as,omitempty"`
	Patterns  []MinePattern `json:"patterns,omitempty"`
}

type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func fail(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, apiError{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) get(id string) (*entry, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.dbs[id]
	return e, ok
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	infos := make([]DBInfo, 0, len(s.dbs))
	for id, e := range s.dbs {
		infos = append(infos, s.info(id, e))
	}
	s.mu.RUnlock()
	sort.Slice(infos, func(i, j int) bool { return infos[i].ID < infos[j].ID })
	writeJSON(w, http.StatusOK, infos)
}

func (s *Server) info(id string, e *entry) DBInfo {
	e.mu.Lock()
	defer e.mu.Unlock()
	return DBInfo{ID: id, Tuples: e.stats.NumTx, AvgLen: e.stats.AvgLen,
		NumItems: e.stats.NumItems, Sets: len(e.sets)}
}

func (s *Server) handlePut(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !validName(id) {
		fail(w, http.StatusBadRequest, "bad database id %q", id)
		return
	}
	db, err := dataset.ReadBasketIDs(http.MaxBytesReader(w, r.Body, s.maxBody))
	if err != nil {
		status := http.StatusBadRequest
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			status = http.StatusRequestEntityTooLarge
		}
		fail(w, status, "parse: %v", err)
		return
	}
	if db.Len() == 0 {
		fail(w, http.StatusBadRequest, "empty database")
		return
	}
	e := &entry{db: db, stats: db.Stats(), sets: map[string]*savedSet{}}
	s.mu.Lock()
	_, existed := s.dbs[id]
	s.dbs[id] = e
	s.mu.Unlock()
	status := http.StatusCreated
	if existed {
		status = http.StatusOK
	}
	writeJSON(w, status, s.info(id, e))
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	e, ok := s.get(id)
	if !ok {
		fail(w, http.StatusNotFound, "no database %q", id)
		return
	}
	writeJSON(w, http.StatusOK, s.info(id, e))
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	_, ok := s.dbs[id]
	delete(s.dbs, id)
	s.mu.Unlock()
	if !ok {
		fail(w, http.StatusNotFound, "no database %q", id)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleMine(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	e, ok := s.get(id)
	if !ok {
		fail(w, http.StatusNotFound, "no database %q", id)
		return
	}
	var req MineRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		fail(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	min := req.MinCount
	if min == 0 && req.MinSupport > 0 {
		if req.MinSupport >= 1 {
			fail(w, http.StatusBadRequest, "min_support must be a fraction below 1")
			return
		}
		min = mining.MinCount(e.stats.NumTx, req.MinSupport)
	}
	if min < 1 {
		fail(w, http.StatusBadRequest, "need min_count >= 1 or min_support in (0,1)")
		return
	}
	if req.SaveAs != "" && !validName(req.SaveAs) {
		fail(w, http.StatusBadRequest, "bad save_as name %q", req.SaveAs)
		return
	}

	e.mu.Lock()
	defer e.mu.Unlock()
	resp, err := mineLocked(e, req, min)
	if err != nil {
		fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// mineLocked runs one round; caller holds e.mu.
func mineLocked(e *entry, req MineRequest, min int) (*MineResponse, error) {
	start := time.Now()
	resp := &MineResponse{MinCount: min}

	var patterns []mining.Pattern
	switch use := req.Use; {
	case use == "fresh":
		var col mining.Collector
		if err := hmine.New().Mine(e.db, min, &col); err != nil {
			return nil, err
		}
		patterns = col.Patterns
		resp.Source = "fresh"

	case use == "" || use == "auto":
		if name, set := bestSet(e.sets); set != nil {
			if set.minCount <= min {
				patterns = core.FilterTightened(set.patterns, min)
				resp.Source = "filtered"
			} else {
				var err error
				patterns, err = recycle(e.db, set.patterns, min)
				if err != nil {
					return nil, err
				}
				resp.Source = "recycled"
			}
			resp.Based = name
		} else {
			var col mining.Collector
			if err := hmine.New().Mine(e.db, min, &col); err != nil {
				return nil, err
			}
			patterns = col.Patterns
			resp.Source = "fresh"
		}

	default:
		set, ok := e.sets[use]
		if !ok {
			return nil, fmt.Errorf("no saved pattern set %q", use)
		}
		var err error
		patterns, err = recycle(e.db, set.patterns, min)
		if err != nil {
			return nil, err
		}
		resp.Source = "recycled"
		resp.Based = use
	}

	resp.Count = len(patterns)
	resp.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
	if req.SaveAs != "" {
		e.sets[req.SaveAs] = &savedSet{patterns: patterns, minCount: min, saved: time.Now()}
		resp.SavedAs = req.SaveAs
	}
	if req.Limit > 0 {
		n := req.Limit
		if n > len(patterns) {
			n = len(patterns)
		}
		resp.Patterns = make([]MinePattern, n)
		for i := 0; i < n; i++ {
			resp.Patterns[i] = MinePattern{Items: patterns[i].Items, Support: patterns[i].Support}
		}
	}
	return resp, nil
}

// recycle compresses with fp and mines with the Recycle-HM engine.
func recycle(db *dataset.DB, fp []mining.Pattern, min int) ([]mining.Pattern, error) {
	rec := &core.Recycler{FP: fp, Strategy: core.MCP, Engine: rphmine.New()}
	var col mining.Collector
	if err := rec.Mine(db, min, &col); err != nil {
		return nil, err
	}
	return col.Patterns, nil
}

// bestSet picks the saved set with the most patterns (the most recyclable
// knowledge).
func bestSet(sets map[string]*savedSet) (string, *savedSet) {
	bestName, best := "", (*savedSet)(nil)
	for name, s := range sets {
		if best == nil || len(s.patterns) > len(best.patterns) ||
			(len(s.patterns) == len(best.patterns) && name < bestName) {
			bestName, best = name, s
		}
	}
	return bestName, best
}

// SetInfo describes one saved pattern set.
type SetInfo struct {
	Name     string    `json:"name"`
	Count    int       `json:"count"`
	MinCount int       `json:"min_count"`
	Saved    time.Time `json:"saved"`
}

func (s *Server) handlePatternList(w http.ResponseWriter, r *http.Request) {
	e, ok := s.get(r.PathValue("id"))
	if !ok {
		fail(w, http.StatusNotFound, "no database %q", r.PathValue("id"))
		return
	}
	e.mu.Lock()
	infos := make([]SetInfo, 0, len(e.sets))
	for name, set := range e.sets {
		infos = append(infos, SetInfo{Name: name, Count: len(set.patterns),
			MinCount: set.minCount, Saved: set.saved})
	}
	e.mu.Unlock()
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	writeJSON(w, http.StatusOK, infos)
}

func (s *Server) handlePatternGet(w http.ResponseWriter, r *http.Request) {
	e, ok := s.get(r.PathValue("id"))
	if !ok {
		fail(w, http.StatusNotFound, "no database %q", r.PathValue("id"))
		return
	}
	name := r.PathValue("name")
	e.mu.Lock()
	set, ok := e.sets[name]
	var out []MinePattern
	if ok {
		out = make([]MinePattern, len(set.patterns))
		for i, p := range set.patterns {
			out[i] = MinePattern{Items: p.Items, Support: p.Support}
		}
	}
	e.mu.Unlock()
	if !ok {
		fail(w, http.StatusNotFound, "no saved pattern set %q", name)
		return
	}
	writeJSON(w, http.StatusOK, out)
}

// validName restricts ids to path-safe tokens.
func validName(s string) bool {
	if s == "" || len(s) > 64 {
		return false
	}
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
		default:
			return false
		}
	}
	return !strings.HasPrefix(s, ".")
}
