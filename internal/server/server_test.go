package server_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"gogreen/internal/server"
	"gogreen/internal/testutil"
)

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(server.New().Handler())
	t.Cleanup(ts.Close)
	return ts
}

func do(t *testing.T, method, url string, body string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

// basket renders the paper's example database in basket format.
func basket(t *testing.T) string {
	t.Helper()
	db := testutil.PaperDB()
	var sb strings.Builder
	for _, tx := range db.All() {
		for j, it := range tx {
			if j > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, "%d", it)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

func TestUploadMineRecycleFlow(t *testing.T) {
	ts := newTestServer(t)

	// Upload.
	resp, body := do(t, "PUT", ts.URL+"/db/paper", basket(t))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload: %d %s", resp.StatusCode, body)
	}
	var info server.DBInfo
	json.Unmarshal(body, &info)
	if info.Tuples != 5 {
		t.Fatalf("info = %+v", info)
	}

	// Round 1 at support 3, saved.
	resp, body = do(t, "POST", ts.URL+"/db/paper/mine",
		`{"min_count":3,"save_as":"round1","limit":100}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mine: %d %s", resp.StatusCode, body)
	}
	var r1 server.MineResponse
	json.Unmarshal(body, &r1)
	if r1.Count != 11 || r1.Source != "fresh" || r1.SavedAs != "round1" || r1.Cache != "miss" {
		t.Fatalf("round1 = %+v", r1)
	}
	if len(r1.Patterns) != 11 {
		t.Fatalf("echoed %d patterns", len(r1.Patterns))
	}

	// Round 2 relaxed: the ladder only has rung 3, so this is a lattice
	// relax-mine, seeded by the saved set (same threshold as the rung).
	resp, body = do(t, "POST", ts.URL+"/db/paper/mine", `{"min_count":2}`)
	var r2 server.MineResponse
	json.Unmarshal(body, &r2)
	if resp.StatusCode != http.StatusOK || r2.Source != "recycled" || r2.BasedOn != "round1" || r2.Cache != "relax" {
		t.Fatalf("round2 = %+v (%d)", r2, resp.StatusCode)
	}
	want := len(testutil.Oracle(t, testutil.PaperDB(), 2))
	if r2.Count != want {
		t.Fatalf("round2 count = %d, want %d", r2.Count, want)
	}

	// Round 3 tightened: a pure-filter lattice hit from the nearest rung
	// at or below (round 1's rung at 3).
	resp, body = do(t, "POST", ts.URL+"/db/paper/mine", `{"min_count":4}`)
	var r3 server.MineResponse
	json.Unmarshal(body, &r3)
	if r3.Source != "filtered" || r3.BasedOn != "lattice-3" || r3.Cache != "hit" {
		t.Fatalf("round3 = %+v", r3)
	}
	if r3.Count != len(testutil.Oracle(t, testutil.PaperDB(), 4)) {
		t.Fatalf("round3 count = %d", r3.Count)
	}

	// Explicit recycle source and fresh both bypass the ladder.
	resp, body = do(t, "POST", ts.URL+"/db/paper/mine", `{"min_count":1,"use":"round1"}`)
	var r4 server.MineResponse
	json.Unmarshal(body, &r4)
	if r4.Source != "recycled" || r4.Cache != "miss" || r4.Count != len(testutil.Oracle(t, testutil.PaperDB(), 1)) {
		t.Fatalf("round4 = %+v", r4)
	}
	resp, body = do(t, "POST", ts.URL+"/db/paper/mine", `{"min_count":2,"use":"fresh"}`)
	var r5 server.MineResponse
	json.Unmarshal(body, &r5)
	if r5.Source != "fresh" || r5.Cache != "miss" || r5.Count != want {
		t.Fatalf("round5 = %+v", r5)
	}
}

func TestMinSupportFraction(t *testing.T) {
	ts := newTestServer(t)
	do(t, "PUT", ts.URL+"/db/d", basket(t))
	resp, body := do(t, "POST", ts.URL+"/db/d/mine", `{"min_support":0.6}`)
	var r server.MineResponse
	json.Unmarshal(body, &r)
	if resp.StatusCode != http.StatusOK || r.MinCount != 3 {
		t.Fatalf("min_support 0.6 on 5 tuples → %+v", r)
	}
}

func TestPatternEndpoints(t *testing.T) {
	ts := newTestServer(t)
	do(t, "PUT", ts.URL+"/db/d", basket(t))
	do(t, "POST", ts.URL+"/db/d/mine", `{"min_count":3,"save_as":"a"}`)
	do(t, "POST", ts.URL+"/db/d/mine", `{"min_count":2,"save_as":"b"}`)

	resp, body := do(t, "GET", ts.URL+"/db/d/patterns", "")
	var infos []server.SetInfo
	json.Unmarshal(body, &infos)
	if resp.StatusCode != http.StatusOK || len(infos) != 2 || infos[0].Name != "a" {
		t.Fatalf("pattern list = %s", body)
	}

	resp, body = do(t, "GET", ts.URL+"/db/d/patterns/a", "")
	var ps []server.MinePattern
	json.Unmarshal(body, &ps)
	if resp.StatusCode != http.StatusOK || len(ps) != 11 {
		t.Fatalf("set a = %s", body)
	}

	resp, _ = do(t, "GET", ts.URL+"/db/d/patterns/zzz", "")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing set: %d", resp.StatusCode)
	}
}

func TestListAndDelete(t *testing.T) {
	ts := newTestServer(t)
	do(t, "PUT", ts.URL+"/db/one", basket(t))
	do(t, "PUT", ts.URL+"/db/two", basket(t))

	resp, body := do(t, "GET", ts.URL+"/db", "")
	var infos []server.DBInfo
	json.Unmarshal(body, &infos)
	if resp.StatusCode != http.StatusOK || len(infos) != 2 {
		t.Fatalf("list = %s", body)
	}

	resp, _ = do(t, "DELETE", ts.URL+"/db/one", "")
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: %d", resp.StatusCode)
	}
	resp, _ = do(t, "GET", ts.URL+"/db/one", "")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("after delete: %d", resp.StatusCode)
	}
	resp, _ = do(t, "DELETE", ts.URL+"/db/one", "")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("double delete: %d", resp.StatusCode)
	}
}

func TestUploadReplaces(t *testing.T) {
	ts := newTestServer(t)
	resp, _ := do(t, "PUT", ts.URL+"/db/d", basket(t))
	if resp.StatusCode != http.StatusCreated {
		t.Fatal("first upload")
	}
	resp, body := do(t, "PUT", ts.URL+"/db/d", "1 2\n3 4\n")
	var info server.DBInfo
	json.Unmarshal(body, &info)
	if resp.StatusCode != http.StatusOK || info.Tuples != 2 || info.Sets != 0 {
		t.Fatalf("replace = %+v (%d)", info, resp.StatusCode)
	}
}

func TestErrors(t *testing.T) {
	ts := newTestServer(t)
	cases := []struct {
		method, path, body string
		want               int
	}{
		{"PUT", "/db/bad name", "1 2\n", http.StatusBadRequest},
		{"PUT", "/db/..", "1 2\n", http.StatusNotFound}, // path-cleaned by the mux before matching
		{"PUT", "/db/empty", "", http.StatusBadRequest},
		{"PUT", "/db/junk", "1 x\n", http.StatusBadRequest},
		{"GET", "/db/missing", "", http.StatusNotFound},
		{"POST", "/db/missing/mine", `{"min_count":2}`, http.StatusNotFound},
	}
	for _, c := range cases {
		resp, body := do(t, c.method, ts.URL+c.path, c.body)
		if resp.StatusCode != c.want {
			t.Errorf("%s %s: %d (%s), want %d", c.method, c.path, resp.StatusCode, body, c.want)
		}
	}

	do(t, "PUT", ts.URL+"/db/d", basket(t))
	bad := []string{
		`{"min_count":0}`,
		`{"min_support":1.5}`,
		`{not json`,
		`{"min_count":2,"use":"nope"}`,
		`{"min_count":2,"save_as":"bad name"}`,
	}
	for _, b := range bad {
		resp, body := do(t, "POST", ts.URL+"/db/d/mine", b)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("mine %s: %d (%s)", b, resp.StatusCode, body)
		}
	}
}

func TestBodyLimit(t *testing.T) {
	ts := httptest.NewServer(server.New(server.WithMaxBodyBytes(16)).Handler())
	defer ts.Close()
	resp, _ := do(t, "PUT", ts.URL+"/db/d", "1 2 3 4 5 6 7 8 9 10 11 12\n")
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversize upload: %d", resp.StatusCode)
	}
}

// TestConcurrentMining hammers one database with parallel mines while other
// goroutines list databases, read pattern sets, and delete/re-upload a
// second database — the mixed workload the lock redesign must survive
// (run under -race).
func TestConcurrentMining(t *testing.T) {
	ts := newTestServer(t)
	do(t, "PUT", ts.URL+"/db/d", basket(t))
	do(t, "PUT", ts.URL+"/db/churn", basket(t))
	do(t, "POST", ts.URL+"/db/d/mine", `{"min_count":3,"save_as":"seed"}`)

	const miners, readers, churners = 8, 3, 2
	done := make(chan error, miners+readers+churners)
	for g := 0; g < miners; g++ {
		go func(g int) {
			for i := 0; i < 5; i++ {
				body := fmt.Sprintf(`{"min_count":%d,"save_as":"g%d"}`, 1+(g+i)%4, g)
				resp, data := do(t, "POST", ts.URL+"/db/d/mine", body)
				if resp.StatusCode != http.StatusOK {
					done <- fmt.Errorf("miner %d: %d %s", g, resp.StatusCode, data)
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < readers; g++ {
		go func(g int) {
			for i := 0; i < 10; i++ {
				if resp, data := do(t, "GET", ts.URL+"/db", ""); resp.StatusCode != http.StatusOK {
					done <- fmt.Errorf("reader %d list: %d %s", g, resp.StatusCode, data)
					return
				}
				if resp, data := do(t, "GET", ts.URL+"/db/d/patterns", ""); resp.StatusCode != http.StatusOK {
					done <- fmt.Errorf("reader %d patterns: %d %s", g, resp.StatusCode, data)
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < churners; g++ {
		go func(g int) {
			for i := 0; i < 5; i++ {
				// Deletes race with uploads and may 404; both are fine — the
				// point is that nothing deadlocks or corrupts under -race.
				do(t, "DELETE", ts.URL+"/db/churn", "")
				do(t, "PUT", ts.URL+"/db/churn", "1 2\n2 3\n")
				do(t, "POST", ts.URL+"/db/churn/mine", `{"min_count":1}`)
			}
			done <- nil
		}(g)
	}
	for g := 0; g < miners+readers+churners; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
