package server_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"gogreen/internal/metrics"
	"gogreen/internal/server"
)

// TestLatticeServingAndMetrics drives the cache-aware serving loop end to
// end over HTTP: two mines at the same threshold must answer the second on
// the pure-filter path and surface cache_hit in /metrics.
func TestLatticeServingAndMetrics(t *testing.T) {
	srv := server.New()
	defer srv.Shutdown(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	do(t, "PUT", ts.URL+"/db/paper", basket(t))

	var r server.MineResponse
	_, body := do(t, "POST", ts.URL+"/db/paper/mine", `{"min_count":3}`)
	json.Unmarshal(body, &r)
	if r.Cache != "miss" || r.Source != "fresh" {
		t.Fatalf("cold mine = %+v", r)
	}
	_, body = do(t, "POST", ts.URL+"/db/paper/mine", `{"min_count":3}`)
	json.Unmarshal(body, &r)
	if r.Cache != "hit" || r.Source != "filtered" || r.BasedOn != "lattice-3" {
		t.Fatalf("repeat mine = %+v", r)
	}

	resp, body := do(t, "GET", ts.URL+"/metrics", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d", resp.StatusCode)
	}
	var snap metrics.Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("metrics JSON: %v\n%s", err, body)
	}
	if got := snap.Counters["cache_hit"]; got != 1 {
		t.Errorf("cache_hit = %d, want 1", got)
	}
	if got := snap.Counters["cache_miss"]; got != 1 {
		t.Errorf("cache_miss = %d, want 1", got)
	}
	if got := snap.Counters["cache_install"]; got != 1 {
		t.Errorf("cache_install = %d, want 1", got)
	}
	if got := snap.Gauges["lattice_rungs"]; got != 1 {
		t.Errorf("lattice_rungs = %d, want 1", got)
	}
	if got := snap.Gauges["lattice_bytes"]; got <= 0 {
		t.Errorf("lattice_bytes = %d, want > 0", got)
	}
}

func TestLatticeEndpoints(t *testing.T) {
	srv := server.New()
	defer srv.Shutdown(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	do(t, "PUT", ts.URL+"/db/paper", basket(t))

	// Cold ladder: enabled, budgeted, no rungs.
	resp, body := do(t, "GET", ts.URL+"/db/paper/lattice", "")
	var info server.LatticeInfo
	json.Unmarshal(body, &info)
	if resp.StatusCode != http.StatusOK || !info.Enabled || info.BudgetBytes <= 0 || len(info.Rungs) != 0 {
		t.Fatalf("cold lattice = %+v (%d)", info, resp.StatusCode)
	}

	do(t, "POST", ts.URL+"/db/paper/mine", `{"min_count":3}`)
	do(t, "POST", ts.URL+"/db/paper/mine", `{"min_count":2}`)
	do(t, "POST", ts.URL+"/db/paper/mine", `{"min_count":4}`) // hit on rung 3

	_, body = do(t, "GET", ts.URL+"/db/paper/lattice", "")
	json.Unmarshal(body, &info)
	if len(info.Rungs) != 2 || info.Rungs[0].MinCount != 2 || info.Rungs[1].MinCount != 3 {
		t.Fatalf("ladder = %+v", info)
	}
	if info.Rungs[1].Hits != 1 || info.Rungs[1].Seeds != 1 {
		t.Fatalf("rung 3 counters = %+v (want 1 hit from the tighten, 1 seed from the relax)", info.Rungs[1])
	}
	if info.StoreBytes <= 0 || info.Rungs[0].Bytes <= 0 || info.Rungs[0].Patterns == 0 {
		t.Fatalf("ladder accounting = %+v", info)
	}

	// Invalidate and verify the next mine is cold again.
	resp, _ = do(t, "DELETE", ts.URL+"/db/paper/lattice", "")
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("invalidate: %d", resp.StatusCode)
	}
	_, body = do(t, "GET", ts.URL+"/db/paper/lattice", "")
	json.Unmarshal(body, &info)
	if len(info.Rungs) != 0 {
		t.Fatalf("ladder after invalidate = %+v", info)
	}
	var r server.MineResponse
	_, body = do(t, "POST", ts.URL+"/db/paper/mine", `{"min_count":3}`)
	json.Unmarshal(body, &r)
	if r.Cache != "miss" {
		t.Fatalf("mine after invalidate = %+v", r)
	}

	// Re-uploading the database drops the ladder too.
	do(t, "PUT", ts.URL+"/db/paper", basket(t))
	_, body = do(t, "GET", ts.URL+"/db/paper/lattice", "")
	json.Unmarshal(body, &info)
	if len(info.Rungs) != 0 {
		t.Fatalf("ladder after re-upload = %+v", info)
	}

	resp, _ = do(t, "GET", ts.URL+"/db/nope/lattice", "")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing db lattice: %d", resp.StatusCode)
	}
}

func TestLatticeDisabled(t *testing.T) {
	srv := server.New(server.WithLattice(false))
	defer srv.Shutdown(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	do(t, "PUT", ts.URL+"/db/paper", basket(t))
	var r server.MineResponse
	_, body := do(t, "POST", ts.URL+"/db/paper/mine", `{"min_count":3,"save_as":"r1"}`)
	json.Unmarshal(body, &r)
	if r.Cache != "" {
		t.Fatalf("disabled lattice still reports cache = %+v", r)
	}
	// Saved-set reuse keeps working without the lattice.
	_, body = do(t, "POST", ts.URL+"/db/paper/mine", `{"min_count":4}`)
	json.Unmarshal(body, &r)
	if r.Source != "filtered" || r.BasedOn != "r1" || r.Cache != "" {
		t.Fatalf("saved-set filter = %+v", r)
	}

	resp, body := do(t, "GET", ts.URL+"/db/paper/lattice", "")
	var info server.LatticeInfo
	json.Unmarshal(body, &info)
	if resp.StatusCode != http.StatusOK || info.Enabled {
		t.Fatalf("disabled lattice info = %+v (%d)", info, resp.StatusCode)
	}
	if resp, _ := do(t, "DELETE", ts.URL+"/db/paper/lattice", ""); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("disabled invalidate: %d", resp.StatusCode)
	}
}

// TestLatticeBudgetEviction exercises rung eviction over HTTP. On the paper
// database the rungs at thresholds 4/3/2 meter 80/496/1344 bytes, so a
// 550-byte budget installs rung 4, evicts it to admit rung 3, and rejects
// rung 2 outright (larger than the whole budget); the eviction must surface
// in /metrics.
func TestLatticeBudgetEviction(t *testing.T) {
	srv := server.New(server.WithCacheBudget(550))
	defer srv.Shutdown(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	do(t, "PUT", ts.URL+"/db/paper", basket(t))
	do(t, "POST", ts.URL+"/db/paper/mine", `{"min_count":4}`)
	do(t, "POST", ts.URL+"/db/paper/mine", `{"min_count":3}`)
	do(t, "POST", ts.URL+"/db/paper/mine", `{"min_count":2}`)

	_, body := do(t, "GET", ts.URL+"/metrics", "")
	var snap metrics.Snapshot
	json.Unmarshal(body, &snap)
	if snap.Counters["cache_evict"] == 0 {
		t.Fatalf("no evictions under a 600-byte budget: %+v", snap.Counters)
	}
	var info server.LatticeInfo
	_, body = do(t, "GET", ts.URL+"/db/paper/lattice", "")
	json.Unmarshal(body, &info)
	if info.StoreBytes > info.BudgetBytes {
		t.Fatalf("store over budget: %+v", info)
	}
}
