package server_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gogreen/internal/jobs"
	"gogreen/internal/metrics"
	"gogreen/internal/server"
)

// slowBasket builds a database whose full mine is combinatorially infeasible:
// nTx identical transactions over nItems items make every one of the 2^nItems
// itemsets frequent at min_count 1, so an uncancelled mine runs for minutes.
// Construction and upload stay trivial.
func slowBasket(nItems, nTx int) string {
	var sb strings.Builder
	for t := 0; t < nTx; t++ {
		for i := 0; i < nItems; i++ {
			if i > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, "%d", i)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// waitUntil polls cond up to timeout and returns how long it took, or fails.
func waitUntil(t *testing.T, timeout time.Duration, what string, cond func() bool) time.Duration {
	t.Helper()
	start := time.Now()
	for !cond() {
		if time.Since(start) > timeout {
			t.Fatalf("timed out after %v waiting for %s", timeout, what)
		}
		time.Sleep(200 * time.Microsecond)
	}
	return time.Since(start)
}

// TestMineCancelledOnDisconnect proves a mine aborts promptly mid-recursion
// when the client goes away: within 100ms of the disconnect the run is off
// the in-flight gauge and counted as cancelled.
func TestMineCancelledOnDisconnect(t *testing.T) {
	srv := server.New()
	defer srv.Shutdown(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	do(t, "PUT", ts.URL+"/db/slow", slowBasket(30, 60))

	inFlight := srv.Registry().Gauge("mine.in_flight")
	cancelled := srv.Registry().Counter("mine.requests.cancelled")

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		req, _ := http.NewRequestWithContext(ctx, "POST", ts.URL+"/db/slow/mine",
			strings.NewReader(`{"min_count":1}`))
		_, err := http.DefaultClient.Do(req)
		errc <- err
	}()
	waitUntil(t, 5*time.Second, "mine to start", func() bool { return inFlight.Value() == 1 })

	cancel()
	took := waitUntil(t, 5*time.Second, "mine to abort", func() bool {
		return inFlight.Value() == 0 && cancelled.Value() == 1
	})
	if took > 100*time.Millisecond {
		t.Errorf("mine aborted %v after disconnect, want <= 100ms", took)
	}
	if err := <-errc; err == nil {
		t.Error("client request unexpectedly succeeded")
	}
}

// TestParallelMineCancelledOnDisconnect proves the WithMineWorkers path is
// reachable from the public surface and that an in-flight parallel mine
// honors job/request cancellation: the pool stops dispatching and in-flight
// workers abort within the same bound as the serial path.
func TestParallelMineCancelledOnDisconnect(t *testing.T) {
	srv := server.New(server.WithMineWorkers(2))
	defer srv.Shutdown(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	do(t, "PUT", ts.URL+"/db/slow", slowBasket(30, 60))

	inFlight := srv.Registry().Gauge("mine.in_flight")
	cancelled := srv.Registry().Counter("mine.requests.cancelled")

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		req, _ := http.NewRequestWithContext(ctx, "POST", ts.URL+"/db/slow/mine",
			strings.NewReader(`{"min_count":1}`))
		_, err := http.DefaultClient.Do(req)
		errc <- err
	}()
	waitUntil(t, 5*time.Second, "mine to start", func() bool { return inFlight.Value() == 1 })

	cancel()
	took := waitUntil(t, 5*time.Second, "parallel mine to abort", func() bool {
		return inFlight.Value() == 0 && cancelled.Value() == 1
	})
	if took > 100*time.Millisecond {
		t.Errorf("parallel mine aborted %v after disconnect, want <= 100ms", took)
	}
	if err := <-errc; err == nil {
		t.Error("client request unexpectedly succeeded")
	}

	// The configured worker count is visible, and a completed run lands on
	// the parallel miner's counters — proving the wrapper, not the serial
	// baseline, served the request.
	if v := srv.Registry().Gauge("mine_workers").Value(); v != 2 {
		t.Errorf("mine_workers gauge = %d, want 2", v)
	}
	resp, body := do(t, "POST", ts.URL+"/db/slow/mine", `{"min_count":61}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("quick parallel mine: %d %s", resp.StatusCode, body)
	}
	if v := srv.Registry().Counter("mine.algo.par-hmine").Value(); v != 1 {
		t.Errorf("mine.algo.par-hmine = %d, want 1", v)
	}
	// The duration histogram uses the same canonical registry name as the
	// counter, so the two families always line up per algorithm.
	_, body = do(t, "GET", ts.URL+"/metrics", "")
	var snap metrics.Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("metrics JSON: %v\n%s", err, body)
	}
	if h := snap.Histograms["mine_duration_seconds.par-hmine"]; h.Count != 1 {
		t.Errorf("histogram mine_duration_seconds.par-hmine count = %d, want 1", h.Count)
	}
}

// TestMineDeadline proves WithMineTimeout bounds a run: the request comes
// back 503 with code "deadline" almost immediately, not minutes later.
func TestMineDeadline(t *testing.T) {
	srv := server.New(server.WithMineTimeout(50 * time.Millisecond))
	defer srv.Shutdown(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	do(t, "PUT", ts.URL+"/db/slow", slowBasket(30, 60))

	start := time.Now()
	resp, body := do(t, "POST", ts.URL+"/db/slow/mine", `{"min_count":1}`)
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d (%s), want 503", resp.StatusCode, body)
	}
	var e struct {
		Error string `json:"error"`
		Code  string `json:"code"`
	}
	json.Unmarshal(body, &e)
	if e.Code != "deadline" {
		t.Fatalf("error = %+v, want code deadline", e)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("503 took %v, want well under a second after the 50ms deadline", elapsed)
	}
}

// TestPatternsReadableDuringMine proves reads no longer stall behind a long
// mine on the same database: the entry lock is only held to snapshot and
// save, not for the run itself.
func TestPatternsReadableDuringMine(t *testing.T) {
	srv := server.New()
	defer srv.Shutdown(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	do(t, "PUT", ts.URL+"/db/slow", slowBasket(30, 60))
	// Seed one saved set via a trivial run (min above |DB| → empty F-list).
	do(t, "POST", ts.URL+"/db/slow/mine", `{"min_count":61,"save_as":"seed"}`)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		req, _ := http.NewRequestWithContext(ctx, "POST", ts.URL+"/db/slow/mine",
			strings.NewReader(`{"min_count":1}`))
		http.DefaultClient.Do(req)
	}()
	inFlight := srv.Registry().Gauge("mine.in_flight")
	waitUntil(t, 5*time.Second, "mine to start", func() bool { return inFlight.Value() == 1 })

	start := time.Now()
	resp, body := do(t, "GET", ts.URL+"/db/slow/patterns", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("patterns during mine: %d %s", resp.StatusCode, body)
	}
	var infos []server.SetInfo
	json.Unmarshal(body, &infos)
	if len(infos) != 1 || infos[0].Name != "seed" {
		t.Fatalf("pattern list during mine = %s", body)
	}
	if took := time.Since(start); took > time.Second {
		t.Fatalf("pattern list took %v while mine in flight", took)
	}
	// Stats and uploads must flow too.
	if resp, _ := do(t, "GET", ts.URL+"/db/slow", ""); resp.StatusCode != http.StatusOK {
		t.Fatal("stats stalled during mine")
	}
}

// TestJobsLifecycle walks the async flow: enqueue, poll, cancel running,
// cancel queued, shed on a full queue, and complete a fast job.
func TestJobsLifecycle(t *testing.T) {
	srv := server.New(server.WithWorkers(1), server.WithQueueDepth(1))
	defer srv.Shutdown(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	do(t, "PUT", ts.URL+"/db/slow", slowBasket(30, 60))

	submit := func(body string) (int, jobs.Snapshot, []byte) {
		resp, b := do(t, "POST", ts.URL+"/db/slow/mine?async=1", body)
		var snap jobs.Snapshot
		json.Unmarshal(b, &snap)
		return resp.StatusCode, snap, b
	}
	poll := func(id string) jobs.Snapshot {
		_, b := do(t, "GET", ts.URL+"/jobs/"+id, "")
		var snap jobs.Snapshot
		json.Unmarshal(b, &snap)
		return snap
	}

	// Job 1 occupies the single worker.
	code, running, b := submit(`{"min_count":1}`)
	if code != http.StatusAccepted || running.ID == "" {
		t.Fatalf("submit 1: %d %s", code, b)
	}
	waitUntil(t, 5*time.Second, "job 1 to run", func() bool {
		return poll(running.ID).Status == jobs.StatusRunning
	})

	// Job 2 fills the queue; job 3 is shed with 429.
	code, queued, b := submit(`{"min_count":1}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit 2: %d %s", code, b)
	}
	code, _, b = submit(`{"min_count":1}`)
	if code != http.StatusTooManyRequests {
		t.Fatalf("submit 3: %d %s, want 429", code, b)
	}
	var e struct {
		Code string `json:"code"`
	}
	json.Unmarshal(b, &e)
	if e.Code != "queue_full" {
		t.Fatalf("shed error = %s", b)
	}

	// Cancel the queued job, then the running one; both must reach the
	// cancelled state (the running one by aborting mid-recursion).
	if resp, _ := do(t, "DELETE", ts.URL+"/jobs/"+queued.ID, ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel queued: %d", resp.StatusCode)
	}
	if s := poll(queued.ID); s.Status != jobs.StatusCancelled {
		t.Fatalf("queued job after cancel = %+v", s)
	}
	do(t, "DELETE", ts.URL+"/jobs/"+running.ID, "")
	waitUntil(t, 5*time.Second, "running job to cancel", func() bool {
		return poll(running.ID).Status == jobs.StatusCancelled
	})

	// The pool is free again: a fast job runs to completion with a result.
	code, quick, _ := submit(`{"min_count":61}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit quick: %d", code)
	}
	waitUntil(t, 5*time.Second, "quick job to finish", func() bool {
		return poll(quick.ID).Status == jobs.StatusDone
	})
	snap := poll(quick.ID)
	result, _ := json.Marshal(snap.Result)
	var mr server.MineResponse
	json.Unmarshal(result, &mr)
	if mr.Count != 0 || mr.Source != "fresh" {
		t.Fatalf("quick job result = %s", result)
	}

	// Unknown job ids 404 on both poll and cancel.
	if resp, _ := do(t, "GET", ts.URL+"/jobs/zzz", ""); resp.StatusCode != http.StatusNotFound {
		t.Fatal("poll unknown job")
	}
	if resp, _ := do(t, "DELETE", ts.URL+"/jobs/zzz", ""); resp.StatusCode != http.StatusNotFound {
		t.Fatal("cancel unknown job")
	}
	// Listing shows the three admitted jobs; the shed submission left no trace.
	_, b = do(t, "GET", ts.URL+"/jobs", "")
	var list []jobs.Snapshot
	json.Unmarshal(b, &list)
	if len(list) != 3 {
		t.Fatalf("job list = %s", b)
	}
}

// TestMetricsEndpoint runs a small integration and checks /metrics reports
// mine counts, the latency histogram, the source mix, and queue gauges.
func TestMetricsEndpoint(t *testing.T) {
	srv := server.New()
	defer srv.Shutdown(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	do(t, "PUT", ts.URL+"/db/paper", basket(t))
	do(t, "POST", ts.URL+"/db/paper/mine", `{"min_count":3,"save_as":"r1"}`)
	do(t, "POST", ts.URL+"/db/paper/mine", `{"min_count":2}`) // recycled
	do(t, "POST", ts.URL+"/db/paper/mine", `{"min_count":4}`) // filtered

	resp, body := do(t, "GET", ts.URL+"/metrics", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d", resp.StatusCode)
	}
	var snap metrics.Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("metrics JSON: %v\n%s", err, body)
	}
	for name, want := range map[string]int64{
		"mine.requests.total":  3,
		"mine.source.fresh":    1,
		"mine.source.recycled": 1,
		"mine.source.filtered": 1,
		"mine.algo.hmine":      1,
		"mine.algo.rp-hmine":   1,
		"mine.algo.filter":     1,
	} {
		if got := snap.Counters[name]; got != want {
			t.Errorf("counter %s = %d, want %d", name, got, want)
		}
	}
	if h := snap.Histograms["mine.latency_ms"]; h.Count != 3 {
		t.Errorf("latency histogram count = %d, want 3", h.Count)
	}
	if h := snap.Histograms["mine.compression_ratio"]; h.Count != 1 {
		t.Errorf("ratio histogram count = %d, want 1", h.Count)
	}
	// The recycled mine times its compression phase; exactly one run above
	// recycled, so the histogram holds one observation.
	if h := snap.Histograms["compress_duration_seconds"]; h.Count != 1 {
		t.Errorf("compress duration histogram count = %d, want 1", h.Count)
	}
	if v, ok := snap.Gauges["compress_workers"]; !ok || v < 1 {
		t.Errorf("compress_workers gauge = %d (present=%v), want >= 1", v, ok)
	}
	// Serial mining is one effective worker.
	if v, ok := snap.Gauges["mine_workers"]; !ok || v != 1 {
		t.Errorf("mine_workers gauge = %d (present=%v), want 1", v, ok)
	}
	// Every finished run lands in its algorithm's duration histogram.
	for _, name := range []string{
		"mine_duration_seconds.hmine",
		"mine_duration_seconds.rp-hmine",
		"mine_duration_seconds.filter",
	} {
		if h := snap.Histograms[name]; h.Count != 1 {
			t.Errorf("histogram %s count = %d, want 1", name, h.Count)
		}
	}
	for _, g := range []string{"jobs.queue_depth", "jobs.running", "mine.in_flight"} {
		if v, ok := snap.Gauges[g]; !ok || v != 0 {
			t.Errorf("gauge %s = %d (present=%v), want 0", g, v, ok)
		}
	}
}
