package server_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"gogreen/internal/metrics"
	"gogreen/internal/server"
	"gogreen/internal/shard"
)

// newShardProc builds one "shard process": a single-shard server declared as
// ring position i, behind a real HTTP listener — what `rpserved -role shard
// -shard-index i` runs, minus the process boundary. mid, when non-nil, wraps
// the handler (fault injection for health and drain tests).
func newShardProc(t *testing.T, i int, mid func(http.Handler) http.Handler,
	opts ...server.Option) *httptest.Server {
	t.Helper()
	srv := server.New(append([]server.Option{server.WithShardIndex(i)}, opts...)...)
	t.Cleanup(func() { srv.Shutdown(context.Background()) })
	h := srv.Handler()
	if mid != nil {
		h = mid(h)
	}
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	return ts
}

// newClusterFront builds n shard processes and a router over them, and
// returns the router's base URL — the multi-process twin of
// newShardedServer(WithShards(n)).
func newClusterFront(t *testing.T, n int, ropts []server.RouterOption,
	opts ...server.Option) (*server.Router, string) {
	t.Helper()
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		addrs[i] = newShardProc(t, i, nil, opts...).URL
	}
	rt, err := server.NewRouter(addrs, ropts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rt.Close() })
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(ts.Close)
	return rt, ts.URL
}

// ringIDs returns one database id owned by each position of an n-ring (the
// ring is a pure function of (n, id), so placement is computable without a
// server).
func ringIDs(t *testing.T, n int) []string {
	t.Helper()
	ring := shard.New(n)
	out := make([]string, n)
	found := 0
	for i := 0; found < n && i < 10000; i++ {
		id := fmt.Sprintf("db%04d", i)
		if own := ring.Owner(id); out[own] == "" {
			out[own] = id
			found++
		}
	}
	if found < n {
		t.Fatalf("could not find ids on %d distinct ring positions", n)
	}
	return out
}

// TestBackendLifecycleParity runs one full service lifecycle — upload, list,
// mine-and-save, recycle, patterns, lattice, async job, cancel-path poll,
// delete — against the same API served two ways: in-process shards (local
// backends) and shard processes behind a router (remote backends). The
// ISSUE's acceptance gate: the deployment shape must be invisible to
// clients.
func TestBackendLifecycleParity(t *testing.T) {
	fronts := []struct {
		name string
		make func(t *testing.T) string
	}{
		{"local", func(t *testing.T) string {
			_, ts := newShardedServer(t, server.WithShards(2))
			return ts.URL
		}},
		{"remote", func(t *testing.T) string {
			_, url := newClusterFront(t, 2, nil)
			return url
		}},
	}
	for _, f := range fronts {
		t.Run(f.name, func(t *testing.T) {
			base := f.make(t)
			ids := ringIDs(t, 2)

			// Upload one database per shard.
			for _, id := range ids {
				resp, body := do(t, "PUT", base+"/db/"+id, basket(t))
				if resp.StatusCode != http.StatusCreated {
					t.Fatalf("PUT %s: %d %s", id, resp.StatusCode, body)
				}
			}

			// The aggregated listing sees both, sorted.
			resp, body := do(t, "GET", base+"/db", "")
			var listed []struct {
				ID string `json:"id"`
			}
			if err := json.Unmarshal(body, &listed); err != nil || len(listed) != 2 {
				t.Fatalf("GET /db: %d %s (err %v)", resp.StatusCode, body, err)
			}
			if listed[0].ID > listed[1].ID {
				t.Fatalf("GET /db not sorted: %s", body)
			}

			// Mine and save on shard 0's database; recycle from the save.
			resp, body = do(t, "POST", base+"/db/"+ids[0]+"/mine",
				`{"min_count":2,"save_as":"base"}`)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("mine: %d %s", resp.StatusCode, body)
			}
			resp, body = do(t, "POST", base+"/db/"+ids[0]+"/mine",
				`{"min_count":1,"use":"base"}`)
			var mined struct {
				Source string `json:"source"`
			}
			if resp.StatusCode != http.StatusOK || json.Unmarshal(body, &mined) != nil {
				t.Fatalf("recycle: %d %s", resp.StatusCode, body)
			}
			if mined.Source != "recycled" {
				t.Fatalf("recycle source = %q, want recycled (%s)", mined.Source, body)
			}

			// Saved sets and the lattice ladder are readable through the front.
			resp, body = do(t, "GET", base+"/db/"+ids[0]+"/patterns", "")
			if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"base"`) {
				t.Fatalf("patterns: %d %s", resp.StatusCode, body)
			}
			resp, body = do(t, "GET", base+"/db/"+ids[0]+"/lattice", "")
			var lat struct {
				Shard int               `json:"shard"`
				Rungs []json.RawMessage `json:"rungs"`
			}
			if resp.StatusCode != http.StatusOK || json.Unmarshal(body, &lat) != nil {
				t.Fatalf("lattice: %d %s", resp.StatusCode, body)
			}
			if lat.Shard != 0 || len(lat.Rungs) == 0 {
				t.Fatalf("lattice shard=%d rungs=%d, want shard 0 with rungs (%s)",
					lat.Shard, len(lat.Rungs), body)
			}

			// Async mine on shard 1's database: the job id carries the shard
			// prefix and polls through the front until done.
			resp, body = do(t, "POST", base+"/db/"+ids[1]+"/mine?async=1", `{"min_count":2}`)
			var job struct {
				ID     string `json:"id"`
				Status string `json:"status"`
			}
			if resp.StatusCode != http.StatusAccepted || json.Unmarshal(body, &job) != nil {
				t.Fatalf("async mine: %d %s", resp.StatusCode, body)
			}
			if !strings.HasPrefix(job.ID, "s1-") {
				t.Fatalf("job id %q does not carry shard 1's prefix", job.ID)
			}
			waitUntil(t, 5*time.Second, "job done", func() bool {
				_, body := do(t, "GET", base+"/jobs/"+job.ID, "")
				json.Unmarshal(body, &job)
				return job.Status == "done"
			})
			resp, body = do(t, "GET", base+"/jobs", "")
			if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), job.ID) {
				t.Fatalf("GET /jobs: %d %s", resp.StatusCode, body)
			}

			// /shards reports both ring positions, healthy.
			resp, body = do(t, "GET", base+"/shards", "")
			var shards []struct {
				Shard     int  `json:"shard"`
				DBs       int  `json:"dbs"`
				Unhealthy bool `json:"unhealthy"`
			}
			if resp.StatusCode != http.StatusOK || json.Unmarshal(body, &shards) != nil {
				t.Fatalf("GET /shards: %d %s", resp.StatusCode, body)
			}
			if len(shards) != 2 || shards[0].Shard != 0 || shards[1].Shard != 1 ||
				shards[0].DBs != 1 || shards[1].DBs != 1 ||
				shards[0].Unhealthy || shards[1].Unhealthy {
				t.Fatalf("GET /shards: %s", body)
			}

			// Delete both; the listing returns to empty-array (never null).
			for _, id := range ids {
				if resp, body := do(t, "DELETE", base+"/db/"+id, ""); resp.StatusCode != http.StatusNoContent {
					t.Fatalf("DELETE %s: %d %s", id, resp.StatusCode, body)
				}
			}
			if resp, body := do(t, "GET", base+"/db/"+ids[0], ""); resp.StatusCode != http.StatusNotFound {
				t.Fatalf("GET deleted: %d %s", resp.StatusCode, body)
			}
			if _, body := do(t, "GET", base+"/db", ""); strings.TrimSpace(string(body)) != "[]" {
				t.Fatalf("GET /db after deletes = %q, want []", body)
			}
		})
	}
}

// TestRemoteQuota429ByteForByte is the ISSUE's forwarding-contract
// regression test: a tenant-quota rejection produced by a shard process and
// forwarded by the router must be indistinguishable — status, Content-Type,
// Retry-After, body bytes — from the same rejection produced in-process.
func TestRemoteQuota429ByteForByte(t *testing.T) {
	quotas := server.WithQuotas(shard.Quotas{MaxDBs: 1})

	reject := func(t *testing.T, base string) (*http.Response, []byte) {
		t.Helper()
		if resp, body := doAs(t, "acme", "PUT", base+"/db/first", basket(t)); resp.StatusCode != http.StatusCreated {
			t.Fatalf("PUT first: %d %s", resp.StatusCode, body)
		}
		return doAs(t, "acme", "PUT", base+"/db/second", basket(t))
	}

	_, local := newShardedServer(t, quotas)
	lresp, lbody := reject(t, local.URL)

	_, remote := newClusterFront(t, 1, nil, quotas)
	rresp, rbody := reject(t, remote)

	if lresp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("local rejection status %d, want 429 (%s)", lresp.StatusCode, lbody)
	}
	if rresp.StatusCode != lresp.StatusCode {
		t.Errorf("status: remote %d, local %d", rresp.StatusCode, lresp.StatusCode)
	}
	for _, h := range []string{"Content-Type", "Retry-After"} {
		if r, l := rresp.Header.Get(h), lresp.Header.Get(h); r != l || l == "" {
			t.Errorf("%s: remote %q, local %q", h, r, l)
		}
	}
	if string(rbody) != string(lbody) {
		t.Errorf("body: remote %q, local %q", rbody, lbody)
	}
	requireQuota429(t, rresp, rbody, "acme", "dbs")
}

// TestShardEjectionAndRecovery covers the health-check loop: a shard that
// fails consecutive probes is ejected (its requests answer 503 with code
// "shard_unavailable", shard_unhealthy_total increments, /shards marks it
// unhealthy) while the other shard keeps serving; when the shard passes a
// probe again it rejoins and its databases are reachable once more.
func TestShardEjectionAndRecovery(t *testing.T) {
	ids := ringIDs(t, 2)

	// Shard 1 sits behind a gate: closed, every request (probes included)
	// answers 503 without reaching the shard — a hung or crashed process as
	// seen from the router, but revivable.
	var down atomic.Bool
	gate := func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if down.Load() {
				http.Error(w, "gate closed", http.StatusServiceUnavailable)
				return
			}
			next.ServeHTTP(w, r)
		})
	}
	s0 := newShardProc(t, 0, nil)
	s1 := newShardProc(t, 1, gate)

	reg := metrics.NewRegistry()
	rt, err := server.NewRouter([]string{s0.URL, s1.URL},
		server.WithProbeInterval(10*time.Millisecond),
		server.WithProbeFailures(3),
		server.WithRouterRegistry(reg))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rt.Close() })
	front := httptest.NewServer(rt.Handler())
	t.Cleanup(front.Close)

	for _, id := range ids {
		if resp, body := do(t, "PUT", front.URL+"/db/"+id, basket(t)); resp.StatusCode != http.StatusCreated {
			t.Fatalf("PUT %s: %d %s", id, resp.StatusCode, body)
		}
	}

	counter := func(name string) int64 { return reg.Snapshot().Counters[name] }

	down.Store(true)
	waitUntil(t, 5*time.Second, "shard 1 ejection", func() bool {
		return counter("shard_unhealthy_total") >= 1
	})

	// The dead shard's databases answer a clean 503 with the documented code.
	resp, body := do(t, "GET", front.URL+"/db/"+ids[1], "")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("ejected shard request: %d %s, want 503", resp.StatusCode, body)
	}
	var e struct {
		Code string `json:"code"`
	}
	if json.Unmarshal(body, &e) != nil || e.Code != "shard_unavailable" {
		t.Fatalf("ejected shard body %s, want code shard_unavailable", body)
	}

	// The surviving shard is untouched, and /shards shows the split.
	if resp, body := do(t, "GET", front.URL+"/db/"+ids[0], ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("surviving shard request: %d %s", resp.StatusCode, body)
	}
	_, body = do(t, "GET", front.URL+"/shards", "")
	var shards []struct {
		Shard     int  `json:"shard"`
		Unhealthy bool `json:"unhealthy"`
	}
	if json.Unmarshal(body, &shards) != nil || len(shards) != 2 ||
		shards[0].Unhealthy || !shards[1].Unhealthy {
		t.Fatalf("GET /shards during ejection: %s", body)
	}

	// Revive: the next passing probe readmits the shard.
	down.Store(false)
	waitUntil(t, 5*time.Second, "shard 1 recovery", func() bool {
		return counter("shard_recovered_total") >= 1
	})
	waitUntil(t, 5*time.Second, "requests reach recovered shard", func() bool {
		resp, _ := do(t, "GET", front.URL+"/db/"+ids[1], "")
		return resp.StatusCode == http.StatusOK
	})
}

// TestRingChangeDrainsInFlight covers the drain barrier: a request in
// flight to a shard leaving the ring completes normally — the ring change
// waits for it — while new requests route on the new ring immediately.
func TestRingChangeDrainsInFlight(t *testing.T) {
	ids := ringIDs(t, 2)

	// Shard 1's mine endpoint blocks until released, holding a request in
	// flight across the ring change.
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	hold := func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.Method == http.MethodPost && strings.HasSuffix(r.URL.Path, "/mine") {
				entered <- struct{}{}
				<-release
			}
			next.ServeHTTP(w, r)
		})
	}
	s0 := newShardProc(t, 0, nil)
	s1 := newShardProc(t, 1, hold)

	rt, err := server.NewRouter([]string{s0.URL, s1.URL})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rt.Close() })
	front := httptest.NewServer(rt.Handler())
	t.Cleanup(front.Close)

	for _, id := range ids {
		if resp, body := do(t, "PUT", front.URL+"/db/"+id, basket(t)); resp.StatusCode != http.StatusCreated {
			t.Fatalf("PUT %s: %d %s", id, resp.StatusCode, body)
		}
	}

	mineDone := make(chan int, 1)
	go func() {
		resp, _ := do(t, "POST", front.URL+"/db/"+ids[1]+"/mine", `{"min_count":2}`)
		mineDone <- resp.StatusCode
	}()
	<-entered

	// Shrink the ring to shard 0 while the mine is in flight on shard 1.
	drained := make(chan error, 1)
	go func() { drained <- rt.SetShardAddrs([]string{s0.URL}) }()

	// The barrier must be holding: the in-flight mine hasn't been released.
	select {
	case err := <-drained:
		t.Fatalf("SetShardAddrs returned before the in-flight request finished (err %v)", err)
	case <-time.After(50 * time.Millisecond):
	}

	// New requests already route on the shrunk ring: every id now lands on
	// shard 0, which doesn't hold shard 1's database.
	if resp, _ := do(t, "GET", front.URL+"/db/"+ids[1], ""); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("post-swap routing: GET %s = %d, want 404 from shard 0", ids[1], resp.StatusCode)
	}

	// Release: the held request completes with a real response — zero
	// dropped — and only then does the ring change finish.
	close(release)
	if status := <-mineDone; status != http.StatusOK {
		t.Fatalf("in-flight mine across ring change: status %d, want 200", status)
	}
	if err := <-drained; err != nil {
		t.Fatalf("SetShardAddrs: %v", err)
	}
}

// TestHealthzSurface pins the /healthz role fields on all three deployment
// shapes: in-process server, shard process, router.
func TestHealthzSurface(t *testing.T) {
	var h struct {
		Status  string `json:"status"`
		Role    string `json:"role"`
		Shard   int    `json:"shard"`
		Shards  int    `json:"shards"`
		Healthy int    `json:"healthy"`
	}

	_, local := newShardedServer(t)
	if _, body := do(t, "GET", local.URL+"/healthz", ""); json.Unmarshal(body, &h) != nil ||
		h.Status != "ok" || h.Role != "server" {
		t.Fatalf("server /healthz: %+v", h)
	}

	sh := newShardProc(t, 3, nil)
	if _, body := do(t, "GET", sh.URL+"/healthz", ""); json.Unmarshal(body, &h) != nil ||
		h.Status != "ok" || h.Role != "shard" || h.Shard != 3 {
		t.Fatalf("shard /healthz: %+v", h)
	}

	_, cluster := newClusterFront(t, 2, nil)
	if _, body := do(t, "GET", cluster+"/healthz", ""); json.Unmarshal(body, &h) != nil ||
		h.Status != "ok" || h.Role != "router" || h.Shards != 2 || h.Healthy != 2 {
		t.Fatalf("router /healthz: %+v", h)
	}
}
