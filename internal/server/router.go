// The request router: the one component that knows the ring. It owns
// request placement (consistent hashing on database id, job-id prefix
// parsing), cross-shard aggregation (GET /db, /jobs, /shards), shard health
// (periodic /healthz probes with consecutive-failure ejection) and ring
// changes (in-flight requests to a departing shard drain before its backend
// closes). Everything past placement goes through the shard.Backend seam,
// so the same Router fronts in-process engine shards (the classic
// single-binary server) and remote shard processes (`rpserved -role
// router`) — the deployment shape is configuration, not code.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"gogreen/internal/metrics"
	"gogreen/internal/shard"
)

// Router fronts a ring of shard backends with the service's public HTTP
// surface. Build one over remote shard processes with NewRouter; the
// in-process Server builds its own over its engine shards. Safe for
// concurrent use.
type Router struct {
	reg            *metrics.Registry
	metricsHandler http.Handler

	// remote marks a router over shard processes: health probing, transport
	// failure tracking and SetShardAddrs apply only there. A router over
	// in-process shards cannot lose one.
	remote        bool
	role          string
	probeInterval time.Duration
	probeFailures int

	// ejections counts shard_unhealthy_total (a healthy shard crossing the
	// consecutive-failure threshold); recovered counts ejected shards that
	// passed a probe again.
	ejections *metrics.Counter
	recovered *metrics.Counter

	// mu guards the ring/backends pair. Forwarders take the in-flight hold
	// under the read lock, so SetShardAddrs (write lock, then Wait) can
	// never observe a hold appearing after its drain barrier started.
	mu       sync.RWMutex
	ring     *shard.Ring
	backends []*backendState

	probeStop chan struct{}
	probeDone chan struct{}
	closeOnce sync.Once
}

// backendState is one ring slot: the backend plus the router-side health
// and drain bookkeeping that must not live in the backend itself (a Backend
// carries requests; whether to send them is the router's call).
type backendState struct {
	index int
	addr  string
	b     shard.Backend

	mu      sync.Mutex
	healthy bool
	fails   int

	// inflight counts requests handed to this backend; a ring change waits
	// for it to drain before closing the departing backend.
	inflight sync.WaitGroup
}

func (bs *backendState) isHealthy() bool {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	return bs.healthy
}

// RouterOption configures a standalone Router.
type RouterOption func(*Router)

// WithProbeInterval sets the health-probe cadence (default 2s).
func WithProbeInterval(d time.Duration) RouterOption {
	return func(rt *Router) {
		if d > 0 {
			rt.probeInterval = d
		}
	}
}

// WithProbeFailures sets how many consecutive probe (or transport) failures
// eject a shard (default 3). An ejected shard answers 503 with code
// "shard_unavailable" until it passes a probe again.
func WithProbeFailures(n int) RouterOption {
	return func(rt *Router) {
		if n > 0 {
			rt.probeFailures = n
		}
	}
}

// WithRouterRegistry uses an external metrics registry for the router's own
// metrics (default: a fresh one).
func WithRouterRegistry(reg *metrics.Registry) RouterOption {
	return func(rt *Router) { rt.reg = reg }
}

// NewRouter builds a router over remote shard processes, one per address,
// in ring order: addrs[i] must be the process started with -shard-index i,
// so the ids it minted (job prefix "s<i>-", /shards rows) agree with the
// ring's placement. Health probing starts immediately; Close stops it and
// releases the backends.
func NewRouter(addrs []string, opts ...RouterOption) (*Router, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("router: need at least one shard address")
	}
	rt := &Router{
		remote:        true,
		role:          "router",
		probeInterval: 2 * time.Second,
		probeFailures: 3,
	}
	for _, o := range opts {
		o(rt)
	}
	if rt.reg == nil {
		rt.reg = metrics.NewRegistry()
	}
	rt.metricsHandler = rt.reg.Handler()
	rt.ejections = rt.reg.Counter("shard_unhealthy_total")
	rt.recovered = rt.reg.Counter("shard_recovered_total")
	rt.reg.GaugeFunc("shard_count", func() int64 {
		rt.mu.RLock()
		defer rt.mu.RUnlock()
		return int64(len(rt.backends))
	})
	rt.reg.GaugeFunc("shards_healthy", func() int64 {
		rt.mu.RLock()
		defer rt.mu.RUnlock()
		var n int64
		for _, bs := range rt.backends {
			if bs.isHealthy() {
				n++
			}
		}
		return n
	})
	backends, err := remoteBackends(addrs)
	if err != nil {
		return nil, err
	}
	rt.ring = shard.New(len(backends))
	rt.backends = backends
	rt.startProbes()
	return rt, nil
}

func remoteBackends(addrs []string) ([]*backendState, error) {
	backends := make([]*backendState, len(addrs))
	for i, addr := range addrs {
		b, err := shard.NewRemote(addr)
		if err != nil {
			for _, bs := range backends[:i] {
				bs.b.Close()
			}
			return nil, err
		}
		backends[i] = &backendState{index: i, addr: addr, b: b, healthy: true}
	}
	return backends, nil
}

// newLocalRouter fronts the server's own engine shards. No probing: an
// in-process shard cannot crash independently, and keeping the health
// machinery off the local path keeps the N=1 surface — routes, metrics
// names, response bytes — identical to the pre-seam server (plus /healthz).
func newLocalRouter(s *Server) *Router {
	rt := &Router{
		role:           "server",
		metricsHandler: s.reg.Handler(),
		ring:           s.ring,
	}
	rt.backends = make([]*backendState, len(s.shards))
	for i, sh := range s.shards {
		b := newLocalBackend(sh)
		rt.backends[i] = &backendState{index: i, addr: b.Addr(), b: b, healthy: true}
	}
	return rt
}

// routes is the router's endpoint table — the service's public surface, row
// for row the shard table plus aggregation.
func (rt *Router) routes() []route {
	return []route{
		{"GET /db", rt.handleDBList},
		{"PUT /db/{id}", rt.forwardDB},
		{"GET /db/{id}", rt.forwardDB},
		{"DELETE /db/{id}", rt.forwardDB},
		{"POST /db/{id}/mine", rt.forwardDB},
		{"GET /db/{id}/patterns", rt.forwardDB},
		{"GET /db/{id}/patterns/{name}", rt.forwardDB},
		{"GET /db/{id}/lattice", rt.forwardDB},
		{"DELETE /db/{id}/lattice", rt.forwardDB},
		{"GET /jobs", rt.handleJobList},
		{"GET /jobs/{id}", rt.forwardJob},
		{"DELETE /jobs/{id}", rt.forwardJob},
		{"GET /shards", rt.handleShards},
		{"GET /healthz", rt.handleHealthz},
		{"GET /metrics", rt.metricsHandler.ServeHTTP},
	}
}

// Routes lists every registered "METHOD /pattern" in registration order.
func (rt *Router) Routes() []string {
	rs := rt.routes()
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = r.pattern
	}
	return out
}

// Handler returns the router's HTTP handler.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	for _, r := range rt.routes() {
		mux.HandleFunc(r.pattern, r.handler)
	}
	return mux
}

// backendFor resolves the ring owner of a database id and takes its
// in-flight hold; callers must release(). ok is false for an ejected shard.
func (rt *Router) backendFor(id string) (*backendState, bool) {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	bs := rt.backends[rt.ring.Owner(id)]
	if !bs.isHealthy() {
		return bs, false
	}
	bs.inflight.Add(1)
	return bs, true
}

// backendAt is backendFor by ring index.
func (rt *Router) backendAt(i int) (*backendState, bool) {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	if i < 0 || i >= len(rt.backends) {
		return nil, false
	}
	bs := rt.backends[i]
	if !bs.isHealthy() {
		return bs, false
	}
	bs.inflight.Add(1)
	return bs, true
}

// held returns every currently-healthy backend with in-flight holds taken,
// for aggregation fan-out.
func (rt *Router) held() []*backendState {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	out := make([]*backendState, 0, len(rt.backends))
	for _, bs := range rt.backends {
		if bs.isHealthy() {
			bs.inflight.Add(1)
			out = append(out, bs)
		}
	}
	return out
}

func failUnavailable(w http.ResponseWriter, idx int) {
	failCode(w, http.StatusServiceUnavailable, "shard_unavailable",
		"shard %d unavailable", idx)
}

// serve hands one routed request to the backend. The backend writes the
// shard's response byte-for-byte; a transport failure (nothing written yet)
// becomes a 503 and counts toward ejection like a failed probe.
func (rt *Router) serve(bs *backendState, w http.ResponseWriter, r *http.Request) {
	defer bs.inflight.Done()
	if err := bs.b.Serve(w, r); err != nil {
		rt.noteFailure(bs)
		failUnavailable(w, bs.index)
	}
}

// forwardDB routes a database-scoped request to the id's ring owner.
func (rt *Router) forwardDB(w http.ResponseWriter, r *http.Request) {
	bs, ok := rt.backendFor(r.PathValue("id"))
	if !ok {
		failUnavailable(w, bs.index)
		return
	}
	rt.serve(bs, w, r)
}

// jobShard parses the shard index out of a prefixed job id ("s<i>-j<seq>").
func jobShard(id string) (int, bool) {
	if !strings.HasPrefix(id, "s") {
		return 0, false
	}
	rest := id[1:]
	dash := strings.IndexByte(rest, '-')
	if dash <= 0 {
		return 0, false
	}
	n, err := strconv.Atoi(rest[:dash])
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// forwardJob routes a job-scoped request: a prefixed id names its shard
// outright; an unprefixed one (single-shard deployments) goes to the only
// backend, or is located by asking each shard.
func (rt *Router) forwardJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if i, ok := jobShard(id); ok {
		bs, ok := rt.backendAt(i)
		if bs == nil {
			fail(w, http.StatusNotFound, "no job %q", id)
			return
		}
		if !ok {
			failUnavailable(w, i)
			return
		}
		rt.serve(bs, w, r)
		return
	}
	rt.mu.RLock()
	single := len(rt.backends) == 1
	rt.mu.RUnlock()
	if single {
		bs, ok := rt.backendAt(0)
		if !ok {
			failUnavailable(w, 0)
			return
		}
		rt.serve(bs, w, r)
		return
	}
	// Unprefixed id on a multi-shard ring: probe each shard's job table.
	// Ids are unique across pools, so the first hit is the only one.
	var target *backendState
	for _, bs := range rt.held() {
		if target == nil && bs.b.Fetch(r.Context(), "/jobs/"+id, nil) == nil {
			target = bs // keep its hold; serve releases it
			continue
		}
		bs.inflight.Done()
	}
	if target == nil {
		fail(w, http.StatusNotFound, "no job %q", id)
		return
	}
	rt.serve(target, w, r)
}

// aggregate fans a GET out to every healthy backend and merges the JSON
// array elements verbatim — the elements are the shards' own bytes, so the
// merged listing is byte-compatible with the single-process server's. less
// orders two raw elements by the caller's sort key.
func (rt *Router) aggregate(w http.ResponseWriter, r *http.Request, path string,
	less func(a, b json.RawMessage) bool) {
	merged := []json.RawMessage{}
	for _, bs := range rt.held() {
		var items []json.RawMessage
		err := bs.b.Fetch(r.Context(), path, &items)
		bs.inflight.Done()
		if err != nil {
			rt.noteFailure(bs)
			failUnavailable(w, bs.index)
			return
		}
		merged = append(merged, items...)
	}
	sort.SliceStable(merged, func(i, j int) bool { return less(merged[i], merged[j]) })
	writeJSON(w, http.StatusOK, merged)
}

func (rt *Router) handleDBList(w http.ResponseWriter, r *http.Request) {
	rt.aggregate(w, r, "/db", func(a, b json.RawMessage) bool {
		var ka, kb struct {
			ID string `json:"id"`
		}
		json.Unmarshal(a, &ka)
		json.Unmarshal(b, &kb)
		return ka.ID < kb.ID
	})
}

func (rt *Router) handleJobList(w http.ResponseWriter, r *http.Request) {
	rt.aggregate(w, r, "/jobs", func(a, b json.RawMessage) bool {
		var ka, kb struct {
			Created time.Time `json:"created"`
		}
		json.Unmarshal(a, &ka)
		json.Unmarshal(b, &kb)
		return ka.Created.Before(kb.Created)
	})
}

// handleShards concatenates every backend's /shards row; an ejected or
// unreachable shard still appears, marked unhealthy, so the listing always
// describes the whole ring.
func (rt *Router) handleShards(w http.ResponseWriter, r *http.Request) {
	rt.mu.RLock()
	states := append([]*backendState(nil), rt.backends...)
	rt.mu.RUnlock()
	infos := make([]ShardInfo, 0, len(states))
	for _, bs := range states {
		var rows []ShardInfo
		if bs.isHealthy() && bs.b.Fetch(r.Context(), "/shards", &rows) == nil {
			infos = append(infos, rows...)
			continue
		}
		infos = append(infos, ShardInfo{Shard: bs.index, Unhealthy: true})
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Shard < infos[j].Shard })
	writeJSON(w, http.StatusOK, infos)
}

// handleHealthz reports the router's own liveness plus the ring's health
// census. It answers 200 whenever the router is up — shard loss shows in
// the healthy count (and in shards_healthy / shard_unhealthy_total), not in
// this endpoint's status.
func (rt *Router) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	rt.mu.RLock()
	n := len(rt.backends)
	healthy := 0
	for _, bs := range rt.backends {
		if bs.isHealthy() {
			healthy++
		}
	}
	rt.mu.RUnlock()
	writeJSON(w, http.StatusOK, healthBody{
		Status: "ok", Role: rt.role, Shards: n, Healthy: healthy})
}

// noteFailure counts one failed probe or transport failure; crossing the
// consecutive-failure threshold ejects the shard.
func (rt *Router) noteFailure(bs *backendState) {
	if !rt.remote {
		return
	}
	bs.mu.Lock()
	bs.fails++
	eject := bs.healthy && bs.fails >= rt.probeFailures
	if eject {
		bs.healthy = false
	}
	bs.mu.Unlock()
	if eject {
		rt.ejections.Inc()
	}
}

// noteSuccess resets the failure streak; an ejected shard that answers a
// probe rejoins the ring.
func (rt *Router) noteSuccess(bs *backendState) {
	bs.mu.Lock()
	bs.fails = 0
	recover := !bs.healthy
	if recover {
		bs.healthy = true
	}
	bs.mu.Unlock()
	if recover {
		rt.recovered.Inc()
	}
}

func (rt *Router) startProbes() {
	rt.probeStop, rt.probeDone = make(chan struct{}), make(chan struct{})
	go func() {
		defer close(rt.probeDone)
		t := time.NewTicker(rt.probeInterval)
		defer t.Stop()
		for {
			select {
			case <-rt.probeStop:
				return
			case <-t.C:
				rt.probeAll()
			}
		}
	}()
}

// probeAll probes every backend once, concurrently, and waits: the ticker
// drops ticks while a sweep runs, so sweeps never overlap and a hung shard
// costs one timeout, not a goroutine per tick.
func (rt *Router) probeAll() {
	rt.mu.RLock()
	states := append([]*backendState(nil), rt.backends...)
	rt.mu.RUnlock()
	timeout := rt.probeInterval
	if timeout < 200*time.Millisecond {
		timeout = 200 * time.Millisecond
	}
	var wg sync.WaitGroup
	for _, bs := range states {
		wg.Add(1)
		go func(bs *backendState) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), timeout)
			defer cancel()
			if err := bs.b.Fetch(ctx, "/healthz", nil); err != nil {
				rt.noteFailure(bs)
			} else {
				rt.noteSuccess(bs)
			}
		}(bs)
	}
	wg.Wait()
}

// SetShardAddrs replaces the ring. Backends whose address keeps its ring
// position carry over (health, in-flight work and pooled connections
// intact); departing backends drain — every request already handed to them
// completes — before they close. New requests route on the new ring the
// moment the swap commits; the drain barrier orders only the departure.
func (rt *Router) SetShardAddrs(addrs []string) error {
	if !rt.remote {
		return fmt.Errorf("router: ring changes require remote backends")
	}
	if len(addrs) == 0 {
		return fmt.Errorf("router: need at least one shard address")
	}
	rt.mu.Lock()
	old := rt.backends
	backends := make([]*backendState, len(addrs))
	reused := make(map[*backendState]bool, len(old))
	for i, addr := range addrs {
		if i < len(old) && old[i].addr == addr {
			backends[i] = old[i]
			reused[old[i]] = true
			continue
		}
		b, err := shard.NewRemote(addr)
		if err != nil {
			for _, bs := range backends[:i] {
				if !reused[bs] {
					bs.b.Close()
				}
			}
			rt.mu.Unlock()
			return err
		}
		backends[i] = &backendState{index: i, addr: addr, b: b, healthy: true}
	}
	rt.backends = backends
	rt.ring = shard.New(len(backends))
	rt.mu.Unlock()
	// Drain barrier: in-flight holds were all taken under the read lock, so
	// after the swap above no new hold can land on a departing backend.
	for _, bs := range old {
		if !reused[bs] {
			bs.inflight.Wait()
			bs.b.Close()
		}
	}
	return nil
}

// Close stops probing and releases the backends after their in-flight
// requests drain. The in-process server's router has nothing to stop.
func (rt *Router) Close() error {
	rt.closeOnce.Do(func() {
		if rt.probeStop != nil {
			close(rt.probeStop)
			<-rt.probeDone
		}
		rt.mu.RLock()
		states := append([]*backendState(nil), rt.backends...)
		rt.mu.RUnlock()
		for _, bs := range states {
			bs.inflight.Wait()
			bs.b.Close()
		}
	})
	return nil
}
