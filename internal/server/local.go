package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
)

// localBackend adapts one in-process engineShard to the shard.Backend seam.
// Serve is a direct handler call — zero marshalling, no socket — which is
// what keeps the single-process deployment byte-compatible with (and as fast
// as) the pre-seam server: the routed request reaches the same handler code
// writing to the real ResponseWriter.
type localBackend struct {
	sh *engineShard
	h  http.Handler
}

func newLocalBackend(sh *engineShard) *localBackend {
	return &localBackend{sh: sh, h: sh.handler()}
}

// Serve implements shard.Backend. An in-process shard is always reachable,
// so the error is always nil.
func (b *localBackend) Serve(w http.ResponseWriter, r *http.Request) error {
	b.h.ServeHTTP(w, r)
	return nil
}

// memResponse is the in-memory ResponseWriter Fetch runs the shard handler
// against (the prod-code stand-in for httptest.ResponseRecorder).
type memResponse struct {
	header http.Header
	code   int
	body   bytes.Buffer
}

func (m *memResponse) Header() http.Header { return m.header }
func (m *memResponse) WriteHeader(code int) {
	if m.code == 0 {
		m.code = code
	}
}
func (m *memResponse) Write(p []byte) (int, error) {
	m.WriteHeader(http.StatusOK)
	return m.body.Write(p)
}

// Fetch implements shard.Backend: run the GET through the shard handler
// in-memory and decode the JSON response.
func (b *localBackend) Fetch(ctx context.Context, path string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, path, nil)
	if err != nil {
		return err
	}
	rec := &memResponse{header: http.Header{}}
	b.h.ServeHTTP(rec, req)
	if rec.code < 200 || rec.code > 299 {
		return fmt.Errorf("%s%s: status %d", b.Addr(), path, rec.code)
	}
	if v == nil {
		return nil
	}
	return json.Unmarshal(rec.body.Bytes(), v)
}

// Addr implements shard.Backend.
func (b *localBackend) Addr() string { return fmtShardLabel(b.sh.id) }

// Close implements shard.Backend: the engine shard's lifecycle belongs to
// its Server (Shutdown/Close), not to the router.
func (b *localBackend) Close() error { return nil }
