// The per-shard request surface: every handler in this file is scoped to
// exactly one engineShard — its database map, its job pool, its lattice
// store slice. This is the surface behind the shard.Backend seam: the
// in-process router reaches it through a direct handler call (localBackend),
// a multi-process router through real HTTP (shard.Remote) against a
// `rpserved -role shard` process serving this same table. A shard never
// consults the ring: it trusts the router to send it only what it owns,
// which is what keeps the handlers identical whether the "router" is a
// struct in this process or a process on another machine.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"time"

	"gogreen/internal/dataset"
	"gogreen/internal/engine"
	"gogreen/internal/jobs"
	"gogreen/internal/lattice"
	"gogreen/internal/shard"
	"gogreen/internal/store"
)

// routes is the complete per-shard endpoint table, mirroring the public
// surface route for route (the router forwards or aggregates every row).
func (sh *engineShard) routes() []route {
	return []route{
		{"GET /db", sh.handleList},
		{"PUT /db/{id}", sh.handlePut},
		{"GET /db/{id}", sh.handleStats},
		{"DELETE /db/{id}", sh.handleDelete},
		{"POST /db/{id}/mine", sh.handleMine},
		{"GET /db/{id}/patterns", sh.handlePatternList},
		{"GET /db/{id}/patterns/{name}", sh.handlePatternGet},
		{"GET /db/{id}/lattice", sh.handleLatticeGet},
		{"DELETE /db/{id}/lattice", sh.handleLatticeDelete},
		{"GET /jobs", sh.handleJobList},
		{"GET /jobs/{id}", sh.handleJobGet},
		{"DELETE /jobs/{id}", sh.handleJobCancel},
		{"GET /shards", sh.handleShards},
		{"GET /healthz", sh.handleHealthz},
		{"GET /metrics", sh.srv.reg.Handler().ServeHTTP},
	}
}

// handler builds the shard's HTTP surface. It is what a `-role shard`
// process listens on, and what localBackend invokes in-process.
func (sh *engineShard) handler() http.Handler {
	mux := http.NewServeMux()
	for _, r := range sh.routes() {
		mux.HandleFunc(r.pattern, r.handler)
	}
	return mux
}

// lookup resolves a database id in this shard's map.
func (sh *engineShard) lookup(id string) (*entry, bool) {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	e, ok := sh.dbs[id]
	return e, ok
}

// dbCount returns the shard's resident database count.
func (sh *engineShard) dbCount() int {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return len(sh.dbs)
}

// healthBody is the GET /healthz response of a shard (and, with role
// "router", of the routing front).
type healthBody struct {
	Status string `json:"status"`
	Role   string `json:"role"`
	// Shard is the shard's ring index (meaningful on shard nodes).
	Shard int `json:"shard,omitempty"`
	// Shards/Healthy describe the ring on a router.
	Shards  int `json:"shards,omitempty"`
	Healthy int `json:"healthy,omitempty"`
}

// handleHealthz answers the router's liveness probe: a 200 means the shard
// is accepting work (the handler running at all is the proof).
func (sh *engineShard) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, healthBody{Status: "ok", Role: "shard", Shard: sh.id})
}

func (sh *engineShard) handleList(w http.ResponseWriter, _ *http.Request) {
	sh.mu.RLock()
	ids := make([]string, 0, len(sh.dbs))
	entries := make([]*entry, 0, len(sh.dbs))
	for id, e := range sh.dbs {
		ids = append(ids, id)
		entries = append(entries, e)
	}
	sh.mu.RUnlock()
	// Per-entry stats are read outside the shard lock: entry locks are
	// not nested inside shard locks anywhere, and a racing delete just
	// yields a last-moment snapshot.
	infos := make([]DBInfo, 0, len(ids))
	for i, id := range ids {
		infos = append(infos, info(id, entries[i]))
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].ID < infos[j].ID })
	writeJSON(w, http.StatusOK, infos)
}

// shardInfo reports the shard's occupancy for GET /shards aggregation.
func (sh *engineShard) shardInfo() ShardInfo {
	si := ShardInfo{
		Shard:      sh.id,
		DBs:        sh.dbCount(),
		QueueDepth: sh.jobs.Depth(),
		Running:    sh.jobs.Running(),
	}
	if sh.store != nil {
		si.LatticeRungs = sh.store.Rungs()
		si.LatticeBytes = sh.store.Bytes()
	}
	if sh.disk != nil {
		st := sh.disk.Stats()
		si.StoreSegments = st.Segments
		si.StoreBytes = st.DiskBytes
	}
	return si
}

// handleShards reports this shard's own row; the router concatenates the
// rows of every backend into the public listing.
func (sh *engineShard) handleShards(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, []ShardInfo{sh.shardInfo()})
}

func (sh *engineShard) handlePut(w http.ResponseWriter, r *http.Request) {
	s := sh.srv
	id := r.PathValue("id")
	if !validName(id) {
		fail(w, http.StatusBadRequest, "bad database id %q", id)
		return
	}
	tenant, err := tenantOf(r)
	if err != nil {
		fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	db, err := dataset.ReadBasketIDs(http.MaxBytesReader(w, r.Body, s.maxBody))
	if err != nil {
		status := http.StatusBadRequest
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			status = http.StatusRequestEntityTooLarge
		}
		fail(w, status, "parse: %v", err)
		return
	}
	if db.Len() == 0 {
		fail(w, http.StatusBadRequest, "empty database")
		return
	}
	var (
		e       *entry
		existed bool
	)
	for {
		sh.mu.Lock()
		e, existed = sh.dbs[id]
		if !existed {
			// Admission: a brand-new database consumes one of the tenant's DB
			// slots; acquire it before the id becomes visible. The governor has
			// its own lock and never takes shard locks, so the nesting is safe.
			if err := s.gov.AcquireDB(tenant); err != nil {
				sh.mu.Unlock()
				var qe *shard.QuotaError
				errors.As(err, &qe)
				s.failQuota(w, qe)
				return
			}
			e = &entry{id: id, sets: map[string]*savedSet{}, owner: tenant}
			sh.dbs[id] = e
		}
		sh.mu.Unlock()

		e.mu.Lock()
		if !e.deleted {
			break
		}
		// A concurrent DELETE orphaned this entry between the map lookup and
		// the lock; writing into it would vanish the upload. Retry the
		// insert — the deleter already removed the id from the map.
		e.mu.Unlock()
	}
	if existed && e.owner != tenant {
		// Replacing another tenant's database transfers ownership (tenants
		// are accounting domains, not an authorization boundary): the new
		// owner needs a free DB slot before the old one's is released.
		if err := s.gov.AcquireDB(tenant); err != nil {
			e.mu.Unlock()
			var qe *shard.QuotaError
			errors.As(err, &qe)
			s.failQuota(w, qe)
			return
		}
		s.gov.ReleaseDB(e.owner)
	}
	oldOwner, oldBytes := e.owner, setBytes(e.sets)
	old := e.db
	e.db, e.stats = db, db.Stats()
	e.sets = map[string]*savedSet{}
	e.owner = tenant
	e.version++
	e.resident = true
	e.lastTouch = time.Now()
	// Quota moves happen under e.mu so a racing delete's refund and this
	// replacement's debit serialize — each byte is charged and refunded
	// exactly once in every interleaving.
	s.gov.AddPatternBytes(oldOwner, -oldBytes)
	var diskErr error
	if sh.disk != nil {
		// Write-through before acknowledging: a PutDB record also resets the
		// database's persisted sets and rungs, mirroring the wipe above.
		diskErr = sh.disk.PutDB(id, tenant, db)
	}
	e.mu.Unlock()
	// The replaced database's ladder is unreachable (identity-keyed); drop
	// it now instead of waiting for LRU aging to reclaim the budget.
	if sh.store != nil && old != nil {
		sh.store.Invalidate(old)
	}
	if diskErr != nil {
		fail(w, http.StatusInternalServerError, "persist: %v", diskErr)
		return
	}
	status := http.StatusCreated
	if existed {
		status = http.StatusOK
	}
	writeJSON(w, status, info(id, e))
}

func (sh *engineShard) handleStats(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	e, ok := sh.lookup(id)
	if !ok {
		fail(w, http.StatusNotFound, "no database %q", id)
		return
	}
	writeJSON(w, http.StatusOK, info(id, e))
}

func (sh *engineShard) handleDelete(w http.ResponseWriter, r *http.Request) {
	s := sh.srv
	id := r.PathValue("id")
	sh.mu.Lock()
	e, ok := sh.dbs[id]
	delete(sh.dbs, id)
	sh.mu.Unlock()
	if !ok {
		fail(w, http.StatusNotFound, "no database %q", id)
		return
	}
	e.mu.Lock()
	// deleted marks the entry terminal while a reference may still be live in
	// a concurrent mine or PUT: a mine's save observes it under e.mu and skips
	// both the set and its quota charge, so the refund below is exactly-once —
	// bytes never land on the owner after they were settled here.
	e.deleted = true
	e.version++
	owner, bytes := e.owner, setBytes(e.sets)
	old := e.db
	s.gov.ReleaseDB(owner)
	s.gov.AddPatternBytes(owner, -bytes)
	var diskErr error
	if sh.disk != nil {
		if diskErr = sh.disk.DeleteDB(id); errors.Is(diskErr, store.ErrNotFound) {
			// The db may never have reached disk (its PUT's write-through
			// failed); deleting it is still a success.
			diskErr = nil
		}
	}
	e.mu.Unlock()
	if sh.store != nil && old != nil {
		sh.store.Invalidate(old)
	}
	if diskErr != nil {
		fail(w, http.StatusInternalServerError, "persist: %v", diskErr)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (sh *engineShard) handleLatticeGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	e, ok := sh.lookup(id)
	if !ok {
		fail(w, http.StatusNotFound, "no database %q", id)
		return
	}
	info := LatticeInfo{ID: id, Shard: sh.id, Rungs: []lattice.RungInfo{}}
	if sh.store != nil {
		info.Enabled = true
		info.BudgetBytes = sh.store.Budget()
		info.StoreBytes = sh.store.Bytes()
		e.mu.Lock()
		// A cold stub's ladder lives on disk; hydrating re-installs it into
		// the memory store so the inspection below sees it.
		if err := sh.hydrateLocked(e); err != nil {
			e.mu.Unlock()
			fail(w, http.StatusInternalServerError, "hydrate: %v", err)
			return
		}
		e.lastTouch = time.Now()
		db := e.db
		e.mu.Unlock()
		if rungs := sh.store.Cache(db).Rungs(); len(rungs) > 0 {
			info.Rungs = rungs
		}
	}
	writeJSON(w, http.StatusOK, info)
}

func (sh *engineShard) handleLatticeDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	e, ok := sh.lookup(id)
	if !ok {
		fail(w, http.StatusNotFound, "no database %q", id)
		return
	}
	e.mu.Lock()
	db := e.db
	var diskErr error
	if sh.disk != nil && !e.deleted {
		// Invalidation covers the durable ladder too — otherwise a restart
		// would resurrect rungs the operator explicitly dropped.
		diskErr = sh.disk.DropRungs(id)
	}
	e.mu.Unlock()
	if sh.store != nil && db != nil {
		sh.store.Invalidate(db)
	}
	if diskErr != nil && !errors.Is(diskErr, store.ErrNotFound) {
		fail(w, http.StatusInternalServerError, "persist: %v", diskErr)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (sh *engineShard) handleMine(w http.ResponseWriter, r *http.Request) {
	s := sh.srv
	id := r.PathValue("id")
	e, ok := sh.lookup(id)
	if !ok {
		fail(w, http.StatusNotFound, "no database %q", id)
		return
	}
	tenant, err := tenantOf(r)
	if err != nil {
		fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	var req MineRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		fail(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	e.mu.Lock()
	numTx := e.stats.NumTx
	owner := e.owner
	e.mu.Unlock()
	min, err := engine.Threshold{Count: req.MinCount, Support: req.MinSupport}.Resolve(numTx)
	switch {
	case errors.Is(err, engine.ErrBadMinSupport):
		fail(w, http.StatusBadRequest, "min_support must be a fraction below 1")
		return
	case err != nil:
		fail(w, http.StatusBadRequest, "need min_count >= 1 or min_support in (0,1)")
		return
	}
	if req.SaveAs != "" {
		if !validName(req.SaveAs) {
			fail(w, http.StatusBadRequest, "bad save_as name %q", req.SaveAs)
			return
		}
		// Admission: a request that will save patterns is rejected at the
		// door once the owning tenant's saved bytes meet their quota —
		// before any mining happens on their behalf.
		if err := s.gov.CheckPatternBytes(owner); err != nil {
			var qe *shard.QuotaError
			errors.As(err, &qe)
			s.failQuota(w, qe)
			return
		}
	}

	if r.URL.Query().Get("async") == "1" {
		sh.enqueueMine(w, tenant, e, req, min)
		return
	}

	resp, err := sh.mine(r.Context(), e, req, min)
	if err != nil {
		s.failMine(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// enqueueMine submits the request to this shard's async worker pool,
// charging the submitting tenant's job quota for the job's whole queued-or-
// running lifetime.
func (sh *engineShard) enqueueMine(w http.ResponseWriter, tenant string, e *entry, req MineRequest, min int) {
	s := sh.srv
	if err := s.gov.AcquireJob(tenant); err != nil {
		var qe *shard.QuotaError
		errors.As(err, &qe)
		s.failQuota(w, qe)
		return
	}
	job, err := sh.jobs.Submit(func(ctx context.Context) (any, error) {
		return sh.mine(ctx, e, req, min)
	})
	if err != nil {
		s.gov.ReleaseJob(tenant)
		s.met.rejected.Inc()
		code, status := "queue_full", http.StatusTooManyRequests
		if errors.Is(err, jobs.ErrShutdown) {
			code, status = "shutting_down", http.StatusServiceUnavailable
		}
		if status == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", "1")
		}
		failCode(w, status, code, "%v", err)
		return
	}
	// The slot frees when the job reaches a terminal state — including a
	// cancel while still queued, which never runs the job's function.
	go func() {
		<-job.Done()
		s.gov.ReleaseJob(tenant)
	}()
	s.met.submitted.Inc()
	writeJSON(w, http.StatusAccepted, job.Snapshot())
}

func (sh *engineShard) handleJobList(w http.ResponseWriter, _ *http.Request) {
	list := sh.jobs.List()
	if list == nil {
		list = []jobs.Snapshot{}
	}
	writeJSON(w, http.StatusOK, list)
}

func (sh *engineShard) handleJobGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := sh.jobs.Get(id)
	if !ok {
		fail(w, http.StatusNotFound, "no job %q", id)
		return
	}
	writeJSON(w, http.StatusOK, j.Snapshot())
}

func (sh *engineShard) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	// Hold the *Job before cancelling: a concurrent Submit may evict the
	// now-terminal job from its manager, making a later Get return nil.
	j, ok := sh.jobs.Get(id)
	if !ok || !sh.jobs.Cancel(id) {
		fail(w, http.StatusNotFound, "no job %q", id)
		return
	}
	sh.srv.met.killed.Inc()
	writeJSON(w, http.StatusOK, j.Snapshot())
}

func (sh *engineShard) handlePatternList(w http.ResponseWriter, r *http.Request) {
	e, ok := sh.lookup(r.PathValue("id"))
	if !ok {
		fail(w, http.StatusNotFound, "no database %q", r.PathValue("id"))
		return
	}
	e.mu.Lock()
	infos := make([]SetInfo, 0, len(e.sets))
	for name, set := range e.sets {
		// count, not len(patterns): a spilled set's patterns are nil but its
		// metadata answers listings without touching disk.
		infos = append(infos, SetInfo{Name: name, Count: set.count,
			MinCount: set.minCount, Saved: set.saved})
	}
	e.mu.Unlock()
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	writeJSON(w, http.StatusOK, infos)
}

func (sh *engineShard) handlePatternGet(w http.ResponseWriter, r *http.Request) {
	e, ok := sh.lookup(r.PathValue("id"))
	if !ok {
		fail(w, http.StatusNotFound, "no database %q", r.PathValue("id"))
		return
	}
	name := r.PathValue("name")
	e.mu.Lock()
	if err := sh.hydrateLocked(e); err != nil {
		e.mu.Unlock()
		fail(w, http.StatusInternalServerError, "hydrate: %v", err)
		return
	}
	e.lastTouch = time.Now()
	set, ok := e.sets[name]
	e.mu.Unlock()
	if !ok {
		fail(w, http.StatusNotFound, "no saved pattern set %q", name)
		return
	}
	out := make([]MinePattern, len(set.patterns))
	for i, p := range set.patterns {
		out[i] = MinePattern{Items: p.Items, Support: p.Support}
	}
	writeJSON(w, http.StatusOK, out)
}

// fmtShardLabel labels one in-process shard for Backend.Addr.
func fmtShardLabel(id int) string { return fmt.Sprintf("local[%d]", id) }
