package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"gogreen/internal/dataset"
	"gogreen/internal/shard"
)

func newEntry() *entry {
	db := dataset.New([][]dataset.Item{{1, 2}, {1, 2}, {2, 3}})
	return &entry{db: db, stats: db.Stats(), sets: map[string]*savedSet{}, version: 1}
}

// TestSaveVersionCheck proves results mined from a replaced database are not
// saved over the new data: the save re-acquires the lock and compares the
// entry version against the mined snapshot's.
func TestSaveVersionCheck(t *testing.T) {
	s := New()
	defer s.Shutdown(context.Background())
	e := newEntry()
	sh := s.shards[0]
	sh.dbs["d"] = e

	// Replace the database between snapshot and save.
	s.mineHook = func() {
		e.mu.Lock()
		e.db = dataset.New([][]dataset.Item{{9}})
		e.stats = e.db.Stats()
		e.version++
		e.mu.Unlock()
	}
	resp, err := sh.mine(context.Background(), e, MineRequest{SaveAs: "stale"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.SaveSkipped || resp.SavedAs != "" {
		t.Fatalf("response = %+v, want save skipped", resp)
	}
	if len(e.sets) != 0 {
		t.Fatalf("stale result was saved: %v", e.sets)
	}

	// Without a replacement the save lands.
	s.mineHook = nil
	resp, err = sh.mine(context.Background(), e, MineRequest{SaveAs: "good"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if resp.SavedAs != "good" || resp.SaveSkipped {
		t.Fatalf("response = %+v, want saved", resp)
	}
	if _, ok := e.sets["good"]; !ok {
		t.Fatal("result not saved")
	}
}

// TestSaveLastWriterWins proves concurrent saves under one name resolve to
// the last writer rather than erroring or corrupting.
func TestSaveLastWriterWins(t *testing.T) {
	s := New()
	defer s.Shutdown(context.Background())
	e := newEntry()
	sh := s.shards[0]
	sh.dbs["d"] = e

	if _, err := sh.mine(context.Background(), e, MineRequest{SaveAs: "x", Use: "fresh"}, 2); err != nil {
		t.Fatal(err)
	}
	first := e.sets["x"]
	if _, err := sh.mine(context.Background(), e, MineRequest{SaveAs: "x", Use: "fresh"}, 1); err != nil {
		t.Fatal(err)
	}
	second := e.sets["x"]
	if second == first || second.minCount != 1 {
		t.Fatalf("last writer did not win: first=%p second=%p minCount=%d", first, second, second.minCount)
	}
}

// TestDeleteMidMineRefundsExactlyOnce audits the tenant byte-quota's
// exactly-once rule under the worst interleaving: a DELETE lands between a
// saving mine's input snapshot and its save. The delete settles the owner's
// quota (refunding every accounted byte); the mine must then observe the
// deleted flag and skip both the save and its charge — otherwise the tenant
// leaks phantom bytes no later delete can ever refund.
func TestDeleteMidMineRefundsExactlyOnce(t *testing.T) {
	s := New()
	defer s.Shutdown(context.Background())
	h := s.Handler()

	put := httptest.NewRequest("PUT", "/db/d", strings.NewReader("1 2\n1 2\n2 3\n"))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, put)
	if rec.Code != http.StatusCreated {
		t.Fatalf("put: %d %s", rec.Code, rec.Body)
	}

	// First, charge some bytes so the delete has a real refund to settle.
	sh := s.shards[s.ring.Owner("d")]
	e := sh.dbs["d"]
	if _, err := sh.mine(context.Background(), e, MineRequest{SaveAs: "warm"}, 2); err != nil {
		t.Fatal(err)
	}
	if u := s.gov.Usage(DefaultTenant); u.PatternBytes <= 0 {
		t.Fatalf("usage after warm save = %+v", u)
	}

	// The hook fires after the mine snapshots its input: delete the database
	// right there, so the save races the settled refund.
	s.mineHook = func() {
		del := httptest.NewRequest("DELETE", "/db/d", nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, del)
		if rec.Code != http.StatusNoContent {
			t.Errorf("mid-mine delete: %d %s", rec.Code, rec.Body)
		}
	}
	resp, err := sh.mine(context.Background(), e, MineRequest{SaveAs: "leak"}, 2)
	s.mineHook = nil
	if err != nil {
		t.Fatal(err)
	}
	if !resp.SaveSkipped || resp.SavedAs != "" {
		t.Fatalf("save against deleted db must be skipped: %+v", resp)
	}
	if u := s.gov.Usage(DefaultTenant); u.DBs != 0 || u.PatternBytes != 0 {
		t.Fatalf("leaked quota after delete-mid-mine: %+v", u)
	}
}

// TestQuotaZeroAfterConcurrentChurn hammers saving mines against concurrent
// deletes and re-uploads from multiple goroutines, then deletes everything:
// whatever interleavings happened, every tenant's accounted usage must return
// to exactly zero — the -race companion to the exactly-once audit above.
func TestQuotaZeroAfterConcurrentChurn(t *testing.T) {
	s := New(WithShards(2))
	defer s.Shutdown(context.Background())
	h := s.Handler()

	send := func(tenant, method, path, body string) int {
		req := httptest.NewRequest(method, path, strings.NewReader(body))
		req.Header.Set(TenantHeader, tenant)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec.Code
	}

	const rounds = 25
	ids := []string{"churn-a", "churn-b"}
	tenants := []string{"alice", "bob"}
	for i, id := range ids {
		if code := send(tenants[i], "PUT", "/db/"+id, "1 2\n1 2\n2 3\n1 3\n"); code != http.StatusCreated {
			t.Fatalf("put %s: %d", id, code)
		}
	}
	var wg sync.WaitGroup
	for i, id := range ids {
		wg.Add(1)
		go func(tenant, id string) { // saving miner
			defer wg.Done()
			for k := 0; k < rounds; k++ {
				send(tenant, "POST", "/db/"+id+"/mine", `{"min_count":2,"save_as":"r"}`)
			}
		}(tenants[i], id)
		wg.Add(1)
		go func(tenant, id string) { // churner: delete and re-upload
			defer wg.Done()
			for k := 0; k < rounds; k++ {
				send(tenant, "DELETE", "/db/"+id, "")
				send(tenant, "PUT", "/db/"+id, "1 2\n2 3\n")
			}
		}(tenants[i], id)
	}
	wg.Wait()

	for _, id := range ids {
		send("alice", "DELETE", "/db/"+id, "")
	}
	for _, tenant := range tenants {
		if u := s.gov.Usage(tenant); u.DBs != 0 || u.PatternBytes != 0 || u.QueuedJobs != 0 {
			t.Fatalf("tenant %s usage after full churn and delete = %+v, want zero", tenant, u)
		}
	}
}

// TestFailedAsyncJobReleasesSlot proves a job that errors (mining a saved
// set that does not exist) still frees its tenant job slot.
func TestFailedAsyncJobReleasesSlot(t *testing.T) {
	s := New(WithQuotas(shard.Quotas{MaxQueuedJobs: 1}))
	defer s.Shutdown(context.Background())
	h := s.Handler()

	put := httptest.NewRequest("PUT", "/db/d", strings.NewReader("1 2\n1 2\n"))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, put)
	if rec.Code != http.StatusCreated {
		t.Fatalf("put: %d %s", rec.Code, rec.Body)
	}
	req := httptest.NewRequest("POST", "/db/d/mine?async=1", strings.NewReader(`{"min_count":1,"use":"nope"}`))
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", rec.Code, rec.Body)
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.gov.Usage(DefaultTenant).QueuedJobs != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("failed job never released its slot: %+v", s.gov.Usage(DefaultTenant))
		}
		time.Sleep(2 * time.Millisecond)
	}
}
