package server

import (
	"context"
	"testing"

	"gogreen/internal/dataset"
)

func newEntry() *entry {
	db := dataset.New([][]dataset.Item{{1, 2}, {1, 2}, {2, 3}})
	return &entry{db: db, stats: db.Stats(), sets: map[string]*savedSet{}, version: 1}
}

// TestSaveVersionCheck proves results mined from a replaced database are not
// saved over the new data: the save re-acquires the lock and compares the
// entry version against the mined snapshot's.
func TestSaveVersionCheck(t *testing.T) {
	s := New()
	defer s.Shutdown(context.Background())
	e := newEntry()
	sh := s.shards[0]
	sh.dbs["d"] = e

	// Replace the database between snapshot and save.
	s.mineHook = func() {
		e.mu.Lock()
		e.db = dataset.New([][]dataset.Item{{9}})
		e.stats = e.db.Stats()
		e.version++
		e.mu.Unlock()
	}
	resp, err := sh.mine(context.Background(), e, MineRequest{SaveAs: "stale"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.SaveSkipped || resp.SavedAs != "" {
		t.Fatalf("response = %+v, want save skipped", resp)
	}
	if len(e.sets) != 0 {
		t.Fatalf("stale result was saved: %v", e.sets)
	}

	// Without a replacement the save lands.
	s.mineHook = nil
	resp, err = sh.mine(context.Background(), e, MineRequest{SaveAs: "good"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if resp.SavedAs != "good" || resp.SaveSkipped {
		t.Fatalf("response = %+v, want saved", resp)
	}
	if _, ok := e.sets["good"]; !ok {
		t.Fatal("result not saved")
	}
}

// TestSaveLastWriterWins proves concurrent saves under one name resolve to
// the last writer rather than erroring or corrupting.
func TestSaveLastWriterWins(t *testing.T) {
	s := New()
	defer s.Shutdown(context.Background())
	e := newEntry()
	sh := s.shards[0]
	sh.dbs["d"] = e

	if _, err := sh.mine(context.Background(), e, MineRequest{SaveAs: "x", Use: "fresh"}, 2); err != nil {
		t.Fatal(err)
	}
	first := e.sets["x"]
	if _, err := sh.mine(context.Background(), e, MineRequest{SaveAs: "x", Use: "fresh"}, 1); err != nil {
		t.Fatal(err)
	}
	second := e.sets["x"]
	if second == first || second.minCount != 1 {
		t.Fatalf("last writer did not win: first=%p second=%p minCount=%d", first, second, second.minCount)
	}
}
