// Package eclat implements Eclat (Zaki, 1997): frequent-pattern mining over
// a vertical layout, intersecting per-item transaction-id lists. It is not
// one of the paper's three adapted algorithms — it is included as an extra
// baseline for the ablation benchmarks, representing the vertical family
// that the compression scheme does not directly apply to.
package eclat

import (
	"gogreen/internal/dataset"
	"gogreen/internal/mining"
)

// Miner is the Eclat frequent-pattern miner.
type Miner struct{}

// New returns an Eclat miner.
func New() *Miner { return &Miner{} }

// Name implements mining.Miner.
func (*Miner) Name() string { return "eclat" }

// Mine implements mining.Miner.
func (*Miner) Mine(db *dataset.DB, minCount int, sink mining.Sink) error {
	if minCount < 1 {
		return mining.ErrBadMinSupport
	}
	flist := mining.BuildFList(db, minCount)
	if flist.Len() == 0 {
		return nil
	}
	// Build vertical tid-lists in rank space.
	tids := make([][]int32, flist.Len())
	for i, t := range db.All() {
		for _, it := range t {
			if r := flist.Rank(it); r >= 0 {
				tids[r] = append(tids[r], int32(i))
			}
		}
	}
	m := &ctx{flist: flist, min: minCount, sink: sink, decoded: make([]dataset.Item, flist.Len())}
	items := make([]dataset.Item, flist.Len())
	for r := range items {
		items[r] = dataset.Item(r)
	}
	m.mine(items, tids, nil)
	return nil
}

type ctx struct {
	flist   *mining.FList
	min     int
	sink    mining.Sink
	decoded []dataset.Item
}

// mine processes one equivalence class: items (ascending rank) with their
// tid-lists, all sharing prefix.
func (m *ctx) mine(items []dataset.Item, tids [][]int32, prefix []dataset.Item) {
	prefix = append(prefix, 0)
	for i, it := range items {
		prefix[len(prefix)-1] = it
		m.sink.Emit(m.flist.DecodeInto(m.decoded, prefix), len(tids[i]))

		var subItems []dataset.Item
		var subTids [][]int32
		for j := i + 1; j < len(items); j++ {
			inter := intersect(tids[i], tids[j])
			if len(inter) >= m.min {
				subItems = append(subItems, items[j])
				subTids = append(subTids, inter)
			}
		}
		if len(subItems) > 0 {
			m.mine(subItems, subTids, prefix)
		}
	}
}

// intersect returns the sorted intersection of two sorted tid-lists.
func intersect(a, b []int32) []int32 {
	out := make([]int32, 0, min(len(a), len(b)))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
