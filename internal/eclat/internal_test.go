package eclat

import (
	"math/rand"
	"sort"
	"testing"
)

// TestIntersect checks the tid-list merge against a map-based oracle.
func TestIntersect(t *testing.T) {
	cases := []struct {
		a, b, want []int32
	}{
		{nil, nil, nil},
		{[]int32{1, 2, 3}, nil, nil},
		{[]int32{1, 2, 3}, []int32{2, 3, 4}, []int32{2, 3}},
		{[]int32{1, 3, 5}, []int32{2, 4, 6}, nil},
		{[]int32{7}, []int32{7}, []int32{7}},
		{[]int32{1, 2, 3, 4, 5}, []int32{5}, []int32{5}},
	}
	for _, c := range cases {
		got := intersect(c.a, c.b)
		if len(got) != len(c.want) {
			t.Errorf("intersect(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("intersect(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
				break
			}
		}
	}
}

func TestIntersectRandomized(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for rep := 0; rep < 200; rep++ {
		a := randomTids(r)
		b := randomTids(r)
		got := intersect(a, b)
		inB := map[int32]bool{}
		for _, v := range b {
			inB[v] = true
		}
		var want []int32
		for _, v := range a {
			if inB[v] {
				want = append(want, v)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("intersect(%v, %v) = %v, want %v", a, b, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("intersect(%v, %v) = %v, want %v", a, b, got, want)
			}
		}
	}
}

func randomTids(r *rand.Rand) []int32 {
	n := r.Intn(20)
	seen := map[int32]bool{}
	var out []int32
	for len(out) < n {
		v := int32(r.Intn(40))
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
