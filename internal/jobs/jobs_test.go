package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func wait(t *testing.T, j *Job) Snapshot {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(5 * time.Second):
		t.Fatalf("job %s did not finish", j.ID())
	}
	return j.Snapshot()
}

func TestSubmitRun(t *testing.T) {
	m := New(2, 4)
	defer m.Shutdown(context.Background())
	j, err := m.Submit(func(context.Context) (any, error) { return 41 + 1, nil })
	if err != nil {
		t.Fatal(err)
	}
	s := wait(t, j)
	if s.Status != StatusDone || s.Result != 42 {
		t.Fatalf("snapshot = %+v", s)
	}
	f, _ := m.Submit(func(context.Context) (any, error) { return nil, errors.New("boom") })
	if s := wait(t, f); s.Status != StatusFailed || s.Error != "boom" {
		t.Fatalf("failed job = %+v", s)
	}
}

func TestQueueFullAndDepth(t *testing.T) {
	m := New(1, 1)
	defer m.Shutdown(context.Background())
	release := make(chan struct{})
	blocker, err := m.Submit(func(ctx context.Context) (any, error) { <-release; return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the blocker occupies the worker, then fill the queue.
	deadline := time.Now().Add(2 * time.Second)
	for m.Running() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("blocker never started")
		}
		time.Sleep(time.Millisecond)
	}
	queued, err := m.Submit(func(context.Context) (any, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	if m.Depth() != 1 {
		t.Fatalf("depth = %d, want 1", m.Depth())
	}
	if _, err := m.Submit(func(context.Context) (any, error) { return nil, nil }); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow submit err = %v, want ErrQueueFull", err)
	}
	close(release)
	wait(t, blocker)
	wait(t, queued)
	if m.Depth() != 0 {
		t.Fatalf("depth after drain = %d", m.Depth())
	}
}

func TestCancelQueuedAndRunning(t *testing.T) {
	m := New(1, 2)
	defer m.Shutdown(context.Background())
	started := make(chan struct{})
	running, _ := m.Submit(func(ctx context.Context) (any, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	})
	<-started
	queued, _ := m.Submit(func(context.Context) (any, error) { return "never", nil })

	if !m.Cancel(queued.ID()) {
		t.Fatal("cancel queued returned false")
	}
	if s := wait(t, queued); s.Status != StatusCancelled {
		t.Fatalf("queued job = %+v", s)
	}
	if !m.Cancel(running.ID()) {
		t.Fatal("cancel running returned false")
	}
	if s := wait(t, running); s.Status != StatusCancelled {
		t.Fatalf("running job = %+v", s)
	}
	if m.Cancel("nope") {
		t.Fatal("cancel of unknown job returned true")
	}
	// Cancelling a terminal job is a harmless no-op.
	if !m.Cancel(running.ID()) {
		t.Fatal("re-cancel returned false")
	}
}

// TestCancelDuringEviction races Submit-triggered eviction (which holds m.mu
// and takes each job's j.mu via Snapshot) against Cancel of queued jobs. A
// j.mu -> m.mu acquisition inside Cancel deadlocks this test; run under
// -race and -timeout it is the regression guard for the lock order.
func TestCancelDuringEviction(t *testing.T) {
	m := New(2, 64)
	m.retain = 4 // evict on nearly every Submit
	defer m.Shutdown(context.Background())

	ids := make(chan string, 256)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for id := range ids {
			m.Cancel(id)
		}
	}()
	for i := 0; i < 300; i++ {
		j, err := m.Submit(func(context.Context) (any, error) { return nil, nil })
		if err != nil {
			if errors.Is(err, ErrQueueFull) {
				time.Sleep(time.Millisecond)
				continue
			}
			t.Fatal(err)
		}
		ids <- j.ID()
	}
	close(ids)
	wg.Wait()
	if m.Depth() < 0 {
		t.Fatalf("queue depth went negative: %d", m.Depth())
	}
}

// TestSnapshotOmitsZeroTimes checks that a queued job's JSON has no
// started/finished fields and that they appear once set.
func TestSnapshotOmitsZeroTimes(t *testing.T) {
	m := New(1, 2)
	defer m.Shutdown(context.Background())
	release := make(chan struct{})
	blocker, err := m.Submit(func(ctx context.Context) (any, error) { <-release; return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for m.Running() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("blocker never started")
		}
		time.Sleep(time.Millisecond)
	}
	queued, err := m.Submit(func(context.Context) (any, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(queued.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if s := string(b); strings.Contains(s, `"started"`) || strings.Contains(s, `"finished"`) {
		t.Fatalf("queued snapshot leaks zero times: %s", s)
	}
	close(release)
	wait(t, blocker)
	if s := wait(t, queued); s.Started == nil || s.Finished == nil {
		t.Fatalf("finished snapshot missing times: %+v", s)
	}
}

func TestShutdownDrains(t *testing.T) {
	m := New(2, 8)
	var done int
	ch := make(chan struct{}, 8)
	for i := 0; i < 6; i++ {
		m.Submit(func(context.Context) (any, error) {
			time.Sleep(10 * time.Millisecond)
			ch <- struct{}{}
			return nil, nil
		})
	}
	if err := m.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	close(ch)
	for range ch {
		done++
	}
	if done != 6 {
		t.Fatalf("drained %d jobs, want 6", done)
	}
	if _, err := m.Submit(func(context.Context) (any, error) { return nil, nil }); !errors.Is(err, ErrShutdown) {
		t.Fatalf("submit after shutdown: %v", err)
	}
}

func TestShutdownDeadlineCancelsRunning(t *testing.T) {
	m := New(1, 1)
	j, _ := m.Submit(func(ctx context.Context) (any, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := m.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("shutdown err = %v", err)
	}
	if s := j.Snapshot(); s.Status != StatusCancelled {
		t.Fatalf("job after forced shutdown = %+v", s)
	}
}
