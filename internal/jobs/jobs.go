// Package jobs is the async job subsystem of the mining service: a bounded
// worker pool with per-job cancellation and graceful drain. Long mining runs
// are submitted as jobs so HTTP handlers return immediately; the queue bound
// is the service's load-shedding point (a full queue maps to 429 upstream).
package jobs

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Status is a job's lifecycle state.
type Status string

// Job states. Terminal states are Done, Failed, and Cancelled.
const (
	StatusQueued    Status = "queued"
	StatusRunning   Status = "running"
	StatusDone      Status = "done"
	StatusFailed    Status = "failed"
	StatusCancelled Status = "cancelled"
)

// Terminal reports whether s is a final state.
func (s Status) Terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusCancelled
}

// Fn is the work a job performs. It must honor ctx: cancellation (via
// Manager.Cancel or shutdown) is delivered through it.
type Fn func(ctx context.Context) (any, error)

// ErrQueueFull is returned by Submit when the queue bound is reached.
var ErrQueueFull = errors.New("jobs: queue full")

// ErrShutdown is returned by Submit after Shutdown has begun.
var ErrShutdown = errors.New("jobs: manager is shut down")

// Job is one submitted unit of work.
type Job struct {
	id string
	fn Fn

	mu       sync.Mutex
	status   Status
	result   any
	err      error
	cancel   context.CancelCauseFunc
	created  time.Time
	started  time.Time
	finished time.Time

	done chan struct{} // closed on reaching a terminal state
}

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Snapshot is a point-in-time copy of a job's state. Started and Finished
// are pointers so jobs that have not reached those states omit the fields
// instead of serializing the zero time.
type Snapshot struct {
	ID       string     `json:"id"`
	Status   Status     `json:"status"`
	Created  time.Time  `json:"created"`
	Started  *time.Time `json:"started,omitempty"`
	Finished *time.Time `json:"finished,omitempty"`
	Result   any        `json:"result,omitempty"`
	Error    string     `json:"error,omitempty"`
}

// Snapshot copies the job's current state.
func (j *Job) Snapshot() Snapshot {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := Snapshot{ID: j.id, Status: j.status, Created: j.created}
	if !j.started.IsZero() {
		t := j.started
		s.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		s.Finished = &t
	}
	if j.status == StatusDone {
		s.Result = j.result
	}
	if j.err != nil {
		s.Error = j.err.Error()
	}
	return s
}

// Manager runs jobs on a fixed pool of workers over a bounded queue.
type Manager struct {
	queue   chan *Job
	prefix  string
	baseCtx context.Context
	stop    context.CancelFunc

	mu      sync.Mutex
	jobs    map[string]*Job
	order   []string // submission order, for eviction and listing
	seq     int64
	closed  bool
	queued  int
	running int
	retain  int

	wg sync.WaitGroup
}

// New starts a manager with the given worker count and queue capacity
// (both forced to at least 1). Completed jobs are retained for polling;
// once more than retain (default 1024) jobs exist, the oldest finished
// ones are evicted.
func New(workers, queueCap int) *Manager { return NewPrefixed("", workers, queueCap) }

// NewPrefixed is New with a job-id prefix: ids become "<prefix>j<seq>".
// Callers running several managers side by side (one per engine shard) give
// each a distinct prefix so ids stay globally unique and self-describing; an
// empty prefix keeps the classic "j<seq>" form.
func NewPrefixed(prefix string, workers, queueCap int) *Manager {
	if workers < 1 {
		workers = 1
	}
	if queueCap < 1 {
		queueCap = 1
	}
	ctx, stop := context.WithCancel(context.Background())
	m := &Manager{
		queue:   make(chan *Job, queueCap),
		prefix:  prefix,
		baseCtx: ctx,
		stop:    stop,
		jobs:    map[string]*Job{},
		retain:  1024,
	}
	m.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go m.worker()
	}
	return m
}

// Submit enqueues fn. It never blocks: when the queue is full it returns
// ErrQueueFull, after Shutdown it returns ErrShutdown.
func (m *Manager) Submit(fn Fn) (*Job, error) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrShutdown
	}
	m.seq++
	j := &Job{
		id:      fmt.Sprintf("%sj%d", m.prefix, m.seq),
		fn:      fn,
		status:  StatusQueued,
		created: time.Now(),
		done:    make(chan struct{}),
	}
	select {
	case m.queue <- j:
	default:
		m.seq-- // the job never existed
		m.mu.Unlock()
		return nil, ErrQueueFull
	}
	m.jobs[j.id] = j
	m.order = append(m.order, j.id)
	m.queued++
	m.evictLocked()
	m.mu.Unlock()
	return j, nil
}

// evictLocked drops the oldest terminal jobs beyond the retention bound.
func (m *Manager) evictLocked() {
	excess := len(m.jobs) - m.retain
	if excess <= 0 {
		return
	}
	kept := m.order[:0]
	for _, id := range m.order {
		j := m.jobs[id]
		if excess > 0 && j != nil && j.Snapshot().Status.Terminal() {
			delete(m.jobs, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	m.order = kept
}

// Get returns the job by id.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// List returns snapshots of every retained job in submission order.
func (m *Manager) List() []Snapshot {
	m.mu.Lock()
	ids := append([]string(nil), m.order...)
	jobs := make([]*Job, 0, len(ids))
	for _, id := range ids {
		if j, ok := m.jobs[id]; ok {
			jobs = append(jobs, j)
		}
	}
	m.mu.Unlock()
	out := make([]Snapshot, len(jobs))
	for i, j := range jobs {
		out[i] = j.Snapshot()
	}
	sort.Slice(out, func(i, k int) bool { return out[i].Created.Before(out[k].Created) })
	return out
}

// Cancel cancels the job by id: a queued job is marked cancelled and skipped
// by workers, a running job has its context cancelled (the job reaches a
// terminal state when its Fn returns). Cancel reports whether the job exists;
// cancelling a terminal job is a no-op.
func (m *Manager) Cancel(id string) bool {
	j, ok := m.Get(id)
	if !ok {
		return false
	}
	// Lock order is m.mu -> j.mu everywhere (Submit holds m.mu and takes j.mu
	// via evictLocked), so m.queued must be updated after releasing j.mu.
	wasQueued := false
	j.mu.Lock()
	switch j.status {
	case StatusQueued:
		j.status = StatusCancelled
		j.err = context.Canceled
		j.finished = time.Now()
		close(j.done)
		wasQueued = true
	case StatusRunning:
		j.cancel(context.Canceled)
	}
	j.mu.Unlock()
	if wasQueued {
		m.mu.Lock()
		m.queued--
		m.mu.Unlock()
	}
	return true
}

// Depth returns the number of queued (not yet running) jobs.
func (m *Manager) Depth() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.queued
}

// Running returns the number of currently executing jobs.
func (m *Manager) Running() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.running
}

// Shutdown stops accepting jobs and drains: it waits for queued and running
// jobs to finish until ctx is done, then cancels whatever still runs and
// waits for the workers to exit. Returns ctx.Err() when the drain deadline
// was hit, else nil.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		m.wg.Wait()
		return nil
	}
	m.closed = true
	m.mu.Unlock()
	close(m.queue)

	drained := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(drained)
	}()
	var err error
	select {
	case <-drained:
	case <-ctx.Done():
		err = ctx.Err()
		m.stop() // cancel running jobs; workers exit once their Fn returns
		<-drained
	}
	m.stop()
	return err
}

// worker executes jobs until the queue is closed and empty.
func (m *Manager) worker() {
	defer m.wg.Done()
	for j := range m.queue {
		m.run(j)
	}
}

func (m *Manager) run(j *Job) {
	ctx, cancel := context.WithCancelCause(m.baseCtx)
	defer cancel(nil)

	j.mu.Lock()
	if j.status != StatusQueued { // cancelled while waiting
		j.mu.Unlock()
		return
	}
	j.status = StatusRunning
	j.started = time.Now()
	j.cancel = cancel
	j.mu.Unlock()
	m.mu.Lock()
	m.queued--
	m.running++
	m.mu.Unlock()

	result, err := j.fn(ctx)

	m.mu.Lock()
	m.running--
	m.mu.Unlock()
	j.mu.Lock()
	j.finished = time.Now()
	j.result, j.err = result, err
	switch {
	case err == nil:
		j.status = StatusDone
	case errors.Is(err, context.Canceled):
		j.status = StatusCancelled
	default:
		j.status = StatusFailed
	}
	close(j.done)
	j.mu.Unlock()
}
