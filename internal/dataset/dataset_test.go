package dataset_test

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"gogreen/internal/dataset"
)

func TestCanonical(t *testing.T) {
	cases := []struct {
		in, want []dataset.Item
	}{
		{nil, []dataset.Item{}},
		{[]dataset.Item{3}, []dataset.Item{3}},
		{[]dataset.Item{3, 1, 2}, []dataset.Item{1, 2, 3}},
		{[]dataset.Item{5, 5, 5}, []dataset.Item{5}},
		{[]dataset.Item{2, 1, 2, 1}, []dataset.Item{1, 2}},
	}
	for _, c := range cases {
		got := dataset.Canonical(c.in)
		if len(got) != len(c.want) {
			t.Errorf("Canonical(%v) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("Canonical(%v) = %v, want %v", c.in, got, c.want)
				break
			}
		}
	}
}

// TestCanonicalProperties uses testing/quick: output sorted, unique, subset
// of input, input multiset preserved as set.
func TestCanonicalProperties(t *testing.T) {
	f := func(raw []int16) bool {
		in := make([]dataset.Item, len(raw))
		set := map[dataset.Item]bool{}
		for i, v := range raw {
			it := dataset.Item(v) & 0x7fff
			in[i] = it
			set[it] = true
		}
		got := dataset.Canonical(in)
		if len(got) != len(set) {
			return false
		}
		for i, it := range got {
			if !set[it] {
				return false
			}
			if i > 0 && got[i-1] >= it {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestContains(t *testing.T) {
	tx := []dataset.Item{1, 3, 5, 7, 9}
	cases := []struct {
		p    []dataset.Item
		want bool
	}{
		{nil, true},
		{[]dataset.Item{1}, true},
		{[]dataset.Item{9}, true},
		{[]dataset.Item{1, 9}, true},
		{[]dataset.Item{3, 5, 7}, true},
		{[]dataset.Item{1, 3, 5, 7, 9}, true},
		{[]dataset.Item{2}, false},
		{[]dataset.Item{1, 2}, false},
		{[]dataset.Item{0, 1}, false},
		{[]dataset.Item{9, 10}, false},
		{[]dataset.Item{1, 3, 5, 7, 9, 11}, false},
	}
	for _, c := range cases {
		if got := dataset.Contains(tx, c.p); got != c.want {
			t.Errorf("Contains(%v, %v) = %v, want %v", tx, c.p, got, c.want)
		}
	}
}

// TestContainsAgainstMap cross-checks Contains with a map implementation.
func TestContainsAgainstMap(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for rep := 0; rep < 500; rep++ {
		tx := make([]dataset.Item, r.Intn(12))
		for i := range tx {
			tx[i] = dataset.Item(r.Intn(20))
		}
		tx = dataset.Canonical(tx)
		p := make([]dataset.Item, r.Intn(6))
		for i := range p {
			p[i] = dataset.Item(r.Intn(20))
		}
		p = dataset.Canonical(p)
		want := true
		m := map[dataset.Item]bool{}
		for _, it := range tx {
			m[it] = true
		}
		for _, it := range p {
			if !m[it] {
				want = false
			}
		}
		if got := dataset.Contains(tx, p); got != want {
			t.Fatalf("Contains(%v, %v) = %v, want %v", tx, p, got, want)
		}
	}
}

func TestStatsAndAccessors(t *testing.T) {
	db := dataset.New([][]dataset.Item{
		{5, 1, 5, 3}, // canonicalizes to {1,3,5}
		{2},
		{},
	})
	st := db.Stats()
	if st.NumTx != 3 || st.NumItems != 4 || st.MaxLen != 3 || st.Cells != 4 {
		t.Errorf("stats = %+v", st)
	}
	if db.MaxItem() != 5 {
		t.Errorf("MaxItem = %d", db.MaxItem())
	}
	counts := db.ItemCounts()
	if counts[1] != 1 || counts[2] != 1 || counts[5] != 1 || counts[0] != 0 {
		t.Errorf("counts = %v", counts)
	}
	if db.NumItems() != 4 {
		t.Errorf("NumItems = %d", db.NumItems())
	}
	if got := db.String(); !strings.Contains(got, "3 tx") {
		t.Errorf("String = %q", got)
	}

	empty := dataset.New(nil)
	if empty.MaxItem() != -1 || empty.Len() != 0 || empty.Stats().AvgLen != 0 {
		t.Error("empty db accessors")
	}
}

func TestDict(t *testing.T) {
	d := dataset.NewDict()
	a := d.Intern("apple")
	b := d.Intern("banana")
	if a2 := d.Intern("apple"); a2 != a {
		t.Errorf("re-intern apple: %d != %d", a2, a)
	}
	if d.Len() != 2 {
		t.Errorf("Len = %d", d.Len())
	}
	if d.Name(a) != "apple" || d.Name(b) != "banana" {
		t.Error("names")
	}
	if d.Name(99) != "" {
		t.Error("unknown id should render empty")
	}
	if _, ok := d.Lookup("cherry"); ok {
		t.Error("cherry should be unknown")
	}
	names := d.Names([]dataset.Item{b, a})
	if names[0] != "banana" || names[1] != "apple" {
		t.Errorf("Names = %v", names)
	}
	var nilDict *dataset.Dict
	if nilDict.Len() != 0 || nilDict.Name(0) != "" {
		t.Error("nil dict accessors")
	}
}

func TestBasketRoundTrip(t *testing.T) {
	db := dataset.FromNames([][]string{
		{"milk", "bread", "milk"},
		{"beer"},
		{"bread", "beer", "chips"},
	})
	var buf bytes.Buffer
	if err := dataset.WriteBasket(&buf, db); err != nil {
		t.Fatal(err)
	}
	back, err := dataset.ReadBasket(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != db.Len() {
		t.Fatalf("round trip %d tuples, want %d", back.Len(), db.Len())
	}
	// Same names per tuple (ids may differ).
	for i := 0; i < db.Len(); i++ {
		a := db.Dict().Names(db.Tx(i))
		b := back.Dict().Names(back.Tx(i))
		am := map[string]bool{}
		for _, n := range a {
			am[n] = true
		}
		if len(a) != len(b) {
			t.Fatalf("tuple %d: %v vs %v", i, a, b)
		}
		for _, n := range b {
			if !am[n] {
				t.Fatalf("tuple %d: %v vs %v", i, a, b)
			}
		}
	}
}

func TestBasketIDsRoundTrip(t *testing.T) {
	db := dataset.New([][]dataset.Item{{1, 2, 3}, {9}, {2, 7}})
	var buf bytes.Buffer
	if err := dataset.WriteBasket(&buf, db); err != nil {
		t.Fatal(err)
	}
	back, err := dataset.ReadBasketIDs(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < db.Len(); i++ {
		a, b := db.Tx(i), back.Tx(i)
		if len(a) != len(b) {
			t.Fatalf("tuple %d", i)
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("tuple %d item %d", i, j)
			}
		}
	}
}

func TestBasketParsing(t *testing.T) {
	db, err := dataset.ReadBasketIDs(strings.NewReader("1 2 3\n\n# comment\n 4\t5 \n"))
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() != 2 {
		t.Fatalf("got %d tuples, want 2 (blank and comment skipped)", db.Len())
	}
	if len(db.Tx(1)) != 2 || db.Tx(1)[0] != 4 || db.Tx(1)[1] != 5 {
		t.Errorf("tuple 1 = %v", db.Tx(1))
	}
}

func TestBasketIDsErrors(t *testing.T) {
	for _, bad := range []string{"1 x 3\n", "-4\n", "99999999999\n"} {
		if _, err := dataset.ReadBasketIDs(strings.NewReader(bad)); err == nil {
			t.Errorf("ReadBasketIDs(%q): expected error", bad)
		}
	}
}

func TestReadBasketFileMissing(t *testing.T) {
	if _, err := dataset.ReadBasketFile("/nonexistent/path/x.basket"); err == nil {
		t.Fatal("expected error")
	}
	if _, err := dataset.ReadBasketIDsFile("/nonexistent/path/x.basket"); err == nil {
		t.Fatal("expected error")
	}
}
