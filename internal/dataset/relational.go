package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
)

// Relational ingestion: categorical tables become transaction databases the
// way the paper's dense datasets (Connect-4 game positions, Pumsb census
// rows) were built — every (attribute, value) pair is one item, so a row of
// k attributes becomes a k-item tuple. Items are named "column=value" in
// the dictionary.

// RelationalOptions tunes FromRelational and ReadCSV.
type RelationalOptions struct {
	// SkipColumns names columns to drop (e.g. row ids, free text).
	SkipColumns []string
	// MissingValues are cell contents treated as absent (no item emitted);
	// defaults to {"", "?"} when nil.
	MissingValues []string
}

func (o RelationalOptions) missing() map[string]bool {
	vals := o.MissingValues
	if vals == nil {
		vals = []string{"", "?"}
	}
	m := make(map[string]bool, len(vals))
	for _, v := range vals {
		m[v] = true
	}
	return m
}

// FromRelational converts a categorical table into a transaction database.
// header names the columns; every row must have len(header) cells.
func FromRelational(header []string, rows [][]string, opts RelationalOptions) (*DB, error) {
	skip := make(map[int]bool)
	for _, name := range opts.SkipColumns {
		found := false
		for i, h := range header {
			if h == name {
				skip[i] = true
				found = true
			}
		}
		if !found {
			return nil, fmt.Errorf("dataset: skip column %q not in header", name)
		}
	}
	missing := opts.missing()

	d := NewDict()
	tx := make([][]Item, 0, len(rows))
	for ri, row := range rows {
		if len(row) != len(header) {
			return nil, fmt.Errorf("dataset: row %d has %d cells, header has %d",
				ri, len(row), len(header))
		}
		t := make([]Item, 0, len(row))
		for ci, cell := range row {
			if skip[ci] || missing[cell] {
				continue
			}
			t = append(t, d.Intern(header[ci]+"="+cell))
		}
		tx = append(tx, Canonical(t))
	}
	return withDict(tx, d), nil
}

// ReadCSV reads a categorical CSV table into a transaction database. When
// hasHeader is false, columns are named c0, c1, ….
func ReadCSV(r io.Reader, hasHeader bool, opts RelationalOptions) (*DB, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = false
	all, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("dataset: csv: %w", err)
	}
	if len(all) == 0 {
		return nil, fmt.Errorf("dataset: csv: empty input")
	}
	var header []string
	var rows [][]string
	if hasHeader {
		header = all[0]
		rows = all[1:]
	} else {
		header = make([]string, len(all[0]))
		for i := range header {
			header[i] = fmt.Sprintf("c%d", i)
		}
		rows = all
	}
	return FromRelational(header, rows, opts)
}

// ReadCSVFile reads a categorical CSV file.
func ReadCSVFile(path string, hasHeader bool, opts RelationalOptions) (*DB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	db, err := ReadCSV(f, hasHeader, opts)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return db, nil
}
