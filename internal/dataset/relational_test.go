package dataset_test

import (
	"strings"
	"testing"

	"gogreen/internal/dataset"
)

func TestFromRelational(t *testing.T) {
	header := []string{"color", "size", "id"}
	rows := [][]string{
		{"red", "L", "1"},
		{"red", "M", "2"},
		{"blue", "?", "3"},
	}
	db, err := dataset.FromRelational(header, rows, dataset.RelationalOptions{
		SkipColumns: []string{"id"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() != 3 {
		t.Fatalf("tuples = %d", db.Len())
	}
	if got := len(db.Tx(0)); got != 2 {
		t.Errorf("row 0 items = %d, want 2", got)
	}
	if got := len(db.Tx(2)); got != 1 { // '?' is missing by default
		t.Errorf("row 2 items = %d, want 1", got)
	}
	names := db.Dict().Names(db.Tx(0))
	found := map[string]bool{}
	for _, n := range names {
		found[n] = true
	}
	if !found["color=red"] || !found["size=L"] {
		t.Errorf("row 0 names = %v", names)
	}
	// Same value in same column maps to the same item.
	if db.Tx(0)[0] != db.Tx(1)[0] {
		id0, _ := db.Dict().Lookup("color=red")
		if !containsItem(db.Tx(1), id0) {
			t.Error("color=red not shared between rows")
		}
	}
}

func containsItem(t []dataset.Item, it dataset.Item) bool {
	for _, x := range t {
		if x == it {
			return true
		}
	}
	return false
}

func TestFromRelationalErrors(t *testing.T) {
	if _, err := dataset.FromRelational([]string{"a"}, [][]string{{"x", "y"}}, dataset.RelationalOptions{}); err == nil {
		t.Error("ragged row accepted")
	}
	if _, err := dataset.FromRelational([]string{"a"}, nil, dataset.RelationalOptions{SkipColumns: []string{"zzz"}}); err == nil {
		t.Error("unknown skip column accepted")
	}
}

func TestReadCSV(t *testing.T) {
	in := "color,size\nred,L\nred,M\nblue,L\n"
	db, err := dataset.ReadCSV(strings.NewReader(in), true, dataset.RelationalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() != 3 || db.NumItems() != 4 {
		t.Fatalf("stats: %d tuples, %d items", db.Len(), db.NumItems())
	}

	// Headerless: synthesized column names.
	db2, err := dataset.ReadCSV(strings.NewReader("red,L\nblue,M\n"), false, dataset.RelationalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := db2.Dict().Lookup("c0=red"); !ok {
		t.Error("synthesized column names missing")
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := dataset.ReadCSV(strings.NewReader(""), true, dataset.RelationalOptions{}); err == nil {
		t.Error("empty csv accepted")
	}
	if _, err := dataset.ReadCSV(strings.NewReader("a,b\nx\n"), true, dataset.RelationalOptions{}); err == nil {
		t.Error("ragged csv accepted")
	}
	if _, err := dataset.ReadCSVFile("/nonexistent.csv", true, dataset.RelationalOptions{}); err == nil {
		t.Error("missing file accepted")
	}
}

func TestCustomMissingValues(t *testing.T) {
	db, err := dataset.FromRelational([]string{"a"}, [][]string{{"NA"}, {"x"}},
		dataset.RelationalOptions{MissingValues: []string{"NA"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(db.Tx(0)) != 0 || len(db.Tx(1)) != 1 {
		t.Errorf("missing handling: %v %v", db.Tx(0), db.Tx(1))
	}
}
