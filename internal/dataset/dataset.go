// Package dataset provides the transaction-database substrate used by every
// miner in this repository: an item dictionary, an immutable horizontal
// transaction database, basket-format IO, and summary statistics (the
// left-hand columns of Table 3 in the paper).
package dataset

import (
	"fmt"
	"sort"
)

// Item is a dictionary-encoded item identifier. Ids are dense and start at 0.
type Item int32

// Transaction is a set of items, stored sorted ascending by id with no
// duplicates. Transactions are value slices; callers must not mutate
// transactions obtained from a DB.
type Transaction = []Item

// DB is an immutable horizontal transaction database. The zero value is an
// empty database with no dictionary.
type DB struct {
	tx   [][]Item
	dict *Dict
}

// New builds a database from raw transactions. Each transaction is
// canonicalized: sorted ascending and de-duplicated. The input slices are
// copied, so the caller may reuse them. The database has no dictionary; use
// FromNames when items carry external names.
func New(tx [][]Item) *DB {
	out := make([][]Item, len(tx))
	for i, t := range tx {
		out[i] = Canonical(t)
	}
	return &DB{tx: out}
}

// FromNames builds a database (and its dictionary) from transactions of
// named items. Duplicate names within one transaction collapse.
func FromNames(rows [][]string) *DB {
	d := NewDict()
	tx := make([][]Item, len(rows))
	for i, row := range rows {
		t := make([]Item, 0, len(row))
		for _, name := range row {
			t = append(t, d.Intern(name))
		}
		tx[i] = Canonical(t)
	}
	return &DB{tx: tx, dict: d}
}

// withDict returns a DB over tx using the given dictionary. Internal use by
// readers; transactions must already be canonical.
func withDict(tx [][]Item, d *Dict) *DB { return &DB{tx: tx, dict: d} }

// Canonical returns a sorted, de-duplicated copy of t.
func Canonical(t []Item) []Item {
	c := make([]Item, len(t))
	copy(c, t)
	sort.Slice(c, func(i, j int) bool { return c[i] < c[j] })
	// De-duplicate in place.
	w := 0
	for i, v := range c {
		if i == 0 || v != c[w-1] {
			c[w] = v
			w++
		}
	}
	return c[:w]
}

// Len returns the number of transactions.
func (db *DB) Len() int { return len(db.tx) }

// Tx returns the i-th transaction. The returned slice must not be mutated.
func (db *DB) Tx(i int) Transaction { return db.tx[i] }

// All returns the underlying transaction slice. Read-only.
func (db *DB) All() [][]Item { return db.tx }

// Dict returns the item dictionary, or nil when items are anonymous ids.
func (db *DB) Dict() *Dict { return db.dict }

// NumItems returns the number of distinct items appearing in the database.
func (db *DB) NumItems() int {
	seen := map[Item]struct{}{}
	for _, t := range db.tx {
		for _, it := range t {
			seen[it] = struct{}{}
		}
	}
	return len(seen)
}

// MaxItem returns the largest item id present, or -1 for an empty database.
func (db *DB) MaxItem() Item {
	max := Item(-1)
	for _, t := range db.tx {
		if n := len(t); n > 0 && t[n-1] > max {
			max = t[n-1]
		}
	}
	return max
}

// Stats summarizes a database the way Table 3 of the paper does.
type Stats struct {
	NumTx    int     // number of tuples
	NumItems int     // number of distinct items
	AvgLen   float64 // average tuple length
	MaxLen   int     // maximum tuple length
	Cells    int     // total item occurrences (size proxy used for ratios)
}

// Stats computes summary statistics in one pass.
func (db *DB) Stats() Stats {
	s := Stats{NumTx: len(db.tx)}
	seen := map[Item]struct{}{}
	for _, t := range db.tx {
		s.Cells += len(t)
		if len(t) > s.MaxLen {
			s.MaxLen = len(t)
		}
		for _, it := range t {
			seen[it] = struct{}{}
		}
	}
	s.NumItems = len(seen)
	if s.NumTx > 0 {
		s.AvgLen = float64(s.Cells) / float64(s.NumTx)
	}
	return s
}

// ItemCounts returns per-item supports indexed by item id
// (length MaxItem+1).
func (db *DB) ItemCounts() []int {
	n := int(db.MaxItem()) + 1
	counts := make([]int, n)
	for _, t := range db.tx {
		for _, it := range t {
			counts[it]++
		}
	}
	return counts
}

// Contains reports whether transaction t (sorted) contains all items of
// pattern p (sorted). Both must be canonical.
func Contains(t, p []Item) bool {
	if len(p) > len(t) {
		return false
	}
	i := 0
	for _, want := range p {
		for i < len(t) && t[i] < want {
			i++
		}
		if i == len(t) || t[i] != want {
			return false
		}
		i++
	}
	return true
}

// String renders a small database for debugging; large databases are
// abbreviated.
func (db *DB) String() string {
	const maxShow = 20
	s := fmt.Sprintf("DB{%d tx", len(db.tx))
	n := len(db.tx)
	if n > maxShow {
		n = maxShow
	}
	for i := 0; i < n; i++ {
		s += fmt.Sprintf("; %v", db.tx[i])
	}
	if len(db.tx) > maxShow {
		s += "; ..."
	}
	return s + "}"
}
