package dataset

// Dict maps external item names to dense Item ids and back. It is not safe
// for concurrent mutation.
type Dict struct {
	ids   map[string]Item
	names []string
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{ids: make(map[string]Item)}
}

// Intern returns the id for name, assigning the next dense id on first use.
func (d *Dict) Intern(name string) Item {
	if id, ok := d.ids[name]; ok {
		return id
	}
	id := Item(len(d.names))
	d.ids[name] = id
	d.names = append(d.names, name)
	return id
}

// Lookup returns the id for name and whether it is known.
func (d *Dict) Lookup(name string) (Item, bool) {
	id, ok := d.ids[name]
	return id, ok
}

// Name returns the external name for id, or "" when unknown.
func (d *Dict) Name(id Item) string {
	if d == nil || id < 0 || int(id) >= len(d.names) {
		return ""
	}
	return d.names[id]
}

// Len returns the number of interned names.
func (d *Dict) Len() int {
	if d == nil {
		return 0
	}
	return len(d.names)
}

// Names returns external names for a slice of ids, useful when printing
// patterns. Unknown ids render as "".
func (d *Dict) Names(ids []Item) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = d.Name(id)
	}
	return out
}
