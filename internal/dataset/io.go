package dataset

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
)

// Basket format: one transaction per line, items separated by whitespace.
// Items may be arbitrary tokens (interned through a Dict) or, with
// ReadBasketIDs, decimal item ids. Blank lines and lines starting with '#'
// are skipped. This is the de-facto interchange format of the FIMI frequent
// itemset mining repository, which hosts the paper's Connect-4 and Pumsb
// datasets.

// ReadBasket reads named-token basket data, interning tokens in a fresh Dict.
func ReadBasket(r io.Reader) (*DB, error) {
	d := NewDict()
	var tx [][]Item
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	line := 0
	for sc.Scan() {
		line++
		row, skip := splitFields(sc.Text())
		if skip {
			continue
		}
		t := make([]Item, 0, len(row))
		for _, tok := range row {
			t = append(t, d.Intern(tok))
		}
		tx = append(tx, Canonical(t))
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("basket read: line %d: %w", line, err)
	}
	return withDict(tx, d), nil
}

// ReadBasketIDs reads basket data whose tokens are decimal item ids. No
// dictionary is attached. A malformed token is an error.
func ReadBasketIDs(r io.Reader) (*DB, error) {
	var tx [][]Item
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	line := 0
	for sc.Scan() {
		line++
		row, skip := splitFields(sc.Text())
		if skip {
			continue
		}
		t := make([]Item, 0, len(row))
		for _, tok := range row {
			v, err := strconv.ParseInt(tok, 10, 32)
			if err != nil || v < 0 {
				return nil, fmt.Errorf("basket read: line %d: bad item id %q", line, tok)
			}
			t = append(t, Item(v))
		}
		tx = append(tx, Canonical(t))
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("basket read: line %d: %w", line, err)
	}
	return New(tx), nil
}

// ReadBasketFile reads a named-token basket file.
func ReadBasketFile(path string) (*DB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	db, err := ReadBasket(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return db, nil
}

// ReadBasketIDsFile reads a numeric-id basket file.
func ReadBasketIDsFile(path string) (*DB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	db, err := ReadBasketIDs(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return db, nil
}

// WriteBasket writes the database in basket format. When the database has a
// dictionary, names are written; otherwise decimal ids.
func WriteBasket(w io.Writer, db *DB) error {
	bw := bufio.NewWriter(w)
	for _, t := range db.All() {
		for j, it := range t {
			if j > 0 {
				if err := bw.WriteByte(' '); err != nil {
					return err
				}
			}
			var tok string
			if db.Dict() != nil {
				tok = db.Dict().Name(it)
			} else {
				tok = strconv.Itoa(int(it))
			}
			if _, err := bw.WriteString(tok); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteBasketFile writes the database to path in basket format.
func WriteBasketFile(path string, db *DB) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteBasket(f, db); err != nil {
		f.Close()
		return fmt.Errorf("%s: %w", path, err)
	}
	return f.Close()
}

// splitFields splits a basket line into tokens, reporting skip for blank and
// comment lines.
func splitFields(s string) (fields []string, skip bool) {
	start := -1
	for i := 0; i <= len(s); i++ {
		if i < len(s) && s[i] != ' ' && s[i] != '\t' && s[i] != '\r' {
			if start < 0 {
				start = i
			}
			continue
		}
		if start >= 0 {
			fields = append(fields, s[start:i])
			start = -1
		}
	}
	if len(fields) == 0 {
		return nil, true
	}
	if fields[0][0] == '#' {
		return nil, true
	}
	return fields, false
}
