package dataset_test

import (
	"bytes"
	"strings"
	"testing"

	"gogreen/internal/dataset"
)

// FuzzReadBasketIDs: arbitrary input never panics; accepted input
// round-trips through WriteBasket.
func FuzzReadBasketIDs(f *testing.F) {
	f.Add("1 2 3\n4 5\n")
	f.Add("")
	f.Add("# comment\n\n7\n")
	f.Add("0\n0 0 0\n")
	f.Add("999999 1\n")
	f.Fuzz(func(t *testing.T, input string) {
		db, err := dataset.ReadBasketIDs(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := dataset.WriteBasket(&buf, db); err != nil {
			t.Fatalf("write after successful read: %v", err)
		}
		back, err := dataset.ReadBasketIDs(&buf)
		if err != nil {
			t.Fatalf("re-read of own output: %v", err)
		}
		if back.Len() != db.Len() {
			t.Fatalf("round trip changed tuple count: %d vs %d", back.Len(), db.Len())
		}
		for i := 0; i < db.Len(); i++ {
			a, b := db.Tx(i), back.Tx(i)
			if len(a) != len(b) {
				t.Fatalf("tuple %d length changed", i)
			}
			for j := range a {
				if a[j] != b[j] {
					t.Fatalf("tuple %d changed", i)
				}
			}
		}
	})
}

// FuzzReadCSV: arbitrary CSV input never panics.
func FuzzReadCSV(f *testing.F) {
	f.Add("a,b\n1,2\n", true)
	f.Add("x,y\n", false)
	f.Add("\"q\"\"uote\",v\n", false)
	f.Fuzz(func(t *testing.T, input string, header bool) {
		db, err := dataset.ReadCSV(strings.NewReader(input), header, dataset.RelationalOptions{})
		if err == nil && db.Len() > 0 {
			_ = db.Stats()
		}
	})
}
