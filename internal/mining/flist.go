package mining

import (
	"sort"

	"gogreen/internal/dataset"
)

// FList is the paper's frequent list (Definition 3.1): the frequent items of
// a database ordered by ascending support, ties broken by ascending item id.
// Rank 0 is the least frequent item; projected databases for item i keep only
// items with rank greater than i's (Definition 3.2), so candidate extensions
// of an item are exactly the items after it (Definition 3.3).
type FList struct {
	// Items holds frequent items in F-list order (ascending support).
	Items []dataset.Item
	// Support holds the support of Items[k].
	Support []int
	// rank maps item id -> position in Items; -1 for infrequent items.
	rank []int32
}

// BuildFList counts item supports over db and returns the F-list at the
// given absolute minimum support.
func BuildFList(db *dataset.DB, minCount int) *FList {
	return NewFList(db.ItemCounts(), minCount)
}

// NewFList builds an F-list from per-item supports (indexed by item id).
func NewFList(counts []int, minCount int) *FList {
	f := &FList{rank: make([]int32, len(counts))}
	for i := range f.rank {
		f.rank[i] = -1
	}
	for id, c := range counts {
		if c >= minCount {
			f.Items = append(f.Items, dataset.Item(id))
		}
	}
	sort.Slice(f.Items, func(i, j int) bool {
		a, b := f.Items[i], f.Items[j]
		if counts[a] != counts[b] {
			return counts[a] < counts[b]
		}
		return a < b
	})
	f.Support = make([]int, len(f.Items))
	for k, it := range f.Items {
		f.Support[k] = counts[it]
		f.rank[it] = int32(k)
	}
	return f
}

// Len returns the number of frequent items.
func (f *FList) Len() int { return len(f.Items) }

// Rank returns the F-list position of item, or -1 when infrequent.
func (f *FList) Rank(it dataset.Item) int {
	if int(it) >= len(f.rank) || it < 0 {
		return -1
	}
	return int(f.rank[it])
}

// Frequent reports whether item is on the F-list.
func (f *FList) Frequent(it dataset.Item) bool { return f.Rank(it) >= 0 }

// Encode rewrites a transaction into rank space: infrequent items are
// dropped and the rest are replaced by their F-list ranks, sorted ascending
// (least frequent first). Miners that divide-and-conquer over the F-list
// operate on rank-encoded transactions.
func (f *FList) Encode(t []dataset.Item) []dataset.Item {
	out := make([]dataset.Item, 0, len(t))
	for _, it := range t {
		if r := f.Rank(it); r >= 0 {
			out = append(out, dataset.Item(r))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Decode maps rank-space items back to original item ids.
func (f *FList) Decode(ranks []dataset.Item) []dataset.Item {
	out := make([]dataset.Item, len(ranks))
	for i, r := range ranks {
		out[i] = f.Items[r]
	}
	return out
}

// DecodeInto writes the decoded items into dst, which must have capacity for
// len(ranks) entries, and returns dst[:len(ranks)]. Used on hot paths to
// avoid allocation per emitted pattern.
func (f *FList) DecodeInto(dst []dataset.Item, ranks []dataset.Item) []dataset.Item {
	dst = dst[:len(ranks)]
	for i, r := range ranks {
		dst[i] = f.Items[r]
	}
	return dst
}

// EncodeDB rank-encodes the entire database, dropping transactions that
// become empty. The result is suitable for miners working in rank space.
func (f *FList) EncodeDB(db *dataset.DB) [][]dataset.Item {
	out := make([][]dataset.Item, 0, db.Len())
	for _, t := range db.All() {
		e := f.Encode(t)
		if len(e) > 0 {
			out = append(out, e)
		}
	}
	return out
}
