// Package mining holds the vocabulary shared by every frequent-pattern miner
// in this repository: patterns, frequent lists (F-lists, Definition 3.1 of
// the paper), output sinks, and the Miner interface implemented by the
// baseline and recycling algorithms.
package mining

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"gogreen/internal/dataset"
)

// Pattern is a frequent itemset with its support (absolute tuple count).
// Items are sorted ascending by id.
type Pattern struct {
	Items   []dataset.Item
	Support int
}

// Key returns a canonical map key for the pattern's item set.
func (p Pattern) Key() string { return Key(p.Items) }

// String renders the pattern as "{i1 i2 ...}:support".
func (p Pattern) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, it := range p.Items {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d", it)
	}
	fmt.Fprintf(&b, "}:%d", p.Support)
	return b.String()
}

// Key builds a canonical key for an item set. The items need not be sorted;
// they are canonicalized first.
func Key(items []dataset.Item) string {
	c := dataset.Canonical(items)
	buf := make([]byte, 0, 8*len(c))
	for i, it := range c {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = strconv.AppendInt(buf, int64(it), 10)
	}
	return string(buf)
}

// ErrBadMinSupport is returned when a miner is invoked with a non-positive
// absolute minimum support.
var ErrBadMinSupport = errors.New("mining: minimum support must be >= 1")

// MinCount converts a relative minimum-support threshold (fraction of the
// database, e.g. 0.05 for 5%) into an absolute tuple count, matching the
// paper's convention that a pattern is frequent when sup(X) >= ξ·|DB|.
// The result is never below 1.
func MinCount(numTx int, frac float64) int {
	c := int(math.Ceil(frac * float64(numTx)))
	if c < 1 {
		c = 1
	}
	return c
}

// Miner is a frequent-pattern mining algorithm over an uncompressed database.
// Implementations stream every frequent pattern (support >= minCount) exactly
// once into sink. The empty pattern is never emitted.
type Miner interface {
	// Name identifies the algorithm (e.g. "hmine").
	Name() string
	// Mine finds all frequent patterns of db at absolute support minCount.
	Mine(db *dataset.DB, minCount int, sink Sink) error
}

// Sink consumes mined patterns. Emit is called with items sorted by the
// miner's internal order; the slice is only valid during the call and must be
// copied if retained.
type Sink interface {
	Emit(items []dataset.Item, support int)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(items []dataset.Item, support int)

// Emit calls f.
func (f SinkFunc) Emit(items []dataset.Item, support int) { f(items, support) }

// Collector accumulates patterns for inspection and testing.
type Collector struct {
	Patterns []Pattern
}

// Emit appends a copy of the pattern.
func (c *Collector) Emit(items []dataset.Item, support int) {
	cp := make([]dataset.Item, len(items))
	copy(cp, items)
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	c.Patterns = append(c.Patterns, Pattern{Items: cp, Support: support})
}

// Sort orders collected patterns canonically: by length, then item ids.
func (c *Collector) Sort() {
	sort.Slice(c.Patterns, func(i, j int) bool {
		a, b := c.Patterns[i].Items, c.Patterns[j].Items
		if len(a) != len(b) {
			return len(a) < len(b)
		}
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
}

// Set converts the collected patterns into a PatternSet. Duplicate emissions
// of the same item set are an error surfaced by Set, since a correct miner
// emits each pattern exactly once.
func (c *Collector) Set() (PatternSet, error) {
	s := make(PatternSet, len(c.Patterns))
	for _, p := range c.Patterns {
		k := p.Key()
		if _, dup := s[k]; dup {
			return nil, fmt.Errorf("mining: pattern %v emitted twice", p.Items)
		}
		s[k] = p
	}
	return s, nil
}

// Count is a Sink that only counts emissions, for benchmarks that want to
// exclude materialization cost (the paper excludes output time, §5.2).
type Count struct {
	N int
	// MaxLen tracks the longest pattern seen (Table 3's "maximal length").
	MaxLen int
}

// Emit increments the counter.
func (c *Count) Emit(items []dataset.Item, _ int) {
	c.N++
	if len(items) > c.MaxLen {
		c.MaxLen = len(items)
	}
}

// PatternSet indexes patterns by canonical key.
type PatternSet map[string]Pattern

// Slice returns the patterns in canonical order.
func (s PatternSet) Slice() []Pattern {
	out := make([]Pattern, 0, len(s))
	for _, p := range s {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Items, out[j].Items
		if len(a) != len(b) {
			return len(a) < len(b)
		}
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	return out
}

// Equal reports whether two pattern sets contain exactly the same patterns
// with the same supports.
func (s PatternSet) Equal(o PatternSet) bool {
	if len(s) != len(o) {
		return false
	}
	for k, p := range s {
		q, ok := o[k]
		if !ok || q.Support != p.Support {
			return false
		}
	}
	return true
}

// Diff returns human-readable discrepancies between s (got) and o (want),
// abbreviated to at most max entries. Empty when equal.
func (s PatternSet) Diff(o PatternSet, max int) []string {
	var out []string
	add := func(msg string) bool {
		if len(out) < max {
			out = append(out, msg)
		}
		return len(out) < max
	}
	for k, p := range s {
		q, ok := o[k]
		if !ok {
			if !add(fmt.Sprintf("extra %v:%d", p.Items, p.Support)) {
				return out
			}
		} else if q.Support != p.Support {
			if !add(fmt.Sprintf("support %v: got %d want %d", p.Items, p.Support, q.Support)) {
				return out
			}
		}
	}
	for k, q := range o {
		if _, ok := s[k]; !ok {
			if !add(fmt.Sprintf("missing %v:%d", q.Items, q.Support)) {
				return out
			}
		}
	}
	return out
}
