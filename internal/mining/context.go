package mining

import (
	"context"

	"gogreen/internal/dataset"
)

// DefaultCancelEvery is how many Check calls a Canceller lets pass between
// context polls. Projected-database miners call Check once per recursion
// node and once per tuple of the counting pass, so at this granularity a
// cancellation is observed within microseconds while the steady-state cost
// stays one counter increment per call.
const DefaultCancelEvery = 1024

// Canceller is the shared cooperative-cancellation check used by every miner
// in this repository. It is deliberately cheap: Check increments a counter
// and polls the context only every `every` calls; once the context is done
// the error sticks, so an aborting recursion unwinds with one branch per
// level. A nil *Canceller is valid and never cancels — plain (context-free)
// mining entry points pass nil and pay nothing.
type Canceller struct {
	ctx   context.Context
	every uint32
	n     uint32
	err   error
}

// NewCanceller returns a checker polling ctx every `every` Check calls
// (DefaultCancelEvery when every <= 0). A nil result is returned for
// contexts that can never be cancelled, keeping the nil fast path.
func NewCanceller(ctx context.Context, every int) *Canceller {
	if ctx == nil || ctx.Done() == nil {
		return nil
	}
	if every <= 0 {
		every = DefaultCancelEvery
	}
	return &Canceller{ctx: ctx, every: uint32(every)}
}

// Check reports the sticky cancellation error, polling the context every
// `every` calls. Safe on a nil receiver (always nil).
func (c *Canceller) Check() error {
	if c == nil {
		return nil
	}
	if c.err != nil {
		return c.err
	}
	if c.n++; c.n%c.every != 0 {
		return nil
	}
	c.err = c.ctx.Err()
	return c.err
}

// Err returns the recorded cancellation error without advancing the poll
// counter, but polls the context directly so boundary checks (before the
// first node, after the last) are exact. Safe on a nil receiver.
func (c *Canceller) Err() error {
	if c == nil {
		return nil
	}
	if c.err == nil {
		c.err = c.ctx.Err()
	}
	return c.err
}

// ContextMiner is implemented by miners that support cooperative
// cancellation: MineContext behaves like Mine but aborts promptly — the
// repository's implementations check every node of the projected-database
// recursion — when ctx is cancelled or its deadline expires, returning the
// context's error.
type ContextMiner interface {
	Miner
	MineContext(ctx context.Context, db *dataset.DB, minCount int, sink Sink) error
}

// MineContext runs m under ctx when the miner supports cancellation, and
// otherwise falls back to the blocking Mine bracketed by boundary checks, so
// callers get deadline semantics (if not promptness) from every miner.
func MineContext(ctx context.Context, m Miner, db *dataset.DB, minCount int, sink Sink) error {
	if cm, ok := m.(ContextMiner); ok {
		return cm.MineContext(ctx, db, minCount, sink)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := m.Mine(db, minCount, sink); err != nil {
		return err
	}
	return ctx.Err()
}
