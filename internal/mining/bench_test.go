package mining_test

import (
	"math/rand"
	"testing"

	"gogreen/internal/dataset"
	"gogreen/internal/mining"
)

func benchCounts() []int {
	r := rand.New(rand.NewSource(3))
	counts := make([]int, 5000)
	for i := range counts {
		counts[i] = r.Intn(1000)
	}
	return counts
}

func BenchmarkNewFList(b *testing.B) {
	counts := benchCounts()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mining.NewFList(counts, 100)
	}
}

func BenchmarkEncode(b *testing.B) {
	f := mining.NewFList(benchCounts(), 100)
	r := rand.New(rand.NewSource(5))
	t := make([]dataset.Item, 40)
	for i := range t {
		t[i] = dataset.Item(r.Intn(5000))
	}
	t = dataset.Canonical(t)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Encode(t)
	}
}

func BenchmarkKey(b *testing.B) {
	items := []dataset.Item{3, 14, 159, 2653, 58979}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mining.Key(items)
	}
}

func BenchmarkContains(b *testing.B) {
	t := make([]dataset.Item, 60)
	for i := range t {
		t[i] = dataset.Item(i * 3)
	}
	p := []dataset.Item{9, 60, 120, 177}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dataset.Contains(t, p)
	}
}
