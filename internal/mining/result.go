package mining

import "time"

// Source says how a mining round's result was produced. The three values
// mirror the paper's decision tree: constraints tightened → filter, relaxed
// or incomparable with history → recycle, no usable history → fresh mine.
type Source string

// Sources of a result.
const (
	SourceFresh    Source = "fresh"    // mined from scratch
	SourceFiltered Source = "filtered" // filtered from a previous result
	SourceRecycled Source = "recycled" // mined over a compressed database
)

// Result is one mining round's outcome. It is the single result shape shared
// by the public facade (gogreen.Mine), the interactive session layer
// (session.Result embeds it) and the HTTP server (MineResponse is its wire
// projection), so the three surfaces report provenance identically.
type Result struct {
	// Patterns is the complete frequent-pattern set of the round.
	Patterns []Pattern
	// Source says whether the round was mined fresh, filtered, or recycled.
	Source Source
	// BasedOn labels the reused knowledge — a saved-set name on the server,
	// a "round-N" label in a session — and is empty for fresh rounds.
	BasedOn string
	// MinCount is the absolute support threshold the round ran at.
	MinCount int
	// Cache classifies how the threshold lattice served the round: "hit"
	// (pure filter from a resident rung, no mining), "relax" (relax-mined
	// with a rung as the recycling seed) or "miss" (no usable rung). Empty
	// when the round ran without a lattice.
	Cache string
	// Elapsed is the round's wall-clock mining time.
	Elapsed time.Duration
}
