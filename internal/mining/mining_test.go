package mining_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gogreen/internal/dataset"
	"gogreen/internal/mining"
)

func TestMinCount(t *testing.T) {
	cases := []struct {
		n    int
		frac float64
		want int
	}{
		{100, 0.05, 5},
		{100, 0.051, 6}, // ceil
		{1000, 0.0001, 1},
		{10, 0, 1}, // floor at 1
		{5, 1.0, 5},
	}
	for _, c := range cases {
		if got := mining.MinCount(c.n, c.frac); got != c.want {
			t.Errorf("MinCount(%d, %g) = %d, want %d", c.n, c.frac, got, c.want)
		}
	}
}

func TestKeyCanonical(t *testing.T) {
	a := mining.Key([]dataset.Item{3, 1, 2})
	b := mining.Key([]dataset.Item{2, 3, 1, 1})
	if a != b || a != "1,2,3" {
		t.Errorf("keys %q vs %q", a, b)
	}
	if mining.Key(nil) != "" {
		t.Error("empty key")
	}
}

// TestKeyInjective: distinct canonical item sets give distinct keys.
func TestKeyInjective(t *testing.T) {
	f := func(a, b []uint8) bool {
		ia := make([]dataset.Item, len(a))
		for i, v := range a {
			ia[i] = dataset.Item(v)
		}
		ib := make([]dataset.Item, len(b))
		for i, v := range b {
			ib[i] = dataset.Item(v)
		}
		ca, cb := dataset.Canonical(ia), dataset.Canonical(ib)
		same := len(ca) == len(cb)
		if same {
			for i := range ca {
				if ca[i] != cb[i] {
					same = false
					break
				}
			}
		}
		return same == (mining.Key(ia) == mining.Key(ib))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestCollectorDuplicateDetection(t *testing.T) {
	var c mining.Collector
	c.Emit([]dataset.Item{1, 2}, 3)
	c.Emit([]dataset.Item{2, 1}, 3) // same set, different order
	if _, err := c.Set(); err == nil {
		t.Fatal("Set should reject duplicate emissions")
	}
}

func TestCollectorCopiesAndSorts(t *testing.T) {
	var c mining.Collector
	buf := []dataset.Item{5, 3}
	c.Emit(buf, 2)
	buf[0] = 99 // mutation after Emit must not affect the collected pattern
	if c.Patterns[0].Items[0] != 3 || c.Patterns[0].Items[1] != 5 {
		t.Errorf("collected %v", c.Patterns[0].Items)
	}

	c.Emit([]dataset.Item{1}, 9)
	c.Sort()
	if len(c.Patterns[0].Items) != 1 {
		t.Error("Sort should order by length first")
	}
}

func TestPatternSetEqualAndDiff(t *testing.T) {
	mk := func(ps ...mining.Pattern) mining.PatternSet {
		s := mining.PatternSet{}
		for _, p := range ps {
			s[p.Key()] = p
		}
		return s
	}
	a := mk(mining.Pattern{Items: []dataset.Item{1}, Support: 3},
		mining.Pattern{Items: []dataset.Item{1, 2}, Support: 2})
	b := mk(mining.Pattern{Items: []dataset.Item{1}, Support: 3},
		mining.Pattern{Items: []dataset.Item{1, 2}, Support: 2})
	if !a.Equal(b) {
		t.Error("equal sets not equal")
	}
	c := mk(mining.Pattern{Items: []dataset.Item{1}, Support: 4},
		mining.Pattern{Items: []dataset.Item{3}, Support: 1})
	if a.Equal(c) {
		t.Error("different sets equal")
	}
	diffs := a.Diff(c, 10)
	if len(diffs) != 3 { // support mismatch on {1}, extra {1,2}, missing {3}
		t.Errorf("diffs = %v", diffs)
	}
	if len(a.Diff(c, 1)) != 1 {
		t.Error("diff truncation")
	}

	slice := a.Slice()
	if len(slice) != 2 || len(slice[0].Items) != 1 {
		t.Errorf("Slice = %v", slice)
	}
}

func TestCountSink(t *testing.T) {
	var c mining.Count
	c.Emit([]dataset.Item{1, 2, 3}, 5)
	c.Emit([]dataset.Item{1}, 9)
	if c.N != 2 || c.MaxLen != 3 {
		t.Errorf("count = %+v", c)
	}
}

func TestPatternString(t *testing.T) {
	p := mining.Pattern{Items: []dataset.Item{1, 2}, Support: 7}
	if p.String() != "{1 2}:7" {
		t.Errorf("String = %q", p.String())
	}
}

func TestFList(t *testing.T) {
	// counts: item0:5, item1:2, item2:0, item3:2, item4:9
	f := mining.NewFList([]int{5, 2, 0, 3, 9}, 2)
	if f.Len() != 4 {
		t.Fatalf("Len = %d", f.Len())
	}
	// Ascending support: 1(2), 3(3), 0(5), 4(9).
	want := []dataset.Item{1, 3, 0, 4}
	for i, it := range want {
		if f.Items[i] != it {
			t.Fatalf("Items = %v, want %v", f.Items, want)
		}
	}
	if f.Rank(2) != -1 || f.Rank(99) != -1 || f.Rank(-1) != -1 {
		t.Error("infrequent/out-of-range ranks")
	}
	if !f.Frequent(0) || f.Frequent(2) {
		t.Error("Frequent")
	}

	enc := f.Encode([]dataset.Item{0, 1, 2, 4})
	// 0->rank2, 1->rank0, 2 dropped, 4->rank3; sorted: [0,2,3]
	if len(enc) != 3 || enc[0] != 0 || enc[1] != 2 || enc[2] != 3 {
		t.Errorf("Encode = %v", enc)
	}
	dec := f.Decode(enc)
	if dec[0] != 1 || dec[1] != 0 || dec[2] != 4 {
		t.Errorf("Decode = %v", dec)
	}
	dst := make([]dataset.Item, 3)
	dec2 := f.DecodeInto(dst, enc)
	if &dec2[0] != &dst[0] || dec2[2] != 4 {
		t.Error("DecodeInto should reuse dst")
	}
}

// TestFListTieBreak: equal supports order by item id.
func TestFListTieBreak(t *testing.T) {
	f := mining.NewFList([]int{3, 3, 3}, 1)
	if f.Items[0] != 0 || f.Items[1] != 1 || f.Items[2] != 2 {
		t.Errorf("tie break: %v", f.Items)
	}
}

// TestFListProperties: rank/decode are mutually inverse; encoding drops
// exactly the infrequent items.
func TestFListProperties(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for rep := 0; rep < 100; rep++ {
		n := 1 + r.Intn(30)
		counts := make([]int, n)
		for i := range counts {
			counts[i] = r.Intn(10)
		}
		min := 1 + r.Intn(5)
		f := mining.NewFList(counts, min)
		for k, it := range f.Items {
			if f.Rank(it) != k {
				t.Fatalf("rank/items inconsistent at %d", k)
			}
			if counts[it] < min {
				t.Fatalf("infrequent item %d on F-list", it)
			}
			if k > 0 && f.Support[k] < f.Support[k-1] {
				t.Fatal("supports not ascending")
			}
		}
		nFreq := 0
		for _, c := range counts {
			if c >= min {
				nFreq++
			}
		}
		if f.Len() != nFreq {
			t.Fatalf("Len = %d, want %d", f.Len(), nFreq)
		}
	}
}

func TestEncodeDBDropsEmpty(t *testing.T) {
	db := dataset.New([][]dataset.Item{{0, 1}, {2}, {0}})
	f := mining.BuildFList(db, 2) // only item 0 frequent
	enc := f.EncodeDB(db)
	if len(enc) != 2 {
		t.Fatalf("EncodeDB kept %d tuples, want 2", len(enc))
	}
}
