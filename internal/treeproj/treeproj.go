// Package treeproj implements the Tree Projection algorithm (Agarwal,
// Aggarwal, Prasad, KDD'00/JPDC — reference [4] of the paper) in its
// depth-first form, the variant the paper uses. The lexicographic tree of
// patterns is traversed depth-first; at each node the transactions
// containing the node's pattern are materialized (projected onto the node's
// candidate extensions), and a triangular matrix counts all two-item
// extensions in one scan, pruning the grandchildren before their projected
// sets are built.
//
// This is the non-recycling baseline for figures 11, 14, 17, 20, and the
// base algorithm adapted to compressed databases in internal/rptreeproj.
package treeproj

import (
	"gogreen/internal/dataset"
	"gogreen/internal/mining"
)

// Miner is the depth-first Tree Projection frequent-pattern miner.
type Miner struct{}

// New returns a Tree Projection miner.
func New() *Miner { return &Miner{} }

// Name implements mining.Miner.
func (*Miner) Name() string { return "treeproj" }

// Mine implements mining.Miner.
func (*Miner) Mine(db *dataset.DB, minCount int, sink mining.Sink) error {
	if minCount < 1 {
		return mining.ErrBadMinSupport
	}
	flist := mining.BuildFList(db, minCount)
	if flist.Len() == 0 {
		return nil
	}
	tx := flist.EncodeDB(db)
	m := &ctx{flist: flist, min: minCount, sink: sink, decoded: make([]dataset.Item, flist.Len())}

	// Root node: every frequent item is an active extension; emit singles
	// and recurse with projections.
	m.node(tx, nil, flist.Len())
	return nil
}

type ctx struct {
	flist   *mining.FList
	min     int
	sink    mining.Sink
	decoded []dataset.Item
}

func (m *ctx) emit(prefix []dataset.Item, support int) {
	m.sink.Emit(m.flist.DecodeInto(m.decoded, prefix), support)
}

// node processes one lexicographic-tree node. proj holds the transactions
// containing the node's pattern, restricted to the node's candidate
// extensions (rank-encoded ascending). width is the rank-space size (for
// the counting matrix).
func (m *ctx) node(proj [][]dataset.Item, prefix []dataset.Item, width int) {
	// Count one-item extensions.
	counts := make([]int, width)
	for _, t := range proj {
		for _, it := range t {
			counts[it]++
		}
	}
	exts := make([]dataset.Item, 0, width)
	for r := 0; r < width; r++ {
		if counts[r] >= m.min {
			exts = append(exts, dataset.Item(r))
		}
	}
	if len(exts) == 0 {
		return
	}
	// Dense remap of extensions for the triangular matrix.
	pos := make([]int32, width)
	for i := range pos {
		pos[i] = -1
	}
	for i, e := range exts {
		pos[e] = int32(i)
	}
	k := len(exts)

	// Matrix counting: one scan of the projected set counts every pair of
	// extensions, so each child's frequent extensions are known before its
	// projected set is materialized.
	matrix := make([]int, k*k) // upper triangle used: i < j
	local := make([]int32, 0, 64)
	for _, t := range proj {
		local = local[:0]
		for _, it := range t {
			if p := pos[it]; p >= 0 {
				local = append(local, p)
			}
		}
		for i := 0; i < len(local); i++ {
			row := int(local[i]) * k
			for j := i + 1; j < len(local); j++ {
				matrix[row+int(local[j])]++
			}
		}
	}

	prefix = append(prefix, 0)
	for i, e := range exts {
		prefix[len(prefix)-1] = e
		m.emit(prefix, counts[e])

		// The child's candidate extensions are extensions e' > e with
		// frequent pair (e, e').
		childExts := make([]bool, width)
		nChild := 0
		for j := i + 1; j < k; j++ {
			if matrix[i*k+j] >= m.min {
				childExts[exts[j]] = true
				nChild++
			}
		}
		if nChild == 0 {
			continue
		}
		// Materialize the child's projected set: transactions containing e,
		// keeping only the child's candidate extensions.
		var childProj [][]dataset.Item
		for _, t := range proj {
			has := false
			for _, it := range t {
				if it == e {
					has = true
					break
				}
				if it > e {
					break
				}
			}
			if !has {
				continue
			}
			var ct []dataset.Item
			for _, it := range t {
				if it > e && childExts[it] {
					ct = append(ct, it)
				}
			}
			if len(ct) > 0 {
				childProj = append(childProj, ct)
			}
		}
		if len(childProj) > 0 {
			m.node(childProj, prefix, width)
		}
	}
}
