package bench

import (
	"fmt"
	"io"
	"math/rand"
	"text/tabwriter"

	"gogreen/internal/core"
	"gogreen/internal/mining"
)

// Ablation benchmarks for the design choices DESIGN.md calls out: the
// utility function (beyond the paper's MCP/MLP pair), the Lemma 3.1
// single-group enumeration, the choice of ξ_old, and the compressed-miner
// engine.

func init() {
	register(Experiment{
		ID:    "ablation-dedup",
		Title: "Duplicate-collapse compression (no recycled patterns) vs pattern compression vs baseline",
		Paper: "extension: exact-duplicate groups are the degenerate case of the paper's compression",
		Run:   runAblationDedup,
	})
	register(Experiment{
		ID:    "ablation-utility",
		Title: "Cover-selection ablation: MCP vs MLP vs support-only vs random order",
		Paper: "extends §5.2's MCP-vs-MLP comparison with degenerate orders",
		Run:   runAblationUtility,
	})
	register(Experiment{
		ID:    "ablation-singlegroup",
		Title: "Lemma 3.1 ablation: single-group enumeration on vs off (naive miner)",
		Paper: "quantifies the enumeration shortcut of Section 3.3",
		Run:   runAblationSingleGroup,
	})
	register(Experiment{
		ID:    "ablation-xiold",
		Title: "ξ_old sensitivity: recycling benefit vs the threshold patterns were mined at",
		Paper: "tests §5's claim that lower ξ_old gives better recycling",
		Run:   runAblationXiOld,
	})
	register(Experiment{
		ID:    "ablation-engine",
		Title: "Engine comparison on one compressed database: naive vs RP-HM vs RP-FP vs RP-TP",
		Paper: "compares the Section 4 adaptations against the naive Section 3.3 miner",
		Run:   runAblationEngine,
	})
}

// runAblationUtility compares cover orders on one sparse and one dense
// dataset at the middle sweep point.
func runAblationUtility(cfg Config, w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "dataset\tξ_new\torder\tratio\tgroups\truntime")
	for _, name := range []string{"weather", "connect4"} {
		spec := SpecByName(name)
		db := Dataset(spec, cfg.Scale)
		fp := RecycledPatterns(spec, cfg.Scale)
		xi := spec.Sweep[len(spec.Sweep)/2]
		min := MinCountAt(db.Len(), xi)

		type cover struct {
			label string
			build func() *core.CDB
		}
		orders := []cover{
			{"MCP", func() *core.CDB { return core.Compress(db, fp, core.MCP) }},
			{"MLP", func() *core.CDB { return core.Compress(db, fp, core.MLP) }},
			// Support-only: only the singleton patterns are recycled —
			// compression degenerates to marking one hot item per tuple.
			{"support-only", func() *core.CDB { return core.Compress(db, singletonsOnly(fp), core.MCP) }},
			// Random: the same patterns in a seeded random order, applied
			// greedily without any utility ranking.
			{"random", func() *core.CDB { return core.CompressRanked(db, shuffledRanked(fp, 42)) }},
		}
		for _, o := range orders {
			var cdb *core.CDB
			comp := Timed(func() { cdb = o.build() })
			st := cdb.Stats()
			mine := Timed(func() {
				var c mining.Count
				if err := (core.Naive{}).MineCDB(cdb, min, &c); err != nil {
					panic(err)
				}
			})
			fmt.Fprintf(tw, "%s\t%.3f\t%s\t%.3f\t%d\t%.3fs (compress %.3fs)\n",
				name, xi, o.label, st.Ratio, st.NumGroups, mine.Seconds(), comp.Seconds())
		}
	}
	return tw.Flush()
}

// singletonsOnly keeps only length-1 patterns.
func singletonsOnly(fp []mining.Pattern) []mining.Pattern {
	var out []mining.Pattern
	for _, p := range fp {
		if len(p.Items) == 1 {
			out = append(out, p)
		}
	}
	return out
}

// shuffledRanked puts the patterns in a seeded random cover order.
func shuffledRanked(fp []mining.Pattern, seed int64) []core.RankedPattern {
	out := make([]core.RankedPattern, len(fp))
	for i, p := range fp {
		out[i] = core.RankedPattern{Items: p.Items, Support: p.Support}
	}
	r := rand.New(rand.NewSource(seed))
	r.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// runAblationSingleGroup measures the Lemma 3.1 shortcut on the dense
// datasets where single-group projections dominate.
func runAblationSingleGroup(cfg Config, w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "dataset\tξ_new\twith Lemma 3.1\twithout\tspeedup")
	for _, name := range []string{"connect4", "pumsb"} {
		spec := SpecByName(name)
		db := Dataset(spec, cfg.Scale)
		cdb := CompressedDB(spec, cfg.Scale, core.MCP)
		for _, xi := range []float64{spec.Sweep[0], spec.Sweep[len(spec.Sweep)/2]} {
			min := MinCountAt(db.Len(), xi)
			on := Timed(func() {
				var c mining.Count
				if err := (core.Naive{}).MineCDB(cdb, min, &c); err != nil {
					panic(err)
				}
			})
			off := Timed(func() {
				var c mining.Count
				if err := (core.Naive{DisableSingleGroup: true}).MineCDB(cdb, min, &c); err != nil {
					panic(err)
				}
			})
			fmt.Fprintf(tw, "%s\t%.3f\t%.3fs\t%.3fs\t%.1fx\n",
				name, xi, on.Seconds(), off.Seconds(), off.Seconds()/on.Seconds())
		}
	}
	return tw.Flush()
}

// runAblationXiOld varies the threshold the recycled patterns were mined at
// and re-times recycling at a fixed ξ_new.
func runAblationXiOld(cfg Config, w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "dataset\tξ_old\t#patterns\tratio\tξ_new\tHM-MCP\tH-Mine(ref)")
	for _, name := range []string{"weather", "connect4"} {
		spec := SpecByName(name)
		db := Dataset(spec, cfg.Scale)
		xiNew := spec.Sweep[len(spec.Sweep)-1]
		min := MinCountAt(db.Len(), xiNew)

		var ref mining.Count
		base := Timed(func() {
			ref = mining.Count{}
			if err := hmineMiner().Mine(db, min, &ref); err != nil {
				panic(err)
			}
		})

		// ξ_old walks from the paper's setting toward the point where no
		// recyclable patterns remain (hot probabilities/hierarchy tops are
		// all below the threshold).
		xiOlds := []float64{0.05, 0.07, 0.10, 0.12}
		if name == "connect4" {
			xiOlds = []float64{0.95, 0.96, 0.97, 0.985}
		}
		for _, xiOld := range xiOlds {
			var col mining.Collector
			if err := hmineMiner().Mine(db, MinCountAt(db.Len(), xiOld), &col); err != nil {
				panic(err)
			}
			cdb := core.Compress(db, col.Patterns, core.MCP)
			rec := Timed(func() {
				var c mining.Count
				if err := rphmineMiner().MineCDB(cdb, min, &c); err != nil {
					panic(err)
				}
			})
			fmt.Fprintf(tw, "%s\t%.3f\t%d\t%.3f\t%.3f\t%.3fs\t%.3fs\n",
				name, xiOld, len(col.Patterns), cdb.Stats().Ratio, xiNew,
				rec.Seconds(), base.Seconds())
		}
	}
	return tw.Flush()
}

// runAblationEngine compares the four compressed-database miners.
func runAblationEngine(cfg Config, w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "dataset\tξ_new\tengine\truntime")
	for _, name := range []string{"weather", "forest", "connect4", "pumsb"} {
		spec := SpecByName(name)
		db := Dataset(spec, cfg.Scale)
		cdb := CompressedDB(spec, cfg.Scale, core.MCP)
		xi := spec.Sweep[len(spec.Sweep)/2]
		min := MinCountAt(db.Len(), xi)
		for _, eng := range engines() {
			d := Timed(func() {
				var c mining.Count
				if err := eng.MineCDB(cdb, min, &c); err != nil {
					panic(err)
				}
			})
			fmt.Fprintf(tw, "%s\t%.3f\t%s\t%.3fs\n", name, xi, eng.Name(), d.Seconds())
		}
	}
	return tw.Flush()
}

// runAblationDedup compares mining over duplicate-collapsed databases
// (core.Dedup — no recycled patterns needed) against pattern compression
// and the plain baseline, on the dense datasets where duplication is high.
func runAblationDedup(cfg Config, w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "dataset\tξ_new\tdup ratio\tH-Mine\tRP-HM(dedup)\tRP-HM(MCP)")
	for _, name := range []string{"connect4", "pumsb", "weather"} {
		spec := SpecByName(name)
		db := Dataset(spec, cfg.Scale)
		dd := core.Dedup(db)
		cdb := CompressedDB(spec, cfg.Scale, core.MCP)
		xi := spec.Sweep[len(spec.Sweep)/2]
		min := MinCountAt(db.Len(), xi)

		var n mining.Count
		base := Timed(func() {
			n = mining.Count{}
			if err := hmineMiner().Mine(db, min, &n); err != nil {
				panic(err)
			}
		})
		dedup := Timed(func() {
			var c mining.Count
			if err := rphmineMiner().MineCDB(dd, min, &c); err != nil {
				panic(err)
			}
			if c.N != n.N {
				panic(fmt.Sprintf("bench: dedup mismatch %d vs %d", c.N, n.N))
			}
		})
		rec := Timed(func() {
			var c mining.Count
			if err := rphmineMiner().MineCDB(cdb, min, &c); err != nil {
				panic(err)
			}
		})
		fmt.Fprintf(tw, "%s\t%.3f\t%.3f\t%.3fs\t%.3fs\t%.3fs\n",
			name, xi, dd.Stats().Ratio, base.Seconds(), dedup.Seconds(), rec.Seconds())
	}
	return tw.Flush()
}
