// Perf is the reproducible performance harness behind cmd/rpbench: it runs
// the compression and mining variants through testing.Benchmark and renders
// the numbers as the checked-in BENCH_compress.json / BENCH_mine.json
// baselines, so every PR's speedups (or regressions) are provable against
// the repository history.
package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"sort"
	"testing"
	"time"

	"gogreen/internal/core"
	"gogreen/internal/dataset"
	"gogreen/internal/engine"
	"gogreen/internal/gen"
	"gogreen/internal/mining"
)

// PerfEntry is one benchmark measurement.
type PerfEntry struct {
	Experiment string `json:"experiment"`
	Dataset    string `json:"dataset"`
	// Variant identifies the code path, e.g. "scan", "indexed",
	// "parallel-4w", "hmine", "rp-hmine".
	Variant string `json:"variant"`
	// GOMAXPROCS records the procs setting the entry was measured at —
	// baseline files merge entries from a whole procs grid, so speedup
	// claims are only comparable within one gomaxprocs value.
	GOMAXPROCS int `json:"gomaxprocs,omitempty"`
	Workers    int `json:"workers,omitempty"`
	// Patterns is the recycled pattern count of compression workloads.
	Patterns    int     `json:"patterns,omitempty"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// CompressionRatio is R = S_c/S_o of the produced CDB (compression
	// experiments only).
	CompressionRatio float64 `json:"compression_ratio,omitempty"`
	// SpeedupVsSerial is serial-baseline ns_per_op divided by this entry's
	// ns_per_op; the baseline row itself reports 1.
	SpeedupVsSerial float64 `json:"speedup_vs_serial,omitempty"`
	// CacheHits / CacheMiss count lattice events in the measured window
	// (lattice experiment only).
	CacheHits int64 `json:"cache_hits,omitempty"`
	CacheMiss int64 `json:"cache_misses,omitempty"`
	// MinePhases counts mining-phase invocations in the measured window
	// (lattice experiment only). A pointer so the steady-state lattice row
	// can record the explicit zero that proves pure-filter serving.
	MinePhases *int64 `json:"mine_phase_invocations,omitempty"`
}

// PerfReport is the schema of a BENCH_*.json file.
type PerfReport struct {
	Experiment string  `json:"experiment"`
	Scale      float64 `json:"scale"`
	Quick      bool    `json:"quick"`
	GoVersion  string  `json:"go_version"`
	// GOMAXPROCS is the procs setting of the run that produced the report;
	// when rpbench merges a whole grid into one file it is the grid maximum
	// and ProcsGrid lists every point (each entry carries its own value).
	GOMAXPROCS int   `json:"gomaxprocs"`
	ProcsGrid  []int `json:"procs_grid,omitempty"`
	// NumCPU is the machine's real core count — the honesty marker behind
	// rpbench's -allow-serial gate: parallel speedups measured with
	// NumCPU=1 are scheduling artifacts, not parallelism.
	NumCPU int `json:"num_cpu,omitempty"`
	// Warning flags measurement-validity caveats rpbench stamped on the
	// run (e.g. the requested procs grid exceeded the machine's cores, or
	// baselines were recorded on a single-core machine). A report with a
	// warning is still structurally valid; its speedup columns are not
	// evidence of parallelism.
	Warning string      `json:"warning,omitempty"`
	Entries []PerfEntry `json:"entries"`
}

// Merge appends o's entries onto r, widening the procs metadata. Used by
// rpbench to fold a GOMAXPROCS grid of runs into one baseline file.
func (r *PerfReport) Merge(o PerfReport) {
	if o.GOMAXPROCS > r.GOMAXPROCS {
		r.GOMAXPROCS = o.GOMAXPROCS
	}
	r.ProcsGrid = append(r.ProcsGrid, o.GOMAXPROCS)
	r.Entries = append(r.Entries, o.Entries...)
}

// JSON renders the report indented, ending in a newline.
func (r PerfReport) JSON() []byte {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		panic(err) // static schema: cannot fail
	}
	return append(b, '\n')
}

// DenseDeepConfig is the dense Connect-4-shaped compression acceptance
// workload: 43 attributes, 3 values each, three deep hierarchies whose
// second level sits near the mining threshold. Mined at DenseDeepXiOld it
// yields tens of thousands of recycled patterns whose top utility ranks are
// long, borderline-support patterns — the deep recycled-set regime where
// the naive scan really pays O(|DB|·|FP|) (most tuples do not contain the
// top-ranked patterns, so its first-hit early exit stops saving it) and
// rarest-item candidate pruning shines (deep items appear in uncovered
// tuples only at the noise rate).
func DenseDeepConfig(numTx int) gen.DenseConfig {
	return gen.DenseConfig{
		NumTx:         numTx,
		NumAttrs:      43,
		ValuesPerAttr: 3,
		TopProbLo:     0.02,
		TopProbHi:     0.08,
		NoiseTop:      0.02,
		Hierarchies: []gen.Hierarchy{
			{Start: 0, Sizes: []int{4, 14}, Probs: []float64{0.55, 0.18}},
			{Start: 14, Sizes: []int{4, 14}, Probs: []float64{0.52, 0.17}},
			{Start: 28, Sizes: []int{4, 14}, Probs: []float64{0.50, 0.16}},
		},
		Seed: 20040303,
	}
}

// DenseDeepXiOld is the ξ_old threshold of the deep workload.
const DenseDeepXiOld = 0.12

// compressWorkload is one (database, ranked recycled patterns) input.
type compressWorkload struct {
	name   string
	db     *dataset.DB
	ranked []core.RankedPattern
}

// compressWorkloads builds the compression inputs: the deep dense
// acceptance workload plus the calibrated Connect-4 preset at its paper
// ξ_old (the early-hit regime, kept for honest contrast — candidate
// indexing buys little when the top-ranked patterns cover almost every
// tuple).
func compressWorkloads(cfg Config, quick bool) ([]compressWorkload, error) {
	// The deep workload keeps its size in quick mode: shrinking it lets
	// sampling noise push borderline cross-hierarchy products over the
	// threshold and the pattern count explodes, making "quick" slower.
	deepTx, presetScale := 600, cfg.Scale
	if quick {
		presetScale = minScale(cfg.Scale, 0.005)
	}
	var out []compressWorkload
	for _, w := range []struct {
		name  string
		db    *dataset.DB
		xiOld float64
	}{
		{"dense-deep", gen.Dense(DenseDeepConfig(deepTx)), DenseDeepXiOld},
		{"connect4", gen.Connect4(presetScale), 0.95},
	} {
		var col mining.Collector
		if err := registryMiner("hmine").Mine(w.db, MinCountAt(w.db.Len(), w.xiOld), &col); err != nil {
			return nil, err
		}
		out = append(out, compressWorkload{
			name:   w.name,
			db:     w.db,
			ranked: core.RankPatterns(col.Patterns, w.db.Len(), core.MCP),
		})
	}
	return out, nil
}

func minScale(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// CompressPerf benchmarks the compression engines — the naive serial scan,
// the indexed serial engine, and the sharded parallel engine — over the
// dense workloads and reports speedups against the scan baseline.
func CompressPerf(cfg Config, quick bool) (PerfReport, error) {
	rep := newReport("compress", cfg, quick)
	workloads, err := compressWorkloads(cfg, quick)
	if err != nil {
		return rep, err
	}
	for _, w := range workloads {
		ratio := core.CompressRanked(w.db, w.ranked).Stats().Ratio
		variants := []struct {
			name    string
			workers int
			run     func()
		}{
			{"scan", 0, func() { core.CompressRankedScan(w.db, w.ranked) }},
			{"indexed", 0, func() { core.CompressRanked(w.db, w.ranked) }},
		}
		for _, workers := range parallelWorkerCounts(quick) {
			workers := workers
			variants = append(variants, struct {
				name    string
				workers int
				run     func()
			}{fmt.Sprintf("parallel-%dw", workers), workers, func() {
				if _, err := core.CompressRankedParallel(context.Background(), w.db, w.ranked, workers); err != nil {
					panic(err) // background ctx never cancels
				}
			}})
		}
		var scanNs float64
		for _, v := range variants {
			r := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					v.run()
				}
			})
			e := entryOf(r, "compress", w.name, v.name)
			e.Workers = v.workers
			e.Patterns = len(w.ranked)
			e.CompressionRatio = ratio
			if v.name == "scan" {
				scanNs = e.NsPerOp
			}
			if scanNs > 0 {
				e.SpeedupVsSerial = scanNs / e.NsPerOp
			}
			rep.Entries = append(rep.Entries, e)
		}
	}
	return rep, nil
}

// MinePerf benchmarks the mining phase on the Connect-4 preset at one ξ_new
// below its ξ_old: fresh H-Mine, then each recycled miner over the
// precompressed database — serial, plus a worker-count grid through the
// parallel wrapper. Compression is excluded (it has its own report); every
// parallel row's SpeedupVsSerial is measured against its own miner's serial
// row, the serial recycled rows against fresh H-Mine (the recycling
// advantage).
func MinePerf(cfg Config, quick bool) (PerfReport, error) {
	rep := newReport("mine", cfg, quick)
	scale := cfg.Scale
	if quick {
		scale = minScale(scale, 0.005)
	}
	spec := SpecByName("connect4")
	db := gen.Connect4(scale)
	xiNew := spec.Sweep[0] // 0.945: one step past ξ_old = 0.95
	min := MinCountAt(db.Len(), xiNew)

	var col mining.Collector
	if err := registryMiner("hmine").Mine(db, MinCountAt(db.Len(), spec.XiOld), &col); err != nil {
		return rep, err
	}
	fp := col.Patterns
	cdb := core.Compress(db, fp, core.MCP)

	measure := func(name string, workers int, serialNs float64, run func() error) (PerfEntry, error) {
		var runErr error
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if e := run(); e != nil {
					runErr = e
					b.FailNow()
				}
			}
		})
		if runErr != nil {
			return PerfEntry{}, runErr
		}
		e := entryOf(r, "mine", "connect4", name)
		e.Workers = workers
		e.Patterns = len(fp)
		if serialNs > 0 {
			e.SpeedupVsSerial = serialNs / e.NsPerOp
		}
		return e, nil
	}

	// Fresh H-Mine and its parallel worker grid.
	fresh, err := measure("hmine", 0, 0, func() error {
		var c mining.Count
		return registryMiner("hmine").Mine(db, min, &c)
	})
	if err != nil {
		return rep, err
	}
	fresh.SpeedupVsSerial = 1
	rep.Entries = append(rep.Entries, fresh)
	for _, w := range mineWorkerCounts(quick) {
		par, err := engine.NewMiner("par-hmine", w)
		if err != nil {
			return rep, err
		}
		e, err := measure(fmt.Sprintf("par-hmine-%dw", w), w, fresh.NsPerOp, func() error {
			var c mining.Count
			return par.Mine(db, min, &c)
		})
		if err != nil {
			return rep, err
		}
		rep.Entries = append(rep.Entries, e)
	}

	// Every wrappable recycled miner the registry carries, over the
	// precompressed database: serial row (speedup vs fresh H-Mine), then the
	// parallel worker grid through the registry's derived par-* variant
	// (speedup vs that miner's serial row). A newly registered encoded engine
	// joins the grid automatically.
	for _, d := range engine.Descriptors() {
		if d.Kind != engine.Recycled || d.Base != "" || !d.Encoded {
			continue
		}
		eng := d.Engine(0)
		serial, err := measure(d.Name, 0, fresh.NsPerOp, func() error {
			var c mining.Count
			return eng.MineCDB(cdb, min, &c)
		})
		if err != nil {
			return rep, err
		}
		rep.Entries = append(rep.Entries, serial)
		for _, w := range mineWorkerCounts(quick) {
			par, err := engine.NewEngine(d.Par, w)
			if err != nil {
				return rep, err
			}
			e, err := measure(fmt.Sprintf("%s-%dw", d.Par, w), w, serial.NsPerOp, func() error {
				var c mining.Count
				return par.MineCDB(cdb, min, &c)
			})
			if err != nil {
				return rep, err
			}
			rep.Entries = append(rep.Entries, e)
		}
	}
	return rep, nil
}

// PipelinePerf measures the full recycling pipeline — compression plus
// mining — through engine.Pipeline on the Connect-4 preset, one run per
// wrappable recycled engine, serial and with a parallel mining phase. The
// per-phase rows come straight from the pipeline's PhaseObserver hook (the
// same hook the server binds to its metrics histograms), so the report
// records exactly what the pipeline observed; each parallel total row
// reports its speedup against the same engine's serial total.
func PipelinePerf(cfg Config, quick bool) (PerfReport, error) {
	rep := newReport("pipeline", cfg, quick)
	scale := cfg.Scale
	if quick {
		scale = minScale(scale, 0.005)
	}
	spec := SpecByName("connect4")
	db := gen.Connect4(scale)
	xiNew := spec.Sweep[0]
	min := MinCountAt(db.Len(), xiNew)

	seeder := engine.Pipeline{}
	seed, err := seeder.Mine(context.Background(), db, MinCountAt(db.Len(), spec.XiOld), nil)
	if err != nil {
		return rep, err
	}
	fp := seed.Patterns

	for _, d := range engine.Descriptors() {
		if d.Kind != engine.Recycled || d.Base != "" || !d.Encoded {
			continue
		}
		var serialNs float64
		for _, workers := range []int{0, -1} { // serial, then GOMAXPROCS
			var phases []PerfEntry
			obs := engine.ObserverFunc(func(ph engine.Phase, algo string, dur time.Duration) {
				e := PerfEntry{
					Experiment: "pipeline",
					Dataset:    spec.Name,
					Variant:    fmt.Sprintf("%s/%s", algo, ph),
					GOMAXPROCS: runtime.GOMAXPROCS(0),
					NsPerOp:    float64(dur.Nanoseconds()),
					Patterns:   len(fp),
				}
				if workers != 0 {
					e.Workers = runtime.GOMAXPROCS(0)
				}
				phases = append(phases, e)
			})
			p := engine.Pipeline{Recycled: d.Name, MineWorkers: workers, Observer: obs}
			var c mining.Count
			run, err := p.MineRecycling(context.Background(), db, fp, min, &c)
			if err != nil {
				return rep, err
			}
			total := PerfEntry{
				Experiment:       "pipeline",
				Dataset:          spec.Name,
				Variant:          run.Algo + "/total",
				GOMAXPROCS:       runtime.GOMAXPROCS(0),
				NsPerOp:          float64(run.Elapsed.Nanoseconds()),
				Patterns:         len(fp),
				CompressionRatio: run.CompressStats.Ratio,
			}
			if workers != 0 {
				total.Workers = runtime.GOMAXPROCS(0)
			}
			if serialNs == 0 {
				serialNs = total.NsPerOp
			}
			total.SpeedupVsSerial = serialNs / total.NsPerOp
			rep.Entries = append(rep.Entries, phases...)
			rep.Entries = append(rep.Entries, total)
		}
	}
	return rep, nil
}

// mineWorkerCounts is the mining-phase worker grid: 1 (wrapper overhead),
// 2, and the machine's GOMAXPROCS, deduplicated; full runs add 4 so
// single-core CI still exercises a contended pool.
func mineWorkerCounts(quick bool) []int {
	counts := []int{1, 2, runtime.GOMAXPROCS(0)}
	if !quick {
		counts = append(counts, 4)
	}
	sort.Ints(counts)
	out := counts[:0]
	for i, w := range counts {
		if i == 0 || w != out[len(out)-1] {
			out = append(out, w)
		}
	}
	return out
}

// parallelWorkerCounts picks the parallel shard counts to measure: the
// machine's GOMAXPROCS always, plus 4 when that differs (so single-core CI
// still exercises the sharded path).
func parallelWorkerCounts(quick bool) []int {
	counts := []int{runtime.GOMAXPROCS(0)}
	if !quick && counts[0] != 4 {
		counts = append(counts, 4)
	}
	return counts
}

func newReport(experiment string, cfg Config, quick bool) PerfReport {
	return PerfReport{
		Experiment: experiment,
		Scale:      cfg.Scale,
		Quick:      quick,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
}

func entryOf(r testing.BenchmarkResult, experiment, ds, variant string) PerfEntry {
	return PerfEntry{
		Experiment:  experiment,
		Dataset:     ds,
		Variant:     variant,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}
