// Package bench is the experiment harness that regenerates every table and
// figure of the paper's evaluation (Table 3 and Figures 9-24), plus the
// ablation studies DESIGN.md calls out. Each experiment prints the same rows
// or series the paper reports, over the synthetic stand-in datasets of
// internal/gen (see DESIGN.md §4 for the substitutions).
//
// Experiments are registered by id ("table3", "fig9" … "fig24",
// "ablation-*") and run by cmd/experiments or, at reduced scale, by the
// root-level Go benchmarks.
package bench

import (
	"fmt"
	"io"
	"sort"
	"time"

	"gogreen/internal/core"
	"gogreen/internal/dataset"
	"gogreen/internal/gen"
	"gogreen/internal/hmine"
	"gogreen/internal/mining"
)

// Config parameterizes one experiment run.
type Config struct {
	// Scale multiplies dataset sizes (1.0 = paper-sized; benchmarks use
	// 0.01-0.05).
	Scale float64
	// TempDir hosts memory-limited partition spills; "" = system temp.
	TempDir string
	// MaxPoints truncates each figure's ξ_new sweep (0 = all points); used
	// by quick test runs to skip the expensive deep thresholds.
	MaxPoints int
}

// sweepOf applies MaxPoints to a sweep.
func (c Config) sweepOf(sweep []float64) []float64 {
	if c.MaxPoints > 0 && c.MaxPoints < len(sweep) {
		return sweep[:c.MaxPoints]
	}
	return sweep
}

// Experiment regenerates one table or figure.
type Experiment struct {
	ID    string
	Title string
	// Paper summarizes what the paper's version of this artifact shows.
	Paper string
	Run   func(cfg Config, w io.Writer) error
}

// DatasetSpec fixes one evaluation dataset's thresholds: ξ_old for the
// recycled pattern set and the ξ_new sweep for the figures (Section 5's
// setup, adapted to the stand-in generators' calibration).
type DatasetSpec struct {
	Name     string
	Gen      func(scale float64) *dataset.DB
	XiOld    float64
	Sweep    []float64 // descending ξ_new values
	MemSweep []float64 // ξ_new values for the memory-limited figures
}

// Specs lists the four evaluation datasets in paper order.
var Specs = []DatasetSpec{
	{
		Name:  "weather",
		Gen:   gen.Weather,
		XiOld: 0.05,
		Sweep: []float64{0.04, 0.03, 0.02, 0.01, 0.005},
		// Deeper thresholds stress partitioning harder.
		MemSweep: []float64{0.03, 0.02, 0.01},
	},
	{
		Name:     "forest",
		Gen:      gen.Forest,
		XiOld:    0.01,
		Sweep:    []float64{0.008, 0.006, 0.004, 0.002},
		MemSweep: []float64{0.006, 0.004, 0.002},
	},
	{
		Name:  "connect4",
		Gen:   gen.Connect4,
		XiOld: 0.95,
		// Pattern counts: ~1.8k at 0.945, ~525k at 0.925, ~930k at 0.905.
		Sweep:    []float64{0.945, 0.935, 0.925, 0.915, 0.905},
		MemSweep: []float64{0.945, 0.935, 0.925},
	},
	{
		Name:     "pumsb",
		Gen:      gen.Pumsb,
		XiOld:    0.90,
		Sweep:    []float64{0.89, 0.87, 0.855, 0.835, 0.815},
		MemSweep: []float64{0.89, 0.87, 0.855},
	},
}

// SpecByName returns the dataset spec with the given name, or nil.
func SpecByName(name string) *DatasetSpec {
	for i := range Specs {
		if Specs[i].Name == name {
			return &Specs[i]
		}
	}
	return nil
}

// dsCache avoids regenerating datasets across experiments in one process.
var dsCache = map[string]*dataset.DB{}

// Dataset returns the named dataset at the given scale, cached.
func Dataset(spec *DatasetSpec, scale float64) *dataset.DB {
	key := fmt.Sprintf("%s@%g", spec.Name, scale)
	if db, ok := dsCache[key]; ok {
		return db
	}
	db := spec.Gen(scale)
	dsCache[key] = db
	return db
}

// fpCache caches the ξ_old pattern sets.
var fpCache = map[string][]mining.Pattern{}

// RecycledPatterns mines the dataset at ξ_old with H-Mine and returns the
// pattern set used for recycling, cached per dataset and scale.
func RecycledPatterns(spec *DatasetSpec, scale float64) []mining.Pattern {
	key := fmt.Sprintf("%s@%g", spec.Name, scale)
	if fp, ok := fpCache[key]; ok {
		return fp
	}
	db := Dataset(spec, scale)
	var col mining.Collector
	if err := hmine.New().Mine(db, MinCountAt(db.Len(), spec.XiOld), &col); err != nil {
		panic(fmt.Sprintf("bench: mining ξ_old patterns for %s: %v", spec.Name, err))
	}
	fpCache[key] = col.Patterns
	return col.Patterns
}

// cdbCache caches compressed databases per dataset, scale and strategy.
var cdbCache = map[string]*core.CDB{}

// CompressedDB returns the dataset compressed with the given strategy using
// its ξ_old patterns, cached.
func CompressedDB(spec *DatasetSpec, scale float64, strat core.Strategy) *core.CDB {
	key := fmt.Sprintf("%s@%g/%s", spec.Name, scale, strat)
	if cdb, ok := cdbCache[key]; ok {
		return cdb
	}
	cdb := core.Compress(Dataset(spec, scale), RecycledPatterns(spec, scale), strat)
	cdbCache[key] = cdb
	return cdb
}

// ResetCaches clears all dataset caches (tests use it to bound memory).
func ResetCaches() {
	dsCache = map[string]*dataset.DB{}
	fpCache = map[string][]mining.Pattern{}
	cdbCache = map[string]*core.CDB{}
}

// MinCountAt converts a relative threshold for db, clamped to 2: an
// absolute support of 1 makes every subset of every tuple frequent, which
// is never what a figure's sweep means — it only arises when tiny test
// scales shrink fractional thresholds below one tuple.
func MinCountAt(numTx int, frac float64) int {
	if c := mining.MinCount(numTx, frac); c > 1 {
		return c
	}
	return 2
}

// Timed measures one run of f.
func Timed(f func()) time.Duration {
	t0 := time.Now()
	f()
	return time.Since(t0)
}

// All returns every registered experiment in a stable order: table3, the
// figures in paper order, then the ablations.
func All() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	sort.SliceStable(out, func(i, j int) bool { return order(out[i].ID) < order(out[j].ID) })
	return out
}

// ByID returns the experiment with the given id, or nil.
func ByID(id string) *Experiment {
	for i := range registry {
		if registry[i].ID == id {
			return &registry[i]
		}
	}
	return nil
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// order gives table3 < fig9..fig24 < ablations.
func order(id string) string {
	switch {
	case id == "table3":
		return "0"
	case len(id) > 3 && id[:3] == "fig":
		if len(id) == 4 {
			return "1:0" + id[3:]
		}
		return "1:" + id[3:]
	default:
		return "2:" + id
	}
}
