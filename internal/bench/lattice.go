package bench

import (
	"context"
	"math/rand"
	"runtime"
	"time"

	"gogreen/internal/engine"
	"gogreen/internal/gen"
	"gogreen/internal/lattice"
)

// latticeObs counts mining-phase invocations and lattice events during a
// measured serving window. Serial use only.
type latticeObs struct {
	minePhases int64
	hits       int64
	relaxes    int64
	misses     int64
}

func (o *latticeObs) OnPhaseStart(engine.Phase, string) {}

func (o *latticeObs) OnPhaseEnd(ph engine.Phase, _ string, _ time.Duration) {
	if ph == engine.PhaseMine {
		o.minePhases++
	}
}

func (o *latticeObs) OnCacheEvent(ev engine.CacheEvent, n int) {
	switch ev {
	case engine.CacheHit:
		o.hits += int64(n)
	case engine.CacheRelax:
		o.relaxes += int64(n)
	case engine.CacheMiss:
		o.misses += int64(n)
	}
}

func (o *latticeObs) reset() { *o = latticeObs{} }

// LatticePerf measures the materialized threshold lattice as a serving
// layer. The workload is the interactive pattern the lattice exists for: a
// Zipf-distributed stream of thresholds against one database (most requests
// repeat a handful of popular ξ values, a tail explores). The "no-cache"
// variant answers every request by mining from scratch — the pre-lattice
// serving behavior — and the "lattice" variant serves the identical stream
// through Pipeline.Serve after a warm pass installed the threshold alphabet
// as rungs, so steady state must run entirely on the pure-filter path: the
// entry records the cache-hit count and an explicit zero mine-phase count.
func LatticePerf(cfg Config, quick bool) (PerfReport, error) {
	rep := newReport("lattice", cfg, quick)
	scale := cfg.Scale
	if quick {
		scale = minScale(scale, 0.005)
	}
	spec := SpecByName("connect4")
	db := gen.Connect4(scale)

	// Threshold alphabet, Zipf-ranked in order (most popular first): the
	// canonical ξ_new below the preset's ξ_old, then neighbors above and
	// below. All sit above the preset's dense-regime cliff (ξ ≲ 0.93), where
	// pattern counts explode past any sane cache budget — rungs there would
	// be rejected as oversized and the experiment would measure repeated
	// relax-mining, not serving.
	xis := []float64{0.945, 0.95, 0.94, 0.96, 0.97}
	mins := make([]int, len(xis))
	for i, xi := range xis {
		mins[i] = MinCountAt(db.Len(), xi)
	}

	steady := 200
	if quick {
		steady = 50
	}
	r := rand.New(rand.NewSource(20040303))
	zipf := rand.NewZipf(r, 1.4, 1, uint64(len(mins)-1))
	seq := make([]int, steady)
	for i := range seq {
		seq[i] = int(zipf.Uint64())
	}

	var baseNs float64
	for _, v := range []struct {
		name   string
		cached bool
	}{
		{"no-cache", false},
		{"lattice", true},
	} {
		obs := &latticeObs{}
		p := engine.Pipeline{Observer: obs}
		if v.cached {
			p.Cache = lattice.NewStore(engine.DefaultCacheBudget).Cache(db)
			// Warm pass: one request per alphabet threshold builds the
			// ladder (fresh mine at the tightest, relax-mining below).
			for _, m := range mins {
				if _, err := p.Serve(context.Background(), db, nil, m, nil); err != nil {
					return rep, err
				}
			}
			obs.reset() // measure steady state only
		}
		start := time.Now()
		for _, idx := range seq {
			if _, err := p.Serve(context.Background(), db, nil, mins[idx], nil); err != nil {
				return rep, err
			}
		}
		elapsed := time.Since(start)

		minePhases := obs.minePhases
		e := PerfEntry{
			Experiment: "lattice",
			Dataset:    spec.Name,
			Variant:    v.name,
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			NsPerOp:    float64(elapsed.Nanoseconds()) / float64(len(seq)),
			CacheHits:  obs.hits,
			CacheMiss:  obs.misses,
			MinePhases: &minePhases,
		}
		if v.cached {
			e.SpeedupVsSerial = baseNs / e.NsPerOp
		} else {
			baseNs = e.NsPerOp
			e.SpeedupVsSerial = 1
		}
		rep.Entries = append(rep.Entries, e)
	}
	return rep, nil
}
