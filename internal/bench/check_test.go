package bench

import (
	"os"
	"path/filepath"
	"testing"
)

// mineReport builds a synthetic mine report with the given 1-worker par-*
// speedups plus the rows the checker must ignore (serial, multi-worker,
// other experiments, entries without a recorded speedup).
func mineReport(speedups map[string]float64) PerfReport {
	rep := PerfReport{Experiment: "mine", GOMAXPROCS: 4}
	rep.Entries = append(rep.Entries,
		PerfEntry{Experiment: "mine", Dataset: "connect4", Variant: "rp-hmine", GOMAXPROCS: 4, NsPerOp: 100, SpeedupVsSerial: 2.5},
		PerfEntry{Experiment: "mine", Dataset: "connect4", Variant: "par-rp-hmine-4w", GOMAXPROCS: 4, Workers: 4, NsPerOp: 400, SpeedupVsSerial: 0.25},
		PerfEntry{Experiment: "compress", Dataset: "connect4", Variant: "par-ignored-1w", Workers: 1, NsPerOp: 100, SpeedupVsSerial: 0.1},
		PerfEntry{Experiment: "mine", Dataset: "connect4", Variant: "par-no-speedup-1w", Workers: 1, NsPerOp: 100},
	)
	for v, s := range speedups {
		rep.Entries = append(rep.Entries, PerfEntry{
			Experiment: "mine", Dataset: "connect4", Variant: v,
			GOMAXPROCS: 4, Workers: 1, NsPerOp: 100, SpeedupVsSerial: s,
		})
	}
	return rep
}

// TestCheckReport pins the guardrail: only mine-experiment par-* rows at
// Workers == 1 are gated against SpeedupFloor, and a mine report with no
// such rows is itself a violation (an empty gate must not pass green).
func TestCheckReport(t *testing.T) {
	ok := mineReport(map[string]float64{
		"par-rp-hmine-1w":    0.95,
		"par-rp-fptree-1w":   SpeedupFloor,
		"par-rp-treeproj-1w": 1.10,
	})
	if v := CheckReport(ok); len(v) != 0 {
		t.Errorf("clean report flagged: %v", v)
	}

	bad := mineReport(map[string]float64{
		"par-rp-hmine-1w":  0.95,
		"par-rp-fptree-1w": 0.33,
	})
	v := CheckReport(bad)
	if len(v) != 1 {
		t.Fatalf("want exactly the rp-fptree violation, got %v", v)
	}

	empty := PerfReport{Experiment: "mine"}
	if v := CheckReport(empty); len(v) != 1 {
		t.Errorf("mine report with no gated rows must be a violation, got %v", v)
	}
	other := PerfReport{Experiment: "compress"}
	if v := CheckReport(other); len(v) != 0 {
		t.Errorf("non-mine report must not require gated rows: %v", v)
	}
}

// TestLoadReportRoundTrip checks LoadReport reads back what PerfReport.JSON
// wrote, including the warning field.
func TestLoadReportRoundTrip(t *testing.T) {
	rep := mineReport(map[string]float64{"par-rp-hmine-1w": 0.95})
	rep.Warning = "recorded with -allow-serial on NumCPU=1"
	path := filepath.Join(t.TempDir(), "BENCH_mine.json")
	if err := os.WriteFile(path, rep.JSON(), 0o644); err != nil {
		t.Fatal(err)
	}
	back, err := LoadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Warning != rep.Warning || len(back.Entries) != len(rep.Entries) {
		t.Fatalf("round trip mangled: %+v", back)
	}
	if _, err := LoadReport(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("LoadReport accepted a missing file")
	}
}

// TestDiffReports pins the matching key (experiment, dataset, variant,
// gomaxprocs) and the one-sided buckets.
func TestDiffReports(t *testing.T) {
	old := PerfReport{Entries: []PerfEntry{
		{Experiment: "mine", Dataset: "connect4", Variant: "rp-hmine", GOMAXPROCS: 1, NsPerOp: 200, AllocsPerOp: 50, BytesPerOp: 4000},
		{Experiment: "mine", Dataset: "connect4", Variant: "rp-hmine", GOMAXPROCS: 4, NsPerOp: 220, AllocsPerOp: 50, BytesPerOp: 4000},
		{Experiment: "mine", Dataset: "connect4", Variant: "gone", GOMAXPROCS: 1, NsPerOp: 10},
	}}
	cur := PerfReport{Entries: []PerfEntry{
		{Experiment: "mine", Dataset: "connect4", Variant: "rp-hmine", GOMAXPROCS: 1, NsPerOp: 100, AllocsPerOp: 5, BytesPerOp: 400},
		{Experiment: "mine", Dataset: "connect4", Variant: "rp-hmine", GOMAXPROCS: 4, NsPerOp: 110, AllocsPerOp: 5, BytesPerOp: 400},
		{Experiment: "mine", Dataset: "connect4", Variant: "added", GOMAXPROCS: 1, NsPerOp: 10},
	}}
	rows, onlyOld, onlyNew := DiffReports(old, cur)
	if len(rows) != 2 {
		t.Fatalf("want 2 matched rows, got %d", len(rows))
	}
	r := rows[0]
	if r.Key != "mine/connect4/rp-hmine@p1" || r.NsRatio() != 0.5 || r.OldAllocs != 50 || r.NewAllocs != 5 {
		t.Errorf("row 0 = %+v (ratio %v)", r, r.NsRatio())
	}
	if len(onlyOld) != 1 || onlyOld[0] != "mine/connect4/gone@p1" {
		t.Errorf("onlyOld = %v", onlyOld)
	}
	if len(onlyNew) != 1 || onlyNew[0] != "mine/connect4/added@p1" {
		t.Errorf("onlyNew = %v", onlyNew)
	}
}
