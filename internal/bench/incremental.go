package bench

import (
	"fmt"
	"io"
	"text/tabwriter"

	"gogreen/internal/core"
	"gogreen/internal/dataset"
	"gogreen/internal/fup"
	"gogreen/internal/gen"
	"gogreen/internal/mining"
)

func init() {
	register(Experiment{
		ID:    "ablation-incremental",
		Title: "Incremental update: re-mine vs FUP vs recycling across increment sizes",
		Paper: "tests Section 6's claim that incremental techniques degrade on large changes while recycling does not",
		Run:   runIncremental,
	})
}

// runIncremental grows the Weather stand-in by increasing increments and
// compares three ways to refresh the pattern set at the same relative
// threshold: full re-mining (H-Mine), FUP, and compress-and-recycle.
func runIncremental(cfg Config, w io.Writer) error {
	spec := SpecByName("weather")
	orig := Dataset(spec, cfg.Scale)
	const frac = 0.02 // relative threshold maintained across updates
	oldMin := MinCountAt(orig.Len(), frac)
	oldFP := minedAt(orig, oldMin)

	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "increment\t#tuples\t#patterns\tre-mine\tFUP\trecycle\tFUP vs recycle")
	for _, incFrac := range []float64{0.01, 0.1, 0.5, 1.0} {
		delta := gen.Sparse(gen.SparseConfig{
			NumTx:        int(float64(orig.Len())*incFrac) + 1,
			NumItems:     7959,
			AvgLen:       15,
			NumSources:   400,
			AvgSourceLen: 4,
			Correlation:  0.5,
			CorruptMean:  0.5,
			Hot: []gen.HotPattern{ // a shifted mix: some patterns persist, some emerge
				{Len: 9, Prob: 0.100}, {Len: 8, Prob: 0.100}, {Len: 7, Prob: 0.100},
				{Len: 6, Prob: 0.120}, {Len: 5, Prob: 0.150}, {Len: 6, Prob: 0.080},
			},
			Seed: 77,
		})
		combined := concatDB(orig, delta)
		newMin := MinCountAt(combined.Len(), frac)

		var nRemine int
		remine := Timed(func() {
			nRemine = len(minedAt(combined, newMin))
		})
		var errFUP error
		var nFUP int
		fupT := Timed(func() {
			ps, err := fup.Update(orig, oldFP, oldMin, delta, newMin)
			errFUP = err
			nFUP = len(ps)
		})
		if errFUP != nil {
			return errFUP
		}
		var nRec int
		rec := Timed(func() {
			cdb := core.Compress(combined, oldFP, core.MCP)
			var c mining.Count
			if err := rphmineMiner().MineCDB(cdb, newMin, &c); err != nil {
				panic(err)
			}
			nRec = c.N
		})
		if nFUP != nRemine || nRec != nRemine {
			panic(fmt.Sprintf("bench: incremental mismatch: remine=%d fup=%d recycle=%d",
				nRemine, nFUP, nRec))
		}
		fmt.Fprintf(tw, "%.0f%%\t%d\t%d\t%.3fs\t%.3fs\t%.3fs\t%.1fx\n",
			incFrac*100, combined.Len(), nRemine,
			remine.Seconds(), fupT.Seconds(), rec.Seconds(),
			fupT.Seconds()/rec.Seconds())
	}
	return tw.Flush()
}

// minedAt mines db at min with H-Mine and returns the patterns.
func minedAt(db *dataset.DB, min int) []mining.Pattern {
	var col mining.Collector
	if err := hmineMiner().Mine(db, min, &col); err != nil {
		panic(err)
	}
	return col.Patterns
}

// concatDB concatenates two databases.
func concatDB(a, b *dataset.DB) *dataset.DB {
	tx := make([][]dataset.Item, 0, a.Len()+b.Len())
	tx = append(tx, a.All()...)
	tx = append(tx, b.All()...)
	return dataset.New(tx)
}
