package bench

import (
	"fmt"
	"io"
	"text/tabwriter"

	"gogreen/internal/mining"
	"gogreen/internal/twostep"
)

func init() {
	register(Experiment{
		ID:    "ablation-twostep",
		Title: "Two-step cold mining: direct vs split (high ξ then recycle) vs progressive cascade",
		Paper: "answers §5.2 observation 1's open question: when does splitting a cold low-support task pay off?",
		Run:   runTwoStep,
	})
}

// runTwoStep compares direct H-Mine against the paper-proposed split and
// the geometric cascade, from a cold start (no previous round).
func runTwoStep(cfg Config, w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "dataset\tξ_new\tdirect\ttwo-step(4x)\tprogressive\tbest speedup")
	for _, name := range []string{"weather", "connect4", "pumsb"} {
		spec := SpecByName(name)
		db := Dataset(spec, cfg.Scale)
		for _, xi := range []float64{spec.Sweep[len(spec.Sweep)/2], spec.Sweep[len(spec.Sweep)-1]} {
			min := MinCountAt(db.Len(), xi)
			var patterns int
			direct := Timed(func() {
				var c mining.Count
				if err := hmineMiner().Mine(db, min, &c); err != nil {
					panic(err)
				}
				patterns = c.N
			})
			opts := twostep.Options{Engine: "rp-hmine"}
			split := Timed(func() {
				var c mining.Count
				if err := twostep.Mine(db, min, opts, &c); err != nil {
					panic(err)
				}
				if c.N != patterns {
					panic(fmt.Sprintf("bench: two-step mismatch %d vs %d", c.N, patterns))
				}
			})
			prog := Timed(func() {
				var c mining.Count
				if err := twostep.Progressive(db, min, opts, &c); err != nil {
					panic(err)
				}
				if c.N != patterns {
					panic(fmt.Sprintf("bench: progressive mismatch %d vs %d", c.N, patterns))
				}
			})
			best := split.Seconds()
			if prog.Seconds() < best {
				best = prog.Seconds()
			}
			fmt.Fprintf(tw, "%s\t%.3f\t%.3fs\t%.3fs\t%.3fs\t%.1fx\n",
				name, xi, direct.Seconds(), split.Seconds(), prog.Seconds(),
				direct.Seconds()/best)
		}
	}
	return tw.Flush()
}
