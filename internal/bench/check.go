// Report guardrails: the machine-checkable acceptance criteria rpbench
// enforces over recorded BENCH_*.json baselines (-check) and the
// entry-by-entry comparison behind rpbench -diff. The floor lives here, in
// code, so CI's gate and the docs can never quietly diverge.
package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// SpeedupFloor is the minimum speedup_vs_serial a par-* mine row measured
// at Workers == 1 must reach: the single-worker parallel wrapper may cost
// at most ~10% over its own serial miner. Per-worker scratch reuse and
// batched emission exist to hold this floor; CI fails the build when a
// change pushes dispatch overhead back above it.
const SpeedupFloor = 0.9

// LoadReport reads and decodes one BENCH_*.json file.
func LoadReport(path string) (PerfReport, error) {
	var rep PerfReport
	b, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(b, &rep); err != nil {
		return rep, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

// CheckReport validates a mine report against the speedup guardrail and
// returns one human-readable violation per failing entry (empty = pass).
// Only mine-experiment par-* rows with Workers == 1 are gated: their
// SpeedupVsSerial is a pure dispatch-overhead measurement against the same
// miner's serial row at the same GOMAXPROCS, so it is meaningful on any
// machine — including single-core runners, where multi-worker speedups are
// scheduling artifacts. Rows without a recorded speedup are skipped.
func CheckReport(rep PerfReport) []string {
	var violations []string
	checked := 0
	for _, e := range rep.Entries {
		if e.Experiment != "mine" || e.Workers != 1 ||
			!strings.HasPrefix(e.Variant, "par-") || e.SpeedupVsSerial == 0 {
			continue
		}
		checked++
		if e.SpeedupVsSerial < SpeedupFloor {
			violations = append(violations, fmt.Sprintf(
				"%s (gomaxprocs=%d): speedup_vs_serial %.2fx < %.2fx floor (1-worker dispatch overhead)",
				e.Variant, e.GOMAXPROCS, e.SpeedupVsSerial, SpeedupFloor))
		}
	}
	if rep.Experiment == "mine" && checked == 0 {
		violations = append(violations,
			"no par-* 1-worker mine rows found; the guardrail checked nothing")
	}
	return violations
}

// DiffRow is one entry-level comparison between two reports.
type DiffRow struct {
	Key                  string // "experiment/dataset/variant@pN"
	OldNs, NewNs         float64
	OldAllocs, NewAllocs int64
	OldBytes, NewBytes   int64
}

// NsRatio is new/old time (< 1 means the new report is faster).
func (d DiffRow) NsRatio() float64 {
	if d.OldNs == 0 {
		return 0
	}
	return d.NewNs / d.OldNs
}

// DiffReports matches entries of two reports by (experiment, dataset,
// variant, gomaxprocs) and returns the common rows in the new report's
// order, plus keys present in only one side. Entries without alloc data
// (phase rows) still diff on time.
func DiffReports(old, cur PerfReport) (rows []DiffRow, onlyOld, onlyNew []string) {
	key := func(e PerfEntry) string {
		return fmt.Sprintf("%s/%s/%s@p%d", e.Experiment, e.Dataset, e.Variant, e.GOMAXPROCS)
	}
	oldBy := make(map[string]PerfEntry, len(old.Entries))
	for _, e := range old.Entries {
		oldBy[key(e)] = e
	}
	seen := make(map[string]bool, len(cur.Entries))
	for _, e := range cur.Entries {
		k := key(e)
		seen[k] = true
		o, ok := oldBy[k]
		if !ok {
			onlyNew = append(onlyNew, k)
			continue
		}
		rows = append(rows, DiffRow{
			Key:   k,
			OldNs: o.NsPerOp, NewNs: e.NsPerOp,
			OldAllocs: o.AllocsPerOp, NewAllocs: e.AllocsPerOp,
			OldBytes: o.BytesPerOp, NewBytes: e.BytesPerOp,
		})
	}
	for k := range oldBy {
		if !seen[k] {
			onlyOld = append(onlyOld, k)
		}
	}
	sort.Strings(onlyOld)
	sort.Strings(onlyNew)
	return rows, onlyOld, onlyNew
}
