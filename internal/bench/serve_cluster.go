// The multi-process arm of the serve harness: ServeCluster spawns real
// `rpserved -role shard` processes plus a `-role router` front from a built
// binary and drives the Zipf workload through the router over real HTTP —
// the same measurement ServePerf takes in-process, now with process
// isolation and loopback forwarding in the request path. The delta between
// a "zipf" entry and a "cluster" entry at the same shard count is the price
// of the process boundary.

package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os/exec"
	"runtime"
	"strings"
	"time"

	"gogreen/internal/metrics"
	"gogreen/internal/server"
)

// HTTPDoer returns a doer driving a live service at addr ("host:port" or a
// full URL) over real HTTP, tagging each request with its tenant header.
func HTTPDoer(addr string) func(method, path, tenant, body string) (int, error) {
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return func(method, path, tenant, body string) (int, error) {
		req, err := http.NewRequest(method, base+path, strings.NewReader(body))
		if err != nil {
			return 0, err
		}
		if tenant != "" {
			req.Header.Set(server.TenantHeader, tenant)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return 0, err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode, nil
	}
}

// freePort reserves a loopback port by binding and releasing it.
func freePort() (string, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := l.Addr().String()
	l.Close()
	return addr, nil
}

// getJSON fetches url and decodes its JSON body into v.
func getJSON(url string, v any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return fmt.Errorf("%s: status %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// waitReady polls url until ok approves its decoded body (deadline 15s).
func waitReady(url string, ok func(body []byte) bool) error {
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url)
		if err == nil {
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK && ok(body) {
				return nil
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	return fmt.Errorf("%s: not ready within 15s", url)
}

// procs is a set of spawned cluster processes with teardown.
type procs []*exec.Cmd

func (p procs) kill() {
	for _, c := range p {
		if c.Process != nil {
			c.Process.Kill()
		}
	}
	for _, c := range p {
		c.Wait()
	}
}

// newServeReport stamps the environment fields every serve-family report
// shares.
func newServeReport(cfg ServeConfig) ServeReport {
	return ServeReport{
		Experiment:  "serve",
		Quick:       cfg.Quick,
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
		Tenants:     cfg.Tenants,
		CacheBudget: cfg.CacheBudget,
		ZipfS:       cfg.ZipfS,
	}
}

// ServeCluster spawns n shard processes and a router from bin (a built
// rpserved) on loopback ports, drives the Zipf workload through the router,
// and reports one "cluster" entry. Lattice counters are summed from the
// shard processes' own /metrics snapshots.
func ServeCluster(cfg ServeConfig, bin string, n int, progress func(string)) (ServeReport, error) {
	if progress == nil {
		progress = func(string) {}
	}
	rep := newServeReport(cfg)
	if n < 1 {
		return rep, fmt.Errorf("cluster: need at least one shard, got %d", n)
	}

	shardAddrs := make([]string, n)
	var cluster procs
	defer func() { cluster.kill() }()
	for i := 0; i < n; i++ {
		addr, err := freePort()
		if err != nil {
			return rep, err
		}
		shardAddrs[i] = addr
		cmd := exec.Command(bin, "-role", "shard",
			"-shard-index", fmt.Sprint(i), "-addr", addr,
			"-cache-budget-mb", fmt.Sprint(ceilMiB(cfg.CacheBudget/int64(n))))
		cmd.Stdout, cmd.Stderr = io.Discard, io.Discard
		if err := cmd.Start(); err != nil {
			return rep, fmt.Errorf("cluster: start shard %d: %w", i, err)
		}
		cluster = append(cluster, cmd)
	}
	for i, addr := range shardAddrs {
		if err := waitReady("http://"+addr+"/healthz", func([]byte) bool { return true }); err != nil {
			return rep, fmt.Errorf("cluster: shard %d: %w", i, err)
		}
	}

	routerAddr, err := freePort()
	if err != nil {
		return rep, err
	}
	cmd := exec.Command(bin, "-role", "router",
		"-shard-addrs", strings.Join(shardAddrs, ","),
		"-addr", routerAddr, "-probe-interval", "500ms")
	cmd.Stdout, cmd.Stderr = io.Discard, io.Discard
	if err := cmd.Start(); err != nil {
		return rep, fmt.Errorf("cluster: start router: %w", err)
	}
	cluster = append(cluster, cmd)
	err = waitReady("http://"+routerAddr+"/healthz", func(body []byte) bool {
		var h struct {
			Healthy int `json:"healthy"`
		}
		return json.Unmarshal(body, &h) == nil && h.Healthy == n
	})
	if err != nil {
		return rep, fmt.Errorf("cluster: router: %w", err)
	}

	do := HTTPDoer(routerAddr)
	progress(fmt.Sprintf("cluster: uploading %d tenant databases through the router", cfg.Tenants))
	if err := uploadTenants(do, serveBaskets(32), cfg.Tenants); err != nil {
		return rep, err
	}
	progress(fmt.Sprintf("cluster: %d requests, %d workers, %d shard processes", cfg.Requests, cfg.Concurrency, n))
	st, err := runMineLoad(do, cfg, cfg.Tenants, cfg.Requests, cfg.Concurrency)
	if err != nil {
		return rep, err
	}
	e := entryFrom("cluster", n, cfg.Tenants, cfg.Concurrency, st)
	for _, addr := range shardAddrs {
		var snap metrics.Snapshot
		if getJSON("http://"+addr+"/metrics", &snap) == nil {
			e.CacheHits += snap.Counters["cache_hit"]
			e.CacheInstalls += snap.Counters["cache_install"]
			e.CacheEvicts += snap.Counters["cache_evict"]
		}
	}
	rep.Entries = append(rep.Entries, e)
	return rep, nil
}

// ceilMiB converts a byte budget to whole MiB, rounding up to at least 1
// (rpserved takes the lattice budget in MiB).
func ceilMiB(b int64) int64 {
	m := (b + (1 << 20) - 1) >> 20
	if m < 1 {
		m = 1
	}
	return m
}
