package bench

import (
	"encoding/json"
	"testing"
)

// microServeConfig is a seconds-scale harness run for tests.
func microServeConfig() ServeConfig {
	return ServeConfig{
		Tenants:     40,
		Requests:    200,
		Concurrency: 4,
		Shards:      []int{1, 2},
		CacheBudget: 64 << 10,
		ZipfS:       1.2,
		Seed:        20040303,
		Quick:       true,
	}
}

// TestServePerfSmoke proves the load harness produces a structurally valid
// report: every phase ran, every request was answered, the cache-hostile
// workload actually exercised installs and evictions, and the abuser in the
// quota phase was rejected without erroring the in-quota tenants.
func TestServePerfSmoke(t *testing.T) {
	rep, err := ServePerf(microServeConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Experiment != "serve" || rep.Tenants != 40 {
		t.Fatalf("report header = %+v", rep)
	}
	phases := map[string]int{}
	for _, e := range rep.Entries {
		phases[e.Phase]++
		if e.Errors != 0 {
			t.Errorf("phase %s (%d shards): %d errored requests", e.Phase, e.Shards, e.Errors)
		}
		if e.OK == 0 {
			t.Errorf("phase %s (%d shards): no successful requests", e.Phase, e.Shards)
		}
		if e.P99Ms < e.P50Ms {
			t.Errorf("phase %s: p99 %v < p50 %v", e.Phase, e.P99Ms, e.P50Ms)
		}
		if e.Phase == "zipf" && (e.CacheInstalls == 0 || e.CacheEvicts == 0) {
			t.Errorf("zipf phase (%d shards): installs=%d evictions=%d, want both > 0 (no cache pressure — the workload is mis-sized)",
				e.Shards, e.CacheInstalls, e.CacheEvicts)
		}
		if e.Phase == "quota-abuse" && e.AbuserRejected == 0 {
			t.Error("quota-abuse phase: the over-quota tenant was never rejected")
		}
	}
	if phases["zipf"] != 2 || phases["quota-baseline"] != 1 || phases["quota-abuse"] != 1 {
		t.Fatalf("phase mix = %v, want 2 zipf + 1 baseline + 1 abuse", phases)
	}

	// The report round-trips through its own JSON rendering.
	var back ServeReport
	if err := json.Unmarshal(rep.JSON(), &back); err != nil {
		t.Fatalf("report JSON does not parse: %v", err)
	}
	if len(back.Entries) != len(rep.Entries) {
		t.Fatalf("round-trip lost entries: %d vs %d", len(back.Entries), len(rep.Entries))
	}
}

// TestPercentile pins the percentile helper's indexing.
func TestPercentile(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if p := percentile(vals, 50); p != 5 {
		t.Errorf("p50 = %v, want 5", p)
	}
	if p := percentile(vals, 99); p != 9 {
		t.Errorf("p99 = %v, want 9", p)
	}
	if p := percentile(nil, 50); p != 0 {
		t.Errorf("p50 of empty = %v, want 0", p)
	}
}
