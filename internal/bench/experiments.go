package bench

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"text/tabwriter"

	"gogreen/internal/core"
	"gogreen/internal/dataset"
	"gogreen/internal/engine"
	"gogreen/internal/memlimit"
	"gogreen/internal/mining"
)

// family pairs a non-recycling baseline with its recycling adaptation, both
// resolved from the engine registry by canonical name.
type family struct {
	label    string
	baseline mining.Miner
	engine   core.CDBMiner
}

func families() []family {
	return []family{
		{"HM", registryMiner("hmine"), registryEngine("rp-hmine")},
		{"FP", registryMiner("fptree"), registryEngine("rp-fptree")},
		{"TP", registryMiner("treeproj"), registryEngine("rp-treeproj")},
	}
}

func init() {
	register(Experiment{
		ID:    "table3",
		Title: "Dataset properties and compression statistics",
		Paper: "Table 3: tuples/avg-len/items per dataset; #patterns and max length at ξ_old; compression run time (I/O and pipeline) and ratio for MCP and MLP",
		Run:   runTable3,
	})
	for i, spec := range Specs {
		for j, fam := range families() {
			id := fmt.Sprintf("fig%d", 9+3*i+j)
			spec, fam := spec, fam
			register(Experiment{
				ID:    id,
				Title: fmt.Sprintf("%s family on %s: runtime vs ξ_new (ξ_old=%g)", fam.label, spec.Name, spec.XiOld),
				Paper: fmt.Sprintf("Figure %s: %s vs %s-MCP vs %s-MLP on %s; recycling wins, MCP ≥ MLP", id[3:], fam.label, fam.label, fam.label, spec.Name),
				Run: func(cfg Config, w io.Writer) error {
					return runFigure(cfg, w, &spec, fam)
				},
			})
		}
	}
	for i, spec := range Specs {
		id := fmt.Sprintf("fig%d", 21+i)
		spec := spec
		register(Experiment{
			ID:    id,
			Title: fmt.Sprintf("Memory-limited mining on %s: H-Mine vs HM-MCP at 4 MB and 8 MB", spec.Name),
			Paper: fmt.Sprintf("Figure %s: with 4/8 MB budgets, HM-MCP outperforms H-Mine on %s", id[3:], spec.Name),
			Run: func(cfg Config, w io.Writer) error {
				return runMemFigure(cfg, w, &spec)
			},
		})
	}
}

// runTable3 regenerates Table 3.
func runTable3(cfg Config, w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "dataset\t#tuples\tavg.len\t#items\tξ_old\t#patterns\tmax.len\tstrategy\truntime(I/O)\truntime(pipeline)\tratio")
	for i := range Specs {
		spec := &Specs[i]
		db := Dataset(spec, cfg.Scale)
		st := db.Stats()
		fp := RecycledPatterns(spec, cfg.Scale)
		maxLen := 0
		for _, p := range fp {
			if len(p.Items) > maxLen {
				maxLen = len(p.Items)
			}
		}
		for _, strat := range []core.Strategy{core.MCP, core.MLP} {
			var cdb *core.CDB
			// Pipeline time: compression only (the paper's column that
			// deducts I/O, since compression can ride along with the
			// projection pass a miner performs anyway).
			pipeline := Timed(func() {
				cdb = core.Compress(db, fp, strat)
			})
			// I/O time: reading the database from disk and writing the
			// compressed result back, around the same compression.
			dir, err := os.MkdirTemp(cfg.TempDir, "gogreen-table3-")
			if err != nil {
				return err
			}
			raw := filepath.Join(dir, "db.basket")
			if err := dataset.WriteBasketFile(raw, db); err != nil {
				os.RemoveAll(dir)
				return err
			}
			withIO := Timed(func() {
				rdb, err := dataset.ReadBasketIDsFile(raw)
				if err != nil {
					panic(err)
				}
				c := core.Compress(rdb, fp, strat)
				if err := writeCDB(filepath.Join(dir, "db.cdb"), c); err != nil {
					panic(err)
				}
			})
			os.RemoveAll(dir)
			s := cdb.Stats()
			fmt.Fprintf(tw, "%s\t%d\t%.1f\t%d\t%.3f\t%d\t%d\t%s\t%.2fs\t%.2fs\t%.3f\n",
				spec.Name, st.NumTx, st.AvgLen, st.NumItems, spec.XiOld,
				len(fp), maxLen, strat, withIO.Seconds(), pipeline.Seconds(), s.Ratio)
		}
	}
	return tw.Flush()
}

// writeCDB persists a compressed database as text (groups then loose), the
// "write" half of Table 3's I/O accounting.
func writeCDB(path string, cdb *core.CDB) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	for i := range cdb.Groups {
		g := &cdb.Groups[i]
		fmt.Fprintf(f, "g %v %d\n", g.Pattern, g.Count())
		for _, t := range g.Tails {
			fmt.Fprintf(f, "t %v\n", t)
		}
	}
	for _, t := range cdb.Loose {
		fmt.Fprintf(f, "l %v\n", t)
	}
	return f.Close()
}

// runFigure regenerates one of figures 9-20: runtime vs ξ_new for a
// baseline and its two recycling variants. Mining output is counted, not
// materialized, matching the paper's exclusion of output time.
func runFigure(cfg Config, w io.Writer, spec *DatasetSpec, fam family) error {
	db := Dataset(spec, cfg.Scale)
	cdbMCP := CompressedDB(spec, cfg.Scale, core.MCP)
	cdbMLP := CompressedDB(spec, cfg.Scale, core.MLP)

	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "ξ_new\t#patterns\t%s\t%s-MCP\t%s-MLP\tspeedup(MCP)\n", fam.label, fam.label, fam.label)
	for _, xi := range cfg.sweepOf(spec.Sweep) {
		min := MinCountAt(db.Len(), xi)
		var n mining.Count
		base := Timed(func() {
			n = mining.Count{}
			if err := fam.baseline.Mine(db, min, &n); err != nil {
				panic(err)
			}
		})
		patterns := n.N
		mcp := Timed(func() {
			var c mining.Count
			if err := fam.engine.MineCDB(cdbMCP, min, &c); err != nil {
				panic(err)
			}
			if c.N != patterns {
				panic(fmt.Sprintf("bench: %s-MCP found %d patterns, baseline %d", fam.label, c.N, patterns))
			}
		})
		mlp := Timed(func() {
			var c mining.Count
			if err := fam.engine.MineCDB(cdbMLP, min, &c); err != nil {
				panic(err)
			}
			if c.N != patterns {
				panic(fmt.Sprintf("bench: %s-MLP found %d patterns, baseline %d", fam.label, c.N, patterns))
			}
		})
		fmt.Fprintf(tw, "%.3f\t%d\t%.3fs\t%.3fs\t%.3fs\t%.1fx\n",
			xi, patterns, base.Seconds(), mcp.Seconds(), mlp.Seconds(),
			base.Seconds()/mcp.Seconds())
	}
	return tw.Flush()
}

// runMemFigure regenerates one of figures 21-24: memory-limited H-Mine vs
// HM-MCP at 4 MB and 8 MB budgets.
func runMemFigure(cfg Config, w io.Writer, spec *DatasetSpec) error {
	db := Dataset(spec, cfg.Scale)
	cdb := CompressedDB(spec, cfg.Scale, core.MCP)

	// Budgets scale with the data so the disk path actually triggers at
	// bench scales: the paper's 4/8 MB assume paper-sized datasets.
	full := memlimit.EstimateTxBytes(flatten(db))
	budgets := []int64{4 << 20, 8 << 20}
	if full <= budgets[0] {
		budgets = []int64{full / 4, full / 2}
	}

	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "ξ_new\tbudget\tH-Mine\tHM-MCP\tspeedup")
	for _, xi := range cfg.sweepOf(spec.MemSweep) {
		min := MinCountAt(db.Len(), xi)
		for _, budget := range budgets {
			mcfg := memlimit.Config{Budget: budget, TempDir: cfg.TempDir}
			var patterns int
			base := Timed(func() {
				var c mining.Count
				if err := memlimit.MineDB(db, min, mcfg, &c); err != nil {
					panic(err)
				}
				patterns = c.N
			})
			rec := Timed(func() {
				var c mining.Count
				if err := memlimit.MineCDB(cdb, min, mcfg, &c); err != nil {
					panic(err)
				}
				if c.N != patterns {
					panic(fmt.Sprintf("bench: memlimit HM-MCP found %d patterns, H-Mine %d", c.N, patterns))
				}
			})
			fmt.Fprintf(tw, "%.3f\t%s\t%.3fs\t%.3fs\t%.1fx\n",
				xi, humanBytes(budget), base.Seconds(), rec.Seconds(),
				base.Seconds()/rec.Seconds())
		}
	}
	return tw.Flush()
}

func flatten(db *dataset.DB) [][]dataset.Item { return db.All() }

// registryMiner and registryEngine resolve canonical names through the
// engine registry; an unknown name is a bench bug, not an input error.
func registryMiner(name string) mining.Miner {
	m, err := engine.NewMiner(name, 0)
	if err != nil {
		panic(err)
	}
	return m
}

func registryEngine(name string) core.CDBMiner {
	e, err := engine.NewEngine(name, 0)
	if err != nil {
		panic(err)
	}
	return e
}

// hmineMiner, rphmineMiner and engines centralize miner construction for
// the ablation experiments.
func hmineMiner() mining.Miner    { return registryMiner("hmine") }
func rphmineMiner() core.CDBMiner { return registryEngine("rp-hmine") }

// engines returns every serial recycled engine the registry carries, so a
// newly registered engine joins the ablation grid automatically.
func engines() []core.CDBMiner {
	var out []core.CDBMiner
	for _, d := range engine.Descriptors() {
		if d.Kind == engine.Recycled && d.Base == "" {
			out = append(out, d.Engine(0))
		}
	}
	return out
}

// humanBytes renders a budget compactly.
func humanBytes(b int64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%dMB", b>>20)
	case b >= 1<<10:
		return fmt.Sprintf("%dKB", b>>10)
	default:
		return fmt.Sprintf("%dB", b)
	}
}
