// Serve is the service load harness behind cmd/rploadgen: it drives the
// sharded HTTP service with a Zipf-skewed many-tenant workload and renders
// latency percentiles, shed rates, and admission-control behavior as the
// checked-in BENCH_serve.json baseline. The interesting question it answers
// is not "how fast is one mine" (BENCH_mine.json's job) but "what happens to
// tail latency when thousands of tenants share one service" — and how the
// shard count and per-tenant quotas change that answer.
package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"gogreen/internal/gen"
	"gogreen/internal/server"
	"gogreen/internal/shard"
)

// ServeConfig parameterizes the load harness.
type ServeConfig struct {
	// Tenants is the number of simulated tenants; each owns one small
	// database (drawn from a fixed pool of generated contents) named after
	// itself.
	Tenants int
	// Requests is the mining-request count per shard-grid point.
	Requests int
	// Concurrency is the number of concurrent client workers.
	Concurrency int
	// Shards is the shard-count grid; every point runs the same workload.
	Shards []int
	// CacheBudget is the lattice store budget in bytes. Size it well below
	// Tenants × rung-size: the harness is specifically about behavior under
	// cache pressure, where every install pays an eviction scan.
	CacheBudget int64
	// ZipfS is the skew exponent of tenant selection (>1; higher = hotter
	// hot tenants).
	ZipfS float64
	// Seed drives tenant selection and threshold choice.
	Seed int64
	// Quick marks a smoke-sized run.
	Quick bool
}

// DefaultServeConfig returns the standard harness shape: full runs simulate
// 10k tenants, quick runs a CI-sized slice of the same workload.
func DefaultServeConfig(quick bool) ServeConfig {
	if quick {
		return ServeConfig{
			Tenants:     600,
			Requests:    3000,
			Concurrency: 8,
			Shards:      []int{1, 2},
			CacheBudget: 1 << 19, // 512 KiB: ~hundreds of resident rungs
			ZipfS:       1.2,
			Seed:        20040303,
			Quick:       true,
		}
	}
	return ServeConfig{
		Tenants:     10000,
		Requests:    40000,
		Concurrency: 32,
		Shards:      []int{1, 2, 4, 8},
		CacheBudget: 8 << 20, // 8 MiB: thousands of resident rungs at 1 shard
		ZipfS:       1.2,
		Seed:        20040303,
		Quick:       false,
	}
}

// ServeEntry is one measured phase of the load harness.
type ServeEntry struct {
	// Phase is "zipf" (the shard-grid workload), "quota-baseline" (in-quota
	// tenants alone), or "quota-abuse" (same, with an over-quota tenant
	// hammering concurrently).
	Phase       string `json:"phase"`
	Shards      int    `json:"shards"`
	Tenants     int    `json:"tenants"`
	Requests    int    `json:"requests"`
	Concurrency int    `json:"concurrency"`

	P50Ms  float64 `json:"p50_ms"`
	P90Ms  float64 `json:"p90_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MeanMs float64 `json:"mean_ms"`
	// ReqPerSec is wall-clock throughput over the measured phase.
	ReqPerSec float64 `json:"requests_per_sec"`

	// OK / Rejected / Errors partition the responses; ShedRate is
	// Rejected/(OK+Rejected+Errors). In the zipf phase rejections are queue
	// sheds (none expected: the workload mines synchronously); in the quota
	// phases they are admission-control 429s.
	OK       int     `json:"ok"`
	Rejected int     `json:"rejected_429"`
	Errors   int     `json:"errors"`
	ShedRate float64 `json:"shed_rate"`

	// Lattice counters over the phase: hits answer without mining, installs
	// each paid an eviction scan of the owning shard's resident rungs.
	CacheHits     int64 `json:"cache_hits"`
	CacheInstalls int64 `json:"cache_installs"`
	CacheEvicts   int64 `json:"cache_evictions"`

	// P99VsOneShard is the 1-shard zipf p99 divided by this entry's (zipf
	// entries only; the 1-shard row reports 1). >1 means this shard count
	// has the lower tail.
	P99VsOneShard float64 `json:"p99_vs_one_shard,omitempty"`

	// AbuserRequests/AbuserRejected describe the over-quota tenant's
	// traffic in the quota-abuse phase.
	AbuserRequests int `json:"abuser_requests,omitempty"`
	AbuserRejected int `json:"abuser_rejected,omitempty"`
}

// ServeReport is the schema of BENCH_serve.json.
type ServeReport struct {
	Experiment  string  `json:"experiment"`
	Quick       bool    `json:"quick"`
	GoVersion   string  `json:"go_version"`
	GOMAXPROCS  int     `json:"gomaxprocs"`
	NumCPU      int     `json:"num_cpu"`
	Tenants     int     `json:"tenants"`
	CacheBudget int64   `json:"cache_budget_bytes"`
	ZipfS       float64 `json:"zipf_s"`
	// Warning flags measurement-validity caveats. On a single-core machine
	// multi-shard tail-latency gains are real but come from smaller
	// per-shard eviction scans and critical sections, not parallelism —
	// the warning keeps that claim honest.
	Warning string       `json:"warning,omitempty"`
	Entries []ServeEntry `json:"entries"`
}

// JSON renders the report indented, ending in a newline.
func (r ServeReport) JSON() []byte {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		panic(err) // static schema: cannot fail
	}
	return append(b, '\n')
}

// serveDoer issues one request against the service under test and returns
// the HTTP status code.
type serveDoer func(method, path, tenant, body string) (int, error)

// handlerDoer drives an in-process handler directly — no sockets, so the
// measured latencies are the service stack (routing, admission, locks,
// mining, lattice) rather than loopback noise.
func handlerDoer(srv *server.Server) serveDoer {
	h := srv.Handler()
	return func(method, path, tenant, body string) (int, error) {
		req := httptest.NewRequest(method, path, strings.NewReader(body))
		if tenant != "" {
			req.Header.Set(server.TenantHeader, tenant)
		}
		rw := httptest.NewRecorder()
		h.ServeHTTP(rw, req)
		return rw.Code, nil
	}
}

// serveBaskets renders the pool of small database contents tenants upload.
// The pool is tiny (distinct contents don't matter, distinct *databases* do:
// each gets its own lattice ladder) and each database is small enough that a
// fresh mine costs well under a millisecond — so the harness measures
// service behavior, not raw mining throughput.
func serveBaskets(n int) []string {
	out := make([]string, n)
	for i := range out {
		db := gen.Dense(gen.DenseConfig{
			NumTx:         80,
			NumAttrs:      12,
			ValuesPerAttr: 3,
			TopProbLo:     0.10,
			TopProbHi:     0.30,
			NoiseTop:      0.05,
			Hierarchies: []gen.Hierarchy{
				{Start: 0, Sizes: []int{3, 6}, Probs: []float64{0.7, 0.45}},
			},
			Seed: 7000 + int64(i),
		})
		var sb strings.Builder
		for _, tx := range db.All() {
			for j, it := range tx {
				if j > 0 {
					sb.WriteByte(' ')
				}
				fmt.Fprintf(&sb, "%d", it)
			}
			sb.WriteByte('\n')
		}
		out[i] = sb.String()
	}
	return out
}

// tenantName returns tenant i's id (also its database id).
func tenantName(i int) string { return fmt.Sprintf("t%05d", i) }

// serveThresholds is the min_support mix requests draw from: close enough
// that ladders stay small, spread enough that cold tenants install fresh
// rungs instead of pure-filtering forever.
var serveThresholds = []float64{0.6, 0.5, 0.45, 0.4, 0.35, 0.3}

// uploadTenants PUTs every tenant's database (not measured).
func uploadTenants(do serveDoer, baskets []string, tenants int) error {
	for i := 0; i < tenants; i++ {
		name := tenantName(i)
		code, err := do("PUT", "/db/"+name, name, baskets[i%len(baskets)])
		if err != nil {
			return fmt.Errorf("upload %s: %w", name, err)
		}
		if code != 200 && code != 201 {
			return fmt.Errorf("upload %s: status %d", name, code)
		}
	}
	return nil
}

// phaseStats aggregates one measured phase.
type phaseStats struct {
	latencies []float64 // milliseconds
	ok        int
	rejected  int
	errors    int
	elapsed   time.Duration
}

// runMineLoad fires requests Zipf-skewed mining requests at the service from
// conc workers and collects per-request latencies. Each worker owns its RNG
// (seeded off cfg.Seed and the worker index) so runs are as reproducible as
// goroutine interleaving allows.
func runMineLoad(do serveDoer, cfg ServeConfig, tenants, requests, conc int) (phaseStats, error) {
	perWorker := requests / conc
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		stats phaseStats
		fail  error
	)
	start := time.Now()
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(cfg.Seed + int64(w)*7919))
			zipf := rand.NewZipf(r, cfg.ZipfS, 1, uint64(tenants-1))
			lats := make([]float64, 0, perWorker)
			ok, rej, errs := 0, 0, 0
			for i := 0; i < perWorker; i++ {
				tenant := tenantName(int(zipf.Uint64()))
				xi := serveThresholds[r.Intn(len(serveThresholds))]
				body := fmt.Sprintf(`{"min_support":%g}`, xi)
				t0 := time.Now()
				code, err := do("POST", "/db/"+tenant+"/mine", tenant, body)
				lats = append(lats, float64(time.Since(t0).Microseconds())/1000)
				switch {
				case err != nil:
					mu.Lock()
					fail = err
					mu.Unlock()
					return
				case code == 200:
					ok++
				case code == 429:
					rej++
				default:
					errs++
				}
			}
			mu.Lock()
			stats.latencies = append(stats.latencies, lats...)
			stats.ok += ok
			stats.rejected += rej
			stats.errors += errs
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	stats.elapsed = time.Since(start)
	return stats, fail
}

// percentile returns the p-th percentile (0..100) of sorted values.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p / 100 * float64(len(sorted)-1))
	return sorted[i]
}

// entryFrom renders a phase's stats.
func entryFrom(phase string, shards, tenants, conc int, st phaseStats) ServeEntry {
	sort.Float64s(st.latencies)
	var sum float64
	for _, l := range st.latencies {
		sum += l
	}
	n := st.ok + st.rejected + st.errors
	e := ServeEntry{
		Phase:       phase,
		Shards:      shards,
		Tenants:     tenants,
		Requests:    n,
		Concurrency: conc,
		P50Ms:       percentile(st.latencies, 50),
		P90Ms:       percentile(st.latencies, 90),
		P99Ms:       percentile(st.latencies, 99),
		OK:          st.ok,
		Rejected:    st.rejected,
		Errors:      st.errors,
	}
	if len(st.latencies) > 0 {
		e.MeanMs = sum / float64(len(st.latencies))
	}
	if st.elapsed > 0 {
		e.ReqPerSec = float64(n) / st.elapsed.Seconds()
	}
	if n > 0 {
		e.ShedRate = float64(st.rejected) / float64(n)
	}
	return e
}

// ServePerf runs the full harness: the Zipf workload across the shard grid,
// then the admission-control pair (in-quota tenants with and without an
// over-quota abuser) at the grid's largest shard count.
func ServePerf(cfg ServeConfig, progress func(string)) (ServeReport, error) {
	if progress == nil {
		progress = func(string) {}
	}
	rep := newServeReport(cfg)
	if runtime.NumCPU() == 1 {
		rep.Warning = "single-core machine: multi-shard tail gains reflect smaller per-shard eviction scans and critical sections, not parallelism"
	}
	baskets := serveBaskets(32)

	// Phase 1: the Zipf mining workload at every shard count.
	var p99OneShard float64
	for _, n := range cfg.Shards {
		progress(fmt.Sprintf("zipf workload: %d tenants, %d requests, %d shards", cfg.Tenants, cfg.Requests, n))
		srv := server.New(server.WithShards(n), server.WithCacheBudget(cfg.CacheBudget))
		if err := uploadTenants(handlerDoer(srv), baskets, cfg.Tenants); err != nil {
			srv.Shutdown(context.Background())
			return rep, err
		}
		st, err := runMineLoad(handlerDoer(srv), cfg, cfg.Tenants, cfg.Requests, cfg.Concurrency)
		if err != nil {
			srv.Shutdown(context.Background())
			return rep, err
		}
		e := entryFrom("zipf", n, cfg.Tenants, cfg.Concurrency, st)
		e.CacheHits = srv.Registry().Counter("cache_hit").Value()
		e.CacheInstalls = srv.Registry().Counter("cache_install").Value()
		e.CacheEvicts = srv.Registry().Counter("cache_evict").Value()
		if n == 1 {
			p99OneShard = e.P99Ms
		}
		if p99OneShard > 0 && e.P99Ms > 0 {
			e.P99VsOneShard = p99OneShard / e.P99Ms
		}
		rep.Entries = append(rep.Entries, e)
		srv.Shutdown(context.Background())
	}

	// Phase 2: admission control. In-quota tenants run the same mining
	// workload at the largest shard count — first alone, then with one
	// over-quota tenant hammering PUTs — so the pair of p50s answers "does
	// an abusive tenant degrade everyone else" directly.
	nShards := cfg.Shards[len(cfg.Shards)-1]
	qTenants := cfg.Tenants / 4
	if qTenants < 10 {
		qTenants = 10
	}
	qRequests := cfg.Requests / 4
	quotas := shard.Quotas{MaxDBs: 4}
	for _, abuse := range []bool{false, true} {
		phase := "quota-baseline"
		if abuse {
			phase = "quota-abuse"
		}
		progress(fmt.Sprintf("%s: %d tenants, %d requests, %d shards", phase, qTenants, qRequests, nShards))
		srv := server.New(server.WithShards(nShards),
			server.WithCacheBudget(cfg.CacheBudget), server.WithQuotas(quotas))
		do := handlerDoer(srv)
		if err := uploadTenants(do, baskets, qTenants); err != nil {
			return rep, err
		}
		stop := make(chan struct{})
		abuserDone := make(chan [2]int, 1)
		if abuse {
			// The abuser tries to create unbounded databases as one tenant;
			// after MaxDBs admissions everything is rejected at the door.
			go func() {
				tried, rejected := 0, 0
				for i := 0; ; i++ {
					select {
					case <-stop:
						abuserDone <- [2]int{tried, rejected}
						return
					default:
					}
					code, err := do("PUT", fmt.Sprintf("/db/abuser-%d", i), "abuser", baskets[i%len(baskets)])
					if err != nil {
						abuserDone <- [2]int{tried, rejected}
						return
					}
					tried++
					if code == 429 {
						rejected++
					}
				}
			}()
		}
		st, err := runMineLoad(do, cfg, qTenants, qRequests, cfg.Concurrency)
		close(stop)
		if err != nil {
			return rep, err
		}
		e := entryFrom(phase, nShards, qTenants, cfg.Concurrency, st)
		if abuse {
			r := <-abuserDone
			e.AbuserRequests, e.AbuserRejected = r[0], r[1]
		}
		rep.Entries = append(rep.Entries, e)
		srv.Shutdown(context.Background())
	}
	return rep, nil
}

// ServeExternal runs the Zipf workload once against an already-running
// service at baseURL (cmd/rploadgen's -addr mode): it uploads the tenant
// databases, fires the load over real HTTP, and reports one entry with
// Shards 0 (the target's shard count is its operator's business).
func ServeExternal(cfg ServeConfig, do serveDoer, progress func(string)) (ServeReport, error) {
	if progress == nil {
		progress = func(string) {}
	}
	rep := newServeReport(cfg)
	baskets := serveBaskets(32)
	progress(fmt.Sprintf("external target: uploading %d tenant databases", cfg.Tenants))
	if err := uploadTenants(do, baskets, cfg.Tenants); err != nil {
		return rep, err
	}
	progress(fmt.Sprintf("external target: %d requests, %d workers", cfg.Requests, cfg.Concurrency))
	st, err := runMineLoad(do, cfg, cfg.Tenants, cfg.Requests, cfg.Concurrency)
	if err != nil {
		return rep, err
	}
	rep.Entries = append(rep.Entries, entryFrom("external", 0, cfg.Tenants, cfg.Concurrency, st))
	return rep, nil
}
