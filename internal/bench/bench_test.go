package bench_test

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"gogreen/internal/bench"
	"gogreen/internal/core"
)

// TestRegistryComplete: one experiment per paper artifact plus ablations.
func TestRegistryComplete(t *testing.T) {
	want := []string{"table3"}
	for i := 9; i <= 24; i++ {
		want = append(want, fmt.Sprintf("fig%d", i))
	}
	want = append(want, "ablation-utility", "ablation-singlegroup", "ablation-xiold", "ablation-engine", "ablation-incremental", "ablation-parallel", "ablation-twostep", "ablation-dedup")
	for _, id := range want {
		if bench.ByID(id) == nil {
			t.Errorf("experiment %q not registered", id)
		}
	}
	if got := len(bench.All()); got != len(want) {
		t.Errorf("registry has %d experiments, want %d", got, len(want))
	}
	// Stable order: table3 first, figures in ascending order.
	all := bench.All()
	if all[0].ID != "table3" || all[1].ID != "fig9" || all[16].ID != "fig24" {
		ids := make([]string, len(all))
		for i, e := range all {
			ids[i] = e.ID
		}
		t.Errorf("order = %v", ids)
	}
	if bench.ByID("nope") != nil {
		t.Error("unknown id should be nil")
	}
}

// TestSpecs: every dataset spec is self-consistent.
func TestSpecs(t *testing.T) {
	if len(bench.Specs) != 4 {
		t.Fatalf("%d dataset specs, want 4", len(bench.Specs))
	}
	for _, s := range bench.Specs {
		if bench.SpecByName(s.Name) == nil {
			t.Errorf("SpecByName(%q) = nil", s.Name)
		}
		for _, xi := range s.Sweep {
			if xi >= s.XiOld {
				t.Errorf("%s: sweep point %g not below ξ_old %g", s.Name, xi, s.XiOld)
			}
		}
		if len(s.Sweep) == 0 || len(s.MemSweep) == 0 {
			t.Errorf("%s: empty sweep", s.Name)
		}
	}
	if bench.SpecByName("nope") != nil {
		t.Error("unknown spec")
	}
}

// tinyScale exercises experiment plumbing on minimum-size datasets.
const tinyScale = 0.0001

func runExp(t *testing.T, id string) string {
	t.Helper()
	e := bench.ByID(id)
	if e == nil {
		t.Fatalf("no experiment %q", id)
	}
	var buf bytes.Buffer
	if err := e.Run(bench.Config{Scale: tinyScale, TempDir: t.TempDir(), MaxPoints: 2}, &buf); err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	return buf.String()
}

func TestTable3Runs(t *testing.T) {
	out := runExp(t, "table3")
	for _, name := range []string{"weather", "forest", "connect4", "pumsb"} {
		if !strings.Contains(out, name) {
			t.Errorf("table3 output missing %s:\n%s", name, out)
		}
	}
	if !strings.Contains(out, "MCP") || !strings.Contains(out, "MLP") {
		t.Error("table3 missing strategies")
	}
}

// TestFigureRuns exercises one figure per family/kind at tiny scale; the
// harness itself asserts pattern-count equality between baseline and
// recycling runs, so passing means the comparisons are apples-to-apples.
func TestFigureRuns(t *testing.T) {
	for _, id := range []string{"fig9", "fig13", "fig16", "fig20"} {
		out := runExp(t, id)
		if !strings.Contains(out, "ξ_new") || !strings.Contains(out, "speedup") {
			t.Errorf("%s output malformed:\n%s", id, out)
		}
	}
}

func TestMemFigureRuns(t *testing.T) {
	out := runExp(t, "fig21")
	if !strings.Contains(out, "budget") || !strings.Contains(out, "H-Mine") {
		t.Errorf("fig21 output malformed:\n%s", out)
	}
}

func TestAblationsRun(t *testing.T) {
	for _, id := range []string{"ablation-utility", "ablation-singlegroup", "ablation-xiold", "ablation-engine"} {
		out := runExp(t, id)
		if len(strings.TrimSpace(out)) == 0 {
			t.Errorf("%s produced no output", id)
		}
	}
}

// TestCaches: dataset and CDB caches return identical objects, and reset
// clears them.
func TestCaches(t *testing.T) {
	spec := bench.SpecByName("connect4")
	a := bench.Dataset(spec, tinyScale)
	b := bench.Dataset(spec, tinyScale)
	if a != b {
		t.Error("dataset cache miss")
	}
	c1 := bench.CompressedDB(spec, tinyScale, core.MCP)
	c2 := bench.CompressedDB(spec, tinyScale, core.MCP)
	if c1 != c2 {
		t.Error("cdb cache miss")
	}
	bench.ResetCaches()
	if bench.Dataset(spec, tinyScale) == a {
		t.Error("reset did not clear cache")
	}
}
