package bench

import (
	"fmt"
	"io"
	"runtime"
	"text/tabwriter"

	"gogreen/internal/core"
	"gogreen/internal/mining"
	"gogreen/internal/parallel"
)

func init() {
	register(Experiment{
		ID:    "ablation-parallel",
		Title: "Parallel scaling: workers vs runtime, baseline and recycling",
		Paper: "extension beyond the paper: the projected-database split parallelizes; recycling's advantage persists per worker",
		Run:   runParallel,
	})
}

// runParallel sweeps worker counts on one sparse and one dense dataset.
func runParallel(cfg Config, w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "dataset\tξ_new\tworkers\tpar-hmine\tpar-rp-hmine\trecycling speedup")
	maxW := runtime.GOMAXPROCS(0)
	workerSweep := []int{1, 2, 4}
	if maxW >= 8 {
		workerSweep = append(workerSweep, 8)
	}
	for _, name := range []string{"weather", "connect4"} {
		spec := SpecByName(name)
		db := Dataset(spec, cfg.Scale)
		cdb := CompressedDB(spec, cfg.Scale, core.MCP)
		xi := spec.Sweep[len(spec.Sweep)/2]
		min := MinCountAt(db.Len(), xi)
		for _, workers := range workerSweep {
			var n1, n2 mining.Count
			base := Timed(func() {
				n1 = mining.Count{}
				if err := (parallel.Miner{Workers: workers}).Mine(db, min, &n1); err != nil {
					panic(err)
				}
			})
			rec := Timed(func() {
				n2 = mining.Count{}
				if err := (parallel.CDBMiner{Workers: workers}).MineCDB(cdb, min, &n2); err != nil {
					panic(err)
				}
			})
			if n1.N != n2.N {
				panic(fmt.Sprintf("bench: parallel mismatch %d vs %d", n1.N, n2.N))
			}
			fmt.Fprintf(tw, "%s\t%.3f\t%d\t%.3fs\t%.3fs\t%.1fx\n",
				name, xi, workers, base.Seconds(), rec.Seconds(),
				base.Seconds()/rec.Seconds())
		}
	}
	return tw.Flush()
}
