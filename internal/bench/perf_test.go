package bench

import (
	"encoding/json"
	"testing"

	"gogreen/internal/gen"
)

// TestDenseDeepConfig guards the acceptance workload: the config must be
// valid and its predicted frequent-pattern population at ξ_old must be well
// past the >= 1000 recycled patterns the compression benchmark requires.
func TestDenseDeepConfig(t *testing.T) {
	cfg := DenseDeepConfig(600)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if n := gen.PatternCountAt(cfg, DenseDeepXiOld); n < 1000 {
		t.Fatalf("predicted %0.f patterns at ξ_old=%g, need >= 1000", n, DenseDeepXiOld)
	}
}

// TestPerfReportJSON checks the BENCH_*.json schema round-trips.
func TestPerfReportJSON(t *testing.T) {
	rep := PerfReport{
		Experiment: "compress",
		Scale:      0.01,
		GoVersion:  "go0.0",
		GOMAXPROCS: 1,
		Entries: []PerfEntry{
			{Experiment: "compress", Dataset: "dense-deep", Variant: "scan", NsPerOp: 2.5e6, AllocsPerOp: 10, SpeedupVsSerial: 1},
			{Experiment: "compress", Dataset: "dense-deep", Variant: "parallel-4w", Workers: 4, NsPerOp: 5e5, SpeedupVsSerial: 5},
		},
	}
	var back PerfReport
	if err := json.Unmarshal(rep.JSON(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Entries) != 2 || back.Entries[1].Workers != 4 || back.Entries[0].NsPerOp != 2.5e6 {
		t.Fatalf("round trip mangled: %+v", back)
	}
}
