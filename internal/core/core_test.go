package core_test

import (
	"math/rand"
	"testing"

	"gogreen/internal/core"
	"gogreen/internal/dataset"
	"gogreen/internal/mining"
	"gogreen/internal/testutil"
)

// paperFP mines the paper DB at ξ_old = 3 and returns the pattern slice.
func paperFP(t *testing.T) (*dataset.DB, []mining.Pattern) {
	t.Helper()
	db := testutil.PaperDB()
	set := testutil.Oracle(t, db, 3)
	return db, set.Slice()
}

// TestUtilityValuesExample2 checks the utility values the paper computes in
// Example 2: fgc:3 has MCP utility (2^3−1)·3 = 21, fg/gc/ae/ec have 9, the
// singletons have their supports.
func TestUtilityValuesExample2(t *testing.T) {
	db := testutil.PaperDB()
	cases := []struct {
		names []string
		sup   int
		want  uint64
	}{
		{[]string{"f", "g", "c"}, 3, 21},
		{[]string{"f", "g"}, 3, 9},
		{[]string{"g", "c"}, 3, 9},
		{[]string{"a", "e"}, 3, 9},
		{[]string{"e", "c"}, 3, 9},
		{[]string{"e"}, 4, 4},
		{[]string{"c"}, 4, 4},
		{[]string{"f"}, 3, 3},
		{[]string{"g"}, 3, 3},
		{[]string{"a"}, 3, 3},
	}
	for _, c := range cases {
		got := core.MCP.Utility(len(c.names), c.sup, db.Len())
		if got != c.want {
			t.Errorf("MCP utility of %v (sup %d) = %d, want %d", c.names, c.sup, got, c.want)
		}
	}
}

// TestCompressPaperExample reproduces Table 2: under MCP, tuples 100, 200,
// 300 are compressed by fgc and tuples 400, 500 by ae, with the outlying
// items of the table.
func TestCompressPaperExample(t *testing.T) {
	db, fp := paperFP(t)
	cdb := core.Compress(db, fp, core.MCP)

	if len(cdb.Groups) != 2 {
		t.Fatalf("got %d groups, want 2 (%v)", len(cdb.Groups), cdb)
	}
	if len(cdb.Loose) != 0 {
		t.Fatalf("got %d loose tuples, want 0", len(cdb.Loose))
	}

	byKey := map[string]*core.Group{}
	for i := range cdb.Groups {
		byKey[mining.Key(cdb.Groups[i].Pattern)] = &cdb.Groups[i]
	}
	fgc := byKey[mining.Key(testutil.Items(t, db, "f", "g", "c"))]
	ae := byKey[mining.Key(testutil.Items(t, db, "a", "e"))]
	if fgc == nil || ae == nil {
		t.Fatalf("missing expected groups; got %v", cdb)
	}

	if fgc.Count() != 3 || ae.Count() != 2 {
		t.Errorf("group counts fgc=%d ae=%d, want 3 and 2", fgc.Count(), ae.Count())
	}
	wantTails := map[int][]string{ // tuple index -> outlying items (Table 2)
		0: {"a", "d", "e"},
		1: {"b", "d"},
		2: {"e"},
		3: {"c", "i"},
		4: {"h"},
	}
	check := func(g *core.Group) {
		for i, id := range g.TupleIDs {
			want := testutil.Items(t, db, wantTails[id]...)
			got := g.Tails[i]
			if mining.Key(got) != mining.Key(want) {
				t.Errorf("tuple %d outlying items = %v, want %v", id,
					db.Dict().Names(got), wantTails[id])
			}
		}
	}
	check(fgc)
	check(ae)
}

// TestNaiveMinePaperExample mines the Table 2 CDB at ξ_new = 2 and checks
// the result against Apriori on the uncompressed database — covering the
// full Example 3 trace (d-projected single-group enumeration included).
func TestNaiveMinePaperExample(t *testing.T) {
	db, fp := paperFP(t)
	for _, strat := range []core.Strategy{core.MCP, core.MLP} {
		rec := &core.Recycler{FP: fp, Strategy: strat}
		testutil.CheckAgainstOracle(t, rec, db, 2)
		testutil.CheckAgainstOracle(t, rec, db, 1)
		testutil.CheckAgainstOracle(t, rec, db, 3)
		testutil.CheckAgainstOracle(t, rec, db, 4)
	}
}

// TestExample3Supports spot-checks supports from the Example 3 narrative,
// mined through the compressed path.
func TestExample3Supports(t *testing.T) {
	db, fp := paperFP(t)
	rec := &core.Recycler{FP: fp, Strategy: core.MCP}
	got := testutil.MineSet(t, rec, db, 2)

	checks := []struct {
		names []string
		sup   int
	}{
		{[]string{"d", "c"}, 2}, {[]string{"d", "f"}, 2}, {[]string{"d", "g"}, 2},
		{[]string{"d", "c", "f"}, 2}, {[]string{"d", "g", "c"}, 2},
		{[]string{"d", "f", "g"}, 2}, {[]string{"d", "c", "f", "g"}, 2},
		{[]string{"f", "g"}, 3}, {[]string{"f", "g", "e"}, 2},
		{[]string{"f", "g", "e", "c"}, 2}, {[]string{"f", "g", "c"}, 3},
		{[]string{"f", "e"}, 2}, {[]string{"f", "e", "c"}, 2}, {[]string{"f", "c"}, 3},
		{[]string{"a", "e"}, 3}, {[]string{"a", "e", "c"}, 2}, {[]string{"a", "c"}, 2},
	}
	for _, c := range checks {
		items := testutil.Items(t, db, c.names...)
		p, ok := got[mining.Key(items)]
		if !ok {
			t.Errorf("missing pattern %v", c.names)
			continue
		}
		if p.Support != c.sup {
			t.Errorf("pattern %v support = %d, want %d", c.names, p.Support, c.sup)
		}
	}
}

// TestCompressionLossless: decompressing any CDB yields the original
// database tuple-for-tuple, for both strategies across random inputs.
func TestCompressionLossless(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for rep := 0; rep < 25; rep++ {
		db := testutil.RandomDB(r, 10+r.Intn(80), 4+r.Intn(20), 1+r.Intn(10))
		min := 2 + r.Intn(4)
		fp := testutil.Oracle(t, db, min).Slice()
		for _, strat := range []core.Strategy{core.MCP, core.MLP} {
			cdb := core.Compress(db, fp, strat)
			back := cdb.Decompress()
			if back.Len() != db.Len() {
				t.Fatalf("%v: decompressed %d tuples, want %d", strat, back.Len(), db.Len())
			}
			for i := 0; i < db.Len(); i++ {
				if mining.Key(back.Tx(i)) != mining.Key(db.Tx(i)) {
					t.Fatalf("%v: tuple %d = %v, want %v", strat, i, back.Tx(i), db.Tx(i))
				}
			}
			// Item counts from the compressed form must equal the
			// original's (cheap F-list construction is exact).
			gotCounts := cdb.ItemCounts()
			wantCounts := db.ItemCounts()
			for it := range wantCounts {
				g := 0
				if it < len(gotCounts) {
					g = gotCounts[it]
				}
				if g != wantCounts[it] {
					t.Fatalf("%v: item %d count %d, want %d", strat, it, g, wantCounts[it])
				}
			}
		}
	}
}

// TestRecyclerCrossCheck runs the full randomized battery: compress at a
// random ξ_old, mine at lower ξ_new, compare with the oracle.
func TestRecyclerCrossCheck(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for rep := 0; rep < 20; rep++ {
		db := testutil.RandomDB(r, 20+r.Intn(100), 4+r.Intn(16), 1+r.Intn(10))
		oldMin := 3 + r.Intn(8)
		fp := testutil.Oracle(t, db, oldMin).Slice()
		for _, strat := range []core.Strategy{core.MCP, core.MLP} {
			rec := &core.Recycler{FP: fp, Strategy: strat}
			for _, newMin := range []int{oldMin - 1, oldMin / 2, 2, 1} {
				if newMin < 1 {
					continue
				}
				testutil.CheckAgainstOracle(t, rec, db, newMin)
			}
		}
	}
}

// TestRecyclerTightened: recycling also answers *raised* thresholds
// correctly (the compressed database is complete, so mining it at a higher
// threshold is still exact), even though FilterTightened is the cheap path.
func TestRecyclerTightened(t *testing.T) {
	db, fp := paperFP(t)
	rec := &core.Recycler{FP: fp, Strategy: core.MCP}
	testutil.CheckAgainstOracle(t, rec, db, 4)
	testutil.CheckAgainstOracle(t, rec, db, 5)
}

// TestFilterTightened checks the filter path equals re-mining when the
// support threshold rises.
func TestFilterTightened(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for rep := 0; rep < 10; rep++ {
		db := testutil.RandomDB(r, 30+r.Intn(60), 5+r.Intn(10), 1+r.Intn(8))
		fp := testutil.Oracle(t, db, 2).Slice()
		for _, newMin := range []int{3, 5, 9} {
			got := mining.PatternSet{}
			for _, p := range core.FilterTightened(fp, newMin) {
				got[p.Key()] = p
			}
			want := testutil.Oracle(t, db, newMin)
			if !got.Equal(want) {
				t.Fatalf("filter(min=%d) != re-mine:\n%v", newMin, got.Diff(want, 10))
			}
		}
	}
}

// TestEmptyFP: with no recycled patterns the CDB is all loose tuples and
// mining still works (degenerates to uncompressed projected mining).
func TestEmptyFP(t *testing.T) {
	db := testutil.PaperDB()
	rec := &core.Recycler{FP: nil, Strategy: core.MCP}
	testutil.CheckAgainstOracle(t, rec, db, 2)

	cdb := core.Compress(db, nil, core.MCP)
	if len(cdb.Groups) != 0 || len(cdb.Loose) != db.Len() {
		t.Errorf("empty FP: got %d groups, %d loose", len(cdb.Groups), len(cdb.Loose))
	}
	if s := cdb.Stats(); s.Ratio != 1.0 {
		t.Errorf("empty FP compression ratio = %v, want 1.0", s.Ratio)
	}
}

// TestCompressForeignItems: recycled patterns may mention items the
// database does not contain (constraint changes between rounds can drop
// items); compression must not crash and must leave such patterns unused.
func TestCompressForeignItems(t *testing.T) {
	db := dataset.New([][]dataset.Item{{0, 1}, {0, 1}, {1}})
	fp := []mining.Pattern{
		{Items: []dataset.Item{900, 901}, Support: 5}, // foreign items
		{Items: []dataset.Item{0, 1}, Support: 2},
	}
	cdb := core.Compress(db, fp, core.MCP)
	if len(cdb.Groups) != 1 || mining.Key(cdb.Groups[0].Pattern) != mining.Key([]dataset.Item{0, 1}) {
		t.Fatalf("unexpected grouping: %v", cdb)
	}
	rec := &core.Recycler{FP: fp, Strategy: core.MCP}
	testutil.CheckAgainstOracle(t, rec, db, 1)
}

// TestStrategyParsing covers the Strategy helpers.
func TestStrategyParsing(t *testing.T) {
	for _, c := range []struct {
		in   string
		want core.Strategy
		err  bool
	}{
		{"mcp", core.MCP, false},
		{"MCP", core.MCP, false},
		{"mlp", core.MLP, false},
		{"MLP", core.MLP, false},
		{"bogus", 0, true},
	} {
		got, err := core.ParseStrategy(c.in)
		if (err != nil) != c.err || got != c.want {
			t.Errorf("ParseStrategy(%q) = %v, %v", c.in, got, err)
		}
	}
	if core.MCP.String() != "MCP" || core.MLP.String() != "MLP" {
		t.Error("Strategy.String mismatch")
	}
	if s := core.Strategy(9).String(); s != "Strategy(9)" {
		t.Errorf("unknown strategy renders %q", s)
	}
}

// TestUtilitySaturation: utilities of absurdly long patterns saturate
// instead of overflowing.
func TestUtilitySaturation(t *testing.T) {
	u1 := core.MCP.Utility(64, 1000, 1)
	u2 := core.MCP.Utility(100, 1000, 1)
	if u1 != u2 || u1 != ^uint64(0) {
		t.Errorf("MCP saturation: %d vs %d", u1, u2)
	}
	if core.MCP.Utility(0, 5, 1) != 0 || core.MCP.Utility(-1, 5, 1) != 0 {
		t.Error("degenerate lengths should have zero utility")
	}
	// MLP ordering: longer always beats shorter regardless of support.
	dbSize := 1000
	long := core.MLP.Utility(5, 1, dbSize)
	short := core.MLP.Utility(4, dbSize, dbSize)
	if long <= short {
		t.Errorf("MLP: len-5 sup-1 (%d) must outrank len-4 sup-max (%d)", long, short)
	}
}

// TestMLPPrefersLongest verifies the MLP cover uses the longest matching
// pattern while MCP can prefer a shorter, costlier one.
func TestMLPPrefersLongest(t *testing.T) {
	// Build a database where pattern {1,2,3} is long but rare and {4,5} is
	// short but very frequent; a tuple containing both should group under
	// {1,2,3} with MLP.
	var tx [][]dataset.Item
	for i := 0; i < 3; i++ {
		tx = append(tx, []dataset.Item{1, 2, 3, 4, 5})
	}
	for i := 0; i < 30; i++ {
		tx = append(tx, []dataset.Item{4, 5})
	}
	db := dataset.New(tx)
	fp := testutil.Oracle(t, db, 3).Slice()

	cdb := core.Compress(db, fp, core.MLP)
	var found bool
	for _, g := range cdb.Groups {
		if mining.Key(g.Pattern) == mining.Key([]dataset.Item{1, 2, 3, 4, 5}) {
			found = true
			if g.Count() != 3 {
				t.Errorf("MLP longest group count = %d, want 3", g.Count())
			}
		}
	}
	if !found {
		t.Errorf("MLP did not group the combined tuples under the longest pattern: %v", cdb)
	}
}
