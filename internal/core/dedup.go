package core

import (
	"gogreen/internal/dataset"
	"gogreen/internal/mining"
)

// Dedup compresses a database by exact tuple duplication: every class of
// identical tuples becomes one group whose pattern is the whole tuple and
// whose tails are all empty. This is the degenerate case of the paper's
// compression that needs no previously mined patterns at all, yet dense
// relational data (fixed-length attribute encodings with few distinct
// configurations) often collapses dramatically — and every compressed-
// database engine in this module can mine the result as-is.
//
// Dedup composes with pattern recycling: RefineCDB re-covers the loose and
// tail parts of any CDB with recycled patterns.
func Dedup(db *dataset.DB) *CDB {
	cdb := &CDB{NumTx: db.Len(), Dict: db.Dict()}
	index := map[string]int{} // tuple key -> group index
	for id, t := range db.All() {
		k := mining.Key(t)
		gi, ok := index[k]
		if !ok {
			gi = len(cdb.Groups)
			index[k] = gi
			cdb.Groups = append(cdb.Groups, Group{Pattern: t})
		}
		g := &cdb.Groups[gi]
		g.Tails = append(g.Tails, nil)
		g.TupleIDs = append(g.TupleIDs, id)
	}
	// Singleton groups carry no sharing; keep them as loose tuples so the
	// group machinery only pays for itself.
	out := cdb.Groups[:0]
	for _, g := range cdb.Groups {
		if g.Count() == 1 {
			cdb.Loose = append(cdb.Loose, g.Pattern)
			cdb.LooseIDs = append(cdb.LooseIDs, g.TupleIDs[0])
			continue
		}
		out = append(out, g)
	}
	cdb.Groups = out
	return cdb
}
