package core

import (
	"context"
	"sort"

	"gogreen/internal/dataset"
	"gogreen/internal/mining"
)

// CDBMiner is a frequent-pattern mining algorithm over a compressed
// database. Implemented by the naive miner in this package and by the
// H-Mine, FP-tree and Tree Projection adaptations in their own packages.
type CDBMiner interface {
	// Name identifies the engine (e.g. "rp-hmine").
	Name() string
	// MineCDB finds all frequent patterns of the database cdb represents at
	// absolute support minCount, streaming them into sink.
	MineCDB(cdb *CDB, minCount int, sink mining.Sink) error
}

// ContextCDBMiner is a CDBMiner supporting cooperative cancellation:
// MineCDBContext aborts promptly when ctx is cancelled or its deadline
// expires, returning the context's error.
type ContextCDBMiner interface {
	CDBMiner
	MineCDBContext(ctx context.Context, cdb *CDB, minCount int, sink mining.Sink) error
}

// MineCDBContext runs engine under ctx when it supports cancellation, and
// otherwise falls back to the blocking MineCDB bracketed by boundary checks.
func MineCDBContext(ctx context.Context, engine CDBMiner, cdb *CDB, minCount int, sink mining.Sink) error {
	if cm, ok := engine.(ContextCDBMiner); ok {
		return cm.MineCDBContext(ctx, cdb, minCount, sink)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := engine.MineCDB(cdb, minCount, sink); err != nil {
		return err
	}
	return ctx.Err()
}

// Naive is the paper's naive recycling miner (Figure 3): physical projected
// databases over the compressed representation, with the single-group
// enumeration of Lemma 3.1.
type Naive struct {
	// DisableSingleGroup turns off the Lemma 3.1 enumeration shortcut, for
	// the ablation benchmarks; mining stays correct, only slower.
	DisableSingleGroup bool
}

// Name implements CDBMiner.
func (Naive) Name() string { return "rp-naive" }

// Block is one compressed group inside a (projected) compressed database,
// in rank space: the remaining group-pattern items (ascending rank), the
// number of member tuples, and the members' remaining outlying items.
// Empty tails are dropped from Tails but still counted in Count.
type Block struct {
	Suffix []dataset.Item
	Count  int
	Tails  [][]dataset.Item
}

// EncodeCDB translates a compressed database into rank space at the given
// F-list: group patterns and tails keep only frequent items, re-sorted by
// ascending rank; groups whose pattern loses every item degrade into loose
// tuples (their tails).
func EncodeCDB(cdb *CDB, flist *mining.FList) (blocks []Block, loose [][]dataset.Item) {
	for _, g := range cdb.Groups {
		suffix := flist.Encode(g.Pattern)
		if len(suffix) == 0 {
			// The whole pattern is infrequent at the new threshold: members
			// reduce to their tails.
			for _, tail := range g.Tails {
				if enc := flist.Encode(tail); len(enc) > 0 {
					loose = append(loose, enc)
				}
			}
			continue
		}
		b := Block{Suffix: suffix, Count: g.Count()}
		for _, tail := range g.Tails {
			if enc := flist.Encode(tail); len(enc) > 0 {
				b.Tails = append(b.Tails, enc)
			}
		}
		blocks = append(blocks, b)
	}
	for _, t := range cdb.Loose {
		if enc := flist.Encode(t); len(enc) > 0 {
			loose = append(loose, enc)
		}
	}
	return blocks, loose
}

// MineCDB implements CDBMiner.
func (n Naive) MineCDB(cdb *CDB, minCount int, sink mining.Sink) error {
	return n.mineCDB(cdb, minCount, sink, nil)
}

// MineCDBContext implements ContextCDBMiner: like MineCDB, but aborts
// promptly (checked at every node of the projection recursion) when ctx is
// cancelled or times out.
func (n Naive) MineCDBContext(ctx context.Context, cdb *CDB, minCount int, sink mining.Sink) error {
	cancel := mining.NewCanceller(ctx, 0)
	if err := cancel.Err(); err != nil {
		return err
	}
	if err := n.mineCDB(cdb, minCount, sink, cancel); err != nil {
		return err
	}
	return cancel.Err()
}

func (n Naive) mineCDB(cdb *CDB, minCount int, sink mining.Sink, cancel *mining.Canceller) error {
	if minCount < 1 {
		return mining.ErrBadMinSupport
	}
	flist := cdb.FList(minCount)
	if flist.Len() == 0 {
		return nil
	}
	blocks, loose := EncodeCDB(cdb, flist)
	m := &rpCtx{flist: flist, min: minCount, sink: sink, decoded: make([]dataset.Item, flist.Len()), noSingle: n.DisableSingleGroup, cancel: cancel}
	m.mine(blocks, loose, nil)
	return nil
}

// MineEncoded mines an already rank-encoded (projected) compressed database
// whose patterns all extend prefix (given in rank space). Used by the
// memory-limited driver to mine disk partitions (Figure 3's RP-InMemory on
// a projected database).
func (n Naive) MineEncoded(blocks []Block, loose [][]dataset.Item, flist *mining.FList, prefix []dataset.Item, minCount int, sink mining.Sink) error {
	if minCount < 1 {
		return mining.ErrBadMinSupport
	}
	m := &rpCtx{flist: flist, min: minCount, sink: sink, decoded: make([]dataset.Item, flist.Len()), noSingle: n.DisableSingleGroup}
	m.mine(blocks, loose, append([]dataset.Item(nil), prefix...))
	return nil
}

type rpCtx struct {
	flist    *mining.FList
	min      int
	sink     mining.Sink
	decoded  []dataset.Item
	noSingle bool
	cancel   *mining.Canceller
}

func (m *rpCtx) emit(prefix []dataset.Item, support int) {
	m.sink.Emit(m.flist.DecodeInto(m.decoded, prefix), support)
}

// mine processes one projected compressed database: count candidate
// extensions (touching each block suffix once — the first saving of
// Section 3.1), apply the single-group shortcut when it fires, otherwise
// recurse per frequent extension with a physically projected database (the
// second saving: one containment check classifies a whole group).
func (m *rpCtx) mine(blocks []Block, loose [][]dataset.Item, prefix []dataset.Item) {
	// Cooperative cancellation, one cheap check per recursion node.
	if m.cancel.Check() != nil {
		return
	}
	counts := map[dataset.Item]int{}
	for i := range blocks {
		b := &blocks[i]
		for _, it := range b.Suffix {
			counts[it] += b.Count
		}
		for _, tail := range b.Tails {
			for _, it := range tail {
				counts[it]++
			}
		}
	}
	for _, t := range loose {
		for _, it := range t {
			counts[it]++
		}
	}
	frequent := make([]dataset.Item, 0, len(counts))
	for it, c := range counts {
		if c >= m.min {
			frequent = append(frequent, it)
		}
	}
	if len(frequent) == 0 {
		return
	}
	sort.Slice(frequent, func(i, j int) bool { return frequent[i] < frequent[j] })

	// Lemma 3.1: when every occurrence of every frequent item lies in one
	// group's pattern, the remaining patterns are all combinations of those
	// items, each supported by the group's count.
	if !m.noSingle {
		if b := m.singleGroup(blocks, frequent, counts); b != nil {
			m.enumerate(frequent, b.Count, prefix)
			return
		}
	}

	prefix = append(prefix, 0)
	for _, r := range frequent {
		if m.cancel.Check() != nil {
			return
		}
		prefix[len(prefix)-1] = r
		m.emit(prefix, counts[r])
		subBlocks, subLoose := Project(blocks, loose, r)
		if len(subBlocks) > 0 || len(subLoose) > 0 {
			m.mine(subBlocks, subLoose, prefix)
		}
	}
}

// singleGroup returns the unique block b with every frequent item in its
// suffix and no occurrences elsewhere (counts[f] == b.Count for all f), or
// nil. Uniqueness follows from the count equality: any second block or tail
// occurrence would push counts above b.Count.
func (m *rpCtx) singleGroup(blocks []Block, frequent []dataset.Item, counts map[dataset.Item]int) *Block {
	f0 := frequent[0]
	for i := range blocks {
		b := &blocks[i]
		idx := search(b.Suffix, f0)
		if idx < 0 {
			continue
		}
		// Candidate found; all frequent items must be in this suffix with
		// exact count match.
		for _, f := range frequent {
			if counts[f] != b.Count || search(b.Suffix, f) < 0 {
				return nil
			}
		}
		return b
	}
	return nil
}

// enumerate emits every non-empty combination of items appended to prefix,
// all with the given support.
func (m *rpCtx) enumerate(items []dataset.Item, support int, prefix []dataset.Item) {
	n := len(items)
	if n > 62 {
		panic("core: single-group enumeration over more than 62 items")
	}
	base := len(prefix)
	buf := append([]dataset.Item(nil), prefix...)
	for mask := uint64(1); mask < 1<<uint(n); mask++ {
		// The enumeration can cover up to 2^62 patterns, so it must honor
		// cancellation like the recursion proper.
		if m.cancel.Check() != nil {
			return
		}
		buf = buf[:base]
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				buf = append(buf, items[i])
			}
		}
		m.emit(buf, support)
	}
}

// Project builds the r-projected compressed database (Definition 3.2 lifted
// to blocks): members containing r keep their items ranked after r; a block
// whose suffix loses every item degrades its members into loose tuples.
// Item slices of the result share backing arrays with the input.
func Project(blocks []Block, loose [][]dataset.Item, r dataset.Item) ([]Block, [][]dataset.Item) {
	var outBlocks []Block
	var outLoose [][]dataset.Item

	for i := range blocks {
		b := &blocks[i]
		inSuffix := search(b.Suffix, r) >= 0
		newSuffix := after(b.Suffix, r)

		var newTails [][]dataset.Item
		newCount := 0
		if inSuffix {
			// Every member contains r.
			newCount = b.Count
			for _, tail := range b.Tails {
				if nt := after(tail, r); len(nt) > 0 {
					newTails = append(newTails, nt)
				}
			}
		} else {
			// Only members whose tail holds r qualify.
			for _, tail := range b.Tails {
				if search(tail, r) < 0 {
					continue
				}
				newCount++
				if nt := after(tail, r); len(nt) > 0 {
					newTails = append(newTails, nt)
				}
			}
		}
		if newCount == 0 {
			continue
		}
		if len(newSuffix) == 0 {
			outLoose = append(outLoose, newTails...)
			continue
		}
		outBlocks = append(outBlocks, Block{Suffix: newSuffix, Count: newCount, Tails: newTails})
	}

	for _, t := range loose {
		if search(t, r) < 0 {
			continue
		}
		if nt := after(t, r); len(nt) > 0 {
			outLoose = append(outLoose, nt)
		}
	}
	return outBlocks, outLoose
}

// ProjScratch holds reusable storage for projection results, so hot loops
// that project once per recursion node (or once per parallel task) stop
// allocating on the steady path. A scratch's results are valid until its
// next Project call: the caller owns the buffers and must be done with the
// previous projection — including everything that aliases it — before
// reusing the scratch. Item data is never copied; like Project, the
// returned slices share backing arrays with the input.
type ProjScratch struct {
	blocks []Block
	loose  [][]dataset.Item
	tails  [][]dataset.Item
}

// Project is Project with the result built into the scratch's reusable
// buffers: identical blocks, loose tuples, and ordering, near-zero
// allocations once the buffers have warmed up.
func (p *ProjScratch) Project(blocks []Block, loose [][]dataset.Item, r dataset.Item) ([]Block, [][]dataset.Item) {
	p.blocks = p.blocks[:0]
	p.loose = p.loose[:0]
	p.tails = p.tails[:0]

	for i := range blocks {
		b := &blocks[i]
		inSuffix := search(b.Suffix, r) >= 0
		newSuffix := after(b.Suffix, r)

		// Tails of this block accumulate in the shared slab; the block keeps
		// a capped subslice. A slab regrow leaves earlier blocks pointing at
		// the old backing array, which still holds their (final) tails.
		tOff := len(p.tails)
		newCount := 0
		if inSuffix {
			newCount = b.Count
			for _, tail := range b.Tails {
				if nt := after(tail, r); len(nt) > 0 {
					p.tails = append(p.tails, nt)
				}
			}
		} else {
			for _, tail := range b.Tails {
				if search(tail, r) < 0 {
					continue
				}
				newCount++
				if nt := after(tail, r); len(nt) > 0 {
					p.tails = append(p.tails, nt)
				}
			}
		}
		if newCount == 0 {
			p.tails = p.tails[:tOff]
			continue
		}
		if len(newSuffix) == 0 {
			p.loose = append(p.loose, p.tails[tOff:]...)
			p.tails = p.tails[:tOff]
			continue
		}
		var newTails [][]dataset.Item
		if len(p.tails) > tOff {
			newTails = p.tails[tOff:len(p.tails):len(p.tails)]
		}
		p.blocks = append(p.blocks, Block{Suffix: newSuffix, Count: newCount, Tails: newTails})
	}

	for _, t := range loose {
		if search(t, r) < 0 {
			continue
		}
		if nt := after(t, r); len(nt) > 0 {
			p.loose = append(p.loose, nt)
		}
	}
	return p.blocks, p.loose
}

// search returns the index of r in the sorted slice s, or -1.
func search(s []dataset.Item, r dataset.Item) int {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := (lo + hi) / 2
		if s[mid] < r {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(s) && s[lo] == r {
		return lo
	}
	return -1
}

// after returns the subslice of sorted s strictly greater than r (shared
// backing array; callers must not mutate).
func after(s []dataset.Item, r dataset.Item) []dataset.Item {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := (lo + hi) / 2
		if s[mid] <= r {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return s[lo:]
}
