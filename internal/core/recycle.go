package core

import (
	"context"
	"fmt"

	"gogreen/internal/dataset"
	"gogreen/internal/mining"
)

// Recycler turns a CDBMiner into a mining.Miner: Mine compresses the
// database with the recycled patterns FP under Strategy, then mines the
// compressed database. This is the two-phase scheme of Section 3 packaged
// behind the same interface as the non-recycling baselines, so the two can
// be swapped and compared directly.
type Recycler struct {
	// FP is the set of frequent patterns from an earlier round of mining
	// (at a more restrictive constraint setting).
	FP []mining.Pattern
	// Strategy ranks FP for compression (MCP or MLP).
	Strategy Strategy
	// Engine mines the compressed database. Nil means the naive miner.
	Engine CDBMiner
	// CompressWorkers shards the compression phase; <= 0 means GOMAXPROCS.
	// Output is byte-identical at any worker count.
	CompressWorkers int
}

// Name implements mining.Miner, e.g. "rp-hmine-MCP".
func (r *Recycler) Name() string {
	return fmt.Sprintf("%s-%s", r.engine().Name(), r.Strategy)
}

func (r *Recycler) engine() CDBMiner {
	if r.Engine == nil {
		return Naive{}
	}
	return r.Engine
}

// Mine implements mining.Miner.
func (r *Recycler) Mine(db *dataset.DB, minCount int, sink mining.Sink) error {
	if minCount < 1 {
		return mining.ErrBadMinSupport
	}
	cdb, err := CompressParallel(context.Background(), db, r.FP, r.Strategy, r.CompressWorkers)
	if err != nil {
		return err
	}
	return r.engine().MineCDB(cdb, minCount, sink)
}

// MineContext implements mining.ContextMiner: both phases — compression and
// compressed-database mining — honor ctx.
func (r *Recycler) MineContext(ctx context.Context, db *dataset.DB, minCount int, sink mining.Sink) error {
	if minCount < 1 {
		return mining.ErrBadMinSupport
	}
	cdb, err := CompressParallel(ctx, db, r.FP, r.Strategy, r.CompressWorkers)
	if err != nil {
		return err
	}
	return MineCDBContext(ctx, r.engine(), cdb, minCount, sink)
}

// FilterTightened implements the easy direction of recycling (Section 2):
// when constraints are tightened — here, the minimum support raised to
// minCount — the new result set is exactly the old patterns that still
// qualify, with their supports unchanged. No re-mining is needed.
func FilterTightened(fp []mining.Pattern, minCount int) []mining.Pattern {
	out := make([]mining.Pattern, 0, len(fp))
	for _, p := range fp {
		if p.Support >= minCount {
			out = append(out, p)
		}
	}
	return out
}

// FilterFunc generalizes FilterTightened to arbitrary tightened constraint
// predicates: keep says whether a pattern satisfies the new (stricter)
// constraint set.
func FilterFunc(fp []mining.Pattern, keep func(mining.Pattern) bool) []mining.Pattern {
	out := make([]mining.Pattern, 0, len(fp))
	for _, p := range fp {
		if keep(p) {
			out = append(out, p)
		}
	}
	return out
}
