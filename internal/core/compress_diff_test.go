package core_test

import (
	"context"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"gogreen/internal/core"
	"gogreen/internal/dataset"
	"gogreen/internal/gen"
	"gogreen/internal/hmine"
	"gogreen/internal/mining"
)

// refCompress is an independent naive reference for the first-hit cover
// semantics: scan the ranked list in order, first containing pattern wins,
// groups keyed by canonical pattern key in order of first coverage. It
// deliberately shares no code with the production engines.
func refCompress(db *dataset.DB, ranked []core.RankedPattern) *core.CDB {
	cdb := &core.CDB{NumTx: db.Len(), Dict: db.Dict()}
	groups := map[string]int{}
	for id, t := range db.All() {
		covered := false
		for _, rp := range ranked {
			if !refContains(t, rp.Items) {
				continue
			}
			key := mining.Key(rp.Items)
			gi, ok := groups[key]
			if !ok {
				gi = len(cdb.Groups)
				groups[key] = gi
				cdb.Groups = append(cdb.Groups, core.Group{Pattern: rp.Items})
			}
			g := &cdb.Groups[gi]
			g.Tails = append(g.Tails, refOutlying(t, rp.Items))
			g.TupleIDs = append(g.TupleIDs, id)
			covered = true
			break
		}
		if !covered {
			cdb.Loose = append(cdb.Loose, t)
			cdb.LooseIDs = append(cdb.LooseIDs, id)
		}
	}
	return cdb
}

func refContains(t, p []dataset.Item) bool {
	j := 0
	for _, it := range p {
		for j < len(t) && t[j] < it {
			j++
		}
		if j >= len(t) || t[j] != it {
			return false
		}
	}
	return true
}

func refOutlying(t, p []dataset.Item) []dataset.Item {
	out := make([]dataset.Item, 0, len(t)-len(p))
	for _, it := range t {
		keep := true
		for _, pi := range p {
			if pi == it {
				keep = false
				break
			}
		}
		if keep {
			out = append(out, it)
		}
	}
	return out
}

// checkIdentical asserts got matches the reference CDB byte for byte.
func checkIdentical(t *testing.T, label string, got, want *core.CDB) {
	t.Helper()
	if got == nil {
		t.Fatalf("%s: nil CDB", label)
	}
	if !reflect.DeepEqual(got.Groups, want.Groups) {
		t.Fatalf("%s: groups differ\ngot  %d groups\nwant %d groups", label, len(got.Groups), len(want.Groups))
	}
	if !reflect.DeepEqual(got.Loose, want.Loose) || !reflect.DeepEqual(got.LooseIDs, want.LooseIDs) {
		t.Fatalf("%s: loose tuples differ (got %d, want %d)", label, len(got.Loose), len(want.Loose))
	}
	if got.NumTx != want.NumTx {
		t.Fatalf("%s: NumTx = %d, want %d", label, got.NumTx, want.NumTx)
	}
}

// randomDB builds a random database; about half the tuples come from a few
// shared templates so patterns actually cover something.
func randomDB(r *rand.Rand, numTx, universe int) *dataset.DB {
	templates := make([][]dataset.Item, 1+r.Intn(6))
	for i := range templates {
		n := 1 + r.Intn(8)
		tpl := make([]dataset.Item, n)
		for j := range tpl {
			tpl[j] = dataset.Item(r.Intn(universe))
		}
		templates[i] = tpl
	}
	tx := make([][]dataset.Item, numTx)
	for i := range tx {
		var t []dataset.Item
		if r.Intn(2) == 0 {
			t = append(t, templates[r.Intn(len(templates))]...)
		}
		for n := r.Intn(10); n > 0; n-- {
			t = append(t, dataset.Item(r.Intn(universe)))
		}
		tx[i] = t
	}
	return dataset.New(tx)
}

// randomRanked mines real patterns and mixes in synthetic ones, including
// patterns mentioning items absent from the database.
func randomRanked(t *testing.T, r *rand.Rand, db *dataset.DB, universe int) []core.RankedPattern {
	var col mining.Collector
	min := 1 + r.Intn(4)
	if err := hmine.New().Mine(db, min, &col); err != nil {
		t.Fatal(err)
	}
	fp := col.Patterns
	if len(fp) > 400 {
		fp = fp[:400]
	}
	for n := r.Intn(8); n > 0; n-- {
		// Synthetic patterns: some over live items, some over items the
		// database does not contain (ids beyond the universe).
		ln := 1 + r.Intn(5)
		items := make([]dataset.Item, ln)
		for j := range items {
			if r.Intn(3) == 0 {
				items[j] = dataset.Item(universe + r.Intn(20))
			} else {
				items[j] = dataset.Item(r.Intn(universe))
			}
		}
		fp = append(fp, mining.Pattern{Items: items, Support: 1 + r.Intn(db.Len())})
	}
	strat := core.MCP
	if r.Intn(2) == 1 {
		strat = core.MLP
	}
	return core.RankPatterns(fp, db.Len(), strat)
}

// TestCompressDifferential: on random databases and pattern sets, the scan
// path, the indexed serial engine, and the sharded parallel engine all
// produce CDBs identical to the independent reference.
func TestCompressDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(20260806))
	for round := 0; round < 40; round++ {
		numTx := 1 + r.Intn(300)
		universe := 5 + r.Intn(60)
		db := randomDB(r, numTx, universe)
		ranked := randomRanked(t, r, db, universe)
		want := refCompress(db, ranked)

		checkIdentical(t, "scan", core.CompressRankedScan(db, ranked), want)
		checkIdentical(t, "indexed", core.CompressRanked(db, ranked), want)
		for _, workers := range []int{1, 2, 3, 7} {
			got, err := core.CompressRankedParallel(context.Background(), db, ranked, workers)
			if err != nil {
				t.Fatalf("parallel(%d): %v", workers, err)
			}
			checkIdentical(t, "parallel", got, want)
		}
	}
}

// TestCompressDifferentialDense runs the differential on the dense
// Connect-4-style generator, the workload the index targets.
func TestCompressDifferentialDense(t *testing.T) {
	db := gen.Connect4(0.005)
	var col mining.Collector
	if err := hmine.New().Mine(db, mining.MinCount(db.Len(), 0.95), &col); err != nil {
		t.Fatal(err)
	}
	for _, strat := range []core.Strategy{core.MCP, core.MLP} {
		ranked := core.RankPatterns(col.Patterns, db.Len(), strat)
		want := refCompress(db, ranked)
		checkIdentical(t, "scan/"+strat.String(), core.CompressRankedScan(db, ranked), want)
		checkIdentical(t, "indexed/"+strat.String(), core.CompressRanked(db, ranked), want)
		got, err := core.CompressRankedParallel(context.Background(), db, ranked, 4)
		if err != nil {
			t.Fatal(err)
		}
		checkIdentical(t, "parallel/"+strat.String(), got, want)
	}
}

// TestCompressEmptyPattern: an empty recycled pattern covers every tuple
// (including empty tuples) identically across engines.
func TestCompressEmptyPattern(t *testing.T) {
	db := dataset.New([][]dataset.Item{{1, 2}, {}, {3}})
	ranked := core.RankPatterns([]mining.Pattern{
		{Items: nil, Support: 3},
		{Items: []dataset.Item{1, 2}, Support: 1},
	}, db.Len(), core.MCP)
	want := refCompress(db, ranked)
	checkIdentical(t, "indexed", core.CompressRanked(db, ranked), want)
	got, err := core.CompressRankedParallel(context.Background(), db, ranked, 2)
	if err != nil {
		t.Fatal(err)
	}
	checkIdentical(t, "parallel", got, want)
}

// flipCtx is a deterministic context whose Err flips to Canceled after a
// fixed number of polls — it cancels "mid-compress" without timing races.
type flipCtx struct {
	context.Context
	mu    sync.Mutex
	left  int
	death chan struct{}
}

func newFlipCtx(polls int) *flipCtx {
	return &flipCtx{Context: context.Background(), left: polls, death: make(chan struct{})}
}

func (c *flipCtx) Done() <-chan struct{} { return c.death }

func (c *flipCtx) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.left <= 0 {
		return context.Canceled
	}
	c.left--
	return nil
}

// TestCompressCancelMidway: cancellation striking partway through the cover
// loop aborts every engine with the context error and no partial result.
func TestCompressCancelMidway(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	db := randomDB(r, 5000, 40)
	ranked := randomRanked(t, r, db, 40)

	// The cover loop polls the context every mining.DefaultCancelEvery
	// tuples; two successful polls land the abort mid-database.
	ctx := newFlipCtx(2)
	if _, err := core.CompressRankedParallel(ctx, db, ranked, 1); err != context.Canceled {
		t.Fatalf("serial: err = %v, want context.Canceled", err)
	}

	ctx = newFlipCtx(2)
	cdb, err := core.CompressRankedParallel(ctx, db, ranked, 4)
	if err != context.Canceled {
		t.Fatalf("parallel: err = %v, want context.Canceled", err)
	}
	if cdb != nil {
		t.Fatalf("parallel: partial CDB returned alongside cancellation")
	}

	// Already-cancelled contexts abort before any work.
	done, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := core.CompressContext(done, db, nil, core.MCP); err != context.Canceled {
		t.Fatalf("CompressContext: err = %v, want context.Canceled", err)
	}
}

// FuzzCompressDifferential feeds arbitrary tiny databases and pattern bytes
// through all three engines and demands byte-identical CDBs.
func FuzzCompressDifferential(f *testing.F) {
	f.Add([]byte{1, 2, 0x83, 1, 2, 3, 0x81, 2}, []byte{2, 1, 2})
	f.Add([]byte{0x85, 5, 5, 5, 0x85, 5}, []byte{1, 5, 0x90})
	f.Add([]byte{}, []byte{})
	f.Add([]byte{3, 7, 0x83, 7}, []byte{0xff, 3, 7, 1, 9})
	f.Fuzz(func(t *testing.T, dbBytes, patBytes []byte) {
		db := dbFromBytes(dbBytes)

		// Pattern bytes: item ids mod 24 (the db universe is 16 ids, so
		// ids 16-23 are absent); a high bit ends the current pattern.
		if len(patBytes) > 64 {
			patBytes = patBytes[:64]
		}
		var fp []mining.Pattern
		var cur []dataset.Item
		flush := func() {
			if len(cur) > 0 {
				fp = append(fp, mining.Pattern{Items: cur, Support: 1 + len(cur)})
				cur = nil
			}
		}
		for _, b := range patBytes {
			cur = append(cur, dataset.Item(b%24))
			if b&0x80 != 0 {
				flush()
			}
		}
		flush()

		for _, strat := range []core.Strategy{core.MCP, core.MLP} {
			ranked := core.RankPatterns(fp, db.Len(), strat)
			want := refCompress(db, ranked)
			checkIdentical(t, "scan", core.CompressRankedScan(db, ranked), want)
			checkIdentical(t, "indexed", core.CompressRanked(db, ranked), want)
			got, err := core.CompressRankedParallel(context.Background(), db, ranked, 3)
			if err != nil {
				t.Fatal(err)
			}
			checkIdentical(t, "parallel", got, want)
			if dec := got.Decompress(); !reflect.DeepEqual(dec.All(), db.All()) {
				t.Fatalf("lossless violated: %v != %v", dec.All(), db.All())
			}
		}
	})
}
