package core_test

import (
	"math/rand"
	"testing"

	"gogreen/internal/core"
	"gogreen/internal/dataset"
	"gogreen/internal/hmine"
	"gogreen/internal/mining"
)

// benchDB builds a mid-sized random database with duplication, once.
func benchDB(b *testing.B) (*dataset.DB, []mining.Pattern) {
	b.Helper()
	r := rand.New(rand.NewSource(7))
	tx := make([][]dataset.Item, 5000)
	for i := range tx {
		n := 4 + r.Intn(12)
		t := make([]dataset.Item, n)
		for j := range t {
			t[j] = dataset.Item(r.Intn(60) * r.Intn(2) * 2 / (1 + r.Intn(2))) // skewed
		}
		tx[i] = t
	}
	db := dataset.New(tx)
	var col mining.Collector
	if err := hmine.New().Mine(db, 200, &col); err != nil {
		b.Fatal(err)
	}
	return db, col.Patterns
}

func BenchmarkCompressMCP(b *testing.B) {
	db, fp := benchDB(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Compress(db, fp, core.MCP)
	}
}

func BenchmarkCompressMLP(b *testing.B) {
	db, fp := benchDB(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Compress(db, fp, core.MLP)
	}
}

func BenchmarkDedup(b *testing.B) {
	db, _ := benchDB(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Dedup(db)
	}
}

func BenchmarkRankPatterns(b *testing.B) {
	db, fp := benchDB(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.RankPatterns(fp, db.Len(), core.MCP)
	}
}

func BenchmarkEncodeCDB(b *testing.B) {
	db, fp := benchDB(b)
	cdb := core.Compress(db, fp, core.MCP)
	flist := cdb.FList(50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.EncodeCDB(cdb, flist)
	}
}

func BenchmarkProject(b *testing.B) {
	db, fp := benchDB(b)
	cdb := core.Compress(db, fp, core.MCP)
	flist := cdb.FList(50)
	blocks, loose := core.EncodeCDB(cdb, flist)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Project(blocks, loose, dataset.Item(i%flist.Len()))
	}
}

func BenchmarkNaiveMine(b *testing.B) {
	db, fp := benchDB(b)
	cdb := core.Compress(db, fp, core.MCP)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var c mining.Count
		if err := (core.Naive{}).MineCDB(cdb, 100, &c); err != nil {
			b.Fatal(err)
		}
	}
}
