package core_test

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"gogreen/internal/bench"
	"gogreen/internal/core"
	"gogreen/internal/dataset"
	"gogreen/internal/gen"
	"gogreen/internal/hmine"
	"gogreen/internal/mining"
)

// benchDB builds a mid-sized random database with duplication, once.
func benchDB(b *testing.B) (*dataset.DB, []mining.Pattern) {
	b.Helper()
	r := rand.New(rand.NewSource(7))
	tx := make([][]dataset.Item, 5000)
	for i := range tx {
		n := 4 + r.Intn(12)
		t := make([]dataset.Item, n)
		for j := range t {
			t[j] = dataset.Item(r.Intn(60) * r.Intn(2) * 2 / (1 + r.Intn(2))) // skewed
		}
		tx[i] = t
	}
	db := dataset.New(tx)
	var col mining.Collector
	if err := hmine.New().Mine(db, 200, &col); err != nil {
		b.Fatal(err)
	}
	return db, col.Patterns
}

func BenchmarkCompressMCP(b *testing.B) {
	db, fp := benchDB(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Compress(db, fp, core.MCP)
	}
}

func BenchmarkCompressMLP(b *testing.B) {
	db, fp := benchDB(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Compress(db, fp, core.MLP)
	}
}

var denseCache struct {
	once   sync.Once
	db     *dataset.DB
	ranked []core.RankedPattern
	err    error
}

// denseRanked mines the dense Connect-4-shaped deep workload
// (bench.DenseDeepConfig, the acceptance benchmark of cmd/rpbench) once and
// shares it across the Compress benchmarks. The pattern list must hold at
// least 1000 recycled patterns for the benchmark to measure the regime the
// index targets.
func denseRanked(b *testing.B) (*dataset.DB, []core.RankedPattern) {
	b.Helper()
	c := &denseCache
	c.once.Do(func() {
		c.db = gen.Dense(bench.DenseDeepConfig(600))
		var col mining.Collector
		if c.err = hmine.New().Mine(c.db, mining.MinCount(c.db.Len(), bench.DenseDeepXiOld), &col); c.err != nil {
			return
		}
		if len(col.Patterns) < 1000 {
			c.err = fmt.Errorf("dense workload has %d recycled patterns, need >= 1000", len(col.Patterns))
			return
		}
		c.ranked = core.RankPatterns(col.Patterns, c.db.Len(), core.MCP)
	})
	if c.err != nil {
		b.Fatal(c.err)
	}
	return c.db, c.ranked
}

// BenchmarkCompressDenseScan is the pre-index serial baseline on the dense
// workload — the "before" number of BENCH_compress.json.
func BenchmarkCompressDenseScan(b *testing.B) {
	db, ranked := denseRanked(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.CompressRankedScan(db, ranked)
	}
}

// BenchmarkCompressDenseIndexed is the indexed serial engine on the same
// workload; the acceptance bar is >= 3x over the scan baseline.
func BenchmarkCompressDenseIndexed(b *testing.B) {
	db, ranked := denseRanked(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.CompressRanked(db, ranked)
	}
}

// BenchmarkCompressDenseParallel shards the indexed engine over GOMAXPROCS
// workers (identical output; on multi-core hardware the speedup multiplies).
func BenchmarkCompressDenseParallel(b *testing.B) {
	db, ranked := denseRanked(b)
	workers := runtime.GOMAXPROCS(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.CompressRankedParallel(context.Background(), db, ranked, workers); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDedup(b *testing.B) {
	db, _ := benchDB(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Dedup(db)
	}
}

func BenchmarkRankPatterns(b *testing.B) {
	db, fp := benchDB(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.RankPatterns(fp, db.Len(), core.MCP)
	}
}

func BenchmarkEncodeCDB(b *testing.B) {
	db, fp := benchDB(b)
	cdb := core.Compress(db, fp, core.MCP)
	flist := cdb.FList(50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.EncodeCDB(cdb, flist)
	}
}

func BenchmarkProject(b *testing.B) {
	db, fp := benchDB(b)
	cdb := core.Compress(db, fp, core.MCP)
	flist := cdb.FList(50)
	blocks, loose := core.EncodeCDB(cdb, flist)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Project(blocks, loose, dataset.Item(i%flist.Len()))
	}
}

func BenchmarkNaiveMine(b *testing.B) {
	db, fp := benchDB(b)
	cdb := core.Compress(db, fp, core.MCP)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var c mining.Count
		if err := (core.Naive{}).MineCDB(cdb, 100, &c); err != nil {
			b.Fatal(err)
		}
	}
}
