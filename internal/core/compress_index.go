package core

import (
	"context"
	"math"
	"runtime"
	"sync"

	"gogreen/internal/dataset"
	"gogreen/internal/mining"
)

// This file is the indexed, parallel compression engine — the hot path of
// phase one of recycling. The naive cover loop (CompressRankedScan) tests
// every tuple against the full ranked pattern list; on dense databases with
// thousands of recycled patterns that is O(|DB|·|FP|) containment probes.
// The engine here cuts both factors:
//
//   - Candidate pruning. An inverted index keys every ranked pattern on its
//     rarest item (by database item count). A pattern can only cover tuples
//     that contain its rarest item, so a tuple consults just the candidate
//     lists of its own items instead of the whole ranked list. Patterns
//     mentioning an item the database does not contain can never cover
//     anything and are dropped from the index outright.
//
//   - Rank-order short circuit. Candidate lists hold pattern ordinals in
//     ascending rank order, so the per-tuple merge walks each list only
//     while its head precedes the best cover found so far and stops a list
//     at its first containment hit — the first hit in global rank order is
//     by definition the cover, exactly as in the serial scan.
//
//   - Word-parallel containment. Tuples are exposed as item bitsets;
//     each live pattern precomputes its (word, mask) pairs, so one
//     containment probe is a handful of 64-bit AND/compare operations
//     instead of a per-item merge walk.
//
//   - Dense group slots. Pattern identity inside one compression run is its
//     rank ordinal, so the group registry is a []int32 indexed by ordinal —
//     no mining.Key string is built and no map is touched per covered tuple.
//
// CompressParallel shards the tuple range across workers and replays the
// per-shard cover decisions in tuple-id order, so its output is
// byte-identical to the serial engine (and to the naive scan) by
// construction.

// noCover marks a tuple no ranked pattern contains.
const noCover = int32(math.MaxInt32)

// wordMask is one 64-bit word of a pattern's item bitset.
type wordMask struct {
	w int32
	m uint64
}

// maskSpan locates one pattern's words inside PatternIndex.masks.
type maskSpan struct {
	off, n int32
}

// PatternIndex is an immutable candidate index over one ranked pattern list,
// safe for concurrent readers. Build it once with NewPatternIndex and share
// it across shards of the same compression run.
type PatternIndex struct {
	ranked []RankedPattern
	// byItem[it] lists the ordinals (ascending) of live patterns whose
	// rarest item is it.
	byItem [][]int32
	// masks/spans hold each live pattern's bitset words; dead patterns
	// (mentioning items absent from the database) keep an empty span.
	masks []wordMask
	spans []maskSpan
	// universal is the lowest ordinal of an empty pattern (contained in
	// every tuple, covering even the empty tuple), or noCover.
	universal int32
	// words is the tuple-bitset length in 64-bit words.
	words int
}

// NewPatternIndex indexes ranked for the database whose per-item supports
// are itemCounts (dataset.DB.ItemCounts). Ordinals are positions in ranked,
// so the index honors whatever order the caller chose — utility rank from
// RankPatterns or an explicit ablation order.
func NewPatternIndex(ranked []RankedPattern, itemCounts []int) *PatternIndex {
	idx := &PatternIndex{
		ranked:    ranked,
		byItem:    make([][]int32, len(itemCounts)),
		spans:     make([]maskSpan, len(ranked)),
		universal: noCover,
		words:     (len(itemCounts) + 63) / 64,
	}

	// Counting pass: classify each pattern (universal / dead / live), find
	// its rarest item, and size the mask and candidate-list arrays exactly,
	// so the fill pass below never reallocates. On deep recycled sets the
	// index is rebuilt per compression run over 10^4..10^5 patterns, so
	// append-driven growth would dominate the build.
	rarest := make([]int32, len(ranked))
	perItem := make([]int32, len(itemCounts))
	totalWords, live := 0, 0
	for i := range ranked {
		items := ranked[i].Items
		if len(items) == 0 {
			if idx.universal == noCover {
				idx.universal = int32(i)
			}
			rarest[i] = -1
			continue
		}
		r, alive := rarestItem(items, itemCounts)
		if !alive {
			rarest[i] = -1
			continue // mentions an absent item: can never cover a tuple
		}
		rarest[i] = int32(r)
		perItem[r]++
		live++
		lastW, n := int32(-1), int32(0)
		for _, it := range items {
			if w := int32(it) >> 6; w != lastW {
				n++
				lastW = w
			}
		}
		idx.spans[i].n = n
		totalWords += int(n)
	}

	// Slice the candidate lists out of one backing array; appends happen in
	// ascending pattern ordinal, so every list comes out rank-ordered.
	backing := make([]int32, 0, live)
	for it, n := range perItem {
		if n > 0 {
			off := len(backing)
			backing = backing[:off+int(n)]
			idx.byItem[it] = backing[off : off : off+int(n)]
		}
	}

	idx.masks = make([]wordMask, totalWords)
	off := int32(0)
	for i := range ranked {
		if rarest[i] < 0 {
			continue
		}
		idx.spans[i].off = off
		lastW := int32(-1)
		w := off - 1
		for _, it := range ranked[i].Items {
			if ww := int32(it) >> 6; ww != lastW {
				w++
				idx.masks[w].w = ww
				lastW = ww
			}
			idx.masks[w].m |= 1 << (uint(it) & 63)
		}
		off += idx.spans[i].n
		r := rarest[i]
		idx.byItem[r] = append(idx.byItem[r], int32(i))
	}
	return idx
}

// rarestItem returns the item of the sorted pattern with the lowest database
// count (ties to the smaller id), and whether every item occurs at all.
func rarestItem(items []dataset.Item, itemCounts []int) (dataset.Item, bool) {
	rarest, best := dataset.Item(-1), -1
	for _, it := range items {
		if int(it) >= len(itemCounts) || itemCounts[it] == 0 {
			return 0, false
		}
		if best < 0 || itemCounts[it] < best {
			rarest, best = it, itemCounts[it]
		}
	}
	return rarest, true
}

// coverer is the per-worker mutable state of the cover loop: one reusable
// tuple bitset over the shared index.
type coverer struct {
	idx  *PatternIndex
	bits []uint64
}

func newCoverer(idx *PatternIndex) *coverer {
	return &coverer{idx: idx, bits: make([]uint64, idx.words)}
}

// contains reports whether live pattern ord is a subset of the tuple
// currently loaded into the bitset.
func (c *coverer) contains(ord int32) bool {
	s := c.idx.spans[ord]
	for _, wm := range c.idx.masks[s.off : s.off+s.n] {
		if c.bits[wm.w]&wm.m != wm.m {
			return false
		}
	}
	return true
}

// cover returns the ordinal of the first (lowest-ordinal, i.e. highest-rank)
// pattern containing t, or -1. Candidates are drawn from the lists of t's
// own items; each list is walked in ascending ordinal order only while it
// can still beat the best hit so far.
func (c *coverer) cover(t []dataset.Item) int32 {
	idx := c.idx
	for _, it := range t {
		c.bits[int(it)>>6] |= 1 << (uint(it) & 63)
	}
	best := idx.universal
	for _, it := range t {
		for _, ord := range idx.byItem[it] {
			if ord >= best {
				break
			}
			if c.contains(ord) {
				best = ord
				break
			}
		}
	}
	for _, it := range t {
		c.bits[int(it)>>6] = 0
	}
	if best == noCover {
		return -1
	}
	return best
}

// shardCover is one worker's cover decisions for a contiguous tuple range:
// the covering ordinal (or -1) and the precomputed tail per tuple.
type shardCover struct {
	ords  []int32
	tails [][]dataset.Item
	err   error
}

// coverRange runs the cover loop over tuples [lo, hi).
func coverRange(db *dataset.DB, idx *PatternIndex, lo, hi int, cancel *mining.Canceller) shardCover {
	cov := newCoverer(idx)
	out := shardCover{ords: make([]int32, hi-lo), tails: make([][]dataset.Item, hi-lo)}
	tx := db.All()
	for i := lo; i < hi; i++ {
		if err := cancel.Check(); err != nil {
			out.err = err
			return out
		}
		ord := cov.cover(tx[i])
		out.ords[i-lo] = ord
		if ord >= 0 {
			out.tails[i-lo] = outlying(tx[i], idx.ranked[ord].Items)
		}
	}
	return out
}

// assemble replays shard cover decisions in tuple-id order into a CDB. The
// group registry is a dense ordinal-indexed slot table; groups are created
// in order of first coverage, matching the serial scan byte for byte.
func assemble(db *dataset.DB, ranked []RankedPattern, shards []shardCover, bounds []int) *CDB {
	cdb := &CDB{NumTx: db.Len(), Dict: db.Dict()}
	slots := make([]int32, len(ranked))
	for i := range slots {
		slots[i] = -1
	}
	tx := db.All()
	for s, shard := range shards {
		lo := bounds[s]
		for i, ord := range shard.ords {
			id := lo + i
			if ord < 0 {
				cdb.Loose = append(cdb.Loose, tx[id])
				cdb.LooseIDs = append(cdb.LooseIDs, id)
				continue
			}
			gi := slots[ord]
			if gi < 0 {
				gi = int32(len(cdb.Groups))
				slots[ord] = gi
				cdb.Groups = append(cdb.Groups, Group{Pattern: ranked[ord].Items})
			}
			g := &cdb.Groups[gi]
			g.Tails = append(g.Tails, shard.tails[i])
			g.TupleIDs = append(g.TupleIDs, id)
		}
	}
	return cdb
}

// compressIndexed is the serial indexed engine; a cancelled run returns
// only the context error, never a partial CDB.
func compressIndexed(db *dataset.DB, ranked []RankedPattern, cancel *mining.Canceller) (*CDB, error) {
	idx := NewPatternIndex(ranked, db.ItemCounts())
	shard := coverRange(db, idx, 0, db.Len(), cancel)
	if shard.err != nil {
		return nil, shard.err
	}
	return assemble(db, ranked, []shardCover{shard}, []int{0}), nil
}

// CompressParallel runs phase one of recycling sharded over worker
// goroutines: patterns are ranked under strat, the pattern index is built
// once, the tuple range is split into contiguous shards covered
// independently, and the per-shard decisions are merged in tuple-id order.
// The result is byte-identical to Compress. workers <= 0 means GOMAXPROCS;
// ctx cancels every shard cooperatively.
func CompressParallel(ctx context.Context, db *dataset.DB, fp []mining.Pattern, strat Strategy, workers int) (*CDB, error) {
	return CompressRankedParallel(ctx, db, RankPatterns(fp, db.Len(), strat), workers)
}

// CompressRankedParallel is CompressParallel over an explicitly ordered
// pattern list (the parallel analogue of CompressRanked).
func CompressRankedParallel(ctx context.Context, db *dataset.DB, ranked []RankedPattern, workers int) (*CDB, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > db.Len() {
		workers = db.Len()
	}
	if workers <= 1 {
		cdb, err := compressIndexed(db, ranked, mining.NewCanceller(ctx, 0))
		if err != nil {
			return nil, err
		}
		return cdb, nil
	}

	idx := NewPatternIndex(ranked, db.ItemCounts())
	bounds := make([]int, workers+1)
	for i := 0; i <= workers; i++ {
		bounds[i] = i * db.Len() / workers
	}
	shards := make([]shardCover, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// One canceller per worker: Canceller is deliberately not
			// synchronized, so shards may not share one.
			shards[w] = coverRange(db, idx, bounds[w], bounds[w+1], mining.NewCanceller(ctx, 0))
		}(w)
	}
	wg.Wait()
	for _, s := range shards {
		if s.err != nil {
			return nil, s.err
		}
	}
	return assemble(db, ranked, shards, bounds[:workers]), nil
}

// ctxErr tolerates the nil contexts legacy entry points pass around.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}
