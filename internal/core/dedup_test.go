package core_test

import (
	"math/rand"
	"testing"

	"gogreen/internal/core"
	"gogreen/internal/dataset"
	"gogreen/internal/mining"
	"gogreen/internal/testutil"
)

func TestDedupStructure(t *testing.T) {
	db := dataset.New([][]dataset.Item{
		{1, 2}, {1, 2}, {1, 2}, // triplet
		{3},            // unique
		{4, 5}, {4, 5}, // pair
	})
	cdb := core.Dedup(db)
	if len(cdb.Groups) != 2 {
		t.Fatalf("groups = %d, want 2", len(cdb.Groups))
	}
	if len(cdb.Loose) != 1 {
		t.Fatalf("loose = %d, want 1", len(cdb.Loose))
	}
	total := len(cdb.Loose)
	for _, g := range cdb.Groups {
		total += g.Count()
		for _, tail := range g.Tails {
			if len(tail) != 0 {
				t.Errorf("dedup tails must be empty, got %v", tail)
			}
		}
	}
	if total != db.Len() {
		t.Fatalf("tuples accounted: %d, want %d", total, db.Len())
	}
	// Lossless.
	back := cdb.Decompress()
	for i := 0; i < db.Len(); i++ {
		if mining.Key(back.Tx(i)) != mining.Key(db.Tx(i)) {
			t.Fatalf("tuple %d changed", i)
		}
	}
}

// TestDedupMiningExact: mining a dedup CDB with every engine matches the
// oracle on random databases with heavy duplication.
func TestDedupMiningExact(t *testing.T) {
	r := rand.New(rand.NewSource(111))
	for rep := 0; rep < 12; rep++ {
		// Few items and short tuples force many duplicates.
		db := testutil.RandomDB(r, 80+r.Intn(80), 3+r.Intn(4), 1+r.Intn(4))
		cdb := core.Dedup(db)
		for _, min := range []int{1, 2, 5} {
			want := testutil.Oracle(t, db, min)
			var c mining.Collector
			if err := (core.Naive{}).MineCDB(cdb, min, &c); err != nil {
				t.Fatal(err)
			}
			got, err := c.Set()
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(want) {
				t.Fatalf("dedup mining (min=%d):\n%v", min, got.Diff(want, 10))
			}
		}
	}
}

func TestDedupEmptyAndUnique(t *testing.T) {
	cdb := core.Dedup(dataset.New(nil))
	if cdb.NumTx != 0 || len(cdb.Groups) != 0 || len(cdb.Loose) != 0 {
		t.Errorf("empty dedup: %v", cdb)
	}
	db := dataset.New([][]dataset.Item{{1}, {2}, {3}})
	cdb = core.Dedup(db)
	if len(cdb.Groups) != 0 || len(cdb.Loose) != 3 {
		t.Errorf("all-unique dedup: %v", cdb)
	}
}
