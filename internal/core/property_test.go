package core_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gogreen/internal/core"
	"gogreen/internal/dataset"
	"gogreen/internal/mining"
	"gogreen/internal/testutil"
)

// genDB decodes a testing/quick input vector into a small database: each
// byte triple becomes a tuple seed.
func genDB(seed int64, nTx, nItems, maxLen int) *dataset.DB {
	r := rand.New(rand.NewSource(seed))
	return testutil.RandomDB(r, nTx, nItems, maxLen)
}

// TestQuickCompressionLossless: for arbitrary seeds and strategies,
// compression is a lossless re-encoding.
func TestQuickCompressionLossless(t *testing.T) {
	f := func(seed int64, stratBit bool, minSeed uint8) bool {
		db := genDB(seed, 5+int(uint16(seed)%60), 4+int(uint32(seed>>8)%16), 1+int(uint32(seed>>16)%9))
		min := 1 + int(minSeed%6)
		strat := core.MCP
		if stratBit {
			strat = core.MLP
		}
		fp := oracleSet(db, min)
		cdb := core.Compress(db, fp, strat)
		back := cdb.Decompress()
		if back.Len() != db.Len() {
			return false
		}
		for i := 0; i < db.Len(); i++ {
			if mining.Key(back.Tx(i)) != mining.Key(db.Tx(i)) {
				return false
			}
		}
		// Grouped + loose accounts for every tuple exactly once.
		total := len(cdb.Loose)
		for _, g := range cdb.Groups {
			total += g.Count()
			// Tails never contain pattern items.
			for _, tail := range g.Tails {
				for _, it := range tail {
					if dataset.Contains(g.Pattern, []dataset.Item{it}) {
						return false
					}
				}
			}
		}
		return total == db.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// oracleSet mines with apriori via testutil's RandomDB-independent path: we
// reuse the naive recycler with empty FP, which equals plain projected
// mining, as a cheap complete miner for property tests.
func oracleSet(db *dataset.DB, min int) []mining.Pattern {
	var c mining.Collector
	rec := &core.Recycler{FP: nil, Strategy: core.MCP}
	if err := rec.Mine(db, min, &c); err != nil {
		panic(err)
	}
	return c.Patterns
}

// TestQuickAprioriProperty: every subset of every mined pattern is also
// mined, with support >= the superset's (the Apriori property), across all
// recycling engines.
func TestQuickAprioriProperty(t *testing.T) {
	f := func(seed int64, minSeed uint8) bool {
		db := genDB(seed, 10+int(uint16(seed)%40), 4+int(uint32(seed>>8)%10), 1+int(uint32(seed>>16)%7))
		min := 1 + int(minSeed%4)
		fpOld := oracleSet(db, min+2)
		rec := &core.Recycler{FP: fpOld, Strategy: core.MCP}
		var c mining.Collector
		if err := rec.Mine(db, min, &c); err != nil {
			return false
		}
		set, err := c.Set()
		if err != nil {
			return false
		}
		for _, p := range set {
			if p.Support < min {
				return false
			}
			// Drop each single item: subset must exist with >= support.
			if len(p.Items) < 2 {
				continue
			}
			sub := make([]dataset.Item, 0, len(p.Items)-1)
			for drop := range p.Items {
				sub = sub[:0]
				for i, it := range p.Items {
					if i != drop {
						sub = append(sub, it)
					}
				}
				q, ok := set[mining.Key(sub)]
				if !ok || q.Support < p.Support {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRecyclingIndependentOfXiOld: the mined set at ξ_new must not
// depend on which ξ_old produced the recycled patterns, nor on the
// strategy.
func TestQuickRecyclingIndependentOfXiOld(t *testing.T) {
	f := func(seed int64) bool {
		db := genDB(seed, 15+int(uint16(seed)%50), 5+int(uint32(seed>>8)%10), 2+int(uint32(seed>>16)%7))
		min := 2
		var ref mining.PatternSet
		for _, oldMin := range []int{3, 5, 8} {
			for _, strat := range []core.Strategy{core.MCP, core.MLP} {
				rec := &core.Recycler{FP: oracleSet(db, oldMin), Strategy: strat}
				var c mining.Collector
				if err := rec.Mine(db, min, &c); err != nil {
					return false
				}
				set, err := c.Set()
				if err != nil {
					return false
				}
				if ref == nil {
					ref = set
				} else if !set.Equal(ref) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickUtilityMonotonicity: MCP utility grows with both length and
// support; MLP utility is dominated by length.
func TestQuickUtilityMonotonicity(t *testing.T) {
	f := func(l8, s16 uint8, db16 uint16) bool {
		length := 1 + int(l8%40)
		support := 1 + int(s16)
		dbSize := support + int(db16)
		if core.MCP.Utility(length+1, support, dbSize) <= core.MCP.Utility(length, support, dbSize) {
			return false
		}
		if core.MCP.Utility(length, support+1, dbSize) <= core.MCP.Utility(length, support, dbSize) {
			return false
		}
		// MLP: any longer pattern outranks any shorter one when supports
		// are valid (<= dbSize).
		return core.MLP.Utility(length+1, 1, dbSize) > core.MLP.Utility(length, dbSize, dbSize)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
