package core_test

import (
	"testing"

	"gogreen/internal/core"
	"gogreen/internal/dataset"
)

// projFixture is a rank-space compressed database with every projection
// shape: suffix hits, tail-only hits, blocks degrading to loose tuples,
// and blocks vanishing entirely.
func projFixture() (blocks []core.Block, loose [][]dataset.Item) {
	blocks = []core.Block{
		{Suffix: []dataset.Item{0, 1, 2}, Count: 3,
			Tails: [][]dataset.Item{{3, 5}, {4}, {3, 4, 5}}},
		{Suffix: []dataset.Item{1, 3}, Count: 2,
			Tails: [][]dataset.Item{{4, 5}, {2, 4}}},
		{Suffix: []dataset.Item{5}, Count: 2,
			Tails: [][]dataset.Item{{0, 2}}},
	}
	loose = [][]dataset.Item{{0, 2, 4}, {1, 5}, {3}}
	return blocks, loose
}

// TestProjScratchMatchesProject proves the pooled projection is a drop-in
// for the allocating one: identical blocks, loose tuples, and ordering for
// every projection item, including reuse of the same scratch across items.
func TestProjScratchMatchesProject(t *testing.T) {
	blocks, loose := projFixture()
	var sc core.ProjScratch
	for r := dataset.Item(0); r < 6; r++ {
		wantB, wantL := core.Project(blocks, loose, r)
		gotB, gotL := sc.Project(blocks, loose, r)
		if len(gotB) != len(wantB) || len(gotL) != len(wantL) {
			t.Fatalf("r=%d: %d blocks/%d loose, want %d/%d", r, len(gotB), len(gotL), len(wantB), len(wantL))
		}
		for i := range wantB {
			if !blockEqual(gotB[i], wantB[i]) {
				t.Errorf("r=%d block %d = %+v, want %+v", r, i, gotB[i], wantB[i])
			}
		}
		for i := range wantL {
			if !itemsEqual(gotL[i], wantL[i]) {
				t.Errorf("r=%d loose %d = %v, want %v", r, i, gotL[i], wantL[i])
			}
		}
	}
}

// TestProjScratchAllocs is the satellite regression gate on the pooled
// projection path: once the scratch has warmed up over the projection
// items, re-projecting allocates nothing at all.
func TestProjScratchAllocs(t *testing.T) {
	blocks, loose := projFixture()
	var sc core.ProjScratch
	for r := dataset.Item(0); r < 6; r++ {
		sc.Project(blocks, loose, r)
	}
	avg := testing.AllocsPerRun(100, func() {
		for r := dataset.Item(0); r < 6; r++ {
			sc.Project(blocks, loose, r)
		}
	})
	if avg != 0 {
		t.Errorf("warmed ProjScratch.Project allocates %.1f per sweep, want 0", avg)
	}
}

func blockEqual(a, b core.Block) bool {
	if !itemsEqual(a.Suffix, b.Suffix) || a.Count != b.Count || len(a.Tails) != len(b.Tails) {
		return false
	}
	for i := range a.Tails {
		if !itemsEqual(a.Tails[i], b.Tails[i]) {
			return false
		}
	}
	return true
}

func itemsEqual(a, b []dataset.Item) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
