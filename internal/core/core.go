// Package core implements the paper's primary contribution: recycling
// frequent patterns discovered at an earlier constraint setting to speed up
// subsequent mining.
//
// The scheme has two phases (Section 3):
//
//  1. Compression: the database is compressed using patterns from the
//     previous round. Every tuple is covered by the containing pattern with
//     the highest utility (Figure 1); tuples covered by the same pattern form
//     a group whose pattern is stored once with a count, each member keeping
//     only its outlying items. Two utility functions — MCP and MLP — give the
//     two compression strategies evaluated in the paper.
//  2. Mining: projected-database algorithms run on the compressed database,
//     saving work both when counting supports (a group's pattern is touched
//     once per projected database, contributing its count to every item) and
//     when constructing projected databases (one containment check classifies
//     a whole group). A projected database whose frequent items all occur in
//     a single group is finished by pure enumeration (Lemma 3.1).
//
// This package holds the compressed-database representation, the compression
// algorithm, the tighten-path filter, and the paper's naive recycling miner
// (Figure 3). The adaptations of H-Mine, FP-tree and Tree Projection live in
// internal/rphmine, internal/rpfptree and internal/rptreeproj.
package core

import (
	"context"
	"fmt"
	"sort"

	"gogreen/internal/dataset"
	"gogreen/internal/mining"
)

// Group is a set of tuples compressed by the same pattern. The pattern is
// stored once; each member tuple keeps only its outlying items (the items
// not in the pattern). Count() == len(Tails).
type Group struct {
	// Pattern is the covering pattern, sorted ascending by item id.
	Pattern []dataset.Item
	// Tails holds each member tuple's outlying items (sorted ascending).
	// A tail may be empty (the tuple was exactly the pattern).
	Tails [][]dataset.Item
	// TupleIDs records the original tuple index of each tail, for
	// provenance and lossless decompression. TupleIDs[i] matches Tails[i].
	TupleIDs []int
}

// Count returns the number of tuples in the group.
func (g *Group) Count() int { return len(g.Tails) }

// CDB is a compressed database: groups plus the tuples no recycled pattern
// covers ("loose" tuples). It represents exactly the same multiset of
// tuples as the database it was built from.
type CDB struct {
	Groups []Group
	// Loose holds uncovered tuples verbatim.
	Loose [][]dataset.Item
	// LooseIDs records original tuple indexes of loose tuples.
	LooseIDs []int
	// NumTx is the total number of represented tuples.
	NumTx int
	// Dict carries the item dictionary of the source database (may be nil).
	Dict *dataset.Dict
}

// Stats summarizes a compressed database, including the paper's compression
// ratio R = S_c/S_o (Table 3), with sizes measured in stored item cells:
// a group costs |pattern| + Σ|tails| cells plus one count cell, a loose
// tuple costs its length.
type Stats struct {
	NumGroups     int
	Grouped       int     // tuples inside groups
	Loose         int     // uncovered tuples
	CompressedSz  int     // cells stored in the CDB
	OriginalSz    int     // cells in the original database
	Ratio         float64 // CompressedSz / OriginalSz
	MaxGroupCount int
}

// Stats computes summary statistics.
func (c *CDB) Stats() Stats {
	var s Stats
	s.NumGroups = len(c.Groups)
	for _, g := range c.Groups {
		s.Grouped += g.Count()
		s.OriginalSz += g.Count() * len(g.Pattern)
		s.CompressedSz += len(g.Pattern) + 1
		for _, tail := range g.Tails {
			s.OriginalSz += len(tail)
			s.CompressedSz += len(tail)
		}
		if g.Count() > s.MaxGroupCount {
			s.MaxGroupCount = g.Count()
		}
	}
	s.Loose = len(c.Loose)
	for _, t := range c.Loose {
		s.OriginalSz += len(t)
		s.CompressedSz += len(t)
	}
	if s.OriginalSz > 0 {
		s.Ratio = float64(s.CompressedSz) / float64(s.OriginalSz)
	}
	return s
}

// Decompress reconstructs the original database (tuples in their original
// positions). Used by tests to prove compression is lossless.
func (c *CDB) Decompress() *dataset.DB {
	tx := make([][]dataset.Item, c.NumTx)
	for _, g := range c.Groups {
		for i, tail := range g.Tails {
			t := make([]dataset.Item, 0, len(g.Pattern)+len(tail))
			t = append(t, g.Pattern...)
			t = append(t, tail...)
			tx[g.TupleIDs[i]] = dataset.Canonical(t)
		}
	}
	for i, t := range c.Loose {
		tx[c.LooseIDs[i]] = append([]dataset.Item(nil), t...)
	}
	return dataset.New(tx)
}

// ItemCounts returns per-item supports computed from the compressed
// representation: group patterns contribute their count per item, tails and
// loose tuples contribute one per item. This is the cheap F-list
// construction Example 1 describes (scanning Table 2 instead of Table 1).
func (c *CDB) ItemCounts() []int {
	max := dataset.Item(-1)
	bump := func(it dataset.Item) {
		if it > max {
			max = it
		}
	}
	for _, g := range c.Groups {
		for _, it := range g.Pattern {
			bump(it)
		}
		for _, tail := range g.Tails {
			for _, it := range tail {
				bump(it)
			}
		}
	}
	for _, t := range c.Loose {
		for _, it := range t {
			bump(it)
		}
	}
	counts := make([]int, int(max)+1)
	for _, g := range c.Groups {
		n := g.Count()
		for _, it := range g.Pattern {
			counts[it] += n
		}
		for _, tail := range g.Tails {
			for _, it := range tail {
				counts[it]++
			}
		}
	}
	for _, t := range c.Loose {
		for _, it := range t {
			counts[it]++
		}
	}
	return counts
}

// FList builds the frequent list of the compressed database at the given
// absolute minimum support.
func (c *CDB) FList(minCount int) *mining.FList {
	return mining.NewFList(c.ItemCounts(), minCount)
}

// String renders a compact summary.
func (c *CDB) String() string {
	s := c.Stats()
	return fmt.Sprintf("CDB{%d tx, %d groups (%d tuples), %d loose, ratio %.3f}",
		c.NumTx, s.NumGroups, s.Grouped, s.Loose, s.Ratio)
}

// Compress builds a compressed database from db using the recycled patterns
// fp and the given utility strategy — the algorithm of Figure 1. Patterns
// are ranked by descending utility; each tuple is covered by the first
// (highest-utility) pattern it contains, or stays loose when none matches.
//
// fp would normally be the output of an earlier round of mining on the same
// database (each Pattern's Support is its tuple count at ξ_old, the X.C of
// the utility functions). An empty fp yields a CDB of only loose tuples.
//
// The cover loop runs on the indexed engine (see compress_index.go); use
// CompressParallel to shard it across workers with identical output.
func Compress(db *dataset.DB, fp []mining.Pattern, strat Strategy) *CDB {
	return CompressRanked(db, RankPatterns(fp, db.Len(), strat))
}

// CompressContext is Compress with cooperative cancellation: the per-tuple
// cover loop checks ctx periodically, so even phase one of recycling honors
// deadlines on large databases.
func CompressContext(ctx context.Context, db *dataset.DB, fp []mining.Pattern, strat Strategy) (*CDB, error) {
	cancel := mining.NewCanceller(ctx, 0)
	if err := cancel.Err(); err != nil {
		return nil, err
	}
	return compressIndexed(db, RankPatterns(fp, db.Len(), strat), cancel)
}

// CompressRanked compresses db with an explicitly ordered pattern list:
// each tuple is covered by the first containing pattern. Compress is the
// paper's utility-ranked entry point; this one exists for ablations and
// custom cover policies. It runs on the indexed engine, whose output is
// identical for any pattern order.
func CompressRanked(db *dataset.DB, ranked []RankedPattern) *CDB {
	cdb, _ := compressIndexed(db, ranked, nil) // nil canceller: no error possible
	return cdb
}

// CompressRankedScan is the unindexed reference cover loop: every tuple is
// tested against the full ranked list in order, O(|DB|·|FP|) containment
// probes. It is kept as the differential-testing oracle and the benchmark
// baseline the indexed engine is measured against; production paths use
// CompressRanked or CompressParallel.
func CompressRankedScan(db *dataset.DB, ranked []RankedPattern) *CDB {
	cdb := &CDB{NumTx: db.Len(), Dict: db.Dict()}
	groups := map[string]int{} // pattern key -> index in cdb.Groups

	// Group keys are precomputed up front: RankPatterns fills them at
	// ranking time, and hand-built ranked lists (ablations, tests) get them
	// here, exactly once — never lazily inside the cover loop.
	keys := make([]string, len(ranked))
	for i := range ranked {
		if keys[i] = ranked[i].key; keys[i] == "" {
			keys[i] = mining.Key(ranked[i].Items)
		}
	}

	// Per-tuple membership bitmap, reused across tuples. Recycled patterns
	// may mention items the database no longer contains (e.g. when a
	// succinct constraint dropped items between rounds), so containment
	// checks are bounds-guarded.
	member := make([]bool, int(db.MaxItem())+1)
	contains := func(t, p []dataset.Item) bool {
		if len(p) > len(t) {
			return false
		}
		for _, it := range p {
			if int(it) >= len(member) || !member[it] {
				return false
			}
		}
		return true
	}

	for id, t := range db.All() {
		for _, it := range t {
			member[it] = true
		}
		covered := false
		for i := range ranked {
			if !contains(t, ranked[i].Items) {
				continue
			}
			gi, ok := groups[keys[i]]
			if !ok {
				gi = len(cdb.Groups)
				groups[keys[i]] = gi
				cdb.Groups = append(cdb.Groups, Group{Pattern: ranked[i].Items})
			}
			g := &cdb.Groups[gi]
			g.Tails = append(g.Tails, outlying(t, ranked[i].Items))
			g.TupleIDs = append(g.TupleIDs, id)
			covered = true
			break
		}
		if !covered {
			cdb.Loose = append(cdb.Loose, t)
			cdb.LooseIDs = append(cdb.LooseIDs, id)
		}
		for _, it := range t {
			member[it] = false
		}
	}
	return cdb
}

// outlying returns the items of t not in pattern p (both sorted).
func outlying(t, p []dataset.Item) []dataset.Item {
	out := make([]dataset.Item, 0, len(t)-len(p))
	j := 0
	for _, it := range t {
		for j < len(p) && p[j] < it {
			j++
		}
		if j < len(p) && p[j] == it {
			continue
		}
		out = append(out, it)
	}
	return out
}

// RankedPattern is a pattern with its precomputed utility and cache key.
type RankedPattern struct {
	Items   []dataset.Item
	Support int
	Utility uint64
	key     string
}

// RankPatterns computes utilities (Section 3.2) and sorts patterns by
// descending utility. Ties break by descending support, then length, then
// item order, making compression deterministic. Every returned pattern has
// its canonical key precomputed; no compression path computes keys lazily.
func RankPatterns(fp []mining.Pattern, dbSize int, strat Strategy) []RankedPattern {
	ranked := make([]RankedPattern, 0, len(fp))
	for _, p := range fp {
		items := dataset.Canonical(p.Items)
		ranked = append(ranked, RankedPattern{
			Items:   items,
			Support: p.Support,
			Utility: strat.Utility(len(items), p.Support, dbSize),
			key:     mining.Key(items),
		})
	}
	sort.Slice(ranked, func(i, j int) bool {
		a, b := &ranked[i], &ranked[j]
		if a.Utility != b.Utility {
			return a.Utility > b.Utility
		}
		if a.Support != b.Support {
			return a.Support > b.Support
		}
		if len(a.Items) != len(b.Items) {
			return len(a.Items) > len(b.Items)
		}
		return a.key < b.key
	})
	return ranked
}
