package core_test

import (
	"testing"

	"gogreen/internal/apriori"
	"gogreen/internal/core"
	"gogreen/internal/dataset"
	"gogreen/internal/mining"
	"gogreen/internal/rpfptree"
	"gogreen/internal/rphmine"
	"gogreen/internal/rptreeproj"
)

// dbFromBytes decodes fuzz input into a small database: each byte
// contributes one item; a high bit starts a new tuple. Bounded to keep
// mining cheap under the fuzzer.
func dbFromBytes(data []byte) *dataset.DB {
	if len(data) > 160 {
		data = data[:160]
	}
	var tx [][]dataset.Item
	var cur []dataset.Item
	for _, b := range data {
		if b&0x80 != 0 && len(cur) > 0 {
			tx = append(tx, cur)
			cur = nil
		}
		cur = append(cur, dataset.Item(b&0x0f))
	}
	if len(cur) > 0 {
		tx = append(tx, cur)
	}
	return dataset.New(tx)
}

// FuzzRecyclingEquivalence: for arbitrary tiny databases and thresholds,
// every recycling engine under both strategies matches Apriori exactly.
func FuzzRecyclingEquivalence(f *testing.F) {
	f.Add([]byte{1, 2, 0x83, 1, 2, 3, 0x81, 2}, uint8(2), uint8(4))
	f.Add([]byte{0x85, 5, 5, 5, 0x85, 5}, uint8(1), uint8(2))
	f.Add([]byte{}, uint8(1), uint8(1))
	f.Fuzz(func(t *testing.T, data []byte, minB, oldB uint8) {
		db := dbFromBytes(data)
		min := 1 + int(minB%5)
		oldMin := min + int(oldB%4)

		var oracle mining.Collector
		if err := apriori.New().Mine(db, min, &oracle); err != nil {
			t.Fatal(err)
		}
		want, err := oracle.Set()
		if err != nil {
			t.Fatal(err)
		}

		var oldC mining.Collector
		if err := apriori.New().Mine(db, oldMin, &oldC); err != nil {
			t.Fatal(err)
		}

		engines := []core.CDBMiner{core.Naive{}, rphmine.New(), rpfptree.New(), rptreeproj.New()}
		for _, strat := range []core.Strategy{core.MCP, core.MLP} {
			cdb := core.Compress(db, oldC.Patterns, strat)
			for _, eng := range engines {
				var c mining.Collector
				if err := eng.MineCDB(cdb, min, &c); err != nil {
					t.Fatal(err)
				}
				got, err := c.Set()
				if err != nil {
					t.Fatalf("%s/%s: %v", eng.Name(), strat, err)
				}
				if !got.Equal(want) {
					t.Fatalf("%s/%s (min=%d oldMin=%d, db=%s):\n%v",
						eng.Name(), strat, min, oldMin, db, got.Diff(want, 8))
				}
			}
		}
	})
}
