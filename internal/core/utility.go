package core

import "fmt"

// Strategy selects the utility function that ranks recycled patterns for
// compression (Section 3.2).
type Strategy int

const (
	// MCP is the Minimize Cost Principle: U(X) = (2^|X| − 1) · X.C, an
	// estimate of the search-space cost paid to discover X at ξ_old — and
	// hence of the saving recycling X can deliver. The paper's preferred
	// strategy.
	MCP Strategy = iota
	// MLP is the Maximal Length Principle: U(X) = |X| · |DB| + X.C, which
	// covers every tuple with its longest pattern (ties by support) and
	// minimizes storage instead of cost.
	MLP
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case MCP:
		return "MCP"
	case MLP:
		return "MLP"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// ParseStrategy converts a strategy name ("mcp"/"mlp", case-insensitive via
// exact lower/upper match) into a Strategy.
func ParseStrategy(s string) (Strategy, error) {
	switch s {
	case "mcp", "MCP":
		return MCP, nil
	case "mlp", "MLP":
		return MLP, nil
	}
	return 0, fmt.Errorf("core: unknown strategy %q (want mcp or mlp)", s)
}

// Utility computes the utility of a pattern with the given length and
// support over a database of dbSize tuples. Arithmetic saturates at
// math.MaxUint64 rather than overflowing (MCP's 2^|X| term exceeds 64 bits
// for patterns longer than ~40 items).
func (s Strategy) Utility(length, support, dbSize int) uint64 {
	if length <= 0 || support < 0 {
		return 0
	}
	switch s {
	case MCP:
		if length >= 64 {
			return maxU64
		}
		subsets := uint64(1)<<uint(length) - 1
		return satMul(subsets, uint64(support))
	case MLP:
		return satAdd(satMul(uint64(length), uint64(dbSize)), uint64(support))
	default:
		return 0
	}
}

const maxU64 = ^uint64(0)

// satAdd adds with saturation at the maximum uint64.
func satAdd(a, b uint64) uint64 {
	if a > maxU64-b {
		return maxU64
	}
	return a + b
}

// satMul multiplies with saturation at the maximum uint64.
func satMul(a, b uint64) uint64 {
	if a == 0 || b == 0 {
		return 0
	}
	if a > maxU64/b {
		return maxU64
	}
	return a * b
}
