// Package hmine implements H-Mine (Pei, Han et al., ICDM'01 — reference [15]
// of the paper): frequent-pattern mining over a memory-based hyper-structure
// (H-struct). Transactions are stored exactly once; projected databases are
// queues of pointers into the structure, maintained by relinking as mining
// walks the F-list, so no transaction data is ever copied.
//
// This is the non-recycling baseline for figures 9, 12, 15, 18, 21-24, and
// the base algorithm adapted to compressed databases in internal/rphmine.
package hmine

import (
	"context"
	"slices"

	"gogreen/internal/dataset"
	"gogreen/internal/mining"
)

// Miner is the H-Mine frequent-pattern miner.
type Miner struct{}

// New returns an H-Mine miner.
func New() *Miner { return &Miner{} }

// Name implements mining.Miner.
func (*Miner) Name() string { return "hmine" }

// suffix points at the remainder of one transaction inside the H-struct:
// transaction tx, starting at item index pos.
type suffix struct {
	tx  int32
	pos int32
}

// Mine implements mining.Miner.
func (*Miner) Mine(db *dataset.DB, minCount int, sink mining.Sink) error {
	return mineDB(db, minCount, sink, nil)
}

// MineContext implements mining.ContextMiner: like Mine, but aborts promptly
// (the cancellation check runs at every node of the projected-database
// recursion) when ctx is cancelled or times out, returning the context's
// error.
func (*Miner) MineContext(c context.Context, db *dataset.DB, minCount int, sink mining.Sink) error {
	cancel := mining.NewCanceller(c, 0)
	if err := cancel.Err(); err != nil {
		return err
	}
	if err := mineDB(db, minCount, sink, cancel); err != nil {
		return err
	}
	return cancel.Err()
}

func mineDB(db *dataset.DB, minCount int, sink mining.Sink, cancel *mining.Canceller) error {
	if minCount < 1 {
		return mining.ErrBadMinSupport
	}
	flist := mining.BuildFList(db, minCount)
	if flist.Len() == 0 {
		return nil
	}
	// The H-struct: rank-encoded transactions (items sorted by ascending
	// global support). This is the only copy of the data; everything below
	// works through suffix pointers.
	hs := flist.EncodeDB(db)

	return mineProjected(hs, flist, nil, minCount, sink, cancel, nil)
}

// MineProjected mines an already rank-encoded (projected) database whose
// patterns all extend prefix (in rank space). Used by the memory-limited
// driver to mine disk partitions with the H-Mine engine.
func MineProjected(tx [][]dataset.Item, flist *mining.FList, prefix []dataset.Item, minCount int, sink mining.Sink) error {
	return mineProjected(tx, flist, prefix, minCount, sink, nil, nil)
}

// MineProjectedContext is MineProjected with cooperative cancellation: the
// recursion aborts promptly when ctx is cancelled or times out, returning the
// context's error. Used by the parallel miner, whose workers each mine one
// independent subtree under the caller's context.
func MineProjectedContext(c context.Context, tx [][]dataset.Item, flist *mining.FList, prefix []dataset.Item, minCount int, sink mining.Sink) error {
	cancel := mining.NewCanceller(c, 0)
	if err := cancel.Err(); err != nil {
		return err
	}
	return mineProjected(tx, flist, prefix, minCount, sink, cancel, nil)
}

// Scratch is reusable H-Mine working memory: the level pool, decode buffer,
// and suffix/prefix scratch a mine builds up. A parallel worker holds one
// Scratch and threads it through consecutive MineProjectedScratch calls, so
// steady-state task dispatch costs (near) zero allocations. A Scratch is
// owned by one goroutine at a time and must not be shared concurrently.
type Scratch struct {
	m ctx
}

// NewScratch returns an empty Scratch ready for MineProjectedScratch.
func NewScratch() *Scratch { return &Scratch{} }

// MineProjectedScratch is MineProjectedContext mining through sc's recycled
// buffers. All calls reusing one Scratch must pass the same F-list width
// (the pooled header tables are width-sized); a width change resets the
// pool.
func MineProjectedScratch(c context.Context, sc *Scratch, tx [][]dataset.Item, flist *mining.FList, prefix []dataset.Item, minCount int, sink mining.Sink) error {
	cancel := mining.NewCanceller(c, 0)
	if err := cancel.Err(); err != nil {
		return err
	}
	return mineProjected(tx, flist, prefix, minCount, sink, cancel, sc)
}

func mineProjected(tx [][]dataset.Item, flist *mining.FList, prefix []dataset.Item, minCount int, sink mining.Sink, cancel *mining.Canceller, sc *Scratch) error {
	if minCount < 1 {
		return mining.ErrBadMinSupport
	}
	if sc == nil {
		sc = &Scratch{}
	}
	m := &sc.m
	m.reset(flist, minCount, sink, cancel)
	all := m.sufs[:0]
	for i := range tx {
		all = append(all, suffix{tx: int32(i), pos: 0})
	}
	m.sufs = all
	m.hs = tx
	m.mine(all, append(m.prefix[:0], prefix...))
	m.hs = nil // do not retain the caller's projection past the call
	return cancel.Err()
}

// reset rebinds the per-call fields, keeping the pooled buffers when the
// F-list width is unchanged (the parallel steady path) and rebuilding them
// otherwise.
func (m *ctx) reset(flist *mining.FList, minCount int, sink mining.Sink, cancel *mining.Canceller) {
	n := flist.Len()
	if cap(m.decoded) < n {
		m.decoded = make([]dataset.Item, n)
		m.pool = nil // pooled levels are width-sized
	} else {
		m.decoded = m.decoded[:n]
		for _, l := range m.pool {
			if len(l.counts) < n {
				m.pool = nil
				break
			}
		}
	}
	if cap(m.prefix) < n+1 {
		m.prefix = make([]dataset.Item, 0, n+1)
	}
	m.flist, m.min, m.sink, m.cancel = flist, minCount, sink, cancel
}

type ctx struct {
	hs      [][]dataset.Item // rank-encoded transactions
	flist   *mining.FList
	min     int
	sink    mining.Sink
	decoded []dataset.Item    // scratch for emitting in item space
	pool    []*level          // free per-recursion header tables
	subs    [][]suffix        // free per-recursion projection suffix slices
	sufs    []suffix          // root suffix scratch, reused across calls
	prefix  []dataset.Item    // prefix scratch, reused across calls
	cancel  *mining.Canceller // nil when mining without a context
}

func (m *ctx) getSufs() []suffix {
	if n := len(m.subs); n > 0 {
		s := m.subs[n-1]
		m.subs = m.subs[:n-1]
		return s[:0]
	}
	return nil
}

func (m *ctx) putSufs(s []suffix) {
	m.subs = append(m.subs, s)
}

// level is one recursion's header table: per-item support counts and suffix
// queues, allocated at F-list width and recycled through ctx.pool so deep
// recursions do not allocate.
type level struct {
	counts  []int
	queues  [][]suffix
	touched []dataset.Item
}

func (m *ctx) getLevel() *level {
	if n := len(m.pool); n > 0 {
		l := m.pool[n-1]
		m.pool = m.pool[:n-1]
		return l
	}
	n := m.flist.Len()
	return &level{counts: make([]int, n), queues: make([][]suffix, n)}
}

func (m *ctx) putLevel(l *level) {
	for _, it := range l.touched {
		l.counts[it] = 0
		l.queues[it] = l.queues[it][:0]
	}
	l.touched = l.touched[:0]
	m.pool = append(m.pool, l)
}

// emit decodes the rank-space pattern and streams it out.
func (m *ctx) emit(prefix []dataset.Item, support int) {
	m.sink.Emit(m.flist.DecodeInto(m.decoded, prefix), support)
}

// mine processes one projected database given as a set of suffixes whose
// items are all candidate extensions of prefix. It builds a header table
// (support counts + queues), then walks frequent items in rank order,
// relinking each queue entry to the entry's next frequent item once the
// item's own projection is fully mined — the H-Mine traversal.
func (m *ctx) mine(sufs []suffix, prefix []dataset.Item) {
	// Cooperative cancellation: one cheap check per recursion node and per
	// counted suffix; once tripped, every level returns immediately and the
	// whole recursion unwinds.
	if m.cancel.Check() != nil {
		return
	}
	lv := m.getLevel()
	defer m.putLevel(lv)

	// Header-table pass: count every item occurrence in the projection.
	for _, s := range sufs {
		if m.cancel.Check() != nil {
			return
		}
		t := m.hs[s.tx]
		for i := int(s.pos); i < len(t); i++ {
			it := t[i]
			if lv.counts[it] == 0 {
				lv.touched = append(lv.touched, it)
			}
			lv.counts[it]++
		}
	}
	slices.Sort(lv.touched)

	// Queue each suffix under its first locally-frequent item.
	enqueue := func(s suffix) {
		t := m.hs[s.tx]
		for i := int(s.pos); i < len(t); i++ {
			if lv.counts[t[i]] >= m.min {
				s.pos = int32(i)
				lv.queues[t[i]] = append(lv.queues[t[i]], s)
				return
			}
		}
	}
	for _, s := range sufs {
		enqueue(s)
	}

	// Walk frequent items in rank order (ascending support). When item r is
	// reached, its queue holds exactly the r-projected database: every
	// suffix containing r whose smaller-ranked items have been relinked
	// past.
	prefix = append(prefix, 0)
	for _, r := range lv.touched {
		if m.cancel.Check() != nil {
			return
		}
		q := lv.queues[r]
		if len(q) == 0 || lv.counts[r] < m.min {
			continue
		}
		prefix[len(prefix)-1] = r
		m.emit(prefix, lv.counts[r])

		// Recurse into the r-projected database: same suffixes, moved one
		// item past r. The slice comes from the per-recursion free list and
		// returns to it once the subtree is fully mined.
		sub := m.getSufs()
		for _, s := range q {
			if int(s.pos)+1 < len(m.hs[s.tx]) {
				sub = append(sub, suffix{tx: s.tx, pos: s.pos + 1})
			}
		}
		if len(sub) > 0 {
			m.mine(sub, prefix)
		}
		m.putSufs(sub)

		// Relink: hand each suffix to its next frequent item's queue so
		// later items see their full projected databases.
		for _, s := range q {
			s.pos++
			enqueue(s)
		}
		lv.queues[r] = lv.queues[r][:0]
	}
}
