package hmine_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"gogreen/internal/dataset"
	"gogreen/internal/hmine"
	"gogreen/internal/mining"
	"gogreen/internal/testutil"
)

// slowDB builds a database whose full mine is combinatorially infeasible:
// identical transactions over nItems items make all 2^nItems itemsets
// frequent at minimum count 1.
func slowDB(nItems, nTx int) *dataset.DB {
	tx := make([][]dataset.Item, nTx)
	row := make([]dataset.Item, nItems)
	for i := range row {
		row[i] = dataset.Item(i)
	}
	for t := range tx {
		tx[t] = row
	}
	return dataset.New(tx)
}

// TestMineContextComplete: with a live context the result matches Mine.
func TestMineContextComplete(t *testing.T) {
	db := testutil.PaperDB()
	var plain, ctxed mining.Collector
	if err := hmine.New().Mine(db, 2, &plain); err != nil {
		t.Fatal(err)
	}
	if err := hmine.New().MineContext(context.Background(), db, 2, &ctxed); err != nil {
		t.Fatal(err)
	}
	if len(plain.Patterns) != len(ctxed.Patterns) {
		t.Fatalf("MineContext found %d patterns, Mine found %d", len(ctxed.Patterns), len(plain.Patterns))
	}
}

// TestMineContextAbortsMidRecursion starts an infeasible mine, cancels it
// from another goroutine, and requires the recursion to unwind promptly.
func TestMineContextAbortsMidRecursion(t *testing.T) {
	db := slowDB(30, 60)
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	var emitted int
	sink := mining.SinkFunc(func([]dataset.Item, int) {
		if emitted == 0 {
			close(started)
		}
		emitted++
	})

	errc := make(chan error, 1)
	go func() { errc <- hmine.New().MineContext(ctx, db, 1, sink) }()
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("mine never emitted a pattern")
	}
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(100 * time.Millisecond):
		t.Fatal("mine did not unwind within 100ms of cancel")
	}
	if emitted >= 1<<30 {
		t.Fatalf("mine ran to completion (%d patterns)", emitted)
	}
}

// TestMineContextDeadline: an already-expired deadline aborts before any
// pattern is emitted.
func TestMineContextDeadline(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	var col mining.Collector
	err := hmine.New().MineContext(ctx, testutil.PaperDB(), 2, &col)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if len(col.Patterns) != 0 {
		t.Fatalf("emitted %d patterns after expired deadline", len(col.Patterns))
	}
}
