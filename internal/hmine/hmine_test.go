package hmine

import (
	"testing"

	"gogreen/internal/dataset"
	"gogreen/internal/mining"
	"gogreen/internal/testutil"
)

func TestPaperExample(t *testing.T) {
	db := testutil.PaperDB()
	testutil.CheckAgainstOracle(t, New(), db, 3)
	testutil.CheckAgainstOracle(t, New(), db, 2)
	testutil.CheckAgainstOracle(t, New(), db, 1)
}

func TestCrossCheck(t *testing.T) {
	testutil.CrossCheck(t, New())
}

func TestBadMinSupport(t *testing.T) {
	err := New().Mine(dataset.New(nil), 0, mining.SinkFunc(func([]dataset.Item, int) {}))
	if err != mining.ErrBadMinSupport {
		t.Errorf("got %v, want ErrBadMinSupport", err)
	}
}

func TestEmptyDB(t *testing.T) {
	var c mining.Collector
	if err := New().Mine(dataset.New(nil), 1, &c); err != nil {
		t.Fatal(err)
	}
	if len(c.Patterns) != 0 {
		t.Errorf("got %d patterns from empty db", len(c.Patterns))
	}
}

// TestIdenticalTransactions exercises heavy queue sharing: many copies of
// the same tuple.
func TestIdenticalTransactions(t *testing.T) {
	tx := make([][]dataset.Item, 50)
	for i := range tx {
		tx[i] = []dataset.Item{1, 3, 5, 7}
	}
	db := dataset.New(tx)
	testutil.CheckAgainstOracle(t, New(), db, 50)
	testutil.CheckAgainstOracle(t, New(), db, 1)
}
