package metrics

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x")
	c.Inc()
	c.Add(4)
	c.Add(-10) // ignored
	if got := r.Counter("x").Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("g")
	g.Set(7)
	g.Add(-3)
	if got := r.Gauge("g").Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
	r.GaugeFunc("fn", func() int64 { return 42 })
	if got := r.Snapshot().Gauges["fn"]; got != 42 {
		t.Fatalf("gauge func = %d, want 42", got)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 5, 5, 50, 5000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 5 || s.Sum != 5060.5 || s.Min != 0.5 || s.Max != 5000 {
		t.Fatalf("snapshot = %+v", s)
	}
	want := map[float64]int64{1: 1, 10: 2, 100: 1, math.Inf(1): 1}
	if len(s.Buckets) != len(want) {
		t.Fatalf("buckets = %+v", s.Buckets)
	}
	for _, b := range s.Buckets {
		if want[b.Le] != b.Count {
			t.Errorf("bucket le=%v count=%d, want %d", b.Le, b.Count, want[b.Le])
		}
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h", DefaultLatencyBounds).Observe(float64(j))
			}
		}()
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Counters["c"] != 8000 || s.Gauges["g"] != 8000 || s.Histograms["h"].Count != 8000 {
		t.Fatalf("snapshot = %+v", s)
	}
}

func TestHandlerJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("mine.total").Add(3)
	r.Histogram("lat", DefaultLatencyBounds).Observe(12)
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	var s Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &s); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rec.Body.String())
	}
	if s.Counters["mine.total"] != 3 || s.Histograms["lat"].Count != 1 {
		t.Fatalf("snapshot = %+v", s)
	}
}
