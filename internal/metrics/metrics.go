// Package metrics is a tiny stdlib-only metrics layer for the mining
// service: named counters, gauges, and fixed-bucket histograms collected in
// a Registry whose Snapshot is JSON-ready and served by Handler at
// GET /metrics. Everything is safe for concurrent use; updates on the hot
// path are single atomic operations (histograms take a short lock).
package metrics

import (
	"encoding/json"
	"math"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing 64-bit counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n (n < 0 is ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous 64-bit value (queue depth, in-flight requests).
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the value by n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram accumulates observations into fixed upper-bound buckets, plus
// count/sum/min/max. Buckets are disjoint intervals, not Prometheus-style
// cumulative ones: each observation lands in exactly one bucket, the one
// whose range (previous bound, upper bound] contains it; an implicit +Inf
// bucket catches the rest.
type Histogram struct {
	mu       sync.Mutex
	bounds   []float64
	counts   []int64 // len(bounds)+1, last is +Inf
	count    int64
	sum      float64
	min, max float64
}

// DefaultLatencyBounds are millisecond buckets spanning sub-millisecond
// requests to multi-minute mining runs.
var DefaultLatencyBounds = []float64{1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 30000, 60000}

// DefaultSecondsBounds are second buckets for phase timings (compression,
// encoding) spanning sub-millisecond runs to multi-minute ones.
var DefaultSecondsBounds = []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120}

// DefaultRatioBounds bucket compression ratios R = S_c/S_o in (0, 1.2]:
// values near 0 mean strong compression, above 1 mean the compressed form
// was larger (pathological covers).
var DefaultRatioBounds = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0, 1.2}

// NewHistogram returns a histogram over the given ascending upper bounds.
func NewHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]int64, len(b)+1), min: math.Inf(1), max: math.Inf(-1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.mu.Lock()
	h.counts[i]++
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.mu.Unlock()
}

// Bucket is one histogram bucket in a snapshot: the count of observations
// in the interval (previous bound, Le]. Counts are per-interval, NOT
// cumulative Prometheus le-style; math.Inf(1) renders as "+Inf".
type Bucket struct {
	Le    float64 `json:"le"`
	Count int64   `json:"count"`
}

// MarshalJSON renders the +Inf bound as a string (JSON has no infinity).
func (b Bucket) MarshalJSON() ([]byte, error) {
	type bucket struct {
		Le    any   `json:"le"`
		Count int64 `json:"count"`
	}
	le := any(b.Le)
	if math.IsInf(b.Le, 1) {
		le = "+Inf"
	}
	return json.Marshal(bucket{Le: le, Count: b.Count})
}

// UnmarshalJSON accepts both numeric bounds and the "+Inf" string, so
// snapshots round-trip through JSON (clients and tests decode /metrics).
func (b *Bucket) UnmarshalJSON(data []byte) error {
	var raw struct {
		Le    json.RawMessage `json:"le"`
		Count int64           `json:"count"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	b.Count = raw.Count
	var s string
	if err := json.Unmarshal(raw.Le, &s); err == nil {
		b.Le = math.Inf(1)
		return nil
	}
	return json.Unmarshal(raw.Le, &b.Le)
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	Count   int64    `json:"count"`
	Sum     float64  `json:"sum"`
	Min     float64  `json:"min,omitempty"`
	Max     float64  `json:"max,omitempty"`
	Mean    float64  `json:"mean,omitempty"`
	Buckets []Bucket `json:"buckets"`
}

// Snapshot copies the histogram's current state. Empty buckets are elided.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{Count: h.count, Sum: h.sum}
	if h.count > 0 {
		s.Min, s.Max, s.Mean = h.min, h.max, h.sum/float64(h.count)
	}
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		le := math.Inf(1)
		if i < len(h.bounds) {
			le = h.bounds[i]
		}
		s.Buckets = append(s.Buckets, Bucket{Le: le, Count: c})
	}
	return s
}

// Registry is a namespace of metrics. The zero value is not usable; call
// NewRegistry. Metric constructors are get-or-create and safe to race.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	gaugeFuncs map[string]func() int64
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		gaugeFuncs: map[string]func() int64{},
		histograms: map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// GaugeFunc registers a gauge evaluated lazily at snapshot time — used for
// values owned elsewhere, like the job queue depth.
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gaugeFuncs[name] = fn
}

// Histogram returns the named histogram, creating it with the given bounds
// on first use (later calls ignore bounds).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = NewHistogram(bounds)
		r.histograms[name] = h
	}
	return h
}

// Snapshot is a JSON-ready view of every metric in the registry.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures the current value of every metric.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)+len(r.gaugeFuncs)),
		Histograms: make(map[string]HistogramSnapshot, len(r.histograms)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, fn := range r.gaugeFuncs {
		s.Gauges[name] = fn()
	}
	for name, h := range r.histograms {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// Handler serves the registry snapshot as JSON.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(r.Snapshot())
	})
}
