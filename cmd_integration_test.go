// End-to-end tests of the command-line binaries: build them with the Go
// toolchain, then drive the full gendata → mine/save → recycle pipeline the
// README documents.
package gogreen

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildCmds compiles the binaries once per test run.
func buildCmds(t *testing.T, names ...string) map[string]string {
	t.Helper()
	if testing.Short() {
		t.Skip("builds binaries; skipped with -short")
	}
	dir := t.TempDir()
	out := map[string]string{}
	for _, name := range names {
		bin := filepath.Join(dir, name)
		cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
		cmd.Dir = "."
		if msg, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", name, err, msg)
		}
		out[name] = bin
	}
	return out
}

func run(t *testing.T, bin string, args ...string) (string, error) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	msg, err := cmd.CombinedOutput()
	return string(msg), err
}

func TestCLIPipeline(t *testing.T) {
	bins := buildCmds(t, "gendata", "rpmine")
	dir := t.TempDir()
	basket := filepath.Join(dir, "w.basket")
	fp := filepath.Join(dir, "round1.fp")
	outTxt := filepath.Join(dir, "patterns.txt")

	// Generate a small dataset.
	if msg, err := run(t, bins["gendata"], "-dataset", "weather", "-scale", "0.002", "-out", basket); err != nil {
		t.Fatalf("gendata: %v\n%s", err, msg)
	}
	if _, err := os.Stat(basket); err != nil {
		t.Fatal(err)
	}

	// Round 1: mine and save.
	msg, err := run(t, bins["rpmine"], "-in", basket, "-minsup", "0.05", "-save", fp)
	if err != nil {
		t.Fatalf("rpmine round 1: %v\n%s", err, msg)
	}
	if !strings.Contains(msg, "saved to") {
		t.Fatalf("round 1 output: %s", msg)
	}

	// Round 2: recycle.
	msg, err = run(t, bins["rpmine"], "-in", basket, "-minsup", "0.02",
		"-algo", "rp-hmine", "-recycle", fp, "-out", outTxt)
	if err != nil {
		t.Fatalf("rpmine round 2: %v\n%s", err, msg)
	}
	if !strings.Contains(msg, "recycling") || !strings.Contains(msg, "compressed:") {
		t.Fatalf("round 2 output: %s", msg)
	}
	data, err := os.ReadFile(outTxt)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(string(data), "\n")
	if lines < 10 {
		t.Fatalf("only %d output patterns", lines)
	}

	// Same mine without recycling must agree on the count.
	direct, err := run(t, bins["rpmine"], "-in", basket, "-minsup", "0.02", "-quiet")
	if err != nil {
		t.Fatalf("direct: %v\n%s", err, direct)
	}
	wantCount := extractCount(t, direct)
	gotCount := extractCount(t, msg)
	if wantCount != gotCount {
		t.Fatalf("recycled found %d, direct %d", gotCount, wantCount)
	}

	// Post-processing flags.
	msg, err = run(t, bins["rpmine"], "-in", basket, "-minsup", "0.05", "-closed", "-rules", "0")
	if err != nil {
		t.Fatalf("closed: %v\n%s", err, msg)
	}
	if !strings.Contains(msg, "closed patterns") {
		t.Fatalf("closed output: %s", msg)
	}

	// Error paths.
	if msg, err := run(t, bins["rpmine"], "-in", basket, "-algo", "bogus"); err == nil {
		t.Fatalf("bogus algorithm accepted: %s", msg)
	}
	if msg, err := run(t, bins["rpmine"], "-in", "/nonexistent.basket"); err == nil {
		t.Fatalf("missing input accepted: %s", msg)
	}
	if msg, err := run(t, bins["gendata"], "-dataset", "bogus"); err == nil {
		t.Fatalf("bogus dataset accepted: %s", msg)
	}
}

// extractCount parses "found N frequent patterns" from rpmine's stderr.
func extractCount(t *testing.T, out string) int {
	t.Helper()
	for _, line := range strings.Split(out, "\n") {
		if i := strings.Index(line, "found "); i >= 0 {
			rest := line[i+len("found "):]
			if j := strings.Index(rest, " frequent"); j >= 0 {
				n := 0
				for _, ch := range rest[:j] {
					if ch < '0' || ch > '9' {
						t.Fatalf("bad count in %q", line)
					}
					n = n*10 + int(ch-'0')
				}
				return n
			}
		}
	}
	t.Fatalf("no count in output:\n%s", out)
	return 0
}

func TestCLIExperimentsList(t *testing.T) {
	bins := buildCmds(t, "experiments")
	msg, err := run(t, bins["experiments"], "-list")
	if err != nil {
		t.Fatalf("experiments -list: %v\n%s", err, msg)
	}
	for _, id := range []string{"table3", "fig9", "fig24", "ablation-twostep"} {
		if !strings.Contains(msg, id) {
			t.Errorf("-list missing %s:\n%s", id, msg)
		}
	}
	if msg, err := run(t, bins["experiments"], "-exp", "bogus"); err == nil {
		t.Fatalf("bogus experiment accepted: %s", msg)
	}
}
