// Command experiments regenerates the paper's evaluation artifacts — Table 3
// and Figures 9-24 — plus the repository's ablation studies, over the
// synthetic stand-in datasets (DESIGN.md §4).
//
// Usage:
//
//	experiments -list
//	experiments -exp fig15 -scale 0.05
//	experiments -exp all -scale 0.02 -out results.txt
//
// Scale 1.0 reproduces paper-sized datasets (slow); the default 0.02 runs
// the full suite in minutes on a laptop.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"gogreen/internal/bench"
)

func main() {
	var (
		exp   = flag.String("exp", "all", "experiment id (see -list) or \"all\"")
		scale = flag.Float64("scale", 0.02, "dataset scale factor (1.0 = paper-sized)")
		out   = flag.String("out", "", "write results to this file as well as stdout")
		list  = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-22s %s\n", e.ID, e.Title)
		}
		return
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	cfg := bench.Config{Scale: *scale}
	run := func(e bench.Experiment) {
		fmt.Fprintf(w, "=== %s: %s\n", e.ID, e.Title)
		fmt.Fprintf(w, "    paper: %s\n", e.Paper)
		start := time.Now()
		if err := e.Run(cfg, w); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Fprintf(w, "    (%.1fs)\n\n", time.Since(start).Seconds())
	}

	if *exp == "all" {
		for _, e := range bench.All() {
			run(e)
		}
		return
	}
	e := bench.ByID(*exp)
	if e == nil {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *exp)
		os.Exit(1)
	}
	run(*e)
}
