// Command rpmine mines frequent patterns from a basket-format file with any
// of the repository's algorithms, optionally recycling a previously saved
// pattern set (the paper's two-phase scheme) and saving the new result for
// the next iteration.
//
// A first iteration, saving its result:
//
//	rpmine -in data.basket -minsup 0.05 -save round1.fp
//
// A later iteration at a relaxed threshold, recycling round 1:
//
//	rpmine -in data.basket -minsup 0.02 -recycle round1.fp -algo rp-hmine
//
// A whole threshold sweep in one process, served through the materialized
// threshold lattice (each round filters or relax-mines from the previous
// rounds' rungs instead of starting cold; -save keeps the last round):
//
//	rpmine -in data.basket -minsup 0.05,0.02,0.01,0.02
//
// With -data-dir the lattice persists across invocations: rungs mined by one
// run are recovered by the next run on the same input, so separate processes
// sweep as cheaply as one (a changed input file resets its ladder):
//
//	rpmine -in data.basket -minsup 0.05 -data-dir .rpmine-cache
//	rpmine -in data.basket -minsup 0.05 -data-dir .rpmine-cache   # pure filter
//
// Every algorithm comes from the engine registry — run `rpmine -list` for
// the full catalogue: baselines (apriori, hmine, ...), recycling engines
// (rp-naive, rp-hmine, ...; they use -recycle), and the derived parallel
// variants (par-hmine, par-rp-hmine, ...; tune with -workers).
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"gogreen/internal/core"
	"gogreen/internal/dataset"
	"gogreen/internal/engine"
	"gogreen/internal/memlimit"
	"gogreen/internal/mining"
	"gogreen/internal/patternio"
	"gogreen/internal/postmine"
	"gogreen/internal/store"
)

func main() {
	var (
		in       = flag.String("in", "", "input basket file (numeric item ids)")
		minsup   = flag.String("minsup", "0.01", "minimum support (fraction <1, or absolute count >=1); a comma-separated list runs a lattice-served sweep")
		latticed = flag.Bool("lattice", true, "serve multi-threshold sweeps through the materialized threshold lattice")
		dataDir  = flag.String("data-dir", "", "persist mined lattice rungs in this directory, so later invocations on the same input filter or relax instead of mining cold (implies the lattice serving path)")
		algo     = flag.String("algo", "hmine", "algorithm (see doc comment)")
		strategy = flag.String("strategy", "mcp", "compression strategy for recycling: mcp or mlp")
		recycle  = flag.String("recycle", "", "pattern file from an earlier round to recycle")
		save     = flag.String("save", "", "save the mined patterns to this file")
		outPath  = flag.String("out", "", "write patterns to this file (default: summary only)")
		memMB    = flag.Int("mem", 0, "memory budget in MB (0 = unlimited); hmine/rp-* only")
		workers  = flag.Int("workers", 0, "worker goroutines for par-* algorithms (0 = GOMAXPROCS)")
		list     = flag.Bool("list", false, "list the registered algorithms and exit")
		quiet    = flag.Bool("quiet", false, "suppress per-pattern output entirely")
		closed   = flag.Bool("closed", false, "report only closed patterns")
		maximal  = flag.Bool("maximal", false, "report only maximal patterns")
		minConf  = flag.Float64("rules", 0, "derive association rules at this confidence (0 = off)")
	)
	flag.Parse()
	if *list {
		listAlgorithms(os.Stdout)
		return
	}
	if *in == "" {
		fmt.Fprintln(os.Stderr, "rpmine: -in is required")
		flag.Usage()
		os.Exit(1)
	}

	db, err := dataset.ReadBasketIDsFile(*in)
	if err != nil {
		fatal(err)
	}
	mins, err := parseMinsups(*minsup, db.Len())
	if err != nil {
		fatal(err)
	}
	min := mins[len(mins)-1]
	st := db.Stats()
	fmt.Fprintf(os.Stderr, "loaded %d tuples (avg len %.1f, %d items); minsup=%d tuples\n",
		st.NumTx, st.AvgLen, st.NumItems, min)

	strat, err := core.ParseStrategy(*strategy)
	if err != nil {
		fatal(err)
	}

	var recycled []mining.Pattern
	recycledMin := 0
	if *recycle != "" {
		set, err := patternio.ReadFile(*recycle)
		if err != nil {
			fatal(err)
		}
		recycled = set.Patterns
		recycledMin = set.MinSupport
		fmt.Fprintf(os.Stderr, "recycling %d patterns from %s\n", len(recycled), *recycle)
	}

	var col mining.Collector
	var sink mining.Sink = &col
	var counter mining.Count
	needPatterns := *save != "" || *outPath != "" || *closed || *maximal || *minConf > 0
	if *quiet && !needPatterns {
		sink = &counter
	}

	start := time.Now()
	if len(mins) > 1 || *dataDir != "" {
		if *memMB > 0 {
			fatal(fmt.Errorf("-mem is not supported with a -minsup sweep or -data-dir"))
		}
		if err := sweep(db, mins, *algo, strat, recycled, recycledMin, *workers, *latticed, *dataDir, *in, sink); err != nil {
			fatal(err)
		}
	} else if err := mine(db, min, *algo, strat, recycled, int64(*memMB)<<20, *workers, sink); err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)

	n := len(col.Patterns)
	if sink == &counter {
		n = counter.N
	}
	fmt.Fprintf(os.Stderr, "%s found %d frequent patterns in %v\n", *algo, n, elapsed)

	if *closed {
		col.Patterns = postmine.Closed(col.Patterns)
		fmt.Fprintf(os.Stderr, "%d closed patterns\n", len(col.Patterns))
	}
	if *maximal {
		col.Patterns = postmine.Maximal(col.Patterns)
		fmt.Fprintf(os.Stderr, "%d maximal patterns\n", len(col.Patterns))
	}
	if *minConf > 0 {
		if *closed || *maximal {
			fatal(fmt.Errorf("-rules needs the complete pattern set; drop -closed/-maximal"))
		}
		rules := postmine.Rules(col.Patterns, *minConf, db.Len())
		fmt.Fprintf(os.Stderr, "%d rules at confidence >= %.2f\n", len(rules), *minConf)
		for i, r := range rules {
			if i == 20 {
				fmt.Fprintf(os.Stderr, "... (%d more)\n", len(rules)-20)
				break
			}
			fmt.Fprintf(os.Stderr, "  %v => %v  conf=%.2f lift=%.2f sup=%d\n",
				r.Antecedent, r.Consequent, r.Confidence, r.Lift, r.Support)
		}
	}

	if *save != "" {
		if err := patternio.WriteFile(*save, patternio.Set{Patterns: col.Patterns, MinSupport: min}); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "saved to %s\n", *save)
	}
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatal(err)
		}
		w := bufio.NewWriter(f)
		col.Sort()
		for _, p := range col.Patterns {
			for i, it := range p.Items {
				if i > 0 {
					w.WriteByte(' ')
				}
				w.WriteString(strconv.Itoa(int(it)))
			}
			fmt.Fprintf(w, " (%d)\n", p.Support)
		}
		if err := w.Flush(); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
}

// parseMinsups parses the -minsup flag: each comma-separated entry is a
// fraction (<1) of |DB| or an absolute tuple count (>=1).
func parseMinsups(s string, dbLen int) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("rpmine: bad -minsup entry %q", f)
		}
		m := int(v)
		if v < 1 {
			m = mining.MinCount(dbLen, v)
		}
		out = append(out, m)
	}
	return out, nil
}

// sweep mines several thresholds in one process through the engine's
// cache-aware serving path: with -lattice (the default) each round filters
// or relax-mines from the rungs earlier rounds installed; without it, each
// round still recycles the previous round's result as its prior. Only the
// last round streams into sink.
//
// With dataDir the lattice outlives the process: rungs persisted by earlier
// invocations on the same input are re-installed before round one, and every
// rung this sweep installs is written back, so a shell loop over thresholds
// recycles exactly like a long-lived session.
func sweep(db *dataset.DB, mins []int, algo string, strat core.Strategy, recycled []mining.Pattern, recycledMin, workers int, latticed bool, dataDir, inPath string, sink mining.Sink) error {
	d, ok := engine.Lookup(algo)
	if !ok {
		return fmt.Errorf("rpmine: unknown algorithm %q (run rpmine -list)", algo)
	}
	p := engine.Pipeline{Strategy: strat, MineWorkers: workers}
	if d.Kind == engine.Fresh {
		p.Fresh = algo
	} else {
		p.Recycled = algo
	}
	cfg := engine.CacheConfig{Enabled: latticed}
	cfg.Attach(&p, db)

	var st *store.Store
	dbID := ""
	if dataDir != "" && latticed {
		var err error
		if st, err = store.Open(dataDir, store.Options{}); err != nil {
			return fmt.Errorf("rpmine: open -data-dir: %w", err)
		}
		defer st.Close()
		// Rungs are keyed by the input's base name; a tuple-count mismatch
		// means the file changed, which resets its persisted ladder.
		dbID = filepath.Base(inPath)
		stale := true
		for _, m := range st.List() {
			if m.ID == dbID {
				stale = m.NumTx != db.Len()
				break
			}
		}
		if stale {
			if err := st.PutDB(dbID, "local", db); err != nil {
				return fmt.Errorf("rpmine: persist input: %w", err)
			}
		} else {
			rungs, err := st.LoadRungs(dbID)
			if err != nil {
				return fmt.Errorf("rpmine: load rungs: %w", err)
			}
			for _, r := range rungs {
				p.Cache.Install(r.MinCount, r.Patterns)
			}
			if len(rungs) > 0 {
				fmt.Fprintf(os.Stderr, "lattice: %d persisted rungs recovered from %s\n", len(rungs), dataDir)
			}
		}
	}

	var prior *engine.Prior
	if len(recycled) > 0 && recycledMin >= 1 {
		prior = &engine.Prior{Patterns: recycled, MinCount: recycledMin, Label: "recycle-file"}
	}
	for i, m := range mins {
		run, err := p.Serve(context.Background(), db, prior, m, nil)
		if err != nil {
			return err
		}
		if st != nil && run.Installed != nil {
			if err := st.PutRung(dbID, run.Installed.MinCount, run.Installed.Patterns); err != nil {
				return fmt.Errorf("rpmine: persist rung: %w", err)
			}
		}
		from, cache := string(run.Source), run.Cache
		if run.BasedOn != "" {
			from += " from " + run.BasedOn
		}
		if cache == "" {
			cache = "off"
		}
		fmt.Fprintf(os.Stderr, "round %d: minsup=%d -> %d patterns (%s, cache %s, %v)\n",
			i+1, m, len(run.Patterns), from, cache, run.Elapsed)
		if i == len(mins)-1 {
			for _, pat := range run.Patterns {
				sink.Emit(pat.Items, pat.Support)
			}
			return nil
		}
		prior = &engine.Prior{Patterns: run.Patterns, MinCount: m, Label: fmt.Sprintf("round-%d", i+1)}
	}
	return nil
}

// mine dispatches to the selected algorithm through the engine registry.
func mine(db *dataset.DB, min int, algo string, strat core.Strategy, recycled []mining.Pattern, budget int64, workers int, sink mining.Sink) error {
	d, ok := engine.Lookup(algo)
	if !ok {
		return fmt.Errorf("rpmine: unknown algorithm %q (run rpmine -list)", algo)
	}

	if d.Kind == engine.Fresh {
		if budget > 0 {
			if d.Name != "hmine" {
				return fmt.Errorf("rpmine: -mem supports only hmine among the baselines")
			}
			return memlimit.MineDB(db, min, memlimit.Config{Budget: budget}, sink)
		}
		m, err := engine.NewMiner(algo, workers)
		if err != nil {
			return err
		}
		return m.Mine(db, min, sink)
	}

	if recycled == nil {
		fmt.Fprintln(os.Stderr, "note: no -recycle file; compressing with an empty pattern set (no grouping)")
	}
	cdb := core.Compress(db, recycled, strat)
	s := cdb.Stats()
	fmt.Fprintf(os.Stderr, "compressed: %d groups covering %d tuples, ratio %.3f\n",
		s.NumGroups, s.Grouped, s.Ratio)
	if budget > 0 {
		// memlimit drives its own serial leaf miners; it understands the
		// serial engine names only.
		serial := d.Name
		if d.Base != "" {
			serial = d.Base
		}
		engName := "rp-hmine"
		if serial == "rp-naive" {
			engName = "rp-naive"
		}
		return memlimit.MineCDB(cdb, min, memlimit.Config{Budget: budget, Engine: engName}, sink)
	}
	eng, err := engine.NewEngine(algo, workers)
	if err != nil {
		return err
	}
	return eng.MineCDB(cdb, min, sink)
}

// listAlgorithms renders the registry catalogue behind -list.
func listAlgorithms(w *os.File) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "NAME\tKIND\tSUMMARY")
	for _, d := range engine.Descriptors() {
		fmt.Fprintf(tw, "%s\t%s\t%s\n", d.Name, d.Kind, d.Summary)
	}
	tw.Flush()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rpmine:", err)
	os.Exit(1)
}
