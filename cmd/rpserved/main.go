// Command rpserved runs the multi-user pattern-recycling mining service:
// analysts upload transaction databases and mine them over HTTP, and every
// saved mining result becomes recyclable knowledge for later requests from
// any user (the paper's multi-user scenario, Section 2).
//
//	rpserved -addr :8080
//
// Walkthrough with curl:
//
//	gendata -dataset weather -scale 0.01 -out w.basket
//	curl -X PUT  --data-binary @w.basket localhost:8080/db/weather
//	curl -X POST -d '{"min_support":0.05,"save_as":"coarse"}' localhost:8080/db/weather/mine
//	curl -X POST -d '{"min_support":0.01}' localhost:8080/db/weather/mine
//	                      ^ recycled from "coarse" automatically
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"gogreen/internal/server"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		maxBody = flag.Int64("max-upload-mb", 64, "maximum upload size in MiB")
	)
	flag.Parse()

	srv := server.New(server.WithMaxBodyBytes(*maxBody << 20))
	hs := &http.Server{
		Addr:              *addr,
		Handler:           logRequests(srv.Handler()),
		ReadHeaderTimeout: 10 * time.Second,
	}
	fmt.Fprintf(os.Stderr, "rpserved: listening on %s\n", *addr)
	if err := hs.ListenAndServe(); err != nil {
		log.Fatal(err)
	}
}

// logRequests is a minimal access log.
func logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		next.ServeHTTP(w, r)
		log.Printf("%s %s (%v)", r.Method, r.URL.Path, time.Since(start).Round(time.Millisecond))
	})
}
