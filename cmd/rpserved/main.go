// Command rpserved runs the multi-user pattern-recycling mining service:
// analysts upload transaction databases and mine them over HTTP, and every
// saved mining result becomes recyclable knowledge for later requests from
// any user (the paper's multi-user scenario, Section 2).
//
//	rpserved -addr :8080 -mine-timeout 30s -workers 4 -queue 64
//
// The service scales horizontally in-process: -shards N puts a consistent-
// hashing router in front of N engine shards, each owning its own database
// map, job pool, and lattice store slice (GET /shards reports per-shard
// occupancy).
//
// The same binary also deploys the ring across processes — the shape is
// configuration, not code:
//
//	rpserved -role shard -shard-index 0 -addr :9000   # shard process 0
//	rpserved -role shard -shard-index 1 -addr :9001   # shard process 1
//	rpserved -role router -shard-addrs :9000,:9001    # public front
//
// A shard process is a complete single-shard server that mints ids for its
// ring position ("s<i>-" job prefixes, shard i in /shards and lattice
// responses); -shard-addrs must list the shards in -shard-index order. The
// router forwards routed requests byte-for-byte (X-Tenant, quota 429s with
// Retry-After, job-id prefixes all preserved), aggregates the listing
// endpoints, and probes each shard's GET /healthz every -probe-interval: a
// shard failing -probe-failures consecutive probes is ejected — its requests
// answer 503 with code "shard_unavailable" and shard_unhealthy_total
// increments — and rejoins on the next passing probe. Per-tenant quotas are
// enforced by each shard process from its own flags.
//
// Tenants identify themselves with the X-Tenant request header;
// -tenant-max-dbs, -tenant-max-jobs, and -tenant-max-pattern-mb bound what
// one tenant may hold — over-quota requests get 429 with a Retry-After
// header instead of degrading everyone else. All three default to unlimited.
//
// Walkthrough with curl:
//
//	gendata -dataset weather -scale 0.01 -out w.basket
//	curl -X PUT  --data-binary @w.basket localhost:8080/db/weather
//	curl -X POST -d '{"min_support":0.05,"save_as":"coarse"}' localhost:8080/db/weather/mine
//	curl -X POST -d '{"min_support":0.01}' localhost:8080/db/weather/mine
//	                      ^ recycled from "coarse" automatically
//
// Long-running mines go through the async job queue:
//
//	curl -X POST -d '{"min_support":0.001}' 'localhost:8080/db/weather/mine?async=1'
//	curl localhost:8080/jobs/j1           # poll
//	curl -X DELETE localhost:8080/jobs/j1 # cancel mid-recursion
//
// With -data-dir the service is durable: every shard persists uploads,
// saved pattern sets and installed lattice rungs to an append-only segment
// store (fsync'd before the response), restart replays them, and
// -cold-after spills long-untouched databases to disk stubs that rehydrate
// on first touch. -snapshot-interval paces background compaction.
//
// Mining responses flow through the materialized threshold lattice (disable
// with -lattice=false, budget with -cache-budget-mb, snap installs to a grid
// with -lattice-rungs): repeated or tightened thresholds are answered by
// pure filtering, relaxed ones seed recycling from the nearest rung.
// Inspect or drop a database's ladder with GET/DELETE /db/{id}/lattice.
//
// GET /metrics reports mine counts, latencies, the fresh/filtered/recycled
// source mix, lattice cache counters (cache_hit, cache_miss, cache_install,
// cache_evict) and rung/byte gauges, and queue gauges as JSON. With -pprof
// the Go profiling endpoints are mounted under /debug/pprof/. On
// SIGINT/SIGTERM the server stops accepting work, drains running jobs, and
// exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"gogreen/internal/server"
	"gogreen/internal/shard"
)

func main() {
	var (
		addr          = flag.String("addr", ":8080", "listen address")
		maxBody       = flag.Int64("max-upload-mb", 64, "maximum upload size in MiB")
		mineTimeout   = flag.Duration("mine-timeout", 0, "per-request mining deadline (0 = none)")
		workers       = flag.Int("workers", 0, "async mining workers (0 = NumCPU)")
		mineWorkers   = flag.Int("mine-workers", 0, "worker pool per mining run (0 = serial, -1 = GOMAXPROCS)")
		queue         = flag.Int("queue", 64, "async job queue depth")
		shards        = flag.Int("shards", 1, "engine shard count (databases are routed by consistent hashing)")
		maxDBs        = flag.Int("tenant-max-dbs", 0, "per-tenant resident database quota (0 = unlimited)")
		maxJobs       = flag.Int("tenant-max-jobs", 0, "per-tenant queued async job quota (0 = unlimited)")
		maxPatMB      = flag.Int64("tenant-max-pattern-mb", 0, "per-tenant saved-pattern budget in MiB (0 = unlimited)")
		latticeOn     = flag.Bool("lattice", true, "serve repeated thresholds from the materialized threshold lattice")
		cacheMB       = flag.Int64("cache-budget-mb", 0, "lattice cache budget in MiB (0 = default 64)")
		rungs         = flag.String("lattice-rungs", "", "comma-separated relative thresholds to snap lattice installs to (e.g. 0.5,0.2,0.1)")
		pprofOn       = flag.Bool("pprof", false, "mount /debug/pprof/ profiling endpoints")
		drain         = flag.Duration("drain", 30*time.Second, "graceful-shutdown drain deadline")
		dataDir       = flag.String("data-dir", "", "durable data directory (empty = in-memory; uploads, saves and mined rungs survive restarts)")
		snapshotEvery = flag.Duration("snapshot-interval", time.Minute, "segment snapshot/compaction cadence (with -data-dir)")
		coldAfter     = flag.Duration("cold-after", 0, "spill databases untouched this long to disk stubs (0 = never; with -data-dir)")
		role          = flag.String("role", "server", `process role: "server" (self-contained), "shard" (one shard of an external ring), "router" (front over -shard-addrs)`)
		shardIndex    = flag.Int("shard-index", -1, "this shard's ring position (required with -role shard)")
		shardAddrs    = flag.String("shard-addrs", "", "comma-separated shard addresses in -shard-index order (required with -role router)")
		probeInterval = flag.Duration("probe-interval", 2*time.Second, "shard health-probe cadence (with -role router)")
		probeFailures = flag.Int("probe-failures", 3, "consecutive probe failures that eject a shard (with -role router)")
	)
	flag.Parse()

	switch *role {
	case "server":
	case "shard":
		if *shardIndex < 0 {
			log.Fatal("rpserved: -role shard requires -shard-index")
		}
		if *shards > 1 {
			log.Fatal("rpserved: a shard process runs one engine shard; scale with more processes, not -shards")
		}
	case "router":
		runRouter(*addr, *shardAddrs, *probeInterval, *probeFailures, *drain)
		return
	default:
		log.Fatalf("rpserved: unknown -role %q (want server, shard or router)", *role)
	}

	grid, err := parseRungs(*rungs)
	if err != nil {
		log.Fatalf("rpserved: %v", err)
	}
	srv, err := server.Open(
		server.WithShardIndex(*shardIndex),
		server.WithMaxBodyBytes(*maxBody<<20),
		server.WithMineTimeout(*mineTimeout),
		server.WithWorkers(*workers),
		server.WithMineWorkers(*mineWorkers),
		server.WithQueueDepth(*queue),
		server.WithShards(*shards),
		server.WithQuotas(shard.Quotas{
			MaxDBs:          *maxDBs,
			MaxQueuedJobs:   *maxJobs,
			MaxPatternBytes: *maxPatMB << 20,
		}),
		server.WithLattice(*latticeOn),
		server.WithLatticeRungs(grid),
		server.WithCacheBudget(*cacheMB<<20),
		server.WithDataDir(*dataDir),
		server.WithSnapshotInterval(*snapshotEvery),
		server.WithColdAfter(*coldAfter),
	)
	if err != nil {
		log.Fatalf("rpserved: open: %v", err)
	}
	if *dataDir != "" {
		fmt.Fprintf(os.Stderr, "rpserved: durable state in %s\n", *dataDir)
	}
	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	if *pprofOn {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		fmt.Fprintln(os.Stderr, "rpserved: pprof enabled at /debug/pprof/")
	}
	hs := &http.Server{
		Addr:              *addr,
		Handler:           logRequests(mux),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "rpserved: listening on %s\n", *addr)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}

	// Graceful shutdown: stop accepting connections, then drain the async
	// job queue; both are bounded by the drain deadline.
	fmt.Fprintln(os.Stderr, "rpserved: shutting down")
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(dctx); err != nil {
		log.Printf("rpserved: http shutdown: %v", err)
	}
	if err := srv.Shutdown(dctx); err != nil {
		log.Printf("rpserved: job drain: %v", err)
	}
	if err := srv.Close(); err != nil {
		log.Printf("rpserved: store close: %v", err)
	}
}

// runRouter serves the public API over remote shard processes: forwarded
// requests, aggregated listings, health probing with ejection. It owns no
// mining state, so shutdown is just stopping the listener and the probes.
func runRouter(addr, shardAddrs string, probeInterval time.Duration, probeFailures int, drain time.Duration) {
	var addrs []string
	for _, a := range strings.Split(shardAddrs, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		log.Fatal("rpserved: -role router requires -shard-addrs")
	}
	rt, err := server.NewRouter(addrs,
		server.WithProbeInterval(probeInterval),
		server.WithProbeFailures(probeFailures))
	if err != nil {
		log.Fatalf("rpserved: router: %v", err)
	}
	hs := &http.Server{
		Addr:              addr,
		Handler:           logRequests(rt.Handler()),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "rpserved: router for %d shards listening on %s\n", len(addrs), addr)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}

	fmt.Fprintln(os.Stderr, "rpserved: shutting down")
	dctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := hs.Shutdown(dctx); err != nil {
		log.Printf("rpserved: http shutdown: %v", err)
	}
	if err := rt.Close(); err != nil {
		log.Printf("rpserved: router close: %v", err)
	}
}

// parseRungs parses the -lattice-rungs grid of relative thresholds.
func parseRungs(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	var out []float64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil || v <= 0 || v >= 1 {
			return nil, fmt.Errorf("bad -lattice-rungs entry %q (want fractions in (0,1))", f)
		}
		out = append(out, v)
	}
	return out, nil
}

// logRequests is a minimal access log.
func logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		next.ServeHTTP(w, r)
		log.Printf("%s %s (%v)", r.Method, r.URL.Path, time.Since(start).Round(time.Millisecond))
	})
}
