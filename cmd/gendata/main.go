// Command gendata emits the synthetic stand-in datasets in basket format
// (one transaction per line, numeric item ids), so they can be inspected or
// fed to other tools.
//
// Usage:
//
//	gendata -dataset weather -scale 0.1 -out weather.basket
//	gendata -dataset connect4 > connect4.basket
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"gogreen/internal/dataset"
	"gogreen/internal/gen"
)

func main() {
	var (
		name  = flag.String("dataset", "", "dataset: "+strings.Join(gen.PresetNames(), ", "))
		scale = flag.Float64("scale", 1.0, "scale factor (1.0 = paper-sized)")
		out   = flag.String("out", "", "output path (default stdout)")
	)
	flag.Parse()

	g := gen.ByName(*name)
	if g == nil {
		fmt.Fprintf(os.Stderr, "unknown dataset %q (want one of %s)\n", *name, strings.Join(gen.PresetNames(), ", "))
		os.Exit(1)
	}
	db := g(*scale)
	if *out == "" {
		if err := dataset.WriteBasket(os.Stdout, db); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if err := dataset.WriteBasketFile(*out, db); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	st := db.Stats()
	fmt.Fprintf(os.Stderr, "%s: %d tuples, avg len %.1f, %d items -> %s\n",
		*name, st.NumTx, st.AvgLen, st.NumItems, *out)
}
